// Command hibfleet simulates a fleet of heterogeneous disk arrays: array
// shapes, disk families and deployment vintages are sampled from the
// seed, tenant workload streams are routed across arrays by a
// deterministic weighted rendezvous hash, and every array runs its own
// invariant-checkable simulation on a worker pool. The report on stdout
// is byte-identical across -par widths and invocations for a fixed flag
// set.
//
// Usage examples:
//
//	hibfleet -arrays 100 -seed 1                 # 100-array fleet, 400 tenants
//	hibfleet -arrays 100 -seed 1 -par 8 -check   # parallel + invariant-checked
//	hibfleet -arrays 100 -power-cap 20           # only 20 arrays above low speed
//	hibfleet -arrays 20 -metrics-dir obs/        # per-array metrics + trace files
//
// The exit status is 0 for a clean run, 1 when any invariant or the
// fleet-scope energy-conservation check failed (the report says which),
// and 2 for flag errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hibernator/internal/cliutil"
	"hibernator/internal/fleet"
)

func main() {
	var (
		arrays     = flag.Int("arrays", 20, "fleet size; array i's shape derives from (seed, i)")
		tenants    = flag.Int("tenants", 0, "tenant workload streams routed across the fleet (0 = 4 per array)")
		seed       = flag.Int64("seed", 1, "master seed for sampling, routing and every per-array run")
		dur        = flag.Float64("dur", 300, "simulated seconds per array")
		powerCap   = flag.Int("power-cap", 0, "max arrays licensed to run disks above the low speed tier (0 = uncapped)")
		accel      = flag.Float64("fault-accel", 2000, "drive-aging acceleration for vintage fault sampling (simulated s -> drive s)")
		par        = flag.Int("par", 0, "array pool width (0 = GOMAXPROCS, 1 = sequential); report bytes never depend on it")
		workers    = flag.Int("workers", 0, "intra-run engine width per array (0/1 = sequential engine)")
		check      = flag.Bool("check", false, "arm an invariant checker on every array's run")
		metricsDir = flag.String("metrics-dir", "", "directory for per-array metrics/trace JSONL files (created if missing)")
		verbose    = flag.Bool("v", false, "print progress to stderr")
	)
	flag.Parse()

	if err := validateFlags(*arrays, *tenants, *powerCap, *par, *workers, *dur, *accel); err != nil {
		fmt.Fprintf(os.Stderr, "hibfleet: %v\n", err)
		os.Exit(2)
	}
	if *metricsDir != "" {
		if err := os.MkdirAll(*metricsDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "hibfleet: %v\n", err)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := fleet.Config{
		Arrays: *arrays, Tenants: *tenants, Seed: *seed, Duration: *dur,
		PowerCap: *powerCap, FaultAccel: *accel,
		Par: *par, SimWorkers: *workers, Check: *check,
		MetricsDir: *metricsDir, Context: ctx,
	}
	if *verbose {
		cfg.Log = os.Stderr
	}
	start := time.Now()
	rep, err := fleet.Run(cfg)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "hibfleet: interrupted\n")
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "hibfleet: %v\n", err)
		os.Exit(1)
	}
	if err := rep.Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hibfleet: %v\n", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "hibfleet: done in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if !rep.Ok() {
		os.Exit(1)
	}
}

// validateFlags applies the numeric-flag rules; one line, exit 2, never a
// silently absurd fleet. Table-tested in main_test.go.
func validateFlags(arrays, tenants, powerCap, par, workers int, dur, accel float64) error {
	return cliutil.FirstError(
		cliutil.PositiveInt("-arrays", arrays),
		cliutil.NonNegativeInt("-tenants", tenants),
		cliutil.NonNegativeInt("-power-cap", powerCap),
		cliutil.NonNegativeInt("-par", par),
		cliutil.NonNegativeInt("-workers", workers),
		cliutil.Positive("-dur", dur),
		cliutil.Positive("-fault-accel", accel),
	)
}
