package main

import (
	"math"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                               string
		arrays, tenants, cap, par, workers int
		dur, accel                         float64
		ok                                 bool
	}{
		{"defaults", 20, 0, 0, 0, 0, 300, 2000, true},
		{"explicit", 100, 400, 20, 8, 4, 600, 1, true},
		{"zero arrays", 0, 0, 0, 0, 0, 300, 2000, false},
		{"negative arrays", -5, 0, 0, 0, 0, 300, 2000, false},
		{"negative tenants", 20, -1, 0, 0, 0, 300, 2000, false},
		{"negative cap", 20, 0, -1, 0, 0, 300, 2000, false},
		{"negative par", 20, 0, 0, -1, 0, 300, 2000, false},
		{"negative workers", 20, 0, 0, 0, -1, 300, 2000, false},
		{"zero dur", 20, 0, 0, 0, 0, 0, 2000, false},
		{"NaN dur", 20, 0, 0, 0, 0, math.NaN(), 2000, false},
		{"zero accel", 20, 0, 0, 0, 0, 300, 0, false},
		{"Inf accel", 20, 0, 0, 0, 0, 300, math.Inf(1), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.arrays, tc.tenants, tc.cap, tc.par, tc.workers, tc.dur, tc.accel)
			if (err == nil) != tc.ok {
				t.Fatalf("validateFlags(%d,%d,%d,%d,%d,%g,%g) = %v, want ok=%t",
					tc.arrays, tc.tenants, tc.cap, tc.par, tc.workers, tc.dur, tc.accel, err, tc.ok)
			}
		})
	}
}
