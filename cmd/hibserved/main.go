// Command hibserved runs the simulator as a long-lived HTTP/JSON
// service: clients POST `# hibchaos repro v1` scenarios to /jobs and
// the server executes them on a bounded worker queue, streaming each
// job's metrics and decision trace live.
//
// Usage:
//
//	hibserved -addr :8080
//	hibserved -addr :8080 -workers 4 -backlog 32 -max-jobs 128
//	hibserved -check                 # arm the invariant checker per job
//	hibserved -max-wall 2m -wd-stall 30s   # per-job watchdog limits
//	hibserved -state-dir /var/lib/hib      # crash-recoverable job table
//	hibserved -quota-rate 5 -quota-burst 10 -max-client-inflight 4
//
// API (see internal/served for the full contract):
//
//	POST /jobs                submit a scenario (?dry-run=1 validates only)
//	GET  /jobs                list jobs and admission stats
//	GET  /jobs/{id}           job status, result when complete
//	GET  /jobs/{id}/stream    live metrics, chunked JSONL
//	GET  /jobs/{id}/trace     live decision trace, chunked JSONL
//	GET  /jobs/{id}/events    live metrics as Server-Sent Events
//	POST /jobs/{id}/suspend   stop a running job, keep its snapshot
//	POST /jobs/{id}/resume    restore a suspended job
//	POST /jobs/{id}/retry     re-run a failed/canceled job
//	POST /jobs/{id}/cancel    stop a job for good
//	GET  /healthz             liveness
//	GET  /readyz              readiness (503 while crash recovery drains)
//
// With -state-dir every job lifecycle edge lands in a fsynced
// write-ahead log under that directory, scenario bytes are stored as
// content-addressed artifacts, and run snapshots are persisted: a
// kill -9 loses nothing — restarting with the same -state-dir replays
// the log, re-enqueues interrupted jobs (resuming from their latest
// snapshot when one survives), and serves recovered results
// byte-identical to a direct run. POST /jobs accepts X-Client and
// X-Job-Key headers; the key makes submission idempotent across
// crashes. -quota-rate/-quota-burst/-max-client-inflight arm
// per-client fairness limits (429 with reason "quota").
//
// When the job table or backlog is full the server answers 429 with a
// Retry-After header — explicit backpressure, never an unbounded queue.
// Results and streams are byte-identical to a direct `hibsim` run of
// the same scenario; SIGINT/SIGTERM drains in-flight requests, cancels
// running jobs, and exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hibernator/internal/served"
	"hibernator/internal/sim"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		maxJobs    = flag.Int("max-jobs", 256, "bound on the in-memory job table")
		workers    = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		backlog    = flag.Int("backlog", 0, "accepted-but-not-running bound (0 = max-jobs)")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		check      = flag.Bool("check", false, "arm the invariant checker on every job")
		attempts   = flag.Int("attempts", 1, "runs per job before it is failed (retries watchdog aborts)")
		backoff    = flag.Duration("backoff", 100*time.Millisecond, "base retry backoff (doubling, clamped)")
		maxWall    = flag.Duration("max-wall", 0, "per-job wall-clock budget (0 = off)")
		maxEvents  = flag.Uint64("max-events", 0, "per-job event budget (0 = off)")
		wdStall    = flag.Duration("wd-stall", 0, "per-job no-progress budget (0 = off)")
		drainWait  = flag.Duration("drain", 10*time.Second, "shutdown drain budget for in-flight requests")
		stateDir   = flag.String("state-dir", "", "durable state directory: WAL, artifacts, snapshots (empty = in-memory)")
		quotaRate  = flag.Float64("quota-rate", 0, "per-client submissions per second (0 = unlimited)")
		quotaBurst = flag.Int("quota-burst", 0, "per-client token-bucket burst (0 = 1)")
		maxCliInfl = flag.Int("max-client-inflight", 0, "per-client accepted+running cap (0 = unlimited)")
	)
	flag.Parse()

	opts := &served.Options{
		MaxJobs:           *maxJobs,
		Workers:           *workers,
		Backlog:           *backlog,
		RetryAfter:        *retryAfter,
		Check:             *check,
		Attempts:          *attempts,
		Backoff:           *backoff,
		StateDir:          *stateDir,
		QuotaRate:         *quotaRate,
		QuotaBurst:        *quotaBurst,
		MaxClientInflight: *maxCliInfl,
	}
	if *maxWall > 0 || *maxEvents > 0 || *wdStall > 0 {
		opts.Watchdog = &sim.Watchdog{MaxWall: *maxWall, MaxEvents: *maxEvents, Stall: *wdStall}
	}
	srv, err := served.Open(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hibserved: %v\n", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "hibserved: listening on %s\n", *addr)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "hibserved: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "hibserved: drain: %v\n", err)
		}
		srv.Close()
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "hibserved: %v\n", err)
			os.Exit(1)
		}
	}
}
