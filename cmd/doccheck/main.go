// Command doccheck enforces the repository's documentation floor: every
// Go package under the given directories must carry a package comment.
// With -exported it also lists exported identifiers that lack a doc
// comment, which keeps the godoc pass honest.
//
// Usage:
//
//	doccheck [-exported] dir [dir...]
//
// Exit status is non-zero when any check fails; each failure is one
// line on stderr. CI runs it over internal/, cmd/ and examples/.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	exported := flag.Bool("exported", false, "also require doc comments on exported identifiers")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck [-exported] dir [dir...]")
		os.Exit(2)
	}

	var failures []string
	for _, root := range flag.Args() {
		dirs, err := goDirs(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		for _, dir := range dirs {
			failures = append(failures, checkDir(dir, *exported)...)
		}
	}
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d failure(s)\n", len(failures))
		os.Exit(1)
	}
}

// goDirs returns every directory under root (inclusive) that contains at
// least one non-test .go file.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// checkDir parses one package directory and reports missing docs.
func checkDir(dir string, exported bool) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", dir, err)}
	}
	var out []string
	for name, pkg := range pkgs {
		if !hasPackageDoc(pkg) {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, name))
		}
		if exported {
			out = append(out, undocumentedExports(fset, pkg)...)
		}
	}
	sort.Strings(out)
	return out
}

func hasPackageDoc(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true
		}
	}
	return false
}

// undocumentedExports lists exported top-level declarations without a doc
// comment. Grouped declarations (var/const blocks) count as documented
// when either the group or the individual spec carries a comment.
func undocumentedExports(fset *token.FileSet, pkg *ast.Package) []string {
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					report(d.Pos(), kind, d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
							report(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						if d.Doc != nil || s.Doc != nil {
							continue
						}
						for _, n := range s.Names {
							if n.IsExported() {
								report(n.Pos(), "value", n.Name)
							}
						}
					}
				}
			}
		}
	}
	return out
}
