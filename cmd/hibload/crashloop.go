package main

// The server-kill chaos harness: spawn a real hibserved process with a
// durable -state-dir, drive acceptance from a client fleet, and kill -9
// the server repeatedly while they work. The durability contract under
// test is exactly the write-ahead log's ordering argument:
//
//   - nothing lost: every job a client holds an ID for (the 202/200
//     response landed) is found again after every restart — never 404 —
//     and every submitted job eventually completes;
//   - nothing duplicated: submissions carry idempotency keys, so a
//     client whose POST raced the kill re-sends blindly and must get
//     the same job back, never a second admission;
//   - nothing corrupted: every completed job's result is byte-identical
//     to a direct in-process run, and every readable stream is a byte
//     suffix of the direct metrics (empty for jobs that completed in an
//     earlier server life — streams are not persisted, results are);
//   - the log replays: each restart is itself the assertion that the
//     WAL, truncated wherever the kill landed, reopens cleanly.
//
// Kill points are derived from chaos.Mix, so a whole chaos run is a
// pure function of -seed.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hibernator/internal/chaos"
	"hibernator/internal/served"
)

// crashOpts carries the -crashloop configuration from main.
type crashOpts struct {
	cycles    int           // kill -9 → restart cycles
	servedBin string        // hibserved binary to spawn
	stateDir  string        // durable state directory ("" = temp)
	addr      string        // host:port the spawned server listens on
	killEvery time.Duration // mean interval between kills
	clients   int
	jobs      int
	distinct  int
	seed      int64
	simT      float64
}

// crashServer owns the spawned hibserved process.
type crashServer struct {
	opts crashOpts
	mu   sync.Mutex
	cmd  *exec.Cmd
}

func (cs *crashServer) start() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cmd := exec.Command(cs.opts.servedBin,
		"-addr", cs.opts.addr,
		"-state-dir", cs.opts.stateDir,
		"-max-jobs", strconv.Itoa(cs.opts.jobs*2+16), // never flush an unread result
		"-retry-after", "1s",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fatalf("crashloop: start %s: %v", cs.opts.servedBin, err)
	}
	cs.cmd = cmd
	go cmd.Wait() // reap; kill -9 exits are expected
}

// kill delivers SIGKILL — the crash under test, never a graceful stop.
func (cs *crashServer) kill() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.cmd != nil && cs.cmd.Process != nil {
		_ = cs.cmd.Process.Kill()
	}
}

// awaitHealthy polls /healthz until the spawned process serves HTTP.
func (cs *crashServer) awaitHealthy(client *http.Client) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get("http://" + cs.opts.addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	fatalf("crashloop: server at %s never became healthy", cs.opts.addr)
}

// runCrashloop is the -crashloop entry point. It exits the process with
// status 0 only if every durability assertion held.
func runCrashloop(o crashOpts) {
	if o.servedBin == "" {
		fatalf("crashloop: -served-bin is required")
	}
	if o.stateDir == "" {
		dir, err := os.MkdirTemp("", "hibload-crash-*")
		if err != nil {
			fatalf("crashloop: %v", err)
		}
		defer os.RemoveAll(dir)
		o.stateDir = dir
	}

	// Direct-run references, computed once per distinct scenario.
	bodies := make([][]byte, o.distinct)
	refs := make([]reference, o.distinct)
	for i := range bodies {
		g := chaos.Generate(o.seed, i)
		g.Duration = o.simT
		if g.SnapshotT >= g.Duration {
			g.SnapshotT = 0
		}
		if err := g.Validate(); err != nil {
			fatalf("crashloop: scenario %d invalid: %v", i, err)
		}
		var buf bytes.Buffer
		if err := chaos.WriteRepro(&buf, &g); err != nil {
			fatalf("crashloop: scenario %d: %v", i, err)
		}
		bodies[i] = buf.Bytes()
		result, metrics, _, err := served.DirectRun(&g, false)
		if err != nil {
			fatalf("crashloop: direct run %d: %v", i, err)
		}
		refs[i] = reference{result: bytes.TrimSuffix(result, []byte("\n")), metrics: metrics}
	}

	cs := &crashServer{opts: o}
	client := &http.Client{Timeout: 30 * time.Second}
	cs.start()
	cs.awaitHealthy(client)

	h := &crashHarness{base: "http://" + o.addr, client: client}

	// The client fleet: every job has a deterministic idempotency key,
	// submitted blindly until an admission lands, then polled to a
	// terminal state — across however many server lives that takes.
	work := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		cid := fmt.Sprintf("c%d", c)
		go func() {
			defer wg.Done()
			for n := range work {
				i := n % len(bodies)
				h.driveJob(cid, fmt.Sprintf("job-%d", n), bodies[i], refs[i])
			}
		}()
	}
	feed := make(chan struct{})
	go func() {
		defer close(feed)
		for n := 0; n < o.jobs; n++ {
			work <- n
		}
		close(work)
	}()

	// The kill loop: exactly o.cycles kill -9 → restart rounds while the
	// fleet works, at chaos.Mix-derived intervals so the run replays
	// from its seed. Remaining cycles after the fleet finishes still run
	// — recovery with an idle table must hold too.
	start := time.Now()
	for cycle := 0; cycle < o.cycles; cycle++ {
		jitter := time.Duration(chaos.Mix(o.seed, int64(cycle))%int64(o.killEvery)) + o.killEvery/2
		select {
		case <-time.After(jitter):
		case <-feed:
			// Queue drained; let in-flight jobs see at least one more kill.
			time.Sleep(jitter / 4)
		}
		cs.kill()
		cs.start()
		cs.awaitHealthy(client)
		fmt.Fprintf(os.Stderr, "hibload: crash cycle %d/%d (after %v)\n", cycle+1, o.cycles, jitter.Round(time.Millisecond))
	}
	wg.Wait()
	elapsed := time.Since(start)

	stats := h.serverStats()
	fmt.Printf("crashloop cycles=%d jobs=%d completed=%d deduped=%d shed=%d retried-submits=%d streams-suffix-ok=%d empty-streams=%d elapsed=%v\n",
		o.cycles, o.jobs, h.completed.Load(), h.deduped.Load(), stats.Shed, h.retries.Load(), h.streamsOK.Load(), h.emptyStreams.Load(), elapsed.Round(time.Millisecond))

	switch {
	case h.completed.Load() != uint64(o.jobs):
		fatalf("crashloop: lost jobs: %d submitted, %d completed", o.jobs, h.completed.Load())
	case h.mismatches.Load() != 0:
		fatalf("crashloop: %d byte-identity mismatches", h.mismatches.Load())
	case h.duplicates.Load() != 0:
		fatalf("crashloop: %d duplicated admissions", h.duplicates.Load())
	}
	cs.kill()
}

// crashHarness drives jobs against the spawned server, tolerant of the
// connection errors every kill produces.
type crashHarness struct {
	base   string
	client *http.Client

	mu   sync.Mutex
	keys map[string]string // job key → admitted id (duplication oracle)

	completed    atomic.Uint64
	deduped      atomic.Uint64
	retries      atomic.Uint64
	duplicates   atomic.Uint64
	mismatches   atomic.Uint64
	streamsOK    atomic.Uint64
	emptyStreams atomic.Uint64
}

// submitKeyed POSTs with idempotency headers until an admission lands,
// retrying connection errors (server mid-crash), 429s, and 503s (server
// mid-recovery). A key that resolves to two different IDs across
// retries is a duplicated admission — the bug this harness exists for.
func (h *crashHarness) submitKeyed(client, key string, body []byte) string {
	for {
		req, err := http.NewRequest("POST", h.base+"/jobs", bytes.NewReader(body))
		if err != nil {
			fatalf("crashloop: %v", err)
		}
		req.Header.Set("X-Client", client)
		req.Header.Set("X-Job-Key", key)
		resp, err := h.client.Do(req)
		if err != nil {
			h.retries.Add(1) // connection refused/reset: server is down
			time.Sleep(20 * time.Millisecond)
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			var out map[string]string
			if err := json.Unmarshal(b, &out); err != nil || out["id"] == "" {
				fatalf("crashloop: submit response %q: %v", b, err)
			}
			if resp.StatusCode == http.StatusOK {
				h.deduped.Add(1)
			}
			h.recordKey(key, out["id"])
			return out["id"]
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			h.retries.Add(1)
			time.Sleep(25 * time.Millisecond)
		default:
			fatalf("crashloop: submit %s: status %d: %s", key, resp.StatusCode, b)
		}
	}
}

// recordKey asserts a key never maps to two different job IDs.
func (h *crashHarness) recordKey(key, id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.keys == nil {
		h.keys = map[string]string{}
	}
	if prior, ok := h.keys[key]; ok && prior != id {
		h.duplicates.Add(1)
		fmt.Fprintf(os.Stderr, "hibload: key %s admitted twice: %s then %s\n", key, prior, id)
		return
	}
	h.keys[key] = id
}

// driveJob submits one keyed job — re-POSTing blindly across crashes —
// and polls it to completion, then verifies byte-identity.
func (h *crashHarness) driveJob(client, key string, body []byte, ref reference) {
	id := h.submitKeyed(client, key, body)
	st := h.waitDone(key, id)
	if st.State != "complete" {
		fatalf("crashloop: job %s (%s) ended %s: %s", id, key, st.State, st.Error)
	}
	if !bytes.Equal(st.Result, ref.result) {
		h.mismatches.Add(1)
		fmt.Fprintf(os.Stderr, "hibload: job %s result diverges:\n  served %s\n  direct %s\n", id, st.Result, ref.result)
		return
	}
	h.completed.Add(1)
	// The stream after completion: byte suffix of the direct metrics.
	// Empty is legal — a job that completed in a previous server life
	// has its result in the WAL but its stream bytes died with the
	// process. Anything else non-suffix is corruption.
	stream, ok := h.getRetry("/jobs/" + id + "/stream")
	if !ok {
		return // flushed/404 race is impossible (table sized over jobs); kill race: skip
	}
	if len(stream) == 0 {
		h.emptyStreams.Add(1)
		return
	}
	if !bytes.HasSuffix(ref.metrics, stream) {
		h.mismatches.Add(1)
		fmt.Fprintf(os.Stderr, "hibload: job %s stream (%d bytes) is not a suffix of the direct metrics (%d bytes)\n", id, len(stream), len(ref.metrics))
		return
	}
	h.streamsOK.Add(1)
}

// waitDone polls the job's status to a terminal state. Per the WAL
// ordering argument an ID a client holds was durable before the 202,
// so a 404 after any number of restarts is real loss — fatal, never
// retried away.
func (h *crashHarness) waitDone(key, id string) servedStatus {
	for {
		resp, err := h.client.Get(h.base + "/jobs/" + id)
		if err != nil {
			time.Sleep(20 * time.Millisecond) // server mid-crash
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var st servedStatus
			if err := json.Unmarshal(b, &st); err != nil {
				fatalf("crashloop: status %s: %v (%q)", id, err, b)
			}
			switch st.State {
			case "complete":
				return st
			case "failed", "canceled":
				return st
			case "suspended":
				fatalf("crashloop: job %s suspended without a suspender", id)
			}
		case http.StatusNotFound:
			fatalf("crashloop: job %s (%s) lost: 404 for an ID the client holds", id, key)
		case http.StatusGone:
			fatalf("crashloop: job %s (%s) flushed before its result was read", id, key)
		}
		time.Sleep(15 * time.Millisecond)
	}
}

// getRetry GETs a path, retrying through server downtime; false on 404/410.
func (h *crashHarness) getRetry(path string) ([]byte, bool) {
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		resp, err := h.client.Get(h.base + path)
		if err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && rerr == nil {
			return b, true
		}
		if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusGone {
			return nil, false
		}
		if rerr != nil { // stream torn by a kill mid-read: try again
			time.Sleep(20 * time.Millisecond)
			continue
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil, false
}

// serverStats fetches the server's admission counters (best-effort).
func (h *crashHarness) serverStats() served.Stats {
	var list struct {
		Stats served.Stats `json:"stats"`
	}
	b, ok := h.getRetry("/jobs")
	if ok {
		_ = json.Unmarshal(b, &list)
	}
	return list.Stats
}
