// Command hibload drives a hibserved instance with many concurrent
// clients and verifies the service keeps the simulator's contracts
// under load:
//
//   - every job's result is byte-identical to a direct in-process
//     sim.Run of the same scenario (and, with -verify-streams, every
//     job's metrics stream matches the direct exporter output);
//   - backpressure is explicit: refused submissions carry 429 +
//     Retry-After, are retried until admitted, and none are lost —
//     submitted = completed, always;
//   - the job table stays bounded: GET /jobs never reports more than
//     -table jobs alive.
//
// Usage:
//
//	hibload -self -clients 64 -jobs 500          # self-hosted server
//	hibload -addr http://localhost:8080 -jobs 500
//	hibload -self -suspend                       # also exercise suspend/resume
//	hibload -crashloop 5 -served-bin ./hibserved -clients 32 -jobs 200
//	hibload -self -quota-probe                   # also probe per-client quotas
//
// With -self the harness embeds its own server (deliberately small
// table and backlog, so backpressure actually fires) on an ephemeral
// port. With -crashloop N it instead spawns a real hibserved process on
// a durable -state-dir and kill -9s it N times while the fleet works,
// asserting nothing is lost, duplicated, or corrupted across restarts
// (see crashloop.go for the oracle). Exit status 0 means every
// assertion held.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hibernator/internal/chaos"
	"hibernator/internal/served"
)

func main() {
	var (
		addr      = flag.String("addr", "", "server base URL (empty with -self)")
		self      = flag.Bool("self", false, "embed a server in-process on an ephemeral port")
		clients   = flag.Int("clients", 64, "concurrent client goroutines")
		jobs      = flag.Int("jobs", 500, "total jobs to submit")
		distinct  = flag.Int("distinct", 8, "distinct scenarios cycled across jobs")
		seed      = flag.Int64("seed", 1, "scenario generator seed")
		simT      = flag.Float64("sim-duration", 45, "simulated seconds per job scenario")
		table     = flag.Int("table", 64, "-self server job-table bound (and the bound asserted via GET /jobs)")
		backlog   = flag.Int("backlog", 16, "-self server backlog bound")
		workers   = flag.Int("workers", 0, "-self server worker count (0 = GOMAXPROCS)")
		verify    = flag.Bool("verify-streams", true, "byte-compare every job's metrics stream against the direct exporter")
		suspend   = flag.Bool("suspend", false, "also exercise suspend/resume once and verify the stream tail")
		memBudget = flag.Uint64("mem-budget-mb", 0, "fail if client+embedded-server HeapAlloc exceeds this (0 = report only)")

		crashloop  = flag.Int("crashloop", 0, "server-kill chaos cycles: spawn -served-bin with -state-dir, kill -9 it this many times mid-load (0 = off)")
		servedBin  = flag.String("served-bin", "", "hibserved binary for -crashloop")
		stateDir   = flag.String("state-dir", "", "state directory for the spawned server (-crashloop; empty = temp)")
		spawnAddr  = flag.String("spawn-addr", "127.0.0.1:18080", "listen address for the spawned server (-crashloop)")
		killEvery  = flag.Duration("kill-every", 400*time.Millisecond, "mean interval between kill -9 cycles (-crashloop)")
		quotaProbe = flag.Bool("quota-probe", false, "also probe the per-client quota path against an embedded quota-armed server")
	)
	flag.Parse()

	if *quotaProbe {
		probeQuotas(*seed, *simT)
		// Probe-only invocation: nothing else was asked for, done.
		if *crashloop == 0 && *addr == "" && !*self {
			return
		}
	}
	if *crashloop > 0 {
		runCrashloop(crashOpts{
			cycles:    *crashloop,
			servedBin: *servedBin,
			stateDir:  *stateDir,
			addr:      *spawnAddr,
			killEvery: *killEvery,
			clients:   *clients,
			jobs:      *jobs,
			distinct:  *distinct,
			seed:      *seed,
			simT:      *simT,
		})
		return
	}

	base := *addr
	if *self {
		srv := served.New(&served.Options{MaxJobs: *table, Backlog: *backlog, Workers: *workers})
		ts := httptest.NewServer(srv.Handler())
		defer func() { ts.Close(); srv.Close() }()
		base = ts.URL
	}
	if base == "" {
		fmt.Fprintln(os.Stderr, "hibload: need -addr or -self")
		os.Exit(2)
	}

	h := &harness{
		base:     base,
		client:   &http.Client{Timeout: 5 * time.Minute},
		maxAlive: *table,
	}

	// Distinct scenarios, with their direct-run references computed once.
	scenarios := make([]*chaos.Scenario, *distinct)
	bodies := make([][]byte, *distinct)
	refs := make([]reference, *distinct)
	for i := range scenarios {
		g := chaos.Generate(*seed, i)
		g.Duration = *simT
		if g.SnapshotT >= g.Duration {
			g.SnapshotT = 0
		}
		if err := g.Validate(); err != nil {
			fatalf("scenario %d invalid: %v", i, err)
		}
		scenarios[i] = &g
		var buf bytes.Buffer
		if err := chaos.WriteRepro(&buf, &g); err != nil {
			fatalf("scenario %d: %v", i, err)
		}
		bodies[i] = buf.Bytes()
		result, metrics, _, err := served.DirectRun(&g, false)
		if err != nil {
			fatalf("direct run %d: %v", i, err)
		}
		refs[i] = reference{result: bytes.TrimSuffix(result, []byte("\n")), metrics: metrics}
	}

	// The client fleet: each goroutine pulls job numbers and drives one
	// submission to completion, honoring 429 backpressure.
	work := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := range work {
				i := n % len(scenarios)
				h.driveJob(bodies[i], refs[i], *verify)
			}
		}()
	}
	start := time.Now()
	for n := 0; n < *jobs; n++ {
		work <- n
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	if *suspend {
		h.exerciseSuspend(*seed, *simT)
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapMB := ms.HeapAlloc >> 20
	fmt.Printf("jobs=%d complete=%d rejected429=%d stream-verified=%d mismatches=%d table-max=%d elapsed=%v heap=%dMB\n",
		*jobs, h.completed.Load(), h.rejected.Load(), h.streamsOK.Load(), h.mismatches.Load(), h.aliveMax.Load(), elapsed.Round(time.Millisecond), heapMB)

	switch {
	case h.completed.Load() != uint64(*jobs):
		fatalf("lost jobs: %d submitted, %d completed", *jobs, h.completed.Load())
	case h.mismatches.Load() != 0:
		fatalf("%d byte-identity mismatches", h.mismatches.Load())
	case h.aliveMax.Load() > int64(h.maxAlive):
		fatalf("job table exceeded its bound: %d > %d", h.aliveMax.Load(), h.maxAlive)
	case *memBudget > 0 && heapMB > *memBudget:
		fatalf("heap %dMB exceeds budget %dMB", heapMB, *memBudget)
	}
}

type reference struct {
	result  []byte // compact result JSON, no trailing newline
	metrics []byte // full metrics JSONL
}

type harness struct {
	base     string
	client   *http.Client
	maxAlive int

	completed  atomic.Uint64
	rejected   atomic.Uint64
	streamsOK  atomic.Uint64
	mismatches atomic.Uint64
	aliveMax   atomic.Int64
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hibload: "+format+"\n", args...)
	os.Exit(1)
}

// submit POSTs the scenario until the server admits it, counting and
// honoring every 429 (Retry-After capped so the harness stays brisk).
func (h *harness) submit(body []byte) string {
	for {
		resp, err := h.client.Post(h.base+"/jobs", "text/plain", bytes.NewReader(body))
		if err != nil {
			fatalf("submit: %v", err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var out map[string]string
			if err := json.Unmarshal(b, &out); err != nil || out["id"] == "" {
				fatalf("submit response %q: %v", b, err)
			}
			return out["id"]
		case http.StatusTooManyRequests:
			h.rejected.Add(1)
			wait := 50 * time.Millisecond
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				if d := time.Duration(ra) * time.Second; d < wait {
					wait = d
				}
			}
			time.Sleep(wait)
		default:
			fatalf("submit: status %d: %s", resp.StatusCode, b)
		}
	}
}

func (h *harness) status(id string) servedStatus {
	resp, err := h.client.Get(h.base + "/jobs/" + id)
	if err != nil {
		fatalf("status %s: %v", id, err)
	}
	defer resp.Body.Close()
	var st servedStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fatalf("status %s: %v", id, err)
	}
	return st
}

// servedStatus mirrors served.JobStatus without importing its handler
// types into the wire-assert path (the JSON shape is the contract).
type servedStatus struct {
	ID     string          `json:"id"`
	State  string          `json:"state"`
	Events uint64          `json:"events"`
	Result json.RawMessage `json:"result"`
	Error  string          `json:"error"`
}

// driveJob runs one submission to completion and verifies byte-identity.
func (h *harness) driveJob(body []byte, ref reference, verifyStream bool) {
	id := h.submit(body)
	h.observeTableBound()
	var streamed []byte
	if verifyStream {
		// Attach to the live stream; it drains to EOF at completion.
		resp, err := h.client.Get(h.base + "/jobs/" + id + "/stream")
		if err != nil {
			fatalf("stream %s: %v", id, err)
		}
		streamed, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			fatalf("stream %s: %v", id, err)
		}
	}
	st := h.waitDone(id)
	if st.State != "complete" {
		fatalf("job %s ended %s: %s", id, st.State, st.Error)
	}
	h.completed.Add(1)
	if !bytes.Equal(st.Result, ref.result) {
		h.mismatches.Add(1)
		fmt.Fprintf(os.Stderr, "hibload: job %s result diverges:\n  served %s\n  direct %s\n", id, st.Result, ref.result)
		return
	}
	if verifyStream {
		if !bytes.Equal(streamed, ref.metrics) {
			h.mismatches.Add(1)
			fmt.Fprintf(os.Stderr, "hibload: job %s stream diverges (%d vs %d bytes)\n", id, len(streamed), len(ref.metrics))
			return
		}
		h.streamsOK.Add(1)
	}
}

func (h *harness) waitDone(id string) servedStatus {
	for {
		st := h.status(id)
		switch st.State {
		case "complete", "failed", "canceled":
			return st
		case "flushed":
			// The server evicted the result before this client read it —
			// a served-result loss the harness exists to catch.
			fatalf("job %s flushed before its result was read", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// observeTableBound samples GET /jobs and records the largest live-job
// count seen; main asserts it never exceeded the configured bound.
func (h *harness) observeTableBound() {
	resp, err := h.client.Get(h.base + "/jobs")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []servedStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return
	}
	n := int64(len(list.Jobs))
	for {
		cur := h.aliveMax.Load()
		if n <= cur || h.aliveMax.CompareAndSwap(cur, n) {
			return
		}
	}
}

// exerciseSuspend runs one long job through suspend → resume and checks
// the resumed stream is an exact byte tail of the uninterrupted run's.
func (h *harness) exerciseSuspend(seed int64, simT float64) {
	g := chaos.Generate(seed, 0)
	g.Duration = simT * 2000 // long enough to reliably suspend mid-run
	if g.SnapshotT >= g.Duration {
		g.SnapshotT = 0
	}
	result, metrics, _, err := served.DirectRun(&g, false)
	if err != nil {
		fatalf("suspend exercise direct run: %v", err)
	}
	var buf bytes.Buffer
	if err := chaos.WriteRepro(&buf, &g); err != nil {
		fatalf("suspend exercise: %v", err)
	}
	id := h.submit(buf.Bytes())
	// Follow the live stream and suspend once a quarter of the
	// uninterrupted run's output has arrived — past the first periodic
	// snapshot (taken at 1/8 of the run), so resume restores a real
	// capture and the resumed stream is a strict tail.
	live, err := h.client.Get(h.base + "/jobs/" + id + "/stream")
	if err != nil {
		fatalf("live stream: %v", err)
	}
	got, rbuf := 0, make([]byte, 32<<10)
	for got < len(metrics)/4 {
		n, err := live.Body.Read(rbuf)
		got += n
		if err != nil {
			break
		}
	}
	live.Body.Close()
	if code := h.post(id, "suspend"); code == http.StatusConflict {
		fmt.Fprintln(os.Stderr, "hibload: job finished before suspend; skipping tail check")
		return
	} else if code != http.StatusOK {
		fatalf("suspend: status %d", code)
	}
	if code := h.post(id, "resume"); code != http.StatusOK {
		fatalf("resume: status %d", code)
	}
	resp, err := h.client.Get(h.base + "/jobs/" + id + "/stream")
	if err != nil {
		fatalf("resumed stream: %v", err)
	}
	tail, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fatalf("resumed stream: %v", err)
	}
	st := h.waitDone(id)
	if st.State != "complete" {
		fatalf("resumed job ended %s: %s", st.State, st.Error)
	}
	if !bytes.Equal(st.Result, bytes.TrimSuffix(result, []byte("\n"))) {
		fatalf("resumed result diverges from uninterrupted run")
	}
	if len(tail) == 0 || !bytes.HasSuffix(metrics, tail) {
		fatalf("resumed stream (%d bytes) is not a byte tail of the uninterrupted stream (%d bytes)", len(tail), len(metrics))
	}
	fmt.Printf("suspend/resume verified: %d-byte stream tail of %d\n", len(tail), len(metrics))
}

func (h *harness) post(id, verb string) int {
	resp, err := h.client.Post(h.base+"/jobs/"+id+"/"+verb, "", nil)
	if err != nil {
		fatalf("%s %s: %v", verb, id, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// probeQuotas embeds a quota-armed server and asserts the per-client
// fairness path end to end: a client at its inflight cap is refused
// with 429 + reason "quota" + Retry-After while another client is
// admitted, and the slot frees on terminal.
func probeQuotas(seed int64, simT float64) {
	srv := served.New(&served.Options{MaxClientInflight: 1, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	long := chaos.Generate(seed, 0)
	long.Duration = simT * 2000 // occupies the slot for the whole probe
	if long.SnapshotT >= long.Duration {
		long.SnapshotT = 0
	}
	var buf bytes.Buffer
	if err := chaos.WriteRepro(&buf, &long); err != nil {
		fatalf("quota probe: %v", err)
	}
	post := func(client string) (*http.Response, map[string]string) {
		req, err := http.NewRequest("POST", ts.URL+"/jobs", bytes.NewReader(buf.Bytes()))
		if err != nil {
			fatalf("quota probe: %v", err)
		}
		req.Header.Set("X-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			fatalf("quota probe: %v", err)
		}
		defer resp.Body.Close()
		var out map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp, out
	}

	resp, out := post("greedy")
	if resp.StatusCode != http.StatusAccepted {
		fatalf("quota probe: first submit: %d", resp.StatusCode)
	}
	id := out["id"]
	resp, out = post("greedy")
	if resp.StatusCode != http.StatusTooManyRequests || out["reason"] != "quota" || resp.Header.Get("Retry-After") == "" {
		fatalf("quota probe: over-cap submit: status %d reason %q Retry-After %q",
			resp.StatusCode, out["reason"], resp.Header.Get("Retry-After"))
	}
	if resp, _ = post("patient"); resp.StatusCode != http.StatusAccepted {
		fatalf("quota probe: other client refused: %d", resp.StatusCode)
	}
	h := &harness{base: ts.URL, client: http.DefaultClient}
	if code := h.post(id, "cancel"); code != http.StatusOK {
		fatalf("quota probe: cancel: %d", code)
	}
	resp, _ = post("greedy")
	if resp.StatusCode != http.StatusAccepted {
		fatalf("quota probe: slot not released on terminal: %d", resp.StatusCode)
	}
	fmt.Println("quota probe: 429/quota + Retry-After verified, slot released on terminal")
}
