// Command hibexp regenerates the reconstructed tables and figures of the
// Hibernator evaluation (see DESIGN.md's experiment index).
//
// Usage:
//
//	hibexp                      # run everything at default scale
//	hibexp -run F1,F2 -scale 0.2
//	hibexp -list
//	hibexp -csv out/            # also write one CSV per table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hibernator/internal/experiments"
)

func main() {
	var (
		runIDs  = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		scale   = flag.Float64("scale", 1.0, "duration scale factor (1.0 = full multi-hour runs)")
		seed    = flag.Int64("seed", 1, "master random seed")
		csvDir  = flag.String("csv", "", "directory to also write per-table CSV files into")
		list    = flag.Bool("list", false, "list experiments and exit")
		verbose = flag.Bool("v", false, "print progress while running")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-46s reconstructs %s\n", e.ID, e.Title, e.Reconstructs)
		}
		return
	}

	var selected []experiments.Experiment
	if *runIDs == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "hibexp: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opts := experiments.Opts{Scale: *scale, Seed: *seed}
	if *verbose {
		opts.Log = os.Stderr
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
			os.Exit(1)
		}
	}

	for _, e := range selected {
		start := time.Now()
		if *verbose {
			fmt.Fprintf(os.Stderr, "running %s: %s\n", e.ID, e.Title)
		}
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hibexp: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if err := t.Fprint(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
			if *csvDir != "" {
				path := filepath.Join(*csvDir, t.ID+".csv")
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
					os.Exit(1)
				}
				if err := t.CSV(f); err != nil {
					f.Close()
					fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
					os.Exit(1)
				}
				f.Close()
			}
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "%s done in %v\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
