// Command hibexp regenerates the reconstructed tables and figures of the
// Hibernator evaluation (see DESIGN.md's experiment index).
//
// Usage:
//
//	hibexp                      # run everything at default scale
//	hibexp -run F1,F2 -scale 0.2
//	hibexp -par 8               # fan out across 8 workers
//	hibexp -workers 4           # partitioned engine inside each run
//	hibexp -list
//	hibexp -csv out/            # also write one CSV per table
//	hibexp -metrics-dir obs/    # dump per-run metrics + trace streams
//
// Every experiment is deterministic for a fixed seed, so -par only
// changes wall-clock time: experiments run concurrently (and fan their
// own simulation runs out over the same width), but tables are printed
// in experiment-ID order and are byte-identical to a -par 1 run.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers for -pprof
	"os"
	"path/filepath"
	"strings"
	"time"

	"hibernator/internal/cliutil"
	"hibernator/internal/experiments"
	"hibernator/internal/report"
	"hibernator/internal/runner"
)

func main() {
	var (
		runIDs      = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		scale       = flag.Float64("scale", 1.0, "duration scale factor (1.0 = full multi-hour runs)")
		seed        = flag.Int64("seed", 1, "master random seed")
		par         = flag.Int("par", 0, "worker pool width for experiments and their inner fan-outs (0 = GOMAXPROCS, 1 = sequential)")
		workers     = flag.Int("workers", 1, "intra-run parallelism: worker goroutines per simulation for the group-partitioned engine (1 = sequential; output is identical for any value)")
		csvDir      = flag.String("csv", "", "directory to also write per-table CSV files into")
		list        = flag.Bool("list", false, "list experiments and exit")
		verbose     = flag.Bool("v", false, "print progress while running")
		check       = flag.Bool("check", false, "arm the invariant checker (internal/invariant) on every run; non-zero exit on violations")
		metricsDir  = flag.String("metrics-dir", "", "directory to write per-run metrics and trace streams into (see OBSERVABILITY.md)")
		sampleEvery = flag.Float64("sample-every", 0, "metrics sampling interval in simulated seconds (0 = each run's default)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	// Validate up front: a bad flag should be one clear line and a
	// non-zero exit, not a silent clamp deep inside an experiment. The
	// cliutil helpers also reject NaN, which `*scale <= 0` alone passes.
	if err := validateFlags(*scale, *sampleEvery, *par, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
		os.Exit(2)
	}
	servePprof(*pprofAddr)

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-46s reconstructs %s\n", e.ID, e.Title, e.Reconstructs)
		}
		return
	}

	var selected []experiments.Experiment
	if *runIDs == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "hibexp: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opts := experiments.Opts{
		Scale: *scale, Seed: *seed, Workers: *par, SimWorkers: *workers,
		MetricsDir: *metricsDir, SampleEvery: *sampleEvery,
		Check: *check,
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsDir != "" {
		if err := os.MkdirAll(*metricsDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
			os.Exit(1)
		}
	}

	start := time.Now()
	// Run the selected experiments on the pool; results come back in
	// selection (ID) order regardless of which finishes first.
	results, err := runner.Map(context.Background(), *par, len(selected),
		func(_ context.Context, i int) ([]*report.Table, error) {
			e := selected[i]
			if *verbose {
				fmt.Fprintf(os.Stderr, "running %s: %s\n", e.ID, e.Title)
			}
			t0 := time.Now()
			tables, err := e.Run(opts)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", e.ID, err)
			}
			if *verbose {
				fmt.Fprintf(os.Stderr, "%s done in %v\n", e.ID, time.Since(t0).Round(time.Millisecond))
			}
			return tables, nil
		})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
		os.Exit(1)
	}

	for _, tables := range results {
		for _, t := range tables {
			if err := t.Fprint(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "all done in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if *check {
		total, samples := experiments.CheckViolations()
		if total > 0 {
			for _, s := range samples {
				fmt.Fprintf(os.Stderr, "hibexp: invariant: %s\n", s)
			}
			fmt.Fprintf(os.Stderr, "hibexp: invariant checker found %d violation(s) across all runs\n", total)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hibexp: invariants ok (0 violations)\n")
	}
}

// validateFlags applies the numeric-flag rules. Table-tested in
// main_test.go.
func validateFlags(scale, sampleEvery float64, par, workers int) error {
	return cliutil.FirstError(
		cliutil.Positive("-scale", scale),
		cliutil.NonNegativeInt("-par", par),
		cliutil.PositiveInt("-workers", workers),
		cliutil.NonNegative("-sample-every", sampleEvery),
	)
}

// servePprof exposes net/http/pprof on addr in the background; empty addr
// disables it. Experiments do not wait for the listener: profiling a short
// run means hitting the endpoint while it executes.
func servePprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "hibexp: pprof: %v\n", err)
		}
	}()
}

func writeCSV(dir string, t *report.Table) error {
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	if err := t.CSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
