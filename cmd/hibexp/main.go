// Command hibexp regenerates the reconstructed tables and figures of the
// Hibernator evaluation (see DESIGN.md's experiment index).
//
// Usage:
//
//	hibexp                      # run everything at default scale
//	hibexp -run F1,F2 -scale 0.2
//	hibexp -par 8               # fan out across 8 workers
//	hibexp -workers 4           # partitioned engine inside each run
//	hibexp -list
//	hibexp -csv out/            # also write one CSV per table
//	hibexp -metrics-dir obs/    # dump per-run metrics + trace streams
//	hibexp -journal run.jsonl   # record run lifecycle durably
//	hibexp -journal run.jsonl -resume   # skip verified-complete runs
//
// Every experiment is deterministic for a fixed seed, so -par only
// changes wall-clock time: experiments run concurrently (and fan their
// own simulation runs out over the same width), but tables are printed
// in experiment-ID order and are byte-identical to a -par 1 run.
//
// Crash safety: with -journal, each experiment's lifecycle is recorded
// in an append-only fsynced JSONL file and its result tables are written
// atomically to <journal>.d/<ID>.json with their sha256 in the journal.
// After a crash (or Ctrl-C, which drains the pool and exits cleanly),
// re-running with -resume reprints completed experiments from their
// verified artifacts — byte-identical to an uninterrupted run — and only
// executes the rest. The watchdog flags (-max-wall, -max-events,
// -wd-stall) bound every simulation run so one stuck run cannot hang the
// suite; -retries re-runs a failed experiment with doubling backoff.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers for -pprof
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"hibernator/internal/atomicio"
	"hibernator/internal/cliutil"
	"hibernator/internal/experiments"
	"hibernator/internal/journal"
	"hibernator/internal/report"
	"hibernator/internal/runner"
	"hibernator/internal/sim"
)

// retryBackoff is the base delay before an experiment's first re-run;
// runner.Retry doubles it per attempt.
const retryBackoff = 200 * time.Millisecond

func main() {
	var (
		runIDs      = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		scale       = flag.Float64("scale", 1.0, "duration scale factor (1.0 = full multi-hour runs)")
		seed        = flag.Int64("seed", 1, "master random seed")
		par         = flag.Int("par", 0, "worker pool width for experiments and their inner fan-outs (0 = GOMAXPROCS, 1 = sequential)")
		workers     = flag.Int("workers", 1, "intra-run parallelism: worker goroutines per simulation for the group-partitioned engine (1 = sequential; output is identical for any value)")
		csvDir      = flag.String("csv", "", "directory to also write per-table CSV files into")
		list        = flag.Bool("list", false, "list experiments and exit")
		verbose     = flag.Bool("v", false, "print progress while running")
		check       = flag.Bool("check", false, "arm the invariant checker (internal/invariant) on every run; non-zero exit on violations")
		metricsDir  = flag.String("metrics-dir", "", "directory to write per-run metrics and trace streams into (see OBSERVABILITY.md)")
		sampleEvery = flag.Float64("sample-every", 0, "metrics sampling interval in simulated seconds (0 = each run's default)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		journalPath = flag.String("journal", "", "append-only run journal (JSONL); result tables land in <journal>.d/<ID>.json")
		resume      = flag.Bool("resume", false, "with -journal: reprint experiments whose journaled artifacts verify instead of re-running them")
		retries     = flag.Int("retries", 0, "extra attempts for a failed experiment (doubling backoff)")
		maxWall     = flag.Duration("max-wall", 0, "watchdog: abort any simulation run after this much wall-clock time (0 = off)")
		maxEvents   = flag.Uint64("max-events", 0, "watchdog: abort any simulation run after this many fired events (0 = off)")
		wdStall     = flag.Duration("wd-stall", 0, "watchdog: abort any simulation run that fires no event for this long (0 = off)")
	)
	flag.Parse()

	// Validate up front: a bad flag should be one clear line and a
	// non-zero exit, not a silent clamp deep inside an experiment. The
	// cliutil helpers also reject NaN, which `*scale <= 0` alone passes.
	if err := validateFlags(*scale, *sampleEvery, *par, *workers, *retries); err != nil {
		fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
		os.Exit(2)
	}
	if *maxWall < 0 || *wdStall < 0 {
		fmt.Fprintf(os.Stderr, "hibexp: watchdog durations must be >= 0\n")
		os.Exit(2)
	}
	if *resume && *journalPath == "" {
		fmt.Fprintf(os.Stderr, "hibexp: -resume requires -journal\n")
		os.Exit(2)
	}
	servePprof(*pprofAddr)

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-46s reconstructs %s\n", e.ID, e.Title, e.Reconstructs)
		}
		return
	}

	var selected []experiments.Experiment
	if *runIDs == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "hibexp: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	// The first SIGINT/SIGTERM cancels the context: in-flight simulation
	// runs stop at their next event batch, the pool drains, and the
	// journal records everything finished so far. A second signal
	// restores default handling and kills the process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	opts := experiments.Opts{
		Scale: *scale, Seed: *seed, Workers: *par, SimWorkers: *workers,
		MetricsDir: *metricsDir, SampleEvery: *sampleEvery,
		Check:   *check,
		Context: ctx,
	}
	if *maxWall > 0 || *maxEvents > 0 || *wdStall > 0 {
		opts.Watchdog = &sim.Watchdog{MaxWall: *maxWall, MaxEvents: *maxEvents, Stall: *wdStall}
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsDir != "" {
		if err := os.MkdirAll(*metricsDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
			os.Exit(1)
		}
	}

	var jnl *journal.Journal
	var artDir string
	if *journalPath != "" {
		// The meta pins what determines the table bytes (scale, seed) plus
		// the check arming: resuming a -check suite from an unchecked
		// journal would silently skip invariant coverage for the reprinted
		// experiments. Worker widths stay out — they never change a byte.
		meta := fmt.Sprintf("hibexp scale=%g seed=%d check=%t", *scale, *seed, *check)
		var err error
		if jnl, err = journal.Open(*journalPath, meta); err != nil {
			fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
			os.Exit(1)
		}
		defer jnl.Close()
		artDir = *journalPath + ".d"
		if err := os.MkdirAll(artDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
			os.Exit(1)
		}
	}

	start := time.Now()
	// Run the selected experiments on the pool; results come back in
	// selection (ID) order regardless of which finishes first.
	results, err := runner.Map(ctx, *par, len(selected),
		func(wctx context.Context, i int) ([]*report.Table, error) {
			e := selected[i]
			if jnl != nil && *resume {
				if tables, ok := loadJournaled(jnl, artDir, e.ID); ok {
					if *verbose {
						fmt.Fprintf(os.Stderr, "%s resumed from journal (artifact verified)\n", e.ID)
					}
					return tables, nil
				}
			}
			attempt := 1
			if jnl != nil {
				if prev, ok := jnl.Latest(e.ID); ok {
					attempt = prev.Attempt + 1
				}
				if err := jnl.Append(journal.Entry{Run: e.ID, Status: journal.StatusRunning, Attempt: attempt}); err != nil {
					return nil, err
				}
			}
			if *verbose {
				fmt.Fprintf(os.Stderr, "running %s: %s\n", e.ID, e.Title)
			}
			t0 := time.Now()
			var tables []*report.Table
			err := runner.Retry(wctx, *retries+1, retryBackoff, func(context.Context) error {
				var err error
				tables, err = e.Run(opts)
				return err
			})
			if err != nil {
				if jnl != nil && wctx.Err() == nil {
					// Interrupts are not failures: the run stays "running"
					// and re-executes on resume.
					jnl.Append(journal.Entry{Run: e.ID, Status: journal.StatusFailed, Attempt: attempt,
						Detail: err.Error(), Wall: time.Since(t0).Seconds()})
				}
				return nil, fmt.Errorf("%s: %w", e.ID, err)
			}
			if *verbose {
				fmt.Fprintf(os.Stderr, "%s done in %v\n", e.ID, time.Since(t0).Round(time.Millisecond))
			}
			if jnl != nil {
				blob, err := json.Marshal(tables)
				if err != nil {
					return nil, err
				}
				if err := atomicio.WriteFileBytes(filepath.Join(artDir, e.ID+".json"), blob); err != nil {
					return nil, err
				}
				sum := sha256.Sum256(blob)
				if err := jnl.Append(journal.Entry{Run: e.ID, Status: journal.StatusDone, Attempt: attempt,
					SHA256: hex.EncodeToString(sum[:]), Wall: time.Since(t0).Seconds()}); err != nil {
					return nil, err
				}
			}
			return tables, nil
		})
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "hibexp: interrupted; journaled results are durable (re-run with -resume)\n")
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
		os.Exit(1)
	}

	for _, tables := range results {
		for _, t := range tables {
			if err := t.Fprint(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					fmt.Fprintf(os.Stderr, "hibexp: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "all done in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if *check {
		total, samples := experiments.CheckViolations()
		if total > 0 {
			for _, s := range samples {
				fmt.Fprintf(os.Stderr, "hibexp: invariant: %s\n", s)
			}
			fmt.Fprintf(os.Stderr, "hibexp: invariant checker found %d violation(s) across all runs\n", total)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hibexp: invariants ok (0 violations)\n")
	}
}

// loadJournaled returns an experiment's tables from its journal artifact
// when the journal marks it done AND the artifact's sha256 matches the
// recorded digest. Any mismatch — missing file, torn write survived by a
// non-atomic editor, stale hash — falls through to a fresh run, so resume
// never trusts an unverified byte.
func loadJournaled(jnl *journal.Journal, artDir, id string) ([]*report.Table, bool) {
	e, ok := jnl.Done(id)
	if !ok || e.SHA256 == "" {
		return nil, false
	}
	blob, err := os.ReadFile(filepath.Join(artDir, id+".json"))
	if err != nil {
		return nil, false
	}
	sum := sha256.Sum256(blob)
	if hex.EncodeToString(sum[:]) != e.SHA256 {
		return nil, false
	}
	var tables []*report.Table
	if err := json.Unmarshal(blob, &tables); err != nil {
		return nil, false
	}
	return tables, true
}

// validateFlags applies the numeric-flag rules. Table-tested in
// main_test.go.
func validateFlags(scale, sampleEvery float64, par, workers, retries int) error {
	return cliutil.FirstError(
		cliutil.Positive("-scale", scale),
		cliutil.NonNegativeInt("-par", par),
		cliutil.PositiveInt("-workers", workers),
		cliutil.NonNegative("-sample-every", sampleEvery),
		cliutil.NonNegativeInt("-retries", retries),
	)
}

// servePprof exposes net/http/pprof on addr in the background; empty addr
// disables it. Experiments do not wait for the listener: profiling a short
// run means hitting the endpoint while it executes.
func servePprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "hibexp: pprof: %v\n", err)
		}
	}()
}

func writeCSV(dir string, t *report.Table) error {
	return atomicio.WriteFile(filepath.Join(dir, t.ID+".csv"), t.CSV)
}
