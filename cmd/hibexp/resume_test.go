package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hibernator/internal/journal"
)

// The crash-resume tests re-exec this test binary as hibexp (TestMain
// dispatches on the env var), so no separate `go build` is needed and
// the subprocess runs exactly the code under test.
const runMainEnv = "HIBEXP_RUN_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(runMainEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// hibexpCmd builds a command that re-execs this binary as hibexp.
func hibexpCmd(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), runMainEnv+"=1")
	return cmd
}

// runHibexp runs to completion and returns stdout.
func runHibexp(t *testing.T, args ...string) []byte {
	t.Helper()
	cmd := hibexpCmd(args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("hibexp %v: %v\nstderr: %s", args, err, errb.String())
	}
	return out.Bytes()
}

// waitForDone polls the journal file until run's done entry is durable.
func waitForDone(t *testing.T, path, run string) {
	t.Helper()
	needle := `"run":"` + run + `","status":"done"`
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(path); err == nil && strings.Contains(string(data), needle) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("journal %s never recorded %s done", path, run)
}

// The headline crash-safety property at the CLI level: a journaled suite
// resumed from its own journal reprints byte-identical output without
// re-running completed experiments.
func TestJournalResumeByteIdentical(t *testing.T) {
	jnl := filepath.Join(t.TempDir(), "run.jsonl")
	args := []string{"-run", "T1,T2", "-scale", "0.02", "-par", "1", "-journal", jnl}
	first := runHibexp(t, args...)

	before, err := os.Stat(jnl)
	if err != nil {
		t.Fatal(err)
	}
	second := runHibexp(t, append(args, "-resume")...)
	if !bytes.Equal(first, second) {
		t.Fatalf("resumed output diverged:\n%s\nvs\n%s", first, second)
	}
	after, err := os.Stat(jnl)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("resume re-ran journaled experiments (journal grew %d -> %d bytes)", before.Size(), after.Size())
	}
}

// interruptAndResume drives the full crash-recovery cycle: start a
// journaled suite, take it down with sig once the fast experiments'
// verdicts are durable, then resume and compare against an uninterrupted
// run. wantExit is the expected exit code of the interrupted process
// (-1 = died on a signal, Go's convention for ProcessState.ExitCode).
func interruptAndResume(t *testing.T, sig syscall.Signal, wantExit int) {
	t.Helper()
	// F1 takes a few seconds at this scale while T1/T2 finish in
	// milliseconds — a wide window for the signal to land mid-F1.
	sel := []string{"-run", "T1,T2,F1", "-scale", "0.05", "-par", "1"}
	clean := runHibexp(t, sel...)

	jnl := filepath.Join(t.TempDir(), "run.jsonl")
	cmd := hibexpCmd(append(sel, "-journal", jnl)...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	waitForDone(t, jnl, "T2")
	if err := cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if code := cmd.ProcessState.ExitCode(); code != wantExit {
		t.Fatalf("interrupted run: exit %d (err %v), want %d", code, err, wantExit)
	}

	resumed := runHibexp(t, append(sel, "-journal", jnl, "-resume")...)
	if !bytes.Equal(clean, resumed) {
		t.Fatalf("post-%v resume diverged from a clean run:\n%s\nvs\n%s", sig, clean, resumed)
	}
	// The completed experiments must not have re-run: one running entry
	// each, from the interrupted process.
	data, err := os.ReadFile(jnl)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"T1", "T2"} {
		if n := strings.Count(string(data), `"run":"`+id+`","status":"running"`); n != 1 {
			t.Errorf("%s ran %d time(s) across interrupt+resume, want exactly 1", id, n)
		}
	}
}

// SIGINT drains the pool and exits 130 with every finished verdict
// durable; resume completes the suite byte-identically.
func TestSIGINTDrainAndResume(t *testing.T) {
	interruptAndResume(t, syscall.SIGINT, 130)
}

// kill -9 gets no chance to clean up — the fsynced journal and atomic
// artifacts must carry the resume on their own.
func TestKill9Resume(t *testing.T) {
	interruptAndResume(t, syscall.SIGKILL, -1)
}

// loadJournaled trusts nothing it cannot verify: a done entry only
// resumes when the artifact bytes hash to the recorded sha256.
func TestLoadJournaledVerifiesArtifact(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "run.jsonl")
	artDir := filepath.Join(dir, "run.jsonl.d")
	if err := os.MkdirAll(artDir, 0o755); err != nil {
		t.Fatal(err)
	}
	jnl, err := journal.Open(jpath, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()

	blob := []byte(`[{"ID":"T1","Title":"t","Columns":["a"],"Rows":[["1"]],"Notes":null}]`)
	sum := sha256.Sum256(blob)
	if err := os.WriteFile(filepath.Join(artDir, "T1.json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Append(journal.Entry{Run: "T1", Status: journal.StatusDone, Attempt: 1, SHA256: hex.EncodeToString(sum[:])}); err != nil {
		t.Fatal(err)
	}

	if tables, ok := loadJournaled(jnl, artDir, "T1"); !ok || len(tables) != 1 || tables[0].ID != "T1" {
		t.Fatalf("verified artifact did not load: ok=%t tables=%v", ok, tables)
	}
	// Corrupt the artifact: the hash mismatch must force a fresh run,
	// never a silent reprint of bad bytes.
	if err := os.WriteFile(filepath.Join(artDir, "T1.json"), append(blob, ' '), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := loadJournaled(jnl, artDir, "T1"); ok {
		t.Fatal("corrupted artifact resumed")
	}
	if _, ok := loadJournaled(jnl, artDir, "T9"); ok {
		t.Fatal("never-run experiment resumed")
	}
}
