package main

import (
	"math"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                  string
		scale, sampleEvery    float64
		par, workers, retries int
		ok                    bool
	}{
		{"defaults", 1, 0, 0, 1, 0, true},
		{"small scale", 0.05, 0.5, 8, 1, 0, true},
		{"zero scale", 0, 0, 0, 1, 0, false},
		{"negative scale", -1, 0, 0, 1, 0, false},
		{"nan scale", math.NaN(), 0, 0, 1, 0, false},
		{"inf scale", math.Inf(1), 0, 0, 1, 0, false},
		{"negative par", 1, 0, -1, 1, 0, false},
		{"negative sample-every", 1, -0.5, 0, 1, 0, false},
		{"nan sample-every", 1, math.NaN(), 0, 1, 0, false},
		{"parallel workers", 1, 0, 0, 8, 0, true},
		{"zero workers", 1, 0, 0, 0, 0, false},
		{"negative workers", 1, 0, 0, -4, 0, false},
		{"retries", 1, 0, 0, 1, 3, true},
		{"negative retries", 1, 0, 0, 1, -1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.scale, tc.sampleEvery, tc.par, tc.workers, tc.retries)
			if (err == nil) != tc.ok {
				t.Fatalf("validateFlags(%g, %g, %d, %d, %d) = %v, want ok=%t", tc.scale, tc.sampleEvery, tc.par, tc.workers, tc.retries, err, tc.ok)
			}
		})
	}
}
