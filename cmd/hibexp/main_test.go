package main

import (
	"math"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name               string
		scale, sampleEvery float64
		par                int
		ok                 bool
	}{
		{"defaults", 1, 0, 0, true},
		{"small scale", 0.05, 0.5, 8, true},
		{"zero scale", 0, 0, 0, false},
		{"negative scale", -1, 0, 0, false},
		{"nan scale", math.NaN(), 0, 0, false},
		{"inf scale", math.Inf(1), 0, 0, false},
		{"negative par", 1, 0, -1, false},
		{"negative sample-every", 1, -0.5, 0, false},
		{"nan sample-every", 1, math.NaN(), 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.scale, tc.sampleEvery, tc.par)
			if (err == nil) != tc.ok {
				t.Fatalf("validateFlags(%g, %g, %d) = %v, want ok=%t", tc.scale, tc.sampleEvery, tc.par, err, tc.ok)
			}
		})
	}
}
