package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The interrupt-resume test re-execs this test binary as hibchaos
// (TestMain dispatches on the env var), so the subprocess runs exactly
// the signal wiring under test without a separate `go build`.
const runMainEnv = "HIBCHAOS_RUN_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(runMainEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func hibchaosCmd(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), runMainEnv+"=1")
	return cmd
}

// runHibchaos runs to completion and returns stdout. Exit status 1 is
// legitimate (a genuinely failing scenario); anything else is fatal.
func runHibchaos(t *testing.T, args ...string) []byte {
	t.Helper()
	cmd := hibchaosCmd(args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if err != nil && cmd.ProcessState.ExitCode() != 1 {
		t.Fatalf("hibchaos %v: %v\nstderr: %s", args, err, errb.String())
	}
	return out.Bytes()
}

// A SIGINT mid-soak drains the pool with every journaled verdict durable;
// resuming completes the soak and the merged report is byte-identical to
// an uninterrupted one's.
func TestSIGINTDrainAndResume(t *testing.T) {
	sel := []string{"-seed", "3", "-n", "30", "-par", "1"}
	clean := runHibchaos(t, sel...)

	jnl := filepath.Join(t.TempDir(), "soak.jsonl")
	cmd := hibchaosCmd(append(sel, "-journal", jnl)...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until a few verdicts are durable, then interrupt mid-soak.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(jnl); err == nil &&
			strings.Count(string(data), `"status":"done"`) >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	code := cmd.ProcessState.ExitCode()
	// 130 = interrupted mid-soak; 0/1 = the soak won the race and
	// finished first. Both leave a resumable journal.
	if code != 130 && code != 0 && code != 1 {
		t.Fatalf("interrupted soak: exit %d (err %v)", code, err)
	}

	resumed := runHibchaos(t, append(sel, "-journal", jnl, "-resume")...)
	if !bytes.Equal(clean, resumed) {
		t.Fatalf("resumed soak report diverged:\n%s\nvs\n%s", clean, resumed)
	}
}
