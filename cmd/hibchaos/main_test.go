package main

import "testing"

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                    string
		n, par, budget, workers int
		ok                      bool
	}{
		{"defaults", 200, 0, 120, 0, true},
		{"sequential", 1, 1, 1, 1, true},
		{"zero scenarios", 0, 0, 120, 0, true},
		{"negative n", -1, 0, 120, 0, false},
		{"negative par", 10, -2, 120, 0, false},
		{"zero budget", 10, 0, 0, 0, false},
		{"negative budget", 10, 0, -5, 0, false},
		{"forced workers", 10, 0, 120, 8, true},
		{"negative workers", 10, 0, 120, -1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.n, tc.par, tc.budget, tc.workers)
			if (err == nil) != tc.ok {
				t.Fatalf("validateFlags(%d, %d, %d, %d) = %v, want ok=%t", tc.n, tc.par, tc.budget, tc.workers, err, tc.ok)
			}
		})
	}
}
