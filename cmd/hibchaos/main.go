// Command hibchaos soaks the simulator in randomized scenarios and holds
// every one to the invariant checker and the metamorphic oracles
// (repeat-determinism, armed==unarmed, panic freedom, kill-and-restore).
// Failures are automatically shrunk to minimal reproducers; with -out
// each repro is written to a self-contained file that `hibsim -repro
// <file>` replays exactly.
//
// Usage examples:
//
//	hibchaos -n 500                     # 500 scenarios, default seed
//	hibchaos -seed 7 -n 5000 -par 8     # big soak, 8 workers
//	hibchaos -n 100 -out repros/        # write repro files on failure
//	hibchaos -n 5000 -journal soak.jsonl          # durable verdicts
//	hibchaos -n 5000 -journal soak.jsonl -resume  # continue a killed soak
//
// For a fixed -seed and -n the report on stdout is byte-identical across
// -par widths and invocations; progress chatter goes to stderr under -v.
// With -journal every scenario's verdict is fsynced to an append-only
// JSONL file as it lands; after a crash (or Ctrl-C, which drains the
// pool and exits cleanly), -resume replays recorded verdicts instead of
// re-running those scenarios and the merged report is byte-identical to
// an uninterrupted soak's. The exit status is 0 for a clean soak, 1 when
// any scenario failed, and 2 for flag errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hibernator/internal/chaos"
	"hibernator/internal/cliutil"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "master seed; scenario i derives from (seed, i)")
		n           = flag.Int("n", 200, "number of scenarios to generate and judge")
		par         = flag.Int("par", 0, "worker pool width (0 = GOMAXPROCS, 1 = sequential)")
		workers     = flag.Int("workers", 0, "force every scenario's intra-run engine width (0 = keep the per-scenario sampled value)")
		budget      = flag.Int("budget", chaos.DefaultShrinkBudget, "max oracle executions spent shrinking each failure (1 execution = 3 simulation runs)")
		out         = flag.String("out", "", "directory for repro files (one per failure)")
		injectBug   = flag.Bool("inject-bug", false, "deliberately skew one disk's energy ledger in every scenario (self-test: the soak must catch and shrink it)")
		journalPath = flag.String("journal", "", "append-only verdict journal (JSONL) for crash-safe long soaks")
		resume      = flag.Bool("resume", false, "with -journal: reuse journaled verdicts instead of re-running those scenarios")
		verbose     = flag.Bool("v", false, "print progress to stderr")
	)
	flag.Parse()

	if err := validateFlags(*n, *par, *budget, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "hibchaos: %v\n", err)
		os.Exit(2)
	}
	if *resume && *journalPath == "" {
		fmt.Fprintf(os.Stderr, "hibchaos: -resume requires -journal\n")
		os.Exit(2)
	}

	// First SIGINT/SIGTERM drains the pool (journaled verdicts stay
	// durable); a second one restores default handling and kills the
	// process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	opts := chaos.SoakOptions{
		Seed: *seed, N: *n, Workers: *par, SimWorkers: *workers,
		ShrinkBudget: *budget, OutDir: *out, InjectBug: *injectBug,
		Journal: *journalPath, Resume: *resume, Context: ctx,
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	start := time.Now()
	rep, err := chaos.Soak(opts)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "hibchaos: interrupted; journaled verdicts are durable (re-run with -resume)\n")
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "hibchaos: %v\n", err)
		os.Exit(1)
	}
	if err := rep.Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hibchaos: %v\n", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "hibchaos: done in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if !rep.Ok() {
		os.Exit(1)
	}
}

// validateFlags applies the numeric-flag rules; one line, exit 2, never a
// silently absurd soak. Table-tested in main_test.go.
func validateFlags(n, par, budget, workers int) error {
	return cliutil.FirstError(
		cliutil.NonNegativeInt("-n", n),
		cliutil.NonNegativeInt("-par", par),
		cliutil.PositiveInt("-budget", budget),
		cliutil.NonNegativeInt("-workers", workers),
	)
}
