// Command hibchaos soaks the simulator in randomized scenarios and holds
// every one to the invariant checker and the metamorphic oracles
// (repeat-determinism, armed==unarmed, panic freedom). Failures are
// automatically shrunk to minimal reproducers; with -out each repro is
// written to a self-contained file that `hibsim -repro <file>` replays
// exactly.
//
// Usage examples:
//
//	hibchaos -n 500                     # 500 scenarios, default seed
//	hibchaos -seed 7 -n 5000 -par 8     # big soak, 8 workers
//	hibchaos -n 100 -out repros/        # write repro files on failure
//
// For a fixed -seed and -n the report on stdout is byte-identical across
// -par widths and invocations; progress chatter goes to stderr under -v.
// The exit status is 0 for a clean soak, 1 when any scenario failed, and
// 2 for flag errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hibernator/internal/chaos"
	"hibernator/internal/cliutil"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "master seed; scenario i derives from (seed, i)")
		n         = flag.Int("n", 200, "number of scenarios to generate and judge")
		par       = flag.Int("par", 0, "worker pool width (0 = GOMAXPROCS, 1 = sequential)")
		workers   = flag.Int("workers", 0, "force every scenario's intra-run engine width (0 = keep the per-scenario sampled value)")
		budget    = flag.Int("budget", chaos.DefaultShrinkBudget, "max oracle executions spent shrinking each failure (1 execution = 3 simulation runs)")
		out       = flag.String("out", "", "directory for repro files (one per failure)")
		injectBug = flag.Bool("inject-bug", false, "deliberately skew one disk's energy ledger in every scenario (self-test: the soak must catch and shrink it)")
		verbose   = flag.Bool("v", false, "print progress to stderr")
	)
	flag.Parse()

	if err := validateFlags(*n, *par, *budget, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "hibchaos: %v\n", err)
		os.Exit(2)
	}

	opts := chaos.SoakOptions{
		Seed: *seed, N: *n, Workers: *par, SimWorkers: *workers,
		ShrinkBudget: *budget, OutDir: *out, InjectBug: *injectBug,
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	start := time.Now()
	rep, err := chaos.Soak(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hibchaos: %v\n", err)
		os.Exit(1)
	}
	if err := rep.Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hibchaos: %v\n", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "hibchaos: done in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if !rep.Ok() {
		os.Exit(1)
	}
}

// validateFlags applies the numeric-flag rules; one line, exit 2, never a
// silently absurd soak. Table-tested in main_test.go.
func validateFlags(n, par, budget, workers int) error {
	return cliutil.FirstError(
		cliutil.NonNegativeInt("-n", n),
		cliutil.NonNegativeInt("-par", par),
		cliutil.PositiveInt("-budget", budget),
		cliutil.NonNegativeInt("-workers", workers),
	)
}
