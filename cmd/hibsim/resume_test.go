package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI resume tests re-exec this test binary as hibsim (TestMain
// dispatches on the env var), so the subprocess runs exactly the flag
// wiring under test without a separate `go build`.
const runMainEnv = "HIBSIM_RUN_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(runMainEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runHibsim runs to completion and returns stdout; wantOK=false expects a
// non-zero exit and returns stderr instead.
func runHibsim(t *testing.T, wantOK bool, args ...string) []byte {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), runMainEnv+"=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if wantOK {
		if err != nil {
			t.Fatalf("hibsim %v: %v\nstderr: %s", args, err, errb.String())
		}
		return out.Bytes()
	}
	if err == nil {
		t.Fatalf("hibsim %v: expected failure, got success\nstdout: %s", args, out.String())
	}
	return errb.Bytes()
}

// resultLines strips the operational chatter — the "resumed"/"snapshots"
// status lines, the wall-clock half of the "simulated" line, and the
// metrics destination path — so a resumed run's report can be compared
// to an uninterrupted one's.
func resultLines(out []byte) string {
	var keep []string
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "resumed ") || strings.HasPrefix(line, "snapshots ") {
			continue
		}
		if strings.HasPrefix(line, "simulated ") {
			line, _, _ = strings.Cut(line, ", wall")
		}
		if strings.HasPrefix(line, "metrics ") {
			// Sample count and path differ by design on a resumed run
			// (pre-checkpoint samples are suppressed); the exact-tail
			// check below covers the stream's content.
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// The hibsim-level restore contract: checkpoint a run, resume from the
// latest checkpoint with the same flags, and the final report — and the
// metrics tail — match the uninterrupted run, with -check armed the
// whole way.
func TestSnapshotResumeCLI(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "ckpt.snap")
	base := []string{"-scheme", "hibernator", "-workload", "cello", "-duration", "600",
		"-groups", "2", "-group-disks", "3", "-seed", "7", "-check",
		"-sample-every", "50"}

	full := runHibsim(t, true, append(base, "-metrics-out", filepath.Join(dir, "full.jsonl"))...)
	ckpt := runHibsim(t, true, append(base,
		"-metrics-out", filepath.Join(dir, "ckpt.jsonl"),
		"-snapshot-out", snap, "-snapshot-every", "150")...)
	if resultLines(full) != resultLines(ckpt) {
		t.Fatalf("snapshotting perturbed the run:\n%s\nvs\n%s", full, ckpt)
	}

	resumed := runHibsim(t, true, append(base,
		"-metrics-out", filepath.Join(dir, "res.jsonl"),
		"-resume-from", snap)...)
	if resultLines(full) != resultLines(resumed) {
		t.Fatalf("resumed run diverged:\n%s\nvs\n%s", full, resumed)
	}
	if !bytes.Contains(resumed, []byte("state verified")) {
		t.Fatalf("resumed run did not report the restore:\n%s", resumed)
	}

	// The resumed metrics stream must be an exact tail of the full one:
	// samples before the checkpoint are suppressed, everything after is
	// byte-identical.
	fullM, err := os.ReadFile(filepath.Join(dir, "full.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	resM, err := os.ReadFile(filepath.Join(dir, "res.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(resM) == 0 || len(resM) >= len(fullM) {
		t.Fatalf("resumed metrics: %d bytes, full run: %d bytes; want a proper non-empty tail", len(resM), len(fullM))
	}
	if !bytes.HasSuffix(fullM, resM) {
		t.Fatalf("resumed metrics stream is not a tail of the full run's")
	}
}

// Resuming under different flags must fail up front, naming the
// mismatched identity key — never silently continue a different run.
func TestResumeRejectsChangedFlags(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "ckpt.snap")
	base := []string{"-scheme", "tpm", "-workload", "oltp", "-duration", "400",
		"-groups", "2", "-group-disks", "3", "-seed", "3"}
	runHibsim(t, true, append(base, "-snapshot-out", snap, "-snapshot-every", "100")...)

	// Changed CLI workload identity.
	errOut := runHibsim(t, false, append(base[:2], "-workload", "cello", "-duration", "400",
		"-groups", "2", "-group-disks", "3", "-seed", "3", "-resume-from", snap)...)
	if !bytes.Contains(errOut, []byte("cli.workload")) {
		t.Fatalf("changed workload not named: %s", errOut)
	}
	// Changed simulation config (seed).
	errOut = runHibsim(t, false, append(base[:len(base)-1], "9", "-resume-from", snap)...)
	if !bytes.Contains(errOut, []byte("config.seed")) {
		t.Fatalf("changed seed not named: %s", errOut)
	}
	// Changed worker count. The output contract makes -workers invisible
	// in the report, but restore identity is strict: this is not the run
	// that was checkpointed, and the diagnostic is a single line naming
	// the key.
	errOut = runHibsim(t, false, append(base, "-workers", "4", "-resume-from", snap)...)
	if !bytes.Contains(errOut, []byte("cli.workers")) {
		t.Fatalf("changed workers not named: %s", errOut)
	}
	if n := bytes.Count(bytes.TrimRight(errOut, "\n"), []byte("\n")); n != 0 {
		t.Fatalf("want a one-line diagnostic, got %d lines: %s", n+1, errOut)
	}
	// Changed epoch (recorded as its resolved default, duration/4).
	errOut = runHibsim(t, false, append(base, "-epoch", "123", "-resume-from", snap)...)
	if !bytes.Contains(errOut, []byte("cli.epoch")) {
		t.Fatalf("changed epoch not named: %s", errOut)
	}
}
