// Command hibsim runs one disk-array simulation under a chosen
// energy-management scheme and prints the energy/performance summary.
//
// Usage examples:
//
//	hibsim -scheme hibernator -workload oltp -duration 3600 -rate 50
//	hibsim -scheme tpm -workload cello -duration 86400 -goal 8ms
//	hibsim -scheme base -trace requests.csv -duration 600
//	hibsim -repro seed1-17.repro        # replay a hibchaos reproducer
//
// Crash-safe runs: -snapshot-out checkpoints the full simulation state
// every -snapshot-every simulated seconds (atomically — a kill -9 can
// never leave a torn file), and -resume-from restarts a killed run from
// its last checkpoint with byte-identical final output.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers for -pprof
	"os"
	"sort"
	"strings"
	"time"

	"hibernator/internal/array"
	"hibernator/internal/chaos"
	"hibernator/internal/cliutil"
	"hibernator/internal/diskmodel"
	"hibernator/internal/fault"
	"hibernator/internal/hibernator"
	"hibernator/internal/invariant"
	"hibernator/internal/obs"
	"hibernator/internal/policy"
	"hibernator/internal/raid"
	"hibernator/internal/sim"
	"hibernator/internal/snapshot"
	"hibernator/internal/trace"
)

func main() {
	var (
		scheme     = flag.String("scheme", "hibernator", "base | tpm | drpm | pdc | maid | hibernator")
		workload   = flag.String("workload", "oltp", "oltp | cello (ignored with -trace)")
		traceFile  = flag.String("trace", "", "CSV trace file (overrides -workload)")
		duration   = flag.Float64("duration", 3600, "simulated seconds")
		rate       = flag.Float64("rate", 50, "mean request rate for the oltp workload (req/s)")
		groups     = flag.Int("groups", 4, "RAID groups")
		groupDisks = flag.Int("group-disks", 4, "disks per group")
		raidLevel  = flag.String("raid", "raid5", "raid0 | raid1 | raid5")
		levels     = flag.Int("levels", 5, "multi-speed RPM levels (1 = conventional disk)")
		family     = flag.String("disk", "enterprise", "disk family: enterprise (Ultrastar-class) | sff (2.5\" low-power)")
		sched      = flag.String("sched", "fcfs", "disk queue discipline: fcfs | sptf")
		failAt     = flag.Float64("fail-at", 0, "inject a disk failure (group 0, disk 0) at this time; 0 disables")
		cacheMB    = flag.Int64("cache-mb", 256, "controller cache size (0 disables)")
		goal       = flag.Duration("goal", 0, "response-time goal (e.g. 8ms; 0 = none)")
		epoch      = flag.Float64("epoch", 0, "epoch seconds for hibernator/pdc (default duration/4)")
		seed       = flag.Int64("seed", 1, "random seed")
		faultsFile = flag.String("faults", "", "CSV fault schedule (lines: t,disk,failstop | t,disk,failslow,factor[,ramp] | t,disk,transient,prob[,dur] | t,disk,latent,lo,hi | t,disk,spinfail,prob[,retries])")
		faultRate  = flag.Float64("fault-rate", 0, "ambient per-op transient error probability on every disk [0,1)")
		spinFail   = flag.Float64("spin-fail-rate", 0, "per-attempt spin-up failure probability on every disk [0,1)")
		retries    = flag.Int("retries", 2, "same-disk retries per transient error (used once faults are armed)")
		workers    = flag.Int("workers", 1, "intra-run parallelism: worker goroutines for the group-partitioned engine (1 = sequential; output is identical for any value)")
		opDeadline = flag.Duration("op-deadline", 250*time.Millisecond, "per-attempt deadline once faults are armed (0 disables)")

		reproFile   = flag.String("repro", "", "replay a hibchaos repro file and re-judge it (all other flags ignored)")
		snapOut     = flag.String("snapshot-out", "", "checkpoint the simulation state to this file (written atomically, overwritten each epoch)")
		snapEvery   = flag.Float64("snapshot-every", 0, "snapshot interval in simulated seconds (default duration/4 when -snapshot-out is set)")
		resumeFrom  = flag.String("resume-from", "", "resume a killed run from a -snapshot-out file; flags must match the original run")
		check       = flag.Bool("check", false, "arm the invariant checker (internal/invariant); violations print to stderr and exit non-zero")
		metricsOut  = flag.String("metrics-out", "", "write per-interval metrics to this file (JSONL; a .csv suffix selects CSV)")
		traceOut    = flag.String("trace-out", "", "write the policy decision trace to this file (JSONL; a .csv suffix selects CSV)")
		sampleEvery = flag.Float64("sample-every", 0, "metrics sampling interval in simulated seconds (default: the response window)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *reproFile != "" {
		os.Exit(runRepro(*reproFile))
	}

	// Validate numeric flags up front: one clear line and a non-zero exit
	// beats a panic (or a silently absurd run) from deep inside the model.
	// The helpers reject NaN and infinities too — `*duration <= 0` alone
	// would wave NaN straight through.
	if err := validateFlags(simFlags{
		duration: *duration, rate: *rate, failAt: *failAt, epoch: *epoch,
		faultRate: *faultRate, spinFail: *spinFail, sampleEvery: *sampleEvery,
		goal: *goal, opDeadline: *opDeadline,
		groups: *groups, groupDisks: *groupDisks, levels: *levels, retries: *retries,
		workers: *workers, cacheMB: *cacheMB,
	}); err != nil {
		fatalf("%v", err)
	}
	servePprof(*pprofAddr)

	var spec diskmodel.Spec
	switch strings.ToLower(*family) {
	case "enterprise":
		spec = diskmodel.SingleSpeedUltrastar()
		if *levels > 1 {
			spec = diskmodel.MultiSpeedUltrastar(*levels, 3000)
		}
	case "sff":
		spec = diskmodel.MultiSpeedSFF(*levels, 1800)
	default:
		fatalf("unknown disk family %q", *family)
	}
	var scheduler diskmodel.Scheduler
	switch strings.ToLower(*sched) {
	case "fcfs":
		scheduler = diskmodel.FCFS
	case "sptf":
		scheduler = diskmodel.SPTF
	default:
		fatalf("unknown scheduler %q", *sched)
	}
	var level raid.Level
	switch strings.ToLower(*raidLevel) {
	case "raid0":
		level = raid.RAID0
	case "raid1":
		level = raid.RAID1
	case "raid5":
		level = raid.RAID5
	default:
		fatalf("unknown RAID level %q", *raidLevel)
	}
	if *epoch == 0 {
		*epoch = *duration / 4
	}

	cfg := sim.Config{
		Spec:               spec,
		Groups:             *groups,
		GroupDisks:         *groupDisks,
		Level:              level,
		ExtentBytes:        64 << 20,
		CacheBytes:         *cacheMB << 20,
		RespGoal:           goal.Seconds(),
		Seed:               *seed,
		ExpectedRotLatency: true,
		Scheduler:          scheduler,
		Workers:            *workers,
	}

	// Fault injection: a CSV schedule and/or ambient rates. Arming any of
	// them also arms the retry/timeout policy; with none of them the retry
	// machinery stays a strict no-op and runs are bit-identical to a build
	// that never heard of faults.
	var faultSched *fault.Schedule
	if *faultsFile != "" {
		var err error
		faultSched, err = fault.Load(*faultsFile)
		if err != nil {
			fatalf("%v", err)
		}
	}
	if *faultRate > 0 || *spinFail > 0 {
		if faultSched == nil {
			faultSched = &fault.Schedule{}
		}
		faultSched.Rates.TransientProb = *faultRate
		faultSched.Rates.SpinUpFailProb = *spinFail
		faultSched.Rates.SpinUpRetries = 2
	}
	if faultSched != nil {
		cfg.Faults = faultSched
		cfg.Retry = array.RetryPolicy{
			MaxRetries:    *retries,
			Backoff:       0.01,
			BackoffFactor: 4,
			OpDeadline:    opDeadline.Seconds(),
			SuspectAfter:  10,
			EvictAfter:    1000,
			AutoRebuild:   true,
		}
	}

	var ctrl sim.Controller
	switch strings.ToLower(*scheme) {
	case "base":
		ctrl = policy.NewBase()
	case "tpm":
		ctrl = policy.NewTPM(0)
	case "drpm":
		ctrl = policy.NewDRPM()
	case "pdc":
		p := policy.NewPDC()
		p.Epoch = *epoch
		ctrl = p
	case "maid":
		cfg.SpareDisks = 2
		ctrl = policy.NewMAID()
	case "hibernator":
		ctrl = hibernator.New(hibernator.Options{Epoch: *epoch})
	default:
		fatalf("unknown scheme %q", *scheme)
	}

	var src trace.Source
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		src, err = trace.NewCSVSource(f)
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		vol, err := sim.LogicalBytes(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		switch strings.ToLower(*workload) {
		case "oltp":
			src, err = trace.NewOLTP(trace.OLTPConfig{
				Seed: *seed + 11, VolumeBytes: vol, Duration: *duration, MaxRate: *rate,
			})
		case "cello":
			src, err = trace.NewCello(trace.CelloConfig{
				Seed: *seed + 11, VolumeBytes: vol, Duration: *duration, DayPeriod: *duration,
			})
		default:
			fatalf("unknown workload %q", *workload)
		}
		if err != nil {
			fatalf("%v", err)
		}
	}

	if *failAt > 0 {
		ctrl = &failingController{inner: ctrl, at: *failAt}
	}
	if *metricsOut != "" {
		cfg.Metrics = obs.NewRegistry(0)
		cfg.ObsSampleEvery = *sampleEvery
	}
	if *traceOut != "" {
		cfg.Trace = obs.NewTrace()
	}
	var checker *invariant.Checker
	if *check {
		checker = invariant.New()
		cfg.Invariants = checker
	}

	// Snapshot checkpointing and resume. The sim layer validates the
	// config.* section itself; the cli.* entries extend the identity check
	// to what only this binary knows — which workload generator (or trace
	// file) produced the request stream.
	wl := strings.ToLower(*workload)
	if *traceFile != "" {
		wl = "csv"
	}
	tf := *traceFile
	if tf == "" {
		tf = "-"
	}
	cliIdent := [][2]string{
		{"cli.workload", wl},
		{"cli.tracefile", tf},
		{"cli.rate", fmt.Sprintf("%g", *rate)},
		{"cli.failat", fmt.Sprintf("%g", *failAt)},
		{"cli.workers", fmt.Sprintf("%d", *workers)},
		{"cli.epoch", fmt.Sprintf("%g", *epoch)},
	}
	if *snapOut != "" {
		every := *snapEvery
		if every == 0 {
			every = *duration / 4
		}
		cfg.SnapshotEvery = every
		cfg.SnapshotSink = func(st *snapshot.State) error {
			for _, e := range cliIdent {
				st.Set(e[0], e[1])
			}
			return st.Save(*snapOut)
		}
	}
	var resumedAt float64
	if *resumeFrom != "" {
		st, err := snapshot.Load(*resumeFrom)
		if err != nil {
			fatalf("%v", err)
		}
		for _, e := range cliIdent {
			if v, ok := st.Get(e[0]); !ok || v != e[1] {
				fatalf("snapshot %s: %s recorded %q but this run has %q (resume needs the original flags)",
					*resumeFrom, e[0], v, e[1])
			}
		}
		if resumedAt, err = st.Float("t"); err != nil {
			fatalf("%v", err)
		}
		cfg.ResumeFrom = st
	}

	start := time.Now()
	res, err := sim.Run(cfg, src, ctrl, *duration)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("scheme          %s\n", res.Scheme)
	fmt.Printf("simulated       %.0f s (%.1f h), wall %v\n", res.Duration, res.Duration/3600, time.Since(start).Round(time.Millisecond))
	if *resumeFrom != "" {
		fmt.Printf("resumed         from %s at t=%.0f s (state verified)\n", *resumeFrom, resumedAt)
	}
	if *snapOut != "" {
		fmt.Printf("snapshots       every %.0f s -> %s\n", cfg.SnapshotEvery, *snapOut)
	}
	fmt.Printf("requests        %d (cache-absorbed %d)\n", res.Requests, res.CacheHits)
	fmt.Printf("mean response   %.2f ms (P95 %.2f, P99 %.2f, max %.1f s)\n",
		res.MeanResp*1000, res.P95Resp*1000, res.P99Resp*1000, res.MaxResp)
	fmt.Printf("energy          %.1f kJ (%.1f W average over all disks)\n", res.Energy/1000, res.Energy/res.Duration)
	states := make([]string, 0, len(res.EnergyByState))
	for s := range res.EnergyByState {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Printf("  %-10s %.1f kJ\n", s, res.EnergyByState[s]/1000)
	}
	fmt.Printf("transitions     %d spin-ups, %d spin-downs, %d speed shifts\n", res.SpinUps, res.SpinDowns, res.LevelShifts)
	fmt.Printf("migrations      %d extents, %.1f GiB\n", res.Migrations, float64(res.MigratedBytes)/(1<<30))
	if cfg.Faults != nil {
		f := res.Faults
		fmt.Printf("faults          %d injected (%d skipped), %d transient errs, %d latent, %d spin-up failures\n",
			f.Injected, f.SkippedInjections, f.TransientErrs, f.LatentErrs, f.SpinUpFailures)
		fmt.Printf("fault handling  %d retries, %d timeouts, %d fallbacks, %d evictions, %d disk failures, %d rebuilds, %d lost IOs\n",
			f.Retries, f.Timeouts, f.Fallbacks, f.Evictions, f.DiskFailures, f.Rebuilds, f.LostIOs)
	}
	if cfg.RespGoal > 0 {
		fmt.Printf("goal            %.2f ms, violated in %.1f%% of windows\n", cfg.RespGoal*1000, res.GoalViolationFrac*100)
	}
	if *metricsOut != "" {
		if err := cfg.Metrics.WriteFile(*metricsOut); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("metrics         %d samples x %d series -> %s\n",
			cfg.Metrics.Samples(), len(cfg.Metrics.Names()), *metricsOut)
	}
	if *traceOut != "" {
		if err := cfg.Trace.WriteFile(*traceOut); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("trace           %d events -> %s\n", cfg.Trace.Len(), *traceOut)
	}
	if checker != nil {
		if checker.Ok() {
			fmt.Printf("invariants      ok (0 violations)\n")
		} else {
			for _, v := range checker.Violations() {
				fmt.Fprintf(os.Stderr, "hibsim: invariant: %s\n", v.String())
			}
			fatalf("invariant checker found %d violation(s)", checker.Count())
		}
	}
}

// simFlags carries every numeric flag through validation, so the rules
// are table-testable without spawning a process.
type simFlags struct {
	duration, rate, failAt, epoch, faultRate, spinFail, sampleEvery float64
	goal, opDeadline                                                time.Duration
	groups, groupDisks, levels, retries, workers                    int
	cacheMB                                                         int64
}

// validateFlags applies the numeric-flag rules. Table-tested in
// main_test.go.
func validateFlags(f simFlags) error {
	return cliutil.FirstError(
		cliutil.Positive("-duration", f.duration),
		cliutil.Positive("-rate", f.rate),
		cliutil.PositiveInt("-groups", f.groups),
		cliutil.PositiveInt("-group-disks", f.groupDisks),
		cliutil.PositiveInt("-levels", f.levels),
		cliutil.NonNegativeInt64("-cache-mb", f.cacheMB),
		cliutil.NonNegative("-fail-at", f.failAt),
		cliutil.NonNegative("-epoch", f.epoch),
		cliutil.NonNegative("-goal", f.goal.Seconds()),
		cliutil.Prob("-fault-rate", f.faultRate),
		cliutil.Prob("-spin-fail-rate", f.spinFail),
		cliutil.NonNegativeInt("-retries", f.retries),
		cliutil.PositiveInt("-workers", f.workers),
		cliutil.NonNegative("-op-deadline", f.opDeadline.Seconds()),
		cliutil.NonNegative("-sample-every", f.sampleEvery),
	)
}

// runRepro replays a hibchaos reproducer: it loads the scenario, runs the
// full chaos oracle on it (armed run, repeat run, unarmed run) and reports
// the verdict. Exit status 0 means the scenario no longer fails — i.e. the
// bug it reproduced is fixed — and 1 means it still does.
func runRepro(path string) int {
	sc, err := chaos.LoadRepro(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hibsim: %v\n", err)
		return 1
	}
	fmt.Printf("repro           %s\n", path)
	fmt.Printf("scenario        %s\n", sc.String())
	start := time.Now()
	fail := chaos.Execute(sc)
	fmt.Printf("judged          %d runs in %v\n", sc.RunsPerExecute(), time.Since(start).Round(time.Millisecond))
	if fail != nil {
		fmt.Printf("verdict         FAIL (%s)\n", fail.Kind)
		fmt.Printf("detail          %s\n", fail.Detail)
		return 1
	}
	fmt.Printf("verdict         ok (scenario no longer fails)\n")
	return 0
}

// servePprof exposes net/http/pprof on addr in the background; empty addr
// disables it. The simulation does not wait for the listener: profiling a
// short run means hitting the endpoint while it executes.
func servePprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "hibsim: pprof: %v\n", err)
		}
	}()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hibsim: "+format+"\n", args...)
	os.Exit(1)
}

// failingController wraps the chosen policy and injects one disk failure.
type failingController struct {
	inner sim.Controller
	at    float64
}

// Name delegates to the wrapped controller.
func (f *failingController) Name() string { return f.inner.Name() }

// Init initializes the wrapped controller and schedules the injected
// disk failure.
func (f *failingController) Init(env *sim.Env) {
	f.inner.Init(env)
	env.Engine.Schedule(f.at, func() {
		if err := env.Array.FailDisk(0, 0); err != nil {
			fmt.Fprintf(os.Stderr, "hibsim: failure injection: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "hibsim: disk 0/0 failed at t=%.0f\n", env.Engine.Now())
		}
	})
}
