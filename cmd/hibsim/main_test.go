package main

import (
	"math"
	"testing"
	"time"
)

// goodFlags is the hibsim flag default set, known valid.
func goodFlags() simFlags {
	return simFlags{
		duration: 3600, rate: 50,
		groups: 4, groupDisks: 4, levels: 5,
		cacheMB: 256, retries: 2, workers: 1,
		opDeadline: 250 * time.Millisecond,
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*simFlags)
		ok     bool
	}{
		{"defaults", func(f *simFlags) {}, true},
		{"zero goal and epoch", func(f *simFlags) { f.goal, f.epoch = 0, 0 }, true},
		{"zero duration", func(f *simFlags) { f.duration = 0 }, false},
		{"nan duration", func(f *simFlags) { f.duration = math.NaN() }, false},
		{"inf duration", func(f *simFlags) { f.duration = math.Inf(1) }, false},
		{"negative rate", func(f *simFlags) { f.rate = -1 }, false},
		{"nan rate", func(f *simFlags) { f.rate = math.NaN() }, false},
		{"zero groups", func(f *simFlags) { f.groups = 0 }, false},
		{"zero group-disks", func(f *simFlags) { f.groupDisks = 0 }, false},
		{"zero levels", func(f *simFlags) { f.levels = 0 }, false},
		{"negative cache", func(f *simFlags) { f.cacheMB = -1 }, false},
		{"negative fail-at", func(f *simFlags) { f.failAt = -1 }, false},
		{"nan fail-at", func(f *simFlags) { f.failAt = math.NaN() }, false},
		{"negative epoch", func(f *simFlags) { f.epoch = -1 }, false},
		{"negative goal", func(f *simFlags) { f.goal = -time.Second }, false},
		{"fault-rate one", func(f *simFlags) { f.faultRate = 1 }, false},
		{"nan fault-rate", func(f *simFlags) { f.faultRate = math.NaN() }, false},
		{"negative fault-rate", func(f *simFlags) { f.faultRate = -0.1 }, false},
		{"spin-fail-rate one", func(f *simFlags) { f.spinFail = 1 }, false},
		{"valid spin-fail-rate", func(f *simFlags) { f.spinFail = 0.5 }, true},
		{"negative retries", func(f *simFlags) { f.retries = -1 }, false},
		{"negative op-deadline", func(f *simFlags) { f.opDeadline = -time.Second }, false},
		{"negative sample-every", func(f *simFlags) { f.sampleEvery = -1 }, false},
		{"parallel workers", func(f *simFlags) { f.workers = 8 }, true},
		{"zero workers", func(f *simFlags) { f.workers = 0 }, false},
		{"negative workers", func(f *simFlags) { f.workers = -4 }, false},
		{"nan sample-every", func(f *simFlags) { f.sampleEvery = math.NaN() }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := goodFlags()
			tc.mutate(&f)
			err := validateFlags(f)
			if (err == nil) != tc.ok {
				t.Fatalf("validateFlags(%+v) = %v, want ok=%t", f, err, tc.ok)
			}
		})
	}
}
