package main

import "testing"

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name     string
		scale    float64
		workers  int
		pr       int
		smoke    bool
		out      string
		baseline string
		ok       bool
	}{
		{"record mode", 0.05, 1, 6, false, "BENCH_0006.json", "", true},
		{"smoke mode", 0.05, 1, 0, true, "", "BENCH_0006.json", true},
		{"record without out", 0.05, 1, 6, false, "", "", false},
		{"smoke without baseline", 0.05, 1, 0, true, "", "", false},
		{"zero scale", 0, 1, 6, false, "x.json", "", false},
		{"zero workers", 0.05, 0, 6, false, "x.json", "", false},
		{"negative pr", 0.05, 1, -1, false, "x.json", "", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.scale, c.workers, c.pr, c.smoke, c.out, c.baseline)
			if (err == nil) != c.ok {
				t.Fatalf("validateFlags(%+v) = %v, want ok=%v", c, err, c.ok)
			}
		})
	}
}
