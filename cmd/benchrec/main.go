// Command benchrec records and gates the repo's performance trajectory.
//
// Record mode measures the event-engine kernels with testing.Benchmark,
// times the reference experiment suite in-process, and writes one
// canonical BENCH_NNNN.json (schema in EXPERIMENTS.md):
//
//	benchrec -pr 6 -out BENCH_0006.json
//
// Smoke mode is the CI gate: re-measure just the engine kernels and fail
// on any allocation per event or a >2x ns/event regression against the
// committed baseline. It skips the slow end-to-end timing.
//
//	benchrec -smoke -baseline BENCH_0006.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hibernator/internal/benchrec"
	"hibernator/internal/cliutil"
)

func main() {
	var (
		out      = flag.String("out", "", "write the bench record to this path (record mode)")
		pr       = flag.Int("pr", 0, "pull-request ordinal stamped into the record (record mode)")
		scale    = flag.Float64("scale", 0.05, "duration scale for the end-to-end reference run")
		workers  = flag.Int("workers", 1, "intra-run engine width for the end-to-end run")
		smoke    = flag.Bool("smoke", false, "gate mode: compare fresh engine kernels against -baseline and exit non-zero on regression")
		baseline = flag.String("baseline", "", "baseline BENCH_NNNN.json for -smoke")
	)
	flag.Parse()

	if err := validateFlags(*scale, *workers, *pr, *smoke, *out, *baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchrec: %v\n", err)
		os.Exit(2)
	}

	if *smoke {
		base, err := benchrec.Load(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrec: %v\n", err)
			os.Exit(1)
		}
		fresh := benchrec.CollectEngine()
		report(fresh)
		if err := benchrec.Smoke(fresh, base.Engine); err != nil {
			fmt.Fprintf(os.Stderr, "benchrec: smoke gate: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("smoke gate passed")
		return
	}

	eng := benchrec.CollectEngine()
	report(eng)
	fmt.Fprintf(os.Stderr, "timing reference suite at scale %g...\n", *scale)
	start := time.Now()
	if err := benchrec.RunSuite(*scale, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "benchrec: reference suite: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start).Seconds()
	fmt.Printf("e2e: %.2fs wall for the reference suite\n", wall)

	rec := benchrec.NewRecord(*pr, eng, benchrec.CollectE2E(*scale, wall))
	if err := rec.Write(*out); err != nil {
		fmt.Fprintf(os.Stderr, "benchrec: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

// report prints the kernel numbers so CI logs show what was measured even
// when the gate passes.
func report(e benchrec.EngineBench) {
	fmt.Printf("engine: schedule+fire %.1f ns/event (%.2fM events/s), cancel %.1f, churn %.1f, depth10k %.1f, allocs/event %g\n",
		e.ScheduleFireNs, e.EventsPerSec/1e6, e.ScheduleCancelNs, e.ChurnNs, e.Depth10kNs, e.AllocsPerEvent)
}

// validateFlags applies the numeric and mode rules. Table-tested in
// main_test.go.
func validateFlags(scale float64, workers, pr int, smoke bool, out, baseline string) error {
	if err := cliutil.FirstError(
		cliutil.Positive("-scale", scale),
		cliutil.PositiveInt("-workers", workers),
		cliutil.NonNegativeInt("-pr", pr),
	); err != nil {
		return err
	}
	if smoke {
		if baseline == "" {
			return fmt.Errorf("-smoke requires -baseline")
		}
		return nil
	}
	if out == "" {
		return fmt.Errorf("record mode requires -out (or pass -smoke)")
	}
	return nil
}
