// Command tracegen emits a synthetic request trace in the CSV format
// hibsim consumes (time,offset,size,rw).
//
// Usage:
//
//	tracegen -workload oltp -duration 3600 -rate 80 -volume-gb 128 > oltp.csv
//	tracegen -workload cello -duration 86400 -o cello.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hibernator/internal/atomicio"
	"hibernator/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "oltp", "oltp | cello")
		duration = flag.Float64("duration", 3600, "trace length in seconds")
		rate     = flag.Float64("rate", 50, "request rate for oltp (req/s)")
		volumeGB = flag.Float64("volume-gb", 128, "logical volume size in GiB")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	vol := int64(*volumeGB * (1 << 30))
	var (
		src trace.Source
		err error
	)
	switch *workload {
	case "oltp":
		src, err = trace.NewOLTP(trace.OLTPConfig{
			Seed: *seed, VolumeBytes: vol, Duration: *duration, MaxRate: *rate,
		})
	case "cello":
		src, err = trace.NewCello(trace.CelloConfig{
			Seed: *seed, VolumeBytes: vol, Duration: *duration, DayPeriod: *duration,
		})
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		fatalf("%v", err)
	}

	var n int
	if *out != "" {
		// Atomic write: an interrupted tracegen never leaves a truncated
		// trace file that a later hibsim run would silently accept.
		err = atomicio.WriteFile(*out, func(w io.Writer) error {
			n, err = trace.WriteCSV(w, src)
			return err
		})
	} else {
		n, err = trace.WriteCSV(os.Stdout, src)
	}
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d requests\n", n)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
