package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Results must come back in submission order even when later jobs finish
// first.
func TestRunSetOrdering(t *testing.T) {
	const n = 32
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = func(context.Context) (any, error) {
			// Earlier jobs sleep longer, so completion order inverts
			// submission order.
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			return i, nil
		}
	}
	results, err := New(8).RunSet(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || r.Value.(int) != i {
			t.Fatalf("result %d = (%v, %v), want (%d, nil)", i, r.Value, r.Err, i)
		}
	}
}

func TestMapOrdering(t *testing.T) {
	out, err := Map(context.Background(), 4, 100, func(_ context.Context, i int) (string, error) {
		return fmt.Sprintf("job-%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("got %d results, want 100", len(out))
	}
	for i, s := range out {
		if want := fmt.Sprintf("job-%d", i); s != want {
			t.Fatalf("out[%d] = %q, want %q", i, s, want)
		}
	}
}

// A failing job cancels the set: its error propagates, and jobs not yet
// started are skipped with the context error.
func TestErrorPropagationAndSkip(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	jobs := make([]Job, 64)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) (any, error) {
			ran.Add(1)
			if i == 3 {
				return nil, boom
			}
			time.Sleep(time.Millisecond)
			return i, nil
		}
	}
	results, err := New(2).RunSet(context.Background(), jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if !errors.Is(results[3].Err, boom) {
		t.Fatalf("results[3].Err = %v, want %v", results[3].Err, boom)
	}
	if n := ran.Load(); n == 64 {
		t.Error("no jobs were skipped after the failure")
	}
	var skipped int
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Error("expected at least one skipped job carrying context.Canceled")
	}
}

// When several jobs fail, the lowest-indexed failure wins regardless of
// completion order, keeping the reported error schedule-independent.
func TestFirstErrorByIndex(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	jobs := []Job{
		func(context.Context) (any, error) {
			time.Sleep(20 * time.Millisecond) // fails last
			return nil, errLow
		},
		func(context.Context) (any, error) { return nil, errHigh }, // fails first
	}
	_, err := New(2).RunSet(context.Background(), jobs)
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want lowest-indexed %v", err, errLow)
	}
}

// External cancellation stops the set and surfaces the context error.
func TestExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = func(ctx context.Context) (any, error) {
			once.Do(func() { close(started) })
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(5 * time.Second):
				return nil, errors.New("job outlived cancellation")
			}
		}
	}
	go func() {
		<-started
		cancel()
	}()
	_, err := New(2).RunSet(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEmptySet(t *testing.T) {
	results, err := RunSet(nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty set: results=%v err=%v", results, err)
	}
}

func TestPoolDefaults(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("default pool width must be >= 1")
	}
	if w := New(3).Workers(); w != 3 {
		t.Fatalf("Workers() = %d, want 3", w)
	}
}

// A pool of width 1 runs jobs strictly sequentially in submission order.
func TestWidthOneIsSequential(t *testing.T) {
	var order []int
	jobs := make([]Job, 10)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (any, error) {
			order = append(order, i) // safe: single worker
			return nil, nil
		}
	}
	if _, err := New(1).RunSet(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v not sequential", order)
		}
	}
}

// A panicking job becomes an error carrying the panic value and a stack
// trace, not a process crash, and the Result for that index carries it.
func TestPanicBecomesError(t *testing.T) {
	jobs := []Job{
		func(context.Context) (any, error) { return 1, nil },
		func(context.Context) (any, error) { panic("boom in job") },
	}
	results, err := New(1).RunSet(context.Background(), jobs)
	if err == nil {
		t.Fatal("panicking job must fail the set")
	}
	if !strings.Contains(err.Error(), "job 1 panicked: boom in job") {
		t.Errorf("error lacks panic context: %v", err)
	}
	if !strings.Contains(err.Error(), "runner_test.go") {
		t.Errorf("error lacks a stack trace: %v", err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "panicked") {
		t.Errorf("result 1 should carry the panic error, got %v", results[1].Err)
	}
}

// With several panicking jobs the reported error is the lowest-indexed
// one, matching the pool's deterministic error contract. Map's recovery
// lives in the worker loop, so it is exercised separately from RunSet's.
func TestPanicLowestIndexWins(t *testing.T) {
	_, err := Map(context.Background(), 8, 6, func(_ context.Context, i int) (int, error) {
		if i%2 == 0 {
			panic(fmt.Sprintf("panic at %d", i))
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("panicking jobs must fail the map")
	}
	if !strings.Contains(err.Error(), "panic at 0") {
		t.Errorf("want the lowest-indexed panic, got: %v", err)
	}
}
