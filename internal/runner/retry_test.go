package runner

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRetrySucceedsAfterFailures(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 3, time.Millisecond, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetryReturnsLastError(t *testing.T) {
	last := errors.New("still broken")
	calls := 0
	err := Retry(context.Background(), 3, 0, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("earlier")
		}
		return last
	})
	if !errors.Is(err, last) || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetryStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, 10, time.Hour, func(context.Context) error {
		calls++
		cancel() // cancelled mid-suite: the backoff sleep must not block
		return errors.New("fail")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
}
