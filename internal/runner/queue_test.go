package runner

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// A full backlog must refuse work instead of blocking — the 429 path.
func TestQueueBackpressure(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	q := NewQueue(1, 2)
	defer q.Close()

	// One job occupies the worker; two more fill the backlog.
	if !q.TrySubmit(func() { started <- struct{}{}; <-release }) {
		t.Fatal("first submit refused")
	}
	<-started // the worker holds the blocking job; backlog is empty now
	for i := 0; i < 2; i++ {
		if !q.TrySubmit(func() {}) {
			t.Fatalf("submit %d refused with backlog free", i)
		}
	}
	if q.TrySubmit(func() { t.Error("overflow job ran") }) {
		t.Fatal("submit accepted past the backlog bound")
	}
	if got := q.Backlog(); got != 2 {
		t.Fatalf("Backlog() = %d, want 2", got)
	}
	close(release)
}

// Close must run everything already accepted and refuse later submits.
func TestQueueCloseDrains(t *testing.T) {
	var ran atomic.Int64
	q := NewQueue(2, 16)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		if !q.TrySubmit(func() { defer wg.Done(); ran.Add(1) }) {
			wg.Done()
			t.Fatalf("submit %d refused", i)
		}
	}
	q.Close()
	wg.Wait()
	if got := ran.Load(); got != 10 {
		t.Fatalf("ran %d jobs, want 10", got)
	}
	if q.TrySubmit(func() {}) {
		t.Fatal("closed queue accepted a job")
	}
	q.Close() // idempotent
}

// The doubling schedule must clamp at MaxBackoff instead of overflowing:
// before the clamp, backoff<<a went negative around a=33 for a 1s base,
// and a negative delay skipped the sleep entirely.
func TestRetryDelayClampsAndNeverOverflows(t *testing.T) {
	base := time.Second
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second}
	for a, w := range want {
		if got := retryDelay(base, a); got != w {
			t.Fatalf("retryDelay(1s, %d) = %v, want %v", a, got, w)
		}
	}
	for _, a := range []int{6, 33, 62, 63, 1 << 20} {
		got := retryDelay(base, a)
		if got != MaxBackoff {
			t.Fatalf("retryDelay(1s, %d) = %v, want clamp at %v", a, got, MaxBackoff)
		}
	}
	// A huge base clamps immediately rather than multiplying past the cap.
	if got := retryDelay(time.Duration(1<<62), 1); got != MaxBackoff {
		t.Fatalf("retryDelay(huge, 1) = %v, want %v", got, MaxBackoff)
	}
	// Non-positive backoff still means "no sleep".
	for _, a := range []int{0, 1, 80} {
		if got := retryDelay(0, a); got > 0 {
			t.Fatalf("retryDelay(0, %d) = %v, want <= 0", a, got)
		}
	}
}
