package runner

import "sync"

// Queue runs independently submitted jobs on a fixed set of worker
// goroutines with a bounded backlog. It is the admission-control half of
// the job server: TrySubmit never blocks — when the backlog is full it
// reports false, which the caller surfaces as explicit backpressure
// (HTTP 429 + Retry-After) instead of queueing unboundedly.
//
// Unlike Pool, which runs a closed set of jobs and returns, a Queue is
// long-lived: jobs arrive one at a time over its lifetime and carry no
// result through the queue itself (a served job writes its outcome into
// its own record).
type Queue struct {
	jobs chan func()
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewQueue starts a queue of `workers` goroutines accepting up to
// `backlog` not-yet-started jobs. Both are clamped to at least 1.
func NewQueue(workers, backlog int) *Queue {
	if workers < 1 {
		workers = 1
	}
	if backlog < 1 {
		backlog = 1
	}
	q := &Queue{jobs: make(chan func(), backlog)}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer q.wg.Done()
			for fn := range q.jobs {
				fn()
			}
		}()
	}
	return q
}

// TrySubmit offers fn to the queue without blocking. It reports false
// when the backlog is full or the queue is closed; fn will never run in
// that case, so the caller still owns whatever fn was going to do.
func (q *Queue) TrySubmit(fn func()) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	select {
	case q.jobs <- fn:
		return true
	default:
		return false
	}
}

// Backlog reports the number of accepted jobs not yet picked up by a
// worker — the server's queue-depth gauge.
func (q *Queue) Backlog() int {
	return len(q.jobs)
}

// Close stops accepting new jobs, runs everything already accepted, and
// waits for the workers to exit — the graceful-shutdown drain. Safe to
// call more than once.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	close(q.jobs)
	q.mu.Unlock()
	q.wg.Wait()
}
