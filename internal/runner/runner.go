// Package runner executes independent simulation jobs on a bounded worker
// pool while keeping results deterministic: results always come back in
// submission order, regardless of which worker finished first.
//
// The determinism contract the experiment layer relies on: each job must
// be self-contained (its own seeded RNGs, its own simevent.Engine, no
// shared mutable state), so running N jobs on one worker or on N workers
// produces byte-identical results. The pool only changes wall-clock time.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Job is one unit of independent work. The context is cancelled once any
// other job in the same set has failed; long jobs may poll it to stop
// early, but ignoring it is safe.
type Job func(ctx context.Context) (any, error)

// Result pairs one job's value with its error. Jobs skipped because the
// set was already cancelled carry the context's error.
type Result struct {
	Value any
	Err   error
}

// Pool runs job sets on at most Workers concurrent goroutines. Pools are
// stateless and may be shared; the zero value is not usable, call New.
type Pool struct {
	workers int
}

// New returns a pool of the given width. workers <= 0 selects
// runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool width.
func (p *Pool) Workers() int { return p.workers }

// RunSet executes jobs concurrently and returns their results in
// submission order. On failure the returned error is the one from the
// lowest-indexed failing job (so the error, like the results, does not
// depend on scheduling), and the remaining unstarted jobs are skipped.
func (p *Pool) RunSet(ctx context.Context, jobs []Job) ([]Result, error) {
	results := make([]Result, len(jobs))
	err := p.forEach(ctx, len(jobs), func(ctx context.Context, i int) (err error) {
		defer func() {
			// A panicking job must fail its set like any other error —
			// and leave its Result carrying the converted error too.
			if r := recover(); r != nil {
				err = panicErr(i, r)
				results[i] = Result{Err: err}
			}
		}()
		if err := ctx.Err(); err != nil {
			results[i] = Result{Err: err}
			return err
		}
		v, err := jobs[i](ctx)
		results[i] = Result{Value: v, Err: err}
		return err
	})
	return results, err
}

// panicErr converts a recovered panic in job i into an error carrying the
// panic value and the goroutine's stack, so the failure is debuggable
// after it has crossed the pool's error path.
func panicErr(i int, r any) error {
	buf := make([]byte, 64<<10)
	buf = buf[:runtime.Stack(buf, false)]
	return fmt.Errorf("runner: job %d panicked: %v\n%s", i, r, buf)
}

// RunSet executes jobs on a default-width pool with a background context.
func RunSet(jobs []Job) ([]Result, error) {
	return New(0).RunSet(context.Background(), jobs)
}

// Map runs fn for every index in [0, n) on a pool of the given width and
// returns the values in index order. On failure it returns the error of
// the lowest failing index. Map is the typed workhorse behind the
// experiment fan-outs.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := New(workers).forEach(ctx, n, func(ctx context.Context, i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MaxBackoff caps Retry's exponential backoff between attempts. Without
// the cap the doubling eventually overflows time.Duration (a 1s base
// flips negative around the 33rd attempt), and a negative delay skips
// the sleep entirely — turning the tail of a long retry schedule into a
// hot loop exactly when the system is already struggling.
const MaxBackoff = time.Minute

// retryDelay computes the sleep before attempt a+1: backoff doubled a
// times, clamped to MaxBackoff, never overflowing. Non-positive backoff
// stays non-positive (no sleep).
func retryDelay(backoff time.Duration, a int) time.Duration {
	if backoff <= 0 {
		return backoff
	}
	delay := backoff
	for i := 0; i < a && delay < MaxBackoff; i++ {
		delay *= 2
	}
	if delay > MaxBackoff {
		return MaxBackoff
	}
	return delay
}

// Retry runs fn up to attempts times, sleeping backoff, 2*backoff, ... in
// between (doubling each time, clamped at MaxBackoff). It returns nil on
// the first success and the last error otherwise. A cancelled context
// stops the retries immediately — its error is returned rather than
// fn's, so a user interrupt is never misreported as a run failure. Retry
// exists for watchdog-aborted runs: a run that tripped a wall-clock or
// stall limit on a loaded machine often completes cleanly on a quieter
// retry, while a deterministic failure just fails again and surfaces
// quickly.
func Retry(ctx context.Context, attempts int, backoff time.Duration, fn func(ctx context.Context) error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for a := 0; a < attempts; a++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = fn(ctx); err == nil {
			return nil
		}
		if a == attempts-1 {
			break
		}
		delay := retryDelay(backoff, a)
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
	}
	return err
}

// forEach is the scheduling core: a feeder channel of indices, `workers`
// drainers, first-error-by-index propagation, and cancellation of the
// in-flight context as soon as any job fails.
func (p *Pool) forEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}

	workers := p.workers
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	call := func(i int) (err error) {
		defer func() {
			// A panic anywhere in a job (simulation bug, bad config deep
			// in a model) is converted to an error on the same
			// lowest-index-first path as ordinary failures, instead of
			// killing the whole process from a worker goroutine.
			if r := recover(); r != nil {
				err = panicErr(i, r)
			}
		}()
		return fn(ctx, i)
	}
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := call(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return firstErr
}
