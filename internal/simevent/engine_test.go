package simevent

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %v, want 3", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := New()
	var got []string
	e.Schedule(5, func() { got = append(got, "a") })
	e.Schedule(5, func() { got = append(got, "b") })
	e.Schedule(5, func() { got = append(got, "c") })
	e.RunAll()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("same-time events fired out of scheduling order: %v", got)
	}
}

func TestRunUntilBoundary(t *testing.T) {
	e := New()
	fired := map[float64]bool{}
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		e.At(at, func() { fired[at] = true })
	}
	e.Run(2)
	if !fired[1] || !fired[2] {
		t.Errorf("events at or before boundary should fire: %v", fired)
	}
	if fired[3] || fired[4] {
		t.Errorf("events after boundary must not fire: %v", fired)
	}
	if e.Now() != 2 {
		t.Errorf("Now() = %v, want 2", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
}

func TestRunAdvancesClockToUntilWhenIdle(t *testing.T) {
	e := New()
	e.Run(10)
	if e.Now() != 10 {
		t.Errorf("Now() = %v, want 10", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("event should be pending before firing")
	}
	if !e.Cancel(ev) {
		t.Fatal("Cancel should succeed on a pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("double Cancel should report false")
	}
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var got []int
	evs := make([]Event, 0, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, e.Schedule(float64(i+1), func() { got = append(got, i) }))
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.RunAll()
	for _, v := range got {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(got) != 8 {
		t.Fatalf("fired %d events, want 8", len(got))
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	e := New()
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(1, func() {
			times = append(times, e.Now())
		})
	})
	e.RunAll()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("nested scheduling produced %v, want [1 2]", times)
	}
}

func TestStopInsideRun(t *testing.T) {
	e := New()
	count := 0
	for i := 0; i < 5; i++ {
		e.Schedule(float64(i+1), func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if count != 2 {
		t.Fatalf("Stop did not halt the loop: fired %d", count)
	}
	// A subsequent Run resumes with remaining events.
	e.RunAll()
	if count != 5 {
		t.Fatalf("resume after Stop fired %d total, want 5", count)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay must panic")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestAtInPastPanics(t *testing.T) {
	e := New()
	e.Schedule(5, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past must panic")
		}
	}()
	e.At(1, func() {})
}

func TestTicker(t *testing.T) {
	e := New()
	var ticks []float64
	tk := NewTicker(e, 2, func(now float64) {
		ticks = append(ticks, now)
		if len(ticks) == 3 {
			// Stop from inside the callback.
			// The ticker must not fire again.
		}
	})
	e.Run(5)
	tk.Stop()
	e.Run(20)
	if len(ticks) != 2 {
		t.Fatalf("got %d ticks %v, want 2 before stop at t=5", len(ticks), ticks)
	}
	if ticks[0] != 2 || ticks[1] != 4 {
		t.Fatalf("tick times %v, want [2 4]", ticks)
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := New()
	count := 0
	var tk *Ticker
	tk = NewTicker(e, 1, func(now float64) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run(100)
	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop inside callback, want 3", count)
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the engine processes exactly len(delays) events.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		e := New()
		var fired []float64
		for _, r := range raw {
			d := float64(r) / 16.0
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		if len(fired) != len(raw) {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset never perturbs the relative order of
// the surviving events.
func TestCancelSubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		e := New()
		n := 1 + rng.Intn(100)
		type rec struct {
			ev   Event
			time float64
			id   int
		}
		recs := make([]rec, 0, n)
		var fired []int
		for i := 0; i < n; i++ {
			at := float64(rng.Intn(50))
			i := i
			ev := e.At(at, func() { fired = append(fired, i) })
			recs = append(recs, rec{ev, at, i})
		}
		cancelled := map[int]bool{}
		for _, r := range recs {
			if rng.Intn(3) == 0 {
				e.Cancel(r.ev)
				cancelled[r.id] = true
			}
		}
		e.RunAll()
		// Survivors sorted by (time, id) must equal fired exactly.
		var want []rec
		for _, r := range recs {
			if !cancelled[r.id] {
				want = append(want, r)
			}
		}
		sort.SliceStable(want, func(i, j int) bool {
			if want[i].time != want[j].time {
				return want[i].time < want[j].time
			}
			return want[i].id < want[j].id
		})
		if len(fired) != len(want) {
			t.Fatalf("iter %d: fired %d, want %d", iter, len(fired), len(want))
		}
		for i := range want {
			if fired[i] != want[i].id {
				t.Fatalf("iter %d: fired order %v differs from expected at %d", iter, fired, i)
			}
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(float64(i%1000)/1000.0, func() {})
		if e.Pending() > 10000 {
			e.RunAll()
		}
	}
	e.RunAll()
}

func TestProcessedCounterAndPeriod(t *testing.T) {
	e := New()
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	e.RunAll()
	if e.Processed() != 2 {
		t.Errorf("Processed = %d, want 2", e.Processed())
	}
	tk := NewTicker(e, 3, func(float64) {})
	if tk.Period() != 3 {
		t.Errorf("Period = %v", tk.Period())
	}
	tk.Stop()
	tk.Stop() // double stop is a no-op
}

func TestReset(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(2, func() { fired++ })
	e.RunAll()
	e.Schedule(5, func() { fired++ }) // left pending across the reset
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Processed() != 0 {
		t.Fatalf("Reset left now=%v pending=%d processed=%d", e.Now(), e.Pending(), e.Processed())
	}
	e.Schedule(1, func() { fired++ })
	e.RunAll()
	if fired != 3 {
		t.Fatalf("fired %d events, want 3 (pending event must not survive Reset)", fired)
	}
	if e.Now() != 1 {
		t.Fatalf("Now() = %v after post-reset run, want 1", e.Now())
	}
}

// A handle to an event that already fired (or was cancelled) must never
// cancel a newer event that recycled the same calendar node.
func TestStaleHandleCannotCancelRecycledNode(t *testing.T) {
	e := New()
	stale := e.Schedule(1, func() {})
	e.RunAll() // fires; node goes to the free list
	if stale.Pending() {
		t.Fatal("fired event still pending")
	}
	fired := false
	fresh := e.Schedule(1, func() { fired = true })
	if e.Cancel(stale) {
		t.Fatal("stale handle cancelled something")
	}
	if !fresh.Pending() {
		t.Fatal("fresh event lost its slot to a stale cancel")
	}
	e.RunAll()
	if !fired {
		t.Fatal("fresh event never fired")
	}
	// Same property for a cancelled (never fired) handle.
	c := e.Schedule(1, func() {})
	e.Cancel(c)
	fired = false
	e.Schedule(1, func() { fired = true })
	if e.Cancel(c) {
		t.Fatal("double cancel hit a recycled node")
	}
	e.RunAll()
	if !fired {
		t.Fatal("event after double-cancel never fired")
	}
}

func TestZeroEventHandle(t *testing.T) {
	var ev Event
	if ev.Pending() {
		t.Fatal("zero Event reports pending")
	}
	if New().Cancel(ev) {
		t.Fatal("cancelling the zero Event succeeded")
	}
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback must panic")
		}
	}()
	New().At(1, nil)
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero period must panic")
		}
	}()
	NewTicker(New(), 0, func(float64) {})
}
