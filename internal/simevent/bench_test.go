package simevent

import "testing"

// The benchmarks below pin the per-event cost of the engine hot path:
// schedule+fire (every simulated I/O takes this path at least once),
// schedule+cancel (in-flight aborts, ticker stops), and a mixed ticker
// workload resembling a policy-driven run. Run with -benchmem; CHANGES.md
// records the before/after numbers for the free-list + indexed-heap work.

// BenchmarkEngineScheduleFire measures the steady-state cost of scheduling
// one event and firing it against a calendar that stays ~1000 deep.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := New()
	for i := 0; i < 1000; i++ {
		e.Schedule(float64(i)+1, func() {})
	}
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(float64(i)+1001, fn)
		e.Step()
	}
}

// BenchmarkEngineScheduleCancel measures schedule followed by immediate
// cancellation, the abort path for in-flight disk requests.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := New()
	for i := 0; i < 1000; i++ {
		e.Schedule(float64(i)+1, func() {})
	}
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(2000, fn)
		e.Cancel(ev)
	}
}

// BenchmarkEngineChurn schedules bursts of 256 events and drains them,
// exercising heap growth/shrink the way request completions do.
func BenchmarkEngineChurn(b *testing.B) {
	e := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 0; j < 256; j++ {
			e.Schedule(float64((j*37)%256)+1, fn)
		}
		e.Run(base + 257)
	}
}

// BenchmarkEngineMixedTicker runs 16 tickers with coprime-ish periods for a
// stretch of simulated time per iteration — the shape of a policy run where
// epochs, destage scans and goal checks all tick concurrently.
func BenchmarkEngineMixedTicker(b *testing.B) {
	e := New()
	periods := []float64{1, 2, 3, 5, 7, 11, 13, 17, 1.5, 2.5, 4.5, 6.5, 9.5, 0.5, 0.75, 1.25}
	for _, p := range periods {
		NewTicker(e, p, func(float64) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(e.Now() + 100)
	}
}
