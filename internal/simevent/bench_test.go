package simevent

import "testing"

// The benchmarks below pin the per-event cost of the engine hot path:
// schedule+fire (every simulated I/O takes this path at least once),
// schedule+cancel (in-flight aborts, ticker stops), and a mixed ticker
// workload resembling a policy-driven run. Run with -benchmem; CHANGES.md
// records the before/after numbers for the free-list + indexed-heap work.

// BenchmarkEngineScheduleFire measures the steady-state cost of scheduling
// one event and firing it against a calendar that stays ~1000 deep.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := New()
	for i := 0; i < 1000; i++ {
		e.Schedule(float64(i)+1, func() {})
	}
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(float64(i)+1001, fn)
		e.Step()
	}
}

// BenchmarkEngineScheduleCancel measures schedule followed by immediate
// cancellation, the abort path for in-flight disk requests.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := New()
	for i := 0; i < 1000; i++ {
		e.Schedule(float64(i)+1, func() {})
	}
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(2000, fn)
		e.Cancel(ev)
	}
}

// BenchmarkEngineChurn schedules bursts of 256 events and drains them,
// exercising heap growth/shrink the way request completions do.
func BenchmarkEngineChurn(b *testing.B) {
	e := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 0; j < 256; j++ {
			e.Schedule(float64((j*37)%256)+1, fn)
		}
		e.Run(base + 257)
	}
}

// BenchmarkEngineMixedTicker runs 16 tickers with coprime-ish periods for a
// stretch of simulated time per iteration — the shape of a policy run where
// epochs, destage scans and goal checks all tick concurrently.
func BenchmarkEngineMixedTicker(b *testing.B) {
	e := New()
	periods := []float64{1, 2, 3, 5, 7, 11, 13, 17, 1.5, 2.5, 4.5, 6.5, 9.5, 0.5, 0.75, 1.25}
	for _, p := range periods {
		NewTicker(e, p, func(float64) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(e.Now() + 100)
	}
}

// The depth-parameterized benchmarks below compare the calendar queue
// against the retired sift-heap (refHeap in calqueue_test.go, kept as the
// ordering oracle) at several pending-population sizes. The heap side
// carries no callback and smaller nodes, so the comparison flatters the
// heap; the calendar must win anyway once the population is deep.

func benchCalendarHold(b *testing.B, depth int) {
	e := New()
	fn := func() {}
	for i := 0; i < depth; i++ {
		e.Schedule(1+float64(i%97)/97*100, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(100, fn)
		e.Step()
	}
}

func benchHeapHold(b *testing.B, depth int) {
	h := &refHeap{}
	for i := 0; i < depth; i++ {
		h.push(1+float64(i%97)/97*100, i)
	}
	now := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.push(now+100, i)
		n := h.pop()
		now = n.at
	}
}

func BenchmarkQueueDepth64Calendar(b *testing.B)   { benchCalendarHold(b, 64) }
func BenchmarkQueueDepth64Heap(b *testing.B)       { benchHeapHold(b, 64) }
func BenchmarkQueueDepth256Calendar(b *testing.B)  { benchCalendarHold(b, 256) }
func BenchmarkQueueDepth256Heap(b *testing.B)      { benchHeapHold(b, 256) }
func BenchmarkQueueDepth10kCalendar(b *testing.B)  { benchCalendarHold(b, 10000) }
func BenchmarkQueueDepth10kHeap(b *testing.B)      { benchHeapHold(b, 10000) }
func BenchmarkQueueDepth100kCalendar(b *testing.B) { benchCalendarHold(b, 100000) }
func BenchmarkQueueDepth100kHeap(b *testing.B)     { benchHeapHold(b, 100000) }

// BenchmarkQueueCancel10k measures cancel cost with 10k pending — O(1)
// unlink for the calendar vs O(log n) sift repair for the heap.
func BenchmarkQueueCancel10kCalendar(b *testing.B) {
	e := New()
	fn := func() {}
	for i := 0; i < 10000; i++ {
		e.Schedule(1+float64(i%97)/97*100, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cancel(e.Schedule(50, fn))
	}
}

func BenchmarkQueueCancel10kHeap(b *testing.B) {
	h := &refHeap{}
	for i := 0; i < 10000; i++ {
		h.push(1+float64(i%97)/97*100, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.remove(h.push(50, i))
	}
}
