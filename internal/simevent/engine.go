// Package simevent provides the discrete-event simulation engine that
// underlies the disk-array simulator.
//
// Time is a float64 number of seconds since the start of the run. Events
// scheduled for the same instant fire in scheduling order (a monotonically
// increasing sequence number breaks ties), which makes every simulation
// deterministic for a fixed seed.
//
// The engine is allocation-free on its steady-state hot path: calendar
// nodes are recycled through a free list when events fire or are
// cancelled, and the binary heap is maintained with direct sift
// routines rather than container/heap's interface indirection. Event
// handles are small values carrying a generation stamp, so a handle to
// an event that already fired can never cancel an unrelated event that
// happens to reuse the same node.
package simevent

import (
	"fmt"
	"math"
)

// node is one calendar entry. Nodes are owned by the engine and recycled
// via a free list; user code only ever sees Event handles.
type node struct {
	at    float64
	seq   uint64
	fn    func()
	index int    // heap index; -1 while on the free list
	gen   uint64 // bumped every time the node leaves the calendar
}

// Event is a handle to a scheduled callback. It is a small value (safe to
// copy) and can be cancelled until it fires. The zero Event is a valid
// "no event" handle: not pending, cancelling it is a no-op.
type Event struct {
	n   *node
	gen uint64
}

// At reports the simulated time the event is scheduled for, or NaN if the
// event already fired or was cancelled.
func (ev Event) At() float64 {
	if !ev.Pending() {
		return math.NaN()
	}
	return ev.n.at
}

// Pending reports whether the event is still scheduled. A handle whose
// event fired or was cancelled reports false even if the underlying node
// has been recycled for a newer event.
func (ev Event) Pending() bool { return ev.n != nil && ev.n.gen == ev.gen }

// Engine is a discrete-event scheduler. The zero value is not usable; call
// New.
type Engine struct {
	now     float64
	seq     uint64
	queue   []*node
	free    []*node
	stopped bool
	// processed counts events that have fired, for instrumentation.
	processed uint64
}

// New returns an engine positioned at time zero with an empty calendar.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events that have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Reset returns the engine to time zero with an empty calendar, retaining
// the recycled node storage so a reused engine schedules without
// allocating. Handles from before the reset are invalidated.
func (e *Engine) Reset() {
	for _, n := range e.queue {
		e.release(n)
	}
	e.queue = e.queue[:0]
	e.now = 0
	e.seq = 0
	e.processed = 0
	e.stopped = false
}

// Schedule arranges for fn to run delay seconds from now. A negative delay
// panics: scheduling in the past is always a simulator bug.
func (e *Engine) Schedule(delay float64, fn func()) Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("simevent: schedule with invalid delay %v at t=%v", delay, e.now))
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute simulated time t, which must not be
// in the past.
func (e *Engine) At(t float64, fn func()) Event {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("simevent: schedule at t=%v before now=%v", t, e.now))
	}
	if fn == nil {
		panic("simevent: nil event callback")
	}
	n := e.alloc()
	n.at = t
	n.seq = e.seq
	n.fn = fn
	e.seq++
	n.index = len(e.queue)
	e.queue = append(e.queue, n)
	e.siftUp(n.index)
	return Event{n: n, gen: n.gen}
}

// Cancel removes a pending event from the calendar. Cancelling an event
// that already fired (or was already cancelled) is a no-op and returns
// false.
func (e *Engine) Cancel(ev Event) bool {
	if !ev.Pending() {
		return false
	}
	e.removeAt(ev.n.index)
	e.release(ev.n)
	return true
}

// Step fires the earliest pending event and advances the clock to it.
// It returns false when the calendar is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	n := e.queue[0]
	last := len(e.queue) - 1
	if last > 0 {
		e.queue[0] = e.queue[last]
		e.queue[0].index = 0
	}
	e.queue[last] = nil
	e.queue = e.queue[:last]
	if last > 1 {
		e.siftDown(0)
	}
	e.now = n.at
	fn := n.fn
	e.release(n)
	e.processed++
	fn()
	return true
}

// Run fires events until the calendar is empty, the next event lies beyond
// `until`, or Stop is called. The clock is left at min(until, last event
// time); events scheduled exactly at `until` do fire.
func (e *Engine) Run(until float64) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > until {
			break
		}
		e.Step()
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
}

// RunAll fires events until the calendar is empty or Stop is called.
func (e *Engine) RunAll() {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		e.Step()
	}
}

// Stop makes the innermost Run/RunAll return after the current event
// completes. Pending events remain scheduled.
func (e *Engine) Stop() { e.stopped = true }

// allocChunk is how many nodes a cold allocation carves at once; recycling
// makes fresh chunks rare after the calendar reaches its high-water mark.
const allocChunk = 64

func (e *Engine) alloc() *node {
	if len(e.free) == 0 {
		chunk := make([]node, allocChunk)
		for i := range chunk {
			chunk[i].index = -1
			e.free = append(e.free, &chunk[i])
		}
	}
	n := e.free[len(e.free)-1]
	e.free = e.free[:len(e.free)-1]
	return n
}

// release invalidates every outstanding handle to n (by bumping its
// generation) and returns it to the free list.
func (e *Engine) release(n *node) {
	n.fn = nil
	n.index = -1
	n.gen++
	e.free = append(e.free, n)
}

func nodeLess(a, b *node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp restores the heap property moving queue[i] toward the root.
func (e *Engine) siftUp(i int) {
	q := e.queue
	n := q[i]
	for i > 0 {
		p := (i - 1) / 2
		if !nodeLess(n, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = i
		i = p
	}
	q[i] = n
	n.index = i
}

// siftDown restores the heap property moving queue[i] toward the leaves.
// It reports whether the node moved.
func (e *Engine) siftDown(i int) bool {
	q := e.queue
	n := q[i]
	start := i
	half := len(q) / 2
	for i < half {
		c := 2*i + 1
		if r := c + 1; r < len(q) && nodeLess(q[r], q[c]) {
			c = r
		}
		if !nodeLess(q[c], n) {
			break
		}
		q[i] = q[c]
		q[i].index = i
		i = c
	}
	q[i] = n
	n.index = i
	return i != start
}

// removeAt deletes the node at heap index i, refilling the hole from the
// tail and re-sifting the moved node.
func (e *Engine) removeAt(i int) {
	last := len(e.queue) - 1
	if i != last {
		e.queue[i] = e.queue[last]
		e.queue[i].index = i
	}
	e.queue[last] = nil
	e.queue = e.queue[:last]
	if i < last {
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	}
}
