// Package simevent provides the discrete-event simulation engine that
// underlies the disk-array simulator.
//
// Time is a float64 number of seconds since the start of the run. Events
// scheduled for the same instant fire in scheduling order (a monotonically
// increasing sequence number breaks ties), which makes every simulation
// deterministic for a fixed seed.
package simevent

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a handle to a scheduled callback. It can be cancelled until it
// fires.
type Event struct {
	at    float64
	seq   uint64
	fn    func()
	index int // heap index; -1 once fired or cancelled
}

// At reports the simulated time the event is scheduled for.
func (ev *Event) At() float64 { return ev.at }

// Pending reports whether the event is still scheduled.
func (ev *Event) Pending() bool { return ev != nil && ev.index >= 0 }

// Engine is a discrete-event scheduler. The zero value is not usable; call
// New.
type Engine struct {
	now     float64
	seq     uint64
	queue   eventHeap
	stopped bool
	// processed counts events that have fired, for instrumentation.
	processed uint64
}

// New returns an engine positioned at time zero with an empty calendar.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events that have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule arranges for fn to run delay seconds from now. A negative delay
// panics: scheduling in the past is always a simulator bug.
func (e *Engine) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("simevent: schedule with invalid delay %v at t=%v", delay, e.now))
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute simulated time t, which must not be
// in the past.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("simevent: schedule at t=%v before now=%v", t, e.now))
	}
	if fn == nil {
		panic("simevent: nil event callback")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a pending event from the calendar. Cancelling an event
// that already fired (or was already cancelled) is a no-op and returns
// false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	ev.fn = nil
	return true
}

// Step fires the earliest pending event and advances the clock to it.
// It returns false when the calendar is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.index = -1
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	e.processed++
	fn()
	return true
}

// Run fires events until the calendar is empty, the next event lies beyond
// `until`, or Stop is called. The clock is left at min(until, last event
// time); events scheduled exactly at `until` do fire.
func (e *Engine) Run(until float64) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > until {
			break
		}
		e.Step()
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
}

// RunAll fires events until the calendar is empty or Stop is called.
func (e *Engine) RunAll() {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		e.Step()
	}
}

// Stop makes the innermost Run/RunAll return after the current event
// completes. Pending events remain scheduled.
func (e *Engine) Stop() { e.stopped = true }

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
