// Package simevent provides the discrete-event simulation engine that
// underlies the disk-array simulator.
//
// Time is a float64 number of seconds since the start of the run. Events
// scheduled for the same instant fire in scheduling order (a monotonically
// increasing sequence number breaks ties), which makes every simulation
// deterministic for a fixed seed.
//
// The calendar is a time-bucketed calendar queue (Brown, CACM 1988):
// pending events hash into "days" of a fixed width, each bucket holding a
// short sorted intrusive list. Schedule, cancel and step are O(1)
// amortized — the structure resizes and retunes its day width as the
// population grows and shrinks — where the previous binary heap paid
// O(log n) sifts. The engine remains allocation-free on its steady-state
// hot path: calendar nodes are recycled through a free list when events
// fire or are cancelled. Event handles are small values carrying a
// generation stamp, so a handle to an event that already fired can never
// cancel an unrelated event that happens to reuse the same node.
package simevent

import (
	"fmt"
	"math"
)

// node is one calendar entry. Nodes are owned by the engine and recycled
// via a free list; user code only ever sees Event handles.
type node struct {
	at  float64
	seq uint64
	fn  func()
	gen uint64 // bumped every time the node leaves the calendar

	// Intrusive doubly-linked bucket chain, sorted by (at, seq).
	next, prev *node
	day        int64 // at quantized to day width (see Engine.day)
	bucket     int32 // owning bucket index; -1 while off the calendar
}

// Event is a handle to a scheduled callback. It is a small value (safe to
// copy) and can be cancelled until it fires. The zero Event is a valid
// "no event" handle: not pending, cancelling it is a no-op.
type Event struct {
	n   *node
	gen uint64
}

// At reports the simulated time the event is scheduled for, or NaN if the
// event already fired or was cancelled.
func (ev Event) At() float64 {
	if !ev.Pending() {
		return math.NaN()
	}
	return ev.n.at
}

// Pending reports whether the event is still scheduled. A handle whose
// event fired or was cancelled reports false even if the underlying node
// has been recycled for a newer event.
func (ev Event) Pending() bool { return ev.n != nil && ev.n.gen == ev.gen }

// Calendar tuning. minBuckets keeps tiny calendars on one cache line of
// heads; the queue doubles above two events per bucket and halves below
// one per two buckets, the classic occupancy band.
const (
	minBuckets = 16
	minWidth   = 1e-9
	// maxDay caps the quantized day so extreme times (including +Inf test
	// inputs) cannot overflow the int64 conversion; far-future events all
	// share the cap day and stay correctly ordered by their sorted chains.
	maxDay = int64(1) << 62
)

// Engine is a discrete-event scheduler. The zero value is not usable; call
// New.
type Engine struct {
	now     float64
	seq     uint64
	stopped bool
	// seqSrc, when non-nil, replaces the engine-local counter: several
	// engines in one partitioned run share a single sequence source so that
	// (at, seq) is a total order across all of them, identical to the order
	// one engine would have produced. See ShareSeq.
	seqSrc *uint64
	// Window state (BeginWindow/EndWindows): while a window is open the
	// engine assigns provisional sequence numbers from provSeq and logs
	// every fire and schedule so the coordinator can later renumber the
	// window's events in the deterministic cross-engine merge order.
	window     bool
	provBase   uint64
	provSeq    uint64
	fires      []fireRec
	scheds     []schedRec
	schedPos   int
	provTrue   []uint64
	fireCursor int
	// processed counts events that have fired, for instrumentation.
	processed uint64

	buckets []cell // chain head/tail pairs, len is a power of two
	mask    int64
	width   float64 // day width in simulated seconds
	count   int     // pending events
	curDay  int64   // cursor: no pending event has day < curDay
	free    []*node
	// spare is the previous bucket array, kept for the next resize: the
	// two arrays ping-pong so steady-state oscillation (grow, drain,
	// grow again) never allocates once the high-water mark is reached.
	spare []cell

	// lastAt/gapSum/gapN feed the width retune at resize time with the
	// observed mean inter-fire gap, the quantity the day width should track.
	lastAt float64
	gapSum float64
	gapN   uint64
}

// fireRec is one fired event in a window log: enough to replay the
// window's fire order during the cross-engine merge.
type fireRec struct {
	at  float64
	seq uint64
}

// schedRec is one schedule call made during a window: the index of the
// firing event whose callback made it, the node it produced, and the
// provisional sequence number it was assigned. The (node, prov) pair
// detects node recycling: the node is only renumbered if it still carries
// the provisional sequence, i.e. it is still the same pending event.
type schedRec struct {
	parent int
	n      *node
	prov   uint64
}

// cell is one calendar bucket: a doubly-linked chain sorted by (at, seq).
// The tail pointer makes the dominant insert — at or past the chain's end,
// where monotonically increasing sequence numbers put same-instant bursts
// and far-frontier schedules — an O(1) append.
type cell struct {
	head, tail *node
}

// New returns an engine positioned at time zero with an empty calendar.
func New() *Engine {
	e := &Engine{width: 1}
	e.buckets = make([]cell, minBuckets)
	e.mask = minBuckets - 1
	return e
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events that have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still scheduled.
func (e *Engine) Pending() int { return e.count }

// Reset returns the engine to time zero with an empty calendar, retaining
// the recycled node storage so a reused engine schedules without
// allocating. Handles from before the reset are invalidated.
func (e *Engine) Reset() {
	for i := range e.buckets {
		for n := e.buckets[i].head; n != nil; {
			next := n.next
			e.release(n)
			n = next
		}
		e.buckets[i] = cell{}
	}
	e.count = 0
	e.curDay = 0
	e.now = 0
	e.seq = 0
	e.processed = 0
	e.stopped = false
	e.lastAt = 0
	e.gapSum = 0
	e.gapN = 0
	e.seqSrc = nil
	e.window = false
	e.fires = e.fires[:0]
	e.scheds = e.scheds[:0]
	e.schedPos = 0
	e.provTrue = e.provTrue[:0]
	e.fireCursor = 0
}

// day quantizes an event time to the calendar's current day width.
func (e *Engine) day(t float64) int64 {
	d := t / e.width
	if d >= float64(maxDay) || math.IsInf(t, 1) {
		return maxDay
	}
	return int64(d)
}

// Schedule arranges for fn to run delay seconds from now. A negative delay
// panics: scheduling in the past is always a simulator bug.
func (e *Engine) Schedule(delay float64, fn func()) Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("simevent: schedule with invalid delay %v at t=%v", delay, e.now))
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute simulated time t, which must not be
// in the past.
func (e *Engine) At(t float64, fn func()) Event {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("simevent: schedule at t=%v before now=%v", t, e.now))
	}
	if fn == nil {
		panic("simevent: nil event callback")
	}
	n := e.alloc()
	n.at = t
	n.fn = fn
	switch {
	case e.window:
		// Inside a window: provisional numbers, logged for the merge.
		// They start above every pending true sequence (the shared counter
		// snapshot), so same-instant ordering within the engine already
		// matches the order the renumbering will assign.
		n.seq = e.provSeq
		e.provSeq++
		e.scheds = append(e.scheds, schedRec{parent: len(e.fires) - 1, n: n, prov: n.seq})
	case e.seqSrc != nil:
		n.seq = *e.seqSrc
		*e.seqSrc++
	default:
		n.seq = e.seq
		e.seq++
	}
	e.insert(n)
	if e.count > 2*len(e.buckets) {
		e.resize(2 * len(e.buckets))
	}
	return Event{n: n, gen: n.gen}
}

// insert links n into its bucket's sorted chain and maintains the cursor
// invariant (curDay never exceeds the day of any pending event).
func (e *Engine) insert(n *node) {
	n.day = e.day(n.at)
	b := int32(n.day & e.mask)
	n.bucket = b
	// Sorted insert by (at, seq), walking backward from the tail: a new
	// event carries the largest sequence number, so same-instant bursts
	// and frontier schedules append in O(1), and the walk only pays for
	// genuinely out-of-order inserts.
	c := &e.buckets[b]
	after := c.tail
	for after != nil && nodeLess(n, after) {
		after = after.prev
	}
	if after == nil {
		n.next = c.head
		n.prev = nil
		if c.head != nil {
			c.head.prev = n
		} else {
			c.tail = n
		}
		c.head = n
	} else {
		n.next = after.next
		n.prev = after
		if after.next != nil {
			after.next.prev = n
		} else {
			c.tail = n
		}
		after.next = n
	}
	e.count++
	if n.day < e.curDay {
		// The cursor skipped this day while it was empty; pull it back so
		// the scan revisits it.
		e.curDay = n.day
	}
}

// unlink removes n from its bucket chain.
func (e *Engine) unlink(n *node) {
	c := &e.buckets[n.bucket]
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.next, n.prev = nil, nil
	n.bucket = -1
	e.count--
}

// Cancel removes a pending event from the calendar. Cancelling an event
// that already fired (or was already cancelled) is a no-op and returns
// false.
func (e *Engine) Cancel(ev Event) bool {
	if !ev.Pending() {
		return false
	}
	e.unlink(ev.n)
	e.release(ev.n)
	if len(e.buckets) > minBuckets && e.count < len(e.buckets)/4 {
		e.resize(len(e.buckets) / 2)
	}
	return true
}

// peek returns the earliest pending node without removing it, advancing
// the day cursor past empty days as a side effect. It returns nil when the
// calendar is empty.
func (e *Engine) peek() *node {
	if e.count == 0 {
		return nil
	}
	nb := int64(len(e.buckets))
	for scanned := int64(0); scanned < nb; scanned++ {
		if h := e.buckets[e.curDay&e.mask].head; h != nil && h.day == e.curDay {
			return h
		}
		e.curDay++
	}
	// A whole year of empty days: jump straight to the global minimum.
	var best *node
	for i := range e.buckets {
		if h := e.buckets[i].head; h != nil && (best == nil || nodeLess(h, best)) {
			best = h
		}
	}
	e.curDay = best.day
	return best
}

// NextAt reports the time of the earliest pending event, if any.
func (e *Engine) NextAt() (float64, bool) {
	n := e.peek()
	if n == nil {
		return 0, false
	}
	return n.at, true
}

// NextKey reports the (time, sequence) key of the earliest pending event,
// if any. With a shared sequence source (ShareSeq) the key is comparable
// across engines, which is how the partitioned runner replays the exact
// sequential order at cross-engine same-instant ties.
func (e *Engine) NextKey() (float64, uint64, bool) {
	n := e.peek()
	if n == nil {
		return 0, 0, false
	}
	return n.at, n.seq, true
}

// ShareSeq makes the engine draw event sequence numbers from src instead
// of its own counter. Every engine of a partitioned run shares one source,
// so schedule calls — which the coordinator makes in exactly the order the
// sequential run would — receive exactly the sequence numbers the
// sequential run would assign, and (at, seq) stays a cross-engine total
// order equal to the sequential firing order. The source is read and
// advanced without synchronization: only the coordinator may schedule
// outside a window.
func (e *Engine) ShareSeq(src *uint64) { e.seqSrc = src }

// BeginWindow puts the engine in window mode for a parallel cold-window
// run: sequence numbers become provisional (engine-local, starting at the
// shared counter's current value, above every pending true sequence) and
// every fire and schedule is logged. Windows of several engines may then
// run concurrently without touching the shared counter; EndWindows
// renumbers afterwards. Requires ShareSeq.
func (e *Engine) BeginWindow() {
	if e.seqSrc == nil {
		panic("simevent: BeginWindow without ShareSeq")
	}
	e.window = true
	e.provBase = *e.seqSrc
	e.provSeq = e.provBase
	e.fires = e.fires[:0]
	e.scheds = e.scheds[:0]
	e.schedPos = 0
	e.provTrue = e.provTrue[:0]
	e.fireCursor = 0
}

// trueSeqOf resolves a window-log sequence number to its true value: fires
// of events that were pending before the window carry true numbers
// already; window-scheduled children are looked up in the renumbering
// table, which the merge fills in parent-fire order (a child can only be
// at the head of a window log after its parent was consumed, so the entry
// is always present by the time it is needed).
func (e *Engine) trueSeqOf(s uint64) uint64 {
	if s < e.provBase {
		return s
	}
	return e.provTrue[s-e.provBase]
}

// EndWindows closes the windows opened by BeginWindow on engines and
// renumbers everything they scheduled. The windows' fire logs are merged
// by (at, true seq) — the order the sequential run would have fired those
// same events in — and each fired event's schedule calls draw their true
// sequence numbers from src in that order, exactly reproducing the
// sequential assignment. Pending children are renumbered in place; their
// relative order never changes (children are renumbered in provisional
// order per engine, and provisional numbers already sort after every
// pre-window sequence), so the sorted bucket chains stay valid.
func EndWindows(engines []*Engine, src *uint64) {
	for {
		best := -1
		var bestAt float64
		var bestSeq uint64
		for i, e := range engines {
			if e.fireCursor >= len(e.fires) {
				continue
			}
			f := e.fires[e.fireCursor]
			ts := e.trueSeqOf(f.seq)
			if best < 0 || f.at < bestAt || (f.at == bestAt && ts < bestSeq) {
				best, bestAt, bestSeq = i, f.at, ts
			}
		}
		if best < 0 {
			break
		}
		e := engines[best]
		for e.schedPos < len(e.scheds) && e.scheds[e.schedPos].parent == e.fireCursor {
			rec := e.scheds[e.schedPos]
			t := *src
			*src++
			e.provTrue = append(e.provTrue, t)
			if rec.n.bucket >= 0 && rec.n.seq == rec.prov {
				rec.n.seq = t
			}
			e.schedPos++
		}
		e.fireCursor++
	}
	for _, e := range engines {
		e.window = false
		e.fires = e.fires[:0]
		e.scheds = e.scheds[:0]
		e.schedPos = 0
		e.provTrue = e.provTrue[:0]
		e.fireCursor = 0
	}
}

// Step fires the earliest pending event and advances the clock to it.
// It returns false when the calendar is empty.
func (e *Engine) Step() bool {
	n := e.peek()
	if n == nil {
		return false
	}
	e.unlink(n)
	e.now = n.at
	fn := n.fn
	if e.window {
		e.fires = append(e.fires, fireRec{at: n.at, seq: n.seq})
	}
	e.release(n)
	e.processed++
	// Zero gaps count too: a workload of same-instant bursts separated by
	// long silences must tune for the mean including the zeros, or the
	// estimate balloons to the silence length and the bursts chain up.
	e.gapSum += n.at - e.lastAt
	e.gapN++
	e.lastAt = n.at
	if len(e.buckets) > minBuckets && e.count < len(e.buckets)/4 {
		e.resize(len(e.buckets) / 2)
	} else if e.gapN >= retuneWindow {
		// The population size can stay flat while the simulation's time
		// scale drifts (a run that starts dense and turns sparse, or the
		// reverse), so resizes alone cannot keep the day width honest.
		// Retune in place when the recent inter-fire gap disagrees with
		// the width by more than the hysteresis factor.
		// A zero estimate means the whole window was one same-instant
		// burst — no spacing information, so never shrink the width on it.
		if est := 3 * e.gapSum / float64(e.gapN); est > e.width*8 || (est > 0 && est < e.width/8) {
			e.resize(len(e.buckets)) // consumes and resets the gap stats
		} else {
			e.gapSum, e.gapN = 0, 0
		}
	}
	fn()
	return true
}

// retuneWindow is how many fires feed one width-drift check; the gap
// statistics reset afterwards so the estimate tracks the recent past.
const retuneWindow = 256

// Run fires events until the calendar is empty, the next event lies beyond
// `until`, or Stop is called. The clock is left at min(until, last event
// time); events scheduled exactly at `until` do fire.
func (e *Engine) Run(until float64) {
	e.stopped = false
	for !e.stopped {
		n := e.peek()
		if n == nil || n.at > until {
			break
		}
		e.Step()
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
}

// RunBefore fires events strictly earlier than `horizon` and leaves the
// clock at the last fired event (events at exactly `horizon` stay
// pending). The partitioned runner uses it to drain a partition up to, but
// not including, the next globally-ordered event.
func (e *Engine) RunBefore(horizon float64) {
	e.stopped = false
	for !e.stopped {
		n := e.peek()
		if n == nil || n.at >= horizon {
			break
		}
		e.Step()
	}
}

// RunAll fires events until the calendar is empty or Stop is called.
func (e *Engine) RunAll() {
	e.stopped = false
	for !e.stopped {
		if !e.Step() {
			break
		}
	}
}

// Stop makes the innermost Run/RunAll return after the current event
// completes. Pending events remain scheduled.
func (e *Engine) Stop() { e.stopped = true }

// resize rebuilds the bucket array at the new size and retunes the day
// width to track the observed mean inter-fire gap (falling back to the
// pending span when the engine has not fired enough to know it). All
// pending nodes are redistributed; handles stay valid because nodes never
// move in memory.
func (e *Engine) resize(buckets int) {
	width := e.width
	if g := 3 * e.gapSum / float64(e.gapN); e.gapN >= 8 && g > 0 {
		width = g
	} else if e.count > 1 {
		// Bulk-loaded before any fire: spread the pending span so the
		// population averages about one event per day.
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range e.buckets {
			for n := e.buckets[i].head; n != nil; n = n.next {
				if n.at < lo {
					lo = n.at
				}
				if n.at > hi && !math.IsInf(n.at, 1) {
					hi = n.at
				}
			}
		}
		if hi > lo {
			width = (hi - lo) / float64(e.count)
		}
	}
	if width < minWidth || math.IsNaN(width) || math.IsInf(width, 0) {
		width = minWidth
	}
	e.gapSum, e.gapN = 0, 0
	old := e.buckets
	if buckets < minBuckets {
		buckets = minBuckets
	}
	next := e.spare
	if cap(next) < buckets {
		next = make([]cell, buckets)
	}
	next = next[:buckets]
	for i := range next {
		next[i] = cell{}
	}
	e.spare = old[:cap(old)]
	e.buckets = next
	e.mask = int64(buckets) - 1
	e.width = width
	e.count = 0
	// Re-derive the cursor under the new width: start past everything and
	// let the reinserts pull it back to the earliest pending day.
	e.curDay = maxDay
	for i := range old {
		n := old[i].head
		for n != nil {
			nx := n.next
			n.next, n.prev = nil, nil
			e.insert(n)
			n = nx
		}
	}
	if e.count == 0 {
		e.curDay = e.day(e.now)
	}
}

// allocChunk is how many nodes a cold allocation carves at once; recycling
// makes fresh chunks rare after the calendar reaches its high-water mark.
const allocChunk = 64

func (e *Engine) alloc() *node {
	if len(e.free) == 0 {
		chunk := make([]node, allocChunk)
		for i := range chunk {
			chunk[i].bucket = -1
			e.free = append(e.free, &chunk[i])
		}
	}
	n := e.free[len(e.free)-1]
	e.free = e.free[:len(e.free)-1]
	return n
}

// release invalidates every outstanding handle to n (by bumping its
// generation) and returns it to the free list.
func (e *Engine) release(n *node) {
	n.fn = nil
	n.next, n.prev = nil, nil
	n.bucket = -1
	n.gen++
	e.free = append(e.free, n)
}

func nodeLess(a, b *node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
