package simevent

import (
	"math/rand"
	"testing"
)

// refHeap is the pre-calendar-queue binary heap, kept as a test oracle:
// the calendar queue must fire the exact (time, sequence) order the heap
// did, under any interleaving of schedules and cancels.
type refHeap struct {
	seq   uint64
	queue []*refNode
}

type refNode struct {
	at    float64
	seq   uint64
	id    int
	index int
}

func (h *refHeap) push(at float64, id int) *refNode {
	n := &refNode{at: at, seq: h.seq, id: id, index: len(h.queue)}
	h.seq++
	h.queue = append(h.queue, n)
	h.siftUp(n.index)
	return n
}

func (h *refHeap) pop() *refNode {
	if len(h.queue) == 0 {
		return nil
	}
	n := h.queue[0]
	h.removeAt(0)
	return n
}

func (h *refHeap) remove(n *refNode) {
	if n.index >= 0 {
		h.removeAt(n.index)
	}
}

func refLess(a, b *refNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *refHeap) siftUp(i int) {
	q := h.queue
	n := q[i]
	for i > 0 {
		p := (i - 1) / 2
		if !refLess(n, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = i
		i = p
	}
	q[i] = n
	n.index = i
}

func (h *refHeap) siftDown(i int) bool {
	q := h.queue
	n := q[i]
	start := i
	half := len(q) / 2
	for i < half {
		c := 2*i + 1
		if r := c + 1; r < len(q) && refLess(q[r], q[c]) {
			c = r
		}
		if !refLess(q[c], n) {
			break
		}
		q[i] = q[c]
		q[i].index = i
		i = c
	}
	q[i] = n
	n.index = i
	return i != start
}

func (h *refHeap) removeAt(i int) {
	last := len(h.queue) - 1
	h.queue[i].index = -1
	if i != last {
		h.queue[i] = h.queue[last]
		h.queue[i].index = i
	}
	h.queue[last] = nil
	h.queue = h.queue[:last]
	if i < last {
		if !h.siftDown(i) {
			h.siftUp(i)
		}
	}
}

// TestCalendarMatchesHeapOrder drives the calendar queue and the reference
// heap through identical random schedule/cancel interleavings (including
// bursts of identical timestamps, which exercise the same-instant
// tie-break) and demands the exact same fire order.
func TestCalendarMatchesHeapOrder(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		e := New()
		ref := &refHeap{}
		var got []int
		type pending struct {
			ev Event
			rn *refNode
		}
		live := map[int]pending{}
		nextID := 0
		horizon := 0.0

		ops := 400 + rng.Intn(600)
		for op := 0; op < ops; op++ {
			switch r := rng.Float64(); {
			case r < 0.55 || len(live) == 0:
				// Schedule. A quarter of events reuse an existing
				// timestamp exactly to stress tie-break stability, and a
				// few land in the far future to force year wraps.
				at := horizon + rng.Float64()*10
				if rng.Float64() < 0.25 && len(ref.queue) > 0 {
					at = ref.queue[rng.Intn(len(ref.queue))].at
				}
				if rng.Float64() < 0.02 {
					at = horizon + 1e6 + rng.Float64()*1e6
				}
				if at < e.Now() {
					at = e.Now()
				}
				id := nextID
				nextID++
				ev := e.At(at, func() { got = append(got, id) })
				live[id] = pending{ev: ev, rn: ref.push(at, id)}
			case r < 0.8:
				// Cancel a random live event in both structures.
				for id, p := range live {
					if !e.Cancel(p.ev) {
						t.Fatalf("trial %d: cancel of live event %d failed", trial, id)
					}
					ref.remove(p.rn)
					delete(live, id)
					break
				}
			default:
				// Fire a burst.
				burst := 1 + rng.Intn(8)
				for i := 0; i < burst && len(ref.queue) > 0; i++ {
					want := ref.pop()
					before := len(got)
					if !e.Step() {
						t.Fatalf("trial %d: calendar empty, heap had %d", trial, len(ref.queue)+1)
					}
					if len(got) != before+1 || got[len(got)-1] != want.id {
						t.Fatalf("trial %d: fired %v, heap expected id %d at t=%v",
							trial, got[len(got)-1:], want.id, want.at)
					}
					delete(live, want.id)
					horizon = want.at
				}
			}
		}
		// Drain: remaining order must match exactly.
		for want := ref.pop(); want != nil; want = ref.pop() {
			if !e.Step() {
				t.Fatalf("trial %d: drain: calendar empty early", trial)
			}
			if got[len(got)-1] != want.id {
				t.Fatalf("trial %d: drain fired %d, want %d", trial, got[len(got)-1], want.id)
			}
		}
		if e.Step() {
			t.Fatalf("trial %d: calendar fired after heap drained", trial)
		}
	}
}

// TestCalendarTieBreakStability schedules many events at one instant
// interleaved with cancels and checks creation-order firing — the
// determinism contract same-time events rely on.
func TestCalendarTieBreakStability(t *testing.T) {
	e := New()
	var got []int
	var evs []Event
	for i := 0; i < 200; i++ {
		i := i
		evs = append(evs, e.At(5, func() { got = append(got, i) }))
	}
	// Cancel every third, then add a second wave at the same instant.
	want := []int{}
	for i := range evs {
		if i%3 == 0 {
			e.Cancel(evs[i])
		} else {
			want = append(want, i)
		}
	}
	for i := 200; i < 220; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
		want = append(want, i)
	}
	e.RunAll()
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: fired %d, want %d", i, got[i], want[i])
		}
	}
}

// TestNextAtAndRunBefore covers the two engine entry points the
// partitioned runner depends on: peeking the next event time without
// firing, and draining strictly below a horizon.
func TestNextAtAndRunBefore(t *testing.T) {
	e := New()
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt on empty calendar reported an event")
	}
	var got []float64
	for _, at := range []float64{3, 1, 2, 2.5, 4} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	if at, ok := e.NextAt(); !ok || at != 1 {
		t.Fatalf("NextAt = %v,%v, want 1,true", at, ok)
	}
	e.RunBefore(2.5)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("RunBefore(2.5) fired %v, want [1 2]", got)
	}
	if e.Now() != 2 {
		t.Fatalf("clock at %v after RunBefore, want 2 (last fired event)", e.Now())
	}
	if at, ok := e.NextAt(); !ok || at != 2.5 {
		t.Fatalf("NextAt after RunBefore = %v,%v, want 2.5,true", at, ok)
	}
	e.RunBefore(100)
	if len(got) != 5 {
		t.Fatalf("drain fired %d events, want 5", len(got))
	}
}

// TestCalendarResizeChurn grows the calendar through several doublings,
// shrinks it back down, and verifies ordering and counts survive the
// redistributions.
func TestCalendarResizeChurn(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(7))
	fired := 0
	var evs []Event
	for i := 0; i < 5000; i++ {
		evs = append(evs, e.Schedule(rng.Float64()*100, func() { fired++ }))
	}
	for i := 0; i < len(evs); i += 2 {
		e.Cancel(evs[i])
	}
	if e.Pending() != 2500 {
		t.Fatalf("pending %d after cancels, want 2500", e.Pending())
	}
	last := -1.0
	for e.Pending() > 0 {
		at, _ := e.NextAt()
		if at < last {
			t.Fatalf("order violation: %v after %v", at, last)
		}
		last = at
		e.Step()
	}
	if fired != 2500 {
		t.Fatalf("fired %d, want 2500", fired)
	}
}
