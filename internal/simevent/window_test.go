package simevent

import (
	"math/rand"
	"testing"
)

// TestShareSeqInterleaves checks that engines on one shared counter hand
// out globally unique, call-ordered sequence numbers, so NextKey is a
// cross-engine total order.
func TestShareSeqInterleaves(t *testing.T) {
	src := new(uint64)
	a, b := New(), New()
	a.ShareSeq(src)
	b.ShareSeq(src)
	a.At(5, func() {})
	b.At(5, func() {})
	a.At(5, func() {})
	if _, seq, ok := a.NextKey(); !ok || seq != 0 {
		t.Fatalf("a head seq = %d, want 0", seq)
	}
	if _, seq, ok := b.NextKey(); !ok || seq != 1 {
		t.Fatalf("b head seq = %d, want 1", seq)
	}
	if *src != 3 {
		t.Fatalf("shared counter = %d, want 3", *src)
	}
}

// TestWindowRenumberMergeOrder runs two windows whose parents interleave in
// time and checks that EndWindows assigns the children their sequence
// numbers in merged parent-fire order — the order one sequential engine
// would have assigned them — not per-engine block order.
func TestWindowRenumberMergeOrder(t *testing.T) {
	src := new(uint64)
	a, b := New(), New()
	a.ShareSeq(src)
	b.ShareSeq(src)
	// Parents: a@1, b@1.5, a@2 — each schedules one child at time 10.
	a.At(1, func() { a.Schedule(9, func() {}) })     // seq 0, child should get 3
	b.At(1.5, func() { b.Schedule(8.5, func() {}) }) // seq 1, child should get 4
	a.At(2, func() { a.Schedule(8, func() {}) })     // seq 2, child should get 5
	a.BeginWindow()
	b.BeginWindow()
	a.RunBefore(5)
	b.RunBefore(5)
	EndWindows([]*Engine{a, b}, src)
	if *src != 6 {
		t.Fatalf("shared counter = %d, want 6", *src)
	}
	// a now holds children with true seqs {3, 5}; head must be 3.
	if at, seq, ok := a.NextKey(); !ok || at != 10 || seq != 3 {
		t.Fatalf("a head = (%v, %d, %v), want (10, 3, true)", at, seq, ok)
	}
	if at, seq, ok := b.NextKey(); !ok || at != 10 || seq != 4 {
		t.Fatalf("b head = (%v, %d, %v), want (10, 4, true)", at, seq, ok)
	}
	a.Step()
	if _, seq, ok := a.NextKey(); !ok || seq != 5 {
		t.Fatalf("a second child seq = %d, want 5", seq)
	}
}

// TestWindowMatchesSequential is the property behind byte-identical
// partitioned runs: random transition-style chains split across two
// partition engines, advanced through windows, must fire in exactly the
// order a single sequential engine fires the same chains, including
// same-instant ties decided by sequence number.
func TestWindowMatchesSequential(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))

		type chain struct {
			part  int // 0 or 1
			start float64
			hops  []float64 // successive positive delays
		}
		chains := make([]chain, 3+rng.Intn(4))
		for i := range chains {
			c := chain{part: rng.Intn(2), start: float64(1+rng.Intn(4)) / 2}
			for h := 0; h < 1+rng.Intn(3); h++ {
				// Small integer-quartile delays force plenty of exact ties.
				c.hops = append(c.hops, float64(1+rng.Intn(4))/2)
			}
			chains[i] = c
		}

		// Reference: one engine, RunAll.
		var want []int
		ref := New()
		for i, c := range chains {
			i, c := i, c
			var arm func(hop int) func()
			arm = func(hop int) func() {
				return func() {
					want = append(want, i)
					if hop < len(c.hops) {
						ref.Schedule(c.hops[hop], arm(hop+1))
					}
				}
			}
			ref.At(c.start, arm(0))
		}
		ref.RunAll()

		// Partitioned: two engines on a shared counter, advanced window by
		// window to increasing horizons, then drained by merged NextKey.
		src := new(uint64)
		parts := []*Engine{New(), New()}
		parts[0].ShareSeq(src)
		parts[1].ShareSeq(src)
		var got []int
		for i, c := range chains {
			i, c := i, c
			pe := parts[c.part]
			var arm func(hop int) func()
			arm = func(hop int) func() {
				return func() {
					got = append(got, i)
					if hop < len(c.hops) {
						pe.Schedule(c.hops[hop], arm(hop+1))
					}
				}
			}
			pe.At(c.start, arm(0))
		}
		for horizon := 0.5; horizon < 10; horizon += 0.5 {
			parts[0].BeginWindow()
			parts[1].BeginWindow()
			parts[0].RunBefore(horizon)
			parts[1].RunBefore(horizon)
			EndWindows(parts, src)
			// Events at exactly the horizon: merged single-stepping by
			// (at, seq), the coordinator's phase-2 rule.
			for {
				best := -1
				var ba float64
				var bs uint64
				for pi, pe := range parts {
					if at, seq, ok := pe.NextKey(); ok && at <= horizon && (best < 0 || at < ba || (at == ba && seq < bs)) {
						best, ba, bs = pi, at, seq
					}
				}
				if best < 0 {
					break
				}
				parts[best].Step()
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("trial %d: fire order diverges at %d: got chain %d, want chain %d\ngot  %v\nwant %v",
					trial, k, got[k], want[k], got, want)
			}
		}
	}
}

// TestWindowCancelledChildNotRenumbered checks the node-recycling guard:
// a child scheduled and then cancelled inside a window must not be
// renumbered (its node may already belong to a newer event), while the
// replacement event scheduled onto the recycled node is.
func TestWindowCancelledChildNotRenumbered(t *testing.T) {
	src := new(uint64)
	e := New()
	e.ShareSeq(src)
	var doomed Event
	e.At(1, func() { doomed = e.Schedule(9, func() {}) }) // seq 0
	e.At(2, func() {                                      // seq 1
		e.Cancel(doomed)
		e.Schedule(9, func() {}) // reuses the freed node
	})
	e.BeginWindow()
	e.RunBefore(5)
	EndWindows([]*Engine{e}, src)
	// Counter advanced for both children (the cancelled one still consumed
	// a sequential draw in the reference order), survivor carries the
	// second draw.
	if *src != 4 {
		t.Fatalf("shared counter = %d, want 4", *src)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	if at, seq, ok := e.NextKey(); !ok || at != 11 || seq != 3 {
		t.Fatalf("survivor = (%v, %d, %v), want (11, 3, true)", at, seq, ok)
	}
}
