package simevent

// Ticker invokes a callback at a fixed simulated period until stopped.
// Policies use tickers for periodic re-evaluation (DRPM windows, epochs,
// destage scans).
type Ticker struct {
	engine  *Engine
	period  float64
	fn      func(now float64)
	tick    func() // allocated once; re-armed every period
	ev      Event
	stopped bool
}

// NewTicker schedules fn every period seconds, first firing one period from
// now. period must be positive.
func NewTicker(e *Engine, period float64, fn func(now float64)) *Ticker {
	if period <= 0 {
		panic("simevent: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.tick = func() {
		if t.stopped {
			return
		}
		// Re-arm before the callback so the callback may Stop the ticker.
		t.arm()
		t.fn(t.engine.Now())
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.engine.Schedule(t.period, t.tick)
}

// Stop cancels future ticks. Safe to call from within the tick callback.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.engine.Cancel(t.ev)
}

// Period returns the tick period in seconds.
func (t *Ticker) Period() float64 { return t.period }
