package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"

	"hibernator/internal/atomicio"
)

// The exporters format every byte by hand — shortest-round-trip floats
// via strconv, no maps, no reflection — so the same run always produces
// the same stream regardless of worker count or invocation. Non-finite
// floats become null in JSONL and an empty cell in CSV.

// WriteJSONL writes one JSON object per sample, keys in registration
// order with "t" (simulated seconds) first:
//
//	{"t":60,"resp_mean_ms":4.1,"disk0_level":2,...}
func (r *Registry) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var buf []byte
	for i := 0; i < r.times.Len(); i++ {
		buf = r.AppendRowJSONL(buf[:0], i)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// AppendRowJSONL appends the i-th retained sample as one JSONL line
// (newline included) and returns the extended buffer. WriteJSONL is
// exactly the concatenation of every row in order, so a consumer that
// renders rows incrementally — the job server's live streams — emits the
// same bytes the file exporter would. No-op on a nil registry.
func (r *Registry) AppendRowJSONL(buf []byte, i int) []byte {
	if r == nil || i < 0 || i >= r.times.Len() {
		return buf
	}
	buf = append(buf, `{"t":`...)
	buf = appendJSONFloat(buf, r.times.At(i))
	for _, m := range r.metrics {
		buf = append(buf, ',', '"')
		buf = appendJSONString(buf, m.name)
		buf = append(buf, '"', ':')
		buf = appendJSONFloat(buf, m.vals.At(i))
	}
	return append(buf, '}', '\n')
}

// WriteCSV writes a header row ("t" plus the instrument names in
// registration order) followed by one row per sample.
func (r *Registry) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var buf []byte
	buf = append(buf, 't')
	for _, m := range r.metrics {
		buf = append(buf, ',')
		buf = appendCSVString(buf, m.name)
	}
	buf = append(buf, '\n')
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for i := 0; i < r.times.Len(); i++ {
		buf = buf[:0]
		buf = appendCSVFloat(buf, r.times.At(i))
		for _, m := range r.metrics {
			buf = append(buf, ',')
			buf = appendCSVFloat(buf, m.vals.At(i))
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONL writes one JSON object per event in emission order:
//
//	{"t":3600,"kind":"speed_shift","group":1,"disk":-1,"from":3,"to":1,"reason":"cr_plan"}
func (t *Trace) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, ev := range t.events {
		buf = AppendEventJSONL(buf[:0], ev)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// AppendEventJSONL appends one trace event as a JSONL line (newline
// included) and returns the extended buffer. Trace.WriteJSONL is exactly
// the concatenation of every event in emission order, so incremental
// consumers — the job server's live trace streams — emit the same bytes
// the file exporter would.
func AppendEventJSONL(buf []byte, ev Event) []byte {
	buf = append(buf, `{"t":`...)
	buf = appendJSONFloat(buf, ev.T)
	buf = append(buf, `,"kind":"`...)
	buf = appendJSONString(buf, ev.Kind)
	buf = append(buf, `","group":`...)
	buf = strconv.AppendInt(buf, int64(ev.Group), 10)
	buf = append(buf, `,"disk":`...)
	buf = strconv.AppendInt(buf, int64(ev.Disk), 10)
	buf = append(buf, `,"from":`...)
	buf = strconv.AppendInt(buf, int64(ev.From), 10)
	buf = append(buf, `,"to":`...)
	buf = strconv.AppendInt(buf, int64(ev.To), 10)
	buf = append(buf, `,"reason":"`...)
	buf = appendJSONString(buf, ev.Reason)
	return append(buf, '"', '}', '\n')
}

// WriteCSV writes "t,kind,group,disk,from,to,reason" followed by one row
// per event in emission order.
func (t *Trace) WriteCSV(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("t,kind,group,disk,from,to,reason\n"); err != nil {
		return err
	}
	var buf []byte
	for _, ev := range t.events {
		buf = buf[:0]
		buf = appendCSVFloat(buf, ev.T)
		buf = append(buf, ',')
		buf = appendCSVString(buf, ev.Kind)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(ev.Group), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(ev.Disk), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(ev.From), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(ev.To), 10)
		buf = append(buf, ',')
		buf = appendCSVString(buf, ev.Reason)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the metrics stream to path: CSV when the path ends in
// ".csv", JSONL otherwise. A nil registry writes nothing and returns nil.
func (r *Registry) WriteFile(path string) error {
	if r == nil {
		return nil
	}
	return writeFile(path, r.WriteCSV, r.WriteJSONL)
}

// WriteFile writes the decision trace to path: CSV when the path ends in
// ".csv", JSONL otherwise. A nil trace writes nothing and returns nil.
func (t *Trace) WriteFile(path string) error {
	if t == nil {
		return nil
	}
	return writeFile(path, t.WriteCSV, t.WriteJSONL)
}

// writeFile streams path atomically with the format the suffix picks: a
// crash mid-export can never leave a torn stream behind.
func writeFile(path string, csv, jsonl func(io.Writer) error) error {
	write := jsonl
	if strings.HasSuffix(path, ".csv") {
		write = csv
	}
	return atomicio.WriteFile(path, write)
}

// appendJSONFloat appends v in shortest-round-trip form, or null when v
// is NaN or infinite (JSON has no encoding for those).
func appendJSONFloat(buf []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(buf, "null"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// appendCSVFloat appends v in shortest-round-trip form, or an empty cell
// when v is NaN or infinite.
func appendCSVFloat(buf []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return buf
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// appendJSONString appends s with the JSON escapes the simulator's metric
// names and reason strings can need (quotes, backslashes, control bytes).
// Emitters keep these strings ASCII; multi-byte runes pass through as-is,
// which is valid JSON since streams are UTF-8.
func appendJSONString(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c < 0x20:
			const hex = "0123456789abcdef"
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return buf
}

// appendCSVString appends s, quoting it RFC-4180 style only when it
// contains a comma, quote, or newline.
func appendCSVString(buf []byte, s string) []byte {
	needQuote := false
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == '"' || c == '\n' || c == '\r' {
			needQuote = true
			break
		}
	}
	if !needQuote {
		return append(buf, s...)
	}
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			buf = append(buf, '"', '"')
			continue
		}
		buf = append(buf, s[i])
	}
	return append(buf, '"')
}
