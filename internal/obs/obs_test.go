package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 4; i++ {
		r.Push(float64(i))
	}
	if r.Len() != 4 || r.Dropped() != 0 {
		t.Fatalf("pre-wrap: len=%d dropped=%d", r.Len(), r.Dropped())
	}
	// Pushing 3 more evicts 0,1,2: retained should be 3,4,5,6.
	for i := 4; i < 7; i++ {
		r.Push(float64(i))
	}
	if r.Len() != 4 {
		t.Fatalf("post-wrap len=%d, want 4", r.Len())
	}
	if r.Dropped() != 3 {
		t.Fatalf("dropped=%d, want 3", r.Dropped())
	}
	for i := 0; i < 4; i++ {
		if got := r.At(i); got != float64(i+3) {
			t.Errorf("At(%d)=%v, want %v", i, got, i+3)
		}
	}
	want := []float64{3, 4, 5, 6}
	for i, v := range r.Snapshot() {
		if v != want[i] {
			t.Errorf("Snapshot[%d]=%v, want %v", i, v, want[i])
		}
	}
	// Wrap exactly back to the start: head must reset to 0, not run off.
	r.Push(7)
	if got := r.At(3); got != 7 {
		t.Errorf("after 8th push At(3)=%v, want 7", got)
	}
}

func TestRingUnbounded(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 1000; i++ {
		r.Push(float64(i))
	}
	if r.Len() != 1000 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	if r.At(999) != 999 {
		t.Fatalf("At(999)=%v", r.At(999))
	}
}

func TestRingAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	NewRing(2).At(0)
}

// TestTimeWeightedEpochEdges checks the sampling rules exactly at epoch
// boundaries: a value change landing on the sample instant contributes
// nothing to the closing interval, and a zero-length interval reports the
// current value instead of dividing by zero.
func TestTimeWeightedEpochEdges(t *testing.T) {
	r := NewRegistry(0)
	g := r.TimeWeighted("inflight")

	// Interval (0,10]: value is 0 until t=4, then 2 until t=8, then 6.
	g.Set(4, 2)
	g.Set(8, 6)
	r.Sample(10)
	// Mean = (0*4 + 2*4 + 6*2) / 10 = 2.
	if got := r.Series("inflight")[0].V; got != 2 {
		t.Fatalf("first interval mean=%v, want 2", got)
	}

	// A change exactly on the next sample instant: it takes effect at
	// t=20, so interval (10,20] is all 6s and the new value belongs
	// entirely to the following interval.
	g.Set(20, 100)
	r.Sample(20)
	if got := r.Series("inflight")[1].V; got != 6 {
		t.Fatalf("edge-change interval mean=%v, want 6", got)
	}
	r.Sample(30)
	if got := r.Series("inflight")[2].V; got != 100 {
		t.Fatalf("post-edge interval mean=%v, want 100", got)
	}

	// Zero-length interval: report the current value, no NaN.
	r.Sample(30)
	if got := r.Series("inflight")[3].V; got != 100 || math.IsNaN(got) {
		t.Fatalf("zero-length interval=%v, want 100", got)
	}
}

func TestTimeWeightedAdd(t *testing.T) {
	r := NewRegistry(0)
	g := r.TimeWeighted("occ")
	g.Add(0, 1)
	g.Add(5, 1) // 2 from t=5
	g.Add(8, -1)
	r.Sample(10)
	// (1*5 + 2*3 + 1*2) / 10 = 1.3
	if got := r.Series("occ")[0].V; math.Abs(got-1.3) > 1e-12 {
		t.Fatalf("mean=%v, want 1.3", got)
	}
	if g.Value() != 1 {
		t.Fatalf("Value=%v, want 1", g.Value())
	}
}

func TestCounterAndGaugeSampling(t *testing.T) {
	r := NewRegistry(0)
	c := r.Counter("reqs")
	g := r.Gauge("level")
	c.Inc()
	c.Add(2)
	g.Set(3)
	r.Sample(1)
	g.Set(1)
	r.Sample(2)
	if s := r.Series("reqs"); s[0].V != 3 || s[1].V != 3 {
		t.Fatalf("counter series %v", s)
	}
	if s := r.Series("level"); s[0].V != 3 || s[1].V != 1 {
		t.Fatalf("gauge series %v", s)
	}
	if s := r.Series("level"); s[0].T != 1 || s[1].T != 2 {
		t.Fatalf("time axis %v", s)
	}
}

func TestRegistryRingSeries(t *testing.T) {
	r := NewRegistry(2)
	g := r.Gauge("x")
	for i := 1; i <= 5; i++ {
		g.Set(float64(i * 10))
		r.Sample(float64(i))
	}
	s := r.Series("x")
	if len(s) != 2 || s[0] != (Point{4, 40}) || s[1] != (Point{5, 50}) {
		t.Fatalf("ring series %v", s)
	}
}

func TestRegisterAfterSamplePanics(t *testing.T) {
	r := NewRegistry(0)
	r.Counter("a")
	r.Sample(1)
	defer func() {
		if recover() == nil {
			t.Fatal("late registration did not panic")
		}
	}()
	r.Counter("b")
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	r.Gauge("y").Set(1)
	r.TimeWeighted("z").Set(1, 2)
	r.Sample(5)
	if r.Samples() != 0 || r.Names() != nil || r.Series("x") != nil {
		t.Fatal("nil registry not inert")
	}
	if err := r.WriteJSONL(nil); err != nil {
		t.Fatal(err)
	}
	var tr *Trace
	tr.Emit(Event{})
	tr.Event(1, KindRetry, 0, 0, 0, 0, "")
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil trace not inert")
	}
	if err := tr.WriteCSV(nil); err != nil {
		t.Fatal(err)
	}
	var d *IntervalDist
	d.Observe(1)
	if n, _, _, _ := d.Flush(); n != 0 {
		t.Fatal("nil IntervalDist not inert")
	}
}

func TestIntervalDist(t *testing.T) {
	var d IntervalDist
	for i := 100; i >= 1; i-- {
		d.Observe(float64(i))
	}
	n, mean, p95, p99 := d.Flush()
	if n != 100 {
		t.Fatalf("n=%d", n)
	}
	if math.Abs(mean-50.5) > 1e-12 {
		t.Fatalf("mean=%v", mean)
	}
	// Sorted 1..100: p95 interpolates at index 94.05 -> 95.05.
	if math.Abs(p95-95.05) > 1e-9 {
		t.Fatalf("p95=%v", p95)
	}
	if math.Abs(p99-99.01) > 1e-9 {
		t.Fatalf("p99=%v", p99)
	}
	// Flushed: next interval starts empty.
	if n, _, _, _ := d.Flush(); n != 0 {
		t.Fatal("Flush did not reset")
	}
	d.Observe(7)
	if _, mean, p95, p99 := d.Flush(); mean != 7 || p95 != 7 || p99 != 7 {
		t.Fatal("single observation quantiles")
	}
}

func TestExportJSONL(t *testing.T) {
	r := NewRegistry(0)
	g := r.Gauge("resp_ms")
	c := r.Counter("reqs")
	g.Set(1.5)
	c.Inc()
	r.Sample(60)
	g.Set(math.NaN())
	r.Sample(120)

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"t":60,"resp_ms":1.5,"reqs":1}
{"t":120,"resp_ms":null,"reqs":1}
`
	if buf.String() != want {
		t.Fatalf("JSONL:\n%s\nwant:\n%s", buf.String(), want)
	}

	buf.Reset()
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	wantCSV := "t,resp_ms,reqs\n60,1.5,1\n120,,1\n"
	if buf.String() != wantCSV {
		t.Fatalf("CSV:\n%s\nwant:\n%s", buf.String(), wantCSV)
	}
}

func TestExportTrace(t *testing.T) {
	tr := NewTrace()
	tr.Event(10, KindSpeedShift, 1, -1, 3, 1, "cr_plan")
	tr.Event(20.5, KindRetry, 0, 2, 1, 2, `backoff, "quoted"`)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"t":10,"kind":"speed_shift","group":1,"disk":-1,"from":3,"to":1,"reason":"cr_plan"}
{"t":20.5,"kind":"retry","group":0,"disk":2,"from":1,"to":2,"reason":"backoff, \"quoted\""}
`
	if buf.String() != want {
		t.Fatalf("trace JSONL:\n%s\nwant:\n%s", buf.String(), want)
	}

	buf.Reset()
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	if lines[0] != "t,kind,group,disk,from,to,reason" {
		t.Fatalf("csv header %q", lines[0])
	}
	if lines[2] != `20.5,retry,0,2,1,2,"backoff, ""quoted"""` {
		t.Fatalf("csv quoting: %q", lines[2])
	}
}

// Export must be byte-deterministic: building the same registry twice
// yields the same stream.
func TestExportDeterminism(t *testing.T) {
	build := func() string {
		r := NewRegistry(0)
		gs := make([]Gauge, 8)
		for i := range gs {
			gs[i] = r.Gauge("g" + string(rune('a'+i)))
		}
		for s := 1; s <= 20; s++ {
			for i, g := range gs {
				g.Set(float64(s*i) / 3.0)
			}
			r.Sample(float64(s) * 7.25)
		}
		var buf bytes.Buffer
		if err := r.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if build() != build() {
		t.Fatal("export not deterministic")
	}
}
