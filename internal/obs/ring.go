package obs

// Ring is a preallocated buffer of float64 samples. With a positive
// capacity it keeps the most recent cap values, overwriting the oldest
// once full and counting what it dropped; with capacity 0 it degrades to
// a plain append buffer that grows without bound. The Registry allocates
// one Ring per instrument plus one for the shared time axis, so every
// instrument's i-th value lines up with the i-th sample time.
//
// A Ring is not safe for concurrent use; like the rest of the package it
// belongs to exactly one simulation run.
type Ring struct {
	buf     []float64
	capped  bool
	head    int // index of the oldest retained sample when capped
	n       int // retained samples
	dropped uint64
}

// NewRing returns a ring keeping the most recent capacity samples, or an
// unbounded append buffer when capacity is 0. Negative capacities are
// treated as 0.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		return &Ring{buf: make([]float64, 0, 64)}
	}
	return &Ring{buf: make([]float64, 0, capacity), capped: true}
}

// Push appends one sample, evicting the oldest if the ring is full.
func (r *Ring) Push(v float64) {
	if !r.capped {
		r.buf = append(r.buf, v)
		r.n = len(r.buf)
		return
	}
	if r.n < cap(r.buf) {
		r.buf = append(r.buf, v)
		r.n = len(r.buf)
		return
	}
	r.buf[r.head] = v
	r.head++
	if r.head == cap(r.buf) {
		r.head = 0
	}
	r.dropped++
}

// Len reports how many samples are currently retained.
func (r *Ring) Len() int { return r.n }

// At returns the i-th oldest retained sample; i must be in [0, Len()).
func (r *Ring) At(i int) float64 {
	if i < 0 || i >= r.n {
		panic("obs: Ring.At out of range")
	}
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return r.buf[j]
}

// Dropped reports how many samples were overwritten because the ring was
// full. It is always 0 for unbounded rings.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Snapshot copies the retained samples, oldest first, into a fresh slice.
func (r *Ring) Snapshot() []float64 {
	out := make([]float64, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.At(i)
	}
	return out
}
