package obs

import "sort"

// Registry holds a run's instruments and their sampled series. Register
// every instrument before the first Sample call; Sample(t) then snapshots
// all of them against a shared simulated-time axis, so the i-th value of
// every series belongs to the i-th sample time.
//
// A nil *Registry is valid everywhere: it hands out inert instruments and
// Sample on it does nothing, which lets the simulator keep its hooks in
// place unconditionally.
type Registry struct {
	maxSamples int
	times      *Ring
	metrics    []*metric // registration order == export column order
	byName     map[string]*metric
	lastSample float64
	sampled    bool
	// suppressBefore makes Sample(t) with t strictly below it process the
	// interval (so accumulators stay in lockstep with an uninterrupted
	// run) but retain no row (see SuppressBefore).
	suppressBefore float64
	// onSample, when non-nil, observes every retained row (see
	// SetOnSample). Suppressed samples are not reported.
	onSample func(row int)
}

// kind discriminates the three instrument behaviours inside a metric.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindTimeWeighted
)

// metric is the registry-internal state behind the exported instrument
// handles. Counters and gauges use only cur; time-weighted gauges also
// integrate cur over simulated time between samples.
type metric struct {
	name string
	kind kind
	cur  float64
	// time-weighted state: integral of cur since the last sample, and the
	// simulated time up to which it has been accumulated.
	twInt  float64
	twLast float64
	vals   *Ring
}

// NewRegistry returns an empty registry. With maxSamples > 0 each series
// keeps only the most recent maxSamples points (ring semantics); with 0
// the series grow without bound for the length of the run.
func NewRegistry(maxSamples int) *Registry {
	if maxSamples < 0 {
		maxSamples = 0
	}
	return &Registry{
		maxSamples: maxSamples,
		times:      NewRing(maxSamples),
		byName:     map[string]*metric{},
	}
}

func (r *Registry) register(name string, k kind) *metric {
	if m, ok := r.byName[name]; ok {
		if m.kind != k {
			panic("obs: instrument " + name + " re-registered with a different kind")
		}
		return m
	}
	if r.sampled {
		panic("obs: instrument " + name + " registered after sampling began")
	}
	m := &metric{name: name, kind: k, vals: NewRing(r.maxSamples)}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m
}

// Counter registers (or looks up) a cumulative counter. On a nil registry
// the returned handle is inert.
func (r *Registry) Counter(name string) Counter {
	if r == nil {
		return Counter{}
	}
	return Counter{r.register(name, kindCounter)}
}

// Gauge registers (or looks up) an instantaneous gauge. On a nil registry
// the returned handle is inert.
func (r *Registry) Gauge(name string) Gauge {
	if r == nil {
		return Gauge{}
	}
	return Gauge{r.register(name, kindGauge)}
}

// TimeWeighted registers (or looks up) a time-weighted gauge. On a nil
// registry the returned handle is inert.
func (r *Registry) TimeWeighted(name string) TimeWeighted {
	if r == nil {
		return TimeWeighted{}
	}
	return TimeWeighted{r.register(name, kindTimeWeighted)}
}

// Sample snapshots every instrument at simulated time t: counters and
// gauges record their current value, time-weighted gauges record their
// time-weighted mean over (previous sample, t] and reset their integral.
// Sampling at the same t twice (a zero-length interval) records the
// current value for time-weighted gauges rather than dividing by zero.
// Sample is a no-op on a nil registry.
func (r *Registry) Sample(t float64) {
	if r == nil {
		return
	}
	dt := t - r.lastSample
	if !r.sampled {
		// The first interval starts at the registry's epoch, time 0.
		dt = t
	}
	keep := t >= r.suppressBefore
	if keep {
		r.times.Push(t)
	}
	for _, m := range r.metrics {
		v := m.cur
		if m.kind == kindTimeWeighted {
			m.twInt += m.cur * (t - m.twLast)
			m.twLast = t
			if dt > 0 {
				v = m.twInt / dt
			}
			m.twInt = 0
		}
		if keep {
			m.vals.Push(v)
		}
	}
	r.lastSample = t
	r.sampled = true
	if keep && r.onSample != nil {
		r.onSample(r.times.Len() - 1)
	}
}

// SetOnSample installs a callback invoked after every retained sample
// with the new row's index — the seam live streams hang off: the callback
// renders the row (AppendRowJSONL) the instant it exists instead of
// waiting for the run to finish. Suppressed samples (SuppressBefore) are
// not reported. The callback runs on the simulation goroutine and must
// not call back into the registry. Nil uninstalls; no-op on a nil
// registry.
func (r *Registry) SetOnSample(fn func(row int)) {
	if r == nil {
		return
	}
	r.onSample = fn
}

// SuppressBefore makes samples taken strictly before cut process their
// interval — time-weighted integrals reset, deltas advance, exactly as
// in an uninterrupted run — while retaining no row. A resumed run
// replays its deterministic prefix under suppression so its exported
// stream is precisely the tail (rows at and after the snapshot epoch)
// of the uninterrupted stream. Call before the first Sample; no-op on a
// nil registry.
func (r *Registry) SuppressBefore(cut float64) {
	if r == nil {
		return
	}
	r.suppressBefore = cut
}

// Samples reports how many sample points each series currently retains
// (0 on a nil registry).
func (r *Registry) Samples() int {
	if r == nil {
		return 0
	}
	return r.times.Len()
}

// Names returns the instrument names in registration order, which is also
// the column order of both exporters.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.metrics))
	for i, m := range r.metrics {
		out[i] = m.name
	}
	return out
}

// Point is one sampled value of one series at simulated time T seconds.
type Point struct {
	T, V float64
}

// Series copies the retained samples of the named instrument, oldest
// first. It returns nil for unknown names and on a nil registry.
func (r *Registry) Series(name string) []Point {
	if r == nil {
		return nil
	}
	m, ok := r.byName[name]
	if !ok {
		return nil
	}
	out := make([]Point, m.vals.Len())
	for i := range out {
		out[i] = Point{T: r.times.At(i), V: m.vals.At(i)}
	}
	return out
}

// Counter is a cumulative sum. The zero Counter (from a nil registry) is
// inert: Add and Inc do nothing and Value returns 0.
type Counter struct{ m *metric }

// Add increases the counter by d.
func (c Counter) Add(d float64) {
	if c.m != nil {
		c.m.cur += d
	}
}

// Inc increases the counter by 1.
func (c Counter) Inc() { c.Add(1) }

// Value returns the current cumulative total.
func (c Counter) Value() float64 {
	if c.m == nil {
		return 0
	}
	return c.m.cur
}

// Gauge is an instantaneous value; sampling records whatever was last
// Set. The zero Gauge is inert.
type Gauge struct{ m *metric }

// Set replaces the gauge's current value.
func (g Gauge) Set(v float64) {
	if g.m != nil {
		g.m.cur = v
	}
}

// Value returns the value last Set (0 if never set or inert).
func (g Gauge) Value() float64 {
	if g.m == nil {
		return 0
	}
	return g.m.cur
}

// TimeWeighted is a piecewise-constant value integrated over simulated
// time. Set(t, v) declares that the value becomes v at time t; sampling
// records the time-weighted mean since the previous sample. Updates must
// arrive in nondecreasing time order, which the single-threaded event
// engine guarantees. The zero TimeWeighted is inert.
type TimeWeighted struct{ m *metric }

// Set declares the value becomes v at simulated time t.
func (g TimeWeighted) Set(t, v float64) {
	if g.m == nil {
		return
	}
	g.m.twInt += g.m.cur * (t - g.m.twLast)
	g.m.twLast = t
	g.m.cur = v
}

// Add shifts the value by d at simulated time t (handy for occupancy-style
// gauges driven by enter/exit events).
func (g TimeWeighted) Add(t, d float64) {
	if g.m == nil {
		return
	}
	g.Set(t, g.m.cur+d)
}

// Value returns the current (not time-averaged) value.
func (g TimeWeighted) Value() float64 {
	if g.m == nil {
		return 0
	}
	return g.m.cur
}

// IntervalDist accumulates scalar observations (response times, in
// seconds) between samples and flushes them to mean/P95/P99 summaries.
// The scratch buffer is reused across intervals, so a steady-state run
// stops allocating after the busiest interval has been seen.
type IntervalDist struct {
	vals []float64
}

// Observe records one observation in the current interval.
func (d *IntervalDist) Observe(v float64) {
	if d == nil {
		return
	}
	d.vals = append(d.vals, v)
}

// Flush sorts the interval's observations and returns their count, mean,
// and interpolated P95/P99, then resets the interval. An empty interval
// returns all zeros.
func (d *IntervalDist) Flush() (n int, mean, p95, p99 float64) {
	if d == nil || len(d.vals) == 0 {
		return 0, 0, 0, 0
	}
	n = len(d.vals)
	sum := 0.0
	for _, v := range d.vals {
		sum += v
	}
	sort.Float64s(d.vals)
	mean = sum / float64(n)
	p95 = quantile(d.vals, 0.95)
	p99 = quantile(d.vals, 0.99)
	d.vals = d.vals[:0]
	return n, mean, p95, p99
}

// quantile linearly interpolates the q-th quantile of sorted values.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}
