package obs

// Event kinds emitted by the simulator's policies, the Hibernator
// controller, and the array's fault path. OBSERVABILITY.md documents each
// kind's From/To semantics; unused subject fields are -1.
const (
	KindEpochPlan     = "epoch_plan"     // CR epoch plan adopted (hibernator) or PDC reconcentration
	KindSpeedShift    = "speed_shift"    // a group commanded from speed level From to To
	KindStandby       = "standby"        // a group spun down to standby
	KindSpinUp        = "spin_up"        // a group proactively spun up from standby
	KindMigrateStart  = "migrate_start"  // extent migration began (From/To = source/destination group)
	KindMigrateFinish = "migrate_finish" // extent migration completed
	KindSwapStart     = "swap_start"     // extent swap began (From/To = the two groups)
	KindSwapFinish    = "swap_finish"    // extent swap completed
	KindBoostFire     = "boost_fire"     // performance boost engaged: everything to full speed
	KindBoostRelease  = "boost_release"  // boost released, plan re-applied
	KindBoostMute     = "boost_mute"     // boost watchdog muted for From seconds
	KindRetry         = "retry"          // same-disk retry scheduled (From = attempts so far)
	KindTimeout       = "timeout"        // op deadline expired, attempt abandoned via redundancy
	KindFallback      = "fallback"       // request served through redundancy instead of its disk
	KindSuspect       = "fault_suspect"  // error tracker marked a disk suspect (From = error count)
	KindEvict         = "fault_evict"    // error tracker evicted a disk (fail-stop + autorebuild)
	KindDiskFail      = "disk_fail"      // a disk fail-stopped
	KindRebuildStart  = "rebuild_start"  // rebuild onto a spare began (To = spare index)
	KindRebuildFinish = "rebuild_finish" // rebuild completed, group healthy again
)

// Event is one structured policy-decision record. T is simulated seconds;
// Group and Disk identify the subject (Disk is the array-wide disk ID,
// not the index within its group); From and To carry kind-specific
// integers such as speed levels or group indices. Fields that do not
// apply hold -1. Reason is a short human-readable cause ("cr_plan",
// "tripwire", "severe violation", ...).
type Event struct {
	T      float64
	Kind   string
	Group  int
	Disk   int
	From   int
	To     int
	Reason string
}

// Trace is an append-only log of Events for one simulation run. A nil
// *Trace swallows Emit calls, so emitters never need a guard. Trace is
// not safe for concurrent use; each run owns its own.
type Trace struct {
	events []Event
	// suppressBefore drops events with T strictly below it (see
	// SuppressBefore); 0 keeps everything.
	suppressBefore float64
	// onEmit, when non-nil, observes every retained event (see SetOnEmit).
	onEmit func(Event)
}

// NewTrace returns an empty trace with room for a typical run's events.
func NewTrace() *Trace {
	return &Trace{events: make([]Event, 0, 256)}
}

// SuppressBefore drops subsequently emitted events whose time is
// strictly below cut. A resumed run replays its deterministic prefix but
// must export only the tail — the events from the snapshot epoch on — so
// the resumed stream lines up with the tail of an uninterrupted one.
// No-op on a nil trace.
func (t *Trace) SuppressBefore(cut float64) {
	if t == nil {
		return
	}
	t.suppressBefore = cut
}

// SetOnEmit installs a callback invoked for every retained event, in
// emission order — the live-streaming seam mirroring
// Registry.SetOnSample. Suppressed events (SuppressBefore) are not
// reported. The callback runs on the simulation goroutine and must not
// call back into the trace. Nil uninstalls; no-op on a nil trace.
func (t *Trace) SetOnEmit(fn func(Event)) {
	if t == nil {
		return
	}
	t.onEmit = fn
}

// Emit appends one event. It is a no-op on a nil trace.
func (t *Trace) Emit(ev Event) {
	if t == nil || ev.T < t.suppressBefore {
		return
	}
	t.events = append(t.events, ev)
	if t.onEmit != nil {
		t.onEmit(ev)
	}
}

// Event is shorthand for Emit with positional fields.
func (t *Trace) Event(tm float64, kind string, group, disk, from, to int, reason string) {
	if t == nil || tm < t.suppressBefore {
		return
	}
	t.events = append(t.events, Event{T: tm, Kind: kind, Group: group, Disk: disk, From: from, To: to, Reason: reason})
	if t.onEmit != nil {
		t.onEmit(t.events[len(t.events)-1])
	}
}

// Len reports the number of recorded events (0 on a nil trace).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded events in emission order. The slice is the
// trace's backing store; callers must not modify it.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Tail copies the last n recorded events (fewer when the trace is
// shorter, nil on a nil trace) — the watchdog's stuck-run diagnostics.
func (t *Trace) Tail(n int) []Event {
	if t == nil || n <= 0 {
		return nil
	}
	if n > len(t.events) {
		n = len(t.events)
	}
	return append([]Event(nil), t.events[len(t.events)-n:]...)
}
