package obs

import (
	"bytes"
	"testing"
)

// The live-streaming contract: rendering every row/event incrementally
// through the hooks produces exactly the bytes the file exporters write.
func TestIncrementalMatchesWriteJSONL(t *testing.T) {
	r := NewRegistry(0)
	var streamed []byte
	r.SetOnSample(func(row int) {
		streamed = r.AppendRowJSONL(streamed, row)
	})
	c := r.Counter("reqs")
	g := r.Gauge("depth")
	for i := 0; i < 5; i++ {
		c.Add(float64(i))
		g.Set(float64(10 - i))
		r.Sample(float64(i) * 60)
	}
	var file bytes.Buffer
	if err := r.WriteJSONL(&file); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, file.Bytes()) {
		t.Fatalf("incremental stream diverges from WriteJSONL:\n%q\nvs\n%q", streamed, file.Bytes())
	}

	tr := NewTrace()
	streamed = nil
	tr.SetOnEmit(func(ev Event) {
		streamed = AppendEventJSONL(streamed, ev)
	})
	tr.Event(1.5, KindSpeedShift, 2, -1, 3, 1, "cr_plan")
	tr.Emit(Event{T: 2.25, Kind: KindBoostFire, Group: -1, Disk: -1, From: -1, To: -1, Reason: "severe violation"})
	file.Reset()
	if err := tr.WriteJSONL(&file); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, file.Bytes()) {
		t.Fatalf("incremental trace diverges from WriteJSONL:\n%q\nvs\n%q", streamed, file.Bytes())
	}
}

// Suppressed rows and events must not reach the streaming hooks — a
// resumed job's stream has to start exactly at the snapshot epoch.
func TestHooksHonorSuppression(t *testing.T) {
	r := NewRegistry(0)
	rows := 0
	r.SetOnSample(func(int) { rows++ })
	r.SuppressBefore(100)
	r.Counter("x").Inc()
	r.Sample(0)
	r.Sample(60)
	r.Sample(120)
	if rows != 1 {
		t.Fatalf("suppressed samples reached the hook: %d rows", rows)
	}

	tr := NewTrace()
	evs := 0
	tr.SetOnEmit(func(Event) { evs++ })
	tr.SuppressBefore(100)
	tr.Event(50, KindStandby, 0, -1, -1, -1, "early")
	tr.Event(150, KindSpinUp, 0, -1, -1, -1, "late")
	if evs != 1 {
		t.Fatalf("suppressed events reached the hook: %d events", evs)
	}
}
