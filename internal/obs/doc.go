// Package obs is the simulator's observability layer: a metrics registry
// sampled on interval boundaries, a structured trace of policy decisions,
// and deterministic JSONL/CSV exporters for both.
//
// The package is zero-dependency (stdlib only) and allocation-conscious:
// samples land in preallocated ring or append buffers keyed by simulated
// time, instruments are registered once up front, and the exporters format
// bytes by hand so that the same run always produces the same stream.
//
// Everything is nil-safe by contract. A nil *Registry hands out inert
// instruments, a nil *Trace swallows events, and Sample on a nil registry
// is a no-op — so the simulator threads observability hooks through its
// hot paths unconditionally, and a run without the layer armed schedules
// not one extra event and allocates not one extra byte. That is what keeps
// unobserved runs byte-identical to builds predating this package.
//
// Three instrument kinds cover the simulator's needs:
//
//   - Counter: a cumulative sum (requests completed, joules, retries).
//     Sampling records the running total.
//   - Gauge: an instantaneous value set at will (queue depth, speed
//     level). Sampling records the last value set.
//   - TimeWeighted: a piecewise-constant value integrated over simulated
//     time (in-flight requests). Sampling records the time-weighted mean
//     since the previous sample, which is exact regardless of how the
//     value's changes align with sample boundaries.
//
// The decision trace is an append log of Events — speed shifts, migration
// start/finish, boost fire/release, fault suspect/evict, retry/timeout/
// fallback — each carrying the simulated timestamp, the subject group and
// disk, kind-specific From/To values and a short reason string. The full
// schema, field by field, is documented in OBSERVABILITY.md at the
// repository root.
package obs
