package heat

import (
	"math"
	"testing"

	"hibernator/internal/array"
	"hibernator/internal/diskmodel"
	"hibernator/internal/raid"
	"hibernator/internal/simevent"
)

func testArray(t *testing.T) (*simevent.Engine, *array.Array) {
	t.Helper()
	e := simevent.New()
	spec := diskmodel.MultiSpeedUltrastar(1, 0)
	a, err := array.New(array.Config{
		Engine: e, Spec: &spec, Groups: 2, GroupDisks: 1,
		Level: raid.RAID0, ExtentBytes: 64 << 20, Seed: 1, ExpectedRotLatency: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, a
}

func TestTemperatureFollowsAccesses(t *testing.T) {
	e, a := testArray(t)
	tr := NewTracker(a, 0.5)
	eb := a.ExtentBytes()
	// Hit extent 0 ten times, extent 1 once.
	for i := 0; i < 10; i++ {
		a.Submit(0, 4096, false, nil)
	}
	a.Submit(eb, 4096, false, nil)
	e.RunAll()
	tr.Update(10)
	if tr.Temp(0) <= tr.Temp(1) {
		t.Errorf("temp(0)=%v should exceed temp(1)=%v", tr.Temp(0), tr.Temp(1))
	}
	if math.Abs(tr.Temp(0)-0.5*10.0/10) > 1e-12 {
		t.Errorf("temp(0) = %v, want alpha*rate = 0.5", tr.Temp(0))
	}
	ranked := tr.Ranked()
	if ranked[0] != 0 || ranked[1] != 1 {
		t.Errorf("ranking = %v", ranked[:3])
	}
}

func TestTemperatureDecays(t *testing.T) {
	e, a := testArray(t)
	tr := NewTracker(a, 0.5)
	for i := 0; i < 10; i++ {
		a.Submit(0, 4096, false, nil)
	}
	e.RunAll()
	tr.Update(10) // temp = 0.5
	first := tr.Temp(0)
	tr.Update(10) // no new accesses: temp halves
	if math.Abs(tr.Temp(0)-first/2) > 1e-12 {
		t.Errorf("decayed temp = %v, want %v", tr.Temp(0), first/2)
	}
	// Decay approaches zero but ranking stays deterministic.
	for i := 0; i < 100; i++ {
		tr.Update(10)
	}
	if tr.Temp(0) > 1e-9 {
		t.Errorf("temp failed to decay: %v", tr.Temp(0))
	}
	r := tr.Ranked()
	for i := 1; i < len(r); i++ {
		if tr.Temp(r[i-1]) == tr.Temp(r[i]) && r[i-1] > r[i] {
			t.Fatal("ties must break by index")
		}
	}
}

func TestTotalAndGroupLoad(t *testing.T) {
	e, a := testArray(t)
	tr := NewTracker(a, 1.0)
	eb := a.ExtentBytes()
	a.Submit(0, 4096, false, nil)    // extent 0
	a.Submit(eb, 4096, false, nil)   // extent 1
	a.Submit(eb, 4096, false, nil)   // extent 1
	a.Submit(2*eb, 4096, false, nil) // extent 2
	e.RunAll()
	tr.Update(4)
	if math.Abs(tr.Total()-1.0) > 1e-12 { // 4 accesses / 4 s
		t.Errorf("total = %v, want 1.0", tr.Total())
	}
	loads := tr.GroupLoad()
	sum := 0.0
	for _, l := range loads {
		sum += l
	}
	if math.Abs(sum-tr.Total()) > 1e-12 {
		t.Errorf("group loads %v don't sum to total %v", loads, tr.Total())
	}
	// Extents 0 and 2 share a group (round-robin), extent 1 is alone.
	g0 := a.ExtentLocation(0).Group
	g1 := a.ExtentLocation(1).Group
	if g0 == g1 {
		t.Fatal("test assumes round-robin split")
	}
	if math.Abs(loads[g0]-0.5) > 1e-12 || math.Abs(loads[g1]-0.5) > 1e-12 {
		t.Errorf("loads = %v, want 0.5 each", loads)
	}
}

func TestBadInputsPanic(t *testing.T) {
	_, a := testArray(t)
	for _, alpha := range []float64{0, -1, 1.5} {
		alpha := alpha
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v must panic", alpha)
				}
			}()
			NewTracker(a, alpha)
		}()
	}
	tr := NewTracker(a, 0.5)
	defer func() {
		if recover() == nil {
			t.Error("zero epoch must panic")
		}
	}()
	tr.Update(0)
}
