// Package heat tracks per-extent access temperatures — exponentially
// decayed access rates — from the array's lifetime access counters. Both
// the PDC baseline and Hibernator's layout manager rank extents by
// temperature to decide what data belongs on fast (or spinning) disks.
package heat

import (
	"fmt"
	"math"
	"sort"

	"hibernator/internal/array"
)

// Tracker maintains decayed per-extent temperatures. Call Update at each
// epoch boundary; it diffs the array's lifetime counters against the last
// snapshot.
type Tracker struct {
	arr   *array.Array
	alpha float64
	prev  []uint64
	temp  []float64 // accesses per second, decayed
}

// NewTracker creates a tracker with newest-epoch weight alpha in (0,1].
func NewTracker(arr *array.Array, alpha float64) *Tracker {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("heat: alpha %v outside (0,1]", alpha))
	}
	return &Tracker{
		arr:   arr,
		alpha: alpha,
		prev:  make([]uint64, arr.NumExtents()),
		temp:  make([]float64, arr.NumExtents()),
	}
}

// Update folds the accesses since the previous Update into the
// temperatures. epochSeconds is the elapsed simulated time and must be
// positive.
func (t *Tracker) Update(epochSeconds float64) {
	if epochSeconds <= 0 {
		panic(fmt.Sprintf("heat: epoch length %v must be positive", epochSeconds))
	}
	for e := range t.temp {
		cur := t.arr.ExtentAccesses(e)
		rate := float64(cur-t.prev[e]) / epochSeconds
		t.prev[e] = cur
		t.temp[e] = t.alpha*rate + (1-t.alpha)*t.temp[e]
	}
}

// Temp returns the decayed access rate (accesses/second) of an extent.
func (t *Tracker) Temp(e int) float64 { return t.temp[e] }

// Total returns the sum of all extent temperatures — the predicted total
// logical arrival rate onto the array.
func (t *Tracker) Total() float64 {
	sum := 0.0
	for _, v := range t.temp {
		sum += v
	}
	return sum
}

// Ranked returns extent indices sorted hottest-first, ties broken by
// index for determinism.
func (t *Tracker) Ranked() []int {
	out := make([]int, len(t.temp))
	for i := range out {
		out[i] = i
	}
	sort.SliceStable(out, func(a, b int) bool {
		if t.temp[out[a]] != t.temp[out[b]] {
			return t.temp[out[a]] > t.temp[out[b]]
		}
		return out[a] < out[b]
	})
	return out
}

// Fingerprint folds the tracker's full deterministic state — decay
// weight, counter snapshot and decayed temperatures — into one FNV-1a
// hash. Epoch snapshots embed it so a resumed run can prove its replayed
// tracker matches the original bit for bit.
func (t *Tracker) Fingerprint() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	mix(math.Float64bits(t.alpha))
	for _, v := range t.prev {
		mix(v)
	}
	for _, v := range t.temp {
		mix(math.Float64bits(v))
	}
	return h
}

// GroupLoad sums the temperatures of the extents currently placed in each
// group: the predicted arrival rate per group under the current layout.
func (t *Tracker) GroupLoad() []float64 {
	loads := make([]float64, len(t.arr.Groups()))
	for e := range t.temp {
		loads[t.arr.ExtentLocation(e).Group] += t.temp[e]
	}
	return loads
}
