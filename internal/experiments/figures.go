package experiments

import (
	"sort"

	"hibernator/internal/report"
)

func init() {
	register(Experiment{
		ID:           "F1",
		Title:        "Energy by scheme (OLTP-like)",
		Reconstructs: "the paper's OLTP energy-consumption figure",
		Run: func(o Opts) ([]*report.Table, error) {
			return energyFigure(o, "oltp", "F1", "Energy by scheme, OLTP-like workload")
		},
	})
	register(Experiment{
		ID:           "F2",
		Title:        "Response time by scheme (OLTP-like)",
		Reconstructs: "the paper's OLTP response-time figure",
		Run: func(o Opts) ([]*report.Table, error) {
			return respFigure(o, "oltp", "F2", "Response time by scheme, OLTP-like workload")
		},
	})
	register(Experiment{
		ID:           "F3",
		Title:        "Energy by scheme (Cello-like)",
		Reconstructs: "the paper's Cello99 energy-consumption figure",
		Run: func(o Opts) ([]*report.Table, error) {
			return energyFigure(o, "cello", "F3", "Energy by scheme, Cello-like workload")
		},
	})
	register(Experiment{
		ID:           "F4",
		Title:        "Response time by scheme (Cello-like)",
		Reconstructs: "the paper's Cello99 response-time figure",
		Run: func(o Opts) ([]*report.Table, error) {
			return respFigure(o, "cello", "F4", "Response time by scheme, Cello-like workload")
		},
	})
	register(Experiment{
		ID:           "F10",
		Title:        "Energy breakdown by disk state (OLTP-like)",
		Reconstructs: "the paper's where-does-the-energy-go breakdown",
		Run:          runF10,
	})
}

func energyFigure(o Opts, kind, id, title string) ([]*report.Table, error) {
	b, err := memoBakeoff(o, kind)
	if err != nil {
		return nil, err
	}
	t := report.New(id, title,
		"scheme", "energy (kJ)", "normalized", "savings", "spin-ups", "speed shifts", "migrations")
	for _, name := range b.order {
		schemeRow(t, name, b, true)
	}
	t.AddNote("goal %.2f ms (%.1fx Base mean); duration %.1f h simulated", b.goal*1000, b.goalFactor, b.dur/3600)
	return []*report.Table{t}, nil
}

func respFigure(o Opts, kind, id, title string) ([]*report.Table, error) {
	b, err := memoBakeoff(o, kind)
	if err != nil {
		return nil, err
	}
	t := report.New(id, title,
		"scheme", "mean (ms)", "P95 (ms)", "P99 (ms)", "vs Base", "goal violations", "max (s)")
	for _, name := range b.order {
		schemeRow(t, name, b, false)
	}
	t.AddNote("goal %.2f ms; violations = fraction of observation windows whose mean exceeded it", b.goal*1000)
	return []*report.Table{t}, nil
}

func runF10(o Opts) ([]*report.Table, error) {
	b, err := memoBakeoff(o, "oltp")
	if err != nil {
		return nil, err
	}
	// Union of state names across schemes, stable order.
	states := map[string]bool{}
	for _, r := range b.results {
		for s := range r.EnergyByState {
			states[s] = true
		}
	}
	names := make([]string, 0, len(states))
	for s := range states {
		names = append(names, s)
	}
	sort.Strings(names)
	cols := append([]string{"scheme", "total (kJ)"}, names...)
	t := report.New("F10", "Energy breakdown by disk state, OLTP-like workload (kJ)", cols...)
	for _, scheme := range b.order {
		r := b.results[scheme]
		row := []string{scheme, report.KJ(r.Energy)}
		for _, s := range names {
			row = append(row, report.KJ(r.EnergyByState[s]))
		}
		t.AddRow(row...)
	}
	t.AddNote("idle dominates Base; power-managed schemes trade idle joules for standby/low-speed joules plus transition overheads")
	return []*report.Table{t}, nil
}
