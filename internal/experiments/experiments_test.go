package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "T2", "T3", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "X1", "X2", "X3", "X4", "X5", "X6", "X7"}
	all := All()
	if len(all) != len(want) {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		t.Fatalf("registry has %v, want %v", ids, want)
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	// Ordering: tables first, figures numeric.
	if all[0].ID != "T1" || all[3].ID != "F1" || all[12].ID != "F10" {
		t.Errorf("ordering wrong: %v", idsOf(all))
	}
	for _, e := range all {
		if e.Title == "" || e.Reconstructs == "" || e.Run == nil {
			t.Errorf("experiment %s incompletely described", e.ID)
		}
	}
}

func idsOf(es []Experiment) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	return out
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("F99"); ok {
		t.Fatal("unknown ID should not resolve")
	}
}

// Smoke-run every experiment at tiny scale and sanity-check the tables.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs take ~a minute")
	}
	o := Opts{Scale: 0.02, Seed: 7}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(o)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s: table %s has no rows", e.ID, tb.ID)
				}
				var b strings.Builder
				if err := tb.Fprint(&b); err != nil {
					t.Errorf("%s: print: %v", e.ID, err)
				}
				if err := tb.CSV(&b); err != nil {
					t.Errorf("%s: csv: %v", e.ID, err)
				}
			}
		})
	}
}

// The headline claim at a moderate scale: Hibernator saves energy and
// meets the goal where the baselines either save little or violate it.
func TestHeadlineShapeOLTP(t *testing.T) {
	if testing.Short() {
		t.Skip("bake-off takes tens of seconds")
	}
	b, err := memoBakeoff(Opts{Scale: 0.5, Seed: 3}, "oltp")
	if err != nil {
		t.Fatal(err)
	}
	base := b.base()
	hib := b.results["Hibernator"]
	if s := hib.SavingsVs(base); s < 0.05 {
		t.Errorf("Hibernator OLTP savings %.2f, want >= 0.05 at the tight 1.3x goal", s)
	}
	if hib.MeanResp > b.goal {
		t.Errorf("Hibernator mean %.4f exceeds goal %.4f", hib.MeanResp, b.goal)
	}
	tpm := b.results["TPM"]
	if s := tpm.SavingsVs(base); s > 0.15 {
		t.Errorf("TPM saves %.2f on OLTP; expected little saving (<0.15)", s)
	}
}

func TestSplitID(t *testing.T) {
	cases := []struct {
		id   string
		pfx  string
		n    int
		less string // an ID that must sort after
	}{
		{"T1", "T", 1, "T2"},
		{"F2", "F", 2, "F10"},
		{"T3", "T", 3, "F1"},
	}
	for _, c := range cases {
		p, n := splitID(c.id)
		if p != c.pfx || n != c.n {
			t.Errorf("splitID(%s) = %s,%d", c.id, p, n)
		}
		if !idLess(c.id, c.less) {
			t.Errorf("%s should sort before %s", c.id, c.less)
		}
	}
	if idLess("F1", "T1") {
		t.Error("tables must sort before figures")
	}
}
