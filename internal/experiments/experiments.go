// Package experiments reconstructs the paper's evaluation: one runnable
// experiment per table/figure in DESIGN.md's index. Each experiment
// returns report tables; cmd/hibexp prints them and bench_test.go wraps
// them as benchmarks.
//
// Experiments are deterministic for a given Opts: every sim.Run is an
// independent, seed-deterministic single-threaded simulation, so the
// fan-outs below (scheme bake-offs, sweep points) run concurrently on a
// bounded pool without changing a single output byte — Opts.Workers only
// changes wall-clock time. Expensive multi-scheme bake-offs are memoized
// per (workload, scale, seed) with singleflight semantics so that e.g. F1
// (energy) and F2 (response time) share one set of simulation runs even
// when they themselves run concurrently.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"hibernator/internal/report"
	"hibernator/internal/sim"
)

// Opts parameterizes a run.
type Opts struct {
	// Scale multiplies simulated durations (1.0 = the default multi-hour
	// runs; benches use smaller). Clamped below at 0.02.
	Scale float64
	// Seed drives every generator in the experiment.
	Seed int64
	// Workers bounds the concurrent simulation runs inside one experiment
	// (bake-off schemes, sweep points). 0 = GOMAXPROCS, 1 = sequential.
	// Results are identical for any value; only wall clock changes.
	Workers int
	// Log, if non-nil, receives progress lines.
	Log io.Writer
	// MetricsDir, when non-empty, attaches an observability recorder to
	// every instrumented simulation run and writes one pair of files per
	// run into the directory: <run>.metrics.jsonl and <run>.trace.jsonl
	// (see OBSERVABILITY.md for the schema). The directory must exist.
	// Recording does not change any table output byte.
	MetricsDir string
	// SampleEvery overrides the metrics sampling interval in simulated
	// seconds (0 = each run's default, its response window). Only
	// meaningful with MetricsDir.
	SampleEvery float64
	// Check arms an invariant checker (internal/invariant) on every
	// simulation run. Violations accumulate in the process-wide tally read
	// by CheckViolations. Checking does not change any table output byte.
	Check bool
	// SimWorkers is the intra-run parallelism degree passed to every
	// simulation run (sim.Config.Workers): 1 = the sequential engine,
	// N > 1 = the group-partitioned engine. Results are byte-identical
	// for any value; only wall clock changes. Distinct from Workers,
	// which fans independent runs out across goroutines.
	SimWorkers int
	// Context, when non-nil, cancels every simulation run in the
	// experiment when it is cancelled (signal handling in cmd/hibexp).
	// An un-cancelled context does not change any output byte.
	Context context.Context
	// Watchdog, when non-nil, bounds every simulation run in the
	// experiment (sim.Config.Watchdog): a stuck run aborts with
	// diagnostics instead of hanging the suite. An un-tripped watchdog
	// does not change any output byte.
	Watchdog *sim.Watchdog
}

func (o *Opts) norm() {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Scale < 0.02 {
		o.Scale = 0.02
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SimWorkers < 1 {
		o.SimWorkers = 1
	}
}

// logMu serializes progress lines: concurrent sweep points may log from
// worker goroutines, and arbitrary io.Writers are not thread-safe.
var logMu sync.Mutex

func (o Opts) logf(format string, args ...any) {
	if o.Log != nil {
		logMu.Lock()
		fmt.Fprintf(o.Log, format+"\n", args...)
		logMu.Unlock()
	}
}

// Experiment is one reconstructed table or figure.
type Experiment struct {
	ID           string
	Title        string
	Reconstructs string // what in the paper this regenerates
	Run          func(o Opts) ([]*report.Table, error)
}

var (
	regMu    sync.Mutex
	registry []Experiment

	// The sorted view and ID index are built once on first use; every
	// registration happens in package init, well before that.
	regOnce  sync.Once
	sorted   []Experiment
	byID     map[string]int
	regFixed bool
)

func register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	if regFixed {
		panic("experiments: register after first All/ByID call")
	}
	registry = append(registry, e)
}

func buildIndex() {
	regOnce.Do(func() {
		regMu.Lock()
		defer regMu.Unlock()
		regFixed = true
		sorted = append([]Experiment(nil), registry...)
		sort.Slice(sorted, func(i, j int) bool { return idLess(sorted[i].ID, sorted[j].ID) })
		byID = make(map[string]int, len(sorted))
		for i, e := range sorted {
			byID[e.ID] = i
		}
	})
}

// All returns every experiment in ID order.
func All() []Experiment {
	buildIndex()
	return append([]Experiment(nil), sorted...)
}

// idLess orders T1 < T2 < ... < F1 < F2 < ... < F11 < T3-style summary IDs
// numerically within their prefix.
func idLess(a, b string) bool {
	pa, na := splitID(a)
	pb, nb := splitID(b)
	if pa != pb {
		// Tables first, then figures, then extensions, then anything else.
		rank := map[string]int{"T": 0, "F": 1, "X": 2}
		ra, oka := rank[pa]
		rb, okb := rank[pb]
		switch {
		case oka && okb:
			return ra < rb
		case oka:
			return true
		case okb:
			return false
		default:
			return pa < pb
		}
	}
	return na < nb
}

func splitID(id string) (prefix string, n int) {
	for i := 0; i < len(id); i++ {
		if id[i] >= '0' && id[i] <= '9' {
			fmt.Sscanf(id[i:], "%d", &n)
			return id[:i], n
		}
	}
	return id, 0
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	buildIndex()
	i, ok := byID[id]
	if !ok {
		return Experiment{}, false
	}
	return sorted[i], true
}
