package experiments

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"hibernator/internal/hibernator"
	"hibernator/internal/report"
)

// renderAll renders tables to the exact text hibexp would print.
func renderAll(t *testing.T, tables []*report.Table) string {
	t.Helper()
	var b strings.Builder
	for _, tb := range tables {
		if err := tb.Fprint(&b); err != nil {
			t.Fatal(err)
		}
		if err := tb.CSV(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// The determinism contract: running an experiment sequentially
// (Workers=1) and with a wide pool (Workers=8) must produce deep-equal
// tables — the pool may only change wall-clock time. T2 fans out the two
// workload characterizations; F5 fans out five sweep points sharing one
// memoized Base run; X5 fans out the four fault-storm runs, whose per-run
// fault RNG state must stay isolated from scheduling order.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several small simulations")
	}
	for _, id := range []string{"T2", "F5", "X5"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s missing", id)
			}
			resetMemos()
			seq, err := e.Run(Opts{Scale: 0.02, Seed: 11, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			resetMemos() // force the parallel run to recompute everything
			par, err := e.Run(Opts{Scale: 0.02, Seed: 11, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("%s: parallel tables differ structurally from sequential", id)
			}
			if a, b := renderAll(t, seq), renderAll(t, par); a != b {
				t.Errorf("%s: rendered output differs:\n--- sequential ---\n%s\n--- parallel ---\n%s", id, a, b)
			}
		})
	}
}

// Concurrent callers of the same bake-off must share one computation
// (singleflight), not race to produce two.
func TestMemoBakeoffSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small bake-off")
	}
	resetMemos()
	o := Opts{Scale: 0.02, Seed: 13, Workers: 2}
	const callers = 8
	got := make([]*bakeoff, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		i := i
		go func() {
			defer wg.Done()
			b, err := memoBakeoff(o, "oltp")
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = b
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d got a different bake-off instance: singleflight broken", i)
		}
	}
}

// The sweeps' Base run must be computed once per config shape, not once
// per sweep point: F5's five goal multipliers share one Base result.
func TestSweepBaseRunMemoized(t *testing.T) {
	if testing.Short() {
		t.Skip("runs small simulations")
	}
	resetMemos()
	o := Opts{Scale: 0.02, Seed: 17, Workers: 1}
	o.norm()
	b1, _, _, err := hibRun(o, nil, hibernator.Options{}, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	b2, _, _, err := hibRun(o, nil, hibernator.Options{}, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatal("two sweep points recomputed the identical Base run")
	}
}
