package experiments

import (
	"hibernator/internal/dist"
	"hibernator/internal/hibernator"
	"hibernator/internal/policy"
	"hibernator/internal/report"
	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

func init() {
	register(Experiment{
		ID:           "F9",
		Title:        "Performance-guarantee dynamics under a load surge",
		Reconstructs: "the paper's response-time timeline showing the automatic performance boost",
		Run:          runF9,
	})
}

func runF9(o Opts) ([]*report.Table, error) {
	o.norm()
	dur := oltpBaseDuration * o.Scale
	vol, err := volumeBytes(o.Seed)
	if err != nil {
		return nil, err
	}
	// Quiet start so CR settles on slow speeds, then a surge at t=dur/3.
	surging := func() (trace.Source, error) {
		return trace.NewOLTP(trace.OLTPConfig{
			Seed: o.Seed + 501, VolumeBytes: vol, Duration: dur,
			Rate:    dist.StepRate([]float64{10, 120, 10}, []float64{dur / 3, 2 * dur / 3}),
			MaxRate: 120,
		})
	}
	src, err := surging()
	if err != nil {
		return nil, err
	}
	baseCfg := arrayConfig(o.Seed, false, 0, 0, dur)
	check := o.audit(&baseCfg, "F9-Base")
	base, err := sim.Run(baseCfg, src, policy.NewBase(), dur)
	if err != nil {
		return nil, err
	}
	check()
	goal := 1.3 * base.MeanResp

	runHib := func(disableBoost bool) (*sim.Result, *hibernator.Controller, error) {
		src, err := surging()
		if err != nil {
			return nil, nil, err
		}
		cfg := arrayConfig(o.Seed, true, 0, goal, dur)
		cfg.SampleEvery = dur / 48
		name := "F9-boost"
		if disableBoost {
			name = "F9-no-boost"
		}
		flush := o.observe(&cfg, name)
		check := o.audit(&cfg, name)
		ctrl := hibernator.New(hibernator.Options{Epoch: dur / 12, DisableBoost: disableBoost})
		res, err := sim.Run(cfg, src, ctrl, dur)
		if err != nil {
			return nil, nil, err
		}
		check()
		return res, ctrl, flush()
	}
	o.logf("  F9: Hibernator with boost")
	withBoost, ctrlBoost, err := runHib(false)
	if err != nil {
		return nil, err
	}
	o.logf("  F9: Hibernator without boost (ablation)")
	noBoost, _, err := runHib(true)
	if err != nil {
		return nil, err
	}

	ts := report.New("F9", "Windowed mean response time over a quiet/surge/quiet day (goal 1.3x Base)",
		"t (s)", "boost: resp (ms)", "boost: full-speed disks", "no-boost: resp (ms)", "no-boost: full-speed disks")
	n := len(withBoost.Series)
	if len(noBoost.Series) < n {
		n = len(noBoost.Series)
	}
	for i := 0; i < n; i++ {
		a, b := withBoost.Series[i], noBoost.Series[i]
		ts.AddRow(
			report.F(a.T, 0),
			report.Ms(a.WindowMeanResp),
			report.N(a.FullSpeedDisks),
			report.Ms(b.WindowMeanResp),
			report.N(b.FullSpeedDisks),
		)
	}
	ts.AddNote("goal %.2f ms; surge from t=%.0f to t=%.0f", goal*1000, dur/3, 2*dur/3)
	ts.AddNote("boost fired %d time(s); with boost: mean %.2f ms, violations %s; without: mean %.2f ms, violations %s",
		ctrlBoost.BoostCount(),
		withBoost.MeanResp*1000, report.Pct(withBoost.GoalViolationFrac),
		noBoost.MeanResp*1000, report.Pct(noBoost.GoalViolationFrac))
	return []*report.Table{ts}, nil
}
