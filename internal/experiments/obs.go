package experiments

import (
	"path/filepath"

	"hibernator/internal/obs"
	"hibernator/internal/sim"
)

// observe attaches a metrics registry and decision trace to cfg when
// o.MetricsDir is set, and returns a flush function that writes both
// streams to <MetricsDir>/<name>.metrics.jsonl and .trace.jsonl. With no
// MetricsDir the config is left untouched and flush is a no-op — the
// simulation runs the exact pre-observability event sequence.
//
// Streams are named per simulation run, not per experiment: memoized
// bake-off runs are shared by several experiments (F1 and F2 read the
// same runs), so the run name identifies the workload and scheme instead.
// Each run owns its own registry and trace, and each flush writes
// distinct files, so concurrent runs under Opts.Workers never share
// observability state.
func (o *Opts) observe(cfg *sim.Config, name string) (flush func() error) {
	if o.MetricsDir == "" {
		return func() error { return nil }
	}
	cfg.Metrics = obs.NewRegistry(0)
	cfg.Trace = obs.NewTrace()
	cfg.ObsSampleEvery = o.SampleEvery
	base := filepath.Join(o.MetricsDir, name)
	return func() error {
		if err := cfg.Metrics.WriteFile(base + ".metrics.jsonl"); err != nil {
			return err
		}
		return cfg.Trace.WriteFile(base + ".trace.jsonl")
	}
}
