package experiments

import (
	"hibernator/internal/diskmodel"
	"hibernator/internal/hibernator"
	"hibernator/internal/policy"
	"hibernator/internal/report"
	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

// The X-series are extensions beyond the paper's evaluation: ablations of
// engineering choices the paper leaves open (queue discipline, epoch
// adaptation) and behavior under faults (degraded mode, rebuild), which the
// paper's reliability discussion motivates but does not measure.

func init() {
	register(Experiment{
		ID:           "X1",
		Title:        "Disk scheduling ablation (FCFS vs SPTF)",
		Reconstructs: "an engineering choice the paper leaves open: queue discipline under Hibernator",
		Run:          runX1,
	})
	register(Experiment{
		ID:           "X2",
		Title:        "Adaptive epoch ablation",
		Reconstructs: "the paper's future-work direction of tuning the epoch length automatically",
		Run:          runX2,
	})
	register(Experiment{
		ID:           "X4",
		Title:        "Online Hibernator vs clairvoyant oracle",
		Reconstructs: "an upper bound the paper implies: how much of the epoch-granularity headroom the online policy captures",
		Run:          runX4,
	})
	register(Experiment{
		ID:           "X3",
		Title:        "Degraded mode and rebuild under power management",
		Reconstructs: "the reliability interaction the paper discusses qualitatively: a disk failure mid-run",
		Run:          runX3,
	})
}

func runX1(o Opts) ([]*report.Table, error) {
	o.norm()
	dur := oltpBaseDuration * o.Scale
	vol, err := volumeBytes(o.Seed)
	if err != nil {
		return nil, err
	}
	wf := oltpFactory(o.Seed+101, vol, dur)
	t := report.New("X1", "FCFS vs SPTF under Base and Hibernator (OLTP-like, goal 1.6x)",
		"scheme", "scheduler", "energy (kJ)", "mean resp (ms)", "P95 (ms)", "P99 (ms)")
	var baseMean float64
	for _, sched := range []diskmodel.Scheduler{diskmodel.FCFS, diskmodel.SPTF} {
		name := "FCFS"
		if sched == diskmodel.SPTF {
			name = "SPTF"
		}
		src, err := wf()
		if err != nil {
			return nil, err
		}
		cfg := arrayConfig(o.Seed, false, 0, 0, dur)
		cfg.Scheduler = sched
		check := o.audit(&cfg, "X1-Base-"+name)
		base, err := sim.Run(cfg, src, policy.NewBase(), dur)
		if err != nil {
			return nil, err
		}
		check()
		if sched == diskmodel.FCFS {
			baseMean = base.MeanResp
		}
		t.AddRow("Base", name, report.KJ(base.Energy), report.Ms(base.MeanResp),
			report.Ms(base.P95Resp), report.Ms(base.P99Resp))

		src, err = wf()
		if err != nil {
			return nil, err
		}
		cfg = arrayConfig(o.Seed, true, 0, 1.6*baseMean, dur)
		cfg.Scheduler = sched
		check = o.audit(&cfg, "X1-Hibernator-"+name)
		hib, err := sim.Run(cfg, src, hibernator.New(hibernator.Options{Epoch: dur / 4}), dur)
		if err != nil {
			return nil, err
		}
		check()
		t.AddRow("Hibernator", name, report.KJ(hib.Energy), report.Ms(hib.MeanResp),
			report.Ms(hib.P95Resp), report.Ms(hib.P99Resp))
	}
	t.AddNote("SPTF shortens positioning at queue depth > 1; the gain matters most on the hot tier where Hibernator concentrates the queueing")
	return []*report.Table{t}, nil
}

func runX2(o Opts) ([]*report.Table, error) {
	o.norm()
	dur := oltpBaseDuration * o.Scale
	vol, err := volumeBytes(o.Seed)
	if err != nil {
		return nil, err
	}
	wf := oltpFactory(o.Seed+101, vol, dur)
	src, err := wf()
	if err != nil {
		return nil, err
	}
	baseCfg := arrayConfig(o.Seed, false, 0, 0, dur)
	check := o.audit(&baseCfg, "X2-Base")
	base, err := sim.Run(baseCfg, src, policy.NewBase(), dur)
	if err != nil {
		return nil, err
	}
	check()
	goal := 1.6 * base.MeanResp
	t := report.New("X2", "Fixed vs adaptive CR epochs (OLTP-like, goal 1.6x, base epoch dur/8)",
		"mode", "epochs run", "savings", "mean resp (ms)", "speed shifts", "violations")
	for _, adaptive := range []bool{false, true} {
		src, err := wf()
		if err != nil {
			return nil, err
		}
		mode := "fixed"
		if adaptive {
			mode = "adaptive"
		}
		ctrl := hibernator.New(hibernator.Options{Epoch: dur / 8, AdaptiveEpoch: adaptive})
		cfg := arrayConfig(o.Seed, true, 0, goal, dur)
		check := o.audit(&cfg, "X2-"+mode)
		res, err := sim.Run(cfg, src, ctrl, dur)
		if err != nil {
			return nil, err
		}
		check()
		t.AddRow(mode, report.N(ctrl.Epochs()), report.Pct(res.SavingsVs(base)),
			report.Ms(res.MeanResp), report.N(res.LevelShifts), report.Pct(res.GoalViolationFrac))
	}
	t.AddNote("adaptive mode doubles the interval while plans repeat (cap 4x) and resets on change: fewer replans and transitions on stable load")
	return []*report.Table{t}, nil
}

func runX3(o Opts) ([]*report.Table, error) {
	o.norm()
	dur := oltpBaseDuration * o.Scale
	vol, err := volumeBytes(o.Seed)
	if err != nil {
		return nil, err
	}
	mkSrc := func() (trace.Source, error) {
		return trace.NewOLTP(trace.OLTPConfig{
			Seed: o.Seed + 601, VolumeBytes: vol, Duration: dur, MaxRate: 50,
		})
	}
	// Hibernator with a spare; one disk of group 1 dies at dur/3 and a
	// rebuild starts at dur/2. Compare against an undisturbed run.
	run := func(inject bool) (*sim.Result, *failureInjector, error) {
		src, err := mkSrc()
		if err != nil {
			return nil, nil, err
		}
		cfg := arrayConfig(o.Seed, true, 1, 0.012, dur)
		name := "X3-healthy"
		if inject {
			name = "X3-fail-rebuild"
		}
		flush := o.observe(&cfg, name)
		check := o.audit(&cfg, name)
		inj := &failureInjector{inner: hibernator.New(hibernator.Options{Epoch: dur / 4})}
		if inject {
			inj.failAt, inj.rebuildAt = dur/3, dur/2
		}
		res, err := sim.Run(cfg, src, inj, dur)
		if err != nil {
			return nil, nil, err
		}
		check()
		return res, inj, flush()
	}
	healthy, _, err := run(false)
	if err != nil {
		return nil, err
	}
	faulted, inj, err := run(true)
	if err != nil {
		return nil, err
	}
	t := report.New("X3", "Hibernator through a disk failure and rebuild (OLTP-like)",
		"run", "energy (kJ)", "mean resp (ms)", "P95 (ms)", "lost IOs", "rebuilds")
	t.AddRow("healthy", report.KJ(healthy.Energy), report.Ms(healthy.MeanResp),
		report.Ms(healthy.P95Resp), "0", "0")
	t.AddRow("fail+rebuild", report.KJ(faulted.Energy), report.Ms(faulted.MeanResp),
		report.Ms(faulted.P95Resp), report.N(inj.lost()), report.N(inj.rebuilds()))
	t.AddNote("RAID-5 reconstruction turns each op on the dead disk into reads of every survivor, so the degraded group runs hotter; the rebuild streams in the background")
	return []*report.Table{t}, nil
}

// failureInjector wraps a controller and injects a failure + rebuild at
// fixed times. The wrapped env stays accessible so the experiment can read
// post-run fault counters.
type failureInjector struct {
	inner     sim.Controller
	failAt    float64
	rebuildAt float64
	env       *sim.Env
}

// Name delegates to the wrapped controller.
func (f *failureInjector) Name() string { return f.inner.Name() }

// Init initializes the wrapped controller and schedules the failure and
// rebuild events when armed.
func (f *failureInjector) Init(env *sim.Env) {
	f.env = env
	f.inner.Init(env)
	if f.failAt <= 0 {
		return
	}
	env.Engine.Schedule(f.failAt, func() {
		if err := env.Array.FailDisk(1, 0); err != nil {
			panic(err)
		}
	})
	env.Engine.Schedule(f.rebuildAt, func() {
		if err := env.Array.Rebuild(1, 0, 0, true, nil); err != nil {
			panic(err)
		}
	})
}

func (f *failureInjector) lost() uint64     { return f.env.Array.LostIOs() }
func (f *failureInjector) rebuilds() uint64 { return f.env.Array.Rebuilds() }

func runX4(o Opts) ([]*report.Table, error) {
	o.norm()
	dur := oltpBaseDuration * o.Scale
	vol, err := volumeBytes(o.Seed)
	if err != nil {
		return nil, err
	}
	wf := oltpFactory(o.Seed+101, vol, dur)
	src, err := wf()
	if err != nil {
		return nil, err
	}
	reqs := trace.Drain(src, 0)

	baseCfg := arrayConfig(o.Seed, false, 0, 0, dur)
	check := o.audit(&baseCfg, "X4-Base")
	base, err := sim.Run(baseCfg, trace.NewSliceSource(reqs), policy.NewBase(), dur)
	if err != nil {
		return nil, err
	}
	check()
	goal := 1.6 * base.MeanResp
	epoch := dur / 4

	hibCfg := arrayConfig(o.Seed, true, 0, goal, dur)
	check = o.audit(&hibCfg, "X4-Hibernator")
	hib, err := sim.Run(hibCfg, trace.NewSliceSource(reqs), hibernator.New(hibernator.Options{Epoch: epoch}), dur)
	if err != nil {
		return nil, err
	}
	check()
	oracleCfg := arrayConfig(o.Seed, true, 0, goal, dur)
	check = o.audit(&oracleCfg, "X4-Oracle")
	oracle, err := sim.Run(oracleCfg, trace.NewSliceSource(reqs), hibernator.NewOracle(reqs, hibernator.Options{Epoch: epoch}), dur)
	if err != nil {
		return nil, err
	}
	check()
	t := report.New("X4", "Online Hibernator vs clairvoyant oracle (OLTP-like, goal 1.6x)",
		"policy", "energy (kJ)", "savings", "mean resp (ms)", "violations")
	t.AddRow("Base", report.KJ(base.Energy), "0.0%", report.Ms(base.MeanResp), report.Pct(base.GoalViolationFrac))
	t.AddRow("Hibernator", report.KJ(hib.Energy), report.Pct(hib.SavingsVs(base)),
		report.Ms(hib.MeanResp), report.Pct(hib.GoalViolationFrac))
	t.AddRow("Oracle", report.KJ(oracle.Energy), report.Pct(oracle.SavingsVs(base)),
		report.Ms(oracle.MeanResp), report.Pct(oracle.GoalViolationFrac))
	captured := 0.0
	if os := oracle.SavingsVs(base); os > 0 {
		captured = hib.SavingsVs(base) / os
	}
	t.AddNote("the online policy captured %.0f%% of the clairvoyant headroom; the gap pays for estimation lag, migration traffic and the first full-speed epoch", captured*100)
	return []*report.Table{t}, nil
}
