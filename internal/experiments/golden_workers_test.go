package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// TestSimWorkersByteIdentical is the end-to-end determinism gate for the
// partitioned engine: the full `hibexp -run all -scale 0.05` output —
// every table rendered exactly as the binary prints it, plus its CSV
// form — must hash identically for -workers 1, 4 and 8. This is the
// user-visible counterpart of sim's TestWorkersByteIdentical: if any
// experiment's numbers move with the worker count, the parallel engine
// has reordered events somewhere.
func TestSimWorkersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full reference suite three times")
	}
	render := func(workers int) string {
		resetMemos() // memoized bake-offs would hide a divergent recompute
		var all string
		for _, e := range All() {
			tables, err := e.Run(Opts{Scale: 0.05, Seed: 1, Workers: 1, SimWorkers: workers})
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, e.ID, err)
			}
			all += renderAll(t, tables)
		}
		return all
	}
	base := render(1)
	baseSum := sha256.Sum256([]byte(base))
	t.Logf("workers=1 output: %d bytes, sha256 %s", len(base), hex.EncodeToString(baseSum[:8]))
	for _, w := range []int{4, 8} {
		got := render(w)
		if got != base {
			i := 0
			for i < len(base) && i < len(got) && base[i] == got[i] {
				i++
			}
			lo, hi := i-80, i+80
			if lo < 0 {
				lo = 0
			}
			clip := func(s string) string {
				if hi > len(s) {
					return s[lo:]
				}
				return s[lo:hi]
			}
			t.Errorf("workers=%d output diverged at byte %d:\n  workers=1: %q\n  workers=%d: %q",
				w, i, clip(base), w, clip(got))
		}
	}
}
