package experiments

import (
	"context"
	"fmt"

	"hibernator/internal/diskmodel"
	"hibernator/internal/dist"
	"hibernator/internal/hibernator"
	"hibernator/internal/policy"
	"hibernator/internal/report"
	"hibernator/internal/runner"
	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

func init() {
	register(Experiment{
		ID:           "F5",
		Title:        "Energy savings vs performance goal",
		Reconstructs: "the paper's savings-versus-response-time-limit curve",
		Run:          runF5,
	})
	register(Experiment{
		ID:           "F6",
		Title:        "Sensitivity to epoch length",
		Reconstructs: "the paper's coarse-vs-fine granularity argument",
		Run:          runF6,
	})
	register(Experiment{
		ID:           "F7",
		Title:        "Impact of the number of speed levels",
		Reconstructs: "the paper's multi-speed hardware sensitivity study",
		Run:          runF7,
	})
	register(Experiment{
		ID:           "F8",
		Title:        "Migration strategy ablation",
		Reconstructs: "the paper's data-layout/migration comparison",
		Run:          runF8,
	})
	register(Experiment{
		ID:           "F11",
		Title:        "Scaling with array size",
		Reconstructs: "savings as the array grows (per-disk load held constant)",
		Run:          runF11,
	})
}

// baseRunMemo caches the sweeps' shared Base run per (seed, duration,
// config shape): F5 used to re-simulate an identical Base run for every
// goal multiplier (5x), F6 for every epoch (5x) and F7 for every level
// count (3x) even though the Base configuration never changes across the
// sweep. The singleflight memo also lets concurrent sweep points share
// the one computation instead of duplicating it.
var baseRunMemo memo[*sim.Result]

// hibBase returns the memoized Base run for the sweep geometry. The key
// is the full rendered config (sim.Config is plain data) plus seed and
// duration, so any cfgMut that actually changes the Base config gets its
// own cache entry.
func hibBase(o Opts, cfg sim.Config, dur float64, wf workloadFactory) (*sim.Result, error) {
	key := fmt.Sprintf("%d|%g|%+v", o.Seed, dur, cfg)
	return baseRunMemo.do(key, func() (*sim.Result, error) {
		src, err := wf()
		if err != nil {
			return nil, err
		}
		check := o.audit(&cfg, "sweep-Base")
		res, err := sim.Run(cfg, src, policy.NewBase(), dur)
		if err != nil {
			return nil, err
		}
		check()
		return res, nil
	})
}

// hibRun executes Base and Hibernator on identical OLTP workloads and an
// absolute goal; helpers for the sweeps. The Base leg is memoized (see
// baseRunMemo); the Hibernator leg always runs.
func hibRun(o Opts, cfgMut func(*sim.Config), opts hibernator.Options, goalMul float64) (base, hib *sim.Result, goal float64, err error) {
	dur := oltpBaseDuration * o.Scale
	vol, err := volumeBytes(o.Seed)
	if err != nil {
		return nil, nil, 0, err
	}
	wf := oltpFactory(o.Seed+101, vol, dur)

	mkCfg := func(goal float64, multi bool) sim.Config {
		cfg := arrayConfig(o.Seed, multi, 0, goal, dur)
		if cfgMut != nil {
			cfgMut(&cfg)
		}
		return cfg
	}
	base, err = hibBase(o, mkCfg(0, false), dur, wf)
	if err != nil {
		return nil, nil, 0, err
	}
	goal = goalMul * base.MeanResp
	if opts.Epoch == 0 {
		opts.Epoch = dur / 4
	}
	src, err := wf()
	if err != nil {
		return nil, nil, 0, err
	}
	hibCfg := mkCfg(goal, true)
	check := o.audit(&hibCfg, "sweep-Hibernator")
	hib, err = sim.Run(hibCfg, src, hibernator.New(opts), dur)
	if err != nil {
		return nil, nil, 0, err
	}
	check()
	return base, hib, goal, nil
}

func runF5(o Opts) ([]*report.Table, error) {
	o.norm()
	t := report.New("F5", "Hibernator energy savings vs response-time goal (OLTP-like)",
		"goal (x Base mean)", "goal (ms)", "savings", "mean resp (ms)", "violations", "boost-capable")
	muls := []float64{1.1, 1.3, 1.6, 2.0, 3.0}
	type point struct {
		base, hib *sim.Result
		goal      float64
	}
	points, err := runner.Map(context.Background(), o.Workers, len(muls),
		func(_ context.Context, i int) (point, error) {
			o.logf("  F5: goal multiplier %.1f", muls[i])
			b, hib, goal, err := hibRun(o, nil, hibernator.Options{}, muls[i])
			return point{b, hib, goal}, err
		})
	if err != nil {
		return nil, err
	}
	var base *sim.Result
	for i, mul := range muls {
		p := points[i]
		base = p.base
		t.AddRow(
			report.F(mul, 1),
			report.Ms(p.goal),
			report.Pct(p.hib.SavingsVs(p.base)),
			report.Ms(p.hib.MeanResp),
			report.Pct(p.hib.GoalViolationFrac),
			"yes",
		)
	}
	if base != nil {
		t.AddNote("Base mean response %.2f ms, energy %s kJ; looser goals let CR choose slower speeds",
			base.MeanResp*1000, report.KJ(base.Energy))
	}
	return []*report.Table{t}, nil
}

func runF6(o Opts) ([]*report.Table, error) {
	o.norm()
	dur := oltpBaseDuration * o.Scale
	t := report.New("F6", "Sensitivity to CR epoch length (OLTP-like, goal 1.6x)",
		"epoch (s)", "epochs", "savings", "mean resp (ms)", "speed shifts", "violations")
	divs := []float64{32, 16, 8, 4, 2}
	type point struct{ base, hib *sim.Result }
	points, err := runner.Map(context.Background(), o.Workers, len(divs),
		func(_ context.Context, i int) (point, error) {
			epoch := dur / divs[i]
			o.logf("  F6: epoch %.0f s", epoch)
			base, hib, _, err := hibRun(o, nil, hibernator.Options{Epoch: epoch}, 1.6)
			return point{base, hib}, err
		})
	if err != nil {
		return nil, err
	}
	for i, div := range divs {
		p := points[i]
		t.AddRow(
			report.F(dur/div, 0),
			report.F(div, 0),
			report.Pct(p.hib.SavingsVs(p.base)),
			report.Ms(p.hib.MeanResp),
			report.N(p.hib.LevelShifts),
			report.Pct(p.hib.GoalViolationFrac),
		)
	}
	t.AddNote("short epochs adapt faster (and can save more) but violate the goal more often as transitions and replans pile up; very long epochs react too slowly to the diurnal swing to save much; violations, not savings, are the monotone column")
	return []*report.Table{t}, nil
}

func runF7(o Opts) ([]*report.Table, error) {
	o.norm()
	t := report.New("F7", "Impact of number of speed levels (OLTP-like, goal 1.6x)",
		"levels", "RPM range", "savings", "mean resp (ms)", "violations")
	levelCounts := []int{2, 3, 5}
	type point struct {
		base, hib *sim.Result
		spec      diskmodel.Spec
	}
	points, err := runner.Map(context.Background(), o.Workers, len(levelCounts),
		func(_ context.Context, i int) (point, error) {
			levels := levelCounts[i]
			o.logf("  F7: %d levels", levels)
			spec := diskmodel.MultiSpeedUltrastar(levels, 3000)
			base, hib, _, err := hibRun(o, func(cfg *sim.Config) {
				if cfg.Spec.Levels() > 1 { // only mutate the multi-speed run
					cfg.Spec = spec
				}
			}, hibernator.Options{}, 1.6)
			return point{base, hib, spec}, err
		})
	if err != nil {
		return nil, err
	}
	for i, levels := range levelCounts {
		p := points[i]
		t.AddRow(
			report.N(levels),
			fmt.Sprintf("%d-%d", p.spec.RPM[0], p.spec.RPM[p.spec.FullLevel()]),
			report.Pct(p.hib.SavingsVs(p.base)),
			report.Ms(p.hib.MeanResp),
			report.Pct(p.hib.GoalViolationFrac),
		)
	}
	t.AddNote("more levels give CR finer energy/performance points to choose from")
	return []*report.Table{t}, nil
}

func runF8(o Opts) ([]*report.Table, error) {
	o.norm()
	dur := oltpBaseDuration * o.Scale
	vol, err := volumeBytes(o.Seed)
	if err != nil {
		return nil, err
	}
	// Popularity shift: one hot set in the first half, a different one in
	// the second — migration must chase it.
	shifting := func() (trace.Source, error) {
		first, err := trace.NewOLTP(trace.OLTPConfig{
			Seed: o.Seed + 301, VolumeBytes: vol, Duration: dur,
			Rate:    dist.StepRate([]float64{60, 0.001}, []float64{dur / 2}),
			MaxRate: 60,
		})
		if err != nil {
			return nil, err
		}
		second, err := trace.NewOLTP(trace.OLTPConfig{
			Seed: o.Seed + 302, VolumeBytes: vol, Duration: dur,
			Rate:    dist.StepRate([]float64{0.001, 60}, []float64{dur / 2}),
			MaxRate: 60,
		})
		if err != nil {
			return nil, err
		}
		return trace.NewMerge(first, second), nil
	}
	runMode := func(mode hibernator.MigrationMode, goal float64) (*sim.Result, error) {
		src, err := shifting()
		if err != nil {
			return nil, err
		}
		cfg := arrayConfig(o.Seed, true, 0, goal, dur)
		ctrl := hibernator.New(hibernator.Options{Epoch: dur / 8, Migration: mode})
		check := o.audit(&cfg, "F8-"+mode.String())
		res, err := sim.Run(cfg, src, ctrl, dur)
		if err != nil {
			return nil, err
		}
		check()
		return res, nil
	}
	// Fix the goal from a Base run on the same workload.
	src, err := shifting()
	if err != nil {
		return nil, err
	}
	baseCfg := arrayConfig(o.Seed, false, 0, 0, dur)
	check := o.audit(&baseCfg, "F8-Base")
	base, err := sim.Run(baseCfg, src, policy.NewBase(), dur)
	if err != nil {
		return nil, err
	}
	check()
	goal := 1.6 * base.MeanResp
	t := report.New("F8", "Migration strategy ablation (OLTP with mid-run popularity shift, goal 1.6x)",
		"strategy", "savings", "mean resp (ms)", "P95 (ms)", "migrated (GiB)", "violations")
	modes := []hibernator.MigrationMode{
		hibernator.MigrateNone, hibernator.MigrateEager, hibernator.MigrateBackground,
	}
	results, err := runner.Map(context.Background(), o.Workers, len(modes),
		func(_ context.Context, i int) (*sim.Result, error) {
			o.logf("  F8: mode %s", modes[i])
			return runMode(modes[i], goal)
		})
	if err != nil {
		return nil, err
	}
	for i, mode := range modes {
		res := results[i]
		t.AddRow(
			mode.String(),
			report.Pct(res.SavingsVs(base)),
			report.Ms(res.MeanResp),
			report.Ms(res.P95Resp),
			report.F(float64(res.MigratedBytes)/(1<<30), 1),
			report.Pct(res.GoalViolationFrac),
		)
	}
	t.AddNote("eager converges fastest but its foreground copies hurt response time; budgeted background approaches its savings at far lower interference")
	return []*report.Table{t}, nil
}

func runF11(o Opts) ([]*report.Table, error) {
	o.norm()
	dur := oltpBaseDuration * o.Scale
	t := report.New("F11", "Scaling with array size (per-disk load constant, goal 1.6x)",
		"data disks", "groups", "Base energy (kJ)", "Hibernator energy (kJ)", "savings", "mean resp (ms)")
	groupCounts := []int{2, 4, 6, 8}
	type point struct{ base, hib *sim.Result }
	// Each array size is an independent chain (its Base run fixes its own
	// goal), so the fan-out is over sizes, with Base and Hibernator run
	// back-to-back inside each job.
	points, err := runner.Map(context.Background(), o.Workers, len(groupCounts),
		func(_ context.Context, i int) (point, error) {
			groups := groupCounts[i]
			o.logf("  F11: %d groups", groups)
			mkCfg := func(multi bool, goal float64) sim.Config {
				cfg := arrayConfig(o.Seed, multi, 0, goal, dur)
				cfg.Groups = groups
				return cfg
			}
			vol, err := sim.LogicalBytes(mkCfg(true, 0))
			if err != nil {
				return point{}, err
			}
			rate := 25.0 * float64(groups) // hold per-disk load constant
			wf := func() (trace.Source, error) {
				return trace.NewOLTP(trace.OLTPConfig{
					Seed: o.Seed + 401, VolumeBytes: vol, Duration: dur,
					Rate:    dist.DiurnalRate(rate/5, rate, dur, 0.5),
					MaxRate: rate,
				})
			}
			src, err := wf()
			if err != nil {
				return point{}, err
			}
			baseCfg := mkCfg(false, 0)
			check := o.audit(&baseCfg, fmt.Sprintf("F11-Base-%dg", groups))
			base, err := sim.Run(baseCfg, src, policy.NewBase(), dur)
			if err != nil {
				return point{}, err
			}
			check()
			src, err = wf()
			if err != nil {
				return point{}, err
			}
			hibCfg := mkCfg(true, 1.6*base.MeanResp)
			check = o.audit(&hibCfg, fmt.Sprintf("F11-Hibernator-%dg", groups))
			hib, err := sim.Run(hibCfg, src,
				hibernator.New(hibernator.Options{Epoch: dur / 4}), dur)
			if err != nil {
				return point{}, err
			}
			check()
			return point{base, hib}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, groups := range groupCounts {
		p := points[i]
		t.AddRow(
			report.N(groups*bakeGroupDisks),
			report.N(groups),
			report.KJ(p.base.Energy),
			report.KJ(p.hib.Energy),
			report.Pct(p.hib.SavingsVs(p.base)),
			report.Ms(p.hib.MeanResp),
		)
	}
	t.AddNote("savings persist across array sizes (single-seed runs; expect +/-10 points of variance): CR's composition search stays tractable and the sorted layout concentrates the same load fraction")
	return []*report.Table{t}, nil
}
