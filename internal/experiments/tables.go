package experiments

import (
	"context"
	"fmt"

	"hibernator/internal/diskmodel"
	"hibernator/internal/report"
	"hibernator/internal/runner"
	"hibernator/internal/trace"
)

func init() {
	register(Experiment{
		ID:           "T1",
		Title:        "Multi-speed disk model parameters",
		Reconstructs: "the paper's disk-parameter table (Ultrastar 36Z15 extended with DRPM-style speed levels)",
		Run:          runT1,
	})
	register(Experiment{
		ID:           "T2",
		Title:        "Workload characteristics",
		Reconstructs: "the paper's trace-characteristics table (OLTP and Cello99 stand-ins)",
		Run:          runT2,
	})
	register(Experiment{
		ID:           "T3",
		Title:        "Summary: expected shape vs measured",
		Reconstructs: "the paper's headline comparison across all schemes and both workloads",
		Run:          runT3,
	})
}

func runT1(o Opts) ([]*report.Table, error) {
	spec := diskmodel.MultiSpeedUltrastar(5, 3000)
	t := report.New("T1", "Multi-speed disk model ("+spec.Name+")",
		"level", "RPM", "idle (W)", "active (W)", "rotation (ms)", "media rate (MB/s)")
	for l := 0; l < spec.Levels(); l++ {
		t.AddRow(
			report.N(l),
			report.N(spec.RPM[l]),
			report.F(spec.IdlePower[l], 2),
			report.F(spec.ActivePower[l], 2),
			report.F(spec.RotationPeriod(l)*1000, 2),
			report.F(spec.TransferRate[l]/1e6, 1),
		)
	}
	fullShiftT, fullShiftJ := spec.LevelShift(0, spec.FullLevel())
	t.AddNote("standby %.1f W; spin-up %.1f s / %.0f J; spin-down %.1f s / %.0f J; full speed swing %.1f s / %.0f J (cost ~ RPM delta)",
		spec.StandbyPower, spec.SpinUpTime, spec.SpinUpEnergy,
		spec.SpinDownTime, spec.SpinDownEnergy, fullShiftT, fullShiftJ)
	t.AddNote("seek %.2f-%.2f ms; capacity %.1f GB; spindle power scales ~RPM^2.8 above a %.1f W floor",
		spec.SeekMin*1000, spec.SeekMax*1000, float64(spec.CapacityBytes)/1e9, 1.4)
	return []*report.Table{t}, nil
}

func runT2(o Opts) ([]*report.Table, error) {
	o.norm()
	vol, err := volumeBytes(o.Seed)
	if err != nil {
		return nil, err
	}
	t := report.New("T2", "Synthetic workload characteristics",
		"workload", "requests", "read %", "mean size (KiB)", "mean gap (ms)", "duration (h)", "top-10% region share")
	type wl struct {
		name string
		mk   workloadFactory
	}
	wls := []wl{
		{"OLTP-like", oltpFactory(o.Seed+101, vol, oltpBaseDuration*o.Scale)},
		{"Cello-like", celloFactory(o.Seed+101, vol, celloBaseDuration*o.Scale)},
	}
	// Generating and characterizing the two traces is independent work;
	// rows are added in workload order afterwards.
	chars, err := runner.Map(context.Background(), o.Workers, len(wls),
		func(_ context.Context, i int) (trace.Characteristics, error) {
			src, err := wls[i].mk()
			if err != nil {
				return trace.Characteristics{}, err
			}
			return trace.Characterize(trace.Drain(src, 0)), nil
		})
	if err != nil {
		return nil, err
	}
	for i, w := range wls {
		c := chars[i]
		t.AddRow(
			w.name,
			report.N(c.Count),
			report.Pct(c.ReadFraction),
			report.F(c.MeanSizeBytes/1024, 1),
			report.F(c.MeanInterarrival*1000, 2),
			report.F(c.Duration/3600, 2),
			report.Pct(c.Top10Coverage),
		)
	}
	t.AddNote("volume %.1f GiB over %d data disks (4 RAID-5 groups of 4)", float64(vol)/(1<<30), bakeGroups*bakeGroupDisks)
	return []*report.Table{t}, nil
}

func runT3(o Opts) ([]*report.Table, error) {
	// The two bake-offs are independent; run them concurrently (each is
	// itself a parallel fan-out, and the singleflight memo shares them
	// with F1-F4/F10 when those run in the same process).
	kinds := []string{"oltp", "cello"}
	bakes, err := runner.Map(context.Background(), o.Workers, len(kinds),
		func(_ context.Context, i int) (*bakeoff, error) {
			return memoBakeoff(o, kinds[i])
		})
	if err != nil {
		return nil, err
	}
	oltp, cello := bakes[0], bakes[1]
	expected := map[string]string{
		"Base":       "highest energy, best latency",
		"TPM":        "little/no saving, latency spikes",
		"DRPM":       "saves, but misses goals under bursts",
		"PDC":        "saves on skew, degrades performance",
		"MAID":       "saves on small working sets, degrades",
		"Hibernator": "best saving among goal-meeting schemes",
	}
	t := report.New("T3", "Summary across schemes (savings vs Base; per-workload goals)",
		"scheme", "OLTP savings", "OLTP resp/Base", "OLTP viol", "Cello savings", "Cello resp/Base", "Cello viol", "paper expectation")
	for _, name := range oltp.order {
		ro, rc := oltp.results[name], cello.results[name]
		t.AddRow(
			name,
			report.Pct(ro.SavingsVs(oltp.base())),
			report.F(ro.MeanResp/oltp.base().MeanResp, 2),
			report.Pct(ro.GoalViolationFrac),
			report.Pct(rc.SavingsVs(cello.base())),
			report.F(rc.MeanResp/cello.base().MeanResp, 2),
			report.Pct(rc.GoalViolationFrac),
			expected[name],
		)
	}
	t.AddNote("OLTP goal %.2f ms; Cello goal %.2f ms; see EXPERIMENTS.md for the shape discussion", oltp.goal*1000, cello.goal*1000)
	return []*report.Table{t}, nil
}

// schemeRow renders one scheme's headline numbers, shared by F1-F4.
func schemeRow(t *report.Table, name string, b *bakeoff, energyTable bool) {
	r := b.results[name]
	base := b.base()
	if energyTable {
		t.AddRow(
			name,
			report.KJ(r.Energy),
			report.F(r.EnergyVs(base), 3),
			report.Pct(r.SavingsVs(base)),
			report.N(r.SpinUps),
			report.N(r.LevelShifts),
			report.N(r.Migrations),
		)
		return
	}
	t.AddRow(
		name,
		report.Ms(r.MeanResp),
		report.Ms(r.P95Resp),
		report.Ms(r.P99Resp),
		report.F(r.MeanResp/base.MeanResp, 2),
		report.Pct(r.GoalViolationFrac),
		fmt.Sprintf("%.1f", r.MaxResp),
	)
}
