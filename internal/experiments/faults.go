package experiments

import (
	"context"

	"hibernator/internal/array"
	"hibernator/internal/fault"
	"hibernator/internal/hibernator"
	"hibernator/internal/policy"
	"hibernator/internal/report"
	"hibernator/internal/runner"
	"hibernator/internal/sim"
)

// X5/X6 probe robustness: how the paper's energy policies behave when the
// disks themselves misbehave (the fault models the paper's reliability
// discussion names but never measures), and which retry strategy the
// array should pair them with.

func init() {
	register(Experiment{
		ID:           "X5",
		Title:        "Fault storm under OLTP: Base vs Hibernator",
		Reconstructs: "the reliability question the paper leaves open: does energy management amplify fault-induced latency?",
		Run:          runX5,
	})
	register(Experiment{
		ID:           "X6",
		Title:        "Retry-policy ablation under a steady transient-error rate",
		Reconstructs: "an engineering choice behind the fault handling: immediate redundancy fallback vs same-disk retries",
		Run:          runX6,
	})
}

// x5Goal is the absolute response-time goal (seconds), as in X3.
const x5Goal = 0.012

// x5Retry is the fault-reaction policy armed for the faulted runs.
// Suspicion trips fast (10 errors flags the disk and freezes power
// management off its group); eviction waits for a sustained pattern —
// evicting on a short burst would trade a 2-minute annoyance for a
// multi-hour rebuild.
func x5Retry() array.RetryPolicy {
	return array.RetryPolicy{
		MaxRetries:    2,
		Backoff:       0.01,
		BackoffFactor: 4,
		OpDeadline:    0.25,
		SuspectAfter:  10,
		EvictAfter:    1000,
		AutoRebuild:   true,
	}
}

// x5Faults scripts the storm: an ambient trickle of transient errors, a
// burst on one disk, a fail-slow ramp on another, and a fail-stop on a
// third — three different groups, so every failure domain is exercised.
func x5Faults(dur float64) *fault.Schedule {
	return &fault.Schedule{
		Rates: fault.Rates{TransientProb: 0.002},
		Events: []fault.Event{
			{Time: 0.25 * dur, Disk: 2, Kind: fault.TransientBurst, Prob: 0.3, Duration: 0.1 * dur},
			{Time: 0.35 * dur, Disk: 6, Kind: fault.FailSlow, Factor: 8, Ramp: 0.1 * dur},
			{Time: 0.50 * dur, Disk: 10, Kind: fault.FailStop},
		},
	}
}

func runX5(o Opts) ([]*report.Table, error) {
	o.norm()
	dur := oltpBaseDuration * o.Scale
	vol, err := volumeBytes(o.Seed)
	if err != nil {
		return nil, err
	}
	wf := oltpFactory(o.Seed+101, vol, dur)

	type x5run struct {
		scheme  string
		multi   bool
		faulted bool
	}
	runs := []x5run{
		{"Base", false, false},
		{"Base", false, true},
		{"Hibernator", true, false},
		{"Hibernator", true, true},
	}
	results, err := runner.Map(context.Background(), o.Workers, len(runs),
		func(_ context.Context, i int) (*sim.Result, error) {
			r := runs[i]
			src, err := wf()
			if err != nil {
				return nil, err
			}
			cfg := arrayConfig(o.Seed, r.multi, 1, x5Goal, dur)
			if r.faulted {
				cfg.Retry = x5Retry()
				cfg.Faults = x5Faults(dur)
			}
			var ctrl sim.Controller = policy.NewBase()
			if r.multi {
				ctrl = hibernator.New(hibernator.Options{Epoch: dur / 4})
			}
			kind := map[bool]string{false: "healthy", true: "faulted"}[r.faulted]
			flush := o.observe(&cfg, "X5-"+r.scheme+"-"+kind)
			check := o.audit(&cfg, "X5-"+r.scheme+"-"+kind)
			o.logf("  X5: %s %s...", r.scheme, kind)
			res, err := sim.Run(cfg, src, ctrl, dur)
			if err != nil {
				return nil, err
			}
			check()
			return res, flush()
		})
	if err != nil {
		return nil, err
	}

	t := report.New("X5", "Fault storm (transient burst + fail-slow + fail-stop) under OLTP-like load, goal 12 ms",
		"scheme", "run", "energy (kJ)", "mean resp (ms)", "violations",
		"retries", "timeouts", "evictions", "lost IOs")
	for i, r := range runs {
		res := results[i]
		runName := "healthy"
		if r.faulted {
			runName = "fault storm"
		}
		t.AddRow(r.scheme, runName, report.KJ(res.Energy), report.Ms(res.MeanResp),
			report.Pct(res.GoalViolationFrac), report.N(res.Faults.Retries),
			report.N(res.Faults.Timeouts), report.N(res.Faults.Evictions),
			report.N(res.Faults.LostIOs))
	}
	t.AddNote("fault-aware Hibernator pins unhealthy groups at full speed, suspends migration during the rebuild, and lets the boost override its mute under a standing fault — it still spins the healthy groups down")
	return []*report.Table{t}, nil
}

func runX6(o Opts) ([]*report.Table, error) {
	o.norm()
	dur := oltpBaseDuration * o.Scale
	vol, err := volumeBytes(o.Seed)
	if err != nil {
		return nil, err
	}
	wf := oltpFactory(o.Seed+101, vol, dur)

	policies := []struct {
		name string
		pol  array.RetryPolicy
	}{
		// MaxRetries 0: every transient error goes straight to the
		// redundancy fallback (a RAID-5 reconstruct fans one op into three).
		{"no-retry", array.RetryPolicy{}},
		{"fixed x3", array.RetryPolicy{MaxRetries: 3, Backoff: 0.002, BackoffFactor: 1}},
		{"backoff x3", array.RetryPolicy{MaxRetries: 3, Backoff: 0.002, BackoffFactor: 4}},
	}
	results, err := runner.Map(context.Background(), o.Workers, len(policies),
		func(_ context.Context, i int) (*sim.Result, error) {
			src, err := wf()
			if err != nil {
				return nil, err
			}
			// Base policy at full speed: the ablation isolates the retry
			// machinery from any power-management interference.
			cfg := arrayConfig(o.Seed, false, 0, 0, dur)
			cfg.Retry = policies[i].pol
			// A 2% ambient rate plus one disk whose burst makes back-to-back
			// attempts likely to fail — the regime where the policies differ.
			cfg.Faults = &fault.Schedule{
				Rates:  fault.Rates{TransientProb: 0.02},
				Events: []fault.Event{{Time: 0.4 * dur, Disk: 3, Kind: fault.TransientBurst, Prob: 0.5, Duration: 0.2 * dur}},
			}
			o.logf("  X6: %s...", policies[i].name)
			check := o.audit(&cfg, "X6-"+policies[i].name)
			res, err := sim.Run(cfg, src, policy.NewBase(), dur)
			if err != nil {
				return nil, err
			}
			check()
			return res, nil
		})
	if err != nil {
		return nil, err
	}

	t := report.New("X6", "Retry policies: 2% ambient transient errors + a 50% burst on one disk (Base, OLTP-like)",
		"policy", "mean resp (ms)", "P99 (ms)", "errors", "retries", "fallbacks")
	for i, p := range policies {
		res := results[i]
		t.AddRow(p.name, report.Ms(res.MeanResp), report.Ms(res.P99Resp),
			report.N(res.Faults.TransientErrs), report.N(res.Faults.Retries),
			report.N(res.Faults.Fallbacks))
	}
	t.AddNote("a same-disk retry costs one extra service time; an immediate reconstruct fallback costs one op on every survivor — retries win until the error rate makes repeated attempts hopeless")
	return []*report.Table{t}, nil
}
