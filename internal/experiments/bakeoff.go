package experiments

import (
	"context"
	"fmt"

	"hibernator/internal/diskmodel"
	"hibernator/internal/dist"
	"hibernator/internal/hibernator"
	"hibernator/internal/policy"
	"hibernator/internal/raid"
	"hibernator/internal/runner"
	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

// Array geometry shared by the headline experiments: 16 data disks as 4
// RAID-5 groups of 4 (plus 2 cache disks for MAID), a 256 MiB controller
// cache, 64 MiB extents.
const (
	bakeGroups     = 4
	bakeGroupDisks = 4
	bakeCacheBytes = 256 << 20
	maidSpares     = 2

	oltpBaseDuration  = 14400.0 // 4 h
	celloBaseDuration = 43200.0 // 12 h (one compressed diurnal cycle)

	// Goal factors set the response-time limit relative to the measured
	// Base mean, the paper's "performance goal" formulation. The database
	// workload is latency-sensitive; the file server tolerates more.
	oltpGoalFactor  = 1.3
	celloGoalFactor = 2.5
)

// arrayConfig builds the shared array configuration. multiSpeed selects
// the 5-level DRPM-style disks; spares adds MAID cache disks.
func arrayConfig(seed int64, multiSpeed bool, spares int, goal, dur float64) sim.Config {
	spec := diskmodel.SingleSpeedUltrastar()
	if multiSpeed {
		spec = diskmodel.MultiSpeedUltrastar(5, 3000)
	}
	respWindow := 60.0
	if dur/10 < respWindow {
		respWindow = dur / 10
	}
	return sim.Config{
		Spec:               spec,
		Groups:             bakeGroups,
		GroupDisks:         bakeGroupDisks,
		Level:              raid.RAID5,
		ExtentBytes:        64 << 20,
		CacheBytes:         bakeCacheBytes,
		SpareDisks:         spares,
		RespGoal:           goal,
		RespWindow:         respWindow,
		Seed:               seed,
		ExpectedRotLatency: true,
	}
}

// volumeBytes reports the logical volume of the shared geometry.
func volumeBytes(seed int64) (int64, error) {
	return sim.LogicalBytes(arrayConfig(seed, true, 0, 0, oltpBaseDuration))
}

// scheme describes one contender in a bake-off.
type scheme struct {
	name       string
	multiSpeed bool
	spares     int
	make       func(dur float64) sim.Controller
}

// allSchemes returns the paper's six contenders. Conventional-disk
// policies (Base, TPM, PDC, MAID) run on single-speed drives; DRPM and
// Hibernator on multi-speed drives. epoch scales coarse-grained policies.
func allSchemes(epoch float64) []scheme {
	return []scheme{
		{"Base", false, 0, func(float64) sim.Controller { return policy.NewBase() }},
		{"TPM", false, 0, func(float64) sim.Controller { return policy.NewTPM(0) }},
		{"DRPM", true, 0, func(float64) sim.Controller { return policy.NewDRPM() }},
		{"PDC", false, 0, func(float64) sim.Controller {
			p := policy.NewPDC()
			p.Epoch = epoch
			return p
		}},
		{"MAID", false, maidSpares, func(float64) sim.Controller { return policy.NewMAID() }},
		{"Hibernator", true, 0, func(float64) sim.Controller {
			return hibernator.New(hibernator.Options{Epoch: epoch})
		}},
	}
}

// workloadFactory builds a fresh, identical source per scheme run.
type workloadFactory func() (trace.Source, error)

func oltpFactory(seed int64, vol int64, dur float64) workloadFactory {
	return func() (trace.Source, error) {
		return trace.NewOLTP(trace.OLTPConfig{
			Seed:        seed,
			VolumeBytes: vol,
			Duration:    dur,
			Rate:        dist.DiurnalRate(20, 100, dur, 0.5),
			MaxRate:     100,
		})
	}
}

func celloFactory(seed int64, vol int64, dur float64) workloadFactory {
	return func() (trace.Source, error) {
		return trace.NewCello(trace.CelloConfig{
			Seed:        seed,
			VolumeBytes: vol,
			Duration:    dur,
			DayPeriod:   dur,
			NightRate:   0.02,
			DayRate:     3,
		})
	}
}

// bakeoff holds the six schemes' results for one workload.
type bakeoff struct {
	order      []string
	results    map[string]*sim.Result
	goal       float64
	goalFactor float64
	dur        float64
}

func (b *bakeoff) base() *sim.Result { return b.results["Base"] }

// runBakeoff executes Base first (to fix the response-time goal at
// goalFactor x its mean), then fans the remaining schemes out over the
// worker pool. Each scheme run builds its own workload source, array and
// engine from the same seeds, so results are identical to the sequential
// order — only the wall clock changes.
func runBakeoff(o Opts, kind string, factory func(seed int64, vol int64, dur float64) workloadFactory, dur, goalFactor float64) (*bakeoff, error) {
	vol, err := volumeBytes(o.Seed)
	if err != nil {
		return nil, err
	}
	wf := factory(o.Seed+101, vol, dur)
	// Coarse-grained epochs are Hibernator's thesis: a handful per run.
	epoch := dur / 4

	run := func(s scheme, goal float64) (*sim.Result, error) {
		src, err := wf()
		if err != nil {
			return nil, err
		}
		cfg := arrayConfig(o.Seed, s.multiSpeed, s.spares, goal, dur)
		// Bake-off runs are shared across experiments (F1/F2 read the same
		// OLTP runs), so streams are named by workload and scheme.
		flush := o.observe(&cfg, "bakeoff-"+kind+"-"+s.name)
		check := o.audit(&cfg, "bakeoff-"+kind+"-"+s.name)
		res, err := sim.Run(cfg, src, s.make(dur), dur)
		if err != nil {
			return nil, err
		}
		check()
		return res, flush()
	}

	schemes := allSchemes(epoch)
	b := &bakeoff{results: map[string]*sim.Result{}, dur: dur, goalFactor: goalFactor}
	o.logf("  running Base to fix the goal...")
	baseRes, err := run(schemes[0], 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: base run: %w", err)
	}
	b.goal = goalFactor * baseRes.MeanResp
	b.order = append(b.order, "Base")
	b.results["Base"] = baseRes
	rest := schemes[1:]
	results, err := runner.Map(context.Background(), o.Workers, len(rest),
		func(_ context.Context, i int) (*sim.Result, error) {
			s := rest[i]
			o.logf("  running %s (goal %.2f ms)...", s.name, b.goal*1000)
			res, err := run(s, b.goal)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s run: %w", s.name, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	for i, s := range rest {
		b.order = append(b.order, s.name)
		b.results[s.name] = results[i]
	}
	return b, nil
}

// Memoized bake-offs: F1/F2/F10/T3 share the OLTP runs; F3/F4/T3 the
// Cello runs. The singleflight memo matters once experiments themselves
// run concurrently (hibexp -par): the first of F1/F2/F10/T3 to arrive
// computes the OLTP bake-off, the others block on it instead of
// duplicating six simulation runs.
var bakeMemo memo[*bakeoff]

func memoBakeoff(o Opts, kind string) (*bakeoff, error) {
	o.norm()
	key := fmt.Sprintf("%s/%g/%d", kind, o.Scale, o.Seed)
	return bakeMemo.do(key, func() (*bakeoff, error) {
		switch kind {
		case "oltp":
			return runBakeoff(o, kind, oltpFactory, oltpBaseDuration*o.Scale, oltpGoalFactor)
		case "cello":
			return runBakeoff(o, kind, celloFactory, celloBaseDuration*o.Scale, celloGoalFactor)
		default:
			return nil, fmt.Errorf("experiments: unknown bakeoff %q", kind)
		}
	})
}
