package experiments

import (
	"sync"

	"hibernator/internal/invariant"
	"hibernator/internal/sim"
)

// checkLogCap bounds the retained violation lines; the total keeps
// counting past it.
const checkLogCap = 200

var (
	checkMu    sync.Mutex
	checkTotal int
	checkLog   []string
)

// CheckViolations returns the process-wide invariant-violation tally
// accumulated by runs executed with Opts.Check, and up to checkLogCap
// rendered violation lines. cmd/hibexp reads it after the experiments
// finish to print the report and set the exit status.
func CheckViolations() (total int, samples []string) {
	checkMu.Lock()
	defer checkMu.Unlock()
	return checkTotal, append([]string(nil), checkLog...)
}

// ResetCheckViolations clears the tally (between test cases).
func ResetCheckViolations() {
	checkMu.Lock()
	defer checkMu.Unlock()
	checkTotal, checkLog = 0, nil
}

// audit arms a fresh invariant checker on cfg when o.Check is set and
// returns a collect function to call once the run finished; collect folds
// any violations into the process-wide tally under the given run name.
// With Check unset the config is untouched and collect is a no-op, so
// unchecked runs execute the exact pre-invariant event sequence.
//
// Like observe, audit names runs per simulation, not per experiment:
// memoized bake-off runs are shared, so the name identifies workload and
// scheme. Each run gets its own Checker; the shared tally is mutex-guarded
// for concurrent runs under Opts.Workers.
func (o *Opts) audit(cfg *sim.Config, name string) (collect func()) {
	// Every simulation run in the suite arms this hook, so it doubles as
	// the one place the per-run Opts settings land on the config: the
	// intra-run worker count, cancellation context, and watchdog ride
	// along here. (With Check set the run falls back to the sequential
	// engine anyway — the checker needs one serialized event stream.)
	cfg.Workers = o.SimWorkers
	cfg.Context = o.Context
	cfg.Watchdog = o.Watchdog
	if !o.Check {
		return func() {}
	}
	chk := invariant.New()
	cfg.Invariants = chk
	return func() {
		if chk.Ok() {
			return
		}
		o.logf("  CHECK %s: %d invariant violation(s)", name, chk.Count())
		checkMu.Lock()
		checkTotal += chk.Count()
		for _, v := range chk.Violations() {
			if len(checkLog) >= checkLogCap {
				break
			}
			checkLog = append(checkLog, name+": "+v.String())
		}
		checkMu.Unlock()
	}
}
