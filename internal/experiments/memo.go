package experiments

import "sync"

// memo is a typed singleflight cache: the first caller for a key runs the
// computation; concurrent callers for the same key block on that one
// computation instead of racing to duplicate it (the old check-then-store
// pattern let two goroutines each simulate the same bake-off). Errors are
// cached too — computations here are deterministic, so retrying an
// identical key would fail identically.
type memo[T any] struct {
	mu sync.Mutex
	m  map[string]*memoEntry[T]
}

type memoEntry[T any] struct {
	once sync.Once
	val  T
	err  error
}

func (c *memo[T]) do(key string, fn func() (T, error)) (T, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = map[string]*memoEntry[T]{}
	}
	e, ok := c.m[key]
	if !ok {
		e = &memoEntry[T]{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, e.err
}

// reset drops every cached entry; tests use it to force recomputation.
func (c *memo[T]) reset() {
	c.mu.Lock()
	c.m = nil
	c.mu.Unlock()
}

// resetMemos clears all experiment-level caches (tests only).
func resetMemos() {
	bakeMemo.reset()
	baseRunMemo.reset()
}
