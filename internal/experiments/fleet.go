package experiments

import (
	"hibernator/internal/fleet"
	"hibernator/internal/report"
)

// X7 lifts the evaluation to fleet scale: the same seeded fleet run twice,
// uncapped and under a fleet power cap, with per-tenant tail latency and
// the fleet-scope conservation verdict in the table.

func init() {
	register(Experiment{
		ID:           "X7",
		Title:        "Fleet power cap (heterogeneous arrays, routed tenants)",
		Reconstructs: "the paper's data-center framing at fleet scale: many arrays, one power budget",
		Run:          runX7,
	})
}

// x7Arrays keeps the fleet small enough that the checked, sequential-engine
// runs finish alongside the single-array experiments.
const x7Arrays = 16

func runX7(o Opts) ([]*report.Table, error) {
	o.norm()
	dur := 1800 * o.Scale
	base := fleet.Config{
		Arrays: x7Arrays, Seed: o.Seed, Duration: dur,
		Par: o.Workers, SimWorkers: o.SimWorkers, Check: o.Check,
		Context: o.Context, Log: o.Log,
	}
	t := report.New("X7", "Fleet of 16 heterogeneous arrays, 64 routed tenants, with and without a power cap",
		"power cap", "capped arrays", "energy (kJ)", "mean resp (ms)", "tenant P99 max (ms)", "goal viol (mean)", "conservation")
	for _, cap := range []int{0, x7Arrays / 4} {
		cfg := base
		cfg.PowerCap = cap
		o.logf("X7: fleet cap=%d", cap)
		rep, err := fleet.Run(cfg)
		if err != nil {
			return nil, err
		}
		collectFleet(rep)
		label := "off"
		if cap > 0 {
			label = report.N(cap)
		}
		verdict := "ok"
		if !rep.ConservationOK {
			verdict = "VIOLATED"
		}
		t.AddRow(label, report.N(rep.CappedArrays), report.KJ(rep.TotalEnergyJ),
			report.Ms(rep.FleetMeanResp), report.Ms(rep.TenantP99Max),
			report.Pct(rep.GoalViolationMean), verdict)
	}
	t.AddNote("the cap licenses the most loaded quarter of the fleet; everyone else is pinned to the lowest RPM tier, trading tail latency on cold arrays for a hard ceiling on spindle power")
	return []*report.Table{t}, nil
}

// collectFleet folds a fleet report's invariant violations (and a failed
// fleet-scope conservation check) into the process-wide tally that
// cmd/hibexp reads, mirroring what audit's collect does for single runs.
func collectFleet(rep *fleet.Report) {
	n := len(rep.Violations)
	if !rep.ConservationOK {
		n++
	}
	if n == 0 {
		return
	}
	checkMu.Lock()
	defer checkMu.Unlock()
	checkTotal += n
	for _, v := range rep.Violations {
		if len(checkLog) >= checkLogCap {
			break
		}
		checkLog = append(checkLog, "X7: "+v)
	}
	if !rep.ConservationOK && len(checkLog) < checkLogCap {
		checkLog = append(checkLog, "X7: fleet-scope energy conservation violated")
	}
}
