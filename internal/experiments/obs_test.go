package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runX3Streams runs X3 at the smallest scale with the given worker count
// and returns the observability stream files it wrote, keyed by name.
func runX3Streams(t *testing.T, workers int) map[string]string {
	t.Helper()
	dir := t.TempDir()
	o := Opts{Scale: 0.02, Seed: 1, Workers: workers, MetricsDir: dir}
	if _, err := runX3(o); err != nil {
		t.Fatalf("X3 (workers=%d): %v", workers, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := map[string]string{}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = string(b)
	}
	if len(files) == 0 {
		t.Fatal("X3 wrote no observability streams")
	}
	return files
}

// TestObsStreamsDeterministic is the golden determinism check: the
// observability streams of an X3 run must be byte-identical across
// worker counts and across invocations — recording must never observe
// scheduling noise.
func TestObsStreamsDeterministic(t *testing.T) {
	seq := runX3Streams(t, 1)
	par := runX3Streams(t, 8)
	again := runX3Streams(t, 1)

	for name, want := range seq {
		if got, ok := par[name]; !ok {
			t.Errorf("workers=8 run missing stream %s", name)
		} else if got != want {
			t.Errorf("stream %s differs between workers=1 and workers=8", name)
		}
		if got, ok := again[name]; !ok {
			t.Errorf("repeat run missing stream %s", name)
		} else if got != want {
			t.Errorf("stream %s differs between two identical invocations", name)
		}
	}
	if len(par) != len(seq) {
		t.Errorf("stream count differs: workers=1 wrote %d, workers=8 wrote %d", len(seq), len(par))
	}
}

// TestObsStreamsCoverage checks the recorded content: every disk in the
// 16-disk + spare array gets a per-disk series, and the decision trace
// captures at least one power-management action.
func TestObsStreamsCoverage(t *testing.T) {
	files := runX3Streams(t, 1)

	metrics, ok := files["X3-healthy.metrics.jsonl"]
	if !ok {
		t.Fatalf("missing X3-healthy.metrics.jsonl; got %v", names(files))
	}
	firstLine, _, _ := strings.Cut(metrics, "\n")
	for _, col := range []string{"resp_mean_ms", "energy_j", "queue_depth", "disk0_level", "disk15_level"} {
		if !strings.Contains(firstLine, `"`+col+`"`) {
			t.Errorf("metrics stream missing series %q", col)
		}
	}

	trace, ok := files["X3-healthy.trace.jsonl"]
	if !ok {
		t.Fatalf("missing X3-healthy.trace.jsonl; got %v", names(files))
	}
	if !strings.Contains(trace, `"kind":"speed_shift"`) && !strings.Contains(trace, `"kind":"boost_fire"`) {
		t.Error("trace has neither a speed_shift nor a boost_fire event")
	}

	faulted, ok := files["X3-fail-rebuild.trace.jsonl"]
	if !ok {
		t.Fatalf("missing X3-fail-rebuild.trace.jsonl; got %v", names(files))
	}
	// rebuild_finish is absent at this scale: disk capacity does not
	// shrink with -scale, so the background rebuild outlives the run.
	for _, kind := range []string{"disk_fail", "rebuild_start"} {
		if !strings.Contains(faulted, `"kind":"`+kind+`"`) {
			t.Errorf("faulted trace missing %s event", kind)
		}
	}
}

func names(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
