// Package fleet lifts the simulator from one array to a datacenter: a
// fleet is a vector of array scenarios plus routing. Arrays are sampled
// with heterogeneous disk families and deployment vintages (staggered
// bathtub AFR curves, internal/diskmodel), a deterministic front-end
// router shards tenant workload streams across arrays by weighted
// rendezvous hashing, and a fleet-level power cap limits how many arrays
// may run disks above the low speed tier, enforced by the router's
// admission plan before any array spins up.
//
// Every array runs as one independent, seed-deterministic sim.Run on the
// internal/runner pool, so intra-run parallelism (Config.SimWorkers),
// the invariant checker (Config.Check), fault injection and
// observability all compose exactly as they do for single-array runs.
// The fleet report is a pure function of Config: byte-identical across
// pool widths (Config.Par) and invocations, and its energy total is the
// sum of the per-array invariant-checked totals — IO and energy
// conservation hold at fleet scope because they hold per array and the
// roll-up is re-derived from two independent ledgers (see Report).
package fleet

import (
	"context"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"sort"

	"hibernator/internal/invariant"
	"hibernator/internal/obs"
	"hibernator/internal/runner"
	"hibernator/internal/sim"
	"hibernator/internal/stats"
	"hibernator/internal/trace"
)

// Config describes one fleet simulation.
type Config struct {
	// Arrays is the fleet size; array i's shape is a pure function of
	// (Seed, i) — see SampleArray.
	Arrays int
	// Tenants is the number of tenant workload streams routed across the
	// fleet; tenant t's profile is a pure function of (Seed, t). 0 picks
	// the default of 4 per array.
	Tenants int
	// Seed drives every sample and every per-array simulation.
	Seed int64
	// Duration is the simulated seconds every array runs (default 300).
	Duration float64

	// PowerCap, when positive, is the maximum number of arrays licensed
	// to run disks above the low speed tier. The router's admission plan
	// grants licenses to the most loaded arrays first; the rest have
	// their disk spec truncated to the lowest RPM level for the whole
	// run (diskmodel.Spec.Truncate). 0 leaves the fleet uncapped.
	PowerCap int

	// FaultAccel compresses drive lifetime onto the simulated horizon so
	// vintage AFR differences are visible in minutes-long runs: one
	// simulated second ages a drive FaultAccel seconds for fault
	// sampling. Default 2000 (a 300 s run covers ~1 week of exposure).
	FaultAccel float64

	// Par is the runner pool width for fan-out across arrays
	// (0 = GOMAXPROCS, 1 = sequential). Report bytes never depend on it.
	Par int
	// SimWorkers is the intra-run engine width per array
	// (sim.Config.Workers); 0/1 = the sequential engine.
	SimWorkers int
	// Check arms an invariant checker on every array's run; violations
	// land in the report (and fail Report.Ok).
	Check bool
	// MetricsDir, when non-empty, writes one observability file pair per
	// array (array-%04d.metrics.jsonl / .trace.jsonl) into the directory,
	// which must exist.
	MetricsDir string
	// Context, when non-nil, cancels the fleet between array runs.
	Context context.Context
	// Log, when non-nil, receives progress lines (wall-clock ordered, NOT
	// deterministic — keep it off the report stream).
	Log io.Writer
}

func (c *Config) applyDefaults() error {
	if c.Arrays <= 0 {
		return fmt.Errorf("fleet: need a positive array count, got %d", c.Arrays)
	}
	if c.Tenants < 0 {
		return fmt.Errorf("fleet: negative tenant count %d", c.Tenants)
	}
	if c.Tenants == 0 {
		c.Tenants = 4 * c.Arrays
	}
	if c.Duration == 0 {
		c.Duration = 300
	}
	if !(c.Duration > 0) || math.IsInf(c.Duration, 0) {
		return fmt.Errorf("fleet: duration must be positive and finite, got %g", c.Duration)
	}
	if c.PowerCap < 0 {
		return fmt.Errorf("fleet: negative power cap %d", c.PowerCap)
	}
	if c.FaultAccel == 0 {
		c.FaultAccel = 2000
	}
	if !(c.FaultAccel > 0) || math.IsInf(c.FaultAccel, 0) {
		return fmt.Errorf("fleet: fault acceleration must be positive and finite, got %g", c.FaultAccel)
	}
	if c.SimWorkers < 0 {
		return fmt.Errorf("fleet: negative intra-run worker count %d", c.SimWorkers)
	}
	return nil
}

// arrayOutcome is one array's contribution to the roll-up.
type arrayOutcome struct {
	spec    ArraySpec
	res     *sim.Result
	tenants []*TenantStats
	viols   []string
}

// Run executes the fleet and returns its report. The error return is
// infrastructural (bad config, metrics I/O, cancellation); per-array
// invariant violations and conservation failures live in the report.
func Run(cfg Config) (*Report, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	arrays := make([]ArraySpec, cfg.Arrays)
	for i := range arrays {
		arrays[i] = SampleArray(cfg.Seed, i)
	}
	tenants := make([]Tenant, cfg.Tenants)
	for t := range tenants {
		tenants[t] = SampleTenant(cfg.Seed, t)
	}
	plan := BuildPlan(cfg.Seed, cfg.PowerCap, arrays, tenants)
	for i := range arrays {
		arrays[i].Capped = !plan.Licensed[i]
	}

	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	outcomes, err := runner.Map(ctx, cfg.Par, cfg.Arrays,
		func(_ context.Context, i int) (arrayOutcome, error) {
			out, err := runArray(&cfg, arrays[i], plan.ArrayTenants(i, tenants))
			if err != nil {
				return arrayOutcome{}, fmt.Errorf("fleet: array %d: %w", i, err)
			}
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "fleet: array %d/%d done\n", i+1, cfg.Arrays)
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	return buildReport(&cfg, plan, outcomes), nil
}

// runArray executes one array's simulation with the fleet hooks armed.
func runArray(cfg *Config, spec ArraySpec, assigned []Tenant) (arrayOutcome, error) {
	simCfg, err := spec.simConfig(cfg)
	if err != nil {
		return arrayOutcome{}, err
	}
	var chk *invariant.Checker
	if cfg.Check {
		chk = invariant.New()
		simCfg.Invariants = chk
	}
	flush := func() error { return nil }
	if cfg.MetricsDir != "" {
		simCfg.Metrics = obs.NewRegistry(0)
		simCfg.Trace = obs.NewTrace()
		base := filepath.Join(cfg.MetricsDir, fmt.Sprintf("array-%04d", spec.Index))
		flush = func() error {
			if err := simCfg.Metrics.WriteFile(base + ".metrics.jsonl"); err != nil {
				return err
			}
			return simCfg.Trace.WriteFile(base + ".trace.jsonl")
		}
	}

	// Per-tenant latency attribution: every foreground completion carries
	// the tenant tag its source stamped on the request.
	byTenant := make(map[int]*TenantStats, len(assigned))
	out := arrayOutcome{spec: spec, tenants: make([]*TenantStats, len(assigned))}
	for j, t := range assigned {
		ts := &TenantStats{
			ID: t.ID, Array: spec.Index, Workload: t.Workload, Rate: t.Rate,
			pct: stats.NewReservoir(4096, mix3(cfg.Seed, int64(t.ID), 0x7e9a)),
		}
		byTenant[t.ID] = ts
		out.tenants[j] = ts
	}
	simCfg.OnResponse = func(r trace.Request, lat float64) {
		if ts := byTenant[r.Tenant]; ts != nil {
			ts.Requests++
			ts.w.Add(lat)
			ts.pct.Add(lat)
		}
	}

	src, err := buildWorkload(cfg, spec, assigned, simCfg)
	if err != nil {
		return arrayOutcome{}, err
	}
	ctrl, err := spec.controller(cfg.Duration)
	if err != nil {
		return arrayOutcome{}, err
	}
	res, err := sim.Run(simCfg, src, ctrl, cfg.Duration)
	if err != nil {
		return arrayOutcome{}, err
	}
	if err := flush(); err != nil {
		return arrayOutcome{}, err
	}
	out.res = res
	if chk != nil {
		chk.Finish(cfg.Duration)
		for _, v := range chk.Violations() {
			out.viols = append(out.viols, v.String())
		}
	}
	return out, nil
}

// TenantStats aggregates one tenant's observed service.
type TenantStats struct {
	ID       int
	Array    int     // array the router assigned
	Workload string  // oltp | cello
	Rate     float64 // offered req/s

	Requests uint64
	w        stats.Welford
	pct      *stats.Reservoir
}

// MeanResp returns the tenant's mean response time in seconds (0 with no
// completed requests).
func (t *TenantStats) MeanResp() float64 {
	if t.Requests == 0 {
		return 0
	}
	return t.w.Mean()
}

// P95 returns the tenant's 95th percentile response time in seconds.
func (t *TenantStats) P95() float64 { return t.pct.Quantile(0.95) }

// P99 returns the tenant's 99th percentile response time in seconds.
func (t *TenantStats) P99() float64 { return t.pct.Quantile(0.99) }

// sortTenants orders tenant stats by ID (the deterministic report order).
func sortTenants(ts []*TenantStats) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].ID < ts[j].ID })
}
