package fleet

import (
	"bytes"
	"math"
	"testing"
)

// testConfig is a small-but-heterogeneous fleet that runs in seconds.
func testConfig() Config {
	return Config{Arrays: 8, Tenants: 24, Seed: 1, Duration: 60}
}

// TestFleetDeterministicAcrossPar is the tentpole determinism contract:
// the same seed renders byte-identical reports at pool widths 1 and 8.
func TestFleetDeterministicAcrossPar(t *testing.T) {
	cfg := testConfig()
	cfg.Check = true

	cfg.Par = 1
	seq, err := Run(cfg)
	if err != nil {
		t.Fatalf("par=1 run failed: %v", err)
	}
	cfg.Par = 8
	par, err := Run(cfg)
	if err != nil {
		t.Fatalf("par=8 run failed: %v", err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("report differs across par widths:\n--- par=1 ---\n%s--- par=8 ---\n%s",
			seq.Bytes(), par.Bytes())
	}
	if !seq.Ok() {
		t.Fatalf("checked fleet not clean:\n%s", seq.Bytes())
	}
}

// TestFleetConservation checks the fleet-scope invariant: the reported
// total is exactly the sum of per-array invariant-checked totals, and the
// independent state-ledger re-derivation agrees.
func TestFleetConservation(t *testing.T) {
	cfg := testConfig()
	cfg.Check = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("per-array invariants violated: %v", rep.Violations)
	}
	if len(rep.PerArrayEnergyJ) != cfg.Arrays {
		t.Fatalf("got %d per-array totals, want %d", len(rep.PerArrayEnergyJ), cfg.Arrays)
	}
	var sum float64
	for _, e := range rep.PerArrayEnergyJ {
		if !(e > 0) {
			t.Fatalf("non-positive per-array energy %g", e)
		}
		sum += e
	}
	if sum != rep.TotalEnergyJ {
		t.Fatalf("fleet total %g != sum of per-array totals %g (must be exact)", rep.TotalEnergyJ, sum)
	}
	if !rep.ConservationOK {
		t.Fatalf("ledger re-derivation disagrees: total %g, ledger %g",
			rep.TotalEnergyJ, rep.LedgerEnergyJ)
	}
	if math.Abs(rep.TotalEnergyJ-rep.LedgerEnergyJ) > 1e-6+1e-9*rep.TotalEnergyJ {
		t.Fatalf("ledger delta too large: %g", rep.TotalEnergyJ-rep.LedgerEnergyJ)
	}
}

// TestFleetPowerCapBites checks the cap changes physics, not just labels:
// a capped fleet reports capped arrays, and its energy differs from the
// uncapped fleet's (lowest-RPM-only arrays draw different power).
func TestFleetPowerCapBites(t *testing.T) {
	cfg := testConfig()
	free, err := Run(cfg)
	if err != nil {
		t.Fatalf("uncapped run failed: %v", err)
	}
	cfg.PowerCap = 2
	capped, err := Run(cfg)
	if err != nil {
		t.Fatalf("capped run failed: %v", err)
	}
	if free.CappedArrays != 0 {
		t.Fatalf("uncapped fleet reports %d capped arrays", free.CappedArrays)
	}
	if want := cfg.Arrays - cfg.PowerCap; capped.CappedArrays != want {
		t.Fatalf("capped fleet reports %d capped arrays, want %d", capped.CappedArrays, want)
	}
	if free.TotalEnergyJ == capped.TotalEnergyJ {
		t.Fatalf("power cap did not change fleet energy (%g J both ways)", free.TotalEnergyJ)
	}
	if bytes.Equal(free.Bytes(), capped.Bytes()) {
		t.Fatal("power cap did not change the report")
	}
}

// TestFleetTenantAttribution checks per-tenant latency attribution adds
// up: tenant request counts sum to the fleet total, and active tenants
// have sane latency stats.
func TestFleetTenantAttribution(t *testing.T) {
	cfg := testConfig()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if rep.Requests == 0 {
		t.Fatal("fleet served no requests")
	}
	if rep.ActiveTenants == 0 {
		t.Fatal("no tenant completed a request")
	}
	if !(rep.TenantP99Max >= rep.TenantP95Max && rep.TenantP95Max > 0) {
		t.Fatalf("percentiles disordered: P95max=%g P99max=%g", rep.TenantP95Max, rep.TenantP99Max)
	}
	if len(rep.WorstTenants) == 0 || len(rep.WorstTenants) > 5 {
		t.Fatalf("worst-tenant list has %d entries", len(rep.WorstTenants))
	}
	for _, ts := range rep.WorstTenants {
		if ts.Requests > 0 && !(ts.MeanResp() > 0) {
			t.Fatalf("tenant %d has %d requests but mean %g", ts.ID, ts.Requests, ts.MeanResp())
		}
	}
}

// TestFleetBadConfig checks config validation rejects nonsense.
func TestFleetBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Arrays: 0},
		{Arrays: -3},
		{Arrays: 2, Tenants: -1},
		{Arrays: 2, Duration: -5},
		{Arrays: 2, PowerCap: -1},
		{Arrays: 2, FaultAccel: -10},
		{Arrays: 2, SimWorkers: -2},
	} {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("config %+v accepted; want error", cfg)
		}
	}
}
