package fleet

import "testing"

// TestAssignEveryTenantExactlyOneArray is the router's basic contract:
// each tenant lands on exactly one in-range array, and re-running the
// plan reproduces the assignment bit-for-bit.
func TestAssignEveryTenantExactlyOneArray(t *testing.T) {
	const seed, nArr, nTen = 42, 16, 200
	arrays := make([]ArraySpec, nArr)
	for i := range arrays {
		arrays[i] = SampleArray(seed, i)
	}
	tenants := make([]Tenant, nTen)
	for i := range tenants {
		tenants[i] = SampleTenant(seed, i)
	}
	p := BuildPlan(seed, 0, arrays, tenants)
	if len(p.TenantArray) != nTen {
		t.Fatalf("TenantArray has %d entries, want %d", len(p.TenantArray), nTen)
	}
	for id, a := range p.TenantArray {
		if a < 0 || a >= nArr {
			t.Fatalf("tenant %d assigned out-of-range array %d", id, a)
		}
	}
	q := BuildPlan(seed, 0, arrays, tenants)
	for id := range p.TenantArray {
		if p.TenantArray[id] != q.TenantArray[id] {
			t.Fatalf("tenant %d assignment not reproducible: %d vs %d",
				id, p.TenantArray[id], q.TenantArray[id])
		}
	}
	// ArrayTenants partitions the tenant set.
	seen := 0
	for a := 0; a < nArr; a++ {
		seen += len(p.ArrayTenants(a, tenants))
	}
	if seen != nTen {
		t.Fatalf("ArrayTenants covered %d tenants, want %d", seen, nTen)
	}
}

// TestAssignStableUnderGrowth is the rendezvous-hash property the fleet's
// growth story depends on: adding arrays may only move a tenant to one of
// the NEW arrays, never reshuffle it among the old ones.
func TestAssignStableUnderGrowth(t *testing.T) {
	const seed, small, big, nTen = 7, 12, 20, 300
	arrays := make([]ArraySpec, big)
	for i := range arrays {
		arrays[i] = SampleArray(seed, i)
	}
	moved := 0
	for id := 0; id < nTen; id++ {
		ten := SampleTenant(seed, id)
		before := Assign(seed, ten, arrays[:small])
		after := Assign(seed, ten, arrays)
		if after != before {
			if after < small {
				t.Fatalf("tenant %d reshuffled among surviving arrays: %d -> %d", id, before, after)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatalf("no tenant moved to the %d new arrays; growth did nothing", big-small)
	}
}

// TestSampleArrayPure checks specs are pure functions of (seed, index):
// equal inputs agree, different indices differ somewhere.
func TestSampleArrayPure(t *testing.T) {
	a, b := SampleArray(3, 5), SampleArray(3, 5)
	if a.String() != b.String() || a.Seed != b.Seed {
		t.Fatalf("SampleArray(3,5) not pure:\n%v\n%v", a.String(), b.String())
	}
	distinct := false
	for i := 1; i < 16; i++ {
		if SampleArray(3, i).Seed != a.Seed {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Fatal("16 array samples share one seed; mixing is broken")
	}
}

// TestBuildPlanPowerCap checks cap semantics: exactly cap licenses, the
// most loaded arrays win, and cap 0 licenses everyone.
func TestBuildPlanPowerCap(t *testing.T) {
	const seed, nArr, nTen, cap = 11, 10, 80, 3
	arrays := make([]ArraySpec, nArr)
	for i := range arrays {
		arrays[i] = SampleArray(seed, i)
	}
	tenants := make([]Tenant, nTen)
	for i := range tenants {
		tenants[i] = SampleTenant(seed, i)
	}
	p := BuildPlan(seed, cap, arrays, tenants)
	licensed := 0
	minLicensed, maxUnlicensed := 1e18, -1.0
	for i, ok := range p.Licensed {
		if ok {
			licensed++
			if p.Offered[i] < minLicensed {
				minLicensed = p.Offered[i]
			}
		} else if p.Offered[i] > maxUnlicensed {
			maxUnlicensed = p.Offered[i]
		}
	}
	if licensed != cap {
		t.Fatalf("licensed %d arrays, want %d", licensed, cap)
	}
	if maxUnlicensed > minLicensed {
		t.Fatalf("admission inverted: unlicensed load %g > licensed load %g", maxUnlicensed, minLicensed)
	}
	uncapped := BuildPlan(seed, 0, arrays, tenants)
	for i, ok := range uncapped.Licensed {
		if !ok {
			t.Fatalf("cap 0 left array %d unlicensed", i)
		}
	}
}
