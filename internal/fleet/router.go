package fleet

import (
	"math"
	"math/rand"
	"sort"
)

// Tenant is one workload stream the router shards onto an array. Profiles
// are a pure function of (fleet seed, tenant id) via SampleTenant.
type Tenant struct {
	ID       int
	Workload string  // oltp | cello
	Rate     float64 // oltp: mean req/s; cello: day-peak burst rate
	Seed     int64   // per-tenant generator seed
}

// SampleTenant draws the id-th tenant of a fleet seeded with seed.
func SampleTenant(seed int64, id int) Tenant {
	rng := rand.New(rand.NewSource(mix3(seed, int64(id), 0x7E4A47)))
	t := Tenant{ID: id, Seed: int64(rng.Uint64() >> 1)}
	if rng.Intn(4) == 0 {
		t.Workload = "cello"
		t.Rate = choiceF(rng, []float64{0.5, 1, 2})
	} else {
		t.Workload = "oltp"
		t.Rate = float64(2 + rng.Intn(15))
	}
	return t
}

// Plan is the router's output: the tenant→array assignment and the power
// cap's admission verdict, both pure functions of (seed, cap, arrays,
// tenants). The fleet builds it once, before any array runs.
type Plan struct {
	// TenantArray maps tenant id → assigned array index. Every tenant is
	// assigned exactly one array.
	TenantArray []int
	// Offered is the per-array offered load, the sum of assigned tenant
	// rates (req/s; cello tenants count their day-peak rate).
	Offered []float64
	// Licensed marks arrays allowed to run disks above the low speed
	// tier. With no cap every array is licensed; with cap K the K most
	// loaded arrays (ties to the lower index) are.
	Licensed []bool
}

// Assign routes one tenant by weighted rendezvous hashing (weighted
// highest-random-weight): for every array the tenant draws a uniform
// u ∈ (0,1) from hash(seed, tenant, array) and scores weight/-ln(u); the
// highest score wins, ties to the lower index. Because each array's score
// depends only on (seed, tenant, array index, array weight), growing the
// fleet never reshuffles survivors: a tenant either keeps its array or
// moves to one of the new indices.
func Assign(seed int64, t Tenant, arrays []ArraySpec) int {
	best, bestScore := -1, math.Inf(-1)
	for i := range arrays {
		u := hashUniform(seed, int64(t.ID), int64(arrays[i].Index))
		score := arrays[i].Weight() / -math.Log(u)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// hashUniform maps (seed, tenant, array) to a uniform float in (0,1),
// splitmix64-style, identically on every platform.
func hashUniform(seed, tenant, arr int64) float64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(tenant)*0x94d049bb133111eb + uint64(arr) + 0x2545f4914f6cdd1d
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / float64(1<<53)
	if u <= 0 { // -ln(0) would be +Inf for every array; nudge off the edge
		u = 1.0 / float64(1<<53)
	}
	return u
}

// BuildPlan assigns every tenant and computes the power-cap admission
// plan: arrays ranked by offered load (descending, ties to the lower
// index) receive the cap licenses; everyone else runs capped. cap <= 0 or
// cap >= len(arrays) licenses the whole fleet.
func BuildPlan(seed int64, cap int, arrays []ArraySpec, tenants []Tenant) *Plan {
	p := &Plan{
		TenantArray: make([]int, len(tenants)),
		Offered:     make([]float64, len(arrays)),
		Licensed:    make([]bool, len(arrays)),
	}
	for i, t := range tenants {
		a := Assign(seed, t, arrays)
		p.TenantArray[i] = a
		p.Offered[a] += t.Rate
	}
	if cap <= 0 || cap >= len(arrays) {
		for i := range p.Licensed {
			p.Licensed[i] = true
		}
		return p
	}
	order := make([]int, len(arrays))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		if p.Offered[order[x]] != p.Offered[order[y]] {
			return p.Offered[order[x]] > p.Offered[order[y]]
		}
		return order[x] < order[y]
	})
	for _, i := range order[:cap] {
		p.Licensed[i] = true
	}
	return p
}

// ArrayTenants returns the tenants assigned to one array, in tenant-id
// order (the deterministic per-array stream order).
func (p *Plan) ArrayTenants(arr int, tenants []Tenant) []Tenant {
	var out []Tenant
	for i, a := range p.TenantArray {
		if a == arr {
			out = append(out, tenants[i])
		}
	}
	return out
}
