package fleet

import (
	"bytes"
	"sync"
	"testing"
)

// TestConcurrentFleetRunsByteIdentical runs several whole fleets at once —
// each with the invariant checker and per-tenant OnResponse attribution
// armed, each itself fanning out across the runner pool with partitioned
// engines inside. Under -race this is the no-hidden-globals contract for
// the hook stack: every concurrent report must be byte-identical to the
// serial one.
func TestConcurrentFleetRunsByteIdentical(t *testing.T) {
	cfg := testConfig()
	cfg.Check = true
	cfg.Par = 2
	cfg.SimWorkers = 2

	serial, err := Run(cfg)
	if err != nil {
		t.Fatalf("serial run failed: %v", err)
	}
	if !serial.Ok() {
		t.Fatalf("serial fleet not clean:\n%s", serial.Bytes())
	}

	const runs = 3
	reports := make([][]byte, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := Run(cfg)
			if err != nil {
				t.Errorf("concurrent run %d failed: %v", i, err)
				return
			}
			reports[i] = rep.Bytes()
		}(i)
	}
	wg.Wait()

	for i, rep := range reports {
		if !bytes.Equal(rep, serial.Bytes()) {
			t.Errorf("concurrent run %d diverged from the serial report:\n%s", i, rep)
		}
	}
}
