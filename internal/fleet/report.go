package fleet

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"

	"hibernator/internal/sim"
)

// Report aggregates one fleet run. Everything in it is a pure function of
// the Config that produced it; Write renders it byte-identically across
// pool widths and invocations.
type Report struct {
	Seed     int64
	Arrays   int
	Tenants  int
	Duration float64
	PowerCap int
	Checked  bool

	TotalDisks   int
	CappedArrays int
	// FamilyArrays counts arrays per disk family.
	FamilyArrays map[string]int

	// TotalEnergyJ is the fleet energy total: the sum, in array-index
	// order, of the per-array totals sim.Run reports (each of which the
	// invariant checker re-derives from per-disk state ledgers when the
	// run is checked).
	TotalEnergyJ float64
	// LedgerEnergyJ is the independent re-derivation: the same fleet
	// total summed from every array's per-state energy ledger instead of
	// its close-out total.
	LedgerEnergyJ float64
	// PerArrayEnergyJ holds each array's invariant-checked total.
	PerArrayEnergyJ []float64
	// EnergyByFamilyJ splits the fleet total by disk family.
	EnergyByFamilyJ map[string]float64
	// ConservationOK is the fleet-scope conservation verdict: the fleet
	// total equals the sum of per-array totals exactly (it is that sum),
	// and the state-ledger re-derivation agrees to relative 1e-9.
	ConservationOK bool

	Requests  uint64
	CacheHits uint64
	// FleetMeanResp is the request-weighted mean response time (seconds).
	FleetMeanResp float64

	// Tenant tail-latency roll-up (seconds) over tenants that completed
	// at least one request, plus the worst tenants by P99.
	ActiveTenants               int
	TenantP95Mean, TenantP95Max float64
	TenantP99Mean, TenantP99Max float64
	WorstTenants                []*TenantStats
	// GoalViolationMean/Max aggregate the per-array goal-violation
	// fractions (unweighted across arrays).
	GoalViolationMean, GoalViolationMax float64

	SpinUps, SpinDowns, LevelShifts uint64
	Migrations                      uint64

	// Faults aggregates every array's fault accounting.
	Faults sim.FaultSummary

	// Violations lists invariant violations ("array N: ..."), empty for a
	// clean checked run and always empty for an unchecked one.
	Violations []string
}

// Ok reports a clean fleet: no invariant violations and conservation
// holding at fleet scope.
func (r *Report) Ok() bool { return len(r.Violations) == 0 && r.ConservationOK }

// buildReport rolls per-array outcomes up into the fleet report, in
// array-index order throughout so every float sum is order-deterministic.
func buildReport(cfg *Config, plan *Plan, outcomes []arrayOutcome) *Report {
	rep := &Report{
		Seed: cfg.Seed, Arrays: cfg.Arrays, Tenants: cfg.Tenants,
		Duration: cfg.Duration, PowerCap: cfg.PowerCap, Checked: cfg.Check,
		FamilyArrays:    map[string]int{},
		EnergyByFamilyJ: map[string]float64{},
		PerArrayEnergyJ: make([]float64, 0, len(outcomes)),
	}
	var respWeighted float64
	var allTenants []*TenantStats
	for i := range outcomes {
		o := &outcomes[i]
		rep.TotalDisks += o.spec.TotalDisks()
		rep.FamilyArrays[o.spec.Family]++
		if o.spec.Capped {
			rep.CappedArrays++
		}
		rep.PerArrayEnergyJ = append(rep.PerArrayEnergyJ, o.res.Energy)
		rep.TotalEnergyJ += o.res.Energy
		rep.EnergyByFamilyJ[o.spec.Family] += o.res.Energy
		states := make([]string, 0, len(o.res.EnergyByState))
		for s := range o.res.EnergyByState {
			states = append(states, s)
		}
		sort.Strings(states)
		for _, s := range states {
			rep.LedgerEnergyJ += o.res.EnergyByState[s]
		}
		rep.Requests += o.res.Requests
		rep.CacheHits += o.res.CacheHits
		respWeighted += o.res.MeanResp * float64(o.res.Requests)
		rep.SpinUps += o.res.SpinUps
		rep.SpinDowns += o.res.SpinDowns
		rep.LevelShifts += o.res.LevelShifts
		rep.Migrations += o.res.Migrations
		addFaults(&rep.Faults, &o.res.Faults)
		if i == 0 || o.res.GoalViolationFrac > rep.GoalViolationMax {
			rep.GoalViolationMax = o.res.GoalViolationFrac
		}
		rep.GoalViolationMean += o.res.GoalViolationFrac
		for _, v := range o.viols {
			rep.Violations = append(rep.Violations, fmt.Sprintf("array %d: %s", o.spec.Index, v))
		}
		allTenants = append(allTenants, o.tenants...)
	}
	if len(outcomes) > 0 {
		rep.GoalViolationMean /= float64(len(outcomes))
	}
	if rep.Requests > 0 {
		rep.FleetMeanResp = respWeighted / float64(rep.Requests)
	}

	sortTenants(allTenants)
	for _, ts := range allTenants {
		if ts.Requests == 0 {
			continue
		}
		rep.ActiveTenants++
		p95, p99 := ts.P95(), ts.P99()
		rep.TenantP95Mean += p95
		rep.TenantP99Mean += p99
		if p95 > rep.TenantP95Max {
			rep.TenantP95Max = p95
		}
		if p99 > rep.TenantP99Max {
			rep.TenantP99Max = p99
		}
	}
	if rep.ActiveTenants > 0 {
		rep.TenantP95Mean /= float64(rep.ActiveTenants)
		rep.TenantP99Mean /= float64(rep.ActiveTenants)
	}
	worst := append([]*TenantStats(nil), allTenants...)
	sort.SliceStable(worst, func(i, j int) bool {
		pi, pj := worst[i].P99(), worst[j].P99()
		if pi != pj {
			return pi > pj
		}
		return worst[i].ID < worst[j].ID
	})
	if len(worst) > 5 {
		worst = worst[:5]
	}
	rep.WorstTenants = worst

	delta := rep.TotalEnergyJ - rep.LedgerEnergyJ
	scale := math.Abs(rep.TotalEnergyJ) + math.Abs(rep.LedgerEnergyJ)
	rep.ConservationOK = math.Abs(delta) <= 1e-6 || math.Abs(delta) <= 1e-9*scale
	return rep
}

// addFaults accumulates one array's fault summary into the fleet's.
func addFaults(dst, src *sim.FaultSummary) {
	dst.Injected += src.Injected
	dst.SkippedInjections += src.SkippedInjections
	dst.TransientErrs += src.TransientErrs
	dst.LatentErrs += src.LatentErrs
	dst.SpinUpFailures += src.SpinUpFailures
	dst.Retries += src.Retries
	dst.Timeouts += src.Timeouts
	dst.Fallbacks += src.Fallbacks
	dst.Evictions += src.Evictions
	dst.DiskFailures += src.DiskFailures
	dst.Rebuilds += src.Rebuilds
	dst.LostIOs += src.LostIOs
}

// Write renders the report deterministically.
func (r *Report) Write(w io.Writer) error {
	var b bytes.Buffer
	fmt.Fprintf(&b, "hibfleet report: seed=%d arrays=%d tenants=%d dur=%gs power-cap=%s check=%t\n",
		r.Seed, r.Arrays, r.Tenants, r.Duration, capString(r.PowerCap), r.Checked)
	fams := make([]string, 0, len(r.FamilyArrays))
	for f := range r.FamilyArrays {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	fmt.Fprintf(&b, "fleet: %d disks;", r.TotalDisks)
	for _, f := range fams {
		fmt.Fprintf(&b, " %s x%d,", f, r.FamilyArrays[f])
	}
	fmt.Fprintf(&b, " %d array(s) capped\n", r.CappedArrays)
	fmt.Fprintf(&b, "energy: total %.3f kJ = sum of %d per-array totals", r.TotalEnergyJ/1000, r.Arrays)
	for _, f := range fams {
		fmt.Fprintf(&b, "; %s %.3f kJ", f, r.EnergyByFamilyJ[f]/1000)
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "conservation: state-ledger re-derivation %.6f kJ, delta %.3g J: %s\n",
		r.LedgerEnergyJ/1000, r.TotalEnergyJ-r.LedgerEnergyJ, okString(r.ConservationOK))
	fmt.Fprintf(&b, "requests: %d (%d cache hits); fleet mean resp %.3f ms\n",
		r.Requests, r.CacheHits, r.FleetMeanResp*1000)
	fmt.Fprintf(&b, "tenants: %d active of %d; P95 mean/max %.3f/%.3f ms; P99 mean/max %.3f/%.3f ms\n",
		r.ActiveTenants, r.Tenants,
		r.TenantP95Mean*1000, r.TenantP95Max*1000, r.TenantP99Mean*1000, r.TenantP99Max*1000)
	for _, ts := range r.WorstTenants {
		fmt.Fprintf(&b, "  worst: tenant %d (%s rate=%g on array %d): %d reqs, mean %.3f ms, P99 %.3f ms\n",
			ts.ID, ts.Workload, ts.Rate, ts.Array, ts.Requests, ts.MeanResp()*1000, ts.P99()*1000)
	}
	fmt.Fprintf(&b, "goal: violation fraction mean %.4f, max %.4f\n", r.GoalViolationMean, r.GoalViolationMax)
	fmt.Fprintf(&b, "activity: %d spin-ups, %d spin-downs, %d level shifts, %d migrations\n",
		r.SpinUps, r.SpinDowns, r.LevelShifts, r.Migrations)
	fmt.Fprintf(&b, "faults: %d injected, %d transient errs, %d retries, %d timeouts, %d fallbacks, %d evictions, %d disk failures, %d rebuilds, %d lost IOs\n",
		r.Faults.Injected, r.Faults.TransientErrs, r.Faults.Retries, r.Faults.Timeouts,
		r.Faults.Fallbacks, r.Faults.Evictions, r.Faults.DiskFailures, r.Faults.Rebuilds, r.Faults.LostIOs)
	if len(r.Violations) > 0 {
		max := len(r.Violations)
		if max > 10 {
			max = 10
		}
		fmt.Fprintf(&b, "invariant violations: %d\n", len(r.Violations))
		for _, v := range r.Violations[:max] {
			fmt.Fprintf(&b, "  %s\n", v)
		}
		if max < len(r.Violations) {
			fmt.Fprintf(&b, "  (+%d more)\n", len(r.Violations)-max)
		}
	}
	if r.Ok() {
		fmt.Fprintln(&b, "result: ok")
	} else {
		fmt.Fprintln(&b, "result: FAIL")
	}
	_, err := w.Write(b.Bytes())
	return err
}

// Bytes renders the report to memory (the chaos fleet oracle's
// byte-identity comparisons).
func (r *Report) Bytes() []byte {
	var b bytes.Buffer
	_ = r.Write(&b) // a bytes.Buffer write cannot fail
	return b.Bytes()
}

// capString renders the power cap ("off" when unset).
func capString(cap int) string {
	if cap <= 0 {
		return "off"
	}
	return fmt.Sprintf("%d", cap)
}

// okString renders a verdict.
func okString(ok bool) string {
	if ok {
		return "ok"
	}
	return "VIOLATED"
}
