package fleet

import (
	"fmt"

	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

// tenantSource wraps one tenant's generator: offsets shift into the
// tenant's private slice of the array volume (disjoint working sets, the
// spatial skew migration policies exploit) and every request carries the
// tenant's id for per-tenant latency attribution via sim.Config.OnResponse.
type tenantSource struct {
	src    trace.Source
	base   int64
	tenant int
}

// Next implements trace.Source.
func (s *tenantSource) Next() (trace.Request, bool) {
	r, ok := s.src.Next()
	if !ok {
		return trace.Request{}, false
	}
	r.Off += s.base
	r.Tenant = s.tenant
	return r, true
}

// buildWorkload merges the assigned tenants' streams into one
// time-ordered source over the array's logical volume. Each tenant gets
// an equal contiguous slice of the volume; trace.Merge breaks arrival
// ties by source order, which is tenant-id order here, so the merged
// stream is deterministic. An array with no assigned tenants idles for
// the whole run (policies still act; only the request pump is empty).
func buildWorkload(cfg *Config, spec ArraySpec, assigned []Tenant, simCfg sim.Config) (trace.Source, error) {
	if len(assigned) == 0 {
		return trace.NewSliceSource(nil), nil
	}
	vol, err := sim.LogicalBytes(simCfg)
	if err != nil {
		return nil, err
	}
	slice := vol / int64(len(assigned))
	if slice <= 0 {
		return nil, fmt.Errorf("fleet: volume %d B too small for %d tenants", vol, len(assigned))
	}
	srcs := make([]trace.Source, len(assigned))
	for i, t := range assigned {
		var src trace.Source
		switch t.Workload {
		case "oltp":
			src, err = trace.NewOLTP(trace.OLTPConfig{
				Seed: t.Seed, VolumeBytes: slice, Duration: cfg.Duration, MaxRate: t.Rate,
			})
		case "cello":
			src, err = trace.NewCello(trace.CelloConfig{
				Seed: t.Seed, VolumeBytes: slice, Duration: cfg.Duration,
				DayPeriod: cfg.Duration, DayRate: t.Rate,
			})
		default:
			err = fmt.Errorf("fleet: unknown workload %q", t.Workload)
		}
		if err != nil {
			return nil, err
		}
		srcs[i] = &tenantSource{src: src, base: int64(i) * slice, tenant: t.ID}
	}
	return trace.NewMerge(srcs...), nil
}
