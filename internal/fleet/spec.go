package fleet

import (
	"fmt"
	"math"
	"math/rand"

	"hibernator/internal/array"
	"hibernator/internal/diskmodel"
	"hibernator/internal/fault"
	"hibernator/internal/hibernator"
	"hibernator/internal/policy"
	"hibernator/internal/raid"
	"hibernator/internal/sim"
)

// secondsPerYear converts the fault-acceleration clock (Julian year).
const secondsPerYear = 365.25 * 86400

// ArraySpec is one array's place in the fleet: disk family and vintage,
// shape, scheme, and the admission plan's power-cap verdict. Specs are a
// pure function of (fleet seed, index) via SampleArray, so growing a
// fleet from N to N+k arrays leaves arrays 0..N-1 bit-identical — the
// property the router's stability contract builds on.
type ArraySpec struct {
	Index int

	Family   string  // diskmodel family: "enterprise" | "sff"
	Levels   int     // RPM levels before any cap
	AgeYears float64 // deployment vintage, in years before the run

	Scheme     string // hibernator | drpm | tpm
	Groups     int
	GroupDisks int
	Spares     int
	RAID       string // raid1 | raid5
	CacheMB    int64
	RespGoalMs float64

	// Seed is the per-array simulation seed (decoupled from the shape
	// draws, like the chaos generator's).
	Seed int64

	// Capped is set by the admission plan: a capped array's spec is
	// truncated to the lowest RPM level for the whole run.
	Capped bool

	// FailStops is the vintage-driven fail-stop timeline sampled for this
	// array (already valid: member disks only, inside the run horizon).
	FailStops []fault.Event
	// TransientProb is the vintage-scaled ambient per-op error rate.
	TransientProb float64
}

// MemberDisks returns the data-holding drives (excluding spares).
func (a *ArraySpec) MemberDisks() int { return a.Groups * a.GroupDisks }

// TotalDisks returns every drive the array creates (members + spares).
func (a *ArraySpec) TotalDisks() int { return a.MemberDisks() + a.Spares }

// Weight is the router's capacity weight (proportional tenant share).
func (a *ArraySpec) Weight() float64 { return float64(a.MemberDisks()) }

// String renders the spec's shape on one line (for reports).
func (a *ArraySpec) String() string {
	s := fmt.Sprintf("array %d: %s/%s levels=%d age=%.1fy %dx%d %s spares=%d cache=%dMB goal=%gms",
		a.Index, a.Scheme, a.Family, a.Levels, a.AgeYears,
		a.Groups, a.GroupDisks, a.RAID, a.Spares, a.CacheMB, a.RespGoalMs)
	if a.Capped {
		s += " CAPPED"
	}
	return s
}

// SampleArray draws the index-th array of a fleet seeded with seed. The
// result is a pure function of (seed, index): fleet parallelism, tenant
// routing and fleet growth cannot change what an index samples to.
// Duration-dependent quantities (the fail-stop timeline) are sampled
// later, in sampleFaults, from the same per-array stream.
func SampleArray(seed int64, index int) ArraySpec {
	rng := rand.New(rand.NewSource(mix3(seed, int64(index), 0xA11A7)))
	a := ArraySpec{
		Index: index,
		Seed:  int64(rng.Uint64() >> 1),
	}
	if rng.Intn(4) == 0 {
		a.Family = "sff"
	} else {
		a.Family = "enterprise"
	}
	a.Levels = 2 + rng.Intn(4)
	a.AgeYears = choiceF(rng, []float64{0.5, 1, 1.5, 2, 3, 4, 5})
	a.Scheme = choiceS(rng, []string{"hibernator", "hibernator", "hibernator", "drpm", "tpm"})
	a.RAID = choiceS(rng, []string{"raid5", "raid5", "raid1"})
	a.Groups = 2 + rng.Intn(3)
	if a.RAID == "raid1" {
		a.GroupDisks = 2 * (1 + rng.Intn(2))
	} else {
		a.GroupDisks = 4 + rng.Intn(3)
	}
	a.Spares = 1 + rng.Intn(2)
	a.CacheMB = int64(choice(rng, []int{16, 64, 256}))
	a.RespGoalMs = choiceF(rng, []float64{15, 30})
	return a
}

// sampleFaults derives the vintage fault pressure for the run horizon:
// the ambient transient rate scales with the family AFR at the array's
// age, and fail-stop deaths arrive Poisson with rate
// AFR × member disks × accelerated exposure, capped at the spare count
// so every death can rebuild. The draw is a pure function of
// (seed, index, duration, accel).
func (a *ArraySpec) sampleFaults(seed int64, duration, accel float64) {
	curve, ok := diskmodel.FamilyAFR(a.Family)
	if !ok {
		return
	}
	afr := curve.At(a.AgeYears)
	a.TransientProb = snap6(0.0002 * afr / 0.01)
	if a.TransientProb > 0.002 {
		a.TransientProb = 0.002
	}
	rng := rand.New(rand.NewSource(mix3(seed, int64(a.Index), 0xFA117)))
	exposureYears := duration * accel / secondsPerYear
	lambda := afr * float64(a.MemberDisks()) * exposureYears
	n := poisson(rng, lambda)
	if n > a.Spares {
		n = a.Spares
	}
	a.FailStops = a.FailStops[:0]
	for i := 0; i < n; i++ {
		a.FailStops = append(a.FailStops, fault.Event{
			Kind: fault.FailStop,
			Time: snap3(rng.Float64() * 0.8 * duration),
			Disk: rng.Intn(a.MemberDisks()),
		})
	}
}

// familySpec builds the disk model for the family and level count.
func familySpec(family string, levels int) (diskmodel.Spec, error) {
	switch family {
	case "enterprise":
		if levels > 1 {
			return diskmodel.MultiSpeedUltrastar(levels, 3000), nil
		}
		return diskmodel.SingleSpeedUltrastar(), nil
	case "sff":
		return diskmodel.MultiSpeedSFF(levels, 1800), nil
	}
	return diskmodel.Spec{}, fmt.Errorf("fleet: unknown disk family %q", family)
}

// raidLevel maps the textual RAID level.
func raidLevel(name string) (raid.Level, error) {
	switch name {
	case "raid1":
		return raid.RAID1, nil
	case "raid5":
		return raid.RAID5, nil
	}
	return 0, fmt.Errorf("fleet: unknown RAID level %q", name)
}

// simConfig translates the spec into a sim.Config, applying the power
// cap (spec truncation) and the vintage fault schedule.
func (a *ArraySpec) simConfig(cfg *Config) (sim.Config, error) {
	spec, err := familySpec(a.Family, a.Levels)
	if err != nil {
		return sim.Config{}, err
	}
	if a.Capped {
		spec = spec.Truncate(1)
	}
	lvl, err := raidLevel(a.RAID)
	if err != nil {
		return sim.Config{}, err
	}
	a.sampleFaults(cfg.Seed, cfg.Duration, cfg.FaultAccel)
	out := sim.Config{
		Spec:               spec,
		Groups:             a.Groups,
		GroupDisks:         a.GroupDisks,
		Level:              lvl,
		ExtentBytes:        64 << 20,
		SpareDisks:         a.Spares,
		CacheBytes:         a.CacheMB << 20,
		RespGoal:           a.RespGoalMs / 1000,
		Seed:               a.Seed,
		ExpectedRotLatency: true,
		Workers:            cfg.SimWorkers,
		Context:            cfg.Context,
		Retry: array.RetryPolicy{
			MaxRetries:    2,
			Backoff:       0.01,
			BackoffFactor: 2,
			OpDeadline:    0.25,
			SuspectAfter:  8,
			EvictAfter:    100,
			AutoRebuild:   true,
		},
	}
	if len(a.FailStops) > 0 || a.TransientProb > 0 {
		out.Faults = &fault.Schedule{
			Events: append([]fault.Event(nil), a.FailStops...),
			Rates:  fault.Rates{TransientProb: a.TransientProb},
		}
	}
	return out, nil
}

// controller builds the array's policy; duration sizes the hibernator
// re-planning epoch (a quarter of the run, the chaos generator's default).
func (a *ArraySpec) controller(duration float64) (sim.Controller, error) {
	switch a.Scheme {
	case "hibernator":
		return hibernator.New(hibernator.Options{Epoch: 0.25 * duration}), nil
	case "drpm":
		return policy.NewDRPM(), nil
	case "tpm":
		return policy.NewTPM(0), nil
	}
	return nil, fmt.Errorf("fleet: unknown scheme %q", a.Scheme)
}

// poisson draws from Poisson(lambda) by inversion; exact for the small
// rates the vintage model produces.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	u := rng.Float64()
	p := math.Exp(-lambda)
	cum := p
	k := 0
	for u > cum && k < 64 {
		k++
		p *= lambda / float64(k)
		cum += p
	}
	return k
}

// snap3 quantizes to milliseconds (stable through float formatting).
func snap3(t float64) float64 { return float64(int64(t*1000)) / 1000 }

// snap6 quantizes to 1e-6 (ambient probabilities).
func snap6(t float64) float64 { return float64(int64(t*1e6)) / 1e6 }

func choice(rng *rand.Rand, xs []int) int          { return xs[rng.Intn(len(xs))] }
func choiceF(rng *rand.Rand, xs []float64) float64 { return xs[rng.Intn(len(xs))] }
func choiceS(rng *rand.Rand, xs []string) string   { return xs[rng.Intn(len(xs))] }

// mix3 derives an RNG seed from (seed, a, b) with splitmix64 steps, so
// neighboring indices and distinct draw domains get uncorrelated streams.
func mix3(seed, a, b int64) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(a)*0xbf58476d1ce4e5b9 + uint64(b) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64((z ^ (z >> 31)) >> 1)
}
