package fault

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// The schedule file format is line-oriented CSV. Blank lines and lines
// starting with '#' are ignored. Each record is
//
//	time,disk,kind[,args...]
//
// with kind-specific arguments:
//
//	t,d,failstop                    kill disk d at time t
//	t,d,failslow,factor[,ramp]      ramp to factor-times-slower over ramp s
//	t,d,transient,prob[,duration]   per-op error burst (0 duration = forever)
//	t,d,latent,lo,hi                unreadable byte range [lo,hi)
//	t,d,spinfail,prob[,retries]     spin-up failures with bounded retries
//
// Times are simulated seconds; disks are global disk IDs.
//
// Parsing is strict: times must be finite and non-negative, disk IDs
// non-negative, every present argument must parse, and trailing extra
// arguments are rejected. Malformed input is a structured error carrying
// the line number — never a panic and never a silently-absurd schedule.

// maxLineBytes bounds one schedule line; anything longer is malformed
// input, reported as an error instead of a scanner blow-up.
const maxLineBytes = 64 << 10

// Load reads a schedule file (see the package file-format comment).
func Load(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Parse reads schedule records from r.
func Parse(r io.Reader) (*Schedule, error) {
	s := &Schedule{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxLineBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := ParseEvent(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		s.Events = append(s.Events, ev)
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return nil, fmt.Errorf("line %d: line exceeds %d bytes", lineNo+1, maxLineBytes)
		}
		return nil, err
	}
	return s, nil
}

// finite parses a float and rejects NaN and infinities.
func finite(s, what string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("bad %s %q", what, s)
	}
	return v, nil
}

// ParseEvent parses one schedule record ("time,disk,kind[,args...]", see
// the package file-format comment). It is the inverse of Event.Format.
func ParseEvent(line string) (Event, error) {
	var ev Event
	fields := strings.Split(line, ",")
	for i := range fields {
		fields[i] = strings.TrimSpace(fields[i])
	}
	if len(fields) < 3 {
		return ev, fmt.Errorf("want time,disk,kind[,args], got %q", line)
	}
	t, err := finite(fields[0], "time")
	if err != nil {
		return ev, err
	}
	if t < 0 {
		return ev, fmt.Errorf("negative time %q", fields[0])
	}
	disk, err := strconv.Atoi(fields[1])
	if err != nil || disk < 0 {
		return ev, fmt.Errorf("bad disk %q", fields[1])
	}
	ev.Time, ev.Disk = t, disk

	args := fields[3:]
	// argRange enforces the kind's argument count before parsing: missing
	// required arguments and unexpected trailing ones are both errors.
	argRange := func(min, max int) error {
		if len(args) < min {
			return fmt.Errorf("%s: want at least %d argument(s), got %d", fields[2], min, len(args))
		}
		if len(args) > max {
			return fmt.Errorf("%s: want at most %d argument(s), got %d", fields[2], max, len(args))
		}
		return nil
	}
	num := func(i int, name string) (float64, error) {
		v, err := finite(args[i], name)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", fields[2], err)
		}
		return v, nil
	}
	// optional parses argument i when present; absent arguments default to
	// zero, but a present-and-malformed one is an error, not a silent zero.
	optional := func(i int, name string) (float64, error) {
		if i >= len(args) {
			return 0, nil
		}
		return num(i, name)
	}

	switch fields[2] {
	case "failstop":
		ev.Kind = FailStop
		if err := argRange(0, 0); err != nil {
			return ev, err
		}
	case "failslow":
		ev.Kind = FailSlow
		if err := argRange(1, 2); err != nil {
			return ev, err
		}
		if ev.Factor, err = num(0, "factor"); err != nil {
			return ev, err
		}
		if ev.Ramp, err = optional(1, "ramp"); err != nil {
			return ev, err
		}
	case "transient":
		ev.Kind = TransientBurst
		if err := argRange(1, 2); err != nil {
			return ev, err
		}
		if ev.Prob, err = num(0, "prob"); err != nil {
			return ev, err
		}
		if ev.Duration, err = optional(1, "duration"); err != nil {
			return ev, err
		}
	case "latent":
		ev.Kind = Latent
		if err := argRange(2, 2); err != nil {
			return ev, err
		}
		lo, err := num(0, "lo")
		if err != nil {
			return ev, err
		}
		hi, err := num(1, "hi")
		if err != nil {
			return ev, err
		}
		ev.Lo, ev.Hi = int64(lo), int64(hi)
	case "spinfail":
		ev.Kind = SpinUpFail
		if err := argRange(1, 2); err != nil {
			return ev, err
		}
		if ev.Prob, err = num(0, "prob"); err != nil {
			return ev, err
		}
		r, err := optional(1, "retries")
		if err != nil {
			return ev, err
		}
		ev.Retries = int(r)
	default:
		return ev, fmt.Errorf("unknown fault kind %q", fields[2])
	}
	return ev, nil
}

// Format renders the event as one schedule line, the inverse of
// ParseEvent: Format then ParseEvent round-trips exactly.
func (ev Event) Format() string {
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	head := fmt.Sprintf("%s,%d,%s", g(ev.Time), ev.Disk, ev.Kind)
	switch ev.Kind {
	case FailStop:
		return head
	case FailSlow:
		return fmt.Sprintf("%s,%s,%s", head, g(ev.Factor), g(ev.Ramp))
	case TransientBurst:
		return fmt.Sprintf("%s,%s,%s", head, g(ev.Prob), g(ev.Duration))
	case Latent:
		return fmt.Sprintf("%s,%d,%d", head, ev.Lo, ev.Hi)
	case SpinUpFail:
		return fmt.Sprintf("%s,%s,%d", head, g(ev.Prob), ev.Retries)
	}
	return head
}
