package fault

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The schedule file format is line-oriented CSV. Blank lines and lines
// starting with '#' are ignored. Each record is
//
//	time,disk,kind[,args...]
//
// with kind-specific arguments:
//
//	t,d,failstop                    kill disk d at time t
//	t,d,failslow,factor[,ramp]      ramp to factor-times-slower over ramp s
//	t,d,transient,prob[,duration]   per-op error burst (0 duration = forever)
//	t,d,latent,lo,hi                unreadable byte range [lo,hi)
//	t,d,spinfail,prob[,retries]     spin-up failures with bounded retries
//
// Times are simulated seconds; disks are global disk IDs.

// Load reads a schedule file (see the package file-format comment).
func Load(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Parse reads schedule records from r.
func Parse(r io.Reader) (*Schedule, error) {
	s := &Schedule{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		s.Events = append(s.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseLine(line string) (Event, error) {
	var ev Event
	fields := strings.Split(line, ",")
	for i := range fields {
		fields[i] = strings.TrimSpace(fields[i])
	}
	if len(fields) < 3 {
		return ev, fmt.Errorf("want time,disk,kind[,args], got %q", line)
	}
	t, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return ev, fmt.Errorf("bad time %q", fields[0])
	}
	disk, err := strconv.Atoi(fields[1])
	if err != nil {
		return ev, fmt.Errorf("bad disk %q", fields[1])
	}
	ev.Time, ev.Disk = t, disk

	args := fields[3:]
	num := func(i int, name string) (float64, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("%s: missing %s", fields[2], name)
		}
		v, err := strconv.ParseFloat(args[i], 64)
		if err != nil {
			return 0, fmt.Errorf("%s: bad %s %q", fields[2], name, args[i])
		}
		return v, nil
	}
	optional := func(i int) float64 {
		if i >= len(args) {
			return 0
		}
		v, _ := strconv.ParseFloat(args[i], 64)
		return v
	}

	switch fields[2] {
	case "failstop":
		ev.Kind = FailStop
	case "failslow":
		ev.Kind = FailSlow
		if ev.Factor, err = num(0, "factor"); err != nil {
			return ev, err
		}
		ev.Ramp = optional(1)
	case "transient":
		ev.Kind = TransientBurst
		if ev.Prob, err = num(0, "prob"); err != nil {
			return ev, err
		}
		ev.Duration = optional(1)
	case "latent":
		ev.Kind = Latent
		lo, err := num(0, "lo")
		if err != nil {
			return ev, err
		}
		hi, err := num(1, "hi")
		if err != nil {
			return ev, err
		}
		ev.Lo, ev.Hi = int64(lo), int64(hi)
	case "spinfail":
		ev.Kind = SpinUpFail
		if ev.Prob, err = num(0, "prob"); err != nil {
			return ev, err
		}
		ev.Retries = int(optional(1))
	default:
		return ev, fmt.Errorf("unknown fault kind %q", fields[2])
	}
	return ev, nil
}
