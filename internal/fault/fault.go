// Package fault injects faults into a simulated array on a deterministic
// timeline. A Schedule combines scripted events (fail-stop at t, fail-slow
// ramp from t, a transient-error burst, a latent sector range, spin-up
// failure) with ambient random rates applied to every disk; both ride the
// simulation clock and the per-disk fault RNGs, so the same seed and
// schedule replay the exact same fault sequence at any parallelism.
//
// The package deliberately sits above diskmodel and array: disks own the
// fault mechanisms (see diskmodel/faults.go), the array owns the reaction
// (retry/timeout/eviction, see array/retry.go), and this package only
// decides when and where faults strike.
package fault

import (
	"fmt"
	"math"

	"hibernator/internal/array"
	"hibernator/internal/simevent"
)

// inUnit reports whether p is a probability: in [0,1] and not NaN.
func inUnit(p float64) bool { return p >= 0 && p <= 1 }

// Kind enumerates the scripted fault types.
type Kind int

const (
	// FailStop kills the disk outright at Time (the array serves it in
	// degraded mode; with AutoRebuild a spare takes over).
	FailStop Kind = iota
	// FailSlow ramps the disk's positioning and transfer times up to
	// Factor-times-normal over Ramp seconds starting at Time.
	FailSlow
	// TransientBurst sets the disk's per-op error probability to Prob at
	// Time; with Duration > 0 it falls back to the ambient rate afterwards.
	TransientBurst
	// Latent pins an unreadable LBA range [Lo, Hi) at Time; overlapping
	// writes repair it.
	Latent
	// SpinUpFail arms spin-up failure: each spin-up attempt fails with
	// Prob, and after Retries failed retries the disk dies.
	SpinUpFail
)

var kindNames = map[Kind]string{
	FailStop:       "failstop",
	FailSlow:       "failslow",
	TransientBurst: "transient",
	Latent:         "latent",
	SpinUpFail:     "spinfail",
}

// String returns the short lower-case name used in logs and traces.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scripted fault.
type Event struct {
	Time float64 // absolute simulated seconds
	Disk int     // global disk ID (array members and spares)
	Kind Kind

	Prob     float64 // TransientBurst, SpinUpFail: probability
	Duration float64 // TransientBurst: burst length; 0 = permanent
	Factor   float64 // FailSlow: terminal slowdown multiplier (> 1)
	Ramp     float64 // FailSlow: seconds from onset to full Factor
	Lo, Hi   int64   // Latent: byte range [Lo, Hi)
	Retries  int     // SpinUpFail: bounded retries before giving up
}

// Rates are ambient random fault rates armed on every disk at t = 0.
// They compose with scripted events: a TransientBurst overrides the
// ambient probability for its duration and then restores it.
type Rates struct {
	// TransientProb is the steady per-op transient error probability.
	TransientProb float64
	// SpinUpFailProb and SpinUpRetries arm ambient spin-up failure.
	SpinUpFailProb float64
	SpinUpRetries  int
}

func (r Rates) zero() bool {
	return r.TransientProb == 0 && r.SpinUpFailProb == 0
}

// Stats counts what a Schedule actually did during a run.
type Stats struct {
	Injected int // events applied
	Skipped  int // events refused (e.g. fail-stop that would lose data)
}

// Schedule is a deterministic fault timeline plus ambient rates. The zero
// value (and nil) is a valid empty schedule: arming it does nothing.
type Schedule struct {
	Events []Event
	Rates  Rates

	stats Stats
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool {
	return s == nil || (len(s.Events) == 0 && s.Rates.zero())
}

// Stats returns the injection counters (valid after the run).
func (s *Schedule) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return s.stats
}

// Validate checks the schedule against an array: every event must target
// an existing disk and carry sane parameters.
func (s *Schedule) Validate(arr *array.Array) error {
	if s == nil {
		return nil
	}
	if !inUnit(s.Rates.TransientProb) {
		return fmt.Errorf("fault: ambient transient probability %v outside [0,1]", s.Rates.TransientProb)
	}
	if !inUnit(s.Rates.SpinUpFailProb) {
		return fmt.Errorf("fault: ambient spin-up failure probability %v outside [0,1]", s.Rates.SpinUpFailProb)
	}
	for i, ev := range s.Events {
		if ev.Time < 0 || math.IsNaN(ev.Time) || math.IsInf(ev.Time, 0) {
			return fmt.Errorf("fault: event %d at invalid time %v", i, ev.Time)
		}
		if arr.DiskByID(ev.Disk) == nil {
			return fmt.Errorf("fault: event %d targets unknown disk %d", i, ev.Disk)
		}
		switch ev.Kind {
		case FailStop:
			// no parameters
		case FailSlow:
			if !(ev.Factor > 1) || math.IsInf(ev.Factor, 0) {
				return fmt.Errorf("fault: event %d fail-slow factor %v must exceed 1 and be finite", i, ev.Factor)
			}
			if ev.Ramp < 0 || math.IsNaN(ev.Ramp) || math.IsInf(ev.Ramp, 0) {
				return fmt.Errorf("fault: event %d invalid ramp %v", i, ev.Ramp)
			}
		case TransientBurst:
			if !inUnit(ev.Prob) {
				return fmt.Errorf("fault: event %d probability %v outside [0,1]", i, ev.Prob)
			}
			if ev.Duration < 0 || math.IsNaN(ev.Duration) || math.IsInf(ev.Duration, 0) {
				return fmt.Errorf("fault: event %d invalid duration %v", i, ev.Duration)
			}
		case Latent:
			if ev.Lo < 0 || ev.Hi <= ev.Lo {
				return fmt.Errorf("fault: event %d invalid latent range [%d,%d)", i, ev.Lo, ev.Hi)
			}
		case SpinUpFail:
			if !inUnit(ev.Prob) {
				return fmt.Errorf("fault: event %d probability %v outside [0,1]", i, ev.Prob)
			}
			if ev.Retries < 0 {
				return fmt.Errorf("fault: event %d negative retries %d", i, ev.Retries)
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, int(ev.Kind))
		}
	}
	return nil
}

// Arm validates the schedule and registers every injection on the engine.
// Ambient rates take effect immediately; scripted events fire at their
// timestamps. Call once, before the run starts.
func (s *Schedule) Arm(e *simevent.Engine, arr *array.Array) error {
	if s.Empty() {
		return nil
	}
	if err := s.Validate(arr); err != nil {
		return err
	}
	if !s.Rates.zero() {
		for _, d := range arr.Disks() {
			if s.Rates.TransientProb > 0 {
				d.SetTransientErrorProb(s.Rates.TransientProb)
			}
			if s.Rates.SpinUpFailProb > 0 {
				d.SetSpinUpFailure(s.Rates.SpinUpFailProb, s.Rates.SpinUpRetries)
			}
		}
	}
	for _, ev := range s.Events {
		ev := ev
		e.At(ev.Time, func() { s.apply(e, arr, ev) })
	}
	return nil
}

// apply performs one scripted injection at its firing time.
func (s *Schedule) apply(e *simevent.Engine, arr *array.Array, ev Event) {
	d := arr.DiskByID(ev.Disk)
	if d == nil {
		s.stats.Skipped++ // disk left the array (evicted and replaced)
		return
	}
	switch ev.Kind {
	case FailStop:
		if gi, di, ok := arr.LocateDisk(ev.Disk); ok {
			// Refusals (second failure in a protection domain, already
			// failed) are skipped, not fatal: a storm may legitimately
			// aim two failures at one group and only land the first.
			if err := arr.FailDisk(gi, di); err != nil {
				s.stats.Skipped++
				return
			}
		} else {
			d.Fail() // a spare: no group bookkeeping to maintain
		}
	case FailSlow:
		d.SetFailSlow(ev.Time, ev.Ramp, ev.Factor)
	case TransientBurst:
		d.SetTransientErrorProb(ev.Prob)
		if ev.Duration > 0 {
			ambient := s.Rates.TransientProb
			e.At(ev.Time+ev.Duration, func() {
				if cur := arr.DiskByID(ev.Disk); cur != nil {
					cur.SetTransientErrorProb(ambient)
				}
			})
		}
	case Latent:
		d.AddLatentRange(ev.Lo, ev.Hi)
	case SpinUpFail:
		d.SetSpinUpFailure(ev.Prob, ev.Retries)
	}
	s.stats.Injected++
}
