package fault

import (
	"strings"
	"testing"

	"hibernator/internal/array"
	"hibernator/internal/diskmodel"
	"hibernator/internal/raid"
	"hibernator/internal/simevent"
)

func testArray(t *testing.T) (*simevent.Engine, *array.Array) {
	t.Helper()
	e := simevent.New()
	spec := diskmodel.MultiSpeedUltrastar(1, 0)
	a, err := array.New(array.Config{
		Engine: e, Spec: &spec, Groups: 2, GroupDisks: 4, Level: raid.RAID5,
		ExtentBytes: 64 << 20, SpareDisks: 1, Seed: 11, ExpectedRotLatency: true,
		Retry: array.RetryPolicy{MaxRetries: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, a
}

func TestParseSchedule(t *testing.T) {
	in := `
# fault storm
100,3,failstop
0.5, 1, transient, 0.2, 30
200,5,failslow,4,600
10,2,latent,4096,8192
50,0,spinfail,0.5,3
`
	s, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 5 {
		t.Fatalf("parsed %d events, want 5", len(s.Events))
	}
	want := []Event{
		{Time: 100, Disk: 3, Kind: FailStop},
		{Time: 0.5, Disk: 1, Kind: TransientBurst, Prob: 0.2, Duration: 30},
		{Time: 200, Disk: 5, Kind: FailSlow, Factor: 4, Ramp: 600},
		{Time: 10, Disk: 2, Kind: Latent, Lo: 4096, Hi: 8192},
		{Time: 50, Disk: 0, Kind: SpinUpFail, Prob: 0.5, Retries: 3},
	}
	for i, w := range want {
		if s.Events[i] != w {
			t.Errorf("event %d = %+v, want %+v", i, s.Events[i], w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"1,2",                  // too few fields
		"x,2,failstop",         // bad time
		"1,y,failstop",         // bad disk
		"1,2,exploding",        // unknown kind
		"1,2,failslow",         // missing factor
		"1,2,latent,100",       // missing hi
		"1,2,transient,notnum", // bad prob
	} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) accepted bad input", in)
		}
	}
}

func TestValidateRejectsBadTargetsAndParams(t *testing.T) {
	_, a := testArray(t)
	for _, s := range []*Schedule{
		{Events: []Event{{Time: 1, Disk: 99, Kind: FailStop}}},
		{Events: []Event{{Time: -1, Disk: 0, Kind: FailStop}}},
		{Events: []Event{{Time: 1, Disk: 0, Kind: FailSlow, Factor: 0.5}}},
		{Events: []Event{{Time: 1, Disk: 0, Kind: TransientBurst, Prob: 2}}},
		{Events: []Event{{Time: 1, Disk: 0, Kind: Latent, Lo: 10, Hi: 10}}},
		{Rates: Rates{TransientProb: 1.5}},
	} {
		if err := s.Validate(a); err == nil {
			t.Errorf("Validate accepted %+v", s)
		}
	}
	if err := (&Schedule{}).Validate(a); err != nil {
		t.Errorf("empty schedule must validate: %v", err)
	}
}

func TestArmFailStopAndSkipsRefused(t *testing.T) {
	e, a := testArray(t)
	s := &Schedule{Events: []Event{
		{Time: 1, Disk: 0, Kind: FailStop},
		{Time: 2, Disk: 2, Kind: FailStop}, // same RAID5 group: refused
		{Time: 3, Disk: 4, Kind: FailStop}, // other group: lands
	}}
	if err := s.Arm(e, a); err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if got := a.DiskFailures(); got != 2 {
		t.Fatalf("disk failures = %d, want 2", got)
	}
	st := s.Stats()
	if st.Injected != 2 || st.Skipped != 1 {
		t.Fatalf("stats = %+v, want 2 injected / 1 skipped", st)
	}
	if !a.Groups()[0].Degraded() || !a.Groups()[1].Degraded() {
		t.Fatal("both groups must be degraded")
	}
}

func TestBurstRestoresAmbientRate(t *testing.T) {
	e, a := testArray(t)
	s := &Schedule{
		Rates:  Rates{TransientProb: 0.01},
		Events: []Event{{Time: 5, Disk: 1, Kind: TransientBurst, Prob: 0.5, Duration: 10}},
	}
	if err := s.Arm(e, a); err != nil {
		t.Fatal(err)
	}
	d := a.DiskByID(1)
	if got := d.TransientErrorProb(); got != 0.01 {
		t.Fatalf("ambient prob before burst = %v, want 0.01", got)
	}
	e.Run(6)
	if got := d.TransientErrorProb(); got != 0.5 {
		t.Fatalf("prob during burst = %v, want 0.5", got)
	}
	e.Run(16)
	if got := d.TransientErrorProb(); got != 0.01 {
		t.Fatalf("prob after burst = %v, want ambient 0.01", got)
	}
	// Every other disk keeps the ambient rate throughout.
	if got := a.DiskByID(3).TransientErrorProb(); got != 0.01 {
		t.Fatalf("bystander prob = %v, want 0.01", got)
	}
}

func TestEmptyScheduleIsNoOp(t *testing.T) {
	e, a := testArray(t)
	var s *Schedule
	if !s.Empty() {
		t.Fatal("nil schedule must be empty")
	}
	if err := s.Arm(e, a); err != nil {
		t.Fatal(err)
	}
	if err := (&Schedule{}).Arm(e, a); err != nil {
		t.Fatal(err)
	}
	for _, d := range a.Disks() {
		if d.TransientErrorProb() != 0 {
			t.Fatal("no disk may be armed by an empty schedule")
		}
	}
}

func TestFailSlowEventEngages(t *testing.T) {
	e, a := testArray(t)
	s := &Schedule{Events: []Event{{Time: 2, Disk: 0, Kind: FailSlow, Factor: 3, Ramp: 4}}}
	if err := s.Arm(e, a); err != nil {
		t.Fatal(err)
	}
	d := a.DiskByID(0)
	e.Run(2)
	if f := d.SlowFactor(); f != 1 {
		t.Fatalf("factor at onset = %v, want 1", f)
	}
	e.Run(4) // mid-ramp: 2 s into a 4 s ramp to 3x
	if f := d.SlowFactor(); f != 2 {
		t.Fatalf("mid-ramp factor = %v, want 2", f)
	}
	e.Run(10)
	if f := d.SlowFactor(); f != 3 {
		t.Fatalf("terminal factor = %v, want 3", f)
	}
}
