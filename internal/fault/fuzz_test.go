package fault

import (
	"strings"
	"testing"
)

// FuzzParseEvent holds the fault-CSV line parser to two properties: no
// panic on any input, and anything it accepts round-trips exactly through
// Event.Format (the repro-file writer depends on that inverse).
func FuzzParseEvent(f *testing.F) {
	// Valid anchors, one per kind and optional-argument arity.
	f.Add("10,0,failstop")
	f.Add("10,1,failslow,4")
	f.Add("10,1,failslow,4,30")
	f.Add("5.5,2,transient,0.2")
	f.Add("5.5,2,transient,0.2,60")
	f.Add("1,3,latent,1000,2000")
	f.Add("7,0,spinfail,0.5")
	f.Add("7,0,spinfail,0.5,2")
	// Nasty corpus: NaN/Inf fields, negatives, overflow, missing and
	// extra arguments, whitespace, empty fields, huge numbers.
	f.Add("NaN,0,failstop")
	f.Add("+Inf,0,failstop")
	f.Add("-1,0,failstop")
	f.Add("10,-1,failstop")
	f.Add("10,0,failslow,NaN")
	f.Add("10,0,failslow,0.5")
	f.Add("10,0,transient,1.5")
	f.Add("10,0,latent,5,-5")
	f.Add("10,0,latent,9223372036854775808,1")
	f.Add("10,0,failstop,extra")
	f.Add("10,0,spinfail,0.5,2,9")
	f.Add("10,0,")
	f.Add(",,,")
	f.Add("10, 0 , failstop ")
	f.Add("1e309,0,failstop")

	f.Fuzz(func(t *testing.T, line string) {
		ev, err := ParseEvent(line)
		if err != nil {
			return
		}
		out := ev.Format()
		ev2, err := ParseEvent(out)
		if err != nil {
			t.Fatalf("Format output %q does not re-parse: %v (from %q)", out, err, line)
		}
		if ev2 != ev {
			t.Fatalf("round trip changed the event:\n%+v\nvs\n%+v (line %q)", ev, ev2, line)
		}
	})
}

// FuzzParse feeds whole CSV schedules: never panic, and errors must carry
// a line number so hand-written schedules are debuggable.
func FuzzParse(f *testing.F) {
	f.Add("# schedule\n10,0,failstop\n20,1,failslow,4,30\n")
	f.Add("10,0,failstop\r\n")
	f.Add("\n\n\n")
	f.Add("10,0,failstop\nNaN,1,failstop\n")
	f.Add("10,0,latent,1,2\n10,0,spinfail,2\n")
	f.Add(strings.Repeat("1,0,failstop\n", 100))

	f.Fuzz(func(t *testing.T, in string) {
		sched, err := Parse(strings.NewReader(in))
		if err != nil {
			if !strings.Contains(err.Error(), "line") {
				t.Fatalf("error without a line number: %v", err)
			}
			return
		}
		// Parse is the syntax layer; each accepted event must still
		// round-trip through its canonical rendering.
		for _, ev := range sched.Events {
			ev2, err := ParseEvent(ev.Format())
			if err != nil || ev2 != ev {
				t.Fatalf("event %+v does not round-trip: %+v, %v", ev, ev2, err)
			}
		}
	})
}
