package sim_test

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"hibernator/internal/invariant"
	"hibernator/internal/policy"
	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

// TestConcurrentRunsShareOnResponse runs several simulations at once, all
// installing the SAME OnResponse closure (per-run state like the invariant
// checker stays per-run). Under -race this proves the hook plumbing adds no
// hidden shared state: each run must reproduce the serial reference
// exactly, each checker must come up clean, and the shared counter must see
// every foreground completion from every run.
func TestConcurrentRunsShareOnResponse(t *testing.T) {
	const duration = 600
	const runs = 4

	// Serial reference: result plus the deterministic per-run completion
	// count the shared hook should observe.
	var perRun uint64
	refCfg := parallelConfig(7, 2)
	refCfg.OnResponse = func(_ trace.Request, _ float64) { perRun++ }
	ref, err := sim.Run(refCfg, parallelSource(t, refCfg, duration), policy.NewTPM(5), duration)
	if err != nil {
		t.Fatal(err)
	}
	if perRun == 0 {
		t.Fatal("reference run completed no foreground requests; test exercises nothing")
	}

	var total atomic.Uint64
	shared := func(_ trace.Request, _ float64) { total.Add(1) }

	results := make([]*sim.Result, runs)
	checkers := make([]*invariant.Checker, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := parallelConfig(7, 1+i%3) // mix sequential and partitioned engines
			cfg.OnResponse = shared
			checkers[i] = invariant.New()
			cfg.Invariants = checkers[i]
			res, err := sim.Run(cfg, parallelSource(t, cfg, duration), policy.NewTPM(5), duration)
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	for i, res := range results {
		if res == nil {
			t.Fatalf("run %d produced no result", i)
		}
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("run %d diverged from the serial reference", i)
		}
		checkers[i].Finish(duration)
		if !checkers[i].Ok() {
			t.Errorf("run %d: %d invariant violations, first: %s",
				i, checkers[i].Count(), checkers[i].Violations()[0].String())
		}
	}
	if got := total.Load(); got != perRun*runs {
		t.Fatalf("shared OnResponse saw %d completions, want %d (%d runs x %d)",
			got, perRun*runs, runs, perRun)
	}
}
