package sim

import (
	"strconv"

	"hibernator/internal/array"
	"hibernator/internal/cache"
	"hibernator/internal/obs"
	"hibernator/internal/simevent"
)

// obsSampler owns the run's metrics instruments and snapshots them on its
// sampling ticker. It exists only when cfg.Metrics is non-nil; a nil
// sampler keeps the disabled-run hot path free of observability work, so
// unobserved runs stay byte-identical to builds without the layer.
type obsSampler struct {
	cfg    *Config
	env    *Env
	arr    *array.Array
	engine *simevent.Engine
	parts  []*simevent.Engine // per-group transition partitions (may be nil)
	cache  *cache.Cache

	dist     obs.IntervalDist // foreground response times this interval
	inflight obs.TimeWeighted

	requests   obs.Counter
	respMean   obs.Gauge
	respP95    obs.Gauge
	respP99    obs.Gauge
	windowMean obs.Gauge
	violation  obs.Gauge
	queueDepth obs.Gauge
	cacheHit   obs.Gauge
	energy     obs.Gauge
	events     obs.Gauge

	groupLevel  []obs.Gauge
	groupQueue  []obs.Gauge
	groupEnergy []obs.Gauge
	diskLevel   []obs.Gauge
	diskState   []obs.Gauge

	prevHits, prevMisses uint64
}

// newObsSampler registers the standard instrument set on cfg.Metrics.
// Registration order here is the column order of the exported streams;
// OBSERVABILITY.md documents each name and must move with this function.
func newObsSampler(cfg *Config, env *Env, arr *array.Array, engine *simevent.Engine, parts []*simevent.Engine, ctrlCache *cache.Cache) *obsSampler {
	reg := cfg.Metrics
	s := &obsSampler{cfg: cfg, env: env, arr: arr, engine: engine, parts: parts, cache: ctrlCache}
	s.requests = reg.Counter("requests")
	s.respMean = reg.Gauge("resp_mean_ms")
	s.respP95 = reg.Gauge("resp_p95_ms")
	s.respP99 = reg.Gauge("resp_p99_ms")
	s.windowMean = reg.Gauge("resp_window_mean_ms")
	s.violation = reg.Gauge("goal_violation")
	s.inflight = reg.TimeWeighted("inflight_tw")
	s.queueDepth = reg.Gauge("queue_depth")
	s.cacheHit = reg.Gauge("cache_hit_rate")
	s.energy = reg.Gauge("energy_j")
	s.events = reg.Gauge("events_processed")
	for gi := range arr.Groups() {
		p := "group" + strconv.Itoa(gi)
		s.groupLevel = append(s.groupLevel, reg.Gauge(p+"_level"))
		s.groupQueue = append(s.groupQueue, reg.Gauge(p+"_queue"))
		s.groupEnergy = append(s.groupEnergy, reg.Gauge(p+"_energy_j"))
	}
	for di := range arr.Disks() {
		p := "disk" + strconv.Itoa(di)
		s.diskLevel = append(s.diskLevel, reg.Gauge(p+"_level"))
		s.diskState = append(s.diskState, reg.Gauge(p+"_state"))
	}
	return s
}

// onArrival notes a foreground request entering the system at time now.
func (s *obsSampler) onArrival(now float64) {
	s.inflight.Add(now, 1)
}

// onComplete notes a foreground request leaving the system.
func (s *obsSampler) onComplete(now, lat float64) {
	s.inflight.Add(now, -1)
	s.dist.Observe(lat)
	s.requests.Inc()
}

// sample snapshots every instrument at simulated time now and commits the
// row to the registry.
func (s *obsSampler) sample(now float64) {
	_, mean, p95, p99 := s.dist.Flush()
	s.respMean.Set(mean * 1000)
	s.respP95.Set(p95 * 1000)
	s.respP99.Set(p99 * 1000)
	wmean, n := s.env.RespWindow.Mean(now)
	s.windowMean.Set(wmean * 1000)
	v := 0.0
	if s.cfg.RespGoal > 0 && n > 0 && wmean > s.cfg.RespGoal {
		v = 1
	}
	s.violation.Set(v)
	if s.cache != nil {
		hits, misses, _ := s.cache.Stats()
		dh, dm := hits-s.prevHits, misses-s.prevMisses
		s.prevHits, s.prevMisses = hits, misses
		if dh+dm > 0 {
			s.cacheHit.Set(float64(dh) / float64(dh+dm))
		} else {
			s.cacheHit.Set(0)
		}
	}
	// TotalEnergy closes each disk's state accounting up to now, which is
	// idempotent and safe mid-run; per-disk Energy() is then current too.
	s.energy.Set(s.arr.TotalEnergy())
	processed := s.engine.Processed()
	for _, pe := range s.parts {
		processed += pe.Processed()
	}
	s.events.Set(float64(processed))
	for gi, g := range s.arr.Groups() {
		s.groupLevel[gi].Set(float64(g.Level()))
		q, e := 0, 0.0
		for _, d := range g.Disks() {
			q += d.QueueLen()
			e += d.Energy()
		}
		s.groupQueue[gi].Set(float64(q))
		s.groupEnergy[gi].Set(e)
	}
	// queue_depth sums over every drive ever created (Array.Disks covers
	// members, the spare pool, retired drives and a spare mid-rebuild —
	// the old members+pool split dropped the rebuild target's queue).
	depth := 0
	for di, d := range s.arr.Disks() {
		s.diskLevel[di].Set(float64(d.Level()))
		s.diskState[di].Set(float64(d.State()))
		depth += d.QueueLen()
	}
	s.queueDepth.Set(float64(depth))
	s.cfg.Metrics.Sample(now)
}
