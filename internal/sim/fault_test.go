package sim

import (
	"testing"

	"hibernator/internal/array"
	"hibernator/internal/diskmodel"
	"hibernator/internal/fault"
	"hibernator/internal/raid"
)

func faultConfig(seed int64) Config {
	return Config{
		Spec:               diskmodel.MultiSpeedUltrastar(5, 3000),
		Groups:             2,
		GroupDisks:         4,
		Level:              raid.RAID5,
		ExtentBytes:        64 << 20,
		SpareDisks:         1,
		Seed:               seed,
		ExpectedRotLatency: true,
	}
}

// TestFaultFreeRunIgnoresRetryMachinery: a zero RetryPolicy and nil
// schedule must leave every reported number identical to a config that
// never heard of faults — the machinery is a strict no-op when disabled.
func TestFaultFreeRunIgnoresRetryMachinery(t *testing.T) {
	cfg := faultConfig(3)
	src := oltpSource(t, cfg, 60, 50, 4)
	base, err := Run(cfg, src, &nopController{}, 60)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := faultConfig(3)
	cfg2.Faults = &fault.Schedule{} // empty schedule, armed
	src2 := oltpSource(t, cfg2, 60, 50, 4)
	again, err := Run(cfg2, src2, &nopController{}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if base.MeanResp != again.MeanResp || base.Energy != again.Energy ||
		base.Requests != again.Requests || base.P99Resp != again.P99Resp {
		t.Fatalf("empty fault schedule changed the run: %+v vs %+v", base, again)
	}
	if base.Faults != (FaultSummary{}) {
		t.Fatalf("fault-free run reports fault activity: %+v", base.Faults)
	}
}

// TestFaultRunIsDeterministic: same seed + schedule => identical results,
// including every fault counter.
func TestFaultRunIsDeterministic(t *testing.T) {
	run := func() *Result {
		cfg := faultConfig(7)
		cfg.Retry = array.RetryPolicy{
			MaxRetries: 2, Backoff: 0.005, BackoffFactor: 2, OpDeadline: 1,
			SuspectAfter: 5, EvictAfter: 1000, AutoRebuild: true,
		}
		cfg.Faults = &fault.Schedule{
			Rates: fault.Rates{TransientProb: 0.02},
			Events: []fault.Event{
				{Time: 10, Disk: 1, Kind: fault.TransientBurst, Prob: 0.5, Duration: 10},
				{Time: 20, Disk: 5, Kind: fault.FailSlow, Factor: 4, Ramp: 10},
				{Time: 30, Disk: 2, Kind: fault.FailStop},
			},
		}
		src := oltpSource(t, cfg, 60, 80, 9)
		res, err := Run(cfg, src, &nopController{}, 60)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Faults != b.Faults {
		t.Fatalf("fault counters diverged:\n%+v\n%+v", a.Faults, b.Faults)
	}
	if a.MeanResp != b.MeanResp || a.Energy != b.Energy || a.Requests != b.Requests {
		t.Fatalf("results diverged: %+v vs %+v", a, b)
	}
	if a.Faults.TransientErrs == 0 || a.Faults.Retries == 0 {
		t.Fatalf("fault storm produced no errors/retries: %+v", a.Faults)
	}
	if a.Faults.DiskFailures != 1 || a.Faults.Injected != 3 || a.Faults.SkippedInjections != 0 {
		t.Fatalf("injection accounting wrong: %+v", a.Faults)
	}
	if a.Faults.LostIOs != 0 {
		t.Fatalf("lost %d IOs despite RAID5 + retries", a.Faults.LostIOs)
	}
}

// TestBadScheduleRejected: Run must surface schedule validation errors.
func TestBadScheduleRejected(t *testing.T) {
	cfg := faultConfig(1)
	cfg.Faults = &fault.Schedule{Events: []fault.Event{{Time: 1, Disk: 999, Kind: fault.FailStop}}}
	src := oltpSource(t, cfg, 10, 10, 1)
	if _, err := Run(cfg, src, &nopController{}, 10); err == nil {
		t.Fatal("unknown fault target must fail the run")
	}
}
