package sim_test

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hibernator/internal/policy"
	"hibernator/internal/sim"
	"hibernator/internal/simevent"
)

// sleepController wedges the engine: every simulated second it burns d of
// wall-clock time, which is how a stuck run looks from the outside.
type sleepController struct{ d time.Duration }

func (*sleepController) Name() string { return "sleepy" }

func (s *sleepController) Init(env *sim.Env) {
	simevent.NewTicker(env.Engine, 1.0, func(float64) { time.Sleep(s.d) })
}

// fakeClock returns a time source that advances `step` on every reading.
// Injected via Watchdog.Now it makes elapsed-time limits trip after a
// deterministic number of monitor polls regardless of real scheduler
// timing — the stall and wall-clock tests below cannot flake on a loaded
// machine because they never race against real time.
func fakeClock(step time.Duration) func() time.Time {
	var mu sync.Mutex
	now := time.Unix(0, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(step)
		return now
	}
}

func TestWatchdogEventBudget(t *testing.T) {
	cfg := snapConfig(6, 1, false)
	cfg.Watchdog = &sim.Watchdog{MaxEvents: 2000}
	_, err := sim.Run(cfg, snapSource(t, cfg, 240), policy.NewTPM(5), 240)
	var werr *sim.WatchdogError
	if !errors.As(err, &werr) {
		t.Fatalf("want *sim.WatchdogError, got %v", err)
	}
	if !strings.Contains(werr.Reason, "event budget") {
		t.Fatalf("reason = %q", werr.Reason)
	}
	if werr.Events == 0 {
		t.Fatal("diagnostics missing event count")
	}
}

func TestWatchdogStall(t *testing.T) {
	cfg := snapConfig(6, 1, false)
	cfg.Watchdog = &sim.Watchdog{
		Stall: 50 * time.Millisecond,
		Tick:  time.Millisecond,
		Now:   fakeClock(30 * time.Millisecond),
	}
	_, err := sim.Run(cfg, snapSource(t, cfg, 240), &sleepController{d: 100 * time.Millisecond}, 240)
	var werr *sim.WatchdogError
	if !errors.As(err, &werr) {
		t.Fatalf("want *sim.WatchdogError, got %v", err)
	}
	if !strings.Contains(werr.Reason, "no progress") {
		t.Fatalf("reason = %q", werr.Reason)
	}
}

func TestWatchdogMaxWall(t *testing.T) {
	cfg := snapConfig(6, 1, false)
	cfg.Watchdog = &sim.Watchdog{
		MaxWall: 150 * time.Millisecond,
		Tick:    time.Millisecond,
		Now:     fakeClock(30 * time.Millisecond),
	}
	_, err := sim.Run(cfg, snapSource(t, cfg, 240), &sleepController{d: 40 * time.Millisecond}, 240)
	var werr *sim.WatchdogError
	if !errors.As(err, &werr) {
		t.Fatalf("want *sim.WatchdogError, got %v", err)
	}
	if !strings.Contains(werr.Reason, "wall-clock") {
		t.Fatalf("reason = %q", werr.Reason)
	}
	if werr.Elapsed <= 0 {
		t.Fatal("diagnostics missing elapsed time")
	}
}

// TestWatchdogBenign: an armed-but-untripped watchdog must not perturb
// the run, at either worker count.
func TestWatchdogBenign(t *testing.T) {
	for _, workers := range []int{1, 8} {
		cfg := snapConfig(6, workers, true)
		base, err := sim.Run(cfg, snapSource(t, cfg, 240), policy.NewTPM(5), 240)
		if err != nil {
			t.Fatal(err)
		}
		cfg2 := snapConfig(6, workers, true)
		cfg2.Watchdog = &sim.Watchdog{MaxWall: time.Hour, MaxEvents: 1 << 60, Stall: time.Hour}
		guarded, err := sim.Run(cfg2, snapSource(t, cfg2, 240), policy.NewTPM(5), 240)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, guarded) {
			t.Fatalf("workers=%d: watchdog perturbed the run", workers)
		}
	}
}
