package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hibernator/internal/obs"
)

// Watchdog bounds a run's execution so one stuck or runaway simulation
// cannot hang a whole suite. All three limits are optional (0 disables);
// a Watchdog with every field zero is ignored entirely. The watchdog only
// ever aborts — it schedules no events and reads no simulation state
// while the run is healthy — so an un-tripped run's output is
// byte-identical with or without it.
type Watchdog struct {
	// MaxWall aborts the run after this much wall-clock time.
	MaxWall time.Duration
	// MaxEvents aborts the run after this many fired events (summed
	// across the global engine and all partitions).
	MaxEvents uint64
	// Stall aborts the run when no event fires for this long — the
	// signature of a deadlocked or livelocked engine, as opposed to a
	// merely slow one.
	Stall time.Duration

	// Tick overrides the monitor goroutine's sampling interval (default
	// 25ms). Smaller values trade a little wake-up overhead for prompter
	// detection; tests shorten it so stall scenarios resolve quickly.
	Tick time.Duration
	// Now overrides the monitor's time source (default time.Now). Tests
	// inject a deterministic clock here so wall-clock and stall limits
	// trip on simulated elapsed time instead of real scheduler timing —
	// the knob that keeps the stall-path tests stable on loaded CI boxes.
	Now func() time.Time
}

// enabled reports whether any limit is armed.
func (w *Watchdog) enabled() bool {
	return w != nil && (w.MaxWall > 0 || w.MaxEvents > 0 || w.Stall > 0)
}

// WatchdogError reports an aborted run with enough diagnostics to see
// where it was stuck: the event count and pending-calendar depth at the
// abort, wall-clock elapsed, and the tail of the decision trace (empty
// when the run was untraced).
type WatchdogError struct {
	Reason    string
	Events    uint64
	Pending   int
	Elapsed   time.Duration
	LastTrace []obs.Event
}

// Error implements error.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf("sim: watchdog: %s after %v (%d events fired, %d pending)",
		e.Reason, e.Elapsed.Round(time.Millisecond), e.Events, e.Pending)
}

// errWatchdog is the sentinel the run loops return when a limit trips;
// Run translates it (and watchdog-cancelled contexts) into *WatchdogError.
var errWatchdog = errors.New("sim: watchdog tripped")

// wdPoll is how often the monitor goroutine samples progress unless
// Watchdog.Tick overrides it.
const wdPoll = 25 * time.Millisecond

// tick returns the monitor sampling interval (Tick, defaulting to wdPoll).
func (w *Watchdog) tick() time.Duration {
	if w.Tick > 0 {
		return w.Tick
	}
	return wdPoll
}

// clock returns the monitor time source (Now, defaulting to time.Now).
func (w *Watchdog) clock() func() time.Time {
	if w.Now != nil {
		return w.Now
	}
	return time.Now
}

// watchdogState is the live half of a Watchdog: an atomic progress
// counter the run loops bump, a monitor goroutine enforcing the
// wall-clock limits, and the trip reason for Run's error assembly. The
// monitor never reads engine or array state — the run loop (which owns
// that state) assembles the diagnostics after it observes the trip.
type watchdogState struct {
	cfg    *Watchdog
	now    func() time.Time
	start  time.Time
	events atomic.Uint64
	cancel context.CancelFunc
	stop   chan struct{}
	wg     sync.WaitGroup

	mu     sync.Mutex
	reason string
}

// startWatchdog launches the monitor goroutine. cancel is the derived
// run context's cancel function; tripping cancels it so the run loops
// exit at their next poll. The ticker only paces the polls; all elapsed
// time is measured through the (injectable) clock, so a delayed wake-up
// on a loaded machine never mimics a stall by itself.
func startWatchdog(cfg *Watchdog, cancel context.CancelFunc) *watchdogState {
	clock := cfg.clock()
	w := &watchdogState{cfg: cfg, now: clock, start: clock(), cancel: cancel, stop: make(chan struct{})}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		t := time.NewTicker(cfg.tick())
		defer t.Stop()
		lastProgress := uint64(0)
		lastChange := clock()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				now := clock()
				if cfg.MaxWall > 0 && now.Sub(w.start) > cfg.MaxWall {
					w.trip(fmt.Sprintf("wall-clock budget %v exceeded", cfg.MaxWall))
					return
				}
				if cfg.Stall > 0 {
					if p := w.events.Load(); p != lastProgress {
						lastProgress, lastChange = p, now
					} else if now.Sub(lastChange) > cfg.Stall {
						w.trip(fmt.Sprintf("no progress for %v", cfg.Stall))
						return
					}
				}
			}
		}
	}()
	return w
}

// note publishes the run loop's event count to the monitor.
func (w *watchdogState) note(processed uint64) { w.events.Store(processed) }

// overBudget enforces the event budget from inside the run loop (the
// loop owns the exact count; the monitor only sees the sampled one).
func (w *watchdogState) overBudget(processed uint64) error {
	if w.cfg.MaxEvents > 0 && processed > w.cfg.MaxEvents {
		w.trip(fmt.Sprintf("event budget %d exceeded", w.cfg.MaxEvents))
		return errWatchdog
	}
	return nil
}

// trip records the first abort reason and cancels the run context.
func (w *watchdogState) trip(reason string) {
	w.mu.Lock()
	if w.reason == "" {
		w.reason = reason
	}
	w.mu.Unlock()
	w.cancel()
}

// tripReason returns the recorded reason ("" when the watchdog never
// fired — e.g. the run was cancelled externally).
func (w *watchdogState) tripReason() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reason
}

// halt stops the monitor goroutine and waits for it to exit.
func (w *watchdogState) halt() {
	close(w.stop)
	w.wg.Wait()
}

// wdTraceTail is how many trailing trace events a WatchdogError carries.
const wdTraceTail = 8
