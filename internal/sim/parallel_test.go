package sim_test

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"hibernator/internal/array"
	"hibernator/internal/diskmodel"
	"hibernator/internal/fault"
	"hibernator/internal/policy"
	"hibernator/internal/raid"
	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

// parallelConfig is a transition-heavy shape: several multi-speed groups, a
// bursty workload with long silences, and a policy that spins disks down,
// so the run exercises cold windows, hot merges and the global barrier.
func parallelConfig(seed int64, workers int) sim.Config {
	return sim.Config{
		Spec:               diskmodel.MultiSpeedUltrastar(4, 3000),
		Groups:             4,
		GroupDisks:         2,
		Level:              raid.RAID0,
		ExtentBytes:        64 << 20,
		CacheBytes:         8 << 20,
		SampleEvery:        25,
		Seed:               seed,
		ExpectedRotLatency: true,
		Workers:            workers,
	}
}

func parallelSource(t *testing.T, cfg sim.Config, duration float64) trace.Source {
	t.Helper()
	vol, err := sim.LogicalBytes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewCello(trace.CelloConfig{
		Seed: cfg.Seed + 11, VolumeBytes: vol, Duration: duration,
		DayPeriod: duration, DayRate: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func runWorkers(t *testing.T, workers int, faults bool) *sim.Result {
	t.Helper()
	cfg := parallelConfig(7, workers)
	if faults {
		cfg.Retry = array.RetryPolicy{MaxRetries: 2, Backoff: 0.005, OpDeadline: 2}
		cfg.Faults = &fault.Schedule{
			Rates:  fault.Rates{TransientProb: 0.001, SpinUpFailProb: 0.02},
			Events: []fault.Event{{Time: 150, Disk: 1, Kind: fault.FailStop}},
		}
	}
	const duration = 600
	src := parallelSource(t, cfg, duration)
	p := policy.NewTPM(5)
	res, err := sim.Run(cfg, src, p, duration)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWorkersByteIdentical is the determinism contract of the partitioned
// engine: any worker count must reproduce the sequential run exactly —
// every scalar, the whole time series, the fault accounting.
func TestWorkersByteIdentical(t *testing.T) {
	for _, faults := range []bool{false, true} {
		base := runWorkers(t, 1, faults)
		if base.SpinDowns == 0 {
			t.Fatalf("faults=%v: workload never spun a disk down; test exercises nothing", faults)
		}
		for _, w := range []int{2, 4, 8} {
			got := runWorkers(t, w, faults)
			if !reflect.DeepEqual(base, got) {
				t.Errorf("faults=%v workers=%d diverged from sequential:\n  base: %+v\n  got:  %+v",
					faults, w, base, got)
			}
		}
	}
}

// TestContextCancelSequential cancels a legacy-path run mid-flight and
// checks the error surfaces and no goroutines are left behind.
func TestContextCancelSequential(t *testing.T) {
	testContextCancel(t, 1)
}

// TestContextCancelParallel does the same through the partitioned runner,
// which must also tear its worker pool down.
func TestContextCancelParallel(t *testing.T) {
	testContextCancel(t, 4)
}

func testContextCancel(t *testing.T, workers int) {
	before := runtime.NumGoroutine()
	cfg := parallelConfig(7, workers)
	const duration = 600
	src := parallelSource(t, cfg, duration)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must stop at the first check
	cfg.Context = ctx
	if _, err := sim.Run(cfg, src, policy.NewTPM(5), duration); err != context.Canceled {
		t.Fatalf("workers=%d: Run returned %v, want context.Canceled", workers, err)
	}
	// The pool goroutines exit synchronously before Run returns; give the
	// runtime a moment anyway to avoid counting scheduler stragglers.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("workers=%d: %d goroutines before cancel, %d after — leak",
		workers, before, runtime.NumGoroutine())
}

// TestContextCompletedRun runs to completion under a live context and must
// return a result, not an error.
func TestContextCompletedRun(t *testing.T) {
	cfg := parallelConfig(7, 4)
	cfg.Context = context.Background()
	const duration = 200
	src := parallelSource(t, cfg, duration)
	res, err := sim.Run(cfg, src, policy.NewTPM(5), duration)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("completed run reported zero requests")
	}
}
