package sim

import (
	"math"
	"sync"

	"hibernator/internal/array"
	"hibernator/internal/diskmodel"
	"hibernator/internal/simevent"
)

// This file is the intra-run parallel path: the engine partitioned by disk
// group with a deterministic epoch-barrier merge.
//
// Partitioning rule. Each group's spin/shift transition events live on a
// dedicated partition engine (array.Config.StateEngines); everything else —
// I/O completions, arrivals, tickers, cache destage, policy timers, fault
// injections — stays on the global engine. A partition whose disks are all
// quiescent (not Busy, empty queues) is "cold": its pending transitions
// touch only disk-local state and can schedule only further transitions on
// the same partition, because a spin-up or shift that completes over an
// empty queue dispatches no work. Cold partitions therefore advance
// concurrently on worker goroutines, each strictly below the next global
// event time, with no locks and no shared state.
//
// Barrier rule. Global events are the barriers. When every partition with
// work strictly before the next global event at time T is cold, those
// windows run in parallel up to (not including) T; then the coordinator
// fires the single globally earliest event by (time, seq) and re-evaluates.
// If any partition with sub-T work is hot (some disk busy or queued, so a
// completing transition may dispatch I/O and mint new global events),
// nothing runs in parallel that round: the coordinator single-steps the
// merged calendars, which re-tightens T naturally as new events appear.
//
// Why the output is byte-identical. All engines of a partitioned run share
// one sequence counter (simevent.ShareSeq), so (time, seq) is a total
// order across engines — and it is *the sequential run's order*: the
// coordinator makes every schedule call in the same order the sequential
// run would, so events receive the same sequence numbers, and the merge
// always fires the minimal (time, seq). Cross-engine same-instant ties —
// e.g. an op-deadline timer on the global engine against a shift
// completion on a partition — therefore resolve exactly as the sequential
// engine resolves them. Cold windows are the one place events fire off the
// coordinator; they assign provisional sequence numbers and log their
// schedule calls, and simevent.EndWindows renumbers them at the barrier in
// merged parent-fire order — again the sequential assignment. Window
// events themselves commute with everything outside their group (disjoint
// state, no global schedules), so running them concurrently is safe. The
// golden tests and the chaos metamorphic oracle (workers=N vs workers=1)
// enforce all of this end to end.

// runEngines drives the run's event loop(s) to `duration`. With no
// partitions, no context, no snapshots and no watchdog it is exactly the
// legacy engine.Run call. seqSrc is the sequence counter shared by global
// and parts (nil when parts is nil).
func runEngines(cfg *Config, global *simevent.Engine, parts []*simevent.Engine, seqSrc *uint64, arr *array.Array, duration float64, snap *snapCtl, wd *watchdogState) error {
	if parts == nil {
		if cfg.Context == nil && snap == nil && wd == nil && cfg.Progress == nil {
			global.Run(duration)
			return nil
		}
		return runSequential(cfg, global, duration, snap, wd)
	}
	return runPartitioned(cfg, global, parts, seqSrc, arr, duration, snap, wd)
}

// ctxCheckEvery is how many events fire between cancellation polls; small
// enough to cancel promptly, large enough to keep ctx.Err() off the per-
// event hot path.
const ctxCheckEvery = 64

// runSequential is engine.Run(duration) with periodic cancellation and
// watchdog checks and between-event snapshot boundaries. Event order is
// identical to Run: it steps the same calendar the same way; a snapshot
// boundary b fires only once every event at or before b has (events at
// exactly b go first — the strict b < at test), and capture schedules
// nothing, so the event stream is untouched.
func runSequential(cfg *Config, e *simevent.Engine, duration float64, snap *snapCtl, wd *watchdogState) error {
	n := 0
	for {
		at, ok := e.NextAt()
		if snap != nil {
			if b, bok := snap.peek(); bok && (!ok || at > duration || b < at) {
				if err := snap.fire(b); err != nil {
					return err
				}
				continue
			}
		}
		if !ok || at > duration {
			break
		}
		e.Step()
		if n++; n == ctxCheckEvery {
			n = 0
			if cfg.Progress != nil {
				cfg.Progress.Store(e.Processed())
			}
			if wd != nil {
				wd.note(e.Processed())
				if err := wd.overBudget(e.Processed()); err != nil {
					return err
				}
			}
			if cfg.Context != nil {
				if err := cfg.Context.Err(); err != nil {
					return err
				}
			}
		}
	}
	e.Run(duration) // nothing left at or below duration; advances the clock
	if cfg.Context != nil {
		return cfg.Context.Err()
	}
	return nil
}

// windowPool runs cold-partition windows on a fixed set of worker
// goroutines. Jobs are (engine, horizon) pairs; the coordinator submits a
// batch and waits for the full batch before touching any shared state, so
// workers never run concurrently with global-event execution.
type windowPool struct {
	jobs chan windowJob
	done chan struct{}
	wg   sync.WaitGroup
}

type windowJob struct {
	e       *simevent.Engine
	horizon float64
}

// newWindowPool starts `workers` goroutines; both channels hold a full
// batch (`maxJobs`, one window per group) so the coordinator can submit a
// whole batch and workers can report every completion without either side
// blocking — a smaller completion buffer could deadlock a large all-cold
// batch against a small pool.
func newWindowPool(workers, maxJobs int) *windowPool {
	if maxJobs < workers {
		maxJobs = workers
	}
	p := &windowPool{
		jobs: make(chan windowJob, maxJobs),
		done: make(chan struct{}, maxJobs),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				j.e.RunBefore(j.horizon)
				p.done <- struct{}{}
			}
		}()
	}
	return p
}

// close shuts the workers down and waits for them to exit — the no-leak
// guarantee the cancellation tests assert.
func (p *windowPool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// runPartitioned is the coordinator loop described at the top of the file.
// A snapshot boundary b behaves like a global pseudo-event: cold windows
// are capped at nextafter(b) so they drain every partition event at or
// before b and none after, and the capture fires in phase 2 only when the
// globally earliest real event lies strictly beyond b — the same
// between-events position the sequential loop uses, so the captured bytes
// are identical at any worker count.
func runPartitioned(cfg *Config, global *simevent.Engine, parts []*simevent.Engine, seqSrc *uint64, arr *array.Array, duration float64, snap *snapCtl, wd *watchdogState) error {
	ctx := cfg.Context
	// Partition membership is fixed at construction: these are the disks
	// whose transitions live on parts[gi]. Rebuilds swap spares into
	// groups, but spares transition on the global engine, so the original
	// members remain exactly the disks each window may touch.
	members := make([][]*diskmodel.Disk, len(parts))
	for gi, g := range arr.Groups() {
		members[gi] = append([]*diskmodel.Disk(nil), g.Disks()...)
	}
	pool := newWindowPool(cfg.Workers, len(parts))
	defer pool.close()

	// horizon is an exclusive bound that still admits events at exactly
	// `duration`, matching engine.Run's inclusive contract.
	horizon := math.Nextafter(duration, math.Inf(1))
	windows := make([]*simevent.Engine, 0, len(parts))
	steps := 0
	for {
		if ctx != nil || wd != nil || cfg.Progress != nil {
			if steps&(ctxCheckEvery-1) == 0 {
				if wd != nil || cfg.Progress != nil {
					processed := global.Processed()
					for _, pe := range parts {
						processed += pe.Processed()
					}
					if cfg.Progress != nil {
						cfg.Progress.Store(processed)
					}
					if wd != nil {
						wd.note(processed)
						if err := wd.overBudget(processed); err != nil {
							return err
						}
					}
				}
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
			}
			steps++
		}
		T := horizon
		if gt, ok := global.NextAt(); ok && gt <= duration {
			T = gt
		}
		// A pending snapshot boundary caps the cold windows: RunBefore is
		// exclusive, so nextafter(b) admits partition events at exactly b
		// (they precede the capture) and nothing later.
		bAt, haveB := 0.0, false
		if snap != nil {
			if b, bok := snap.peek(); bok {
				bAt, haveB = b, true
				if bh := math.Nextafter(b, math.Inf(1)); bh < T {
					T = bh
				}
			}
		}

		// Phase 1: parallel cold windows, strictly below T. Only when
		// *every* partition with sub-T work is cold: then the sequential
		// run would fire exactly these window events before T, so the
		// barrier renumbering reproduces its sequence assignment. One hot
		// partition poisons the round — its sub-T steps could mint global
		// events whose schedules must interleave with the windows'.
		windows = windows[:0]
		allCold := true
		for gi, pe := range parts {
			if at, ok := pe.NextAt(); ok && at < T {
				if !coldPartition(members[gi]) {
					allCold = false
					break
				}
				windows = append(windows, pe)
			}
		}
		if allCold && len(windows) > 0 {
			for _, pe := range windows {
				pe.BeginWindow()
			}
			for _, pe := range windows {
				pool.jobs <- windowJob{e: pe, horizon: T}
			}
			for range windows {
				<-pool.done
			}
			simevent.EndWindows(windows, seqSrc)
		}

		// Phase 2: fire the single globally earliest event by (at, seq) —
		// exactly the event the sequential engine would fire — then loop,
		// so fresh cold windows are re-evaluated and anything the step
		// minted tightens T. Shared sequence numbers make the comparison
		// exact at cross-engine same-instant ties.
		best := global
		at, seq, ok := global.NextKey()
		if !ok || at > duration {
			best = nil
		}
		for _, pe := range parts {
			pat, pseq, pok := pe.NextKey()
			if pok && pat <= duration && (best == nil || pat < at || (pat == at && pseq < seq)) {
				best, at, seq = pe, pat, pseq
			}
		}
		// The boundary fires only when every event at or before it (on any
		// engine) has run — i.e. the globally earliest pending event lies
		// strictly beyond it. Same-instant events win the tie, exactly as
		// in the sequential loop.
		if haveB && (best == nil || bAt < at) {
			if err := snap.fire(bAt); err != nil {
				return err
			}
			continue
		}
		if best == nil {
			break
		}
		best.Step()
	}
	global.Run(duration) // advance the global clock to the end of the run
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// coldPartition reports whether every original member of the partition is
// quiescent: no disk busy, no queued work. Only then is the window safe —
// a completing transition over an empty queue cannot dispatch I/O, so the
// window provably mints no global events and touches no state outside its
// own disks.
func coldPartition(disks []*diskmodel.Disk) bool {
	for _, d := range disks {
		if d.State() == diskmodel.Busy || d.QueueLen() > 0 {
			return false
		}
	}
	return true
}
