package sim

import (
	"math"
	"testing"

	"hibernator/internal/diskmodel"
	"hibernator/internal/raid"
	"hibernator/internal/trace"
)

// nopController is a do-nothing policy (all disks full speed forever).
type nopController struct {
	inits     int
	arrivals  int
	completes int
}

func (n *nopController) Name() string                    { return "nop" }
func (n *nopController) Init(*Env)                       { n.inits++ }
func (n *nopController) OnArrival(trace.Request)         { n.arrivals++ }
func (n *nopController) OnComplete(lat float64, _w bool) { n.completes++ }

func testConfig(seed int64) Config {
	return Config{
		Spec:               diskmodel.MultiSpeedUltrastar(5, 3000),
		Groups:             2,
		GroupDisks:         2,
		Level:              raid.RAID0,
		ExtentBytes:        64 << 20,
		Seed:               seed,
		ExpectedRotLatency: true,
	}
}

func oltpSource(t *testing.T, cfg Config, duration, rate float64, seed int64) trace.Source {
	t.Helper()
	// Probe array size via a throwaway run? Instead compute volume from
	// config pieces: mirror of array construction. Simpler: build the
	// generator against a conservative volume.
	vol := int64(4) * 30 << 30 / 2 // ~safe under 4 disks' capacity
	g, err := trace.NewOLTP(trace.OLTPConfig{
		Seed: seed, VolumeBytes: vol, Duration: duration, MaxRate: rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunBasicNoCache(t *testing.T) {
	cfg := testConfig(1)
	ctrl := &nopController{}
	src := oltpSource(t, cfg, 100, 50, 2)
	res, err := Run(cfg, src, ctrl, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.inits != 1 {
		t.Errorf("Init called %d times", ctrl.inits)
	}
	if res.Requests < 4000 || res.Requests > 6000 {
		t.Errorf("requests = %d, want ~5000", res.Requests)
	}
	if ctrl.arrivals < int(res.Requests) {
		t.Errorf("arrivals %d < completions %d", ctrl.arrivals, res.Requests)
	}
	if ctrl.completes != int(res.Requests) {
		t.Errorf("completes %d != requests %d", ctrl.completes, res.Requests)
	}
	if res.MeanResp <= 0 || res.MeanResp > 0.1 {
		t.Errorf("mean resp %v out of plausible range", res.MeanResp)
	}
	if res.P95Resp < res.MeanResp*0.5 {
		t.Errorf("p95 %v implausibly below mean %v", res.P95Resp, res.MeanResp)
	}
	// Energy must be near 4 disks * idle..active power * 100 s.
	spec := cfg.Spec
	lo := 0.9 * 4 * 100 * spec.IdlePower[spec.FullLevel()]
	hi := 1.1 * 4 * 100 * spec.ActivePower[spec.FullLevel()]
	if res.Energy < lo || res.Energy > hi {
		t.Errorf("energy %v outside [%v,%v]", res.Energy, lo, hi)
	}
	if res.SpinUps != 0 || res.LevelShifts != 0 {
		t.Error("nop policy should not transition disks")
	}
}

func TestRunWithCacheAbsorbsWrites(t *testing.T) {
	cfg := testConfig(3)
	cfg.CacheBytes = 256 << 20
	src := oltpSource(t, cfg, 60, 50, 4)
	res, err := Run(cfg, src, &nopController{}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits == 0 {
		t.Error("expected cache-absorbed requests")
	}
	if res.Destages == 0 {
		t.Error("write-back cache must destage")
	}
	// Mean response should beat the uncached run since ~34% of requests
	// are writes absorbed at cache speed.
	cfgNo := testConfig(3)
	srcNo := oltpSource(t, cfgNo, 60, 50, 4)
	resNo, err := Run(cfgNo, srcNo, &nopController{}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanResp >= resNo.MeanResp {
		t.Errorf("cached mean %v should beat uncached %v", res.MeanResp, resNo.MeanResp)
	}
}

func TestGoalViolationTracking(t *testing.T) {
	cfg := testConfig(5)
	cfg.RespGoal = 1e-9 // impossible goal: every window violates
	cfg.RespWindow = 5
	src := oltpSource(t, cfg, 60, 50, 6)
	res, err := Run(cfg, src, &nopController{}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.GoalViolationFrac < 0.99 {
		t.Errorf("violation frac %v, want ~1", res.GoalViolationFrac)
	}
	cfg2 := testConfig(5)
	cfg2.RespGoal = 10 // trivially met
	cfg2.RespWindow = 5
	src2 := oltpSource(t, cfg2, 60, 50, 6)
	res2, err := Run(cfg2, src2, &nopController{}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res2.GoalViolationFrac != 0 {
		t.Errorf("violation frac %v, want 0", res2.GoalViolationFrac)
	}
}

func TestTimeSeriesSampling(t *testing.T) {
	cfg := testConfig(7)
	cfg.SampleEvery = 10
	src := oltpSource(t, cfg, 100, 20, 8)
	res, err := Run(cfg, src, &nopController{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 10 {
		t.Fatalf("series has %d points, want 10", len(res.Series))
	}
	for i, p := range res.Series {
		if p.FullSpeedDisks != 4 {
			t.Errorf("point %d: full-speed disks = %d, want 4", i, p.FullSpeedDisks)
		}
		if i > 0 && p.T <= res.Series[i-1].T {
			t.Errorf("series times not increasing at %d", i)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	mk := func() *Result {
		cfg := testConfig(11)
		src := oltpSource(t, cfg, 30, 40, 12)
		res, err := Run(cfg, src, &nopController{}, 30)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Requests != b.Requests || a.Energy != b.Energy || a.MeanResp != b.MeanResp {
		t.Errorf("runs diverged: %+v vs %+v", a, b)
	}
}

func TestSavingsArithmetic(t *testing.T) {
	base := &Result{Energy: 1000}
	r := &Result{Energy: 700}
	if got := r.EnergyVs(base); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("EnergyVs = %v", got)
	}
	if got := r.SavingsVs(base); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("SavingsVs = %v", got)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cfg := testConfig(13)
	src := oltpSource(t, cfg, 10, 10, 14)
	if _, err := Run(cfg, src, &nopController{}, 0); err == nil {
		t.Error("zero duration must fail")
	}
	bad := cfg
	bad.Groups = 0
	if _, err := Run(bad, src, &nopController{}, 10); err == nil {
		t.Error("bad array config must fail")
	}
}

func TestWorkloadBeyondVolumeClamped(t *testing.T) {
	// A generator configured to the exact logical size must not panic even
	// when cache-block alignment overhangs the end.
	cfg := testConfig(15)
	cfg.CacheBytes = 64 << 20
	reqs := []trace.Request{
		{Time: 0.1, Off: 0, Size: 4096},
		{Time: 0.2, Off: 12345, Size: 100000, Write: true},
	}
	res, err := Run(cfg, trace.NewSliceSource(reqs), &nopController{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 2 {
		t.Errorf("requests = %d, want 2", res.Requests)
	}
}

func TestWarmupExcludesEarlyRequests(t *testing.T) {
	cfg := testConfig(21)
	src := oltpSource(t, cfg, 100, 50, 22)
	full, err := Run(cfg, src, &nopController{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfgW := testConfig(21)
	cfgW.Warmup = 50
	srcW := oltpSource(t, cfgW, 100, 50, 22)
	warm, err := Run(cfgW, srcW, &nopController{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Requests >= full.Requests {
		t.Errorf("warmup run counted %d requests, full run %d", warm.Requests, full.Requests)
	}
	if warm.Requests < full.Requests/3 {
		t.Errorf("warmup excluded too much: %d of %d", warm.Requests, full.Requests)
	}
	// Energy is still whole-run: roughly equal across the two runs.
	if math.Abs(warm.Energy-full.Energy) > 0.01*full.Energy {
		t.Errorf("warmup changed energy accounting: %v vs %v", warm.Energy, full.Energy)
	}
}

func TestNegativeWarmupRejected(t *testing.T) {
	cfg := testConfig(23)
	cfg.Warmup = -1
	src := oltpSource(t, cfg, 10, 10, 24)
	if _, err := Run(cfg, src, &nopController{}, 10); err == nil {
		t.Fatal("negative warmup must be rejected")
	}
}

// fakeRouter intercepts every odd-offset request and completes it after a
// fixed delay.
type fakeRouter struct {
	nopController
	env     *Env
	claimed int
}

func (f *fakeRouter) Init(env *Env) { f.env = env }

func (f *fakeRouter) Route(r trace.Request, finish func()) bool {
	if (r.Off/4096)%2 == 0 {
		return false
	}
	f.claimed++
	f.env.Engine.Schedule(0.002, finish)
	return true
}

func TestRouterInterceptsRequests(t *testing.T) {
	cfg := testConfig(25)
	ctrl := &fakeRouter{}
	reqs := make([]trace.Request, 0, 50)
	for i := 0; i < 50; i++ {
		reqs = append(reqs, trace.Request{
			Time: float64(i) * 0.01, Off: int64(i) * 4096, Size: 4096,
		})
	}
	res, err := Run(cfg, trace.NewSliceSource(reqs), ctrl, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.claimed != 25 {
		t.Errorf("router claimed %d, want 25", ctrl.claimed)
	}
	if res.Requests != 50 {
		t.Errorf("requests = %d, want all 50 recorded (claimed + passed through)", res.Requests)
	}
	// Routed requests completed at the router's fixed 2 ms; the rest hit
	// disks. Mean must sit between the two.
	if res.MeanResp <= 0.002 || res.MeanResp > 0.02 {
		t.Errorf("mean %v implausible for a half-routed run", res.MeanResp)
	}
}
