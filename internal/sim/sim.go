// Package sim wires a workload, the controller cache, the disk array and
// an energy-management policy into one run, and collects the quantities
// the paper's evaluation reports: energy (total and by state), response
// times (mean and tail), goal violations, spin/shift/migration activity.
package sim

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"hibernator/internal/array"
	"hibernator/internal/cache"
	"hibernator/internal/diskmodel"
	"hibernator/internal/fault"
	"hibernator/internal/invariant"
	"hibernator/internal/obs"
	"hibernator/internal/raid"
	"hibernator/internal/simevent"
	"hibernator/internal/snapshot"
	"hibernator/internal/stats"
	"hibernator/internal/trace"
)

// CacheHitLatency is the service time of a request absorbed entirely by
// the controller cache.
const CacheHitLatency = 0.0001

// Config describes one simulation run.
type Config struct {
	Spec       diskmodel.Spec
	Groups     int
	GroupDisks int
	Level      raid.Level
	StripeUnit int64

	ExtentBytes int64
	Occupancy   float64
	SpareDisks  int

	// CacheBytes = 0 disables the controller cache entirely.
	CacheBytes    int64
	CacheBlock    int64   // default 64 KiB
	DestagePeriod float64 // default 1 s
	DestageMax    int     // dirty blocks per destage tick, default 64

	// RespGoal is the response-time limit policies must honor (seconds).
	RespGoal float64
	// RespWindow is the observation window for goal checking (default 60 s).
	RespWindow float64

	// SampleEvery > 0 records a time-series point each interval (F9).
	SampleEvery float64

	// Warmup excludes the first seconds from the reported response-time
	// statistics and goal-violation accounting (policies still see all
	// observations). Energy is always accounted for the whole run.
	Warmup float64

	Seed               int64
	InitialLevel       int // defaults to full speed
	ExpectedRotLatency bool
	// Scheduler is the per-disk queue discipline (default FCFS).
	Scheduler diskmodel.Scheduler

	// Retry is the array's reaction to faults (retries, deadlines, the
	// disk health tracker). The zero value disables it entirely.
	Retry array.RetryPolicy
	// Faults is the injection schedule (nil = no faults). It is armed on
	// the run's engine before the first request.
	Faults *fault.Schedule

	// Metrics, when non-nil, receives the standard instrument set (see
	// internal/sim/obs.go and OBSERVABILITY.md) sampled every
	// ObsSampleEvery simulated seconds. Nil is a strict no-op: no extra
	// events are scheduled and no extra bytes are allocated, so runs
	// without it are byte-identical to runs before the layer existed.
	Metrics *obs.Registry
	// Trace, when non-nil, receives the run's policy-decision events
	// (speed shifts, migrations, boost activity, fault handling). Nil is
	// a strict no-op.
	Trace *obs.Trace
	// ObsSampleEvery is the Metrics sampling interval in simulated
	// seconds (default: RespWindow). Ignored when Metrics is nil.
	ObsSampleEvery float64

	// OnResponse, when non-nil, receives every foreground request's
	// logical completion: the request as the workload emitted it (tenant
	// tag included) plus its measured response time in seconds. It fires
	// once per request — cache hits, routed requests (MAID) and multi-miss
	// fan-outs included — at the simulated instant the harness records the
	// response. Nil is a strict no-op: the hook adds no events and does
	// not change any output byte. internal/fleet uses it for per-tenant
	// latency attribution.
	OnResponse func(r trace.Request, latency float64)

	// Workers is the intra-run parallelism degree. 1 (or 0) runs the exact
	// legacy sequential path. N > 1 partitions spin/shift transition events
	// by disk group and advances idle groups on worker goroutines between
	// global events, with a deterministic merge that keeps the output
	// byte-identical to the sequential run (see parallel.go). Runs with an
	// armed invariant checker fall back to the sequential path — the
	// checker observes every transition and needs one serialized stream.
	Workers int

	// Context, when non-nil, cancels the run cooperatively: Run checks it
	// between event batches and returns ctx.Err() once it is done or
	// cancelled. Nil keeps the legacy hot loop untouched.
	Context context.Context

	// Progress, when non-nil, is kept loosely up to date with the number
	// of events the run has fired (summed across the global engine and
	// all partitions): the run loops publish it every few events and Run
	// stores the exact total before returning. It is the only run state
	// another goroutine may read while the simulation executes — the job
	// server derives per-job progress from it. Nil adds no work.
	Progress *atomic.Uint64

	// Invariants, when non-nil, cross-checks the run's accounting while it
	// executes: IO conservation, per-disk state durations and energy
	// integrals, state-machine legality, migration/slot bookkeeping and
	// cache counters (see internal/invariant). Nil is a strict no-op — no
	// extra events, no extra allocations, byte-identical output.
	Invariants *invariant.Checker

	// SnapshotEvery > 0 captures a full deterministic state snapshot at
	// every multiple of this simulated time and hands it to SnapshotSink.
	// Capture happens between events and is a pure read, so a run with
	// snapshots enabled is byte-identical to one without — at any worker
	// count. 0 disables periodic capture.
	SnapshotEvery float64
	// SnapshotSink receives each periodic snapshot. A nil sink with
	// SnapshotEvery set still exercises capture (useful in tests); sink
	// errors abort the run.
	SnapshotSink func(*snapshot.State) error
	// ResumeFrom, when non-nil, resumes the run from a snapshot: the
	// config section is validated up front, the deterministic prefix is
	// replayed from t=0 with Metrics/Trace rows before the snapshot epoch
	// suppressed, and at the epoch the re-derived state is compared entry
	// by entry against the snapshot — any divergence aborts the run
	// naming the first mismatched key. The final Result is byte-identical
	// to an uninterrupted run's, and the exported metric/trace streams
	// are exactly the uninterrupted streams' tails from the epoch on.
	ResumeFrom *snapshot.State
	// Watchdog, when any of its limits is set, aborts a stuck or runaway
	// run with a *WatchdogError carrying diagnostics. It never perturbs a
	// healthy run's output.
	Watchdog *Watchdog
}

func (c *Config) applyDefaults() error {
	if c.CacheBlock == 0 {
		c.CacheBlock = 64 << 10
	}
	if c.DestagePeriod == 0 {
		c.DestagePeriod = 1.0
	}
	if c.DestageMax == 0 {
		c.DestageMax = 64
	}
	if c.RespWindow == 0 {
		c.RespWindow = 60
	}
	if c.InitialLevel == 0 {
		c.InitialLevel = c.Spec.FullLevel()
	}
	if c.RespGoal < 0 {
		return fmt.Errorf("sim: negative response goal")
	}
	if c.Warmup < 0 {
		return fmt.Errorf("sim: negative warmup")
	}
	if c.ObsSampleEvery < 0 {
		return fmt.Errorf("sim: negative metrics sampling interval")
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: negative worker count")
	}
	if c.SnapshotEvery < 0 {
		return fmt.Errorf("sim: negative snapshot interval")
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.ObsSampleEvery == 0 {
		c.ObsSampleEvery = c.RespWindow
	}
	return nil
}

// Env is the control surface a policy sees.
type Env struct {
	Engine *simevent.Engine
	Array  *array.Array
	Cfg    *Config

	// RespWindow holds foreground response times over the trailing
	// Cfg.RespWindow seconds; RespCum over the whole run. The harness
	// feeds both; policies read them.
	RespWindow *stats.WindowTracker
	RespCum    *stats.CumulativeTracker

	// Trace is the run's decision trace (Cfg.Trace; nil when the run is
	// unobserved). Emitting to a nil trace is a no-op, so policies call
	// env.Trace.Event(...) without guards.
	Trace *obs.Trace
	// Metrics is the run's registry (Cfg.Metrics; may be nil). Policies
	// that want bespoke instruments register them in Init, before the
	// first sample.
	Metrics *obs.Registry
}

// Goal returns the response-time limit (0 = none).
func (e *Env) Goal() float64 { return e.Cfg.RespGoal }

// Controller is an energy-management policy. Init runs before the first
// request; policies schedule their own timers on env.Engine.
type Controller interface {
	Name() string
	Init(env *Env)
}

// ArrivalObserver is implemented by policies that watch logical arrivals.
type ArrivalObserver interface {
	OnArrival(r trace.Request)
}

// CompletionObserver is implemented by policies that watch logical
// completions.
type CompletionObserver interface {
	OnComplete(latency float64, write bool)
}

// Router is implemented by policies that intercept requests before the
// controller cache and array (MAID's cache disks). If Route returns true
// the policy has taken ownership and must call finish exactly once when
// the request completes; the harness then records the response time.
type Router interface {
	Route(r trace.Request, finish func()) bool
}

// TimePoint is one sample of the run's time series.
type TimePoint struct {
	T              float64
	WindowMeanResp float64
	FullSpeedDisks int
	StandbyDisks   int
}

// Result aggregates one run.
type Result struct {
	Scheme   string
	Duration float64

	Requests  uint64
	MeanResp  float64
	P95Resp   float64
	P99Resp   float64
	MaxResp   float64
	CacheHits uint64 // requests absorbed entirely by the cache

	Energy        float64 // joules, all disks
	EnergyByState map[string]float64

	SpinUps, SpinDowns, LevelShifts uint64
	Migrations, MigratedBytes       uint64
	Destages                        uint64

	// GoalViolationFrac is the fraction of observation windows whose mean
	// response time exceeded the goal (0 when no goal set).
	GoalViolationFrac float64

	// Fault accounting: all zero in fault-free runs.
	Faults FaultSummary

	Series []TimePoint
}

// FaultSummary aggregates the run's fault activity: what was injected,
// how the disks misbehaved, and how the array reacted.
type FaultSummary struct {
	Injected, SkippedInjections int // scripted events applied / refused

	TransientErrs  uint64 // ops failed by the transient model
	LatentErrs     uint64 // reads failed by latent sector ranges
	SpinUpFailures uint64 // failed spin-up attempts

	Retries   uint64 // same-disk retries issued by the array
	Timeouts  uint64 // attempts abandoned at the op deadline
	Fallbacks uint64 // ops served through redundancy

	Evictions    uint64 // disks evicted by the error tracker
	DiskFailures uint64 // fail-stop failures (injected + evictions)
	Rebuilds     uint64 // completed rebuilds onto spares
	LostIOs      uint64 // ops with no redundancy left
}

// EnergyVs returns this run's energy as a fraction of a baseline's.
func (r *Result) EnergyVs(base *Result) float64 {
	if base.Energy == 0 {
		return math.Inf(1)
	}
	return r.Energy / base.Energy
}

// SavingsVs returns 1 - EnergyVs, the paper's "energy savings".
func (r *Result) SavingsVs(base *Result) float64 {
	return 1 - r.EnergyVs(base)
}

// Run executes the workload against the configured array under the given
// policy for `duration` simulated seconds.
func Run(cfg Config, workload trace.Source, ctrl Controller, duration float64) (*Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if duration <= 0 {
		return nil, fmt.Errorf("sim: duration must be positive")
	}
	engine := simevent.New()
	// Partition the transition calendar by group only when the parallel
	// path can actually engage; a nil slice keeps every event on the one
	// global engine, which is the byte-exact legacy path.
	var parts []*simevent.Engine
	var seqSrc *uint64
	if cfg.Workers > 1 && cfg.Groups >= 2 && cfg.Invariants == nil {
		// All engines of a partitioned run share one sequence counter,
		// installed before anything is scheduled: every event then carries
		// the exact sequence number the sequential run would assign it,
		// which is what makes the (at, seq) merge replay the sequential
		// order bit for bit (see parallel.go).
		seqSrc = new(uint64)
		engine.ShareSeq(seqSrc)
		parts = make([]*simevent.Engine, cfg.Groups)
		for i := range parts {
			parts[i] = simevent.New()
			parts[i].ShareSeq(seqSrc)
		}
	}
	arr, err := array.New(array.Config{
		Engine:             engine,
		StateEngines:       parts,
		Spec:               &cfg.Spec,
		Groups:             cfg.Groups,
		GroupDisks:         cfg.GroupDisks,
		Level:              cfg.Level,
		StripeUnit:         cfg.StripeUnit,
		ExtentBytes:        cfg.ExtentBytes,
		Occupancy:          cfg.Occupancy,
		SpareDisks:         cfg.SpareDisks,
		Seed:               cfg.Seed,
		InitialLevel:       cfg.InitialLevel,
		ExpectedRotLatency: cfg.ExpectedRotLatency,
		Scheduler:          cfg.Scheduler,
		Retry:              cfg.Retry,
		Trace:              cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	if err := cfg.Faults.Arm(engine, arr); err != nil {
		return nil, err
	}
	env := &Env{
		Engine:     engine,
		Array:      arr,
		Cfg:        &cfg,
		RespWindow: stats.NewWindowTracker(cfg.RespWindow, 60),
		RespCum:    &stats.CumulativeTracker{},
		Trace:      cfg.Trace,
		Metrics:    cfg.Metrics,
	}

	res := &Result{Scheme: ctrl.Name(), Duration: duration}
	respW := stats.Welford{}
	respPct := stats.NewReservoir(16384, cfg.Seed+104729)

	arrivalObs, _ := ctrl.(ArrivalObserver)
	completeObs, _ := ctrl.(CompletionObserver)
	router, _ := ctrl.(Router)

	var sampler *obsSampler // nil unless cfg.Metrics is set

	recordResponse := func(lat float64, write bool) {
		now := engine.Now()
		if now >= cfg.Warmup {
			res.Requests++
			respW.Add(lat)
			respPct.Add(lat)
		}
		env.RespWindow.Observe(now, lat)
		env.RespCum.Observe(lat)
		if completeObs != nil {
			completeObs.OnComplete(lat, write)
		}
		if sampler != nil {
			sampler.onComplete(now, lat)
		}
	}

	var ctrlCache *cache.Cache
	if cfg.CacheBytes > 0 {
		ctrlCache = cache.New(cfg.CacheBytes, cfg.CacheBlock)
	}

	// Arm the invariant checker before the controller or any event runs, so
	// it observes every transition from the initial configuration on.
	if cfg.Invariants != nil {
		cfg.Invariants.Attach(engine, arr, ctrlCache, cfg.Metrics)
	}

	destage := func(ranges []cache.Range) {
		for _, rg := range ranges {
			off, size := clampRange(rg.Off, rg.Size, arr.LogicalBytes())
			if size <= 0 {
				continue
			}
			arr.SubmitBackground(off, size, true, nil)
		}
	}

	process := func(r trace.Request) {
		// record is recordResponse bound to this request, so every
		// completion path below also feeds the per-request hook when one
		// is armed. With a nil hook the wrapper reduces to the exact
		// legacy call and the run is byte-identical.
		record := func(lat float64) {
			recordResponse(lat, r.Write)
			if cfg.OnResponse != nil {
				cfg.OnResponse(r, lat)
			}
		}
		if sampler != nil {
			sampler.onArrival(engine.Now())
		}
		if arrivalObs != nil {
			arrivalObs.OnArrival(r)
		}
		if router != nil {
			start := engine.Now()
			if router.Route(r, func() {
				record(engine.Now() - start)
			}) {
				return
			}
		}
		if ctrlCache == nil {
			arr.Submit(r.Off, r.Size, r.Write, func(lat float64) {
				record(lat)
			})
			return
		}
		if r.Write {
			// Write-back: absorbed at cache speed; evictions destage in
			// the background.
			destage(ctrlCache.Write(r.Off, r.Size))
			res.CacheHits++
			engine.Schedule(CacheHitLatency, func() {
				record(CacheHitLatency)
			})
			return
		}
		misses, evictions := ctrlCache.Read(r.Off, r.Size)
		destage(evictions)
		if len(misses) == 0 {
			res.CacheHits++
			engine.Schedule(CacheHitLatency, func() {
				record(CacheHitLatency)
			})
			return
		}
		start := engine.Now()
		remaining := len(misses)
		for _, m := range misses {
			off, size := clampRange(m.Off, m.Size, arr.LogicalBytes())
			if size <= 0 {
				remaining--
				continue
			}
			arr.Submit(off, size, false, func(float64) {
				remaining--
				if remaining == 0 {
					record(engine.Now() - start + CacheHitLatency)
				}
			})
		}
		if remaining == 0 { // whole request clamped away (volume edge)
			record(CacheHitLatency)
		}
	}

	// Arrival pump: schedule each request lazily at its timestamp.
	var pump func()
	pump = func() {
		r, ok := workload.Next()
		if !ok || r.Time > duration {
			return
		}
		at := r.Time
		if at < engine.Now() {
			at = engine.Now()
		}
		engine.At(at, func() {
			process(r)
			pump()
		})
	}

	ctrl.Init(env)

	// Goal-violation bookkeeping.
	var windows, violations int
	if cfg.RespGoal > 0 {
		simevent.NewTicker(engine, cfg.RespWindow, func(now float64) {
			if now < cfg.Warmup {
				return
			}
			mean, n := env.RespWindow.Mean(now)
			if n == 0 {
				return
			}
			windows++
			if mean > cfg.RespGoal {
				violations++
			}
		})
	}
	// Periodic destage of aged dirty blocks.
	if ctrlCache != nil {
		simevent.NewTicker(engine, cfg.DestagePeriod, func(float64) {
			destage(ctrlCache.FlushOldest(cfg.DestageMax))
		})
	}
	// Time-series sampling.
	if cfg.SampleEvery > 0 {
		simevent.NewTicker(engine, cfg.SampleEvery, func(now float64) {
			mean, _ := env.RespWindow.Mean(now)
			full, standby := 0, 0
			for _, d := range arr.Disks() {
				switch {
				case d.State() == diskmodel.Standby:
					standby++
				case d.Level() == cfg.Spec.FullLevel() && d.State() != diskmodel.Standby:
					full++
				}
			}
			res.Series = append(res.Series, TimePoint{
				T: now, WindowMeanResp: mean, FullSpeedDisks: full, StandbyDisks: standby,
			})
		})
	}
	// Metrics sampling: one row at t=0 (the initial configuration), then
	// one per ObsSampleEvery. Unobserved runs schedule nothing here.
	if cfg.Metrics != nil {
		sampler = newObsSampler(&cfg, env, arr, engine, parts, ctrlCache)
		engine.Schedule(0, func() { sampler.sample(engine.Now()) })
		simevent.NewTicker(engine, cfg.ObsSampleEvery, func(now float64) {
			sampler.sample(now)
		})
	}

	// Snapshot boundaries: periodic capture, and on a resumed run the
	// one-shot verification at the snapshot epoch (see snapshot.go).
	var snap *snapCtl
	if cfg.SnapshotEvery > 0 || cfg.ResumeFrom != nil {
		refs := &snapRefs{
			cfg: &cfg, scheme: ctrl.Name(), duration: duration,
			engine: engine, parts: parts, arr: arr, cache: ctrlCache,
			env: env, respW: &respW, respPct: respPct, res: res,
			windows: &windows, viols: &violations, ctrl: ctrl,
		}
		snap = &snapCtl{every: cfg.SnapshotEvery, k: 1, verifyAt: -1,
			duration: duration, capture: refs.capture, sink: cfg.SnapshotSink}
		if cfg.ResumeFrom != nil {
			t, err := cfg.ResumeFrom.Float("t")
			if err != nil {
				return nil, err
			}
			if t <= 0 || t > duration {
				return nil, fmt.Errorf("sim: resume snapshot epoch t=%v outside (0, %v]", t, duration)
			}
			if err := refs.verifyResumeConfig(cfg.ResumeFrom); err != nil {
				return nil, err
			}
			snap.verifyAt = t
			snap.verify = cfg.ResumeFrom
			cfg.Metrics.SuppressBefore(t)
			cfg.Trace.SuppressBefore(t)
		}
	}
	// Watchdog: derive a cancellable context the run loops poll; the
	// monitor goroutine trips it on wall-clock or stall limits.
	var wd *watchdogState
	if cfg.Watchdog.enabled() {
		base := cfg.Context
		if base == nil {
			base = context.Background()
		}
		wctx, cancel := context.WithCancel(base)
		cfg.Context = wctx
		wd = startWatchdog(cfg.Watchdog, cancel)
		defer cancel()
		defer wd.halt()
	}

	pump()
	if cfg.Progress != nil {
		defer func() {
			processed := engine.Processed()
			for _, pe := range parts {
				processed += pe.Processed()
			}
			cfg.Progress.Store(processed)
		}()
	}
	if err := runEngines(&cfg, engine, parts, seqSrc, arr, duration, snap, wd); err != nil {
		if wd != nil {
			if reason := wd.tripReason(); reason != "" {
				processed, pending := engine.Processed(), engine.Pending()
				for _, pe := range parts {
					processed += pe.Processed()
					pending += pe.Pending()
				}
				return nil, &WatchdogError{
					Reason: reason, Events: processed, Pending: pending,
					Elapsed: wd.now().Sub(wd.start), LastTrace: cfg.Trace.Tail(wdTraceTail),
				}
			}
		}
		return nil, err
	}

	res.MeanResp = respW.Mean()
	if respW.Count() > 0 { // an empty accumulator's Max is NaN, not 0
		res.MaxResp = respW.Max()
	}
	res.P95Resp = respPct.Quantile(0.95)
	res.P99Resp = respPct.Quantile(0.99)
	res.Energy = arr.TotalEnergy()
	res.EnergyByState = arr.EnergyByState()
	for _, d := range arr.Disks() {
		res.SpinUps += d.SpinUps()
		res.SpinDowns += d.SpinDowns()
		res.LevelShifts += d.LevelShifts()
	}
	res.Migrations, res.MigratedBytes = arr.Migrations()
	if ctrlCache != nil {
		_, _, res.Destages = ctrlCache.Stats()
	}
	fs := arr.FaultStats()
	res.Faults.Retries = fs.Retries
	res.Faults.Timeouts = fs.Timeouts
	res.Faults.Fallbacks = fs.Fallbacks
	res.Faults.Evictions = fs.Evictions
	res.Faults.DiskFailures = arr.DiskFailures()
	res.Faults.Rebuilds = arr.Rebuilds()
	res.Faults.LostIOs = arr.LostIOs()
	for _, d := range arr.Disks() {
		res.Faults.TransientErrs += d.TransientErrors()
		res.Faults.LatentErrs += d.LatentErrors()
		res.Faults.SpinUpFailures += d.SpinUpFailures()
	}
	if st := cfg.Faults.Stats(); st != (fault.Stats{}) {
		res.Faults.Injected, res.Faults.SkippedInjections = st.Injected, st.Skipped
	}
	if windows > 0 {
		res.GoalViolationFrac = float64(violations) / float64(windows)
	}
	if cfg.Invariants != nil {
		cfg.Invariants.Finish(engine.Now())
	}
	return res, nil
}

// LogicalBytes reports the logical volume size the configuration yields —
// workload generators size themselves against it before the real run.
func LogicalBytes(cfg Config) (int64, error) {
	if err := cfg.applyDefaults(); err != nil {
		return 0, err
	}
	arr, err := array.New(array.Config{
		Engine:      simevent.New(),
		Spec:        &cfg.Spec,
		Groups:      cfg.Groups,
		GroupDisks:  cfg.GroupDisks,
		Level:       cfg.Level,
		StripeUnit:  cfg.StripeUnit,
		ExtentBytes: cfg.ExtentBytes,
		Occupancy:   cfg.Occupancy,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return 0, err
	}
	return arr.LogicalBytes(), nil
}

// clampRange trims a cache-block-aligned range to the logical volume (the
// last block may overhang the volume end).
func clampRange(off, size, limit int64) (int64, int64) {
	if off >= limit {
		return 0, 0
	}
	if off+size > limit {
		size = limit - off
	}
	return off, size
}
