package sim_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"hibernator/internal/array"
	"hibernator/internal/diskmodel"
	"hibernator/internal/fault"
	"hibernator/internal/hibernator"
	"hibernator/internal/policy"
	"hibernator/internal/raid"
	"hibernator/internal/sim"
	"hibernator/internal/snapshot"
	"hibernator/internal/trace"
)

// snapConfig is the round-trip matrix shape: multi-speed groups, a cache,
// a time series, and (optionally) a fault storm, so a snapshot has to get
// every subsystem's state right.
func snapConfig(seed int64, workers int, faults bool) sim.Config {
	cfg := sim.Config{
		Spec:               diskmodel.MultiSpeedUltrastar(4, 3000),
		Groups:             4,
		GroupDisks:         3,
		Level:              raid.RAID5,
		ExtentBytes:        64 << 20,
		CacheBytes:         8 << 20,
		SampleEvery:        25,
		RespGoal:           0.03,
		RespWindow:         30,
		SpareDisks:         1,
		Seed:               seed,
		ExpectedRotLatency: true,
		Workers:            workers,
	}
	if faults {
		cfg.Retry = array.RetryPolicy{MaxRetries: 2, Backoff: 0.005, OpDeadline: 2, SuspectAfter: 5}
		cfg.Faults = &fault.Schedule{
			Rates:  fault.Rates{TransientProb: 0.001, SpinUpFailProb: 0.02},
			Events: []fault.Event{{Time: 90, Disk: 1, Kind: fault.FailSlow, Factor: 3, Ramp: 20}},
		}
	}
	return cfg
}

func snapSource(t *testing.T, cfg sim.Config, duration float64) trace.Source {
	t.Helper()
	vol, err := sim.LogicalBytes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewCello(trace.CelloConfig{
		Seed: cfg.Seed + 11, VolumeBytes: vol, Duration: duration,
		DayPeriod: duration, DayRate: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// snapSchemes builds one controller per scheme; a fresh controller per
// run, since controllers carry state.
var snapSchemes = []struct {
	name string
	make func() sim.Controller
}{
	{"TPM", func() sim.Controller { return policy.NewTPM(5) }},
	{"DRPM", func() sim.Controller { return policy.NewDRPM() }},
	{"PDC", func() sim.Controller { p := policy.NewPDC(); p.Epoch = 80; return p }},
	{"MAID", func() sim.Controller { return policy.NewMAID() }},
	{"Hibernator", func() sim.Controller { return hibernator.New(hibernator.Options{Epoch: 80}) }},
}

// TestSnapshotRoundTripMatrix is the tentpole property over every scheme
// × faults × workers: (a) a run that captures snapshots is byte-identical
// to one that does not; (b) restoring the mid-run snapshot and running to
// the end reproduces the straight-through run exactly — including the
// snapshots the resumed run itself captures after the restore point.
func TestSnapshotRoundTripMatrix(t *testing.T) {
	const duration = 240
	const every = 80 // boundaries at 80, 160, 240
	for _, sch := range snapSchemes {
		for _, faults := range []bool{false, true} {
			for _, workers := range []int{1, 8} {
				sch, faults, workers := sch, faults, workers
				name := sch.name
				if faults {
					name += "/faults"
				} else {
					name += "/clean"
				}
				if workers == 1 {
					name += "/w1"
				} else {
					name += "/w8"
				}
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					cfg := snapConfig(42, workers, faults)
					// Straight-through, no snapshots: the baseline.
					base, err := sim.Run(cfg, snapSource(t, cfg, duration), sch.make(), duration)
					if err != nil {
						t.Fatal(err)
					}
					// Same run with snapshots enabled.
					var snaps []*snapshot.State
					cfg2 := snapConfig(42, workers, faults)
					cfg2.SnapshotEvery = every
					cfg2.SnapshotSink = func(s *snapshot.State) error { snaps = append(snaps, s); return nil }
					snapped, err := sim.Run(cfg2, snapSource(t, cfg2, duration), sch.make(), duration)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(base, snapped) {
						t.Fatalf("snapshot capture perturbed the run:\n%+v\nvs\n%+v", base, snapped)
					}
					if len(snaps) != 3 {
						t.Fatalf("captured %d snapshots, want 3", len(snaps))
					}
					// File round trip: write -> parse -> write is a fixed point.
					mid := snaps[1]
					reparsed, err := snapshot.Parse(bytes.NewReader(mid.Bytes()))
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(mid.Bytes(), reparsed.Bytes()) {
						t.Fatal("snapshot bytes are not a parse fixed point")
					}
					// Restore from t=160 and run to the end: result and the
					// post-restore snapshot must match the originals exactly.
					var resnaps []*snapshot.State
					cfg3 := snapConfig(42, workers, faults)
					cfg3.SnapshotEvery = every
					cfg3.SnapshotSink = func(s *snapshot.State) error { resnaps = append(resnaps, s); return nil }
					cfg3.ResumeFrom = reparsed
					resumed, err := sim.Run(cfg3, snapSource(t, cfg3, duration), sch.make(), duration)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(base, resumed) {
						t.Fatalf("resumed result diverged from straight-through:\n%+v\nvs\n%+v", base, resumed)
					}
					if len(resnaps) != 3 {
						t.Fatalf("resumed run captured %d snapshots, want 3", len(resnaps))
					}
					for i := range snaps {
						if !bytes.Equal(snaps[i].Bytes(), resnaps[i].Bytes()) {
							t.Fatalf("resumed snapshot %d diverged from original", i)
						}
					}
				})
			}
		}
	}
}

// TestSnapshotWorkerCountInvariant: the captured bytes are a pure
// function of the event-stream position, so workers=1 and workers=8 runs
// capture identical snapshots.
func TestSnapshotWorkerCountInvariant(t *testing.T) {
	const duration = 240
	capture := func(workers int) [][]byte {
		var out [][]byte
		cfg := snapConfig(7, workers, true)
		cfg.SnapshotEvery = 60
		cfg.SnapshotSink = func(s *snapshot.State) error { out = append(out, s.Bytes()); return nil }
		if _, err := sim.Run(cfg, snapSource(t, cfg, duration), policy.NewTPM(5), duration); err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par := capture(1), capture(8)
	if len(seq) != len(par) || len(seq) == 0 {
		t.Fatalf("capture counts: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if !bytes.Equal(seq[i], par[i]) {
			t.Fatalf("snapshot %d differs between workers=1 and workers=8", i)
		}
	}
}

// TestResumeRejectsConfigMismatch: resuming under a different
// configuration must fail before the replay starts, naming the key.
func TestResumeRejectsConfigMismatch(t *testing.T) {
	const duration = 120
	var snaps []*snapshot.State
	cfg := snapConfig(3, 1, false)
	cfg.SnapshotEvery = 60
	cfg.SnapshotSink = func(s *snapshot.State) error { snaps = append(snaps, s); return nil }
	if _, err := sim.Run(cfg, snapSource(t, cfg, duration), policy.NewTPM(5), duration); err != nil {
		t.Fatal(err)
	}
	cfg2 := snapConfig(3, 1, false)
	cfg2.Seed = 999 // different run identity
	cfg2.ResumeFrom = snaps[0]
	_, err := sim.Run(cfg2, snapSource(t, cfg2, duration), policy.NewTPM(5), duration)
	if err == nil || !strings.Contains(err.Error(), "config.seed") {
		t.Fatalf("want config.seed mismatch error, got %v", err)
	}
}

// TestResumeDetectsStateDivergence: a corrupted state entry must abort
// the replay with the first divergent key in the error.
func TestResumeDetectsStateDivergence(t *testing.T) {
	const duration = 120
	var snaps []*snapshot.State
	cfg := snapConfig(4, 1, false)
	cfg.SnapshotEvery = 60
	cfg.SnapshotSink = func(s *snapshot.State) error { snaps = append(snaps, s); return nil }
	if _, err := sim.Run(cfg, snapSource(t, cfg, duration), policy.NewTPM(5), duration); err != nil {
		t.Fatal(err)
	}
	// Corrupt one state line through the serialized form.
	text := string(snaps[0].Bytes())
	corrupt := strings.Replace(text, "state.requests ", "state.requests 9", 1)
	if corrupt == text {
		t.Fatal("corruption did not apply")
	}
	bad, err := snapshot.Parse(strings.NewReader(corrupt))
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := snapConfig(4, 1, false)
	cfg2.ResumeFrom = bad
	_, err = sim.Run(cfg2, snapSource(t, cfg2, duration), policy.NewTPM(5), duration)
	if err == nil || !strings.Contains(err.Error(), "state.requests") {
		t.Fatalf("want state.requests divergence error, got %v", err)
	}
}

// TestResumeRejectsBadEpoch: a snapshot whose epoch lies beyond the run
// duration cannot be resumed.
func TestResumeRejectsBadEpoch(t *testing.T) {
	const duration = 120
	var snaps []*snapshot.State
	cfg := snapConfig(5, 1, false)
	cfg.SnapshotEvery = 60
	cfg.SnapshotSink = func(s *snapshot.State) error { snaps = append(snaps, s); return nil }
	if _, err := sim.Run(cfg, snapSource(t, cfg, duration), policy.NewTPM(5), duration); err != nil {
		t.Fatal(err)
	}
	cfg2 := snapConfig(5, 1, false)
	cfg2.ResumeFrom = snaps[1] // t=120
	src := snapSource(t, cfg2, duration)
	if _, err := sim.Run(cfg2, src, policy.NewTPM(5), 60); err == nil {
		t.Fatal("epoch beyond duration must be rejected")
	}
}
