package sim

import (
	"fmt"
	"math"
	"strconv"

	"hibernator/internal/array"
	"hibernator/internal/cache"
	"hibernator/internal/diskmodel"
	"hibernator/internal/fault"
	"hibernator/internal/simevent"
	"hibernator/internal/snapshot"
	"hibernator/internal/stats"
)

// This file is the epoch-snapshot layer: deterministic full-state capture
// at simulated-time boundaries, and replay-based restore.
//
// Capture rule. A boundary b fires between events: the run loop captures
// exactly when every event with time <= b has executed and none after b
// has. Capture is a pure read — no events are scheduled, no accounting is
// closed, no RNG is drawn — so a run with snapshots enabled is
// byte-identical to one without, in both the sequential and partitioned
// engines, and the captured bytes are a pure function of the event-stream
// position (identical at workers=1 and workers=N).
//
// Restore rule. The simulator never serializes closures: pending events
// (tickers, in-flight I/O completions, staggered plan steps) are all
// re-derivable by construction from the deterministic prefix. "Restore"
// therefore replays the run from t=0 — with metrics/trace rows before the
// snapshot epoch suppressed so exported streams contain only the tail —
// and at the snapshot time captures again and compares entry by entry
// against the file. Any divergence aborts the run naming the first
// mismatched key; agreement proves the resumed tail is the tail of the
// uninterrupted run, byte for byte.

// StateSnapshotter is implemented by controllers that contribute their
// internal state to epoch snapshots. put is called once per key (keys are
// namespaced under "state.policy." by the harness); values must be
// newline-free and non-empty. Implementations must be pure reads.
type StateSnapshotter interface {
	SnapshotState(put func(key, value string))
}

// snapCtl owns a run's snapshot boundaries: the periodic k*every capture
// points feeding Config.SnapshotSink, and (on a resumed run) the one-shot
// verification boundary at the snapshot's epoch.
type snapCtl struct {
	every    float64 // 0 = no periodic boundaries
	k        int     // index of the next periodic boundary (k*every)
	verifyAt float64 // resume verification epoch; <0 when absent or consumed
	verify   *snapshot.State
	duration float64
	capture  func(b float64) *snapshot.State
	sink     func(*snapshot.State) error
}

// peek returns the earliest unfired boundary at or below the run's
// duration, if any.
func (s *snapCtl) peek() (float64, bool) {
	b := math.Inf(1)
	if s.verifyAt >= 0 {
		b = s.verifyAt
	}
	if s.every > 0 {
		if p := float64(s.k) * s.every; p < b {
			b = p
		}
	}
	if b > s.duration {
		return 0, false
	}
	return b, true
}

// fire captures the state at boundary b and routes it: a verification
// boundary diffs against the resume snapshot, a periodic boundary goes to
// the sink. A boundary can be both.
func (s *snapCtl) fire(b float64) error {
	st := s.capture(b)
	if s.verifyAt >= 0 && b == s.verifyAt {
		s.verifyAt = -1
		want := s.verify.Section("state.")
		if diff := snapshot.Diff(want, st.Section("state.")); diff != "" {
			return fmt.Errorf("sim: resume verification failed at t=%v: %s", b, diff)
		}
	}
	if s.every > 0 && b == float64(s.k)*s.every {
		s.k++
		if s.sink != nil {
			if err := s.sink(st); err != nil {
				return fmt.Errorf("sim: snapshot sink at t=%v: %w", b, err)
			}
		}
	}
	return nil
}

// snapRefs bundles everything capture reads. All fields are the run's
// live objects; capture never mutates them.
type snapRefs struct {
	cfg      *Config
	scheme   string
	duration float64
	engine   *simevent.Engine
	parts    []*simevent.Engine
	arr      *array.Array
	cache    *cache.Cache
	env      *Env
	respW    *stats.Welford
	respPct  *stats.Reservoir
	res      *Result
	windows  *int
	viols    *int
	ctrl     Controller
}

// capture serializes the full deterministic state at boundary time b.
func (r *snapRefs) capture(b float64) *snapshot.State {
	st := snapshot.New()
	st.SetFloat("t", b)
	r.putConfig(st.Set)
	r.putState(b, st.Set)
	return st
}

// putConfig emits the run-identity section. Two runs may only resume one
// another when every one of these keys matches; Workers, Context,
// Invariants, and the snapshot knobs themselves are deliberately absent —
// they never change the deterministic output, so a snapshot taken at
// workers=8 restores at workers=1 and vice versa.
func (r *snapRefs) putConfig(put func(k, v string)) {
	c := r.cfg
	put("config.scheme", r.scheme)
	put("config.duration", ff(r.duration))
	put("config.spec", c.Spec.Name)
	put("config.groups", itoa(c.Groups))
	put("config.groupdisks", itoa(c.GroupDisks))
	put("config.level", c.Level.String())
	put("config.stripeunit", i64(c.StripeUnit))
	put("config.extentbytes", i64(c.ExtentBytes))
	put("config.occupancy", ff(c.Occupancy))
	put("config.sparedisks", itoa(c.SpareDisks))
	put("config.cachebytes", i64(c.CacheBytes))
	put("config.cacheblock", i64(c.CacheBlock))
	put("config.destageperiod", ff(c.DestagePeriod))
	put("config.destagemax", itoa(c.DestageMax))
	put("config.respgoal", ff(c.RespGoal))
	put("config.respwindow", ff(c.RespWindow))
	put("config.sampleevery", ff(c.SampleEvery))
	put("config.warmup", ff(c.Warmup))
	put("config.seed", i64(c.Seed))
	put("config.initiallevel", itoa(c.InitialLevel))
	put("config.expectedrot", b01(c.ExpectedRotLatency))
	put("config.scheduler", itoa(int(c.Scheduler)))
	put("config.retry.maxretries", itoa(c.Retry.MaxRetries))
	put("config.retry.backoff", ff(c.Retry.Backoff))
	put("config.retry.backofffactor", ff(c.Retry.BackoffFactor))
	put("config.retry.opdeadline", ff(c.Retry.OpDeadline))
	put("config.retry.suspectafter", itoa(c.Retry.SuspectAfter))
	put("config.retry.evictafter", itoa(c.Retry.EvictAfter))
	put("config.retry.autorebuild", b01(c.Retry.AutoRebuild))
	put("config.faults", faultDigest(c.Faults))
	put("config.metrics", b01(c.Metrics != nil))
	put("config.obssampleevery", ff(c.ObsSampleEvery))
}

// putState emits the state digest at boundary time b: engine position,
// harness accumulators, array/group/disk state including energy integrals
// and RNG stream positions, cache, and the controller's contribution.
func (r *snapRefs) putState(b float64, put func(k, v string)) {
	processed, pending := r.engine.Processed(), r.engine.Pending()
	for _, pe := range r.parts {
		processed += pe.Processed()
		pending += pe.Pending()
	}
	put("state.events.processed", u64(processed))
	put("state.events.pending", itoa(pending))
	put("state.requests", u64(r.res.Requests))
	put("state.cachehits", u64(r.res.CacheHits))
	put("state.series", itoa(len(r.res.Series)))
	put("state.goalwindows", itoa(*r.windows))
	put("state.goalviolations", itoa(*r.viols))
	put("state.resp.n", u64(r.respW.Count()))
	put("state.resp.fp", u64(r.respW.Fingerprint()))
	put("state.resppct.fp", u64(r.respPct.Fingerprint()))
	put("state.respcum.n", u64(r.env.RespCum.Count()))
	put("state.respcum.mean", ff(r.env.RespCum.Mean()))

	put("state.array.energy", ff(r.arr.EnergyAt(b)))
	put("state.array.layout.fp", u64(r.arr.LayoutFingerprint()))
	mc, mb := r.arr.Migrations()
	put("state.array.migrations", u64(mc))
	put("state.array.migratedbytes", u64(mb))
	fs := r.arr.FaultStats()
	put("state.array.operrors", u64(fs.OpErrors))
	put("state.array.retries", u64(fs.Retries))
	put("state.array.timeouts", u64(fs.Timeouts))
	put("state.array.fallbacks", u64(fs.Fallbacks))
	put("state.array.evictions", u64(fs.Evictions))
	put("state.array.diskfailures", u64(r.arr.DiskFailures()))
	put("state.array.rebuilds", u64(r.arr.Rebuilds()))
	put("state.array.lostios", u64(r.arr.LostIOs()))
	ist := r.cfg.Faults.Stats()
	put("state.faults.injected", itoa(ist.Injected))
	put("state.faults.skipped", itoa(ist.Skipped))

	if r.cache != nil {
		put("state.cache.fp", u64(r.cache.Fingerprint()))
		put("state.cache.len", itoa(r.cache.Len()))
		put("state.cache.dirtylen", itoa(r.cache.DirtyLen()))
		hits, misses, destages := r.cache.Stats()
		put("state.cache.hits", u64(hits))
		put("state.cache.misses", u64(misses))
		put("state.cache.destages", u64(destages))
		rl, wl := r.cache.Lookups()
		put("state.cache.readlookups", u64(rl))
		put("state.cache.writelookups", u64(wl))
		wh, wa := r.cache.WriteStats()
		put("state.cache.writehits", u64(wh))
		put("state.cache.writeallocs", u64(wa))
	}

	for gi, g := range r.arr.Groups() {
		p := "state.group" + itoa(gi)
		put(p+".level", itoa(g.Level()))
		put(p+".target", itoa(g.TargetLevel()))
		put(p+".rebuilding", b01(g.Rebuilding()))
		put(p+".suspect", itoa(len(g.SuspectDisks())))
		_, used := g.Slots()
		put(p+".used", itoa(used))
	}

	for di, d := range r.arr.Disks() {
		p := "state.disk" + itoa(di)
		put(p+".state", itoa(int(d.State())))
		put(p+".level", itoa(d.Level()))
		put(p+".target", itoa(d.TargetLevel()))
		put(p+".queue", itoa(d.QueueLen()))
		put(p+".fgqueue", itoa(d.ForegroundQueueLen()))
		put(p+".completed", u64(d.Completed()))
		put(p+".bgcompleted", u64(d.BackgroundCompleted()))
		put(p+".spinups", u64(d.SpinUps()))
		put(p+".spindowns", u64(d.SpinDowns()))
		put(p+".levelshifts", u64(d.LevelShifts()))
		put(p+".busytime", ff(d.BusyTime()))
		br, bw := d.BytesMoved()
		put(p+".bytesread", u64(br))
		put(p+".byteswritten", u64(bw))
		put(p+".seqfg", u64(d.SequentialForeground()))
		put(p+".maxdepth", itoa(d.MaxQueueDepth()))
		put(p+".rotdraws", u64(d.RotLatencyDraws()))
		put(p+".faultdraws", u64(d.FaultRNGDraws()))
		put(p+".transient", u64(d.TransientErrors()))
		put(p+".latent", u64(d.LatentErrors()))
		put(p+".spinupfail", u64(d.SpinUpFailures()))
		put(p+".latent.fp", u64(latentFP(d.LatentRanges())))
		put(p+".acctstate", d.Account().State())
		put(p+".power", ff(d.Account().Power()))
		put(p+".energy", ff(d.Account().EnergyAt(b)))
		put(p+".svc.fp", u64(d.ServiceMoments().Fingerprint()))
		put(p+".size.fp", u64(d.SizeMoments().Fingerprint()))
		put(p+".resp.fp", u64(d.ResponseMoments().Fingerprint()))
		put(p+".pos.fp", u64(d.PositionMoments().Fingerprint()))
	}

	if ss, ok := r.ctrl.(StateSnapshotter); ok {
		ss.SnapshotState(func(k, v string) { put("state.policy."+k, v) })
	}
}

// verifyResumeConfig checks the snapshot's run-identity section against
// the current configuration before the replay starts, so a wrong pairing
// fails immediately instead of after minutes of replay.
func (r *snapRefs) verifyResumeConfig(snap *snapshot.State) error {
	cur := snapshot.New()
	r.putConfig(cur.Set)
	if diff := snapshot.Diff(snap.Section("config."), cur.Section("config.")); diff != "" {
		return fmt.Errorf("sim: resume snapshot does not match this run's configuration: %s", diff)
	}
	return nil
}

// faultDigest summarizes a fault schedule as count:fnv over every event's
// fields plus the ambient rates ("none" for an empty schedule).
func faultDigest(s *fault.Schedule) string {
	if s.Empty() {
		return "none"
	}
	h := fnvOffset
	for _, ev := range s.Events {
		h = fnvStr(h, fmt.Sprintf("%v|%d|%d|%v|%v|%v|%v|%d|%d|%d",
			ev.Time, ev.Disk, int(ev.Kind), ev.Prob, ev.Duration, ev.Factor, ev.Ramp, ev.Lo, ev.Hi, ev.Retries))
	}
	h = fnvStr(h, fmt.Sprintf("%v|%v|%d",
		s.Rates.TransientProb, s.Rates.SpinUpFailProb, s.Rates.SpinUpRetries))
	return fmt.Sprintf("%d:%016x", len(s.Events), h)
}

// latentFP hashes a disk's latent sector ranges in insertion order.
func latentFP(rs []diskmodel.LBARange) uint64 {
	h := fnvU(fnvOffset, uint64(len(rs)))
	for _, r := range rs {
		h = fnvU(h, uint64(r.Lo))
		h = fnvU(h, uint64(r.Hi))
	}
	return h
}

const (
	fnvOffset = uint64(14695981039346656037)
	fnvPrime  = uint64(1099511628211)
)

// fnvU folds one uint64 into an FNV-1a hash byte-wise.
func fnvU(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}

// fnvStr folds a string into an FNV-1a hash.
func fnvStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// Formatting helpers shared by the capture path. ff uses the shortest
// round-trip float form, the same encoding snapshot.SetFloat uses.
func ff(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
func itoa(v int) string   { return strconv.Itoa(v) }
func i64(v int64) string  { return strconv.FormatInt(v, 10) }
func u64(v uint64) string { return strconv.FormatUint(v, 10) }
func b01(v bool) string {
	if v {
		return "1"
	}
	return "0"
}
