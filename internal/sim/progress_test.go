package sim_test

import (
	"reflect"
	"sync/atomic"
	"testing"

	"hibernator/internal/policy"
	"hibernator/internal/sim"
)

// Config.Progress must observe the run without perturbing it, end at the
// exact total event count, and report the same total at any worker count
// — the job server derives percent-complete from it.
func TestProgressCounter(t *testing.T) {
	totals := make(map[int]uint64)
	for _, workers := range []int{1, 8} {
		base := snapConfig(6, workers, true)
		want, err := sim.Run(base, snapSource(t, base, 240), policy.NewTPM(5), 240)
		if err != nil {
			t.Fatal(err)
		}

		cfg := snapConfig(6, workers, true)
		var progress atomic.Uint64
		cfg.Progress = &progress
		got, err := sim.Run(cfg, snapSource(t, cfg, 240), policy.NewTPM(5), 240)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: progress counter perturbed the run", workers)
		}
		if progress.Load() == 0 {
			t.Fatalf("workers=%d: progress never published", workers)
		}
		totals[workers] = progress.Load()
	}
	if totals[1] != totals[8] {
		t.Fatalf("final progress differs across worker counts: %d vs %d", totals[1], totals[8])
	}
}
