package snapshot

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func sample() *State {
	s := New()
	s.SetFloat("t", 3600)
	s.Set("config.scheme", "Hibernator")
	s.SetInt("state.requests", 123456)
	s.SetUint("state.array.layout.fp", 987654321)
	s.Set("state.policy.hib.plan", "[2 2 0 0]|pred=0.012|feasible=true")
	return s
}

func TestWriteParseFixedPoint(t *testing.T) {
	s := sample()
	first := s.Bytes()
	p, err := Parse(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	second := p.Bytes()
	if !bytes.Equal(first, second) {
		t.Fatalf("not a fixed point:\n%s\nvs\n%s", first, second)
	}
	if p.Len() != s.Len() {
		t.Fatalf("len %d vs %d", p.Len(), s.Len())
	}
	if v, _ := p.Get("state.policy.hib.plan"); !strings.Contains(v, "feasible=true") {
		t.Fatalf("value with spaces mangled: %q", v)
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epoch.snap")
	s := sample()
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s.Bytes(), p.Bytes()) {
		t.Fatal("Save/Load round trip diverged")
	}
	if f, err := p.Float("t"); err != nil || f != 3600 {
		t.Fatalf("t = %v, %v", f, err)
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"empty", "", "empty input"},
		{"bad header", "# other format\nk v\n", "bad header"},
		{"missing value", Header + "\nkeyonly\n", "want \"key value\""},
		{"empty line", Header + "\nk v\n\nk2 v\n", "empty line"},
		{"duplicate key", Header + "\nk v\nk w\n", "duplicate key"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(c.input))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want %q", err, c.wantErr)
			}
		})
	}
}

func TestSection(t *testing.T) {
	s := sample()
	st := s.Section("state.")
	if len(st) != 3 {
		t.Fatalf("state section has %d entries", len(st))
	}
	for _, e := range st {
		if !strings.HasPrefix(e.Key, "state.") {
			t.Fatalf("stray key %s", e.Key)
		}
	}
}

func TestDiff(t *testing.T) {
	a, b := sample(), sample()
	if d := Diff(a.Section("state."), b.Section("state.")); d != "" {
		t.Fatalf("identical states diff: %s", d)
	}
	c := New()
	c.SetInt("state.requests", 123457)
	c.SetUint("state.array.layout.fp", 987654321)
	d := Diff(a.Section("state.")[:2], c.Section("state."))
	if !strings.Contains(d, "state.requests") {
		t.Fatalf("diff = %q, want first divergent key named", d)
	}
	if d2 := Diff(a.Section("state."), a.Section("state.")[:1]); !strings.Contains(d2, "entry count") {
		t.Fatalf("diff = %q", d2)
	}
}

func TestSetPanicsOnMalformed(t *testing.T) {
	for _, c := range []struct{ k, v string }{
		{"has space", "v"},
		{"", "v"},
		{"k", ""},
		{"k", "line\nbreak"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Set(%q, %q) did not panic", c.k, c.v)
				}
			}()
			New().Set(c.k, c.v)
		}()
	}
}

func TestHashMatchesBytesIdentity(t *testing.T) {
	a, b := New(), New()
	for _, s := range []*State{a, b} {
		s.Set("clock", "12.5")
		s.SetInt("events", 42)
	}
	if a.Hash() != b.Hash() {
		t.Fatal("identical states hash differently")
	}
	if len(a.Hash()) != 64 {
		t.Fatalf("hash %q is not hex sha256", a.Hash())
	}
	c := New()
	c.Set("clock", "12.5")
	c.SetInt("events", 43)
	if a.Hash() == c.Hash() {
		t.Fatal("different states hash equal")
	}
}
