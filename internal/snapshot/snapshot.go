// Package snapshot holds the deterministic full-state serialization a
// simulation run captures at epoch boundaries. A snapshot is an ordered
// list of key/value lines under a versioned header — the same plain-text,
// write→parse→write fixed-point discipline the chaos repro files use —
// so two snapshots are comparable byte for byte and a file survives a
// round trip unchanged.
//
// The simulator never restores by deserializing closures: pending
// controller events are re-derivable by construction, so "restore" means
// replaying the deterministic prefix and then proving, byte for byte,
// that the re-derived state equals the snapshot (see internal/sim). The
// snapshot is therefore both a resume token and a rich state digest: any
// nondeterminism, state-capture drift, or serialization bug surfaces as
// a named first-divergent key instead of a silently wrong tail.
package snapshot

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hibernator/internal/atomicio"
)

// Header is the first line of every snapshot file; Parse rejects
// anything else so stale formats fail loudly.
const Header = "# hibsim snapshot v1"

// maxLine bounds one snapshot line so a corrupt file cannot balloon
// memory while being parsed.
const maxLine = 64 << 10

// Entry is one captured key/value pair. Keys contain no spaces; values
// contain no newlines.
type Entry struct {
	Key, Value string
}

// State is an ordered set of entries. Order is part of the format: the
// capture path emits sections in a fixed order, and comparison walks the
// entries positionally, so equality is exact byte equality of the file.
type State struct {
	entries []Entry
	index   map[string]int
}

// New returns an empty state.
func New() *State {
	return &State{index: map[string]int{}}
}

// Set appends one entry. Duplicate keys, spaces in keys, and newlines in
// values are programming errors in the capture path, so Set panics on
// them rather than letting a malformed snapshot escape.
func (s *State) Set(key, value string) {
	if key == "" || strings.ContainsAny(key, " \t\n\r") {
		panic("snapshot: bad key " + strconv.Quote(key))
	}
	if strings.ContainsAny(value, "\n\r") || value == "" {
		panic("snapshot: bad value for " + key + ": " + strconv.Quote(value))
	}
	if _, dup := s.index[key]; dup {
		panic("snapshot: duplicate key " + key)
	}
	s.index[key] = len(s.entries)
	s.entries = append(s.entries, Entry{Key: key, Value: value})
}

// SetFloat records v in shortest-round-trip form.
func (s *State) SetFloat(key string, v float64) {
	s.Set(key, strconv.FormatFloat(v, 'g', -1, 64))
}

// SetInt records v in decimal.
func (s *State) SetInt(key string, v int64) {
	s.Set(key, strconv.FormatInt(v, 10))
}

// SetUint records v in decimal.
func (s *State) SetUint(key string, v uint64) {
	s.Set(key, strconv.FormatUint(v, 10))
}

// Get returns the value stored under key.
func (s *State) Get(key string) (string, bool) {
	i, ok := s.index[key]
	if !ok {
		return "", false
	}
	return s.entries[i].Value, true
}

// Float parses the value stored under key as a float64.
func (s *State) Float(key string) (float64, error) {
	v, ok := s.Get(key)
	if !ok {
		return 0, fmt.Errorf("snapshot: missing key %s", key)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("snapshot: key %s: %v", key, err)
	}
	return f, nil
}

// Len reports the number of entries.
func (s *State) Len() int { return len(s.entries) }

// Section returns the entries whose key starts with prefix, in capture
// order.
func (s *State) Section(prefix string) []Entry {
	var out []Entry
	for _, e := range s.entries {
		if strings.HasPrefix(e.Key, prefix) {
			out = append(out, e)
		}
	}
	return out
}

// WriteTo writes the snapshot in its canonical form: the header, then
// one "key value" line per entry in insertion order.
func (s *State) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	b.WriteString(Header)
	b.WriteByte('\n')
	for _, e := range s.entries {
		b.WriteString(e.Key)
		b.WriteByte(' ')
		b.WriteString(e.Value)
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Bytes returns the canonical serialized form.
func (s *State) Bytes() []byte {
	var b strings.Builder
	s.WriteTo(&b)
	return []byte(b.String())
}

// Hash returns the hex sha256 of the snapshot's canonical serialized
// form. Two states hash equal exactly when their files are
// byte-identical, so the hash is a compact identity for journals and
// recovery logs to record and re-verify.
func (s *State) Hash() string {
	sum := sha256.Sum256(s.Bytes())
	return hex.EncodeToString(sum[:])
}

// Save writes the snapshot to path atomically, so a crash mid-write can
// never leave a torn snapshot behind.
func (s *State) Save(path string) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := s.WriteTo(w)
		return err
	})
}

// Parse reads a snapshot in canonical form. Errors carry the 1-based
// line number. Parse(WriteTo(s)) reproduces s exactly, which makes the
// file a write→parse→write fixed point.
func Parse(r io.Reader) (*State, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 4096), maxLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("snapshot: %v", err)
		}
		return nil, fmt.Errorf("snapshot: empty input")
	}
	if sc.Text() != Header {
		return nil, fmt.Errorf("snapshot: line 1: bad header %q (want %q)", sc.Text(), Header)
	}
	st := New()
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			return nil, fmt.Errorf("snapshot: line %d: empty line", line)
		}
		key, value, ok := strings.Cut(text, " ")
		if !ok || key == "" || value == "" {
			return nil, fmt.Errorf("snapshot: line %d: want \"key value\", got %q", line, text)
		}
		if _, dup := st.index[key]; dup {
			return nil, fmt.Errorf("snapshot: line %d: duplicate key %s", line, key)
		}
		if strings.ContainsAny(value, "\r") {
			return nil, fmt.Errorf("snapshot: line %d: carriage return in value", line)
		}
		st.Set(key, value)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: line %d: %v", line, err)
	}
	return st, nil
}

// Load reads and parses the snapshot file at path.
func Load(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return st, nil
}

// Diff compares two entry lists positionally and describes the first
// divergence ("" when identical). Positional comparison is deliberate:
// capture order is part of the format, so a reordering is itself a bug
// worth reporting.
func Diff(want, got []Entry) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i].Key != got[i].Key {
			return fmt.Sprintf("entry %d: key %q vs %q", i, want[i].Key, got[i].Key)
		}
		if want[i].Value != got[i].Value {
			return fmt.Sprintf("%s: %q vs %q", want[i].Key, want[i].Value, got[i].Value)
		}
	}
	if len(want) != len(got) {
		return fmt.Sprintf("entry count: %d vs %d", len(want), len(got))
	}
	return ""
}
