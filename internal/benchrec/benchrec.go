// Package benchrec records the repo's performance trajectory: it runs the
// event-engine microbench kernels and the reference end-to-end experiment
// suite in-process, and serializes the numbers as one canonical
// BENCH_NNNN.json per PR (schema documented in EXPERIMENTS.md). The smoke
// comparison is the CI gate: allocations on the event hot path or a
// beyond-tolerance ns/event regression against the committed baseline
// fails the build, while honest run-to-run timing noise does not.
package benchrec

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"hibernator/internal/experiments"
	"hibernator/internal/simevent"
)

// Schema is the format tag every record carries; bump it when fields
// change meaning, never silently.
const Schema = "hibernator-bench/1"

// Record is one BENCH_NNNN.json: the engine kernels, the end-to-end
// reference run, and enough host metadata to judge cross-machine numbers.
type Record struct {
	Schema string `json:"schema"`
	// PR is the pull-request ordinal the record belongs to (the NNNN in
	// the filename).
	PR int `json:"pr"`

	Engine EngineBench `json:"engine"`
	E2E    E2EBench    `json:"e2e"`
	Host   Host        `json:"host"`
}

// EngineBench is the microbench section: per-event costs of the calendar
// queue's hot paths, measured via testing.Benchmark on this host.
type EngineBench struct {
	// ScheduleFireNs is ns per schedule+fire pair against a ~1000-deep
	// calendar — the cost every simulated I/O pays at least once.
	ScheduleFireNs float64 `json:"schedule_fire_ns_per_event"`
	// ScheduleCancelNs is ns per schedule+cancel pair (in-flight aborts).
	ScheduleCancelNs float64 `json:"schedule_cancel_ns_per_event"`
	// ChurnNs is ns per event through 256-burst schedule/drain cycles.
	ChurnNs float64 `json:"churn_ns_per_event"`
	// Depth10kNs is ns per schedule+fire with 10k events pending — the
	// regime where the calendar queue must beat a binary heap by >=2x.
	Depth10kNs float64 `json:"depth10k_ns_per_event"`
	// AllocsPerEvent is the worst allocs/op across all kernels; the
	// engine's contract is zero.
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// EventsPerSec is 1e9/ScheduleFireNs, the headline throughput.
	EventsPerSec float64 `json:"events_per_sec"`
}

// E2EBench is the end-to-end section: the reference experiment suite run
// in-process (the library path `hibexp -run all` drives).
type E2EBench struct {
	// Command names the CLI equivalent of what was measured.
	Command string `json:"command"`
	// Scale is the duration scale factor the suite ran at.
	Scale float64 `json:"scale"`
	// WallSeconds is the wall-clock time of the whole suite.
	WallSeconds float64 `json:"wall_seconds"`
}

// Host identifies the machine the numbers came from.
type Host struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
}

// kernels are the microbench bodies. They mirror the benchmarks in
// internal/simevent/bench_test.go (test files cannot be imported, so the
// recorder carries its own copies; keep them in sync).
func benchScheduleFire(b *testing.B) {
	e := simevent.New()
	fn := func() {}
	for i := 0; i < 1000; i++ {
		e.Schedule(float64(i)+1, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(float64(i)+1001, fn)
		e.Step()
	}
}

func benchScheduleCancel(b *testing.B) {
	e := simevent.New()
	fn := func() {}
	for i := 0; i < 1000; i++ {
		e.Schedule(float64(i)+1, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cancel(e.Schedule(2000, fn))
	}
}

func benchChurn(b *testing.B) {
	e := simevent.New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 0; j < 256; j++ {
			e.Schedule(float64((j*37)%256)+1, fn)
		}
		e.Run(base + 257)
	}
}

func benchDepth10k(b *testing.B) {
	e := simevent.New()
	fn := func() {}
	for i := 0; i < 10000; i++ {
		e.Schedule(1+float64(i%97)/97*100, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(100, fn)
		e.Step()
	}
}

// perOp converts a benchmark result to (ns/op, allocs/op) as floats.
func perOp(r testing.BenchmarkResult) (ns, allocs float64) {
	if r.N == 0 {
		return 0, 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N), float64(r.AllocsPerOp())
}

// churnEvents is how many events one churn iteration fires.
const churnEvents = 256

// CollectEngine runs the microbench kernels and fills the engine section.
func CollectEngine() EngineBench {
	var e EngineBench
	var worst float64
	run := func(f func(*testing.B), into *float64, perIter float64) {
		ns, allocs := perOp(testing.Benchmark(f))
		*into = ns / perIter
		if a := allocs / perIter; a > worst {
			worst = a
		}
	}
	run(benchScheduleFire, &e.ScheduleFireNs, 1)
	run(benchScheduleCancel, &e.ScheduleCancelNs, 1)
	run(benchChurn, &e.ChurnNs, churnEvents)
	run(benchDepth10k, &e.Depth10kNs, 1)
	e.AllocsPerEvent = worst
	if e.ScheduleFireNs > 0 {
		e.EventsPerSec = 1e9 / e.ScheduleFireNs
	}
	return e
}

// CollectE2E times the full experiment suite in-process at the given
// scale — the library path `hibexp -run all -scale <s>` drives — using
// wallSeconds measured by the caller (the recorder shells nothing out).
func CollectE2E(scale float64, wallSeconds float64) E2EBench {
	return E2EBench{
		Command:     fmt.Sprintf("hibexp -run all -scale %g", scale),
		Scale:       scale,
		WallSeconds: wallSeconds,
	}
}

// RunSuite executes every experiment at the given scale and returns any
// error; the caller times it. Output tables are discarded — only the work
// is wanted.
func RunSuite(scale float64, simWorkers int) error {
	opts := experiments.Opts{Scale: scale, Seed: 1, Workers: 1, SimWorkers: simWorkers}
	for _, e := range experiments.All() {
		if _, err := e.Run(opts); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// NewRecord assembles a record for the given PR ordinal.
func NewRecord(pr int, eng EngineBench, e2e E2EBench) *Record {
	return &Record{
		Schema: Schema,
		PR:     pr,
		Engine: eng,
		E2E:    e2e,
		Host: Host{
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
			GoVersion: runtime.Version(),
		},
	}
}

// Write serializes the record to path, pretty-printed and newline-
// terminated so the JSON diffs cleanly in review.
func (r *Record) Write(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Load reads and validates a record from path.
func Load(path string) (*Record, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// SmokeTolerance is the regression multiplier the smoke gate allows: a
// fresh measurement may be up to this many times the baseline before the
// gate fails. Single-run CI timing is noisy; 2x is signal.
const SmokeTolerance = 2.0

// Smoke compares a fresh engine measurement against a committed baseline
// and returns the first gate violation: any allocation on the event hot
// path, or a kernel slower than SmokeTolerance times the baseline.
func Smoke(fresh, baseline EngineBench) error {
	if fresh.AllocsPerEvent > 0 {
		return fmt.Errorf("allocs/event = %g, want 0", fresh.AllocsPerEvent)
	}
	type pair struct {
		name      string
		got, base float64
	}
	for _, p := range []pair{
		{"schedule_fire", fresh.ScheduleFireNs, baseline.ScheduleFireNs},
		{"schedule_cancel", fresh.ScheduleCancelNs, baseline.ScheduleCancelNs},
		{"churn", fresh.ChurnNs, baseline.ChurnNs},
		{"depth10k", fresh.Depth10kNs, baseline.Depth10kNs},
	} {
		if p.base > 0 && p.got > p.base*SmokeTolerance {
			return fmt.Errorf("%s: %.1f ns/event vs baseline %.1f (>%.0fx)",
				p.name, p.got, p.base, SmokeTolerance)
		}
	}
	return nil
}
