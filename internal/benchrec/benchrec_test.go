package benchrec

import (
	"path/filepath"
	"strings"
	"testing"
)

func sampleEngine() EngineBench {
	return EngineBench{
		ScheduleFireNs:   33.4,
		ScheduleCancelNs: 25.4,
		ChurnNs:          30.0,
		Depth10kNs:       45.2,
		AllocsPerEvent:   0,
		EventsPerSec:     1e9 / 33.4,
	}
}

// TestRecordRoundTrip writes a record and loads it back unchanged.
func TestRecordRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_9999.json")
	rec := NewRecord(9999, sampleEngine(), CollectE2E(0.05, 12.5))
	if err := rec.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *rec {
		t.Fatalf("round trip changed the record:\n  wrote %+v\n  read  %+v", rec, got)
	}
	if got.E2E.Command != "hibexp -run all -scale 0.05" {
		t.Fatalf("e2e command = %q", got.E2E.Command)
	}
}

// TestLoadRejectsWrongSchema guards against silently comparing records of
// a different format generation.
func TestLoadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	rec := NewRecord(1, sampleEngine(), E2EBench{})
	rec.Schema = "hibernator-bench/0"
	if err := rec.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("Load accepted wrong schema (err=%v)", err)
	}
}

// TestSmokeGate exercises every branch of the CI gate.
func TestSmokeGate(t *testing.T) {
	base := sampleEngine()

	if err := Smoke(base, base); err != nil {
		t.Fatalf("identical measurement failed the gate: %v", err)
	}

	slower := base
	slower.ScheduleFireNs = base.ScheduleFireNs * 1.9
	if err := Smoke(slower, base); err != nil {
		t.Fatalf("within-tolerance slowdown failed the gate: %v", err)
	}

	regressed := base
	regressed.ChurnNs = base.ChurnNs*SmokeTolerance + 1
	if err := Smoke(regressed, base); err == nil {
		t.Fatal("churn regression beyond tolerance passed the gate")
	}

	allocs := base
	allocs.AllocsPerEvent = 0.5
	if err := Smoke(allocs, base); err == nil || !strings.Contains(err.Error(), "allocs") {
		t.Fatalf("allocating measurement passed the gate (err=%v)", err)
	}

	// A zero baseline field (older record) must not divide the gate into
	// a false failure.
	sparse := EngineBench{}
	if err := Smoke(base, sparse); err != nil {
		t.Fatalf("zero baseline tripped the gate: %v", err)
	}
}
