// Package atomicio writes files atomically: content goes to a temporary
// file in the destination directory, is fsynced, and is renamed over the
// target in one step. A crash — kill -9 included — can therefore never
// leave a torn result file: readers see either the old complete content
// or the new complete content, nothing in between. Every result artifact
// the CLIs produce (tables, reports, metrics streams, repro files,
// snapshots, journal sidecars) goes through this package.
package atomicio

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
)

// WriteFile streams content produced by write into path atomically. The
// temporary file lives in path's directory so the final rename never
// crosses a filesystem boundary. On any error the temporary file is
// removed and the target is left untouched.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return nil
}

// WriteFileBytes writes data into path atomically.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
