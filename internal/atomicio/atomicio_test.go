package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFileBytes(path, []byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello\n" {
		t.Fatalf("content = %q", got)
	}
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFileBytes(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("content = %q", got)
	}
}

func TestWriteFileErrorLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileBytes(path, []byte("original")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "original" {
		t.Fatalf("target was touched: %q", got)
	}
	// The temporary file must be cleaned up too.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}
