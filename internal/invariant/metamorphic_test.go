package invariant_test

// Metamorphic checks: properties that must hold across *pairs* of runs —
// repeating a run changes nothing, arming the checker changes nothing,
// run order changes nothing, and more simulated time never costs less
// energy. Each catches a class of accounting bug (hidden global state,
// observer side effects, cross-run leakage, time-truncation) that no
// single-run invariant can see.

import (
	"testing"

	"hibernator/internal/hibernator"
	"hibernator/internal/invariant"
	"hibernator/internal/policy"
	"hibernator/internal/sim"
)

// fingerprint collapses a run to the scalars any accounting bug would
// disturb. Exact float comparison is intentional: a deterministic
// simulator must reproduce these bit for bit.
type fingerprint struct {
	energy, meanResp, p99 float64
	requests, cacheHits   uint64
	spinUps, levelShifts  uint64
	migrations            uint64
}

func fp(r *sim.Result) fingerprint {
	return fingerprint{
		energy: r.Energy, meanResp: r.MeanResp, p99: r.P99Resp,
		requests: r.Requests, cacheHits: r.CacheHits,
		spinUps: r.SpinUps, levelShifts: r.LevelShifts,
		migrations: r.Migrations,
	}
}

// runScheme executes one run of the named scheme, optionally armed.
func runScheme(t *testing.T, scheme string, seed int64, dur float64, armed bool) *sim.Result {
	t.Helper()
	cfg := testConfig(seed)
	cfg.RespGoal = 0.02
	var chk *invariant.Checker
	if armed {
		chk = invariant.New()
		cfg.Invariants = chk
	}
	var ctrl sim.Controller = policy.NewBase()
	if scheme == "hibernator" {
		ctrl = hibernator.New(hibernator.Options{Epoch: dur / 4})
	}
	src := oltpSource(t, cfg, dur, 30, seed+11)
	res, err := sim.Run(cfg, src, ctrl, dur)
	if err != nil {
		t.Fatal(err)
	}
	if armed {
		mustOk(t, chk)
	}
	return res
}

// TestDeterminismAcrossSeeds: for each seed, repeating the identical run
// reproduces it exactly; distinct seeds genuinely differ.
func TestDeterminismAcrossSeeds(t *testing.T) {
	const dur = 300
	var prints []fingerprint
	for _, seed := range []int64{1, 2, 5} {
		a := fp(runScheme(t, "hibernator", seed, dur, true))
		b := fp(runScheme(t, "hibernator", seed, dur, true))
		if a != b {
			t.Errorf("seed %d: repeat run diverged:\n  %+v\n  %+v", seed, a, b)
		}
		prints = append(prints, a)
	}
	if prints[0] == prints[1] && prints[1] == prints[2] {
		t.Error("all seeds produced identical runs — the seed is not reaching the simulation")
	}
}

// TestArmedMatchesUnarmed: the checker observes; it must not perturb.
// An armed run's results are identical to the same run unarmed.
func TestArmedMatchesUnarmed(t *testing.T) {
	const dur = 300
	for _, scheme := range []string{"base", "hibernator"} {
		unarmed := fp(runScheme(t, scheme, 3, dur, false))
		armed := fp(runScheme(t, scheme, 3, dur, true))
		if unarmed != armed {
			t.Errorf("%s: arming the checker changed the run:\n  unarmed %+v\n  armed   %+v",
				scheme, unarmed, armed)
		}
	}
}

// TestSchemeOrderInvariance: runs share no state, so executing the
// contenders in either order reproduces each scheme's result exactly.
func TestSchemeOrderInvariance(t *testing.T) {
	const dur = 300
	baseFirst := []fingerprint{
		fp(runScheme(t, "base", 7, dur, true)),
		fp(runScheme(t, "hibernator", 7, dur, true)),
	}
	hibFirst := []fingerprint{
		fp(runScheme(t, "hibernator", 7, dur, true)),
		fp(runScheme(t, "base", 7, dur, true)),
	}
	if baseFirst[0] != hibFirst[1] {
		t.Errorf("Base result depends on run order:\n  first  %+v\n  second %+v", baseFirst[0], hibFirst[1])
	}
	if baseFirst[1] != hibFirst[0] {
		t.Errorf("Hibernator result depends on run order:\n  second %+v\n  first  %+v", baseFirst[1], hibFirst[0])
	}
}

// TestBaseEnergyMonotoneInDuration: under the always-full-speed Base
// policy, a longer run can only cost more energy. A truncated energy
// integral (e.g. an interval dropped at a mid-run state change) shows up
// here as a violation of monotonicity.
func TestBaseEnergyMonotoneInDuration(t *testing.T) {
	prev := 0.0
	for _, dur := range []float64{100, 200, 400} {
		res := runScheme(t, "base", 9, dur, true)
		if res.Energy <= prev {
			t.Errorf("Base energy at %gs = %v, not above the %v of the shorter run", dur, res.Energy, prev)
		}
		prev = res.Energy
	}
}
