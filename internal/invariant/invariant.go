// Package invariant cross-checks a simulation run's accounting while it
// executes. A Checker shadows the array and every disk through narrow
// observer interfaces (diskmodel.Observer, array.Auditor) and re-derives,
// independently of the code under test, the quantities the simulator
// reports: it integrates each disk's energy from the Spec's power tables,
// ledgers IO conservation from submit/complete/lost events, walks the disk
// state machine, and audits extent-slot bookkeeping. At Finish it compares
// its shadow ledgers against the simulator's own counters; every
// disagreement becomes a Violation carrying the simulated timestamp, the
// disk or group involved, and the two quantities that disagree.
//
// The checker is wired through sim.Config.Invariants and is nil by default:
// an unarmed run schedules no extra events, allocates nothing extra, and is
// byte-identical to a build without this package. Armed, it costs one
// virtual call per disk transition and per logical IO — cheap enough to run
// the full experiment suite under (the -check flag on hibsim and hibexp).
//
// The rules, by name as they appear in Violation.Rule:
//
//	io-conservation    submitted == completed + in-flight; counts match the
//	                   array's own inFlight/completed/lostIOs counters
//	inflight-negative  the array's in-flight count went below zero
//	state-machine      a disk made an illegal transition (e.g. Standby to
//	                   Busy without a spin-up)
//	disk-power         a disk charged a different power than the Spec gives
//	                   for the state it entered
//	disk-energy        a disk's energy ledger differs from the checker's
//	                   independent integral of Spec power over state time
//	disk-duration      a disk's per-state durations do not sum to the time
//	                   it was under observation
//	array-energy       the array total differs from the per-disk sum
//	energy-series      the observed energy_j metrics series decreases, or
//	                   ends above the final total
//	migrate-legality   an extent moved onto a degraded or rebuilding group
//	                   in a fault-aware run, or a finish had no start
//	slot-ledger        a group's used-slot count disagrees with its slot
//	                   bitmap, or global slots != extents + in-flight moves
//	extent-map         two extents map to one physical slot, or a mapping
//	                   points at a free slot
//	cache-conservation hits + misses != lookups on either cache side
//	rebuild-pairing    a rebuild finished that never started
package invariant

import (
	"fmt"
	"math"

	"hibernator/internal/array"
	"hibernator/internal/cache"
	"hibernator/internal/diskmodel"
	"hibernator/internal/obs"
	"hibernator/internal/simevent"
)

// DefaultLimit caps how many violations a Checker retains. Runs that break
// one invariant tend to break it millions of times; the cap keeps the
// report readable while Count still reflects the full damage.
const DefaultLimit = 64

// Violation is one observed disagreement between the simulator's
// accounting and the checker's independent re-derivation.
type Violation struct {
	T      float64 // simulated seconds
	Rule   string  // which invariant broke (see the package comment)
	Disk   int     // global disk ID, -1 when not disk-scoped
	Group  int     // group index, -1 when not group-scoped
	Got    float64 // the simulator's value
	Want   float64 // the checker's independently derived value
	Detail string
}

// String renders the violation on one line.
func (v Violation) String() string {
	scope := ""
	if v.Disk >= 0 {
		scope += fmt.Sprintf(" disk=%d", v.Disk)
	}
	if v.Group >= 0 {
		scope += fmt.Sprintf(" group=%d", v.Group)
	}
	return fmt.Sprintf("t=%.6f %s%s got=%v want=%v: %s", v.T, v.Rule, scope, v.Got, v.Want, v.Detail)
}

// diskTrack is the checker's shadow of one disk: the interval it is
// currently in and the energy/time integrals accumulated so far.
type diskTrack struct {
	d     *diskmodel.Disk
	lastT float64
	state diskmodel.State
	power float64 // expected draw for the current interval

	energy    float64 // independent integral of power dt (+ shift lumps)
	durations map[diskmodel.State]float64
}

// Checker verifies a run's accounting. Create with New, pass via
// sim.Config.Invariants; one Checker observes one run.
type Checker struct {
	limit int

	violations []Violation
	dropped    int

	engine  *simevent.Engine
	arr     *array.Array
	cache   *cache.Cache
	metrics *obs.Registry

	startT float64
	disks  map[int]*diskTrack

	// Shadow IO ledger, maintained from Auditor events alone.
	submitted uint64
	completed uint64
	lost      uint64
	inFlight  int

	// Extent movement in flight: extent -> destination group for migrations
	// (each holds one extra allocated slot), swap pairs keyed by both ends.
	pendingMigrate map[int]int
	pendingSwap    map[int]int

	rebuilding map[int]int // group -> nesting count (paranoia; depth is 0/1)

	finished bool
}

// New creates a Checker retaining at most DefaultLimit violations.
func New() *Checker { return NewLimit(DefaultLimit) }

// NewLimit creates a Checker retaining at most limit violations (further
// ones are counted but dropped).
func NewLimit(limit int) *Checker {
	if limit <= 0 {
		limit = 1
	}
	return &Checker{
		limit:          limit,
		disks:          map[int]*diskTrack{},
		pendingMigrate: map[int]int{},
		pendingSwap:    map[int]int{},
		rebuilding:     map[int]int{},
	}
}

// Attach wires the checker into a run: it installs itself as every disk's
// transition observer and as the array's auditor, and snapshots the start
// time. cache and metrics may be nil (those cross-checks are skipped).
// sim.Run calls this before the controller initializes, so the checker sees
// every transition from the initial configuration on.
func (c *Checker) Attach(engine *simevent.Engine, arr *array.Array, ctrlCache *cache.Cache, metrics *obs.Registry) {
	c.engine, c.arr, c.cache, c.metrics = engine, arr, ctrlCache, metrics
	c.startT = engine.Now()
	arr.SetAuditor(c)
	for _, d := range arr.Disks() {
		d.SetObserver(c)
		c.disks[d.ID()] = &diskTrack{
			d:         d,
			lastT:     c.startT,
			state:     d.State(),
			power:     c.expectedPower(d, d.State()),
			durations: map[diskmodel.State]float64{},
		}
	}
}

// report records one violation, honoring the retention cap.
func (c *Checker) report(v Violation) {
	if len(c.violations) >= c.limit {
		c.dropped++
		return
	}
	c.violations = append(c.violations, v)
}

// Violations returns the retained violations (at most the creation limit).
func (c *Checker) Violations() []Violation { return c.violations }

// Count returns the total number of violations observed, including any
// dropped beyond the retention limit.
func (c *Checker) Count() int { return len(c.violations) + c.dropped }

// Ok reports whether no invariant was violated.
func (c *Checker) Ok() bool { return c.Count() == 0 }

// legalTransitions mirrors the disk state machine in diskmodel/disk.go:
// spin-up retries re-enter SpinningUp, Busy chains to Busy when the queue
// drains back-to-back, any live state may Fail, and Failed is terminal.
var legalTransitions = map[diskmodel.State][]diskmodel.State{
	diskmodel.Standby:       {diskmodel.SpinningUp, diskmodel.Failed},
	diskmodel.SpinningUp:    {diskmodel.SpinningUp, diskmodel.Idle, diskmodel.Failed},
	diskmodel.SpinningDown:  {diskmodel.Standby, diskmodel.Failed},
	diskmodel.Idle:          {diskmodel.Busy, diskmodel.ShiftingSpeed, diskmodel.SpinningDown, diskmodel.Failed},
	diskmodel.Busy:          {diskmodel.Idle, diskmodel.Busy, diskmodel.Failed},
	diskmodel.ShiftingSpeed: {diskmodel.Idle, diskmodel.Failed},
	diskmodel.Failed:        {},
}

func legal(from, to diskmodel.State) bool {
	for _, s := range legalTransitions[from] {
		if s == to {
			return true
		}
	}
	return false
}

// expectedPower re-derives, from the Spec alone, the draw a disk must
// charge for the state it just entered. Level bookkeeping at observation
// time: entering ShiftingSpeed the disk still reports the old level with
// TargetLevel set to the destination (the shift holds the higher of the
// two levels' idle power); everywhere else Level is already final.
func (c *Checker) expectedPower(d *diskmodel.Disk, s diskmodel.State) float64 {
	spec := d.Spec()
	switch s {
	case diskmodel.Standby:
		return spec.StandbyPower
	case diskmodel.SpinningUp:
		return spec.SpinUpEnergy / spec.SpinUpTime
	case diskmodel.SpinningDown:
		return spec.SpinDownEnergy / spec.SpinDownTime
	case diskmodel.Idle:
		return spec.IdlePower[d.Level()]
	case diskmodel.Busy:
		return spec.ActivePower[d.Level()]
	case diskmodel.ShiftingSpeed:
		hi := d.Level()
		if t := d.TargetLevel(); t > hi {
			hi = t
		}
		return spec.IdlePower[hi]
	case diskmodel.Failed:
		return 0
	}
	return math.NaN()
}

// DiskTransition implements diskmodel.Observer: it closes the previous
// interval in the shadow ledger, validates the transition's legality and
// charged power, and opens the new interval.
func (c *Checker) DiskTransition(d *diskmodel.Disk, t float64, from, to diskmodel.State, power float64) {
	tr := c.disks[d.ID()]
	if tr == nil {
		// A disk the checker was never attached to: the array grew a drive
		// after Attach, which the current array cannot do.
		c.report(Violation{T: t, Rule: "state-machine", Disk: d.ID(), Group: -1,
			Detail: "transition on an untracked disk"})
		return
	}
	if !legal(from, to) {
		c.report(Violation{T: t, Rule: "state-machine", Disk: d.ID(), Group: -1,
			Got: float64(to), Want: float64(from),
			Detail: fmt.Sprintf("illegal transition %v -> %v", from, to)})
	}
	if from != tr.state {
		c.report(Violation{T: t, Rule: "state-machine", Disk: d.ID(), Group: -1,
			Got: float64(from), Want: float64(tr.state),
			Detail: fmt.Sprintf("transition reports leaving %v but checker observed %v", from, tr.state)})
	}
	if t < tr.lastT {
		c.report(Violation{T: t, Rule: "disk-duration", Disk: d.ID(), Group: -1,
			Got: t, Want: tr.lastT, Detail: "transition time moved backwards"})
	}
	if q := d.QueueLen(); q < 0 {
		c.report(Violation{T: t, Rule: "inflight-negative", Disk: d.ID(), Group: -1,
			Got: float64(q), Want: 0, Detail: "negative disk queue depth"})
	}
	// Close the interval the disk is leaving.
	dt := t - tr.lastT
	tr.energy += tr.power * dt
	tr.durations[tr.state] += dt
	// Validate and open the interval it is entering.
	want := c.expectedPower(d, to)
	if !closeEnough(power, want) {
		c.report(Violation{T: t, Rule: "disk-power", Disk: d.ID(), Group: -1,
			Got: power, Want: want,
			Detail: fmt.Sprintf("entering %v at level %d", to, d.Level())})
	}
	if to == diskmodel.ShiftingSpeed {
		// The shift's lump energy is charged at shift start; re-derive it
		// from the Spec's per-1000-RPM cost over the same level pair.
		_, joules := d.Spec().LevelShift(d.Level(), d.TargetLevel())
		tr.energy += joules
	}
	tr.lastT, tr.state, tr.power = t, to, want
}

// LogicalSubmit implements array.Auditor.
func (c *Checker) LogicalSubmit(t float64, inFlight int) {
	c.submitted++
	c.inFlight++
	if inFlight != c.inFlight {
		c.report(Violation{T: t, Rule: "io-conservation", Disk: -1, Group: -1,
			Got: float64(inFlight), Want: float64(c.inFlight),
			Detail: "array in-flight count diverged at submit"})
		c.inFlight = inFlight // resync so one slip doesn't cascade
	}
}

// LogicalComplete implements array.Auditor.
func (c *Checker) LogicalComplete(t float64, inFlight int) {
	c.completed++
	c.inFlight--
	if inFlight < 0 {
		c.report(Violation{T: t, Rule: "inflight-negative", Disk: -1, Group: -1,
			Got: float64(inFlight), Want: 0, Detail: "array in-flight count went negative"})
	}
	if inFlight != c.inFlight {
		c.report(Violation{T: t, Rule: "io-conservation", Disk: -1, Group: -1,
			Got: float64(inFlight), Want: float64(c.inFlight),
			Detail: "array in-flight count diverged at completion"})
		c.inFlight = inFlight
	}
}

// IOLost implements array.Auditor.
func (c *Checker) IOLost(t float64, group int) {
	c.lost++
	if group < 0 || group >= len(c.arr.Groups()) {
		c.report(Violation{T: t, Rule: "io-conservation", Disk: -1, Group: group,
			Got: float64(group), Want: float64(len(c.arr.Groups())),
			Detail: "lost IO attributed to a group outside the array"})
	}
}

// MigrateStart implements array.Auditor.
func (c *Checker) MigrateStart(t float64, extent, from, to int) {
	c.pendingMigrate[extent] = to
	c.checkMoveTarget(t, extent, to)
}

// MigrateFinish implements array.Auditor.
func (c *Checker) MigrateFinish(t float64, extent, from, to int) {
	if _, ok := c.pendingMigrate[extent]; !ok {
		c.report(Violation{T: t, Rule: "migrate-legality", Disk: -1, Group: to,
			Got: float64(extent), Want: -1,
			Detail: fmt.Sprintf("extent %d finished a migration that never started", extent)})
		return
	}
	delete(c.pendingMigrate, extent)
	loc := c.arr.ExtentLocation(extent)
	if loc.Group != to {
		c.report(Violation{T: t, Rule: "extent-map", Disk: -1, Group: to,
			Got: float64(loc.Group), Want: float64(to),
			Detail: fmt.Sprintf("extent %d landed in group %d, not the migration target", extent, loc.Group)})
	}
}

// SwapStart implements array.Auditor.
func (c *Checker) SwapStart(t float64, e1, e2, g1, g2 int) {
	c.pendingSwap[e1] = e2
	c.pendingSwap[e2] = e1
	// The swap lands e1 in g2 and e2 in g1; both destinations must be
	// trustworthy in a fault-aware run.
	c.checkMoveTarget(t, e1, g2)
	c.checkMoveTarget(t, e2, g1)
}

// SwapFinish implements array.Auditor.
func (c *Checker) SwapFinish(t float64, e1, e2, g1, g2 int) {
	if c.pendingSwap[e1] != e2 {
		c.report(Violation{T: t, Rule: "migrate-legality", Disk: -1, Group: -1,
			Got: float64(e1), Want: float64(e2),
			Detail: fmt.Sprintf("extents %d,%d finished a swap that never started", e1, e2)})
		return
	}
	delete(c.pendingSwap, e1)
	delete(c.pendingSwap, e2)
}

// checkMoveTarget flags extent movement onto a group that a fault-aware
// policy must not target: one with failed members (data would land on
// degraded redundancy — the "migration onto an evicted disk" bug) or one
// mid-rebuild. Runs without the retry/health machinery keep the legacy
// behavior of moving anywhere, so the rule is gated on FaultAware.
func (c *Checker) checkMoveTarget(t float64, extent, group int) {
	if !c.arr.FaultAware() {
		return
	}
	g := c.arr.Groups()[group]
	if g.Degraded() || g.Rebuilding() {
		c.report(Violation{T: t, Rule: "migrate-legality", Disk: -1, Group: group,
			Got: 1, Want: 0,
			Detail: fmt.Sprintf("extent %d moved onto a degraded/rebuilding group in a fault-aware run", extent)})
	}
}

// RebuildStart implements array.Auditor.
func (c *Checker) RebuildStart(t float64, group int) {
	c.rebuilding[group]++
}

// RebuildFinish implements array.Auditor.
func (c *Checker) RebuildFinish(t float64, group int) {
	if c.rebuilding[group] <= 0 {
		c.report(Violation{T: t, Rule: "rebuild-pairing", Disk: -1, Group: group,
			Got: 1, Want: 0, Detail: "rebuild finished that never started"})
		return
	}
	c.rebuilding[group]--
}

// closeEnough compares two floats with a relative tolerance wide enough
// for differently-ordered summation but far below any real accounting bug.
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-6 || diff <= 1e-9*scale
}

// Finish closes every shadow ledger at simulated time t and runs the
// end-of-run cross-checks. sim.Run calls it after the event loop drains;
// tests may call it directly. Finish is idempotent in the sense that a
// second call re-runs the end checks, but the intended use is once.
func (c *Checker) Finish(t float64) {
	c.finished = true
	elapsed := t - c.startT

	// Per-disk: close the final interval, then compare the checker's
	// independent integrals against the disk's own ledger.
	sumEnergy := 0.0
	for _, tr := range sortedTracks(c.disks) {
		dt := t - tr.lastT
		tr.energy += tr.power * dt
		tr.durations[tr.state] += dt
		tr.lastT = t

		tr.d.CloseAccounting()
		got := tr.d.Energy()
		if !closeEnough(got, tr.energy) {
			c.report(Violation{T: t, Rule: "disk-energy", Disk: tr.d.ID(), Group: -1,
				Got: got, Want: tr.energy,
				Detail: "disk energy ledger != independent integral of Spec power over state time"})
		}
		sumEnergy += got

		var ledgerDur, shadowDur float64
		for _, v := range tr.d.Account().DurationByState() {
			ledgerDur += v
		}
		for _, v := range tr.durations {
			shadowDur += v
		}
		if !closeEnough(ledgerDur, elapsed) {
			c.report(Violation{T: t, Rule: "disk-duration", Disk: tr.d.ID(), Group: -1,
				Got: ledgerDur, Want: elapsed,
				Detail: "per-state durations do not sum to the run duration"})
		}
		if !closeEnough(shadowDur, elapsed) {
			c.report(Violation{T: t, Rule: "disk-duration", Disk: tr.d.ID(), Group: -1,
				Got: shadowDur, Want: elapsed,
				Detail: "observed transition intervals do not sum to the run duration"})
		}
	}

	// Array energy total vs the per-disk sum. Disks() includes retired
	// drives and the spare pool, so the sum is conservation-complete.
	total := c.arr.TotalEnergy()
	if !closeEnough(total, sumEnergy) {
		c.report(Violation{T: t, Rule: "array-energy", Disk: -1, Group: -1,
			Got: total, Want: sumEnergy,
			Detail: "array energy total != sum over all drives ever created"})
	}

	// IO conservation: the shadow ledger against itself and against the
	// array's counters.
	if c.submitted != c.completed+uint64(c.inFlight) {
		c.report(Violation{T: t, Rule: "io-conservation", Disk: -1, Group: -1,
			Got: float64(c.completed) + float64(c.inFlight), Want: float64(c.submitted),
			Detail: "submitted != completed + in-flight"})
	}
	if got := c.arr.Completed(); got != c.completed {
		c.report(Violation{T: t, Rule: "io-conservation", Disk: -1, Group: -1,
			Got: float64(got), Want: float64(c.completed),
			Detail: "array completed-count != audited completions"})
	}
	if got := c.arr.InFlight(); got != c.inFlight {
		c.report(Violation{T: t, Rule: "io-conservation", Disk: -1, Group: -1,
			Got: float64(got), Want: float64(c.inFlight),
			Detail: "array in-flight count != audited submits minus completions"})
	}
	if got := c.arr.InFlight(); got < 0 {
		c.report(Violation{T: t, Rule: "inflight-negative", Disk: -1, Group: -1,
			Got: float64(got), Want: 0, Detail: "array in-flight count negative at end of run"})
	}
	if got := c.arr.LostIOs(); got != c.lost {
		c.report(Violation{T: t, Rule: "io-conservation", Disk: -1, Group: -1,
			Got: float64(got), Want: float64(c.lost),
			Detail: "array lost-IO count != audited losses"})
	}

	// Slot ledger: each group's used counter vs its bitmap, and the global
	// balance: every logical extent holds one slot, plus one extra per
	// migration in flight (the destination slot is allocated up front).
	usedTotal := 0
	for gi, g := range c.arr.Groups() {
		totalSlots, used := g.Slots()
		scan := 0
		for s := int64(0); s < int64(totalSlots); s++ {
			if g.SlotInUse(s) {
				scan++
			}
		}
		if scan != used {
			c.report(Violation{T: t, Rule: "slot-ledger", Disk: -1, Group: gi,
				Got: float64(used), Want: float64(scan),
				Detail: "group used-slot counter != slot bitmap population"})
		}
		usedTotal += used
	}
	wantUsed := c.arr.NumExtents() + len(c.pendingMigrate)
	if usedTotal != wantUsed {
		c.report(Violation{T: t, Rule: "slot-ledger", Disk: -1, Group: -1,
			Got: float64(usedTotal), Want: float64(wantUsed),
			Detail: "allocated slots != logical extents + in-flight migrations"})
	}

	// Extent map: a bijection from extents onto allocated slots.
	seen := map[Location]int{}
	for e := 0; e < c.arr.NumExtents(); e++ {
		loc := c.arr.ExtentLocation(e)
		key := Location{loc.Group, loc.Slot}
		if prev, dup := seen[key]; dup {
			c.report(Violation{T: t, Rule: "extent-map", Disk: -1, Group: loc.Group,
				Got: float64(e), Want: float64(prev),
				Detail: fmt.Sprintf("extents %d and %d share slot %d/%d", prev, e, loc.Group, loc.Slot)})
		}
		seen[key] = e
		if !c.arr.Groups()[loc.Group].SlotInUse(loc.Slot) {
			c.report(Violation{T: t, Rule: "extent-map", Disk: -1, Group: loc.Group,
				Got: 0, Want: 1,
				Detail: fmt.Sprintf("extent %d maps to unallocated slot %d/%d", e, loc.Group, loc.Slot)})
		}
	}

	// Cache conservation, when a cache exists.
	if c.cache != nil {
		hits, misses, _ := c.cache.Stats()
		readLookups, writeLookups := c.cache.Lookups()
		if hits+misses != readLookups {
			c.report(Violation{T: t, Rule: "cache-conservation", Disk: -1, Group: -1,
				Got: float64(hits + misses), Want: float64(readLookups),
				Detail: "cache hits + misses != read lookups"})
		}
		wh, wa := c.cache.WriteStats()
		if wh+wa != writeLookups {
			c.report(Violation{T: t, Rule: "cache-conservation", Disk: -1, Group: -1,
				Got: float64(wh + wa), Want: float64(writeLookups),
				Detail: "cache write hits + allocations != write lookups"})
		}
	}

	// The observed cumulative-energy series must be nondecreasing and end
	// at or below the final total (it samples mid-run).
	if c.metrics != nil {
		series := c.metrics.Series("energy_j")
		prev := 0.0
		for _, p := range series {
			if p.V < prev && !closeEnough(p.V, prev) {
				c.report(Violation{T: p.T, Rule: "energy-series", Disk: -1, Group: -1,
					Got: p.V, Want: prev,
					Detail: "cumulative energy series decreased"})
			}
			prev = p.V
		}
		if len(series) > 0 {
			last := series[len(series)-1].V
			if last > total && !closeEnough(last, total) {
				c.report(Violation{T: series[len(series)-1].T, Rule: "energy-series", Disk: -1, Group: -1,
					Got: last, Want: total,
					Detail: "cumulative energy series ends above the final total"})
			}
		}
	}
}

// Location mirrors array.Location for map keys (array.Location is already
// comparable; the alias keeps the array type out of the exported surface).
type Location struct {
	Group int
	Slot  int64
}

// sortedTracks returns the disk tracks in ascending disk-ID order so
// violation output is deterministic.
func sortedTracks(m map[int]*diskTrack) []*diskTrack {
	out := make([]*diskTrack, 0, len(m))
	for id := 0; ; id++ {
		tr, ok := m[id]
		if !ok {
			break
		}
		out = append(out, tr)
		if len(out) == len(m) {
			break
		}
	}
	// Disk IDs are dense from 0 in this simulator; fall back to the map
	// should that ever change (order then unspecified but complete).
	if len(out) != len(m) {
		out = out[:0]
		for _, tr := range m {
			out = append(out, tr)
		}
	}
	return out
}
