package invariant_test

import (
	"strings"
	"testing"

	"hibernator/internal/array"
	"hibernator/internal/diskmodel"
	"hibernator/internal/fault"
	"hibernator/internal/hibernator"
	"hibernator/internal/invariant"
	"hibernator/internal/obs"
	"hibernator/internal/policy"
	"hibernator/internal/raid"
	"hibernator/internal/sim"
	"hibernator/internal/simevent"
	"hibernator/internal/trace"
)

// testConfig builds a small multi-speed array with a cache, the surface
// the checker watches end to end.
func testConfig(seed int64) sim.Config {
	return sim.Config{
		Spec:               diskmodel.MultiSpeedUltrastar(5, 3000),
		Groups:             2,
		GroupDisks:         3,
		Level:              raid.RAID5,
		ExtentBytes:        64 << 20,
		CacheBytes:         64 << 20,
		Seed:               seed,
		ExpectedRotLatency: true,
	}
}

func oltpSource(t *testing.T, cfg sim.Config, dur, rate float64, seed int64) trace.Source {
	t.Helper()
	vol, err := sim.LogicalBytes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewOLTP(trace.OLTPConfig{
		Seed: seed, VolumeBytes: vol, Duration: dur, MaxRate: rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func mustOk(t *testing.T, chk *invariant.Checker) {
	t.Helper()
	if chk.Ok() {
		return
	}
	for _, v := range chk.Violations() {
		t.Errorf("violation: %s", v)
	}
	t.Fatalf("%d violation(s) on a clean run", chk.Count())
}

// TestArmedHealthyRunClean: the checker stays silent through a full
// Hibernator run with cache, metrics and migrations in play.
func TestArmedHealthyRunClean(t *testing.T) {
	const dur = 400
	cfg := testConfig(1)
	cfg.Metrics = obs.NewRegistry(0)
	cfg.RespGoal = 0.02
	chk := invariant.New()
	cfg.Invariants = chk
	src := oltpSource(t, cfg, dur, 30, 2)
	res, err := sim.Run(cfg, src, hibernator.New(hibernator.Options{Epoch: dur / 4}), dur)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("run served no requests — the test is vacuous")
	}
	mustOk(t, chk)
}

// TestArmedFaultRunClean: transient errors, a mid-run fail-stop and the
// auto-rebuild onto the spare all reconcile.
func TestArmedFaultRunClean(t *testing.T) {
	// The rebuild streams the full 36.7 GB disk image in 1 MiB chunks
	// (read survivors, write spare — roughly 1400 simulated seconds), so
	// the run must be long enough to finish it.
	const dur = 2000
	cfg := testConfig(3)
	cfg.SpareDisks = 1
	cfg.Retry = array.RetryPolicy{
		MaxRetries: 2, Backoff: 0.01, BackoffFactor: 4, OpDeadline: 0.25,
		SuspectAfter: 10, EvictAfter: 1000, AutoRebuild: true,
	}
	cfg.Faults = &fault.Schedule{
		Rates: fault.Rates{TransientProb: 0.01},
		Events: []fault.Event{
			{Time: 0.05 * dur, Disk: 1, Kind: fault.FailStop},
		},
	}
	chk := invariant.New()
	cfg.Invariants = chk
	src := oltpSource(t, cfg, dur, 30, 4)
	res, err := sim.Run(cfg, src, policy.NewBase(), dur)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.DiskFailures == 0 || res.Faults.Rebuilds == 0 {
		t.Fatalf("fault storm never fired (failures=%d rebuilds=%d) — the test is vacuous",
			res.Faults.DiskFailures, res.Faults.Rebuilds)
	}
	mustOk(t, chk)
}

// auditArray builds a bare engine+array pair with the checker attached,
// for tests that inject corrupted events below the sim layer.
func auditArray(t *testing.T) (*simevent.Engine, *array.Array, *invariant.Checker) {
	t.Helper()
	e := simevent.New()
	spec := diskmodel.MultiSpeedUltrastar(1, 0)
	a, err := array.New(array.Config{
		Engine: e, Spec: &spec, Groups: 1, GroupDisks: 4, Level: raid.RAID5,
		ExtentBytes: 64 << 20, Seed: 9, ExpectedRotLatency: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	chk := invariant.New()
	chk.Attach(e, a, nil, nil)
	return e, a, chk
}

func findRule(vs []invariant.Violation, rule, detail string) *invariant.Violation {
	for i := range vs {
		if vs[i].Rule == rule && strings.Contains(vs[i].Detail, detail) {
			return &vs[i]
		}
	}
	return nil
}

// TestDroppedCompletionDetected: a submit whose completion never fires
// must surface as an IO-conservation violation at Finish.
func TestDroppedCompletionDetected(t *testing.T) {
	e, a, chk := auditArray(t)
	done := 0
	a.Submit(0, 4096, false, func(float64) { done++ })
	e.RunAll()
	if done != 1 {
		t.Fatalf("warm-up op completed %d times", done)
	}
	// The corrupted event: the auditor hears a submit the array never
	// tracked, exactly what a dropped completion leaves behind.
	chk.LogicalSubmit(e.Now(), a.InFlight()+1)
	chk.Finish(e.Now())

	v := findRule(chk.Violations(), "io-conservation", "in-flight")
	if v == nil {
		t.Fatalf("no io-conservation violation; got %v", chk.Violations())
	}
	if v.T != e.Now() {
		t.Errorf("violation at t=%v, want the finish time %v", v.T, e.Now())
	}
}

// TestSkewedEnergyLedgerDetected: phantom joules slipped into one disk's
// ledger must surface as a disk-energy violation naming that disk.
func TestSkewedEnergyLedgerDetected(t *testing.T) {
	e, a, chk := auditArray(t)
	done := 0
	for i := 0; i < 8; i++ {
		a.Submit(int64(i)*65536, 65536, i%2 == 0, func(float64) { done++ })
	}
	e.RunAll()
	victim := a.Groups()[0].Disks()[2]
	victim.Account().AddEnergy("idle", 12345) // the skewed power table
	chk.Finish(e.Now())

	v := findRule(chk.Violations(), "disk-energy", "integral")
	if v == nil {
		t.Fatalf("no disk-energy violation; got %v", chk.Violations())
	}
	if v.Disk != victim.ID() {
		t.Errorf("violation names disk %d, want %d", v.Disk, victim.ID())
	}
	if diff := v.Got - v.Want; diff < 12344 || diff > 12346 {
		t.Errorf("violation Got-Want = %v, want ~12345 (the injected joules)", diff)
	}
	// Only the one disk may be implicated.
	for _, v := range chk.Violations() {
		if v.Rule == "disk-energy" && v.Disk != victim.ID() {
			t.Errorf("clean disk %d implicated: %s", v.Disk, v)
		}
	}
}

// TestIllegalTransitionDetected: a Standby->Busy jump (no spin-up) must
// surface as a state-machine violation with the disk and timestamp.
func TestIllegalTransitionDetected(t *testing.T) {
	_, a, chk := auditArray(t)
	d := a.Groups()[0].Disks()[0]
	chk.DiskTransition(d, 3.5, diskmodel.Standby, diskmodel.Busy, 0)

	v := findRule(chk.Violations(), "state-machine", "illegal transition")
	if v == nil {
		t.Fatalf("no state-machine violation; got %v", chk.Violations())
	}
	if v.T != 3.5 || v.Disk != d.ID() {
		t.Errorf("violation t=%v disk=%d, want t=3.5 disk=%d", v.T, v.Disk, d.ID())
	}
	// The checker also knows the disk was really Idle, not Standby.
	if findRule(chk.Violations(), "state-machine", "checker observed") == nil {
		t.Error("missing the from-state divergence violation")
	}
}

// TestWrongPowerDetected: a legal transition charging the wrong draw must
// surface as a disk-power violation carrying both wattages.
func TestWrongPowerDetected(t *testing.T) {
	_, a, chk := auditArray(t)
	d := a.Groups()[0].Disks()[1]
	chk.DiskTransition(d, 1.25, diskmodel.Idle, diskmodel.Busy, 999)

	v := findRule(chk.Violations(), "disk-power", "entering")
	if v == nil {
		t.Fatalf("no disk-power violation; got %v", chk.Violations())
	}
	if v.T != 1.25 || v.Disk != d.ID() {
		t.Errorf("violation t=%v disk=%d, want t=1.25 disk=%d", v.T, v.Disk, d.ID())
	}
	if v.Got != 999 {
		t.Errorf("violation Got = %v, want the charged 999 W", v.Got)
	}
	if want := d.Spec().ActivePower[d.Level()]; v.Want != want {
		t.Errorf("violation Want = %v, want the Spec draw %v", v.Want, want)
	}
}

// TestViolationLimitAndCount: the retention cap keeps the report bounded
// while Count reflects every violation.
func TestViolationLimitAndCount(t *testing.T) {
	chk := invariant.NewLimit(2)
	// IOLost validates the group against the array, so attach a real one.
	_, arr, _ := auditArray(t)
	chk.Attach(simevent.New(), arr, nil, nil)
	for i := 0; i < 5; i++ {
		chk.IOLost(float64(i), -5) // group outside the array: one violation each
	}
	if len(chk.Violations()) != 2 {
		t.Errorf("retained %d violations, want the cap of 2", len(chk.Violations()))
	}
	if chk.Count() != 5 {
		t.Errorf("Count = %d, want all 5", chk.Count())
	}
	if chk.Ok() {
		t.Error("Ok() must be false with violations dropped past the cap")
	}
}

func TestViolationString(t *testing.T) {
	v := invariant.Violation{T: 1.5, Rule: "disk-energy", Disk: 3, Group: -1,
		Got: 2, Want: 1, Detail: "x"}
	s := v.String()
	for _, want := range []string{"t=1.500000", "disk-energy", "disk=3", "got=2", "want=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "group=") {
		t.Errorf("String() = %q must omit group when -1", s)
	}
}
