package report

import (
	"strings"
	"testing"
)

func TestFprintAlignment(t *testing.T) {
	tb := New("F1", "Energy by scheme", "scheme", "energy (kJ)")
	tb.AddRow("Base", "1000.0")
	tb.AddRow("Hibernator", "650.5")
	tb.AddNote("normalized to Base")
	var b strings.Builder
	if err := tb.Fprint(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"=== F1: Energy by scheme ===", "scheme", "Hibernator  650.5", "note: normalized to Base"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header and rows start at the same column widths.
	if !strings.HasPrefix(lines[1], "scheme    ") {
		t.Errorf("header not padded to widest cell: %q", lines[1])
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := New("T1", "t", "a", "b")
	tb.AddRow(`with,comma`, `with"quote`)
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"with,comma\",\"with\"\"quote\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestRowArityPanics(t *testing.T) {
	tb := New("X", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row must panic")
		}
	}()
	tb.AddRow("only one")
}

func TestFormatters(t *testing.T) {
	cases := []struct{ got, want string }{
		{F(3.14159, 2), "3.14"},
		{Ms(0.00525), "5.25"},
		{KJ(123456), "123.5"},
		{Pct(0.295), "29.5%"},
		{N(42), "42"},
		{N(uint64(7)), "7"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
}
