// Package report renders experiment results as aligned text tables and
// CSV, the two formats cmd/hibexp emits.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// New creates a table with the given identity and column headers.
func New(id, title string, columns ...string) *Table {
	return &Table{ID: id, Title: title, Columns: columns}
}

// AddRow appends one row; it panics if the cell count mismatches the
// header, which is always a programming error in an experiment.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: table %s row has %d cells, want %d", t.ID, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (quotes cells containing
// commas or quotes).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// F formats a float with the given decimals.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Ms renders seconds as milliseconds with 2 decimals.
func Ms(seconds float64) string {
	return fmt.Sprintf("%.2f", seconds*1000)
}

// KJ renders joules as kilojoules with 1 decimal.
func KJ(joules float64) string {
	return fmt.Sprintf("%.1f", joules/1000)
}

// Pct renders a fraction as a percentage with 1 decimal.
func Pct(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

// N renders an integer count.
func N[T ~int | ~int64 | ~uint64 | ~int32 | ~uint32 | ~uint](v T) string {
	return fmt.Sprintf("%d", v)
}
