// Package cliutil validates numeric command-line flags for the hibsim,
// hibexp and hibchaos binaries. The helpers reject NaN and infinities
// explicitly: a plain `v <= 0` comparison silently passes NaN (every
// comparison with NaN is false), which is exactly how `-scale NaN` once
// sailed into the simulator. Each binary calls these from one validate
// function so the whole flag surface is table-testable without spawning
// processes.
package cliutil

import (
	"fmt"
	"math"
)

// bad reports NaN or ±Inf.
func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// Positive rejects NaN, infinities and v <= 0 — for flags where zero is
// meaningless (durations, rates, scale factors, budgets).
func Positive(name string, v float64) error {
	if bad(v) || v <= 0 {
		return fmt.Errorf("%s must be positive and finite, got %g", name, v)
	}
	return nil
}

// NonNegative rejects NaN, infinities and v < 0 — for flags where zero
// means "disabled".
func NonNegative(name string, v float64) error {
	if bad(v) || v < 0 {
		return fmt.Errorf("%s must be >= 0 and finite, got %g", name, v)
	}
	return nil
}

// Prob rejects anything outside [0, 1), NaN included — for per-op
// probability flags (1 would fail every operation forever).
func Prob(name string, v float64) error {
	if bad(v) || v < 0 || v >= 1 {
		return fmt.Errorf("%s must be in [0,1), got %g", name, v)
	}
	return nil
}

// PositiveInt rejects v <= 0.
func PositiveInt(name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("%s must be positive, got %d", name, v)
	}
	return nil
}

// NonNegativeInt rejects v < 0.
func NonNegativeInt(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s must be >= 0, got %d", name, v)
	}
	return nil
}

// NonNegativeInt64 rejects v < 0.
func NonNegativeInt64(name string, v int64) error {
	if v < 0 {
		return fmt.Errorf("%s must be >= 0, got %d", name, v)
	}
	return nil
}

// FirstError returns the first non-nil error, so validate functions read
// as one flat list of rules.
func FirstError(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
