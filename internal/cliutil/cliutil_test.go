package cliutil

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestFloatValidators(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		err  error
		ok   bool
	}{
		{"pos 1", Positive("-f", 1), true},
		{"pos tiny", Positive("-f", 1e-300), true},
		{"pos zero", Positive("-f", 0), false},
		{"pos neg", Positive("-f", -1), false},
		{"pos nan", Positive("-f", nan), false},
		{"pos +inf", Positive("-f", inf), false},
		{"pos -inf", Positive("-f", -inf), false},
		{"nonneg zero", NonNegative("-f", 0), true},
		{"nonneg pos", NonNegative("-f", 2.5), true},
		{"nonneg neg", NonNegative("-f", -0.1), false},
		{"nonneg nan", NonNegative("-f", nan), false},
		{"nonneg inf", NonNegative("-f", inf), false},
		{"prob zero", Prob("-f", 0), true},
		{"prob mid", Prob("-f", 0.5), true},
		{"prob one", Prob("-f", 1), false},
		{"prob neg", Prob("-f", -0.01), false},
		{"prob nan", Prob("-f", nan), false},
	}
	for _, c := range cases {
		if got := c.err == nil; got != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, c.err, c.ok)
		}
		if c.err != nil && !strings.Contains(c.err.Error(), "-f") {
			t.Errorf("%s: error %q does not name the flag", c.name, c.err)
		}
	}
}

func TestIntValidators(t *testing.T) {
	if err := PositiveInt("-n", 1); err != nil {
		t.Errorf("PositiveInt(1) = %v", err)
	}
	if PositiveInt("-n", 0) == nil || PositiveInt("-n", -3) == nil {
		t.Error("PositiveInt must reject 0 and negatives")
	}
	if err := NonNegativeInt("-n", 0); err != nil {
		t.Errorf("NonNegativeInt(0) = %v", err)
	}
	if NonNegativeInt("-n", -1) == nil {
		t.Error("NonNegativeInt must reject negatives")
	}
	if err := NonNegativeInt64("-b", 0); err != nil {
		t.Errorf("NonNegativeInt64(0) = %v", err)
	}
	if NonNegativeInt64("-b", -1) == nil {
		t.Error("NonNegativeInt64 must reject negatives")
	}
}

func TestFirstError(t *testing.T) {
	if FirstError(nil, nil, nil) != nil {
		t.Error("all-nil must return nil")
	}
	e1, e2 := errors.New("first"), errors.New("second")
	if got := FirstError(nil, e1, e2); got != e1 {
		t.Errorf("got %v, want the first non-nil error", got)
	}
	if FirstError() != nil {
		t.Error("empty call must return nil")
	}
}
