package array

import (
	"fmt"
	"strconv"

	"hibernator/internal/obs"
)

// migrationChunk is the I/O unit migrations stream data in. One chunk's
// read must complete before its write issues, and chunks proceed strictly
// in sequence, which naturally rate-limits a migration to one outstanding
// chain per extent. Chunks are kept small enough that an in-service chunk
// cannot stall a foreground request behind it for long, even at the
// lowest spindle speed.
const migrationChunk = 256 << 10

// ErrNoFreeSlot is returned when the target group cannot accept an extent.
var ErrNoFreeSlot = fmt.Errorf("array: target group has no free extent slot")

// MigrateExtent moves logical extent e into toGroup, streaming the data as
// chunked background (or foreground, if background is false) I/O. The
// extent remains readable at its old location until the move completes,
// when the mapping flips atomically. done (optional) fires on completion.
//
// Errors: migrating to the current group, an extent already in flight, or
// a full target group.
func (a *Array) MigrateExtent(e, toGroup int, background bool, done func()) error {
	if e < 0 || e >= a.numExtent {
		return fmt.Errorf("array: extent %d outside [0,%d)", e, a.numExtent)
	}
	if toGroup < 0 || toGroup >= len(a.groups) {
		return fmt.Errorf("array: group %d outside [0,%d)", toGroup, len(a.groups))
	}
	src := a.extentMap[e]
	if src.Group == toGroup {
		return fmt.Errorf("array: extent %d already in group %d", e, toGroup)
	}
	if a.migrating == nil {
		a.migrating = map[int]bool{}
	}
	if a.migrating[e] {
		return fmt.Errorf("array: extent %d is already migrating", e)
	}
	dst := a.groups[toGroup]
	slot, err := dst.allocSlot()
	if err != nil {
		return ErrNoFreeSlot
	}
	a.migrating[e] = true
	if a.cfg.Trace != nil { // guard: the reason string concatenation allocates
		a.cfg.Trace.Event(a.engine.Now(), obs.KindMigrateStart,
			toGroup, -1, src.Group, toGroup, "extent "+strconv.Itoa(e))
	}
	if a.auditor != nil {
		a.auditor.MigrateStart(a.engine.Now(), e, src.Group, toGroup)
	}

	eb := a.cfg.ExtentBytes
	srcG := a.groups[src.Group]
	var step func(chunkOff int64)
	step = func(chunkOff int64) {
		if chunkOff >= eb {
			// Finished: flip the mapping, free the old slot.
			srcG.freeSlot(src.Slot)
			a.extentMap[e] = Location{Group: toGroup, Slot: slot}
			delete(a.migrating, e)
			a.migrations++
			a.migratedBytes += uint64(eb)
			if a.cfg.Trace != nil {
				a.cfg.Trace.Event(a.engine.Now(), obs.KindMigrateFinish,
					toGroup, -1, src.Group, toGroup, "extent "+strconv.Itoa(e))
			}
			if a.auditor != nil {
				a.auditor.MigrateFinish(a.engine.Now(), e, src.Group, toGroup)
			}
			if done != nil {
				done()
			}
			return
		}
		n := int64(migrationChunk)
		if chunkOff+n > eb {
			n = eb - chunkOff
		}
		a.groupIO(srcG, src.Slot*eb+chunkOff, n, false, background, func() {
			a.groupIO(dst, slot*eb+chunkOff, n, true, background, func() {
				step(chunkOff + int64(migrationChunk))
			})
		})
	}
	step(0)
	return nil
}

// SwapExtents exchanges two extents' contents via controller-memory
// staging (read both, then write both cross-wise, chunk by chunk). It is
// the migration primitive when no free slot exists. Both extents stay
// addressable at their old locations until the swap completes.
func (a *Array) SwapExtents(e1, e2 int, background bool, done func()) error {
	if e1 == e2 {
		return fmt.Errorf("array: cannot swap extent %d with itself", e1)
	}
	for _, e := range []int{e1, e2} {
		if e < 0 || e >= a.numExtent {
			return fmt.Errorf("array: extent %d outside [0,%d)", e, a.numExtent)
		}
	}
	if a.migrating == nil {
		a.migrating = map[int]bool{}
	}
	if a.migrating[e1] || a.migrating[e2] {
		return fmt.Errorf("array: extent %d or %d is already migrating", e1, e2)
	}
	l1, l2 := a.extentMap[e1], a.extentMap[e2]
	if l1.Group == l2.Group {
		return fmt.Errorf("array: extents %d and %d share group %d; swap is pointless", e1, e2, l1.Group)
	}
	a.migrating[e1], a.migrating[e2] = true, true
	if a.cfg.Trace != nil {
		a.cfg.Trace.Event(a.engine.Now(), obs.KindSwapStart,
			l1.Group, -1, l1.Group, l2.Group, "extents "+strconv.Itoa(e1)+","+strconv.Itoa(e2))
	}
	if a.auditor != nil {
		a.auditor.SwapStart(a.engine.Now(), e1, e2, l1.Group, l2.Group)
	}
	g1, g2 := a.groups[l1.Group], a.groups[l2.Group]
	eb := a.cfg.ExtentBytes

	var step func(chunkOff int64)
	step = func(chunkOff int64) {
		if chunkOff >= eb {
			a.extentMap[e1], a.extentMap[e2] = l2, l1
			delete(a.migrating, e1)
			delete(a.migrating, e2)
			a.migrations += 2
			a.migratedBytes += 2 * uint64(eb)
			if a.cfg.Trace != nil {
				a.cfg.Trace.Event(a.engine.Now(), obs.KindSwapFinish,
					l1.Group, -1, l1.Group, l2.Group, "extents "+strconv.Itoa(e1)+","+strconv.Itoa(e2))
			}
			if a.auditor != nil {
				a.auditor.SwapFinish(a.engine.Now(), e1, e2, l1.Group, l2.Group)
			}
			if done != nil {
				done()
			}
			return
		}
		n := int64(migrationChunk)
		if chunkOff+n > eb {
			n = eb - chunkOff
		}
		remaining := 2
		phase2 := func() {
			remaining--
			if remaining != 0 {
				return
			}
			wleft := 2
			next := func() {
				wleft--
				if wleft == 0 {
					step(chunkOff + int64(migrationChunk))
				}
			}
			a.groupIO(g1, l1.Slot*eb+chunkOff, n, true, background, next)
			a.groupIO(g2, l2.Slot*eb+chunkOff, n, true, background, next)
		}
		a.groupIO(g1, l1.Slot*eb+chunkOff, n, false, background, phase2)
		a.groupIO(g2, l2.Slot*eb+chunkOff, n, false, background, phase2)
	}
	step(0)
	return nil
}

// Migrating reports whether an extent has a move in flight.
func (a *Array) Migrating(e int) bool { return a.migrating[e] }

// TeleportSwap instantly exchanges two extents' locations with no I/O.
// This is a facility for oracle upper bounds and tests — real policies
// must pay for movement via MigrateExtent/SwapExtents.
func (a *Array) TeleportSwap(e1, e2 int) error {
	if e1 == e2 {
		return nil
	}
	for _, e := range []int{e1, e2} {
		if e < 0 || e >= a.numExtent {
			return fmt.Errorf("array: extent %d outside [0,%d)", e, a.numExtent)
		}
		if a.migrating[e] {
			return fmt.Errorf("array: extent %d is migrating; cannot teleport", e)
		}
	}
	a.extentMap[e1], a.extentMap[e2] = a.extentMap[e2], a.extentMap[e1]
	return nil
}
