package array

import (
	"fmt"

	"hibernator/internal/raid"
)

// Submit issues a logical volume request. done receives the response time
// (completion minus submission) once every underlying physical operation
// has finished, including RAID-5 parity maintenance.
func (a *Array) Submit(off, size int64, write bool, done func(latency float64)) {
	if off < 0 || size <= 0 || off+size > a.LogicalBytes() {
		panic(fmt.Sprintf("array: request [%d,+%d) outside logical volume %d", off, size, a.LogicalBytes()))
	}
	start := a.engine.Now()
	a.inFlight++
	if a.auditor != nil {
		a.auditor.LogicalSubmit(start, a.inFlight)
	}
	a.fanOut(off, size, write, false, func() {
		lat := a.engine.Now() - start
		a.inFlight--
		a.completed++
		if a.auditor != nil {
			a.auditor.LogicalComplete(a.engine.Now(), a.inFlight)
		}
		a.resp.Add(lat)
		a.respPct.Add(lat)
		if a.onComplete != nil {
			a.onComplete(lat, write)
		}
		if done != nil {
			done(lat)
		}
	})
}

// SubmitBackground issues a logical request at background disk priority
// without touching the response-time statistics — cache destage and other
// housekeeping traffic.
func (a *Array) SubmitBackground(off, size int64, write bool, done func()) {
	if off < 0 || size <= 0 || off+size > a.LogicalBytes() {
		panic(fmt.Sprintf("array: background request [%d,+%d) outside logical volume", off, size))
	}
	a.fanOut(off, size, write, true, func() {
		if done != nil {
			done()
		}
	})
}

// fanOut splits a logical range into per-extent pieces, maps each through
// its group's RAID geometry, and drives the two-phase (pre-read, then
// write) protocol. allDone fires after every physical operation completes.
func (a *Array) fanOut(off, size int64, write, background bool, allDone func()) {
	type groupIO struct {
		group *Group
		ios   []raid.PhysIO
	}
	var reads, writes []groupIO
	eb := a.cfg.ExtentBytes
	for size > 0 {
		e := off / eb
		within := off % eb
		n := eb - within
		if n > size {
			n = size
		}
		loc := a.extentMap[e]
		a.extentAccesses[e]++
		g := a.groups[loc.Group]
		goff := loc.Slot*eb + within
		r, w := raid.Phases(g.geo.Map(goff, n, write))
		if len(r) > 0 {
			reads = append(reads, groupIO{g, r})
		}
		if len(w) > 0 {
			writes = append(writes, groupIO{g, w})
		}
		off += n
		size -= n
	}
	submitPhase := func(phase []groupIO, next func()) {
		remaining := 0
		for _, gio := range phase {
			remaining += len(gio.ios)
		}
		if remaining == 0 {
			next()
			return
		}
		for _, gio := range phase {
			for _, io := range gio.ios {
				a.fanoutIOs++
				a.dispatch(gio.group, io, background, func() {
					remaining--
					if remaining == 0 {
						next()
					}
				})
			}
		}
	}
	submitPhase(reads, func() { submitPhase(writes, allDone) })
}

// groupIO performs one contiguous I/O in a group's logical space (used by
// migration), honoring RAID write phases, and calls cb when all physical
// operations complete.
func (a *Array) groupIO(g *Group, goff, size int64, write, background bool, cb func()) {
	reads, writes := raid.Phases(g.geo.Map(goff, size, write))
	submit := func(ios []raid.PhysIO, next func()) {
		if len(ios) == 0 {
			next()
			return
		}
		remaining := len(ios)
		for _, io := range ios {
			a.dispatch(g, io, background, func() {
				remaining--
				if remaining == 0 {
					next()
				}
			})
		}
	}
	submit(reads, func() { submit(writes, cb) })
}
