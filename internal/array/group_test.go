package array

import (
	"testing"

	"hibernator/internal/diskmodel"
	"hibernator/internal/raid"
)

func TestGroupIdleForMixedStates(t *testing.T) {
	e, a := testArray(t, 1, 2, raid.RAID0)
	g := a.Groups()[0]
	e.Run(10)
	if got := g.IdleFor(); got < 9.99 {
		t.Errorf("all-idle group IdleFor = %v, want ~10", got)
	}
	// Busy one member: group idle time must be 0.
	var done bool
	g.Disks()[0].Submit(&diskmodel.Request{LBA: 0, Size: 1 << 20, Done: func(*diskmodel.Request, float64) { done = true }})
	if g.IdleFor() != 0 {
		t.Errorf("group with a busy member reports IdleFor %v", g.IdleFor())
	}
	e.RunAll()
	if !done {
		t.Fatal("request lost")
	}
	// IdleFor is the minimum across members.
	e.At(e.Now()+5, func() {})
	e.RunAll()
	if got := g.IdleFor(); got < 4.9 || got > 15.1 {
		t.Errorf("post-completion IdleFor = %v", got)
	}
}

func TestGroupCountersAggregate(t *testing.T) {
	e, a := testArray(t, 1, 4, raid.RAID5)
	g := a.Groups()[0]
	for i := 0; i < 10; i++ {
		a.Submit(int64(i)<<20, 8192, i%2 == 0, nil)
	}
	if g.QueueLen() == 0 {
		t.Error("queue should be non-empty right after submission")
	}
	e.RunAll()
	if g.QueueLen() != 0 {
		t.Errorf("queue = %d after drain", g.QueueLen())
	}
	if g.Completed() == 0 {
		t.Error("no completions aggregated")
	}
}

func TestDoubleFreeSlotPanics(t *testing.T) {
	_, a := testArray(t, 2, 1, raid.RAID0)
	g := a.Groups()[0]
	s, err := g.allocSlot()
	if err != nil {
		t.Fatal(err)
	}
	g.freeSlot(s)
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	g.freeSlot(s)
}

func TestGroupStandbyRace(t *testing.T) {
	// Standby while a request is mid-flight on one member must refuse and
	// leave the group serviceable.
	e, a := testArray(t, 1, 2, raid.RAID0)
	g := a.Groups()[0]
	var done int
	a.Submit(0, 1<<20, false, func(float64) { done++ })
	if g.Standby() {
		t.Fatal("standby accepted with in-flight work")
	}
	a.Submit(1<<21, 4096, false, func(float64) { done++ })
	e.RunAll()
	if done != 2 {
		t.Fatalf("completed %d of 2", done)
	}
}

func TestSpinUpDuringSpinDownGroup(t *testing.T) {
	e, a := testArray(t, 1, 2, raid.RAID0)
	g := a.Groups()[0]
	if !g.Standby() {
		t.Fatal("standby refused on idle group")
	}
	// Mid-spin-down wakeup.
	e.Run(0.5)
	g.SpinUp()
	e.RunAll()
	if g.AllStandby() {
		t.Fatal("group stayed in standby despite SpinUp")
	}
	for _, d := range g.Disks() {
		if d.State() != diskmodel.Idle {
			t.Errorf("disk %d state %v, want Idle", d.ID(), d.State())
		}
	}
}

func TestEngineAccessor(t *testing.T) {
	e, a := testArray(t, 1, 1, raid.RAID0)
	if a.Engine() != e {
		t.Fatal("Engine() returns the wrong engine")
	}
	if a.Spec() == nil || a.Spec().CapacityBytes == 0 {
		t.Fatal("Spec() broken")
	}
}
