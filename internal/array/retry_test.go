package array

import (
	"math"
	"testing"

	"hibernator/internal/diskmodel"
	"hibernator/internal/raid"
	"hibernator/internal/simevent"
)

func retryArray(t *testing.T, level raid.Level, disks, spares int, pol RetryPolicy) (*simevent.Engine, *Array) {
	t.Helper()
	e := simevent.New()
	spec := diskmodel.MultiSpeedUltrastar(1, 0)
	a, err := New(Config{
		Engine: e, Spec: &spec, Groups: 1, GroupDisks: disks, Level: level,
		ExtentBytes: 64 << 20, SpareDisks: spares, Seed: 5,
		ExpectedRotLatency: true, Retry: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, a
}

// TestRetryBackoffSpacingExact walks the whole retry state machine on a
// deterministic clock: two same-disk retries with exponential backoff,
// then the redundancy fallback, and asserts the completion time to the
// sub-microsecond against hand-computed service times.
func TestRetryBackoffSpacingExact(t *testing.T) {
	pol := RetryPolicy{MaxRetries: 2, Backoff: 0.5, BackoffFactor: 3}
	e, a := retryArray(t, raid.RAID1, 2, 0, pol)
	spec := a.Spec()
	a.Groups()[0].Disks()[0].SetTransientErrorProb(1) // primary always errors

	doneAt := -1.0
	a.Submit(0, 4096, false, func(float64) { doneAt = e.Now() })
	e.RunAll()

	// Attempt 1: head at 0, LBA 0 — strictly sequential.
	seq := spec.ControllerOverhead + spec.TransferTime(0, 4096)
	// Attempts 2 and 3: head parked at 4096, so a short seek plus the
	// expected half rotation.
	frac := 4096.0 / float64(spec.CapacityBytes)
	rnd := spec.ControllerOverhead + spec.SeekTime(frac) +
		spec.RotationPeriod(0)/2 + spec.TransferTime(0, 4096)
	// Mirror fallback: disk 1 head at 0, LBA 0 — sequential again.
	want := seq + pol.delay(0) + rnd + pol.delay(1) + rnd + seq
	if doneAt < 0 {
		t.Fatal("request never completed")
	}
	if math.Abs(doneAt-want) > 1e-9 {
		t.Fatalf("completion at %v, want %v (backoff spacing broken)", doneAt, want)
	}
	fs := a.FaultStats()
	if fs.Retries != 2 || fs.Fallbacks != 1 || fs.OpErrors != 3 {
		t.Fatalf("counters retries=%d fallbacks=%d errors=%d, want 2/1/3", fs.Retries, fs.Fallbacks, fs.OpErrors)
	}
	if a.LostIOs() != 0 {
		t.Fatalf("mirror fallback lost %d IOs", a.LostIOs())
	}
}

func TestBackoffDelaySchedule(t *testing.T) {
	p := RetryPolicy{Backoff: 0.01, BackoffFactor: 2}
	for i, want := range []float64{0.01, 0.02, 0.04, 0.08} {
		if got := p.delay(i); math.Abs(got-want) > 1e-12 {
			t.Errorf("delay(%d)=%v, want %v", i, got, want)
		}
	}
	fixed := RetryPolicy{Backoff: 0.05} // factor defaults to 1
	for i := 0; i < 3; i++ {
		if got := fixed.delay(i); got != 0.05 {
			t.Errorf("fixed delay(%d)=%v, want 0.05", i, got)
		}
	}
	if (&RetryPolicy{}).delay(3) != 0 {
		t.Error("zero policy must have zero delay")
	}
}

// TestOpDeadlineTimesOutFailSlowDisk pins a fail-slow primary behind a
// deadline: the attempt is abandoned at exactly OpDeadline and served by
// the mirror; the slow op's late completion must not double-complete.
func TestOpDeadlineTimesOutFailSlowDisk(t *testing.T) {
	pol := RetryPolicy{OpDeadline: 0.005}
	e, a := retryArray(t, raid.RAID1, 2, 0, pol)
	spec := a.Spec()
	a.Groups()[0].Disks()[0].SetFailSlow(0, 0, 100) // 100x slower from t=0

	completions := 0
	doneAt := -1.0
	a.Submit(0, 4096, false, func(float64) { completions++; doneAt = e.Now() })
	e.RunAll()

	seq := spec.ControllerOverhead + spec.TransferTime(0, 4096)
	want := pol.OpDeadline + seq // deadline expiry, then the mirror read
	if completions != 1 {
		t.Fatalf("request completed %d times", completions)
	}
	if math.Abs(doneAt-want) > 1e-9 {
		t.Fatalf("completion at %v, want %v", doneAt, want)
	}
	fs := a.FaultStats()
	if fs.Timeouts != 1 || fs.Fallbacks != 1 {
		t.Fatalf("timeouts=%d fallbacks=%d, want 1/1", fs.Timeouts, fs.Fallbacks)
	}
	// The slow disk still finished its op eventually (disk time is spent
	// either way); the array just ignored the result.
	if a.Groups()[0].Disks()[0].Completed() != 1 {
		t.Fatal("abandoned op should still complete on the slow disk")
	}
}

// TestErrorTrackerSuspectEvictRebuild drives one RAID-5 member through
// the full health ladder: errors -> suspect -> evicted (degraded mode)
// -> auto-rebuild onto the spare -> healthy again.
func TestErrorTrackerSuspectEvictRebuild(t *testing.T) {
	pol := RetryPolicy{SuspectAfter: 2, EvictAfter: 4, AutoRebuild: true}
	e, a := retryArray(t, raid.RAID5, 4, 1, pol)
	g := a.Groups()[0]
	g.Disks()[2].SetTransientErrorProb(1)

	// Row 0 of the left-symmetric layout puts logical strips 0,1,2 on
	// disks 0,1,2 — strip 2 targets the faulty member.
	target := int64(2) * (64 << 10)
	suspectSeen := false
	var issue func(n int)
	issue = func(n int) {
		if n == 0 {
			return
		}
		a.Submit(target, 4096, false, func(float64) {
			if g.Suspect() {
				suspectSeen = true
			}
			issue(n - 1)
		})
	}
	issue(8)
	e.RunAll()

	if !suspectSeen {
		t.Fatal("disk never became suspect before eviction")
	}
	fs := a.FaultStats()
	if fs.Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", fs.Evictions)
	}
	if a.Rebuilds() != 1 {
		t.Fatalf("rebuilds=%d, want auto-rebuild to have run", a.Rebuilds())
	}
	if len(a.Spares()) != 0 {
		t.Fatal("spare should have been consumed by the rebuild")
	}
	if !g.Healthy() || g.Degraded() || g.Suspect() {
		t.Fatalf("group not healthy after rebuild: degraded=%v suspect=%v rebuilding=%v",
			g.Degraded(), g.Suspect(), g.Rebuilding())
	}
	if a.LostIOs() != 0 {
		t.Fatalf("lost %d IOs despite redundancy", a.LostIOs())
	}
}

// TestEvictionRefusedOnDegradedGroup: with RAID-5 already degraded, the
// tracker must keep a flaky second disk suspect instead of evicting it.
func TestEvictionRefusedOnDegradedGroup(t *testing.T) {
	pol := RetryPolicy{EvictAfter: 2}
	e, a := retryArray(t, raid.RAID5, 4, 0, pol)
	g := a.Groups()[0]
	if err := a.FailDisk(0, 0); err != nil {
		t.Fatal(err)
	}
	g.Disks()[2].SetTransientErrorProb(1)
	target := int64(2) * (64 << 10)
	var issue func(n int)
	issue = func(n int) {
		if n == 0 {
			return
		}
		a.Submit(target, 4096, false, func(float64) { issue(n - 1) })
	}
	issue(5)
	e.RunAll()
	if a.FaultStats().Evictions != 0 {
		t.Fatal("eviction must be refused when it would lose data")
	}
	if !g.suspect[2] {
		t.Fatal("refused eviction must leave the disk suspect")
	}
	if g.failed[2] {
		t.Fatal("disk 2 must not be failed")
	}
}

func TestRAID1SecondFailureInPairRefused(t *testing.T) {
	_, a := retryArray(t, raid.RAID1, 4, 0, RetryPolicy{})
	if err := a.FailDisk(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisk(0, 1); err == nil {
		t.Fatal("second failure inside mirror pair (0,1) must be refused as data loss")
	}
	// The other pair is an independent protection domain.
	if err := a.FailDisk(0, 3); err != nil {
		t.Fatalf("failure in the other pair must be allowed: %v", err)
	}
	if err := a.FailDisk(0, 2); err == nil {
		t.Fatal("second failure inside mirror pair (2,3) must be refused")
	}
}

// TestZeroPolicyKeepsLegacyFailedSemantics: without the retry policy a
// request doomed by a mid-flight disk death completes (Failed) without
// redundancy fallback — the pre-existing X3 behavior.
func TestZeroPolicyKeepsLegacyFailedSemantics(t *testing.T) {
	e, a := retryArray(t, raid.RAID5, 4, 0, RetryPolicy{})
	completions := 0
	a.Submit(0, 4096, false, func(float64) { completions++ })
	// Kill the serving disk while the op is in flight.
	e.Schedule(1e-5, func() {
		if err := a.FailDisk(0, 0); err != nil {
			t.Error(err)
		}
	})
	e.RunAll()
	if completions != 1 {
		t.Fatalf("completions=%d, want 1", completions)
	}
	if fs := a.FaultStats(); fs.Fallbacks != 0 {
		t.Fatalf("zero policy must not fall back, got %d", fs.Fallbacks)
	}
}

// TestFailedRedirectWithPolicy: with the policy armed, the same doomed op
// is re-served through RAID-5 reconstruction instead of being dropped.
func TestFailedRedirectWithPolicy(t *testing.T) {
	e, a := retryArray(t, raid.RAID5, 4, 0, RetryPolicy{MaxRetries: 1})
	completions := 0
	a.Submit(0, 4096, false, func(float64) { completions++ })
	e.Schedule(1e-5, func() {
		if err := a.FailDisk(0, 0); err != nil {
			t.Error(err)
		}
	})
	e.RunAll()
	if completions != 1 {
		t.Fatalf("completions=%d, want 1", completions)
	}
	if a.LostIOs() != 0 {
		t.Fatal("redirected op must not be lost")
	}
	// Survivors must have served the reconstruction.
	var survReads uint64
	for i, d := range a.Groups()[0].Disks() {
		if i == 0 {
			continue
		}
		r, _ := d.BytesMoved()
		survReads += r
	}
	if survReads == 0 {
		t.Fatal("no reconstruction traffic on survivors")
	}
}
