package array

import (
	"testing"

	"hibernator/internal/raid"
)

// Edge cases around the retry policy that the chaos generator exercises
// randomly; these pin them deterministically.

// TestZeroOpDeadlineMeansNoTimeout: OpDeadline 0 with retries armed must
// mean "no per-attempt deadline", not "time out instantly". A fail-slow
// disk's op is allowed to take arbitrarily long and still completes.
func TestZeroOpDeadlineMeansNoTimeout(t *testing.T) {
	pol := RetryPolicy{MaxRetries: 1, Backoff: 0.01, OpDeadline: 0}
	e, a := retryArray(t, raid.RAID1, 2, 0, pol)
	a.Groups()[0].Disks()[0].SetFailSlow(0, 0, 1000) // 1000x slower from t=0

	completions := 0
	doneAt := -1.0
	a.Submit(0, 4096, false, func(float64) { completions++; doneAt = e.Now() })
	e.RunAll()

	if completions != 1 {
		t.Fatalf("completions=%d, want 1", completions)
	}
	fs := a.FaultStats()
	if fs.Timeouts != 0 {
		t.Fatalf("timeouts=%d with a zero deadline, want 0", fs.Timeouts)
	}
	if fs.Fallbacks != 0 {
		t.Fatalf("fallbacks=%d, want 0 (the slow op must be waited out)", fs.Fallbacks)
	}
	// The op really did run at the crippled speed.
	if doneAt < 0.01 {
		t.Fatalf("completed at %v, faster than a 1000x-degraded op plausibly can", doneAt)
	}
}

// TestRetriesExhaustedDuringRebuild: a member that keeps erroring while
// its group is mid-rebuild exhausts its retries and tries the redundancy
// fallback — which cannot help, because the failed member's data is not
// back until the rebuild finishes. The op is correctly accounted as lost
// (degraded + erroring = data unavailable), and conservation must hold:
// exactly one completion, exactly one lost IO, nothing in flight.
func TestRetriesExhaustedDuringRebuild(t *testing.T) {
	pol := RetryPolicy{MaxRetries: 2, Backoff: 0.001, AutoRebuild: true}
	e, a := retryArray(t, raid.RAID5, 4, 1, pol)
	g := a.Groups()[0]

	// Kill disk 0: auto-rebuild onto the spare starts immediately.
	if err := a.FailDisk(0, 0); err != nil {
		t.Fatal(err)
	}
	if !g.Rebuilding() {
		t.Fatal("auto-rebuild did not start")
	}
	// Disk 2 errors on every attempt; row 0 strip 2 lands on it.
	g.Disks()[2].SetTransientErrorProb(1)

	completions := 0
	target := int64(2) * (64 << 10)
	a.Submit(target, 4096, false, func(float64) { completions++ })
	e.RunAll()

	if completions != 1 {
		t.Fatalf("completions=%d, want exactly 1", completions)
	}
	fs := a.FaultStats()
	if fs.Retries != uint64(pol.MaxRetries) {
		t.Fatalf("retries=%d, want the full budget %d", fs.Retries, pol.MaxRetries)
	}
	if a.LostIOs() != 1 {
		t.Fatalf("lost IOs = %d, want exactly 1 (erroring member in a degraded group)", a.LostIOs())
	}
	if a.InFlight() != 0 {
		t.Fatalf("%d ops still in flight after RunAll", a.InFlight())
	}
	if !g.Healthy() {
		t.Fatal("group must finish the rebuild and return to healthy")
	}
}

// TestBackoffBeyondRunHorizon: a backoff that schedules the retry past
// the simulation horizon leaves the op in flight at cutoff. The books
// must still balance: no double completion, no phantom completion, and
// the retry fires (once) if the engine later drains fully.
func TestBackoffBeyondRunHorizon(t *testing.T) {
	const horizon = 1.0
	pol := RetryPolicy{MaxRetries: 1, Backoff: 10 * horizon}
	e, a := retryArray(t, raid.RAID1, 2, 0, pol)
	a.Groups()[0].Disks()[0].SetTransientErrorProb(1)

	completions := 0
	a.Submit(0, 4096, false, func(float64) { completions++ })
	e.Run(horizon)

	if completions != 0 {
		t.Fatalf("completions=%d at the horizon, want 0 (retry is %gs out)", completions, pol.Backoff)
	}
	if a.InFlight() != 1 {
		t.Fatalf("in-flight=%d at the horizon, want 1", a.InFlight())
	}
	if a.LostIOs() != 0 {
		t.Fatalf("an op parked in backoff is not lost, got %d", a.LostIOs())
	}

	// Draining the queue past the horizon serves it exactly once (the
	// mirror picks it up after the retry errors again).
	e.RunAll()
	if completions != 1 {
		t.Fatalf("completions=%d after draining, want 1", completions)
	}
	if a.InFlight() != 0 {
		t.Fatalf("in-flight=%d after draining, want 0", a.InFlight())
	}
	fs := a.FaultStats()
	if fs.Retries != 1 || fs.Fallbacks != 1 {
		t.Fatalf("retries=%d fallbacks=%d, want 1/1", fs.Retries, fs.Fallbacks)
	}
}
