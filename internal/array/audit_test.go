package array

import (
	"math"
	"testing"

	"hibernator/internal/raid"
)

// TestRedirectTargetFailureCountsLost is the regression test for the
// lost-IO accounting hole on the retry -> fallback -> eviction path: a
// read whose attempts exhausted on the primary is served raw by the
// mirror, and if the mirror then dies with the op still queued, the data
// was never delivered. The completion used to count as served anyway.
func TestRedirectTargetFailureCountsLost(t *testing.T) {
	// MaxRetries 0: the first transient error goes straight to redundancy.
	e, a := retryArray(t, raid.RAID1, 2, 0, RetryPolicy{})
	g := a.Groups()[0]
	g.Disks()[0].SetTransientErrorProb(1) // primary errors every attempt
	g.Disks()[1].SetFailSlow(0, 0, 1000)  // mirror crawls: redirect stays in flight

	completed := 0
	a.Submit(0, 4096, false, func(float64) { completed++ })
	// The fallback lands on the mirror within a millisecond; the slowed
	// mirror is still serving it at t=0.05 when the drive dies.
	e.At(0.05, func() {
		if err := a.FailDisk(0, 1); err != nil {
			t.Errorf("failing the mirror: %v", err)
		}
	})
	e.RunAll()

	if completed != 1 {
		t.Fatalf("request completed %d times, want exactly 1", completed)
	}
	if fs := a.FaultStats(); fs.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1 (the redirect never happened)", fs.Fallbacks)
	}
	if got := a.LostIOs(); got != 1 {
		t.Fatalf("LostIOs = %d, want 1: the mirror died with the redirected op queued", got)
	}
}

// TestRebuildConservesDisksAndEnergy is the regression test for the
// energy accounting hole across a rebuild: the array total used to drop
// the evicted drive's lifetime energy when the spare took over its slot,
// because the drive silently left the disk roster.
func TestRebuildConservesDisksAndEnergy(t *testing.T) {
	e, a := failArray(t, 1, 4, raid.RAID5, 1)
	before := len(a.Disks()) // 4 members + 1 spare
	completed := 0
	for i := 0; i < 20; i++ {
		a.Submit(int64(i)*65536, 65536, i%2 == 0, func(float64) { completed++ })
	}
	e.RunAll()
	if completed != 20 {
		t.Fatalf("completed %d of 20 warm-up ops", completed)
	}
	victim := a.Groups()[0].Disks()[2]
	if err := a.FailDisk(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Rebuild(0, 2, 0, true, nil); err != nil {
		t.Fatal(err)
	}
	e.RunAll()

	// The roster is conservation-complete: nothing joins or leaves it
	// mid-run, so len(Disks()) is a constant of the simulation.
	if got := len(a.Disks()); got != before {
		t.Fatalf("len(Disks()) = %d after rebuild, want %d (roster must not shrink)", got, before)
	}
	retired := a.Retired()
	if len(retired) != 1 || retired[0] != victim {
		t.Fatalf("Retired() = %v, want exactly the failed drive", retired)
	}
	victim.CloseAccounting()
	if victim.Energy() <= 0 {
		t.Fatal("victim accrued no energy before failing — the test is vacuous")
	}
	// The array total must still include the retired drive's energy.
	var live float64
	for _, grp := range a.Groups() {
		for _, d := range grp.Disks() {
			d.CloseAccounting()
			live += d.Energy()
		}
	}
	for _, d := range a.Spares() {
		d.CloseAccounting()
		live += d.Energy()
	}
	total := a.TotalEnergy()
	want := live + victim.Energy()
	if math.Abs(total-want) > 1e-6 {
		t.Fatalf("TotalEnergy = %v, want %v (live %v + retired %v)", total, want, live, victim.Energy())
	}
	if total <= live {
		t.Fatalf("TotalEnergy %v excludes the retired drive (live sum %v)", total, live)
	}
}
