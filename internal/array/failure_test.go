package array

import (
	"testing"

	"hibernator/internal/diskmodel"
	"hibernator/internal/raid"
	"hibernator/internal/simevent"
)

func failArray(t *testing.T, groups, groupDisks int, level raid.Level, spares int) (*simevent.Engine, *Array) {
	t.Helper()
	e := simevent.New()
	spec := diskmodel.MultiSpeedUltrastar(1, 0)
	a, err := New(Config{
		Engine: e, Spec: &spec, Groups: groups, GroupDisks: groupDisks,
		Level: level, ExtentBytes: 64 << 20, SpareDisks: spares,
		Seed: 9, ExpectedRotLatency: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, a
}

func TestRAID5DegradedReadsComplete(t *testing.T) {
	e, a := failArray(t, 1, 4, raid.RAID5, 0)
	if err := a.FailDisk(0, 1); err != nil {
		t.Fatal(err)
	}
	g := a.Groups()[0]
	if !g.Degraded() || len(g.FailedDisks()) != 1 || g.FailedDisks()[0] != 1 {
		t.Fatalf("degraded state wrong: %v", g.FailedDisks())
	}
	// Hammer the whole stripe width so the failed disk is hit.
	completed := 0
	for i := 0; i < 40; i++ {
		a.Submit(int64(i)*65536, 65536, i%3 == 0, func(float64) { completed++ })
	}
	e.RunAll()
	if completed != 40 {
		t.Fatalf("completed %d of 40 under degraded RAID5", completed)
	}
	if a.LostIOs() != 0 {
		t.Errorf("RAID5 lost %d IOs with a single failure", a.LostIOs())
	}
	// Reconstruction load: survivors must have served extra reads.
	var survivorsReads uint64
	for i, d := range g.Disks() {
		if i == 1 {
			continue
		}
		r, _ := d.BytesMoved()
		survivorsReads += r
	}
	if survivorsReads == 0 {
		t.Error("no reconstruction traffic observed")
	}
}

func TestRAID5SecondFailureRefused(t *testing.T) {
	_, a := failArray(t, 1, 4, raid.RAID5, 0)
	if err := a.FailDisk(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisk(0, 2); err == nil {
		t.Fatal("second RAID5 failure must be refused")
	}
	if err := a.FailDisk(0, 0); err == nil {
		t.Fatal("double-failing one disk must be refused")
	}
}

func TestRAID1DegradedUsesMirror(t *testing.T) {
	e, a := failArray(t, 1, 4, raid.RAID1, 0)
	if err := a.FailDisk(0, 0); err != nil {
		t.Fatal(err)
	}
	completed := 0
	for i := 0; i < 30; i++ {
		a.Submit(int64(i)*65536, 65536, i%2 == 0, func(float64) { completed++ })
	}
	e.RunAll()
	if completed != 30 {
		t.Fatalf("completed %d of 30 under degraded RAID1", completed)
	}
	if a.LostIOs() != 0 {
		t.Errorf("RAID1 lost %d IOs with one failed side", a.LostIOs())
	}
	// The mirror (disk 1) must have absorbed disk 0's share.
	r1, w1 := a.Groups()[0].Disks()[1].BytesMoved()
	if r1+w1 == 0 {
		t.Error("mirror disk saw no traffic")
	}
}

func TestRAID0FailureLosesIOs(t *testing.T) {
	e, a := failArray(t, 2, 1, raid.RAID0, 0)
	if err := a.FailDisk(0, 0); err != nil {
		t.Fatal(err)
	}
	completed := 0
	// Find an extent on group 0 and hit it.
	for ext := 0; ext < a.NumExtents(); ext++ {
		if a.ExtentLocation(ext).Group == 0 {
			a.Submit(int64(ext)*a.ExtentBytes(), 4096, false, func(float64) { completed++ })
			break
		}
	}
	e.RunAll()
	if completed != 1 {
		t.Fatal("request must still complete (with data loss)")
	}
	if a.LostIOs() == 0 {
		t.Fatal("RAID0 failure must count lost IOs")
	}
}

func TestRebuildRestoresGroup(t *testing.T) {
	e, a := failArray(t, 1, 4, raid.RAID5, 1)
	if err := a.FailDisk(0, 2); err != nil {
		t.Fatal(err)
	}
	spare := a.Spares()[0]
	var finished bool
	if err := a.Rebuild(0, 2, 0, true, func() { finished = true }); err != nil {
		t.Fatal(err)
	}
	if len(a.Spares()) != 0 {
		t.Fatal("spare not removed from pool during rebuild")
	}
	e.RunAll()
	if !finished {
		t.Fatal("rebuild never completed")
	}
	g := a.Groups()[0]
	if g.Degraded() {
		t.Fatal("group still degraded after rebuild")
	}
	if g.Disks()[2] != spare {
		t.Fatal("spare not installed in the failed slot")
	}
	if a.Rebuilds() != 1 {
		t.Errorf("Rebuilds = %d", a.Rebuilds())
	}
	// The spare holds a full disk image.
	_, written := spare.BytesMoved()
	if written != uint64(a.Spec().CapacityBytes) {
		t.Errorf("spare received %d bytes, want full capacity %d", written, a.Spec().CapacityBytes)
	}
	// Post-rebuild I/O flows normally.
	completed := 0
	for i := 0; i < 10; i++ {
		a.Submit(int64(i)*65536, 65536, false, func(float64) { completed++ })
	}
	e.RunAll()
	if completed != 10 {
		t.Fatalf("post-rebuild completed %d of 10", completed)
	}
}

func TestRebuildValidation(t *testing.T) {
	e, a := failArray(t, 1, 4, raid.RAID5, 1)
	if err := a.Rebuild(0, 0, 0, true, nil); err == nil {
		t.Error("rebuilding a healthy disk must fail")
	}
	if err := a.FailDisk(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Rebuild(0, 0, 5, true, nil); err == nil {
		t.Error("bad spare index must fail")
	}
	if err := a.Rebuild(9, 0, 0, true, nil); err == nil {
		t.Error("bad group must fail")
	}
	if err := a.Rebuild(0, 0, 0, true, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Rebuild(0, 0, 0, true, nil); err == nil {
		t.Error("concurrent rebuild of one group must fail")
	}
	e.RunAll()
}

func TestForegroundServiceDuringRebuild(t *testing.T) {
	// Foreground reads keep completing while a background rebuild runs.
	e, a := failArray(t, 1, 4, raid.RAID5, 1)
	if err := a.FailDisk(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := a.Rebuild(0, 3, 0, true, nil); err != nil {
		t.Fatal(err)
	}
	completed := 0
	var worst float64
	for i := 0; i < 100; i++ {
		at := float64(i) * 0.05
		e.At(at, func() {
			a.Submit(int64(i%16)*(1<<20), 8192, false, func(l float64) {
				completed++
				if l > worst {
					worst = l
				}
			})
		})
	}
	e.Run(30)
	if completed != 100 {
		t.Fatalf("completed %d of 100 during rebuild", completed)
	}
	if worst > 0.5 {
		t.Errorf("worst foreground latency %v during background rebuild", worst)
	}
}

func TestFailDiskValidation(t *testing.T) {
	_, a := failArray(t, 1, 4, raid.RAID5, 0)
	if err := a.FailDisk(5, 0); err == nil {
		t.Error("bad group must fail")
	}
	if err := a.FailDisk(0, 9); err == nil {
		t.Error("bad disk must fail")
	}
}

func TestDegradedWritesDuringActiveRebuild(t *testing.T) {
	// RAID-5 read-modify-write traffic with a failed member, racing a
	// background rebuild whose reads contend on the same survivors and
	// whose reconstructed chunks stream onto the hot spare.
	e, a := failArray(t, 1, 4, raid.RAID5, 1)
	if err := a.FailDisk(0, 1); err != nil {
		t.Fatal(err)
	}
	g := a.Groups()[0]
	rebuildDone := -1.0
	if err := a.Rebuild(0, 1, 0, true, func() { rebuildDone = e.Now() }); err != nil {
		t.Fatal(err)
	}

	const writes = 50
	completed, duringRebuild := 0, 0
	for i := 0; i < writes; i++ {
		// Sub-stripe writes force the RMW path (read old data + parity,
		// write both); strips on the dead member exercise degraded RMW.
		a.Submit(int64(i)*65536, 4096, true, func(float64) {
			completed++
			if g.Rebuilding() {
				duringRebuild++
			}
		})
	}
	e.RunAll()

	if completed != writes {
		t.Fatalf("completed %d of %d degraded writes", completed, writes)
	}
	if duringRebuild == 0 {
		t.Fatal("no write completed while the rebuild was active")
	}
	if rebuildDone < 0 {
		t.Fatal("rebuild never completed")
	}
	if a.LostIOs() != 0 {
		t.Fatalf("lost %d IOs despite RAID5 redundancy", a.LostIOs())
	}
	if g.Degraded() || !g.Healthy() {
		t.Fatal("group must be healthy after the rebuild")
	}
	// The spare (now member 1) must have absorbed the rebuild stream.
	_, w := g.Disks()[1].BytesMoved()
	if w == 0 {
		t.Fatal("hot spare saw no rebuild writes")
	}
}
