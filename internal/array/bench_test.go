package array

import (
	"math/rand"
	"testing"

	"hibernator/internal/diskmodel"
	"hibernator/internal/raid"
	"hibernator/internal/simevent"
)

// BenchmarkRAID5SubmitPath measures the full request path: extent lookup,
// RAID-5 mapping, fan-out, completion fan-in.
func BenchmarkRAID5SubmitPath(b *testing.B) {
	e := simevent.New()
	spec := diskmodel.MultiSpeedUltrastar(1, 0)
	a, err := New(Config{
		Engine: e, Spec: &spec, Groups: 4, GroupDisks: 4,
		Level: raid.RAID5, ExtentBytes: 64 << 20, Seed: 1, ExpectedRotLatency: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	limit := a.LogicalBytes() - 8192
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Submit(rng.Int63n(limit), 8192, i%3 == 0, nil)
		if a.InFlight() > 128 {
			e.RunAll()
		}
	}
	e.RunAll()
}

// BenchmarkExtentMigration measures one full 64 MiB extent move end to
// end (chunked read+write chains across two groups).
func BenchmarkExtentMigration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := simevent.New()
		spec := diskmodel.MultiSpeedUltrastar(1, 0)
		a, err := New(Config{
			Engine: e, Spec: &spec, Groups: 2, GroupDisks: 1,
			Level: raid.RAID0, ExtentBytes: 64 << 20, Seed: int64(i), ExpectedRotLatency: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := a.MigrateExtent(0, 1-a.ExtentLocation(0).Group, true, nil); err != nil {
			b.Fatal(err)
		}
		e.RunAll()
	}
}
