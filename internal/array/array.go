// Package array simulates a disk array: disks organized into RAID groups,
// a logical volume mapped onto fixed-size extents that can migrate between
// groups, and request fan-out/fan-in with RAID-5 parity maintenance.
//
// Groups are the unit of speed control (all member disks spin at one
// level), matching Hibernator's tiered organization where each speed tier
// is built from whole RAID groups. A group of one disk with RAID-0 is a
// plain disk, the layout the PDC and MAID baselines assume.
package array

import (
	"fmt"

	"hibernator/internal/diskmodel"
	"hibernator/internal/obs"
	"hibernator/internal/raid"
	"hibernator/internal/simevent"
	"hibernator/internal/stats"
)

// Config describes an array.
type Config struct {
	Engine *simevent.Engine
	Spec   *diskmodel.Spec

	// StateEngines, when non-nil, holds one engine per group; group
	// members fire their spin/shift transition events there instead of on
	// Engine, which is what lets the partitioned runner advance idle
	// groups concurrently (see internal/sim/parallel.go). Length must
	// equal Groups. Spares (and anything swapped in from the spare pool)
	// stay on the global Engine. Nil means fully sequential.
	StateEngines []*simevent.Engine

	// Groups*GroupDisks data disks are created. Each group is one RAID
	// group of the given level.
	Groups     int
	GroupDisks int
	Level      raid.Level
	StripeUnit int64 // default 64 KiB

	// ExtentBytes is the migration granularity (default 64 MiB).
	ExtentBytes int64

	// Occupancy is the fraction of physical slots exposed as logical
	// capacity; the rest is headroom for migration (default 0.9).
	Occupancy float64

	// SpareDisks are extra drives outside any group (MAID cache disks).
	SpareDisks int

	Seed               int64
	InitialLevel       int
	ExpectedRotLatency bool
	// Scheduler is the per-disk queue discipline (default FCFS).
	Scheduler diskmodel.Scheduler

	// Retry governs transient-error retries, per-op deadlines and the
	// disk health tracker (see retry.go). The zero value disables all of
	// it, preserving the fault-free fast path bit for bit.
	Retry RetryPolicy

	// Trace, when non-nil, receives the array's decision events: retries,
	// timeouts, fallbacks, suspect/evict transitions, failures, rebuilds
	// and extent migrations. Emitting to a nil trace is a no-op.
	Trace *obs.Trace
}

func (c *Config) applyDefaults() error {
	if c.Engine == nil || c.Spec == nil {
		return fmt.Errorf("array: engine and spec are required")
	}
	if c.Groups <= 0 || c.GroupDisks <= 0 {
		return fmt.Errorf("array: need positive groups (%d) and disks per group (%d)", c.Groups, c.GroupDisks)
	}
	if c.StripeUnit == 0 {
		c.StripeUnit = 64 << 10
	}
	if c.ExtentBytes == 0 {
		c.ExtentBytes = 64 << 20
	}
	if c.ExtentBytes <= 0 || c.StripeUnit <= 0 {
		return fmt.Errorf("array: extent/stripe sizes must be positive")
	}
	if c.Occupancy == 0 {
		c.Occupancy = 0.9
	}
	if c.Occupancy <= 0 || c.Occupancy > 1 {
		return fmt.Errorf("array: occupancy %v outside (0,1]", c.Occupancy)
	}
	if c.SpareDisks < 0 {
		return fmt.Errorf("array: negative spare disks")
	}
	if c.StateEngines != nil && len(c.StateEngines) != c.Groups {
		return fmt.Errorf("array: %d state engines for %d groups", len(c.StateEngines), c.Groups)
	}
	geo := raid.Geometry{Level: c.Level, Disks: c.GroupDisks, StripeUnit: c.StripeUnit}
	if err := geo.Validate(); err != nil {
		return err
	}
	if geo.LogicalCapacity(c.Spec.CapacityBytes) < c.ExtentBytes {
		return fmt.Errorf("array: extent size %d exceeds group capacity %d",
			c.ExtentBytes, geo.LogicalCapacity(c.Spec.CapacityBytes))
	}
	return nil
}

// Location places a logical extent inside a group.
type Location struct {
	Group int
	Slot  int64 // physical extent slot within the group's logical space
}

// Array is the simulated disk array.
type Array struct {
	cfg    Config
	engine *simevent.Engine
	geo    raid.Geometry

	groups []*Group
	spares []*diskmodel.Disk

	// all holds every drive ever created, in creation order (index ==
	// Disk.ID()). Rebuilds swap a spare into a group and move the dead
	// drive to retired, but neither ever leaves all: energy and activity
	// sums over Disks() stay conservation-complete across the swap.
	all     []*diskmodel.Disk
	retired []*diskmodel.Disk

	extentMap []Location // logical extent -> location
	numExtent int

	resp      stats.Welford
	respPct   *stats.Reservoir
	completed uint64
	inFlight  int
	fanoutIOs uint64 // physical ops from logical traffic (excl. migration)

	migrations     uint64
	migratedBytes  uint64
	migrating      map[int]bool
	lostIOs        uint64
	diskFailures   uint64
	rebuilds       uint64
	faultStats     FaultStats
	extentAccesses []uint64 // lifetime per-extent access counts

	// onComplete, if set, observes every finished logical request.
	onComplete func(latency float64, write bool)

	// auditor, if set, receives accounting events (see audit.go).
	auditor Auditor
}

// New builds the array with extents laid out round-robin across groups
// (so the initial layout spreads load evenly, matching a striped volume).
func New(cfg Config) (*Array, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	geo := raid.Geometry{Level: cfg.Level, Disks: cfg.GroupDisks, StripeUnit: cfg.StripeUnit}
	a := &Array{
		cfg:     cfg,
		engine:  cfg.Engine,
		geo:     geo,
		respPct: stats.NewReservoir(8192, cfg.Seed+7919),
	}
	diskID := 0
	for gi := 0; gi < cfg.Groups; gi++ {
		g := &Group{id: gi, geo: geo, array: a}
		for di := 0; di < cfg.GroupDisks; di++ {
			d := diskmodel.New(cfg.Engine, cfg.Spec, diskmodel.Config{
				ID:                 diskID,
				Seed:               cfg.Seed + int64(diskID)*104729,
				InitialLevel:       cfg.InitialLevel,
				ExpectedRotLatency: cfg.ExpectedRotLatency,
				Scheduler:          cfg.Scheduler,
			})
			if cfg.StateEngines != nil {
				d.SetStateEngine(cfg.StateEngines[gi])
			}
			g.disks = append(g.disks, d)
			a.all = append(a.all, d)
			diskID++
		}
		slots := geo.LogicalCapacity(cfg.Spec.CapacityBytes) / cfg.ExtentBytes
		g.slotUsed = make([]bool, slots)
		a.groups = append(a.groups, g)
	}
	for si := 0; si < cfg.SpareDisks; si++ {
		d := diskmodel.New(cfg.Engine, cfg.Spec, diskmodel.Config{
			ID:                 diskID,
			Seed:               cfg.Seed + int64(diskID)*104729,
			InitialLevel:       cfg.InitialLevel,
			ExpectedRotLatency: cfg.ExpectedRotLatency,
			Scheduler:          cfg.Scheduler,
		})
		a.spares = append(a.spares, d)
		a.all = append(a.all, d)
		diskID++
	}
	totalSlots := 0
	for _, g := range a.groups {
		totalSlots += len(g.slotUsed)
	}
	a.numExtent = int(float64(totalSlots) * cfg.Occupancy)
	if a.numExtent == 0 {
		return nil, fmt.Errorf("array: zero logical extents (occupancy too low)")
	}
	a.extentMap = make([]Location, a.numExtent)
	a.extentAccesses = make([]uint64, a.numExtent)
	// Round-robin placement across groups, ascending slots within a group.
	next := make([]int64, len(a.groups))
	gi := 0
	for e := 0; e < a.numExtent; e++ {
		for int(next[gi]) >= len(a.groups[gi].slotUsed) {
			gi = (gi + 1) % len(a.groups)
		}
		a.extentMap[e] = Location{Group: gi, Slot: next[gi]}
		a.groups[gi].slotUsed[next[gi]] = true
		a.groups[gi].used++
		next[gi]++
		gi = (gi + 1) % len(a.groups)
	}
	return a, nil
}

// Engine returns the simulation engine the array schedules on.
func (a *Array) Engine() *simevent.Engine { return a.engine }

// Spec returns the member disk model.
func (a *Array) Spec() *diskmodel.Spec { return a.cfg.Spec }

// Groups returns the RAID groups.
func (a *Array) Groups() []*Group { return a.groups }

// Spares returns the spare disks (outside any group).
func (a *Array) Spares() []*diskmodel.Disk { return a.spares }

// Disks returns every drive ever created — group members, pool spares, a
// spare mid-rebuild and retired (failed-and-replaced) drives — in creation
// order, so index == Disk.ID(). Summing energy or activity over Disks() is
// conservation-complete: a drive's history never vanishes from the totals
// when a rebuild swaps it out of its group, which the old members+spares
// reconstruction silently allowed.
func (a *Array) Disks() []*diskmodel.Disk {
	return append([]*diskmodel.Disk(nil), a.all...)
}

// Retired returns drives that failed and were replaced by a rebuild.
func (a *Array) Retired() []*diskmodel.Disk { return a.retired }

// LocateDisk maps a global disk ID (as reported by Disk.ID) to its group
// and member index. Spares are not members of any group: ok is false.
func (a *Array) LocateDisk(id int) (group, member int, ok bool) {
	for gi, g := range a.groups {
		for di, d := range g.disks {
			if d.ID() == id {
				return gi, di, true
			}
		}
	}
	return 0, 0, false
}

// DiskByID finds any disk (member, spare or retired) by its global ID.
func (a *Array) DiskByID(id int) *diskmodel.Disk {
	for _, d := range a.all {
		if d.ID() == id {
			return d
		}
	}
	return nil
}

// GroupHealthy reports whether group gi has no failed or suspect members
// and no rebuild in flight.
func (a *Array) GroupHealthy(gi int) bool {
	return a.groups[gi].Healthy()
}

// FaultAware reports whether the retry/health policy is armed. Power
// policies consult it before activating their own fault reactions, so a
// zero RetryPolicy preserves legacy fail-stop behavior bit-for-bit —
// the same contract the Failed-op redirect in retry.go keeps.
func (a *Array) FaultAware() bool { return a.cfg.Retry.enabled() }

// Unhealthy reports whether any group is degraded, suspect or rebuilding —
// the signal fault-aware policies treat as a standing threat to the goal.
func (a *Array) Unhealthy() bool {
	for _, g := range a.groups {
		if !g.Healthy() {
			return true
		}
	}
	return false
}

// RebuildActive reports whether any group is currently rebuilding.
func (a *Array) RebuildActive() bool {
	for _, g := range a.groups {
		if g.rebuilding {
			return true
		}
	}
	return false
}

// ExtentBytes returns the migration granularity.
func (a *Array) ExtentBytes() int64 { return a.cfg.ExtentBytes }

// NumExtents returns the number of logical extents.
func (a *Array) NumExtents() int { return a.numExtent }

// LogicalBytes returns the size of the logical volume.
func (a *Array) LogicalBytes() int64 { return int64(a.numExtent) * a.cfg.ExtentBytes }

// ExtentLocation returns where a logical extent currently lives.
func (a *Array) ExtentLocation(e int) Location {
	return a.extentMap[e]
}

// ExtentAccesses returns the lifetime access count of an extent.
func (a *Array) ExtentAccesses(e int) uint64 { return a.extentAccesses[e] }

// SetOnComplete registers an observer for finished logical requests.
func (a *Array) SetOnComplete(fn func(latency float64, write bool)) { a.onComplete = fn }

// ResponseMoments returns the lifetime response-time accumulator.
func (a *Array) ResponseMoments() *stats.Welford { return &a.resp }

// ResponseQuantile estimates a response-time quantile over the whole run.
func (a *Array) ResponseQuantile(q float64) float64 { return a.respPct.Quantile(q) }

// Completed returns the number of finished logical requests.
func (a *Array) Completed() uint64 { return a.completed }

// InFlight returns the number of logical requests currently outstanding.
func (a *Array) InFlight() int { return a.inFlight }

// Migrations returns completed extent migrations and bytes moved.
func (a *Array) Migrations() (count, bytes uint64) { return a.migrations, a.migratedBytes }

// InFlightMigrations returns how many extents are mid-move right now (a
// swap holds both of its extents in the set until it completes).
func (a *Array) InFlightMigrations() int { return len(a.migrating) }

// FanoutIOs returns the number of physical disk operations generated by
// logical traffic (foreground and destage), excluding migration I/O.
// Dividing by the summed extent accesses gives the logical-to-physical
// amplification factor the CR optimizer needs.
func (a *Array) FanoutIOs() uint64 { return a.fanoutIOs }

// EnergyAt returns the joules all disks will have consumed at time t
// without mutating any accounting — unlike TotalEnergy, which closes
// each ledger and thereby splits the open interval's floating-point
// accrual. Snapshot capture must be a pure read, so it uses this.
func (a *Array) EnergyAt(t float64) float64 {
	sum := 0.0
	for _, d := range a.all {
		sum += d.Account().EnergyAt(t)
	}
	return sum
}

// LayoutFingerprint digests the array's placement state: the extent map
// in logical order, each group's slot-usage count, and the set of
// extents currently mid-migration in ascending order. Two arrays with
// equal fingerprints route every future request identically.
func (a *Array) LayoutFingerprint() uint64 {
	const prime = 1099511628211
	mix := func(h, v uint64) uint64 {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
		return h
	}
	h := mix(14695981039346656037, uint64(a.numExtent))
	for _, loc := range a.extentMap {
		h = mix(h, uint64(loc.Group))
		h = mix(h, uint64(loc.Slot))
	}
	for _, g := range a.groups {
		h = mix(h, uint64(g.used))
	}
	migrating := make([]int, 0, len(a.migrating))
	for e := range a.migrating {
		migrating = append(migrating, e)
	}
	for i := 1; i < len(migrating); i++ { // insertion sort: the set is tiny
		for j := i; j > 0 && migrating[j] < migrating[j-1]; j-- {
			migrating[j], migrating[j-1] = migrating[j-1], migrating[j]
		}
	}
	for _, e := range migrating {
		h = mix(h, uint64(e))
	}
	return h
}

// TotalEnergy closes accounting on every disk and sums joules.
func (a *Array) TotalEnergy() float64 {
	sum := 0.0
	for _, d := range a.Disks() {
		d.CloseAccounting()
		sum += d.Energy()
	}
	return sum
}

// EnergyByState aggregates the per-state energy ledger across all disks.
func (a *Array) EnergyByState() map[string]float64 {
	out := map[string]float64{}
	for _, d := range a.Disks() {
		d.CloseAccounting()
		for k, v := range d.Account().EnergyByState() {
			out[k] += v
		}
	}
	return out
}
