package array

import (
	"hibernator/internal/diskmodel"
	"hibernator/internal/obs"
	"hibernator/internal/raid"
	"hibernator/internal/simevent"
)

// RetryPolicy governs how the array reacts to transient physical-op
// errors and slow disks. The zero value disables everything: no retries,
// no deadlines, no health tracking — the array behaves exactly as if this
// type did not exist, which keeps zero-fault runs byte-identical.
//
// With faults armed, an op that completes with a transient error is
// retried on the same disk up to MaxRetries times, waiting
// Backoff*BackoffFactor^attempt simulated seconds before each retry.
// When retries exhaust (or on a deadline expiry) the op is served through
// the group's redundancy instead: RAID-5 reconstruct from the survivors,
// RAID-1 mirror read, RAID-0 data loss.
type RetryPolicy struct {
	// MaxRetries is how many same-disk retries follow a failed attempt.
	MaxRetries int
	// Backoff is the simulated-time delay before the first retry.
	Backoff float64
	// BackoffFactor multiplies the delay per subsequent retry
	// (1 = fixed backoff; 0 defaults to 1).
	BackoffFactor float64
	// OpDeadline bounds each attempt (queue wait + service). An attempt
	// that has not completed by then is abandoned — counted as a timeout,
	// served through redundancy — and its eventual completion is ignored.
	// 0 disables deadlines.
	OpDeadline float64

	// SuspectAfter marks a disk suspect once it has produced that many
	// errors (transient errors + timeouts). Suspect groups are avoided by
	// fault-aware policies. 0 disables.
	SuspectAfter int
	// EvictAfter evicts a disk (through the FailDisk path, triggering
	// degraded mode) once its error count reaches this. Eviction is
	// refused when it would lose data (e.g. RAID-5 already degraded); the
	// disk then stays suspect. 0 disables.
	EvictAfter int
	// AutoRebuild starts a background rebuild onto the first healthy
	// spare whenever a group member fails (injected or evicted).
	AutoRebuild bool
}

// enabled reports whether any part of the policy is armed; the Failed
// redirect below is gated on it so that legacy fail-stop behavior (X3)
// is bit-preserved when the policy is zero.
func (p *RetryPolicy) enabled() bool {
	return p.MaxRetries > 0 || p.OpDeadline > 0 || p.SuspectAfter > 0 || p.EvictAfter > 0 || p.AutoRebuild
}

// delay returns the backoff before retry number attempt+1 (0-based).
func (p *RetryPolicy) delay(attempt int) float64 {
	if p.Backoff <= 0 {
		return 0
	}
	f := p.BackoffFactor
	if f <= 0 {
		f = 1
	}
	d := p.Backoff
	for i := 0; i < attempt; i++ {
		d *= f
	}
	return d
}

// FaultStats aggregates the array's fault-handling counters.
type FaultStats struct {
	OpErrors  uint64 // physical ops that completed with a transient error
	Retries   uint64 // same-disk retries issued
	Timeouts  uint64 // attempts abandoned at the op deadline
	Fallbacks uint64 // ops served through redundancy after retries/timeouts
	Evictions uint64 // disks evicted by the error tracker or health policy
}

// FaultStats returns the fault-handling counters.
func (a *Array) FaultStats() FaultStats { return a.faultStats }

// submitOne issues a single physical op on a specific member disk,
// applying the retry policy.
func (a *Array) submitOne(g *Group, disk int, io raid.PhysIO, background bool, onDone func()) {
	a.submitAttempt(g, disk, io, background, 0, onDone)
}

// submitAttempt is one try of a physical op: submit, watch the deadline,
// and on a transient error either back off and retry or fall back to the
// group's redundancy. Exactly one of the completion and the deadline
// settles the attempt; onDone fires exactly once per op chain.
func (a *Array) submitAttempt(g *Group, disk int, io raid.PhysIO, background bool, attempt int, onDone func()) {
	pol := &a.cfg.Retry
	settled := false
	var deadline simevent.Event
	settle := func() bool {
		if settled {
			return false
		}
		settled = true
		if deadline.Pending() {
			a.engine.Cancel(deadline)
		}
		return true
	}
	g.disks[disk].Submit(&diskmodel.Request{
		LBA:        io.Offset,
		Size:       io.Size,
		Write:      io.Write,
		Background: background,
		Done: func(r *diskmodel.Request, _ float64) {
			if !settle() {
				return // the deadline already gave up on this attempt
			}
			if r.Failed {
				// The disk died underneath us. With the policy armed the
				// op is re-served through redundancy; without it the
				// legacy behavior stands (completion counted, data loss
				// accounted by the caller's level).
				if pol.enabled() {
					a.redirect(g, disk, io, background, onDone)
				} else {
					onDone()
				}
				return
			}
			if r.Errored {
				a.faultStats.OpErrors++
				a.noteError(g, disk)
				if attempt < pol.MaxRetries {
					a.faultStats.Retries++
					a.cfg.Trace.Event(a.engine.Now(), obs.KindRetry,
						g.id, g.disks[disk].ID(), attempt, attempt+1, "transient error")
					a.engine.Schedule(pol.delay(attempt), func() {
						a.submitAttempt(g, disk, io, background, attempt+1, onDone)
					})
					return
				}
				a.faultStats.Fallbacks++
				a.cfg.Trace.Event(a.engine.Now(), obs.KindFallback,
					g.id, g.disks[disk].ID(), attempt, -1, "retries exhausted")
				a.redirect(g, disk, io, background, onDone)
				return
			}
			onDone()
		},
	})
	if pol.OpDeadline > 0 {
		deadline = a.engine.Schedule(pol.OpDeadline, func() {
			// A timeout only helps when the redundancy it falls back on
			// is actually better off than the disk the op is stuck on;
			// otherwise let the op run to completion.
			if !a.redirectHelps(g, disk) {
				return
			}
			if !settle() {
				return
			}
			// The attempt is abandoned: whatever the disk eventually does
			// with it is ignored (the disk time is still spent — that is
			// the cost of a fail-slow drive). Serve through redundancy.
			// Deliberately NOT fed to the error tracker: a blown deadline
			// measures queue congestion — a commanded speed shift, a
			// post-shift drain, a rebuild hammering the survivors — not
			// disk health, and charging it would evict healthy drives for
			// the policy's own stalls. Only transient errors count.
			a.faultStats.Timeouts++
			a.faultStats.Fallbacks++
			a.cfg.Trace.Event(a.engine.Now(), obs.KindTimeout,
				g.id, g.disks[disk].ID(), attempt, -1, "op deadline; served via redundancy")
			a.redirect(g, disk, io, background, onDone)
		})
	}
}

// redirectHelps decides whether abandoning a stuck attempt in favor of
// the group's redundancy is likely to finish sooner. It keeps the op
// deadline honest — three regimes say no:
//
//   - the group is degraded or rebuilding: redundancy is already spent
//     (or busy being restored) and abandoning the attempt could only
//     lose data. Slow beats gone.
//   - a survivor is mid-transition (spin-up, speed shift) or off: the
//     fallback ops would stall behind the same commanded transition that
//     is stalling this one.
//   - the survivors' queues are comparably backed up: the wait is
//     congestion (e.g. the drain after a speed shift), not a slow disk,
//     and fanning the op out to equally loaded survivors only adds work.
//
// Under a genuine fail-slow member the survivors are live with short
// queues, and the timeout fires as intended.
func (a *Array) redirectHelps(g *Group, stuck int) bool {
	if g.Degraded() || g.rebuilding {
		return false
	}
	var survivors []int
	switch g.geo.Level {
	case raid.RAID1:
		survivors = []int{stuck ^ 1}
	case raid.RAID5:
		for i := range g.disks {
			if i != stuck {
				survivors = append(survivors, i)
			}
		}
	default:
		// RAID-0 has no redundancy: a timeout could only trade latency
		// for data loss.
		return false
	}
	worst := 0
	for _, s := range survivors {
		d := g.disks[s]
		switch d.State() {
		case diskmodel.SpinningUp, diskmodel.ShiftingSpeed, diskmodel.Standby, diskmodel.Failed:
			return false
		}
		if q := d.QueueLen(); q > worst {
			worst = q
		}
	}
	return 2*worst <= g.disks[stuck].QueueLen()
}

// noteError feeds the per-disk error tracker and trips the suspect and
// evicted states. Disabled (both thresholds zero) it does nothing.
func (a *Array) noteError(g *Group, disk int) {
	pol := &a.cfg.Retry
	if pol.SuspectAfter <= 0 && pol.EvictAfter <= 0 {
		return
	}
	if g.failed[disk] {
		return
	}
	if g.errCount == nil {
		g.errCount = map[int]int{}
	}
	g.errCount[disk]++
	n := g.errCount[disk]
	if pol.EvictAfter > 0 && n >= pol.EvictAfter {
		a.evict(g, disk)
		return
	}
	if pol.SuspectAfter > 0 && n >= pol.SuspectAfter {
		if !g.suspect[disk] {
			a.cfg.Trace.Event(a.engine.Now(), obs.KindSuspect,
				g.id, g.disks[disk].ID(), n, -1, "error threshold")
		}
		g.markSuspect(disk)
	}
}

// evict pushes a disk out of service through the regular failure path
// (degraded mode, rebuild). When redundancy cannot absorb the eviction
// (second failure in a protection domain) the disk stays suspect instead:
// limping along with retries beats certain data loss.
func (a *Array) evict(g *Group, disk int) {
	id := g.disks[disk].ID()
	if err := a.FailDisk(g.id, disk); err != nil {
		if !g.suspect[disk] {
			a.cfg.Trace.Event(a.engine.Now(), obs.KindSuspect,
				g.id, id, g.errCount[disk], -1, "evict refused; kept suspect")
		}
		g.markSuspect(disk)
		return
	}
	a.faultStats.Evictions++
	a.cfg.Trace.Event(a.engine.Now(), obs.KindEvict,
		g.id, id, g.errCount[disk], -1, "error threshold")
	delete(g.suspect, disk)
}

// maybeAutoRebuild starts a background rebuild of a failed member onto
// the first live spare, if the policy asks for it and none is running.
func (a *Array) maybeAutoRebuild(g *Group, disk int) {
	if !a.cfg.Retry.AutoRebuild || g.rebuilding {
		return
	}
	for si, sp := range a.spares {
		if sp.State() != diskmodel.Failed {
			// Ignore the error: a concurrent rebuild or a racing failure
			// just means this attempt stands down.
			_ = a.Rebuild(g.id, disk, si, true, nil)
			return
		}
	}
}
