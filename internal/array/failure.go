package array

import (
	"fmt"

	"hibernator/internal/diskmodel"
	"hibernator/internal/obs"
	"hibernator/internal/raid"
)

// rebuildChunk is the streaming unit of a rebuild.
const rebuildChunk = 1 << 20

// FailDisk kills one drive. Subsequent operations targeting it are served
// in degraded mode according to the group's redundancy: RAID-5 reconstructs
// from the survivors, RAID-1 reads the mirror, RAID-0 loses the data (the
// operation completes, and LostIOs counts the damage).
func (a *Array) FailDisk(group, disk int) error {
	if group < 0 || group >= len(a.groups) {
		return fmt.Errorf("array: group %d outside [0,%d)", group, len(a.groups))
	}
	g := a.groups[group]
	if disk < 0 || disk >= len(g.disks) {
		return fmt.Errorf("array: disk %d outside group of %d", disk, len(g.disks))
	}
	if g.failed[disk] {
		return fmt.Errorf("array: disk %d/%d already failed", group, disk)
	}
	if g.failed == nil {
		g.failed = map[int]bool{}
	}
	// RAID-5 and RAID-1 pairs tolerate one failure per protection domain.
	if g.geo.Level == raid.RAID5 && len(g.failed) >= 1 {
		return fmt.Errorf("array: RAID5 group %d already degraded; second failure would lose data", group)
	}
	if g.geo.Level == raid.RAID1 && g.failed[disk^1] {
		return fmt.Errorf("array: RAID1 mirror pair (%d,%d) in group %d already degraded; second failure would lose data",
			disk^1, disk, group)
	}
	a.cfg.Trace.Event(a.engine.Now(), obs.KindDiskFail,
		group, g.disks[disk].ID(), -1, -1, "fail-stop")
	g.failed[disk] = true
	g.disks[disk].Fail()
	a.diskFailures++
	a.maybeAutoRebuild(g, disk)
	return nil
}

// LostIOs counts operations that had no redundancy to fall back on.
func (a *Array) LostIOs() uint64 { return a.lostIOs }

// DiskFailures counts injected failures.
func (a *Array) DiskFailures() uint64 { return a.diskFailures }

// Degraded reports whether the group has failed members.
func (g *Group) Degraded() bool { return len(g.failed) > 0 }

// FailedDisks lists failed member indices.
func (g *Group) FailedDisks() []int {
	var out []int
	for i := range g.disks {
		if g.failed[i] {
			out = append(out, i)
		}
	}
	return out
}

// dispatch routes one physical operation, redirecting around failed disks.
// onDone fires exactly once when the (possibly expanded) operation
// completes.
func (a *Array) dispatch(g *Group, io raid.PhysIO, background bool, onDone func()) {
	if !g.failed[io.Disk] {
		a.submitOne(g, io.Disk, io, background, onDone)
		return
	}
	a.redirect(g, io.Disk, io, background, onDone)
}

// redirect serves one physical op through the group's redundancy while
// avoiding the given member — either because it failed, or because its
// retries/deadline exhausted. RAID-5 reconstructs from the survivors (one
// same-sized op on each remaining disk; a write regenerates parity, so
// the last survivor gets the write), RAID-1 reads the mirror, RAID-0 has
// nothing to fall back on and loses the data (the op still completes and
// LostIOs counts the damage). Redirected ops are the last resort and are
// submitted raw: a transient error on a survivor is not retried again.
func (a *Array) redirect(g *Group, avoid int, io raid.PhysIO, background bool, onDone func()) {
	lose := func() {
		a.noteLost(g)
		a.engine.Schedule(0, func() { onDone() })
	}
	switch g.geo.Level {
	case raid.RAID1:
		mirror := io.Disk ^ 1
		if mirror != avoid && !g.failed[mirror] {
			a.submitRaw(g, mirror, io, background, func(failed bool) {
				// The mirror died while this op was queued on it: the data
				// was never served, so it counts as lost, not completed.
				if failed {
					a.noteLost(g)
				}
				onDone()
			})
			return
		}
		lose()
	case raid.RAID5:
		var survivors []int
		for i := range g.disks {
			if i != avoid && !g.failed[i] {
				survivors = append(survivors, i)
			}
		}
		// Reconstruction needs every other member: with the avoided disk
		// on top of an existing failure there are not enough survivors.
		if len(survivors) < len(g.disks)-1 {
			lose()
			return
		}
		remaining := len(survivors)
		anyFailed := false
		for idx, s := range survivors {
			sub := io
			sub.Write = io.Write && idx == len(survivors)-1
			a.submitRaw(g, s, sub, background, func(failed bool) {
				anyFailed = anyFailed || failed
				remaining--
				if remaining == 0 {
					// Reconstruction needed every survivor; one dying
					// mid-flight means the stripe could not be rebuilt.
					if anyFailed {
						a.noteLost(g)
					}
					onDone()
				}
			})
		}
	default: // RAID0: no redundancy
		lose()
	}
}

// submitRaw issues a single physical op on a specific member disk with no
// retry instrumentation (redirected last-resort ops). onDone reports
// whether the op came back failed — the disk died while it was queued —
// so the caller can account the loss; before it did, a redirected op
// whose target failed mid-flight silently counted as served.
func (a *Array) submitRaw(g *Group, disk int, io raid.PhysIO, background bool, onDone func(failed bool)) {
	g.disks[disk].Submit(&diskmodel.Request{
		LBA:        io.Offset,
		Size:       io.Size,
		Write:      io.Write,
		Background: background,
		Done: func(r *diskmodel.Request, _ float64) {
			onDone(r.Failed)
		},
	})
}

// Rebuild reconstructs the failed disk's contents onto the spare with the
// given index (as returned by Spares()), streaming chunk by chunk: read
// every survivor, then write the spare. On completion the spare replaces
// the failed drive in the group and leaves the spare pool; done (optional)
// fires afterwards.
func (a *Array) Rebuild(group, disk, spareIdx int, background bool, done func()) error {
	if group < 0 || group >= len(a.groups) {
		return fmt.Errorf("array: group %d outside [0,%d)", group, len(a.groups))
	}
	g := a.groups[group]
	if disk < 0 || disk >= len(g.disks) || !g.failed[disk] {
		return fmt.Errorf("array: disk %d/%d is not failed", group, disk)
	}
	if spareIdx < 0 || spareIdx >= len(a.spares) {
		return fmt.Errorf("array: spare %d outside [0,%d)", spareIdx, len(a.spares))
	}
	if g.rebuilding {
		return fmt.Errorf("array: group %d already rebuilding", group)
	}
	spare := a.spares[spareIdx]
	if spare.State() == diskmodel.Failed {
		return fmt.Errorf("array: spare %d is failed", spareIdx)
	}
	g.rebuilding = true
	a.cfg.Trace.Event(a.engine.Now(), obs.KindRebuildStart,
		group, g.disks[disk].ID(), -1, spareIdx, "rebuild onto spare")
	if a.auditor != nil {
		a.auditor.RebuildStart(a.engine.Now(), group)
	}
	a.spares = append(a.spares[:spareIdx], a.spares[spareIdx+1:]...)

	capacity := a.cfg.Spec.CapacityBytes
	var survivors []int
	for i := range g.disks {
		if !g.failed[i] {
			survivors = append(survivors, i)
		}
	}
	var step func(off int64)
	step = func(off int64) {
		if off >= capacity {
			a.retired = append(a.retired, g.disks[disk])
			g.disks[disk] = spare
			delete(g.failed, disk)
			// The member slot holds a fresh drive now: its health record
			// starts clean.
			delete(g.suspect, disk)
			delete(g.errCount, disk)
			g.rebuilding = false
			a.rebuilds++
			a.cfg.Trace.Event(a.engine.Now(), obs.KindRebuildFinish,
				group, spare.ID(), -1, -1, "group healthy")
			if a.auditor != nil {
				a.auditor.RebuildFinish(a.engine.Now(), group)
			}
			if done != nil {
				done()
			}
			return
		}
		n := int64(rebuildChunk)
		if off+n > capacity {
			n = capacity - off
		}
		// Read the stripe from every survivor, then write the
		// reconstructed chunk to the spare.
		remaining := len(survivors)
		writeSpare := func() {
			spare.Submit(&diskmodel.Request{
				LBA: off, Size: n, Write: true, Background: background,
				Done: func(_ *diskmodel.Request, _ float64) {
					step(off + int64(rebuildChunk))
				},
			})
		}
		if remaining == 0 {
			writeSpare() // nothing to read (RAID0 rebuild writes zeros)
			return
		}
		for _, s := range survivors {
			g.disks[s].Submit(&diskmodel.Request{
				LBA: off, Size: n, Background: background,
				Done: func(_ *diskmodel.Request, _ float64) {
					remaining--
					if remaining == 0 {
						writeSpare()
					}
				},
			})
		}
	}
	step(0)
	return nil
}

// Rebuilds counts completed rebuilds.
func (a *Array) Rebuilds() uint64 { return a.rebuilds }
