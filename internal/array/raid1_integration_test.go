package array

import (
	"testing"

	"hibernator/internal/diskmodel"
	"hibernator/internal/raid"
	"hibernator/internal/simevent"
)

func raid1Array(t *testing.T) (*simevent.Engine, *Array) {
	t.Helper()
	e := simevent.New()
	spec := diskmodel.MultiSpeedUltrastar(1, 0)
	a, err := New(Config{
		Engine: e, Spec: &spec, Groups: 2, GroupDisks: 4,
		Level: raid.RAID1, ExtentBytes: 64 << 20, Seed: 5, ExpectedRotLatency: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, a
}

func TestRAID1ArrayWritesBothSides(t *testing.T) {
	e, a := raid1Array(t)
	done := 0
	a.Submit(0, 65536, true, func(float64) { done++ })
	e.RunAll()
	if done != 1 {
		t.Fatal("write never completed")
	}
	var writers int
	for _, d := range a.Disks() {
		if _, w := d.BytesMoved(); w > 0 {
			writers++
		}
	}
	if writers != 2 {
		t.Errorf("%d disks wrote, want both sides of one mirror pair", writers)
	}
}

func TestRAID1ArrayCapacityHalved(t *testing.T) {
	_, a := raid1Array(t)
	e2 := simevent.New()
	spec := diskmodel.MultiSpeedUltrastar(1, 0)
	a0, err := New(Config{
		Engine: e2, Spec: &spec, Groups: 2, GroupDisks: 4,
		Level: raid.RAID0, ExtentBytes: 64 << 20, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.LogicalBytes() >= a0.LogicalBytes() {
		t.Errorf("RAID1 logical %d should be well below RAID0 %d", a.LogicalBytes(), a0.LogicalBytes())
	}
}

func TestRAID1MigrationWorks(t *testing.T) {
	e, a := raid1Array(t)
	dst := 1 - a.ExtentLocation(0).Group
	if err := a.MigrateExtent(0, dst, true, nil); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if a.ExtentLocation(0).Group != dst {
		t.Fatal("migration failed on RAID1 groups")
	}
	// The destination pair mirrored the writes: written bytes across the
	// destination group equal 2x the extent.
	var written uint64
	for _, d := range a.Groups()[dst].Disks() {
		_, w := d.BytesMoved()
		written += w
	}
	if written != 2*uint64(a.ExtentBytes()) {
		t.Errorf("destination group wrote %d, want %d (mirrored)", written, 2*a.ExtentBytes())
	}
}

func TestSPTFThroughArrayConfig(t *testing.T) {
	e := simevent.New()
	spec := diskmodel.MultiSpeedUltrastar(1, 0)
	a, err := New(Config{
		Engine: e, Spec: &spec, Groups: 1, GroupDisks: 1,
		Level: raid.RAID0, ExtentBytes: 64 << 20, Seed: 5,
		ExpectedRotLatency: true, Scheduler: diskmodel.SPTF,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same SPTF ordering observable through the array: long op first, then
	// near beats far.
	var order []string
	a.Submit(0, 1<<20, false, func(float64) { order = append(order, "first") })
	a.Submit(30<<30, 4096, false, func(float64) { order = append(order, "far") })
	a.Submit(2<<20, 4096, false, func(float64) { order = append(order, "near") })
	e.RunAll()
	if len(order) != 3 || order[1] != "near" {
		t.Errorf("order = %v, want near served before far", order)
	}
}
