package array

import (
	"math"
	"testing"

	"hibernator/internal/diskmodel"
	"hibernator/internal/raid"
	"hibernator/internal/simevent"
)

func testArray(t *testing.T, groups, groupDisks int, level raid.Level) (*simevent.Engine, *Array) {
	t.Helper()
	e := simevent.New()
	spec := diskmodel.MultiSpeedUltrastar(5, 3000)
	a, err := New(Config{
		Engine:             e,
		Spec:               &spec,
		Groups:             groups,
		GroupDisks:         groupDisks,
		Level:              level,
		ExtentBytes:        64 << 20,
		Seed:               1,
		InitialLevel:       spec.FullLevel(),
		ExpectedRotLatency: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, a
}

func TestConstructionInvariants(t *testing.T) {
	_, a := testArray(t, 4, 4, raid.RAID5)
	if got := len(a.Disks()); got != 16 {
		t.Errorf("disks = %d, want 16", got)
	}
	if a.NumExtents() == 0 {
		t.Fatal("no extents")
	}
	// Every extent maps to a valid, unique slot.
	type key struct {
		g int
		s int64
	}
	seen := map[key]bool{}
	perGroup := make([]int, 4)
	for e := 0; e < a.NumExtents(); e++ {
		loc := a.ExtentLocation(e)
		k := key{loc.Group, loc.Slot}
		if seen[k] {
			t.Fatalf("extent %d shares slot %+v", e, k)
		}
		seen[k] = true
		perGroup[loc.Group]++
	}
	// Round-robin: groups should be balanced within 1.
	for i := 1; i < 4; i++ {
		if d := perGroup[i] - perGroup[0]; d < -1 || d > 1 {
			t.Errorf("unbalanced initial layout: %v", perGroup)
		}
	}
	// Occupancy leaves free slots for migration.
	for _, g := range a.Groups() {
		if g.FreeSlots() == 0 {
			t.Errorf("group %d has no migration headroom", g.ID())
		}
	}
}

func TestReadCompletesWithSaneLatency(t *testing.T) {
	e, a := testArray(t, 2, 4, raid.RAID5)
	var lat float64
	a.Submit(0, 8192, false, func(l float64) { lat = l })
	e.RunAll()
	if lat <= 0 || lat > 0.05 {
		t.Errorf("read latency %v, want a few ms", lat)
	}
	if a.Completed() != 1 {
		t.Errorf("Completed = %d", a.Completed())
	}
	if a.InFlight() != 0 {
		t.Errorf("InFlight = %d", a.InFlight())
	}
}

func TestRAID5WriteCostsMoreThanRead(t *testing.T) {
	// Writes pay read-modify-write: 4 physical IOs (2 serialized phases).
	e, a := testArray(t, 2, 4, raid.RAID5)
	var rl, wl float64
	a.Submit(0, 8192, false, func(l float64) { rl = l })
	e.RunAll()
	a.Submit(1<<30, 8192, true, func(l float64) { wl = l })
	e.RunAll()
	if wl <= rl {
		t.Errorf("RAID5 write latency %v should exceed read %v", wl, rl)
	}
}

func TestRAID0WriteSingleIO(t *testing.T) {
	e, a := testArray(t, 4, 1, raid.RAID0)
	var wl float64
	a.Submit(0, 8192, true, func(l float64) { wl = l })
	e.RunAll()
	if wl <= 0 || wl > 0.03 {
		t.Errorf("RAID0 write latency %v", wl)
	}
	// Exactly one disk saw a write.
	writes := 0
	for _, d := range a.Disks() {
		_, w := d.BytesMoved()
		if w > 0 {
			writes++
		}
	}
	if writes != 1 {
		t.Errorf("%d disks wrote, want 1", writes)
	}
}

func TestRequestSpanningExtents(t *testing.T) {
	e, a := testArray(t, 2, 1, raid.RAID0)
	eb := a.ExtentBytes()
	var done bool
	a.Submit(eb-4096, 8192, false, func(float64) { done = true })
	e.RunAll()
	if !done {
		t.Fatal("cross-extent request never completed")
	}
	// Both extents' access counters ticked.
	if a.ExtentAccesses(0) != 1 || a.ExtentAccesses(1) != 1 {
		t.Errorf("extent accesses = %d,%d, want 1,1", a.ExtentAccesses(0), a.ExtentAccesses(1))
	}
}

func TestOutOfRangePanics(t *testing.T) {
	_, a := testArray(t, 2, 1, raid.RAID0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Submit(a.LogicalBytes()-100, 4096, false, nil)
}

func TestMigrationMovesExtent(t *testing.T) {
	e, a := testArray(t, 2, 1, raid.RAID0)
	src := a.ExtentLocation(0)
	dst := 1 - src.Group
	var finished bool
	if err := a.MigrateExtent(0, dst, true, func() { finished = true }); err != nil {
		t.Fatal(err)
	}
	if !a.Migrating(0) {
		t.Error("extent should be marked migrating")
	}
	e.RunAll()
	if !finished {
		t.Fatal("migration never completed")
	}
	loc := a.ExtentLocation(0)
	if loc.Group != dst {
		t.Errorf("extent in group %d, want %d", loc.Group, dst)
	}
	if a.Migrating(0) {
		t.Error("migrating flag stuck")
	}
	count, bytes := a.Migrations()
	if count != 1 || bytes != uint64(a.ExtentBytes()) {
		t.Errorf("migrations = %d/%d bytes", count, bytes)
	}
	// Old slot is reusable: migrate back.
	if err := a.MigrateExtent(0, src.Group, true, nil); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if got := a.ExtentLocation(0).Group; got != src.Group {
		t.Errorf("return migration landed in %d, want %d", got, src.Group)
	}
}

func TestMigrationMovesRealBytes(t *testing.T) {
	e, a := testArray(t, 2, 1, raid.RAID0)
	dst := 1 - a.ExtentLocation(0).Group
	if err := a.MigrateExtent(0, dst, true, nil); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	var read, written uint64
	for _, d := range a.Disks() {
		r, w := d.BytesMoved()
		read += r
		written += w
	}
	eb := uint64(a.ExtentBytes())
	if read != eb || written != eb {
		t.Errorf("migration moved read=%d written=%d, want %d each", read, written, eb)
	}
}

func TestMigrationErrors(t *testing.T) {
	e, a := testArray(t, 2, 1, raid.RAID0)
	loc := a.ExtentLocation(0)
	if err := a.MigrateExtent(0, loc.Group, true, nil); err == nil {
		t.Error("same-group migration must fail")
	}
	if err := a.MigrateExtent(-1, 0, true, nil); err == nil {
		t.Error("bad extent must fail")
	}
	if err := a.MigrateExtent(0, 99, true, nil); err == nil {
		t.Error("bad group must fail")
	}
	dst := 1 - loc.Group
	if err := a.MigrateExtent(0, dst, true, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.MigrateExtent(0, dst, true, nil); err == nil {
		t.Error("double migration of one extent must fail")
	}
	e.RunAll()
}

func TestMigrationFillsTargetEventuallyRefuses(t *testing.T) {
	e, a := testArray(t, 2, 1, raid.RAID0)
	free := a.Groups()[1].FreeSlots()
	moved := 0
	for ext := 0; ext < a.NumExtents() && moved < free; ext++ {
		if a.ExtentLocation(ext).Group == 0 {
			if err := a.MigrateExtent(ext, 1, true, nil); err != nil {
				t.Fatalf("move %d: %v", moved, err)
			}
			moved++
		}
	}
	e.RunAll()
	// Target is now full; the next move must refuse with ErrNoFreeSlot.
	for ext := 0; ext < a.NumExtents(); ext++ {
		if a.ExtentLocation(ext).Group == 0 {
			if err := a.MigrateExtent(ext, 1, true, nil); err != ErrNoFreeSlot {
				t.Fatalf("expected ErrNoFreeSlot, got %v", err)
			}
			break
		}
	}
}

func TestSwapExtents(t *testing.T) {
	e, a := testArray(t, 2, 1, raid.RAID0)
	var e0, e1 = -1, -1
	for ext := 0; ext < a.NumExtents(); ext++ {
		switch a.ExtentLocation(ext).Group {
		case 0:
			if e0 < 0 {
				e0 = ext
			}
		case 1:
			if e1 < 0 {
				e1 = ext
			}
		}
	}
	l0, l1 := a.ExtentLocation(e0), a.ExtentLocation(e1)
	var done bool
	if err := a.SwapExtents(e0, e1, true, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if !done {
		t.Fatal("swap never completed")
	}
	if a.ExtentLocation(e0) != l1 || a.ExtentLocation(e1) != l0 {
		t.Error("swap did not exchange locations")
	}
	count, _ := a.Migrations()
	if count != 2 {
		t.Errorf("swap counted as %d migrations, want 2", count)
	}
}

func TestSwapErrors(t *testing.T) {
	_, a := testArray(t, 2, 1, raid.RAID0)
	if err := a.SwapExtents(0, 0, true, nil); err == nil {
		t.Error("self-swap must fail")
	}
	// Find two extents in the same group.
	var g0 []int
	for ext := 0; ext < a.NumExtents() && len(g0) < 2; ext++ {
		if a.ExtentLocation(ext).Group == 0 {
			g0 = append(g0, ext)
		}
	}
	if err := a.SwapExtents(g0[0], g0[1], true, nil); err == nil {
		t.Error("same-group swap must fail")
	}
}

func TestForegroundLatencyUnderMigration(t *testing.T) {
	// Background migration must not starve foreground requests: drive
	// steady foreground load during a migration and check latencies stay
	// bounded.
	e, a := testArray(t, 2, 1, raid.RAID0)
	if err := a.MigrateExtent(0, 1-a.ExtentLocation(0).Group, true, nil); err != nil {
		t.Fatal(err)
	}
	var worst float64
	n := 0
	for i := 0; i < 200; i++ {
		at := float64(i) * 0.01
		e.At(at, func() {
			a.Submit(int64(i%4)<<20, 8192, false, func(l float64) {
				if l > worst {
					worst = l
				}
				n++
			})
		})
	}
	e.RunAll()
	if n != 200 {
		t.Fatalf("completed %d foreground requests, want 200", n)
	}
	if worst > 0.25 {
		t.Errorf("worst foreground latency %v under migration; background priority broken?", worst)
	}
}

func TestGroupSpeedControl(t *testing.T) {
	e, a := testArray(t, 2, 4, raid.RAID5)
	g := a.Groups()[0]
	g.SetLevel(0)
	e.Run(30)
	if g.Level() != 0 {
		t.Errorf("group level = %d, want 0", g.Level())
	}
	for _, d := range g.Disks() {
		if d.Level() != 0 {
			t.Errorf("disk %d level = %d", d.ID(), d.Level())
		}
	}
	// Other group untouched.
	if a.Groups()[1].Level() != a.Spec().FullLevel() {
		t.Error("speed change leaked to other group")
	}
}

func TestGroupStandbyAllOrNothing(t *testing.T) {
	e, a := testArray(t, 1, 4, raid.RAID5)
	g := a.Groups()[0]
	if !g.Standby() {
		t.Fatal("idle group should spin down")
	}
	e.RunAll()
	if !g.AllStandby() {
		t.Fatal("group not fully in standby")
	}
	g.SpinUp()
	e.RunAll()
	if g.AllStandby() {
		t.Error("group still in standby after SpinUp")
	}
	// Busy group refuses.
	var done bool
	a.Submit(0, 8192, false, func(float64) { done = true })
	if g.Standby() {
		t.Error("busy group must refuse standby")
	}
	e.RunAll()
	if !done {
		t.Error("request lost")
	}
}

func TestEnergyAggregation(t *testing.T) {
	e, a := testArray(t, 2, 2, raid.RAID0)
	for i := 0; i < 50; i++ {
		at := float64(i) * 0.05
		e.At(at, func() { a.Submit(int64(i%8)<<22, 8192, i%3 == 0, nil) })
	}
	e.Run(100)
	total := a.TotalEnergy()
	if total <= 0 {
		t.Fatal("no energy accounted")
	}
	byState := a.EnergyByState()
	sum := 0.0
	for _, v := range byState {
		sum += v
	}
	if math.Abs(sum-total) > 1e-6*(1+total) {
		t.Errorf("state sum %v != total %v", sum, total)
	}
	if byState["idle"] <= 0 || byState["active"] <= 0 {
		t.Errorf("expected idle+active energy, got %v", byState)
	}
}

func TestSparesOutsideGroups(t *testing.T) {
	e := simevent.New()
	spec := diskmodel.MultiSpeedUltrastar(1, 0)
	a, err := New(Config{
		Engine: e, Spec: &spec,
		Groups: 2, GroupDisks: 1, Level: raid.RAID0,
		SpareDisks: 2, Seed: 3, ExtentBytes: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Spares()) != 2 {
		t.Fatalf("spares = %d", len(a.Spares()))
	}
	if len(a.Disks()) != 4 {
		t.Fatalf("total disks = %d, want 4", len(a.Disks()))
	}
	// Logical capacity comes only from groups (occupancy-truncated slots).
	slots := 2 * (spec.CapacityBytes / (64 << 20))
	want := int64(float64(slots)*0.9) * (64 << 20)
	if a.LogicalBytes() != want {
		t.Errorf("LogicalBytes = %d, want %d", a.LogicalBytes(), want)
	}
}

func TestConfigValidation(t *testing.T) {
	e := simevent.New()
	spec := diskmodel.MultiSpeedUltrastar(1, 0)
	bad := []Config{
		{},
		{Engine: e, Spec: &spec, Groups: 0, GroupDisks: 1},
		{Engine: e, Spec: &spec, Groups: 1, GroupDisks: 2, Level: raid.RAID5}, // RAID5 < 3 disks
		{Engine: e, Spec: &spec, Groups: 1, GroupDisks: 1, Occupancy: 1.5},
		{Engine: e, Spec: &spec, Groups: 1, GroupDisks: 1, ExtentBytes: 1 << 62},
		{Engine: e, Spec: &spec, Groups: 1, GroupDisks: 1, SpareDisks: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestResponseStatsAndObserver(t *testing.T) {
	e, a := testArray(t, 2, 1, raid.RAID0)
	var observed int
	a.SetOnComplete(func(lat float64, write bool) { observed++ })
	for i := 0; i < 20; i++ {
		a.Submit(int64(i)<<20, 4096, i%2 == 0, nil)
	}
	e.RunAll()
	if observed != 20 {
		t.Errorf("observer saw %d, want 20", observed)
	}
	if a.ResponseMoments().Count() != 20 {
		t.Errorf("response count = %d", a.ResponseMoments().Count())
	}
	if q := a.ResponseQuantile(0.5); q <= 0 {
		t.Errorf("median response %v", q)
	}
	// Background traffic must not pollute stats.
	a.SubmitBackground(0, 4096, true, nil)
	e.RunAll()
	if a.ResponseMoments().Count() != 20 {
		t.Error("background request counted in response stats")
	}
}

func TestTeleportSwap(t *testing.T) {
	_, a := testArray(t, 2, 1, raid.RAID0)
	var e0, e1 = -1, -1
	for ext := 0; ext < a.NumExtents(); ext++ {
		switch a.ExtentLocation(ext).Group {
		case 0:
			if e0 < 0 {
				e0 = ext
			}
		case 1:
			if e1 < 0 {
				e1 = ext
			}
		}
	}
	l0, l1 := a.ExtentLocation(e0), a.ExtentLocation(e1)
	if err := a.TeleportSwap(e0, e1); err != nil {
		t.Fatal(err)
	}
	if a.ExtentLocation(e0) != l1 || a.ExtentLocation(e1) != l0 {
		t.Fatal("teleport did not exchange locations")
	}
	if count, bytes := a.Migrations(); count != 0 || bytes != 0 {
		t.Error("teleport must not count as migration I/O")
	}
	if err := a.TeleportSwap(e0, e0); err != nil {
		t.Errorf("self-teleport should be a no-op, got %v", err)
	}
	if err := a.TeleportSwap(-1, e1); err == nil {
		t.Error("bad extent must fail")
	}
	// A migrating extent cannot teleport.
	if err := a.MigrateExtent(e0, l0.Group, true, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.TeleportSwap(e0, e1); err == nil {
		t.Error("teleport during migration must fail")
	}
}
