package array

import (
	"fmt"

	"hibernator/internal/diskmodel"
	"hibernator/internal/raid"
)

// Group is one RAID group: the unit of speed control and extent placement.
type Group struct {
	id    int
	geo   raid.Geometry
	disks []*diskmodel.Disk
	array *Array

	slotUsed []bool
	used     int

	failed     map[int]bool
	rebuilding bool

	// suspect members have crossed the error-rate threshold but are still
	// serving; errCount is the per-member error tally behind it.
	suspect  map[int]bool
	errCount map[int]int
}

// markSuspect flags a member as suspect (idempotent).
func (g *Group) markSuspect(disk int) {
	if g.suspect == nil {
		g.suspect = map[int]bool{}
	}
	g.suspect[disk] = true
}

// Suspect reports whether any member has crossed the error threshold.
func (g *Group) Suspect() bool { return len(g.suspect) > 0 }

// SuspectDisks lists suspect member indices.
func (g *Group) SuspectDisks() []int {
	var out []int
	for i := range g.disks {
		if g.suspect[i] {
			out = append(out, i)
		}
	}
	return out
}

// Rebuilding reports whether a rebuild is streaming into this group.
func (g *Group) Rebuilding() bool { return g.rebuilding }

// Healthy reports whether the group is fully trustworthy: no failed
// members, no suspect members, no rebuild in flight. Fault-aware policies
// refuse to slow down or migrate data onto unhealthy groups.
func (g *Group) Healthy() bool {
	return len(g.failed) == 0 && len(g.suspect) == 0 && !g.rebuilding
}

// ID returns the group index within the array.
func (g *Group) ID() int { return g.id }

// Disks returns the member drives.
func (g *Group) Disks() []*diskmodel.Disk { return g.disks }

// Slots returns total and used physical extent slots.
func (g *Group) Slots() (total, used int) { return len(g.slotUsed), g.used }

// SlotInUse reports whether physical extent slot s is allocated.
func (g *Group) SlotInUse(s int64) bool { return g.slotUsed[s] }

// FreeSlots returns how many extent slots are unoccupied.
func (g *Group) FreeSlots() int { return len(g.slotUsed) - g.used }

// Level returns the current speed level of the group (its first disk; the
// group moves as a unit, though transient per-disk skew exists mid-shift).
func (g *Group) Level() int { return g.disks[0].Level() }

// TargetLevel returns the level the group is heading to.
func (g *Group) TargetLevel() int { return g.disks[0].TargetLevel() }

// SetLevel requests a speed change on every member disk.
func (g *Group) SetLevel(level int) {
	for _, d := range g.disks {
		d.SetTargetLevel(level)
	}
}

// Standby spins the whole group down; it succeeds only if every member is
// idle and reports whether all spin-downs started. A partially idle group
// is left untouched.
func (g *Group) Standby() bool {
	for _, d := range g.disks {
		if d.State() != diskmodel.Idle || d.QueueLen() > 0 {
			return false
		}
	}
	for _, d := range g.disks {
		if !d.Standby() {
			// Should be unreachable given the pre-check; spin others back
			// up to avoid a half-down group.
			for _, u := range g.disks {
				u.SpinUp()
			}
			return false
		}
	}
	return true
}

// SpinUp wakes every standby member.
func (g *Group) SpinUp() {
	for _, d := range g.disks {
		d.SpinUp()
	}
}

// AllStandby reports whether every member is fully spun down.
func (g *Group) AllStandby() bool {
	for _, d := range g.disks {
		if d.State() != diskmodel.Standby {
			return false
		}
	}
	return true
}

// IdleFor returns the smallest member idle time (0 unless all idle).
func (g *Group) IdleFor() float64 {
	min := -1.0
	for _, d := range g.disks {
		f := d.IdleFor()
		if f == 0 && d.State() != diskmodel.Idle {
			return 0
		}
		if min < 0 || f < min {
			min = f
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// QueueLen sums member queue lengths.
func (g *Group) QueueLen() int {
	n := 0
	for _, d := range g.disks {
		n += d.QueueLen()
	}
	return n
}

// Completed sums member completed-request counts.
func (g *Group) Completed() uint64 {
	var n uint64
	for _, d := range g.disks {
		n += d.Completed()
	}
	return n
}

// allocSlot claims a free physical slot, lowest-index first.
func (g *Group) allocSlot() (int64, error) {
	for i, used := range g.slotUsed {
		if !used {
			g.slotUsed[i] = true
			g.used++
			return int64(i), nil
		}
	}
	return 0, fmt.Errorf("array: group %d has no free extent slot", g.id)
}

func (g *Group) freeSlot(s int64) {
	if !g.slotUsed[s] {
		panic(fmt.Sprintf("array: double free of slot %d in group %d", s, g.id))
	}
	g.slotUsed[s] = false
	g.used--
}
