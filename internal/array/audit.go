package array

// Auditor receives the array's logical-accounting events as they happen:
// request submit/complete, data loss, extent movement and rebuilds. It
// exists for verification layers (internal/invariant) that re-derive the
// array's counters independently; a nil auditor costs one pointer compare
// per event and nothing else. All times are simulated seconds.
type Auditor interface {
	// LogicalSubmit fires when Submit accepts a logical request; inFlight
	// is the array's outstanding count after the increment.
	LogicalSubmit(t float64, inFlight int)
	// LogicalComplete fires when a logical request's last physical op
	// finishes; inFlight is the outstanding count after the decrement.
	LogicalComplete(t float64, inFlight int)
	// IOLost fires each time an operation is counted in LostIOs.
	IOLost(t float64, group int)
	// MigrateStart/MigrateFinish bracket one MigrateExtent call.
	MigrateStart(t float64, extent, from, to int)
	MigrateFinish(t float64, extent, from, to int)
	// SwapStart/SwapFinish bracket one SwapExtents call.
	SwapStart(t float64, e1, e2, g1, g2 int)
	SwapFinish(t float64, e1, e2, g1, g2 int)
	// RebuildStart/RebuildFinish bracket one Rebuild call.
	RebuildStart(t float64, group int)
	RebuildFinish(t float64, group int)
}

// SetAuditor installs (or, with nil, removes) the accounting auditor.
func (a *Array) SetAuditor(aud Auditor) { a.auditor = aud }

// noteLost counts one operation that could not be served by any remaining
// redundancy — the single place LostIOs grows.
func (a *Array) noteLost(g *Group) {
	a.lostIOs++
	if a.auditor != nil {
		a.auditor.IOLost(a.engine.Now(), g.id)
	}
}
