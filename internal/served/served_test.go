package served

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hibernator/internal/chaos"
)

// testScenario returns a small deterministic scenario; dur overrides the
// generated duration so tests control how long a job runs.
func testScenario(t *testing.T, index int, dur float64) *chaos.Scenario {
	t.Helper()
	g := chaos.Generate(1, index)
	sc := &g
	sc.Duration = dur
	if sc.SnapshotT >= dur {
		sc.SnapshotT = 0
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("generated scenario invalid: %v", err)
	}
	return sc
}

// reproBody renders sc in the wire format POST /jobs accepts.
func reproBody(t *testing.T, sc *chaos.Scenario) *bytes.Reader {
	t.Helper()
	txt, err := canonicalRepro(sc)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader([]byte(txt))
}

func postJob(t *testing.T, ts *httptest.Server, sc *chaos.Scenario) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "text/plain", reproBody(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["id"] == "" || out["state"] != StateAccepted {
		t.Fatalf("submit response %v", out)
	}
	return out["id"]
}

// postVerb POSTs a job verb and closes the response.
func postVerb(t *testing.T, ts *httptest.Server, id, verb string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs/"+id+"/"+verb, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches one of the wanted states.
func waitState(t *testing.T, ts *httptest.Server, id string, want ...string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v (last: %+v)", id, want, getStatus(t, ts, id))
	return JobStatus{}
}

func getBody(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, b)
	}
	return b
}

// The core contract: a served job's result and streams are byte-
// identical to a direct sim.Run of the same scenario.
func TestServedMatchesDirectRun(t *testing.T) {
	sc := testScenario(t, 7, 120)
	wantResult, wantMetrics, wantTrace, err := DirectRun(sc, false)
	if err != nil {
		t.Fatal(err)
	}

	srv := New(nil)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id := postJob(t, ts, sc)

	// Stream live from the start: the streamed bytes must equal the
	// direct exporter output once the job completes.
	streamed := getBody(t, ts, "/jobs/"+id+"/stream")

	st := waitState(t, ts, id, StateComplete, StateFailed)
	if st.State != StateComplete {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.Events == 0 {
		t.Fatal("status reports zero events fired")
	}
	if !bytes.Equal([]byte(st.Result), bytes.TrimSuffix(wantResult, []byte("\n"))) &&
		!bytes.Equal([]byte(st.Result), wantResult) {
		t.Fatalf("served result diverges from direct run:\n%s\nvs\n%s", st.Result, wantResult)
	}
	if !bytes.Equal(streamed, wantMetrics) {
		t.Fatalf("live metrics stream diverges from direct export (%d vs %d bytes)", len(streamed), len(wantMetrics))
	}
	if got := getBody(t, ts, "/jobs/"+id+"/trace"); !bytes.Equal(got, wantTrace) {
		t.Fatalf("trace stream diverges from direct export (%d vs %d bytes)", len(got), len(wantTrace))
	}
	// Re-reading the stream after completion returns the same bytes.
	if again := getBody(t, ts, "/jobs/"+id+"/stream"); !bytes.Equal(again, streamed) {
		t.Fatal("post-completion stream read differs from live read")
	}
}

// The SSE endpoint carries the same rows as the JSONL stream, one per
// data: event, ending with an end event.
func TestSSEStream(t *testing.T) {
	sc := testScenario(t, 7, 120)
	_, wantMetrics, _, err := DirectRun(sc, false)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(nil)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id := postJob(t, ts, sc)
	body := getBody(t, ts, "/jobs/"+id+"/events")
	var rebuilt []byte
	sawEnd := false
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "event: end") {
			sawEnd = true
		}
		if strings.HasPrefix(line, "data: {") {
			rebuilt = append(rebuilt, line[len("data: "):]...)
			rebuilt = append(rebuilt, '\n')
		}
	}
	if !sawEnd {
		t.Fatal("SSE stream missing end event")
	}
	if !bytes.Equal(rebuilt, wantMetrics) {
		t.Fatalf("SSE payloads diverge from direct export (%d vs %d bytes)", len(rebuilt), len(wantMetrics))
	}
}

// Dry-run validates and echoes without admitting a job.
func TestDryRun(t *testing.T) {
	sc := testScenario(t, 3, 60)
	srv := New(nil)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/jobs?dry-run=1", "text/plain", reproBody(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dry-run status %d", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	want, _ := canonicalRepro(sc)
	if out["canonical"] != want {
		t.Fatalf("dry-run echo diverges:\n%q\nvs\n%q", out["canonical"], want)
	}
	var list JobList
	if err := json.Unmarshal(getBody(t, ts, "/jobs"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 0 {
		t.Fatalf("dry-run admitted a job: %+v", list.Jobs)
	}
}

// Garbage submissions are 400s, not jobs.
func TestBadSubmission(t *testing.T) {
	srv := New(nil)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/jobs", "text/plain", strings.NewReader("not a repro"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// A full backlog answers 429 with Retry-After, and every accepted job
// still completes — backpressure loses nothing.
func TestBackpressure(t *testing.T) {
	// One worker, a one-slot backlog, and a long-running first job: the
	// third concurrent submission must be refused.
	srv := New(&Options{Workers: 1, Backlog: 1, MaxJobs: 16})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	long := testScenario(t, 7, 100000) // minutes of real time; canceled below
	id1 := postJob(t, ts, long)
	waitState(t, ts, id1, StateRunning)

	short := testScenario(t, 3, 60)
	id2 := postJob(t, ts, short) // parks in the backlog
	resp, err := http.Post(ts.URL+"/jobs", "text/plain", reproBody(t, short))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submission: status %d (%s), want 429", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	if st := srv.Stats(); st.Rejected == 0 {
		t.Fatalf("stats did not count the rejection: %+v", st)
	}

	// Cancel the blocker; the backlogged job must still run to completion.
	postVerb(t, ts, id1, "cancel")
	waitState(t, ts, id1, StateCanceled)
	if st := waitState(t, ts, id2, StateComplete, StateFailed); st.State != StateComplete {
		t.Fatalf("backlogged job failed: %s", st.Error)
	}
}

// A canceled job reports canceled and can be retried from scratch to an
// identical result.
func TestCancelAndRetry(t *testing.T) {
	sc := testScenario(t, 7, 120)
	wantResult, _, _, err := DirectRun(sc, false)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(nil)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	long := testScenario(t, 7, 100000)
	id := postJob(t, ts, long)
	waitState(t, ts, id, StateRunning)
	postVerb(t, ts, id, "cancel")
	waitState(t, ts, id, StateCanceled)

	// Retry re-runs from scratch. Swap in the short scenario's job to
	// keep the test fast: submit it, cancel mid-run, retry, verify.
	id2 := postJob(t, ts, sc)
	st := waitState(t, ts, id2, StateComplete)
	_ = st
	// Now exercise retry on the canceled long job but don't wait for the
	// re-run (it is long); just confirm the verb re-admits it.
	resp, err := http.Post(ts.URL+"/jobs/"+id+"/retry", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry: status %d", resp.StatusCode)
	}
	waitState(t, ts, id, StateAccepted, StateRunning)
	postVerb(t, ts, id, "cancel")
	waitState(t, ts, id, StateCanceled)

	if got := getStatus(t, ts, id2); !bytes.Equal(append([]byte(got.Result), '\n'), wantResult) {
		t.Fatalf("result diverges after server churn:\n%s\nvs\n%s", got.Result, wantResult)
	}
}

// When the table is full of terminal jobs, the oldest is flushed to a
// tombstone (410 Gone) to admit new work.
func TestFlushEviction(t *testing.T) {
	srv := New(&Options{MaxJobs: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sc := testScenario(t, 3, 60)
	id1 := postJob(t, ts, sc)
	waitState(t, ts, id1, StateComplete)
	id2 := postJob(t, ts, sc)
	waitState(t, ts, id2, StateComplete)
	id3 := postJob(t, ts, sc)
	waitState(t, ts, id3, StateComplete)

	resp, err := http.Get(ts.URL + "/jobs/" + id1)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("flushed job: status %d, want 410", resp.StatusCode)
	}
	if st := srv.Stats(); st.Flushed == 0 {
		t.Fatalf("stats did not count the flush: %+v", st)
	}
	resp, err = http.Get(ts.URL + "/jobs/never-existed")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// Suspend → resume: the resumed job's metrics stream must be an exact
// byte tail of the uninterrupted run's, and the final result identical.
func TestSuspendResumeTail(t *testing.T) {
	sc := testScenario(t, 7, 600)
	wantResult, wantMetrics, _, err := DirectRun(sc, false)
	if err != nil {
		t.Fatal(err)
	}

	srv := New(&Options{SnapshotFrac: 32})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id := postJob(t, ts, sc)
	waitState(t, ts, id, StateRunning)
	// Let it get some way in so a periodic snapshot likely exists; a
	// suspend before the first snapshot degrades to resume-from-scratch,
	// which still satisfies the tail property (the whole stream).
	time.Sleep(100 * time.Millisecond)
	resp, err := http.Post(ts.URL+"/jobs/"+id+"/suspend", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		t.Skipf("job finished before suspend landed: %+v", st)
	}
	if st.State != StateSuspended {
		t.Fatalf("after suspend: state %q", st.State)
	}

	resp, err = http.Post(ts.URL+"/jobs/"+id+"/resume", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume: status %d", resp.StatusCode)
	}
	tail := getBody(t, ts, "/jobs/"+id+"/stream") // streams the resumed run to its end
	fin := waitState(t, ts, id, StateComplete, StateFailed)
	if fin.State != StateComplete {
		t.Fatalf("resumed job failed: %s", fin.Error)
	}
	if !bytes.Equal(append([]byte(fin.Result), '\n'), wantResult) {
		t.Fatalf("resumed result diverges from uninterrupted run:\n%s\nvs\n%s", fin.Result, wantResult)
	}
	if len(tail) == 0 || !bytes.HasSuffix(wantMetrics, tail) {
		t.Fatalf("resumed stream (%d bytes) is not a byte tail of the uninterrupted stream (%d bytes)",
			len(tail), len(wantMetrics))
	}
}

// Suspending or resuming in the wrong state is a 409, not corruption.
func TestSuspendWrongState(t *testing.T) {
	srv := New(nil)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sc := testScenario(t, 3, 60)
	id := postJob(t, ts, sc)
	waitState(t, ts, id, StateComplete)
	for _, verb := range []string{"suspend", "resume"} {
		resp, err := http.Post(fmt.Sprintf("%s/jobs/%s/%s", ts.URL, id, verb), "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s on complete job: status %d, want 409", verb, resp.StatusCode)
		}
	}
}
