package served

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestFlushTombstoneRace hammers a job's status and stream endpoints
// from many goroutines while the server flushes it to a tombstone to
// make room for new admissions. Every reader must see either the full
// terminal status (valid JSON, complete result) or a clean 410 — never
// a torn response, a 500, or a vanished (404) ID. Run under -race this
// also pins the locking between flush eviction and concurrent reads.
func TestFlushTombstoneRace(t *testing.T) {
	s := New(&Options{MaxJobs: 2, Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sc := testScenario(t, 3, 60)
	id := postJob(t, ts, sc)
	want := waitState(t, ts, id, StateComplete) // also marks it delivered

	const readers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, readers*4)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/jobs/" + id)
				if err != nil {
					errs <- "status: " + err.Error()
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					var st JobStatus
					if err := json.Unmarshal(body, &st); err != nil {
						errs <- "torn status body: " + string(body)
						return
					}
					if st.State == StateComplete && string(st.Result) != string(want.Result) {
						errs <- "partial result: " + string(st.Result)
						return
					}
				case http.StatusGone:
					var gone map[string]string
					if err := json.Unmarshal(body, &gone); err != nil || gone["state"] != StateFlushed {
						errs <- "torn 410 body: " + string(body)
						return
					}
				default:
					errs <- "unexpected status " + resp.Status + ": " + string(body)
					return
				}
				// The stream endpoint must be equally clean: full bytes
				// then EOF, or a structured 410.
				resp2, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
				if err != nil {
					errs <- "stream: " + err.Error()
					return
				}
				io.Copy(io.Discard, resp2.Body)
				resp2.Body.Close()
				if resp2.StatusCode != http.StatusOK && resp2.StatusCode != http.StatusGone {
					errs <- "stream status " + resp2.Status
					return
				}
			}
		}()
	}

	// Force flushes: each admission beyond MaxJobs evicts the oldest
	// delivered terminal job — our hammered id is first in line. Waiting
	// for each filler to finish keeps every later admission flushable.
	for i := 0; i < 3; i++ {
		nid := postJob(t, ts, testScenario(t, 3, 60))
		waitState(t, ts, nid, StateComplete)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("hammered job not tombstoned: %s", resp.Status)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
