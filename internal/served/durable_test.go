package served

// Crash-recovery tests: every one builds a durable server over a temp
// state directory, tears it down — either cleanly (Close) or as a
// simulated kill -9 (abort, which freezes the disk at that instant) —
// and asserts that a reopened server rebuilds exactly the table the
// log promises, with results byte-identical to a direct run.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hibernator/internal/chaos"
	"hibernator/internal/journal"
)

// openDurable builds a durable server plus its HTTP test harness.
func openDurable(t *testing.T, dir string, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	opts.StateDir = dir
	s, err := Open(&opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, httptest.NewServer(s.Handler())
}

// postKeyed submits with idempotency headers and returns (id, status).
func postKeyed(t *testing.T, ts *httptest.Server, body []byte, client, key string) (string, int) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Client", client)
	req.Header.Set("X-Job-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	decodeBody(t, resp, &out)
	return out["id"], resp.StatusCode
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

func TestDurableSurvivesCleanRestart(t *testing.T) {
	dir := t.TempDir()
	sc := testScenario(t, 3, 60)
	body := []byte(mustCanonical(t, sc))

	s1, ts1 := openDurable(t, dir, Options{})
	id, code := postKeyed(t, ts1, body, "alice", "k1")
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	st := waitState(t, ts1, id, StateComplete)
	ts1.Close()
	s1.Close()

	s2, ts2 := openDurable(t, dir, Options{})
	defer ts2.Close()
	defer s2.Close()
	st2 := getStatus(t, ts2, id)
	if st2.State != StateComplete {
		t.Fatalf("after restart: state %s", st2.State)
	}
	if !bytes.Equal(st2.Result, st.Result) {
		t.Fatalf("result changed across restart:\n pre: %s\npost: %s", st.Result, st2.Result)
	}
	if got := s2.Stats(); got.Replayed != 1 {
		t.Fatalf("replayed = %d, want 1", got.Replayed)
	}
	// The idempotency key survives too: a blind re-POST dedupes.
	id2, code := postKeyed(t, ts2, body, "alice", "k1")
	if code != http.StatusOK || id2 != id {
		t.Fatalf("re-POST after restart: id=%s code=%d, want %s/200", id2, code, id)
	}
	if got := s2.Stats(); got.Deduped != 1 {
		t.Fatalf("deduped = %d, want 1", got.Deduped)
	}
}

func TestCrashRecoveryRerunsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	sc := testScenario(t, 7, 600)
	wantResult, _, _, err := DirectRun(sc, false)
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(mustCanonical(t, sc))

	s1, ts1 := openDurable(t, dir, Options{})
	id, code := postKeyed(t, ts1, body, "bob", "crash-1")
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	// Kill the server without letting any terminal edge reach disk; the
	// job is accepted (durably, before the 202) or running at this point.
	ts1.Close()
	s1.abort()

	s2, ts2 := openDurable(t, dir, Options{})
	defer ts2.Close()
	defer s2.Close()
	st := waitState(t, ts2, id, StateComplete)
	if !bytes.Equal(st.Result, bytes.TrimSuffix(wantResult, []byte("\n"))) {
		t.Fatalf("recovered result differs from direct run:\n got: %s\nwant: %s", st.Result, wantResult)
	}
	got := s2.Stats()
	if got.Replayed != 1 || got.Resumed+got.Restarted != 1 {
		t.Fatalf("stats after crash recovery: %+v", got)
	}
	// Recovery drained: the server reports ready and accepts new work.
	resp, err := http.Get(ts2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after recovery: %d", resp.StatusCode)
	}
}

func TestCrashRecoveryResumesFromPersistedSnapshot(t *testing.T) {
	dir := t.TempDir()
	// The long scenario the suspend/resume tests use: slow enough in real
	// time that periodic snapshots land well before completion.
	sc := testScenario(t, 7, 600)
	wantResult, wantMetrics, _, err := DirectRun(sc, false)
	if err != nil {
		t.Fatal(err)
	}

	s1, ts1 := openDurable(t, dir, Options{SnapshotFrac: 64})
	id, _ := postKeyed(t, ts1, []byte(mustCanonical(t, sc)), "carol", "snap-1")
	// Wait for a persisted snapshot, then crash mid-run.
	snapPath := filepath.Join(dir, "snaps", id+".snap")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(snapPath); err == nil {
			break
		}
		if st := getStatus(t, ts1, id); terminalState(st.State) {
			t.Skipf("job finished before a snapshot persisted: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no snapshot persisted for %s", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ts1.Close()
	s1.abort()

	s2, ts2 := openDurable(t, dir, Options{SnapshotFrac: 64})
	defer ts2.Close()
	defer s2.Close()
	stream := getBody(t, ts2, "/jobs/"+id+"/stream")
	st := waitState(t, ts2, id, StateComplete)
	if got := s2.Stats(); got.Resumed != 1 {
		t.Fatalf("stats: %+v, want Resumed=1", got)
	}
	if !bytes.Equal(st.Result, bytes.TrimSuffix(wantResult, []byte("\n"))) {
		t.Fatalf("resumed result differs from direct run:\n got: %s\nwant: %s", st.Result, wantResult)
	}
	// The resumed stream is an exact byte tail of the uninterrupted run.
	if len(stream) == 0 || !bytes.HasSuffix(wantMetrics, stream) {
		t.Fatalf("resumed stream (%d bytes) is not a tail of the direct metrics (%d bytes)", len(stream), len(wantMetrics))
	}
	if len(stream) >= len(wantMetrics) {
		t.Fatalf("resumed stream replayed the whole run (%d >= %d bytes): snapshot not used", len(stream), len(wantMetrics))
	}
}

// A resume refused by a full backlog rolls back to suspended; the WAL
// it leaves behind must still replay (regression: the rollback edge
// made every subsequent Open of the state dir fail).
func TestResumeRollbackKeepsWALReplayable(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := openDurable(t, dir, Options{Workers: 1, Backlog: 1, MaxJobs: 16})
	long := testScenario(t, 7, 100000) // minutes of real time; never finishes here

	id := postJob(t, ts1, long)
	waitState(t, ts1, id, StateRunning)
	resp, err := http.Post(ts1.URL+"/jobs/"+id+"/suspend", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("suspend: status %d", resp.StatusCode)
	}
	// Suspending freed the worker; refill it and the one-slot backlog so
	// the resume below finds no room.
	id2 := postJob(t, ts1, long)
	waitState(t, ts1, id2, StateRunning)
	postJob(t, ts1, long) // parks in the backlog

	resp, err = http.Post(ts1.URL+"/jobs/"+id+"/resume", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("resume with full backlog: status %d, want 429", resp.StatusCode)
	}
	if st := getStatus(t, ts1, id); st.State != StateSuspended {
		t.Fatalf("after refused resume: state %s, want suspended", st.State)
	}
	ts1.Close()
	s1.abort() // freeze the log exactly as the rollback left it

	s2, ts2 := openDurable(t, dir, Options{Workers: 1, Backlog: 1, MaxJobs: 16})
	defer ts2.Close()
	defer s2.Close()
	if st := getStatus(t, ts2, id); st.State != StateSuspended {
		t.Fatalf("after restart: state %s, want suspended", st.State)
	}
}

func TestRecoveryShedsSubmissionsUntilDrained(t *testing.T) {
	// The shed window is inherently transient on a live server, so this
	// pins the logic at the admission layer: a server with a non-empty
	// replay backlog refuses with 503/recovering and flips to accepting
	// the moment the backlog drains.
	s := New(&Options{MaxJobs: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sc := testScenario(t, 3, 60)

	s.pending.Store(1) // simulate one not-yet-started recovered job
	if _, _, err := s.SubmitKeyed(sc, "dave", ""); !IsRecovering(err) {
		t.Fatalf("submit during recovery: %v, want errRecovering", err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during recovery: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("readyz 503 without Retry-After")
	}

	s.pending.Store(0)
	if _, _, err := s.SubmitKeyed(sc, "dave", ""); err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	if got := s.Stats(); got.Shed != 1 {
		t.Fatalf("shed = %d, want 1", got.Shed)
	}
	// healthz is liveness, not readiness: 200 throughout.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp2.StatusCode)
	}
}

func TestWALMetaGuardRefusesChangedFlags(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(&Options{StateDir: dir, Check: false})
	s1.Close()
	if _, err := Open(&Options{StateDir: dir, Check: true}); err == nil {
		t.Fatal("reopening with changed -check must be refused")
	}
	// Original flags still work.
	s2, err := Open(&Options{StateDir: dir, Check: false})
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
}

func TestWALTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	sc := testScenario(t, 3, 60)
	s1, ts1 := openDurable(t, dir, Options{})
	id, _ := postKeyed(t, ts1, []byte(mustCanonical(t, sc)), "", "")
	waitState(t, ts1, id, StateComplete)
	ts1.Close()
	s1.Close()

	// Simulate a kill -9 mid-append: a partial line with no newline.
	path := filepath.Join(dir, "jobs.jsonl")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"run":"j9","status":"acce`)
	f.Close()

	s2, ts2 := openDurable(t, dir, Options{})
	defer ts2.Close()
	defer s2.Close()
	if st := getStatus(t, ts2, id); st.State != StateComplete {
		t.Fatalf("job lost to torn tail: %+v", st)
	}
	if resp, err := http.Get(ts2.URL + "/jobs/j9"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("torn-tail job resurfaced: %d", resp.StatusCode)
		}
	}
}

func TestRestartNeverReissuesJobIDs(t *testing.T) {
	dir := t.TempDir()
	sc := testScenario(t, 3, 60)
	s1, ts1 := openDurable(t, dir, Options{})
	id1, _ := postKeyed(t, ts1, []byte(mustCanonical(t, sc)), "", "")
	waitState(t, ts1, id1, StateComplete)
	ts1.Close()
	s1.Close()

	s2, ts2 := openDurable(t, dir, Options{})
	defer ts2.Close()
	defer s2.Close()
	id2, code := postKeyed(t, ts2, []byte(mustCanonical(t, sc)), "", "")
	if code != http.StatusAccepted {
		t.Fatalf("submit after restart: %d", code)
	}
	if id2 == id1 {
		t.Fatalf("job ID %s reissued after restart", id2)
	}
}

func TestNonDurableServerWritesNothing(t *testing.T) {
	// Durability is strictly opt-in: without StateDir the server must
	// not touch the filesystem. Run a full job lifecycle in a sandbox
	// cwd-independent way and verify the temp dir stays empty.
	dir := t.TempDir()
	s := New(&Options{})
	ts := httptest.NewServer(s.Handler())
	id := postJob(t, ts, testScenario(t, 3, 60))
	waitState(t, ts, id, StateComplete)
	ts.Close()
	s.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("non-durable server created files: %v", entries)
	}
}

// TestWALEdgeLegality exercises applyWALEntry's state machine directly:
// semantically corrupt logs fail loudly, rejected admissions vanish,
// flushed jobs never take another edge.
func TestWALEdgeLegality(t *testing.T) {
	run := func(entries []journal.Entry) (map[string]*walRecord, error) {
		records := map[string]*walRecord{}
		var order []string
		for _, e := range entries {
			if err := applyWALEntry(records, &order, e); err != nil {
				return records, err
			}
		}
		return records, nil
	}
	sha := "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"

	if _, err := run([]journal.Entry{{Run: "j1", Status: StateRunning, Attempt: 1}}); err == nil {
		t.Fatal("running before accepted must error")
	}
	if _, err := run([]journal.Entry{{Run: "j1", Status: StateAccepted}}); err == nil {
		t.Fatal("accepted without a sha must error")
	}
	recs, err := run([]journal.Entry{
		{Run: "j1", Status: StateAccepted, SHA256: sha},
		{Run: "j1", Status: walRejected},
	})
	if err != nil || len(recs) != 0 {
		t.Fatalf("rejected admission must vanish: %v %v", recs, err)
	}
	_, err = run([]journal.Entry{
		{Run: "j1", Status: StateAccepted, SHA256: sha},
		{Run: "j1", Status: StateRunning, Attempt: 1},
		{Run: "j1", Status: StateComplete, Detail: `{"x":1}`},
		{Run: "j1", Status: StateFlushed},
		{Run: "j1", Status: StateRunning, Attempt: 2},
	})
	if err == nil {
		t.Fatal("an edge after flush must error")
	}
	recs, err = run([]journal.Entry{
		{Run: "j1", Status: StateAccepted, SHA256: sha},
		{Run: "j1", Status: StateRunning, Attempt: 1},
		{Run: "j1", Status: StateSuspended, SHA256: "beef"},
		{Run: "j1", Status: StateAccepted},
		{Run: "j1", Status: StateRunning, Attempt: 2},
		{Run: "j1", Status: StateComplete, Detail: `{"x":1}`},
		{Run: "j1", Status: walDelivered},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := recs["j1"]; r.state != StateComplete || !r.delivered || r.result != `{"x":1}` {
		t.Fatalf("suspend/resume lifecycle replayed wrong: %+v", recs["j1"])
	}

	// Resume rollback: a resume refused by a full backlog re-writes a
	// suspended edge from the accepted state. Replay must take it
	// (regression: it used to refuse, making the log unrecoverable) and
	// keep the original snapshot hash when the rollback states none.
	recs, err = run([]journal.Entry{
		{Run: "j1", Status: StateAccepted, SHA256: sha},
		{Run: "j1", Status: StateRunning, Attempt: 1},
		{Run: "j1", Status: StateSuspended, SHA256: "beef"},
		{Run: "j1", Status: StateAccepted},
		{Run: "j1", Status: StateSuspended, Detail: "resume refused: backlog full"},
	})
	if err != nil {
		t.Fatalf("resume rollback must replay: %v", err)
	}
	if r := recs["j1"]; r.state != StateSuspended || r.snapHash != "beef" {
		t.Fatalf("resume rollback replayed wrong: %+v", recs["j1"])
	}
	// A rollback that does state a hash wins over the original.
	recs, err = run([]journal.Entry{
		{Run: "j1", Status: StateAccepted, SHA256: sha},
		{Run: "j1", Status: StateRunning, Attempt: 1},
		{Run: "j1", Status: StateSuspended, SHA256: "beef"},
		{Run: "j1", Status: StateAccepted},
		{Run: "j1", Status: StateSuspended, SHA256: "cafe", Detail: "resume refused: backlog full"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := recs["j1"]; r.snapHash != "cafe" {
		t.Fatalf("rollback hash not honored: %+v", recs["j1"])
	}
}

func mustCanonical(t *testing.T, sc *chaos.Scenario) string {
	t.Helper()
	c, err := canonicalRepro(sc)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
