package served

import "sync"

// stream is an append-only byte buffer with blocking readers: the
// simulation goroutine appends rendered JSONL rows through the obs
// hooks, and any number of HTTP streamers read from their own offsets.
// close marks the end of the stream (job finished, suspended, or
// canceled); readers drain what is buffered and stop.
type stream struct {
	mu     sync.Mutex
	buf    []byte
	closed bool
	wake   chan struct{} // closed on every append/close, then replaced
}

func newStream() *stream {
	return &stream{wake: make(chan struct{})}
}

// newClosedStream returns a stream already at end-of-stream holding
// data. Recovered terminal jobs use it: their results survive a restart
// but their live stream bytes do not, so readers see a cleanly closed
// (usually empty) stream instead of blocking forever.
func newClosedStream(data []byte) *stream {
	s := &stream{buf: data, closed: true, wake: make(chan struct{})}
	close(s.wake)
	return s
}

// append adds bytes and wakes every waiting reader.
func (s *stream) append(p []byte) {
	if len(p) == 0 {
		return
	}
	s.mu.Lock()
	if !s.closed {
		s.buf = append(s.buf, p...)
		close(s.wake)
		s.wake = make(chan struct{})
	}
	s.mu.Unlock()
}

// close ends the stream. Idempotent.
func (s *stream) close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.wake)
	}
	s.mu.Unlock()
}

// next returns the bytes past off, blocking until more arrive, the
// stream closes, or cancel fires. A nil chunk with ok=false means the
// stream has ended (or the caller cancelled) and off is fully drained.
func (s *stream) next(off int, cancel <-chan struct{}) (chunk []byte, ok bool) {
	s.mu.Lock()
	for {
		if off < len(s.buf) {
			chunk = append([]byte(nil), s.buf[off:]...)
			s.mu.Unlock()
			return chunk, true
		}
		if s.closed {
			s.mu.Unlock()
			return nil, false
		}
		w := s.wake
		s.mu.Unlock()
		select {
		case <-w:
		case <-cancel:
			return nil, false
		}
		s.mu.Lock()
	}
}

// bytes returns a copy of everything buffered so far.
func (s *stream) bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf...)
}
