package served

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// fakeClock is an injectable, manually-advanced clock for quota tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestCeilSecondsBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0},
		{time.Nanosecond, 1}, // sub-second never rounds to "retry now"
		{999 * time.Millisecond, 1},
		{time.Second, 1}, // exact seconds stay exact
		{time.Second + time.Nanosecond, 2},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{90 * time.Second, 90},
	}
	for _, c := range cases {
		if got := ceilSeconds(c.d); got != c.want {
			t.Errorf("ceilSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestQuotaTokenBucket(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	q := newQuotas(2, 2, 0, time.Second) // 2/s, burst 2
	q.now = clk.now

	for i := 0; i < 2; i++ {
		if err := q.admit("a"); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	err := q.admit("a")
	wait, ok := IsQuota(err)
	if !ok {
		t.Fatalf("over-burst admit: %v, want quota error", err)
	}
	// Deficit is one full token at 2/s: 500ms.
	if wait != 500*time.Millisecond {
		t.Fatalf("wait = %v, want 500ms", wait)
	}
	// Another client is unaffected.
	if err := q.admit("b"); err != nil {
		t.Fatalf("client b: %v", err)
	}
	// Refill restores admission.
	clk.advance(time.Second)
	if err := q.admit("a"); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

func TestQuotaInflightCapAndRelease(t *testing.T) {
	q := newQuotas(0, 0, 2, 3*time.Second) // inflight cap only
	for i := 0; i < 2; i++ {
		if err := q.admit("a"); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	err := q.admit("a")
	if wait, ok := IsQuota(err); !ok || wait != 3*time.Second {
		t.Fatalf("over-cap admit: %v (wait %v), want quota error with RetryAfter", err, wait)
	}
	q.release("a")
	if err := q.admit("a"); err != nil {
		t.Fatalf("after release: %v", err)
	}
	// reacquire counts inflight without charging tokens — recovery must
	// never double-bill a client into starvation.
	q.release("a")
	q.release("a")
	q.reacquire("a")
	q.reacquire("a")
	if err := q.admit("a"); err == nil {
		t.Fatal("reacquire must count against the inflight cap")
	}
}

// refund undoes the whole admission — token and inflight slot — so a
// submission the server itself refused costs the client nothing.
func TestQuotaRefund(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	q := newQuotas(1, 2, 2, time.Second) // 1/s, burst 2, inflight cap 2
	q.now = clk.now

	for i := 0; i < 2; i++ {
		if err := q.admit("a"); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	if err := q.admit("a"); err == nil {
		t.Fatal("bucket and cap exhausted, admit must refuse")
	}
	// Refund returns the token and the slot: admission works again
	// without any clock advance.
	q.refund("a")
	if err := q.admit("a"); err != nil {
		t.Fatalf("admit after refund: %v", err)
	}
	// release, by contrast, returns only the slot — the next admission
	// still fails on the dry bucket.
	q.release("a")
	if err := q.admit("a"); err == nil {
		t.Fatal("release must not restore the rate token")
	}
	// refund never overfills the bucket past its burst.
	q.refund("a")
	q.refund("a")
	q.refund("a")
	if q.clients["a"].tokens > q.burst {
		t.Fatalf("refund overfilled the bucket: %v > %v", q.clients["a"].tokens, q.burst)
	}
	// refund on an unknown client is a no-op, as is a nil receiver.
	q.refund("never-admitted")
	var nilQ *quotas
	nilQ.refund("a")
}

func TestQuotaNilIsNoOp(t *testing.T) {
	var q *quotas
	if err := q.admit("a"); err != nil {
		t.Fatal(err)
	}
	q.release("a")
	q.reacquire("a")
	if q := newQuotas(0, 0, 0, time.Second); q != nil {
		t.Fatal("no limits configured must yield a nil quotas")
	}
}

func TestQuotaPruneBoundsClients(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	q := newQuotas(1000, 1, 0, time.Second)
	q.now = clk.now
	for i := 0; i < maxQuotaClients; i++ {
		if err := q.admit(string(rune('a')) + time.Duration(i).String()); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	clk.advance(time.Hour) // every bucket refills, nothing inflight...
	q.mu.Lock()
	for _, c := range q.clients {
		c.inflight = 0 // ...once the jobs finish
	}
	q.mu.Unlock()
	if err := q.admit("fresh"); err != nil {
		t.Fatalf("admit past the map bound: %v", err)
	}
	q.mu.Lock()
	n := len(q.clients)
	q.mu.Unlock()
	if n > maxQuotaClients {
		t.Fatalf("client map grew unbounded: %d", n)
	}
}

// HTTP-level: a second same-client submission over the inflight cap is
// 429 with reason "quota" and a Retry-After header, while a different
// client sails through — and the refusal is visible in the stats.
func TestQuotaHTTPRefusalNamesReason(t *testing.T) {
	s := New(&Options{MaxClientInflight: 1, RetryAfter: 2 * time.Second})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	long := testScenario(t, 7, 100000) // occupies alice's one slot
	body := []byte(mustCanonical(t, long))
	id, code := postKeyed(t, ts, body, "alice", "")
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	waitState(t, ts, id, StateRunning)

	req, _ := http.NewRequest("POST", ts.URL+"/jobs", reproBody(t, testScenario(t, 3, 60)))
	req.Header.Set("X-Client", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]string
	decodeBody(t, resp, &out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d", resp.StatusCode)
	}
	if out["reason"] != "quota" {
		t.Fatalf("reason = %q, want quota", out["reason"])
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q, want 2", resp.Header.Get("Retry-After"))
	}

	if _, code := postKeyed(t, ts, []byte(mustCanonical(t, testScenario(t, 3, 60))), "bob", ""); code != http.StatusAccepted {
		t.Fatalf("other client: %d", code)
	}
	if got := s.Stats(); got.QuotaRejected != 1 {
		t.Fatalf("quota_rejected = %d, want 1", got.QuotaRejected)
	}
	postVerb(t, ts, id, "cancel") // release alice's slot
	waitState(t, ts, id, StateCanceled)
	if _, code := postKeyed(t, ts, []byte(mustCanonical(t, testScenario(t, 3, 60))), "alice", ""); code != http.StatusAccepted {
		t.Fatalf("alice after terminal: %d", code)
	}
}
