package served

import (
	"fmt"
	"sync"
	"time"
)

// quotaErr is the admission refusal for a client that exceeded its own
// allowance (as opposed to errBusy, the whole-server capacity refusal).
// The HTTP layer maps it to 429 with reason "quota" and a Retry-After
// computed from the bucket deficit.
type quotaErr struct {
	wait   time.Duration
	reason string
}

// Error implements the error interface, naming the exceeded limit and
// the suggested wait.
func (e *quotaErr) Error() string {
	return fmt.Sprintf("served: client quota exceeded (%s), retry in %s", e.reason, e.wait)
}

// IsQuota reports whether err is a per-client quota refusal, and if so
// how long the client should wait before retrying.
func IsQuota(err error) (time.Duration, bool) {
	if q, ok := err.(*quotaErr); ok {
		return q.wait, true
	}
	return 0, false
}

// quotas enforces per-client admission fairness: a token bucket
// (QuotaRate tokens/second, QuotaBurst capacity) plus a cap on jobs a
// single client may hold in the accepted/running states. Both limits
// are opt-in; a nil *quotas is a strict no-op, so servers without the
// options pay nothing. The clock is injectable for tests.
type quotas struct {
	rate     float64 // tokens per second; <= 0 disables the bucket
	burst    float64
	inflight int // max accepted+running jobs per client; <= 0 disables
	retry    time.Duration
	now      func() time.Time

	mu      sync.Mutex
	clients map[string]*clientQuota
}

// clientQuota is one client's bucket and inflight count.
type clientQuota struct {
	tokens   float64
	last     time.Time
	inflight int
}

// maxQuotaClients bounds the client map: when it grows past this, idle
// clients (full bucket, nothing inflight) are pruned. A client that is
// pruned and returns simply starts from a full bucket again.
const maxQuotaClients = 4096

// newQuotas returns nil when neither limit is configured.
func newQuotas(rate float64, burst, inflight int, retry time.Duration) *quotas {
	if rate <= 0 && inflight <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &quotas{
		rate:     rate,
		burst:    b,
		inflight: inflight,
		retry:    retry,
		now:      time.Now,
		clients:  map[string]*clientQuota{},
	}
}

// admit charges one submission to the client, or returns the refusal
// the HTTP layer should surface. A nil receiver admits everything.
func (q *quotas) admit(client string) error {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	c := q.clients[client]
	if c == nil {
		if len(q.clients) >= maxQuotaClients {
			q.pruneLocked()
		}
		c = &clientQuota{tokens: q.burst, last: q.now()}
		q.clients[client] = c
	}
	q.refillLocked(c)
	if q.inflight > 0 && c.inflight >= q.inflight {
		return &quotaErr{wait: q.retry, reason: fmt.Sprintf("inflight cap %d reached", q.inflight)}
	}
	if q.rate > 0 {
		if c.tokens < 1 {
			wait := time.Duration((1 - c.tokens) / q.rate * float64(time.Second))
			return &quotaErr{wait: wait, reason: fmt.Sprintf("rate %g/s exhausted", q.rate)}
		}
		c.tokens--
	}
	c.inflight++
	return nil
}

// release returns one inflight slot when a job leaves the
// accepted/running states (terminal, suspended, or a resume/retry
// re-admission rolled back — those never charged a token, so there
// is nothing to refund).
func (q *quotas) release(client string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	if c := q.clients[client]; c != nil && c.inflight > 0 {
		c.inflight--
	}
	q.mu.Unlock()
}

// refund undoes a full admission the server itself then refused
// (capacity, artifact, or log failure): the inflight slot is returned
// and the rate token restored, so a client is never billed for a
// submission that did not enter the table.
func (q *quotas) refund(client string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	if c := q.clients[client]; c != nil {
		if c.inflight > 0 {
			c.inflight--
		}
		if q.rate > 0 {
			c.tokens++
			if c.tokens > q.burst {
				c.tokens = q.burst
			}
		}
	}
	q.mu.Unlock()
}

// reacquire re-counts a recovered job against its client without
// charging a token: the submission already paid at first admission, and
// replay must not let a restart double-bill clients into starvation.
func (q *quotas) reacquire(client string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	c := q.clients[client]
	if c == nil {
		c = &clientQuota{tokens: q.burst, last: q.now()}
		q.clients[client] = c
	}
	c.inflight++
	q.mu.Unlock()
}

// refillLocked tops the bucket up for the time elapsed since last use.
func (q *quotas) refillLocked(c *clientQuota) {
	if q.rate <= 0 {
		return
	}
	now := q.now()
	if dt := now.Sub(c.last).Seconds(); dt > 0 {
		c.tokens += dt * q.rate
		if c.tokens > q.burst {
			c.tokens = q.burst
		}
	}
	c.last = now
}

// pruneLocked drops clients that hold nothing: full (or disabled)
// bucket and zero inflight.
func (q *quotas) pruneLocked() {
	for id, c := range q.clients {
		q.refillLocked(c)
		if c.inflight == 0 && (q.rate <= 0 || c.tokens >= q.burst) {
			delete(q.clients, id)
		}
	}
}
