// Package served turns the simulator into a long-running service: it
// accepts `# hibchaos repro v1` scenario submissions over HTTP/JSON,
// runs them as jobs on a bounded worker queue, and streams each job's
// observability output live.
//
// The package keeps the repository's two core contracts intact on the
// service path:
//
//   - Determinism. A job's result is the canonical fingerprint of its
//     simulation, rendered by RenderResult; it is byte-identical to what
//     a direct sim.Run of the same scenario produces (DirectRun is the
//     reference implementation, and the load harness asserts equality
//     job by job). The streamed metrics and trace bytes reuse the obs
//     package's incremental renderers, so they are byte-identical to the
//     file exporters' output.
//
//   - Bounded resources. The job table holds at most Options.MaxJobs
//     records; completed jobs are flushed (evicted to a tombstone) to
//     make room, and when every slot is still live the server refuses
//     the submission with 429 + Retry-After instead of queueing
//     unboundedly. At most Options.Workers simulations run at once.
//
// Job lifecycle: accepted → running → complete | failed | canceled,
// with running → suspended → accepted → running on suspend/resume, and
// any terminal state → flushed when the record is evicted. Suspension
// cancels the run's context and keeps its latest periodic snapshot; the
// resumed run restores from that snapshot, so its stream is an exact
// byte tail of the uninterrupted run's (the snapshot/restore contract).
package served

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hibernator/internal/chaos"
	"hibernator/internal/invariant"
	"hibernator/internal/runner"
	"hibernator/internal/sim"
	"hibernator/internal/snapshot"
)

// Job states. Terminal states (complete, failed, canceled) may be
// flushed; suspended jobs resume through accepted like a fresh admit.
const (
	StateAccepted  = "accepted"
	StateRunning   = "running"
	StateSuspended = "suspended"
	StateComplete  = "complete"
	StateFailed    = "failed"
	StateCanceled  = "canceled"
	StateFlushed   = "flushed"
)

// Options configures a Server. The zero value is usable: every field
// has a sensible default.
type Options struct {
	// MaxJobs bounds the in-memory job table (default 256). Submissions
	// that cannot claim a slot — even after flushing the oldest terminal
	// job — are refused with 429.
	MaxJobs int
	// Workers is the number of simulations running concurrently
	// (default runtime.GOMAXPROCS(0)).
	Workers int
	// Backlog bounds accepted-but-not-yet-running jobs (default
	// MaxJobs). A full backlog refuses submissions with 429.
	Backlog int
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// Watchdog, when non-nil, is the per-job watchdog template: every
	// run executes under a copy of it, so one wedged scenario cannot
	// occupy a worker forever.
	Watchdog *sim.Watchdog
	// Attempts is how many times a failing run is retried in place
	// (default 1, i.e. no retry) with Backoff between attempts — the
	// runner.Retry schedule, meant for watchdog-aborted runs on loaded
	// machines.
	Attempts int
	// Backoff is the base retry backoff (default 100ms; doubling,
	// clamped at runner.MaxBackoff).
	Backoff time.Duration
	// Check arms the invariant checker on every run; violations fail
	// the job.
	Check bool
	// SnapshotFrac sets the periodic-snapshot cadence backing suspend:
	// one capture every Duration/SnapshotFrac simulated seconds
	// (default 8). Captures are pure reads — they never change a job's
	// result or stream bytes.
	SnapshotFrac int
}

func (o *Options) withDefaults() Options {
	v := Options{}
	if o != nil {
		v = *o
	}
	if v.MaxJobs <= 0 {
		v.MaxJobs = 256
	}
	if v.Workers <= 0 {
		v.Workers = runtime.GOMAXPROCS(0)
	}
	if v.Backlog <= 0 {
		v.Backlog = v.MaxJobs
	}
	if v.RetryAfter <= 0 {
		v.RetryAfter = time.Second
	}
	if v.Attempts < 1 {
		v.Attempts = 1
	}
	if v.Backoff <= 0 {
		v.Backoff = 100 * time.Millisecond
	}
	if v.SnapshotFrac <= 0 {
		v.SnapshotFrac = 8
	}
	return v
}

// Stats counts the server's admission decisions — the load harness
// checks that every submission was either accepted or refused with an
// explicit 429, never silently dropped.
type Stats struct {
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
	Flushed  uint64 `json:"flushed"`
}

// Server owns the job table and the worker queue. Create with New,
// serve its Handler, and Close it to drain.
type Server struct {
	opts  Options
	queue *runner.Queue

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // admission order, for flush-oldest
	flushed map[string]bool
	flushQ  []string // tombstone eviction order
	seq     int
	closed  bool
	stats   Stats
}

// New starts a server with the given options (nil means all defaults).
func New(opts *Options) *Server {
	o := opts.withDefaults()
	return &Server{
		opts:    o,
		queue:   runner.NewQueue(o.Workers, o.Backlog),
		jobs:    make(map[string]*job),
		flushed: make(map[string]bool),
	}
}

// Close stops admissions, cancels every running job, and drains the
// queue. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var cancels []*job
	for _, j := range s.jobs {
		cancels = append(cancels, j)
	}
	s.mu.Unlock()
	for _, j := range cancels {
		j.requestCancel()
	}
	s.queue.Close()
}

// Stats returns a copy of the admission counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// job is one submission's record. The server's mutex guards the table;
// the job's own mutex guards its mutable fields.
type job struct {
	id       string
	scenario *chaos.Scenario

	mu         sync.Mutex
	state      string
	cancel     context.CancelFunc // non-nil while running
	runDone    chan struct{}      // closed when the current execution exits
	suspendReq bool
	cancelReq  bool
	snap       *snapshot.State // latest periodic capture of the current run
	resumeFrom *snapshot.State // armed for the next execution
	metrics    *stream
	trace      *stream
	result     []byte // canonical result document (complete only)
	errMsg     string // failure detail (failed only)
	delivered  bool   // a terminal status was served to some client

	progress atomic.Uint64 // events fired, published by the run loops
}

// errBusy is the admission-refused sentinel; the HTTP layer maps it to
// 429 + Retry-After.
var errBusy = errors.New("served: server at capacity")

// errClosed refuses work after Close.
var errClosed = errors.New("served: server closed")

// Submit admits a scenario and returns its job ID. The scenario must
// already be validated (Parse/Validate); Submit re-validates cheaply via
// BuildRun at execution time. Returns errBusy (as ErrBusy via errors.Is)
// when the table or backlog is full.
func (s *Server) Submit(sc *chaos.Scenario) (string, error) {
	if err := sc.Validate(); err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", errClosed
	}
	if len(s.jobs) >= s.opts.MaxJobs && !s.flushOldestLocked() {
		s.stats.Rejected++
		s.mu.Unlock()
		return "", errBusy
	}
	s.seq++
	j := &job{
		id:       fmt.Sprintf("j%d", s.seq),
		scenario: sc,
		state:    StateAccepted,
		metrics:  newStream(),
		trace:    newStream(),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if !s.queue.TrySubmit(func() { s.runJob(j) }) {
		// Backlog full: roll the admission back so the table slot is not
		// leaked to a job that will never run.
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.seq--
		s.stats.Rejected++
		s.mu.Unlock()
		return "", errBusy
	}
	s.stats.Accepted++
	s.mu.Unlock()
	return j.id, nil
}

// IsBusy reports whether err is the admission-refused error.
func IsBusy(err error) bool { return errors.Is(err, errBusy) }

// flushOldestLocked evicts the oldest terminal job to a tombstone,
// reporting whether a slot was freed. Jobs whose terminal status has
// already been delivered to a client are preferred — flushing an unread
// result races the submitter's next poll — and suspended jobs are never
// flushed: they hold resumable state the client asked to keep.
func (s *Server) flushOldestLocked() bool {
	for _, needDelivered := range []bool{true, false} {
		for i, id := range s.order {
			j, ok := s.jobs[id]
			if !ok {
				continue
			}
			j.mu.Lock()
			terminal := j.state == StateComplete || j.state == StateFailed || j.state == StateCanceled
			flush := terminal && (j.delivered || !needDelivered)
			if flush {
				j.state = StateFlushed
			}
			j.mu.Unlock()
			if !flush {
				continue
			}
			delete(s.jobs, id)
			s.order = append(s.order[:i], s.order[i+1:]...)
			s.flushed[id] = true
			s.flushQ = append(s.flushQ, id)
			if len(s.flushQ) > s.opts.MaxJobs {
				delete(s.flushed, s.flushQ[0])
				s.flushQ = s.flushQ[1:]
			}
			s.stats.Flushed++
			return true
		}
	}
	return false
}

// lookup finds a live job. The second result distinguishes flushed
// (known-but-evicted) IDs from never-seen ones.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j, false
	}
	return nil, s.flushed[id]
}

// requestCancel asks the job to stop: a queued job is marked canceled in
// place (the queue entry becomes a no-op); a running one has its context
// cancelled. Terminal states are left alone.
func (j *job) requestCancel() {
	j.mu.Lock()
	switch j.state {
	case StateAccepted, StateSuspended:
		j.state = StateCanceled
		j.cancelReq = true
		j.metrics.close()
		j.trace.close()
		j.mu.Unlock()
		return
	case StateRunning:
		j.cancelReq = true
		cancel := j.cancel
		j.mu.Unlock()
		cancel()
		return
	}
	j.mu.Unlock()
}

// requestSuspend asks a running job to stop while keeping its latest
// snapshot for resume. It returns the channel to wait on (nil when the
// job was not running, with the state it was in instead).
func (j *job) requestSuspend() (<-chan struct{}, string) {
	j.mu.Lock()
	if j.state != StateRunning {
		st := j.state
		j.mu.Unlock()
		return nil, st
	}
	j.suspendReq = true
	cancel, done := j.cancel, j.runDone
	j.mu.Unlock()
	cancel()
	return done, StateRunning
}

// resume re-admits a suspended job: fresh streams (the resumed stream is
// a tail, not a continuation of the old buffer), restore state armed,
// back through the queue. Caller must map errBusy to 429.
func (s *Server) resume(j *job) error {
	j.mu.Lock()
	if j.state != StateSuspended {
		st := j.state
		j.mu.Unlock()
		return fmt.Errorf("served: job is %s, not suspended", st)
	}
	j.state = StateAccepted
	j.resumeFrom = j.snap
	j.suspendReq = false
	j.metrics = newStream()
	j.trace = newStream()
	j.mu.Unlock()
	if !s.queue.TrySubmit(func() { s.runJob(j) }) {
		j.mu.Lock()
		j.state = StateSuspended
		j.mu.Unlock()
		return errBusy
	}
	return nil
}

// retryJob re-admits a failed or canceled job from scratch.
func (s *Server) retryJob(j *job) error {
	j.mu.Lock()
	if j.state != StateFailed && j.state != StateCanceled {
		st := j.state
		j.mu.Unlock()
		return fmt.Errorf("served: job is %s, not failed or canceled", st)
	}
	j.state = StateAccepted
	j.resumeFrom = nil
	j.snap = nil
	j.suspendReq, j.cancelReq = false, false
	j.errMsg = ""
	j.result = nil
	j.metrics = newStream()
	j.trace = newStream()
	j.progress.Store(0)
	j.mu.Unlock()
	if !s.queue.TrySubmit(func() { s.runJob(j) }) {
		j.mu.Lock()
		j.state = StateFailed
		j.errMsg = "retry refused: backlog full"
		j.mu.Unlock()
		return errBusy
	}
	return nil
}

// parseSubmission decodes a `# hibchaos repro v1` request body.
func parseSubmission(body []byte) (*chaos.Scenario, error) {
	return chaos.ParseRepro(bytes.NewReader(body))
}

// canonicalRepro renders the scenario back in its canonical repro form —
// the dry-run echo clients can diff against what they sent.
func canonicalRepro(sc *chaos.Scenario) (string, error) {
	var b bytes.Buffer
	if err := chaos.WriteRepro(&b, sc); err != nil {
		return "", err
	}
	return b.String(), nil
}

// waitIdle blocks until the job has no execution in flight.
func (j *job) waitIdle() {
	j.mu.Lock()
	done, running := j.runDone, j.state == StateRunning
	j.mu.Unlock()
	if running && done != nil {
		<-done
	}
}

// violationSummary renders up to three invariant violations on one line.
func violationSummary(chk *invariant.Checker) string {
	vs := chk.Violations()
	if len(vs) > 3 {
		vs = vs[:3]
	}
	parts := make([]string, 0, len(vs)+1)
	for _, v := range vs {
		parts = append(parts, v.String())
	}
	if total := chk.Count(); total > len(vs) {
		parts = append(parts, fmt.Sprintf("(+%d more)", total-len(vs)))
	}
	return strings.Join(parts, " | ")
}
