// Package served turns the simulator into a long-running service: it
// accepts `# hibchaos repro v1` scenario submissions over HTTP/JSON,
// runs them as jobs on a bounded worker queue, and streams each job's
// observability output live.
//
// The package keeps the repository's two core contracts intact on the
// service path:
//
//   - Determinism. A job's result is the canonical fingerprint of its
//     simulation, rendered by RenderResult; it is byte-identical to what
//     a direct sim.Run of the same scenario produces (DirectRun is the
//     reference implementation, and the load harness asserts equality
//     job by job). The streamed metrics and trace bytes reuse the obs
//     package's incremental renderers, so they are byte-identical to the
//     file exporters' output.
//
//   - Bounded resources. The job table holds at most Options.MaxJobs
//     records; completed jobs are flushed (evicted to a tombstone) to
//     make room, and when every slot is still live the server refuses
//     the submission with 429 + Retry-After instead of queueing
//     unboundedly. At most Options.Workers simulations run at once.
//
// Job lifecycle: accepted → running → complete | failed | canceled,
// with running → suspended → accepted → running on suspend/resume, and
// any terminal state → flushed when the record is evicted. Suspension
// cancels the run's context and keeps its latest periodic snapshot; the
// resumed run restores from that snapshot, so its stream is an exact
// byte tail of the uninterrupted run's (the snapshot/restore contract).
//
// # Durability
//
// With Options.StateDir set (use Open, not New), the server is
// crash-recoverable: every lifecycle edge is appended to a fsynced
// write-ahead log, scenario bytes live as content-addressed artifacts,
// and periodic run snapshots are persisted atomically (see wal.go for
// the layout and the ordering argument). Reopening the same state
// directory replays the log — honoring torn-tail truncation and the
// meta guard against changed flags — rebuilds the job table and
// tombstone set, re-verifies artifact hashes, and re-enqueues every job
// that was accepted or running at the crash: with a persisted snapshot
// it resumes from there (its stream an exact byte tail), otherwise it
// restarts from scratch. Either way the recovered result is
// byte-identical to a direct run, so a kill -9 can delay a job but
// never lose or corrupt one. While the replay backlog drains the
// server sheds new submissions (503 + Retry-After; Ready reports the
// transition), and clients that submit with an idempotency key can
// blindly re-POST across a crash without ever duplicating a job.
// Without StateDir nothing is written anywhere and behavior is
// identical to the pre-durability server.
//
// # Fairness
//
// Options.QuotaRate/QuotaBurst arm a per-client token bucket and
// Options.MaxClientInflight caps one client's accepted+running jobs;
// both refuse with 429 and a Retry-After derived from the bucket
// deficit, with the response body naming quota-vs-capacity as the
// reason, so one greedy client can no longer starve the table.
package served

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hibernator/internal/chaos"
	"hibernator/internal/invariant"
	"hibernator/internal/runner"
	"hibernator/internal/sim"
	"hibernator/internal/snapshot"
)

// Job states. Terminal states (complete, failed, canceled) may be
// flushed; suspended jobs resume through accepted like a fresh admit.
const (
	StateAccepted  = "accepted"
	StateRunning   = "running"
	StateSuspended = "suspended"
	StateComplete  = "complete"
	StateFailed    = "failed"
	StateCanceled  = "canceled"
	StateFlushed   = "flushed"
)

// Options configures a Server. The zero value is usable: every field
// has a sensible default.
type Options struct {
	// MaxJobs bounds the in-memory job table (default 256). Submissions
	// that cannot claim a slot — even after flushing the oldest terminal
	// job — are refused with 429.
	MaxJobs int
	// Workers is the number of simulations running concurrently
	// (default runtime.GOMAXPROCS(0)).
	Workers int
	// Backlog bounds accepted-but-not-yet-running jobs (default
	// MaxJobs). A full backlog refuses submissions with 429.
	Backlog int
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// Watchdog, when non-nil, is the per-job watchdog template: every
	// run executes under a copy of it, so one wedged scenario cannot
	// occupy a worker forever.
	Watchdog *sim.Watchdog
	// Attempts is how many times a failing run is retried in place
	// (default 1, i.e. no retry) with Backoff between attempts — the
	// runner.Retry schedule, meant for watchdog-aborted runs on loaded
	// machines.
	Attempts int
	// Backoff is the base retry backoff (default 100ms; doubling,
	// clamped at runner.MaxBackoff).
	Backoff time.Duration
	// Check arms the invariant checker on every run; violations fail
	// the job.
	Check bool
	// SnapshotFrac sets the periodic-snapshot cadence backing suspend:
	// one capture every Duration/SnapshotFrac simulated seconds
	// (default 8). Captures are pure reads — they never change a job's
	// result or stream bytes.
	SnapshotFrac int
	// StateDir, when non-empty, makes the server durable: the job
	// write-ahead log, scenario artifacts, and periodic snapshots live
	// under it, and Open replays them on restart. Empty (the default)
	// keeps everything in memory, exactly as before.
	StateDir string
	// QuotaRate, when > 0, arms a per-client token bucket admitting
	// this many submissions per second per client (burst QuotaBurst).
	QuotaRate float64
	// QuotaBurst is the bucket capacity for QuotaRate (default 1).
	QuotaBurst int
	// MaxClientInflight, when > 0, caps one client's jobs in the
	// accepted/running states.
	MaxClientInflight int
}

func (o *Options) withDefaults() Options {
	v := Options{}
	if o != nil {
		v = *o
	}
	if v.MaxJobs <= 0 {
		v.MaxJobs = 256
	}
	if v.Workers <= 0 {
		v.Workers = runtime.GOMAXPROCS(0)
	}
	if v.Backlog <= 0 {
		v.Backlog = v.MaxJobs
	}
	if v.RetryAfter <= 0 {
		v.RetryAfter = time.Second
	}
	if v.Attempts < 1 {
		v.Attempts = 1
	}
	if v.Backoff <= 0 {
		v.Backoff = 100 * time.Millisecond
	}
	if v.SnapshotFrac <= 0 {
		v.SnapshotFrac = 8
	}
	return v
}

// Stats counts the server's admission and recovery decisions — the load
// harness checks that every submission was either accepted or refused
// with an explicit status, never silently dropped, and the recovery
// counters say what a restart did with the log it found.
type Stats struct {
	Accepted uint64 `json:"accepted"`
	// Rejected counts whole-server capacity refusals (429, reason
	// "capacity").
	Rejected uint64 `json:"rejected"`
	// QuotaRejected counts per-client refusals (429, reason "quota").
	QuotaRejected uint64 `json:"quota_rejected"`
	// Shed counts submissions refused while the recovery backlog was
	// draining (503, reason "recovering").
	Shed uint64 `json:"shed"`
	// Deduped counts submissions answered with an existing job because
	// the client's idempotency key was already known.
	Deduped uint64 `json:"deduped"`
	Flushed uint64 `json:"flushed"`
	// Replayed counts jobs rebuilt from the write-ahead log at Open.
	Replayed uint64 `json:"replayed"`
	// Resumed counts recovered jobs re-enqueued with a verified
	// snapshot to resume from; Restarted counts those re-run from
	// scratch.
	Resumed   uint64 `json:"resumed"`
	Restarted uint64 `json:"restarted"`
}

// Server owns the job table and the worker queue. Create with New (or
// Open for a durable server), serve its Handler, and Close it to drain.
type Server struct {
	opts  Options
	queue *runner.Queue
	wal   *wal    // nil without StateDir
	quota *quotas // nil without quota options

	pending atomic.Int64  // recovered jobs not yet picked up by a worker
	stopc   chan struct{} // closed by Close; stops the recovery feeder

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string          // admission order, for flush-oldest
	flushed map[string]string // tombstoned id → its client key ("" if none)
	flushQ  []string          // tombstone eviction order
	keys    map[string]string // client idempotency key → job id
	seq     int
	closed  bool
	stats   Stats
}

// New starts an in-memory server with the given options (nil means all
// defaults). It panics when Options.StateDir is set and recovery fails;
// durable servers should use Open, which returns the error instead.
func New(opts *Options) *Server {
	s, err := Open(opts)
	if err != nil {
		panic("served: " + err.Error())
	}
	return s
}

// Open starts a server, recovering the job table from
// Options.StateDir's write-ahead log when one is configured. An error
// means the log or its artifacts are unusable (changed flags, semantic
// corruption past the torn tail, unreadable directory) — the server
// refuses to guess rather than half-recover.
func Open(opts *Options) (*Server, error) {
	o := opts.withDefaults()
	s := &Server{
		opts:    o,
		queue:   runner.NewQueue(o.Workers, o.Backlog),
		quota:   newQuotas(o.QuotaRate, o.QuotaBurst, o.MaxClientInflight, o.RetryAfter),
		stopc:   make(chan struct{}),
		jobs:    make(map[string]*job),
		flushed: make(map[string]string),
		keys:    make(map[string]string),
	}
	if o.StateDir == "" {
		return s, nil
	}
	w, records, maxSeq, err := openWALDir(o)
	if err != nil {
		s.queue.Close()
		return nil, err
	}
	s.wal = w
	s.seq = maxSeq
	pending := s.recover(records)
	s.pending.Store(int64(len(pending)))
	if len(pending) > 0 {
		go s.feedRecovered(pending)
	}
	return s, nil
}

// openWALDir opens the WAL and also extracts the highest job sequence
// number ever logged, so restarted servers never reissue an ID.
func openWALDir(o Options) (*wal, []*walRecord, int, error) {
	maxSeq := 0
	w, records, err := openWAL(o.StateDir, o, func(id string) {
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "j")); err == nil && n > maxSeq {
			maxSeq = n
		}
	})
	return w, records, maxSeq, err
}

// recover rebuilds the job table from replayed records and returns the
// jobs to re-enqueue, in their original admission order.
func (s *Server) recover(records []*walRecord) []*job {
	var pending []*job
	for _, r := range records {
		ck := clientKey(r.client, r.key)
		if r.state == StateFlushed {
			s.flushed[r.id] = ck
			s.flushQ = append(s.flushQ, r.id)
			if ck != "" {
				s.keys[ck] = r.id
			}
			continue
		}
		j := &job{
			srv:      s,
			id:       r.id,
			client:   r.client,
			key:      r.key,
			state:    r.state,
			walTries: r.attempt,
			metrics:  newClosedStream(nil),
			trace:    newClosedStream(nil),
		}
		s.stats.Replayed++
		switch {
		case terminalState(r.state):
			// Stream bytes are not persisted; the result and error are.
			// The scenario reloads best-effort — a terminal job with a
			// lost artifact still serves its result, just no shape string.
			if r.result != "" {
				j.result = append([]byte(r.result), '\n')
			}
			j.errMsg = r.errMsg
			j.delivered = r.delivered
			j.scenario, _ = s.rebuildScenario(r)
		case r.state == StateSuspended:
			sc, err := s.rebuildScenario(r)
			if err != nil {
				j.state = StateFailed
				j.errMsg = "recovery: " + err.Error()
				s.wal.edge(j.id, StateFailed, r.attempt, "", j.errMsg)
				break
			}
			j.scenario = sc
			snap := s.wal.loadSnap(r.id)
			if r.snapHash != "" && (snap == nil || snap.Hash() != r.snapHash) {
				snap = nil // stale or corrupt capture: resume restarts from t=0
			}
			j.snap = snap
		default: // accepted or running at crash time: re-enqueue
			sc, err := s.rebuildScenario(r)
			if err != nil {
				j.state = StateFailed
				j.errMsg = "recovery: " + err.Error()
				s.wal.edge(j.id, StateFailed, r.attempt, "", j.errMsg)
				break
			}
			j.scenario = sc
			j.state = StateAccepted
			j.recovered = true
			j.metrics, j.trace = newStream(), newStream()
			if r.state == StateRunning {
				if j.resumeFrom = s.wal.loadSnap(r.id); j.resumeFrom != nil {
					s.stats.Resumed++
				} else {
					s.stats.Restarted++
				}
			} else {
				s.stats.Restarted++
			}
			s.quota.reacquire(r.client)
			pending = append(pending, j)
		}
		s.jobs[r.id] = j
		s.order = append(s.order, r.id)
		if ck != "" {
			s.keys[ck] = r.id
		}
	}
	// The tombstone set stays bounded across restarts too.
	for len(s.flushQ) > s.opts.MaxJobs {
		s.dropTombstoneLocked()
	}
	return pending
}

// rebuildScenario loads and re-verifies a recovered job's artifact.
func (s *Server) rebuildScenario(r *walRecord) (*chaos.Scenario, error) {
	body, err := s.wal.loadArtifact(r.sha)
	if err != nil {
		return nil, err
	}
	return parseSubmission(body)
}

// feedRecovered re-enqueues recovered jobs, retrying while the backlog
// is full: unlike a client submission, a recovered job must never be
// dropped — that is the whole point of the log.
func (s *Server) feedRecovered(pending []*job) {
	for _, j := range pending {
		for !s.queue.TrySubmit(func() { s.runJob(j) }) {
			select {
			case <-s.stopc:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
}

// Ready reports whether the server is past recovery: true once every
// replayed pending job has been picked up by a worker (or the server
// was never durable). While false, submissions are shed with 503.
func (s *Server) Ready() bool { return s.pending.Load() == 0 }

// recoveredDoneLocked consumes a job's recovered mark (caller holds
// j.mu) the first time it leaves the replay backlog.
func (s *Server) recoveredDoneLocked(j *job) {
	if j.recovered {
		j.recovered = false
		s.pending.Add(-1)
	}
}

// Close stops admissions, cancels every running job, drains the queue,
// and closes the write-ahead log. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var cancels []*job
	for _, j := range s.jobs {
		cancels = append(cancels, j)
	}
	s.mu.Unlock()
	close(s.stopc)
	for _, j := range cancels {
		j.requestCancel()
	}
	s.queue.Close()
	s.wal.close()
}

// abort is the crash hook tests use: freeze every disk write at this
// instant, then tear the process-local state down. What the state
// directory holds afterward is exactly what a kill -9 would have left.
func (s *Server) abort() {
	s.wal.freeze()
	s.Close()
}

// Stats returns a copy of the admission counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// job is one submission's record. The server's mutex guards the table;
// the job's own mutex guards its mutable fields.
type job struct {
	srv      *Server
	id       string
	client   string // submitting client's self-reported ID
	key      string // client idempotency key ("" when unkeyed)
	scenario *chaos.Scenario

	mu         sync.Mutex
	state      string
	cancel     context.CancelFunc // non-nil while running
	runDone    chan struct{}      // closed when the current execution exits
	suspendReq bool
	cancelReq  bool
	recovered  bool            // replayed from the WAL, not yet restarted
	walTries   int             // executions logged, across restarts
	snap       *snapshot.State // latest periodic capture of the current run
	resumeFrom *snapshot.State // armed for the next execution
	metrics    *stream
	trace      *stream
	result     []byte // canonical result document (complete only)
	errMsg     string // failure detail (failed only)
	delivered  bool   // a terminal status was served to some client

	progress atomic.Uint64 // events fired, published by the run loops
}

// clientKey joins a client ID and idempotency key into one map key.
func clientKey(client, key string) string {
	if key == "" {
		return ""
	}
	return client + "\x1f" + key
}

// errBusy is the admission-refused sentinel; the HTTP layer maps it to
// 429 + Retry-After with reason "capacity".
var errBusy = errors.New("served: server at capacity")

// errClosed refuses work after Close.
var errClosed = errors.New("served: server closed")

// errRecovering sheds load while the replay backlog drains; the HTTP
// layer maps it to 503 + Retry-After with reason "recovering".
var errRecovering = errors.New("served: recovering, replay backlog draining")

// Submit admits a scenario and returns its job ID — the unkeyed,
// anonymous form of SubmitKeyed.
func (s *Server) Submit(sc *chaos.Scenario) (string, error) {
	id, _, err := s.SubmitKeyed(sc, "", "")
	return id, err
}

// SubmitKeyed admits a scenario on behalf of client. A non-empty key
// makes the submission idempotent: resubmitting the same (client, key)
// returns the existing job with existing=true instead of admitting a
// duplicate, which is what lets a client blindly re-POST across a
// server crash. Returns errBusy (capacity), a quota error (IsQuota),
// or errRecovering when the submission is refused.
func (s *Server) SubmitKeyed(sc *chaos.Scenario, client, key string) (id string, existing bool, err error) {
	if err := sc.Validate(); err != nil {
		return "", false, err
	}
	var sha string
	var body []byte
	if s.wal != nil {
		// Artifact before log entry: an accepted edge must always find
		// its scenario bytes on disk (see wal.go for the ordering).
		canonical, err := canonicalRepro(sc)
		if err != nil {
			return "", false, err
		}
		body = []byte(canonical)
	}
	ck := clientKey(client, key)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", false, errClosed
	}
	if ck != "" {
		if prior, ok := s.keys[ck]; ok {
			s.stats.Deduped++
			s.mu.Unlock()
			return prior, true, nil
		}
	}
	if !s.Ready() {
		s.stats.Shed++
		s.mu.Unlock()
		return "", false, errRecovering
	}
	if err := s.quota.admit(client); err != nil {
		s.stats.QuotaRejected++
		s.mu.Unlock()
		return "", false, err
	}
	if len(s.jobs) >= s.opts.MaxJobs && !s.flushOldestLocked() {
		s.stats.Rejected++
		s.quota.refund(client)
		s.mu.Unlock()
		return "", false, errBusy
	}
	if s.wal != nil {
		if sha, err = s.wal.saveArtifact(body); err != nil {
			s.quota.refund(client)
			s.mu.Unlock()
			return "", false, err
		}
	}
	s.seq++
	j := &job{
		srv:      s,
		id:       fmt.Sprintf("j%d", s.seq),
		client:   client,
		key:      key,
		scenario: sc,
		state:    StateAccepted,
		metrics:  newStream(),
		trace:    newStream(),
	}
	if s.wal != nil {
		if err := s.wal.appendAccepted(j.id, sha, client, key); err != nil {
			// Roll the admission back: a job the log does not know
			// would silently vanish on restart.
			s.seq--
			s.quota.refund(client)
			s.mu.Unlock()
			return "", false, err
		}
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if ck != "" {
		s.keys[ck] = j.id
	}
	if !s.queue.TrySubmit(func() { s.runJob(j) }) {
		// Backlog full: roll the admission back so the table slot is not
		// leaked to a job that will never run, and void the log entry.
		s.wal.edge(j.id, walRejected, 0, "", "backlog full")
		delete(s.jobs, j.id)
		if ck != "" {
			delete(s.keys, ck)
		}
		s.order = s.order[:len(s.order)-1]
		s.stats.Rejected++
		s.quota.refund(client)
		s.mu.Unlock()
		return "", false, errBusy
	}
	s.stats.Accepted++
	s.mu.Unlock()
	return j.id, false, nil
}

// IsBusy reports whether err is the whole-server capacity refusal.
func IsBusy(err error) bool { return errors.Is(err, errBusy) }

// IsRecovering reports whether err is the recovery-shedding refusal.
func IsRecovering(err error) bool { return errors.Is(err, errRecovering) }

// flushOldestLocked evicts the oldest terminal job to a tombstone,
// reporting whether a slot was freed. Jobs whose terminal status has
// already been delivered to a client are preferred — flushing an unread
// result races the submitter's next poll — and suspended jobs are never
// flushed: they hold resumable state the client asked to keep.
func (s *Server) flushOldestLocked() bool {
	for _, needDelivered := range []bool{true, false} {
		for i, id := range s.order {
			j, ok := s.jobs[id]
			if !ok {
				continue
			}
			j.mu.Lock()
			flush := terminalState(j.state) && (j.delivered || !needDelivered)
			if flush {
				j.state = StateFlushed
			}
			j.mu.Unlock()
			if !flush {
				continue
			}
			s.wal.edge(id, StateFlushed, 0, "", "")
			s.wal.dropSnap(id)
			delete(s.jobs, id)
			s.order = append(s.order[:i], s.order[i+1:]...)
			s.flushed[id] = clientKey(j.client, j.key)
			s.flushQ = append(s.flushQ, id)
			if len(s.flushQ) > s.opts.MaxJobs {
				s.dropTombstoneLocked()
			}
			s.stats.Flushed++
			return true
		}
	}
	return false
}

// dropTombstoneLocked forgets the oldest tombstone and its idempotency
// key, keeping both maps bounded.
func (s *Server) dropTombstoneLocked() {
	id := s.flushQ[0]
	s.flushQ = s.flushQ[1:]
	if ck := s.flushed[id]; ck != "" {
		delete(s.keys, ck)
	}
	delete(s.flushed, id)
}

// lookup finds a live job. The second result distinguishes flushed
// (known-but-evicted) IDs from never-seen ones.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j, false
	}
	_, flushed := s.flushed[id]
	return nil, flushed
}

// requestCancel asks the job to stop: a queued job is marked canceled in
// place (the queue entry becomes a no-op); a running one has its context
// cancelled. Terminal states are left alone.
func (j *job) requestCancel() {
	j.mu.Lock()
	switch j.state {
	case StateAccepted, StateSuspended:
		was := j.state
		j.state = StateCanceled
		j.cancelReq = true
		j.metrics.close()
		j.trace.close()
		j.srv.wal.edge(j.id, StateCanceled, j.walTries, "", "canceled before running")
		j.srv.wal.dropSnap(j.id)
		if was == StateAccepted {
			j.srv.quota.release(j.client)
		}
		j.srv.recoveredDoneLocked(j)
		j.mu.Unlock()
		return
	case StateRunning:
		j.cancelReq = true
		cancel := j.cancel
		j.mu.Unlock()
		cancel()
		return
	}
	j.mu.Unlock()
}

// requestSuspend asks a running job to stop while keeping its latest
// snapshot for resume. It returns the channel to wait on (nil when the
// job was not running, with the state it was in instead).
func (j *job) requestSuspend() (<-chan struct{}, string) {
	j.mu.Lock()
	if j.state != StateRunning {
		st := j.state
		j.mu.Unlock()
		return nil, st
	}
	j.suspendReq = true
	cancel, done := j.cancel, j.runDone
	j.mu.Unlock()
	cancel()
	return done, StateRunning
}

// resume re-admits a suspended job: fresh streams (the resumed stream is
// a tail, not a continuation of the old buffer), restore state armed,
// back through the queue. Caller must map errBusy to 429.
func (s *Server) resume(j *job) error {
	j.mu.Lock()
	if j.state != StateSuspended {
		st := j.state
		j.mu.Unlock()
		return fmt.Errorf("served: job is %s, not suspended", st)
	}
	j.state = StateAccepted
	j.resumeFrom = j.snap
	j.suspendReq = false
	j.metrics = newStream()
	j.trace = newStream()
	s.quota.reacquire(j.client)
	s.wal.edge(j.id, StateAccepted, j.walTries, "", "")
	j.mu.Unlock()
	if !s.queue.TrySubmit(func() { s.runJob(j) }) {
		j.mu.Lock()
		j.state = StateSuspended
		s.quota.release(j.client)
		s.wal.edge(j.id, StateSuspended, j.walTries, snapHash(j.snap), "resume refused: backlog full")
		j.mu.Unlock()
		return errBusy
	}
	return nil
}

// retryJob re-admits a failed or canceled job from scratch.
func (s *Server) retryJob(j *job) error {
	j.mu.Lock()
	if j.state != StateFailed && j.state != StateCanceled {
		st := j.state
		j.mu.Unlock()
		return fmt.Errorf("served: job is %s, not failed or canceled", st)
	}
	j.state = StateAccepted
	j.resumeFrom = nil
	j.snap = nil
	j.suspendReq, j.cancelReq = false, false
	j.errMsg = ""
	j.result = nil
	j.delivered = false
	j.metrics = newStream()
	j.trace = newStream()
	j.progress.Store(0)
	s.quota.reacquire(j.client)
	s.wal.edge(j.id, StateAccepted, j.walTries, "", "")
	j.mu.Unlock()
	if !s.queue.TrySubmit(func() { s.runJob(j) }) {
		j.mu.Lock()
		j.state = StateFailed
		j.errMsg = "retry refused: backlog full"
		s.quota.release(j.client)
		s.wal.edge(j.id, StateFailed, j.walTries, "", j.errMsg)
		j.mu.Unlock()
		return errBusy
	}
	return nil
}

// snapHash returns the snapshot's content hash, or "" for nil.
func snapHash(st *snapshot.State) string {
	if st == nil {
		return ""
	}
	return st.Hash()
}

// parseSubmission decodes a `# hibchaos repro v1` request body.
func parseSubmission(body []byte) (*chaos.Scenario, error) {
	return chaos.ParseRepro(bytes.NewReader(body))
}

// canonicalRepro renders the scenario back in its canonical repro form —
// the dry-run echo clients can diff against what they sent, and the
// bytes the durable server stores as the job's artifact.
func canonicalRepro(sc *chaos.Scenario) (string, error) {
	var b bytes.Buffer
	if err := chaos.WriteRepro(&b, sc); err != nil {
		return "", err
	}
	return b.String(), nil
}

// waitIdle blocks until the job has no execution in flight.
func (j *job) waitIdle() {
	j.mu.Lock()
	done, running := j.runDone, j.state == StateRunning
	j.mu.Unlock()
	if running && done != nil {
		<-done
	}
}

// violationSummary renders up to three invariant violations on one line.
func violationSummary(chk *invariant.Checker) string {
	vs := chk.Violations()
	if len(vs) > 3 {
		vs = vs[:3]
	}
	parts := make([]string, 0, len(vs)+1)
	for _, v := range vs {
		parts = append(parts, v.String())
	}
	if total := chk.Count(); total > len(vs) {
		parts = append(parts, fmt.Sprintf("(+%d more)", total-len(vs)))
	}
	return strings.Join(parts, " | ")
}
