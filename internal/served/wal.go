package served

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"hibernator/internal/atomicio"
	"hibernator/internal/journal"
	"hibernator/internal/snapshot"
)

// The write-ahead job log. Every job lifecycle edge is appended — and
// fsynced — to <state-dir>/jobs.jsonl through internal/journal, which
// already owns the hard parts: append-only durability, torn-tail
// truncation on reopen, and a meta guard refusing a log written under
// incompatible flags. Submitted scenario bytes are not inlined in the
// log; they live as content-addressed artifacts in
// <state-dir>/jobs.jsonl.d/<sha256>.repro (the hibexp -journal layout),
// written atomically *before* the accepted edge is appended, so an
// accepted entry always has its scenario on disk. Periodic run
// snapshots land in <state-dir>/snaps/<job>.snap via atomic writes; a
// recovered running job resumes from its latest one when it parses,
// and restarts from scratch otherwise — either way the result is
// byte-identical, because the simulation is deterministic.
//
// Ordering is the crash-safety argument: the accepted edge is durable
// before the client ever sees the job ID, so an ID a client holds can
// never be unknown after a restart; terminal edges are durable before
// the delivered edge; and an interrupted edge is exactly the torn tail
// journal.Open truncates, which re-runs the job — deterministic, so
// nothing observable changes.

// WAL-only statuses, alongside the job State* constants.
const (
	// walDelivered marks that some client has read the job's terminal
	// status — the flush-eviction preference survives restarts.
	walDelivered = "delivered"
	// walRejected voids an accepted edge whose queue submission was
	// refused in the same admission: replay drops the record entirely.
	walRejected = "rejected"
)

// walMetaVersion is bumped on any incompatible WAL format change.
const walMetaVersion = "hibserved-wal/1"

// walDetail is the JSON payload of an accepted edge.
type walDetail struct {
	Client string `json:"client,omitempty"`
	Key    string `json:"key,omitempty"`
}

// wal owns the job log and its artifact/snapshot directories.
type wal struct {
	j       *journal.Journal
	artDir  string
	snapDir string
	frozen  atomic.Bool // test hook: simulate the crash point
}

// walRecord is one job's state as reconstructed from the log.
type walRecord struct {
	id        string
	sha       string // scenario artifact content address
	client    string
	key       string
	state     string
	attempt   int
	result    string // canonical result JSON, no trailing newline
	errMsg    string
	delivered bool
	snapHash  string // hash the suspended edge recorded for its snapshot
}

// walMeta renders the meta guard line: flags that change what a replay
// would compute must match between the writer and the reopener.
func walMeta(o Options) string {
	return fmt.Sprintf("%s check=%t", walMetaVersion, o.Check)
}

// openWAL opens (or creates) the job log under dir and replays it,
// returning the reconstructed records in first-accepted order. seen,
// when non-nil, observes every durable entry's job ID — including
// rejected and flushed ones — so the caller can restore its ID
// sequence past every ID ever issued. Replay errors carry the journal
// path and 1-based line number.
func openWAL(dir string, o Options, seen func(id string)) (*wal, []*walRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	path := filepath.Join(dir, "jobs.jsonl")
	w := &wal{artDir: path + ".d", snapDir: filepath.Join(dir, "snaps")}
	for _, d := range []string{w.artDir, w.snapDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, nil, err
		}
	}
	records := map[string]*walRecord{}
	var order []string
	j, err := journal.OpenReplay(path, walMeta(o), func(line int, e journal.Entry) error {
		if seen != nil {
			seen(e.Run)
		}
		return applyWALEntry(records, &order, e)
	})
	if err != nil {
		return nil, nil, err
	}
	w.j = j
	out := make([]*walRecord, 0, len(order))
	for _, id := range order {
		if r := records[id]; r != nil {
			out = append(out, r)
		}
	}
	return w, out, nil
}

// applyWALEntry folds one log line into the replay state, enforcing
// edge legality so a semantically corrupt log fails loudly (with the
// line number OpenReplay wraps in) instead of resurrecting jobs into
// impossible states.
func applyWALEntry(records map[string]*walRecord, order *[]string, e journal.Entry) error {
	if e.Run == "" {
		return fmt.Errorf("wal: entry without a job id")
	}
	r := records[e.Run]
	if r != nil && r.state == StateFlushed && e.Status != StateAccepted {
		return fmt.Errorf("wal: job %s: %s edge after flush", e.Run, e.Status)
	}
	switch e.Status {
	case StateAccepted:
		if r == nil {
			if len(e.SHA256) != 64 {
				return fmt.Errorf("wal: job %s: accepted without a scenario sha256", e.Run)
			}
			var d walDetail
			if e.Detail != "" {
				if err := json.Unmarshal([]byte(e.Detail), &d); err != nil {
					return fmt.Errorf("wal: job %s: accepted detail: %v", e.Run, err)
				}
			}
			r = &walRecord{id: e.Run, sha: e.SHA256, client: d.Client, key: d.Key, state: StateAccepted}
			records[e.Run] = r
			*order = append(*order, e.Run)
			return nil
		}
		// Re-admission: resume (suspended) or retry (failed/canceled).
		switch r.state {
		case StateSuspended, StateFailed, StateCanceled:
			r.state = StateAccepted
			r.result, r.errMsg, r.delivered = "", "", false
			return nil
		}
		return fmt.Errorf("wal: job %s: re-accepted while %s", e.Run, r.state)
	case StateRunning:
		if r == nil || (r.state != StateAccepted && r.state != StateRunning) {
			return walEdgeError(r, e)
		}
		r.state, r.attempt = StateRunning, e.Attempt
		return nil
	case StateSuspended:
		// Legal from running (a real suspend) and from accepted (the
		// rollback of a resume whose queue submission was refused).
		if r == nil || (r.state != StateRunning && r.state != StateAccepted) {
			return walEdgeError(r, e)
		}
		if e.SHA256 != "" || r.state == StateRunning {
			// A rollback edge with no hash keeps the snapshot the
			// original suspend recorded; a real suspend always states
			// its own (possibly empty, when no capture existed yet).
			r.snapHash = e.SHA256
		}
		r.state = StateSuspended
		return nil
	case StateComplete:
		if r == nil || r.state != StateRunning {
			return walEdgeError(r, e)
		}
		r.state, r.result = StateComplete, e.Detail
		return nil
	case StateFailed:
		// Failed is legal from accepted and suspended too: a recovered
		// job whose artifact no longer verifies is failed without ever
		// (re)running.
		if r == nil || (r.state != StateRunning && r.state != StateAccepted && r.state != StateSuspended) {
			return walEdgeError(r, e)
		}
		r.state, r.errMsg = StateFailed, e.Detail
		return nil
	case StateCanceled:
		if r == nil || (r.state != StateAccepted && r.state != StateRunning && r.state != StateSuspended) {
			return walEdgeError(r, e)
		}
		r.state, r.errMsg = StateCanceled, e.Detail
		return nil
	case walDelivered:
		if r == nil || !terminalState(r.state) {
			return walEdgeError(r, e)
		}
		r.delivered = true
		return nil
	case StateFlushed:
		if r == nil || !terminalState(r.state) {
			return walEdgeError(r, e)
		}
		r.state = StateFlushed
		return nil
	case walRejected:
		if r == nil || r.state != StateAccepted || r.attempt != 0 {
			return walEdgeError(r, e)
		}
		delete(records, e.Run)
		return nil
	}
	return fmt.Errorf("wal: job %s: unknown status %q", e.Run, e.Status)
}

// walEdgeError names the illegal transition.
func walEdgeError(r *walRecord, e journal.Entry) error {
	if r == nil {
		return fmt.Errorf("wal: job %s: %s edge before accepted", e.Run, e.Status)
	}
	return fmt.Errorf("wal: job %s: %s edge while %s", e.Run, e.Status, r.state)
}

// terminalState reports whether a job in this state has finished.
func terminalState(st string) bool {
	return st == StateComplete || st == StateFailed || st == StateCanceled
}

// appendAccepted durably records an admission. Unlike the other edges
// this one must not be lost silently: the caller rolls the admission
// back when it fails, because an accepted job missing from the log
// would vanish on restart.
func (w *wal) appendAccepted(id, sha, client, key string) error {
	if w == nil || w.frozen.Load() {
		return nil
	}
	detail := ""
	if client != "" || key != "" {
		b, err := json.Marshal(walDetail{Client: client, Key: key})
		if err != nil {
			return err
		}
		detail = string(b)
	}
	return w.j.Append(journal.Entry{Run: id, Status: StateAccepted, SHA256: sha, Detail: detail})
}

// edge records a lifecycle transition, best-effort: the in-memory state
// is already correct, results are re-derivable by determinism, and a
// server must not fail a finished job over a full disk — the cost of a
// lost edge is bounded at one re-run after a crash.
func (w *wal) edge(id, status string, attempt int, sha, detail string) {
	if w == nil || w.frozen.Load() {
		return
	}
	_ = w.j.Append(journal.Entry{Run: id, Status: status, Attempt: attempt, SHA256: sha, Detail: detail})
}

// saveArtifact stores the canonical scenario bytes content-addressed
// and returns their sha256. Writing is idempotent — identical content
// hits the same path — and atomic, so a half-written artifact can never
// be read back.
func (w *wal) saveArtifact(body []byte) (string, error) {
	sum := sha256.Sum256(body)
	sha := hex.EncodeToString(sum[:])
	path := w.artifactPath(sha)
	if _, err := os.Stat(path); err == nil {
		return sha, nil
	}
	if err := atomicio.WriteFileBytes(path, body); err != nil {
		return "", err
	}
	return sha, nil
}

// loadArtifact reads an artifact back and re-verifies its content hash,
// so a corrupted file is detected instead of silently replaying a
// different scenario.
func (w *wal) loadArtifact(sha string) ([]byte, error) {
	body, err := os.ReadFile(w.artifactPath(sha))
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(body)
	if got := hex.EncodeToString(sum[:]); got != sha {
		return nil, fmt.Errorf("artifact %s: content hash %s does not match its address", sha[:12], got[:12])
	}
	return body, nil
}

func (w *wal) artifactPath(sha string) string {
	return filepath.Join(w.artDir, sha+".repro")
}

// saveSnap persists a job's latest periodic snapshot atomically,
// best-effort: losing one costs a restart-from-scratch, never
// correctness.
func (w *wal) saveSnap(id string, st *snapshot.State) {
	if w == nil || w.frozen.Load() || st == nil {
		return
	}
	_ = st.Save(w.snapPath(id))
}

// loadSnap returns the job's persisted snapshot, or nil when there is
// none or it does not parse (atomic writes make a torn file impossible,
// so a parse failure means external corruption — restart from scratch).
func (w *wal) loadSnap(id string) *snapshot.State {
	if w == nil {
		return nil
	}
	st, err := snapshot.Load(w.snapPath(id))
	if err != nil {
		return nil
	}
	return st
}

// dropSnap removes a job's snapshot once it can no longer be resumed.
func (w *wal) dropSnap(id string) {
	if w == nil || w.frozen.Load() {
		return
	}
	_ = os.Remove(w.snapPath(id))
}

func (w *wal) snapPath(id string) string {
	return filepath.Join(w.snapDir, id+".snap")
}

// freeze stops every subsequent disk write — the test hook that turns a
// live server into a crash scene: whatever is durable now is exactly
// what a kill -9 at this instant would have left.
func (w *wal) freeze() {
	if w != nil {
		w.frozen.Store(true)
	}
}

// close flushes and closes the log.
func (w *wal) close() {
	if w != nil && w.j != nil {
		_ = w.j.Close()
	}
}
