package served

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// Cancelling a served job mid-run must release everything: the
// simulation goroutine, its worker-pool goroutines, the watchdog
// monitor, and every stream waiter. The whole server tears down to the
// goroutine count we started from.
func TestCancelMidRunNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	srv := New(&Options{Workers: 2})
	ts := httptest.NewServer(srv.Handler())

	long := testScenario(t, 7, 100000)
	id := postJob(t, ts, long)
	waitState(t, ts, id, StateRunning)

	// A streaming client attached mid-run must unblock when the job is
	// canceled (its stream closes), not hang forever.
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		resp, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		buf := make([]byte, 4096)
		for {
			if _, err := resp.Body.Read(buf); err != nil {
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)

	resp, err := http.Post(ts.URL+"/jobs/"+id+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts, id, StateCanceled)
	select {
	case <-streamDone:
	case <-time.After(10 * time.Second):
		t.Fatal("streaming client still blocked after cancel")
	}

	ts.Close()
	srv.Close()

	for i := 0; i < 200; i++ {
		// The HTTP client's keep-alive goroutines are not the server's;
		// drop them before counting.
		http.DefaultTransport.(*http.Transport).CloseIdleConnections()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%d goroutines before, %d after cancel+close — leak", before, runtime.NumGoroutine())
}
