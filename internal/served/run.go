package served

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"

	"hibernator/internal/chaos"
	"hibernator/internal/invariant"
	"hibernator/internal/obs"
	"hibernator/internal/runner"
	"hibernator/internal/sim"
	"hibernator/internal/snapshot"
)

// RenderResult renders a run's canonical result document: the chaos
// fingerprint (the scalars any determinism bug would disturb) as one
// JSON line. Both the server and DirectRun render through this function,
// so "the served result is byte-identical to a direct run" is an exact
// bytes.Equal, not a semantic comparison.
func RenderResult(res *sim.Result) []byte {
	b, err := json.Marshal(chaos.FingerprintOf(res))
	if err != nil {
		// Fingerprint is a flat struct of numbers; Marshal cannot fail.
		panic("served: fingerprint marshal: " + err.Error())
	}
	return append(b, '\n')
}

// DirectRun executes the scenario the way the server does — same
// BuildRun materialization, same observability arming, same result
// rendering — without the service machinery. It returns the canonical
// result document plus the complete metrics and trace streams (the
// bytes a client streaming the served job from start to finish
// receives). The load harness compares served jobs against this.
func DirectRun(sc *chaos.Scenario, check bool) (result, metrics, trace []byte, err error) {
	r, err := sc.BuildRun()
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := r.Config
	reg := obs.NewRegistry(0)
	tr := obs.NewTrace()
	cfg.Metrics, cfg.Trace = reg, tr
	var chk *invariant.Checker
	if check {
		chk = invariant.New()
		cfg.Invariants = chk
	}
	res, err := sim.Run(cfg, r.Source, r.Controller, r.Duration)
	if err != nil {
		return nil, nil, nil, err
	}
	if chk != nil && !chk.Ok() {
		return nil, nil, nil, errors.New("invariant violations: " + violationSummary(chk))
	}
	var mb, tb bytes.Buffer
	if err := reg.WriteJSONL(&mb); err != nil {
		return nil, nil, nil, err
	}
	if err := tr.WriteJSONL(&tb); err != nil {
		return nil, nil, nil, err
	}
	return RenderResult(res), mb.Bytes(), tb.Bytes(), nil
}

// armObs wires a fresh registry and trace into cfg and streams every
// retained row/event — rendered by the same functions the file
// exporters use — into the job's stream buffers. The hooks run on the
// simulation goroutine; the streams do the cross-goroutine handoff.
func armObs(cfg *sim.Config, metrics, trace *stream) {
	reg := obs.NewRegistry(0)
	tr := obs.NewTrace()
	cfg.Metrics, cfg.Trace = reg, tr
	var mbuf, tbuf []byte
	reg.SetOnSample(func(row int) {
		mbuf = reg.AppendRowJSONL(mbuf[:0], row)
		metrics.append(mbuf)
	})
	tr.SetOnEmit(func(ev obs.Event) {
		tbuf = obs.AppendEventJSONL(tbuf[:0], ev)
		trace.append(tbuf)
	})
}

// runJob executes one admitted job on a queue worker: build the run,
// arm context/watchdog/progress/observability/snapshots, execute under
// the retry schedule, and record the outcome. It owns every state
// transition out of running.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	s.recoveredDoneLocked(j)      // the replay backlog shrinks even if canceled
	if j.state != StateAccepted { // canceled while queued
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.state = StateRunning
	j.cancel = cancel
	j.runDone = make(chan struct{})
	resumeFrom := j.resumeFrom
	done := j.runDone
	j.mu.Unlock()
	defer cancel()

	var res *sim.Result
	attemptN := 0
	attempt := func(ctx context.Context) error {
		j.mu.Lock()
		if attemptN > 0 {
			// A fresh attempt restarts the streams: the retried run's
			// bytes must stand alone, not continue a failed prefix.
			j.metrics.close()
			j.trace.close()
			j.metrics, j.trace = newStream(), newStream()
		}
		attemptN++
		j.walTries++
		tries := j.walTries
		metrics, trace := j.metrics, j.trace
		j.mu.Unlock()
		s.wal.edge(j.id, StateRunning, tries, "", "")

		r, err := j.scenario.BuildRun()
		if err != nil {
			return err
		}
		cfg := r.Config
		cfg.Context = ctx
		cfg.Progress = &j.progress
		if s.opts.Watchdog != nil {
			wd := *s.opts.Watchdog
			cfg.Watchdog = &wd
		}
		var chk *invariant.Checker
		if s.opts.Check {
			chk = invariant.New()
			cfg.Invariants = chk
		}
		armObs(&cfg, metrics, trace)
		// Periodic snapshots back suspend/resume. Capture is a pure
		// read, so arming it changes neither the result nor the stream.
		cfg.SnapshotEvery = r.Duration / float64(s.opts.SnapshotFrac)
		cfg.SnapshotSink = func(st *snapshot.State) error {
			j.mu.Lock()
			j.snap = st
			j.mu.Unlock()
			// Durable too: a crash mid-run restarts from the latest
			// persisted capture instead of from t=0. Best-effort — a
			// failed write costs restart time, never correctness.
			s.wal.saveSnap(j.id, st)
			return nil
		}
		cfg.ResumeFrom = resumeFrom

		out, err := sim.Run(cfg, r.Source, r.Controller, r.Duration)
		if err != nil {
			return err
		}
		if chk != nil && !chk.Ok() {
			return errors.New("invariant violations: " + violationSummary(chk))
		}
		res = out
		return nil
	}
	err := runner.Retry(ctx, s.opts.Attempts, s.opts.Backoff, attempt)

	j.mu.Lock()
	switch {
	case err == nil:
		j.state = StateComplete
		j.result = RenderResult(res)
		// The terminal edge carries the canonical result (sans the
		// framing newline), so a restart serves it without re-running.
		s.wal.edge(j.id, StateComplete, j.walTries, "", string(res2line(j.result)))
		s.wal.dropSnap(j.id)
	case j.cancelReq:
		j.state = StateCanceled
		j.errMsg = err.Error()
		s.wal.edge(j.id, StateCanceled, j.walTries, "", j.errMsg)
		s.wal.dropSnap(j.id)
	case j.suspendReq && errors.Is(err, context.Canceled):
		j.state = StateSuspended
		j.resumeFrom = j.snap // may be nil: resume then restarts from t=0
		// Snapshot durable first, then the edge records its hash: replay
		// verifies the pair and restarts from scratch on any mismatch.
		s.wal.saveSnap(j.id, j.snap)
		s.wal.edge(j.id, StateSuspended, j.walTries, snapHash(j.snap), "")
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.wal.edge(j.id, StateFailed, j.walTries, "", j.errMsg)
		s.wal.dropSnap(j.id)
	}
	s.quota.release(j.client) // the job left accepted/running either way
	j.cancel = nil
	j.metrics.close()
	j.trace.close()
	close(done)
	j.mu.Unlock()
}

// res2line strips the trailing newline RenderResult frames with.
func res2line(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		return b[:n-1]
	}
	return b
}
