package served

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"

	"hibernator/internal/chaos"
	"hibernator/internal/invariant"
	"hibernator/internal/obs"
	"hibernator/internal/runner"
	"hibernator/internal/sim"
	"hibernator/internal/snapshot"
)

// RenderResult renders a run's canonical result document: the chaos
// fingerprint (the scalars any determinism bug would disturb) as one
// JSON line. Both the server and DirectRun render through this function,
// so "the served result is byte-identical to a direct run" is an exact
// bytes.Equal, not a semantic comparison.
func RenderResult(res *sim.Result) []byte {
	b, err := json.Marshal(chaos.FingerprintOf(res))
	if err != nil {
		// Fingerprint is a flat struct of numbers; Marshal cannot fail.
		panic("served: fingerprint marshal: " + err.Error())
	}
	return append(b, '\n')
}

// DirectRun executes the scenario the way the server does — same
// BuildRun materialization, same observability arming, same result
// rendering — without the service machinery. It returns the canonical
// result document plus the complete metrics and trace streams (the
// bytes a client streaming the served job from start to finish
// receives). The load harness compares served jobs against this.
func DirectRun(sc *chaos.Scenario, check bool) (result, metrics, trace []byte, err error) {
	r, err := sc.BuildRun()
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := r.Config
	reg := obs.NewRegistry(0)
	tr := obs.NewTrace()
	cfg.Metrics, cfg.Trace = reg, tr
	var chk *invariant.Checker
	if check {
		chk = invariant.New()
		cfg.Invariants = chk
	}
	res, err := sim.Run(cfg, r.Source, r.Controller, r.Duration)
	if err != nil {
		return nil, nil, nil, err
	}
	if chk != nil && !chk.Ok() {
		return nil, nil, nil, errors.New("invariant violations: " + violationSummary(chk))
	}
	var mb, tb bytes.Buffer
	if err := reg.WriteJSONL(&mb); err != nil {
		return nil, nil, nil, err
	}
	if err := tr.WriteJSONL(&tb); err != nil {
		return nil, nil, nil, err
	}
	return RenderResult(res), mb.Bytes(), tb.Bytes(), nil
}

// armObs wires a fresh registry and trace into cfg and streams every
// retained row/event — rendered by the same functions the file
// exporters use — into the job's stream buffers. The hooks run on the
// simulation goroutine; the streams do the cross-goroutine handoff.
func armObs(cfg *sim.Config, metrics, trace *stream) {
	reg := obs.NewRegistry(0)
	tr := obs.NewTrace()
	cfg.Metrics, cfg.Trace = reg, tr
	var mbuf, tbuf []byte
	reg.SetOnSample(func(row int) {
		mbuf = reg.AppendRowJSONL(mbuf[:0], row)
		metrics.append(mbuf)
	})
	tr.SetOnEmit(func(ev obs.Event) {
		tbuf = obs.AppendEventJSONL(tbuf[:0], ev)
		trace.append(tbuf)
	})
}

// runJob executes one admitted job on a queue worker: build the run,
// arm context/watchdog/progress/observability/snapshots, execute under
// the retry schedule, and record the outcome. It owns every state
// transition out of running.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state != StateAccepted { // canceled while queued
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.state = StateRunning
	j.cancel = cancel
	j.runDone = make(chan struct{})
	resumeFrom := j.resumeFrom
	done := j.runDone
	j.mu.Unlock()
	defer cancel()

	var res *sim.Result
	attemptN := 0
	attempt := func(ctx context.Context) error {
		j.mu.Lock()
		if attemptN > 0 {
			// A fresh attempt restarts the streams: the retried run's
			// bytes must stand alone, not continue a failed prefix.
			j.metrics.close()
			j.trace.close()
			j.metrics, j.trace = newStream(), newStream()
		}
		attemptN++
		metrics, trace := j.metrics, j.trace
		j.mu.Unlock()

		r, err := j.scenario.BuildRun()
		if err != nil {
			return err
		}
		cfg := r.Config
		cfg.Context = ctx
		cfg.Progress = &j.progress
		if s.opts.Watchdog != nil {
			wd := *s.opts.Watchdog
			cfg.Watchdog = &wd
		}
		var chk *invariant.Checker
		if s.opts.Check {
			chk = invariant.New()
			cfg.Invariants = chk
		}
		armObs(&cfg, metrics, trace)
		// Periodic snapshots back suspend/resume. Capture is a pure
		// read, so arming it changes neither the result nor the stream.
		cfg.SnapshotEvery = r.Duration / float64(s.opts.SnapshotFrac)
		cfg.SnapshotSink = func(st *snapshot.State) error {
			j.mu.Lock()
			j.snap = st
			j.mu.Unlock()
			return nil
		}
		cfg.ResumeFrom = resumeFrom

		out, err := sim.Run(cfg, r.Source, r.Controller, r.Duration)
		if err != nil {
			return err
		}
		if chk != nil && !chk.Ok() {
			return errors.New("invariant violations: " + violationSummary(chk))
		}
		res = out
		return nil
	}
	err := runner.Retry(ctx, s.opts.Attempts, s.opts.Backoff, attempt)

	j.mu.Lock()
	switch {
	case err == nil:
		j.state = StateComplete
		j.result = RenderResult(res)
	case j.cancelReq:
		j.state = StateCanceled
		j.errMsg = err.Error()
	case j.suspendReq && errors.Is(err, context.Canceled):
		j.state = StateSuspended
		j.resumeFrom = j.snap // may be nil: resume then restarts from t=0
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	j.cancel = nil
	j.metrics.close()
	j.trace.close()
	close(done)
	j.mu.Unlock()
}
