package served

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// maxSubmission bounds a POST /jobs body; repro scenarios are a few
// hundred bytes, so 1 MiB is generous without inviting memory abuse.
const maxSubmission = 1 << 20

// JobStatus is the wire form of one job's state.
type JobStatus struct {
	ID       string          `json:"id"`
	State    string          `json:"state"`
	Scenario string          `json:"scenario"`
	Events   uint64          `json:"events"`
	Result   json.RawMessage `json:"result,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// JobList is the GET /jobs envelope.
type JobList struct {
	Jobs  []JobStatus `json:"jobs"`
	Stats Stats       `json:"stats"`
}

// Handler returns the server's HTTP API:
//
//	POST /jobs                submit a repro scenario (?dry-run=1 to validate only)
//	GET  /jobs                list jobs + admission stats
//	GET  /jobs/{id}           one job's status (410 after flush)
//	GET  /jobs/{id}/stream    live metrics, chunked JSONL
//	GET  /jobs/{id}/trace     live decision trace, chunked JSONL
//	GET  /jobs/{id}/events    live metrics as Server-Sent Events
//	POST /jobs/{id}/suspend   stop a running job, keeping its snapshot
//	POST /jobs/{id}/resume    restore a suspended job
//	POST /jobs/{id}/retry     re-run a failed or canceled job from scratch
//	POST /jobs/{id}/cancel    stop a job for good
//
// Admission refusals answer 429 with a Retry-After header — the
// explicit backpressure clients are expected to honor.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/stream", s.streamHandler(func(j *job) *stream { return j.metricsStream() }, "application/jsonl"))
	mux.HandleFunc("GET /jobs/{id}/trace", s.streamHandler(func(j *job) *stream { return j.traceStream() }, "application/jsonl"))
	mux.HandleFunc("GET /jobs/{id}/events", s.handleSSE)
	mux.HandleFunc("POST /jobs/{id}/suspend", s.handleSuspend)
	mux.HandleFunc("POST /jobs/{id}/resume", s.handleResume)
	mux.HandleFunc("POST /jobs/{id}/retry", s.handleRetry)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	return mux
}

func (j *job) metricsStream() *stream {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.metrics
}

func (j *job) traceStream() *stream {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// status snapshots the job's wire form. Serving a terminal state marks
// the job delivered, which makes it first in line for flush eviction.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateComplete, StateFailed, StateCanceled:
		j.delivered = true
	}
	return JobStatus{
		ID:       j.id,
		State:    j.state,
		Scenario: j.scenario.String(),
		Events:   j.progress.Load(),
		Result:   json.RawMessage(j.result),
		Error:    j.errMsg,
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) writeBusy(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.opts.RetryAfter+999999999)/1000000000)))
	writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "server at capacity, retry later"})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSubmission+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if len(body) > maxSubmission {
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": "submission exceeds 1 MiB"})
		return
	}
	sc, err := parseSubmission(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if r.URL.Query().Get("dry-run") == "1" {
		canonical, err := canonicalRepro(sc)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{
			"scenario":  sc.String(),
			"canonical": canonical,
		})
		return
	}
	id, err := s.Submit(sc)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": StateAccepted})
	case IsBusy(err):
		s.writeBusy(w)
	case err == errClosed:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := JobList{Jobs: make([]JobStatus, 0, len(s.order)), Stats: s.stats}
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	for _, j := range jobs {
		list.Jobs = append(list.Jobs, j.status())
	}
	writeJSON(w, http.StatusOK, list)
}

// findJob resolves {id}, writing the error response itself when the job
// is flushed or unknown.
func (s *Server) findJob(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	j, flushed := s.lookup(id)
	if j != nil {
		return j
	}
	if flushed {
		writeJSON(w, http.StatusGone, map[string]string{"id": id, "state": StateFlushed})
	} else {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job " + id})
	}
	return nil
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.findJob(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// streamHandler serves one of the job's live byte streams as a chunked
// response: bytes are flushed as the simulation produces them, and the
// response ends when the stream closes (job finished, suspended, or
// canceled) or the client goes away.
func (s *Server) streamHandler(pick func(*job) *stream, contentType string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j := s.findJob(w, r)
		if j == nil {
			return
		}
		st := pick(j)
		w.Header().Set("Content-Type", contentType)
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		off := 0
		for {
			chunk, ok := st.next(off, r.Context().Done())
			if !ok {
				return
			}
			if _, err := w.Write(chunk); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			off += len(chunk)
		}
	}
}

// handleSSE serves the metrics stream as Server-Sent Events: each JSONL
// row becomes one `data:` event (payload identical to the stream
// endpoint's line), and a final `event: end` marks completion.
func (s *Server) handleSSE(w http.ResponseWriter, r *http.Request) {
	j := s.findJob(w, r)
	if j == nil {
		return
	}
	st := j.metricsStream()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	off := 0
	var pending []byte
	for {
		chunk, ok := st.next(off, r.Context().Done())
		if !ok {
			fmt.Fprintf(w, "event: end\ndata: %s\n\n", j.status().State)
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		off += len(chunk)
		pending = append(pending, chunk...)
		for {
			nl := bytes.IndexByte(pending, '\n')
			if nl < 0 {
				break
			}
			fmt.Fprintf(w, "data: %s\n\n", pending[:nl])
			pending = pending[nl+1:]
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleSuspend(w http.ResponseWriter, r *http.Request) {
	j := s.findJob(w, r)
	if j == nil {
		return
	}
	done, was := j.requestSuspend()
	if done == nil {
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": "job is " + was + ", not running", "state": was,
		})
		return
	}
	<-done
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	j := s.findJob(w, r)
	if j == nil {
		return
	}
	switch err := s.resume(j); {
	case err == nil:
		writeJSON(w, http.StatusOK, j.status())
	case IsBusy(err):
		s.writeBusy(w)
	default:
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
	}
}

func (s *Server) handleRetry(w http.ResponseWriter, r *http.Request) {
	j := s.findJob(w, r)
	if j == nil {
		return
	}
	switch err := s.retryJob(j); {
	case err == nil:
		writeJSON(w, http.StatusOK, j.status())
	case IsBusy(err):
		s.writeBusy(w)
	default:
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.findJob(w, r)
	if j == nil {
		return
	}
	j.requestCancel()
	j.waitIdle()
	writeJSON(w, http.StatusOK, j.status())
}
