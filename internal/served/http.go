package served

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// maxSubmission bounds a POST /jobs body; repro scenarios are a few
// hundred bytes, so 1 MiB is generous without inviting memory abuse.
const maxSubmission = 1 << 20

// JobStatus is the wire form of one job's state.
type JobStatus struct {
	ID       string          `json:"id"`
	State    string          `json:"state"`
	Scenario string          `json:"scenario"`
	Events   uint64          `json:"events"`
	Result   json.RawMessage `json:"result,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// JobList is the GET /jobs envelope.
type JobList struct {
	Jobs  []JobStatus `json:"jobs"`
	Stats Stats       `json:"stats"`
}

// Handler returns the server's HTTP API:
//
//	POST /jobs                submit a repro scenario (?dry-run=1 to validate only)
//	GET  /jobs                list jobs + admission stats
//	GET  /jobs/{id}           one job's status (410 after flush)
//	GET  /jobs/{id}/stream    live metrics, chunked JSONL
//	GET  /jobs/{id}/trace     live decision trace, chunked JSONL
//	GET  /jobs/{id}/events    live metrics as Server-Sent Events
//	POST /jobs/{id}/suspend   stop a running job, keeping its snapshot
//	POST /jobs/{id}/resume    restore a suspended job
//	POST /jobs/{id}/retry     re-run a failed or canceled job from scratch
//	POST /jobs/{id}/cancel    stop a job for good
//	GET  /healthz             liveness: 200 once the process serves at all
//	GET  /readyz              readiness: 200 once crash recovery has drained
//
// POST /jobs honors two optional headers: X-Client names the submitting
// client for per-client quotas, and X-Job-Key makes the submission
// idempotent — re-POSTing the same (client, key) returns the existing
// job with 200 instead of admitting a duplicate, which is how clients
// survive a server crash between their POST and its response.
//
// Admission refusals answer 429 (capacity or quota, named in the body)
// or 503 (recovery shedding) with a Retry-After header — the explicit
// backpressure clients are expected to honor.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/stream", s.streamHandler(func(j *job) *stream { return j.metricsStream() }, "application/jsonl"))
	mux.HandleFunc("GET /jobs/{id}/trace", s.streamHandler(func(j *job) *stream { return j.traceStream() }, "application/jsonl"))
	mux.HandleFunc("GET /jobs/{id}/events", s.handleSSE)
	mux.HandleFunc("POST /jobs/{id}/suspend", s.handleSuspend)
	mux.HandleFunc("POST /jobs/{id}/resume", s.handleResume)
	mux.HandleFunc("POST /jobs/{id}/retry", s.handleRetry)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	return mux
}

func (j *job) metricsStream() *stream {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.metrics
}

func (j *job) traceStream() *stream {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// status snapshots the job's wire form. Serving a terminal state marks
// the job delivered, which makes it first in line for flush eviction;
// the mark is logged so the eviction preference survives a restart.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateComplete, StateFailed, StateCanceled:
		if !j.delivered {
			j.delivered = true
			j.srv.wal.edge(j.id, walDelivered, j.walTries, "", "")
		}
	}
	shape := ""
	if j.scenario != nil { // recovered terminal job with a lost artifact
		shape = j.scenario.String()
	}
	return JobStatus{
		ID:       j.id,
		State:    j.state,
		Scenario: shape,
		Events:   j.progress.Load(),
		Result:   json.RawMessage(j.result),
		Error:    j.errMsg,
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// ceilSeconds converts a wait hint to the whole seconds a Retry-After
// header carries, rounding up so a sub-second hint never becomes
// "retry immediately" (Retry-After: 0).
func ceilSeconds(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return int((d + time.Second - 1) / time.Second)
}

// writeRetry answers an admission refusal: Retry-After plus a body
// naming the reason, so clients can tell whole-server capacity (back
// off and retry) from their own quota (slow down) from recovery
// shedding (wait for readiness).
func writeRetry(w http.ResponseWriter, code int, wait time.Duration, reason, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(wait)))
	writeJSON(w, code, map[string]string{"error": msg, "reason": reason})
}

func (s *Server) writeBusy(w http.ResponseWriter) {
	writeRetry(w, http.StatusTooManyRequests, s.opts.RetryAfter, "capacity", "server at capacity, retry later")
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSubmission+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if len(body) > maxSubmission {
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": "submission exceeds 1 MiB"})
		return
	}
	sc, err := parseSubmission(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if r.URL.Query().Get("dry-run") == "1" {
		canonical, err := canonicalRepro(sc)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{
			"scenario":  sc.String(),
			"canonical": canonical,
		})
		return
	}
	client, key := r.Header.Get("X-Client"), r.Header.Get("X-Job-Key")
	id, existing, err := s.SubmitKeyed(sc, client, key)
	wait, isQuota := IsQuota(err)
	switch {
	case err == nil && existing:
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": s.stateOf(id)})
	case err == nil:
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": StateAccepted})
	case IsBusy(err):
		s.writeBusy(w)
	case isQuota:
		writeRetry(w, http.StatusTooManyRequests, wait, "quota", err.Error())
	case IsRecovering(err):
		writeRetry(w, http.StatusServiceUnavailable, s.opts.RetryAfter, "recovering", err.Error())
	case err == errClosed:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	}
}

// stateOf names a deduplicated job's current state for the 200 body;
// the job may have been flushed since the key was recorded.
func (s *Server) stateOf(id string) string {
	j, flushed := s.lookup(id)
	switch {
	case j != nil:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.state
	case flushed:
		return StateFlushed
	default:
		return "unknown"
	}
}

// handleHealthz is liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 once crash recovery's replay backlog
// has drained (trivially true for a fresh or non-durable server), 503
// while submissions are still being shed.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Ready() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	writeRetry(w, http.StatusServiceUnavailable, s.opts.RetryAfter, "recovering",
		fmt.Sprintf("replaying %d recovered jobs", s.pending.Load()))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := JobList{Jobs: make([]JobStatus, 0, len(s.order)), Stats: s.stats}
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	for _, j := range jobs {
		list.Jobs = append(list.Jobs, j.status())
	}
	writeJSON(w, http.StatusOK, list)
}

// findJob resolves {id}, writing the error response itself when the job
// is flushed or unknown.
func (s *Server) findJob(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	j, flushed := s.lookup(id)
	if j != nil {
		return j
	}
	if flushed {
		writeJSON(w, http.StatusGone, map[string]string{"id": id, "state": StateFlushed})
	} else {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job " + id})
	}
	return nil
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.findJob(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// streamHandler serves one of the job's live byte streams as a chunked
// response: bytes are flushed as the simulation produces them, and the
// response ends when the stream closes (job finished, suspended, or
// canceled) or the client goes away.
func (s *Server) streamHandler(pick func(*job) *stream, contentType string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j := s.findJob(w, r)
		if j == nil {
			return
		}
		st := pick(j)
		w.Header().Set("Content-Type", contentType)
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		off := 0
		for {
			chunk, ok := st.next(off, r.Context().Done())
			if !ok {
				return
			}
			if _, err := w.Write(chunk); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			off += len(chunk)
		}
	}
}

// handleSSE serves the metrics stream as Server-Sent Events: each JSONL
// row becomes one `data:` event (payload identical to the stream
// endpoint's line), and a final `event: end` marks completion.
func (s *Server) handleSSE(w http.ResponseWriter, r *http.Request) {
	j := s.findJob(w, r)
	if j == nil {
		return
	}
	st := j.metricsStream()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	off := 0
	var pending []byte
	for {
		chunk, ok := st.next(off, r.Context().Done())
		if !ok {
			fmt.Fprintf(w, "event: end\ndata: %s\n\n", j.status().State)
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		off += len(chunk)
		pending = append(pending, chunk...)
		for {
			nl := bytes.IndexByte(pending, '\n')
			if nl < 0 {
				break
			}
			fmt.Fprintf(w, "data: %s\n\n", pending[:nl])
			pending = pending[nl+1:]
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleSuspend(w http.ResponseWriter, r *http.Request) {
	j := s.findJob(w, r)
	if j == nil {
		return
	}
	done, was := j.requestSuspend()
	if done == nil {
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": "job is " + was + ", not running", "state": was,
		})
		return
	}
	<-done
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	j := s.findJob(w, r)
	if j == nil {
		return
	}
	switch err := s.resume(j); {
	case err == nil:
		writeJSON(w, http.StatusOK, j.status())
	case IsBusy(err):
		s.writeBusy(w)
	default:
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
	}
}

func (s *Server) handleRetry(w http.ResponseWriter, r *http.Request) {
	j := s.findJob(w, r)
	if j == nil {
		return
	}
	switch err := s.retryJob(j); {
	case err == nil:
		writeJSON(w, http.StatusOK, j.status())
	case IsBusy(err):
		s.writeBusy(w)
	default:
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.findJob(w, r)
	if j == nil {
		return
	}
	j.requestCancel()
	j.waitIdle()
	writeJSON(w, http.StatusOK, j.status())
}
