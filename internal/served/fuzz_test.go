package served

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fuzzMetaLine is the meta entry openWAL writes for the fuzzed Options;
// prepending it makes the fuzz input the journal's payload, so the
// fuzzer explores replay semantics instead of only the meta guard.
const fuzzMetaLine = `{"run":"journal","status":"meta","detail":"hibserved-wal/1 check=false"}` + "\n"

const fuzzSHA = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"

// FuzzWALReplay feeds arbitrary bytes to the write-ahead log replay.
// The contract under fuzz: replay either reconstructs a table whose
// every record sits in a legal state, or fails with a structured,
// line-numbered error — it never panics, never resurrects a rejected
// or flushed job into the live table, and stays deterministic (a
// second replay of the same bytes agrees with the first).
func FuzzWALReplay(f *testing.F) {
	seed := func(lines ...string) []byte {
		return []byte(strings.Join(lines, "\n") + "\n")
	}
	acc := `{"run":"j1","status":"accepted","sha256":"` + fuzzSHA + `","detail":"{\"client\":\"a\",\"key\":\"k\"}"}`
	run := `{"run":"j1","status":"running","attempt":1}`
	f.Add(seed(acc, run, `{"run":"j1","status":"complete","detail":"{\"x\":1}"}`))
	f.Add(seed(acc, run, `{"run":"j1","status":"complete","detail":"{}"}`,
		`{"run":"j1","status":"delivered"}`, `{"run":"j1","status":"flushed"}`))
	f.Add(seed(acc, `{"run":"j1","status":"rejected"}`))
	f.Add(seed(acc, run, `{"run":"j1","status":"suspended","sha256":"beef"}`,
		`{"run":"j1","status":"accepted"}`, `{"run":"j1","status":"running","attempt":2}`))
	f.Add(seed(acc, run, `{"run":"j1","status":"suspended","sha256":"beef"}`, // resume rollback
		`{"run":"j1","status":"accepted"}`, `{"run":"j1","status":"suspended","detail":"resume refused: backlog full"}`))
	f.Add(seed(run))                                  // edge before accepted
	f.Add(seed(acc, `{"run":"j1","status":"bogus"}`)) // unknown status
	f.Add([]byte(acc + "\n" + `{"run":"j1","sta`))    // torn tail
	f.Add([]byte("\x00\x01garbage\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "jobs.jsonl")
		if err := os.WriteFile(path, append([]byte(fuzzMetaLine), data...), 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs, err := openWAL(dir, Options{}, nil)
		if err != nil {
			// A refused log must say where it broke.
			if !strings.Contains(err.Error(), "line ") && !strings.Contains(err.Error(), "journal") {
				t.Fatalf("unstructured replay error: %v", err)
			}
			return
		}
		states := map[string]bool{
			StateAccepted: true, StateRunning: true, StateSuspended: true,
			StateComplete: true, StateFailed: true, StateCanceled: true,
			StateFlushed: true,
		}
		for _, r := range recs {
			if !states[r.state] {
				t.Fatalf("record %s replayed into impossible state %q", r.id, r.state)
			}
			if r.sha == "" {
				t.Fatalf("record %s survived replay without a scenario address", r.id)
			}
		}
		w.close()

		// Replay is deterministic: reopening (after the torn tail was
		// truncated) yields the same table.
		w2, recs2, err := openWAL(dir, Options{}, nil)
		if err != nil {
			t.Fatalf("second replay refused what the first accepted: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("replay not deterministic: %d then %d records", len(recs), len(recs2))
		}
		for i := range recs {
			if *recs[i] != *recs2[i] {
				t.Fatalf("replay not deterministic at %d: %+v vs %+v", i, *recs[i], *recs2[i])
			}
		}
		w2.close()
	})
}
