package chaos

import (
	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

// Run is a scenario materialized into everything sim.Run needs: the
// assembled config, workload source, controller, and duration. Callers
// outside the package (the job server, the CLI's repro mode) decorate
// Config — context, watchdog, progress counter, observability, snapshot
// plumbing — and then call sim.Run themselves; the oracles in Execute
// keep using the unexported internals directly.
type Run struct {
	Config     sim.Config
	Source     trace.Source
	Controller sim.Controller
	Duration   float64
}

// BuildRun validates the scenario and assembles its Run. Each call
// builds fresh state (new RNGs, new fault schedule, new workload
// source), so one scenario can be materialized many times — every Run
// executes the same byte-identical simulation.
func (s *Scenario) BuildRun() (*Run, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg, err := s.simConfig()
	if err != nil {
		return nil, err
	}
	ctrl, err := s.controller()
	if err != nil {
		return nil, err
	}
	src, err := s.source(cfg)
	if err != nil {
		return nil, err
	}
	return &Run{Config: cfg, Source: src, Controller: ctrl, Duration: s.Duration}, nil
}
