package chaos

import (
	"testing"

	"hibernator/internal/fleet"
)

// TestGenerateFleetPure checks fleet scenarios are pure functions of
// (seed, index) and stay inside the cheap ranges.
func TestGenerateFleetPure(t *testing.T) {
	for i := 0; i < 32; i++ {
		a, b := GenerateFleet(5, i), GenerateFleet(5, i)
		if a != b {
			t.Fatalf("GenerateFleet(5, %d) not pure:\n%+v\n%+v", i, a, b)
		}
		if a.Arrays < 2 || a.Arrays > 4 {
			t.Fatalf("scenario %d samples %d arrays, want 2..4", i, a.Arrays)
		}
		if a.Duration < 60 || a.Duration > 90 {
			t.Fatalf("scenario %d samples duration %g, want 60..90", i, a.Duration)
		}
		if a.PowerCap < 0 || a.PowerCap > a.Arrays {
			t.Fatalf("scenario %d samples power cap %d with %d arrays", i, a.PowerCap, a.Arrays)
		}
		if a.Tenants < a.Arrays || a.Tenants > 4*a.Arrays {
			t.Fatalf("scenario %d samples %d tenants for %d arrays", i, a.Tenants, a.Arrays)
		}
	}
	if GenerateFleet(5, 0) == GenerateFleet(6, 0) {
		t.Fatal("distinct seeds generated the identical fleet scenario")
	}
}

// TestExecuteFleetPasses holds a handful of generated fleets to every
// fleet oracle; the stock simulator must pass them all.
func TestExecuteFleetPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet oracle soak is seconds-long; skipped under -short")
	}
	for i := 0; i < 3; i++ {
		cfg := GenerateFleet(9, i)
		if fail := ExecuteFleet(cfg); fail != nil {
			t.Fatalf("fleet scenario %d (%+v) failed: %v", i, cfg, fail)
		}
	}
}

// TestExecuteFleetCatchesBadConfig checks the error path stays an error,
// not a panic.
func TestExecuteFleetCatchesBadConfig(t *testing.T) {
	fail := ExecuteFleet(fleet.Config{Arrays: -1})
	if fail == nil || fail.Kind != FailError {
		t.Fatalf("bad config produced %v, want %s", fail, FailError)
	}
}

// TestFirstByteDiff pins the report-diff rendering the fleet oracles use.
func TestFirstByteDiff(t *testing.T) {
	got := firstByteDiff([]byte("a\nb\n"), []byte("a\nc\n"))
	if got != `line 2: "b" != "c"` {
		t.Fatalf("diff line rendering: %s", got)
	}
	got = firstByteDiff([]byte("a\n"), []byte("a\nb\n"))
	if got != `line 2: "" != "b"` {
		t.Fatalf("trailing-line rendering: %s", got)
	}
	got = firstByteDiff([]byte("a"), []byte("a\nb"))
	if got != "lengths differ: 1 vs 3 bytes" {
		t.Fatalf("length rendering: %s", got)
	}
}
