package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hibernator/internal/journal"
	"hibernator/internal/runner"
)

// SoakOptions configures one randomized soak.
type SoakOptions struct {
	Seed int64 // master seed; scenario i derives from (Seed, i)
	N    int   // scenarios to run

	// Workers is the runner pool width (0 = GOMAXPROCS, 1 = sequential).
	// It only changes wall-clock time: the report is byte-identical at
	// any width for fixed Seed and N.
	Workers int

	// SimWorkers, when above 0, forces every scenario's intra-run engine
	// width instead of the generator's per-scenario sample — pinning a
	// soak to the sequential engine (1) or to a fixed parallel width.
	SimWorkers int

	// ShrinkBudget caps the Execute calls spent minimizing each failure
	// (0 = DefaultShrinkBudget). One Execute is three simulation runs.
	ShrinkBudget int

	// OutDir, when non-empty, receives one repro file per failure,
	// named seed<Seed>-<index>.repro.
	OutDir string

	// InjectBug arms the deliberate energy-ledger skew (the PR 4
	// accounting-bug shape) on every generated scenario — a self-test
	// that the find->shrink->replay loop works end to end. The soak is
	// then expected to fail.
	InjectBug bool

	// Journal, when non-empty, records every scenario's verdict durably
	// in an append-only journal at this path, so a killed soak can resume.
	// The journal refuses to mix runs with different Seed/N/SimWorkers/
	// InjectBug settings.
	Journal string

	// Resume skips scenarios whose verdicts the journal already records,
	// reusing the recorded verdict verbatim — the merged report is
	// byte-identical to an uninterrupted soak's.
	Resume bool

	// Context, when non-nil, cancels the soak between scenarios (signal
	// handling in cmd/hibchaos). Verdicts journaled before the
	// cancellation stay durable.
	Context context.Context

	// Log, when non-nil, receives progress lines (wall-clock friendly,
	// NOT deterministic — keep it on stderr, never in the report).
	Log io.Writer
}

// DefaultShrinkBudget bounds shrinking at 120 Execute calls (360 runs).
const DefaultShrinkBudget = 120

// SoakFailure is one failing scenario, minimized.
type SoakFailure struct {
	Index     int      // scenario index within the soak
	Original  Scenario // as generated
	Failure   Failure  // the original verdict
	Shrunk    ShrinkResult
	ReproPath string // "" when OutDir unset
}

// SoakReport aggregates a soak.
type SoakReport struct {
	Seed     int64
	N        int
	Failures []SoakFailure
}

// Ok reports a clean soak.
func (r *SoakReport) Ok() bool { return len(r.Failures) == 0 }

// Soak generates and judges N scenarios on a worker pool, shrinking every
// failure to a minimal reproducer. The error return is infrastructural
// (repro file I/O); oracle failures live in the report.
func Soak(opts SoakOptions) (*SoakReport, error) {
	if opts.N < 0 {
		return nil, fmt.Errorf("chaos: negative scenario count %d", opts.N)
	}
	budget := opts.ShrinkBudget
	if budget == 0 {
		budget = DefaultShrinkBudget
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	var jnl *journal.Journal
	if opts.Journal != "" {
		meta := fmt.Sprintf("soak seed=%d n=%d simworkers=%d injectbug=%t",
			opts.Seed, opts.N, opts.SimWorkers, opts.InjectBug)
		var err error
		if jnl, err = journal.Open(opts.Journal, meta); err != nil {
			return nil, err
		}
		defer jnl.Close()
	}
	type verdict struct {
		fail   *Failure
		sc     Scenario
		shrunk ShrinkResult
	}
	verdicts, err := runner.Map(ctx, opts.Workers, opts.N,
		func(_ context.Context, i int) (verdict, error) {
			id := fmt.Sprintf("scenario-%d", i)
			if jnl != nil && opts.Resume {
				if e, ok := jnl.Done(id); ok {
					var jv journaledVerdict
					if err := json.Unmarshal([]byte(e.Detail), &jv); err == nil {
						v := verdict{fail: jv.Fail, sc: jv.Scenario}
						if jv.Shrunk != nil {
							v.shrunk = *jv.Shrunk
						}
						return v, nil
					}
					// An undecodable verdict is re-run, not trusted.
				}
			}
			if jnl != nil {
				if err := jnl.Append(journal.Entry{Run: id, Status: journal.StatusRunning, Attempt: 1}); err != nil {
					return verdict{}, err
				}
			}
			sc := Generate(opts.Seed, i)
			if opts.SimWorkers > 0 {
				sc.Workers = opts.SimWorkers
			}
			if opts.InjectBug {
				armBug(&sc)
			}
			v := verdict{sc: sc}
			v.fail = Execute(&sc)
			if v.fail != nil {
				if opts.Log != nil {
					fmt.Fprintf(opts.Log, "chaos: scenario %d failed (%s); shrinking\n", i, v.fail.Kind)
				}
				v.shrunk, _ = Shrink(sc, budget)
			} else if opts.Log != nil && (i+1)%100 == 0 {
				fmt.Fprintf(opts.Log, "chaos: %d scenarios judged\n", i+1)
			}
			if jnl != nil {
				jv := journaledVerdict{Fail: v.fail, Scenario: v.sc}
				if v.fail != nil {
					shrunk := v.shrunk
					jv.Shrunk = &shrunk
				}
				blob, err := json.Marshal(jv)
				if err != nil {
					return verdict{}, err
				}
				if err := jnl.Append(journal.Entry{Run: id, Status: journal.StatusDone, Attempt: 1, Detail: string(blob)}); err != nil {
					return verdict{}, err
				}
			}
			return v, nil
		})
	if err != nil {
		return nil, err
	}

	rep := &SoakReport{Seed: opts.Seed, N: opts.N}
	for i, v := range verdicts {
		if v.fail == nil {
			continue
		}
		sf := SoakFailure{Index: i, Original: v.sc, Failure: *v.fail, Shrunk: v.shrunk}
		if opts.OutDir != "" {
			if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
				return nil, err
			}
			sf.ReproPath = filepath.Join(opts.OutDir, fmt.Sprintf("seed%d-%d.repro", opts.Seed, i))
			if err := SaveRepro(sf.ReproPath, &sf.Shrunk.Scenario); err != nil {
				return nil, err
			}
		}
		rep.Failures = append(rep.Failures, sf)
	}
	return rep, nil
}

// journaledVerdict is the JSON payload one scenario's verdict journals
// as: everything the report needs, so a resumed soak reprints the exact
// bytes an uninterrupted one would have.
type journaledVerdict struct {
	Fail     *Failure      `json:"fail,omitempty"`
	Scenario Scenario      `json:"scenario"`
	Shrunk   *ShrinkResult `json:"shrunk,omitempty"`
}

// armBug plants the deliberate energy-ledger skew mid-run on a
// scenario-dependent disk.
func armBug(s *Scenario) {
	s.BugEnergySkew = 12345
	s.BugSkewAt = snap(s.Duration * 0.5)
	s.BugSkewDisk = int(s.Seed) % s.TotalDisks()
	if s.BugSkewDisk < 0 {
		s.BugSkewDisk += s.TotalDisks()
	}
}

// Write renders the report. The output is deterministic: a pure function
// of (Seed, N) and the scenario verdicts — no wall-clock, no ordering
// artifacts — so `hibchaos -seed S -n N` is byte-identical across -par
// widths and across invocations.
func (r *SoakReport) Write(w io.Writer) error {
	fmt.Fprintf(w, "hibchaos soak: seed=%d n=%d\n", r.Seed, r.N)
	fmt.Fprintf(w, "scenarios: %d run, %d ok, %d failed\n", r.N, r.N-len(r.Failures), len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(w, "failure at scenario %d:\n", f.Index)
		fmt.Fprintf(w, "  original: %s\n", f.Original.String())
		fmt.Fprintf(w, "  kind:     %s\n", f.Failure.Kind)
		fmt.Fprintf(w, "  detail:   %s\n", f.Failure.Detail)
		fmt.Fprintf(w, "  shrunk:   %s\n", f.Shrunk.Scenario.String())
		fmt.Fprintf(w, "  shrink:   %d step(s), %d run(s)", len(f.Shrunk.Steps), f.Shrunk.Runs)
		for _, st := range f.Shrunk.Steps {
			fmt.Fprintf(w, "\n            - %s", st)
		}
		fmt.Fprintln(w)
		if f.Shrunk.Failure.Kind != "" && f.Shrunk.Failure.Kind != f.Failure.Kind {
			fmt.Fprintf(w, "  note:     failure kind changed while shrinking (%s -> %s)\n",
				f.Failure.Kind, f.Shrunk.Failure.Kind)
		}
		if f.ReproPath != "" {
			fmt.Fprintf(w, "  repro:    %s\n", f.ReproPath)
		}
	}
	if r.Ok() {
		_, err := fmt.Fprintln(w, "result: ok")
		return err
	}
	_, err := fmt.Fprintf(w, "result: FAIL (%d failing scenario(s))\n", len(r.Failures))
	return err
}
