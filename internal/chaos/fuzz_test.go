package chaos

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseRepro holds the repro parser to two properties: it never
// panics, and anything it accepts re-serializes canonically (write ->
// parse -> write is a fixed point).
func FuzzParseRepro(f *testing.F) {
	// A real repro file as the anchor seed.
	s := Generate(1, 0)
	armBug(&s)
	var buf bytes.Buffer
	if err := WriteRepro(&buf, &s); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	// Nasty corpus: truncations, NaNs, huge numbers, duplicate and
	// unknown keys, events out of range, missing header.
	f.Add("")
	f.Add("# hibchaos repro v1\n")
	f.Add("# hibchaos repro v1\nseed 1\nduration NaN\n")
	f.Add("# hibchaos repro v1\nduration 1e309\n")
	f.Add("# hibchaos repro v1\nseed 99999999999999999999\n")
	f.Add("# hibchaos repro v1\nfault 10,0,latent,5,-5\n")
	f.Add("# hibchaos repro v1\nambient.spinfail 0.5\n")
	f.Add("# hibchaos repro v1\nbug.energy-skew 1 2\n")
	f.Add("seed 1\nduration 60\n")
	f.Add("# hibchaos repro v1\nseed 1\nseed 2\nseed 3\n")
	f.Add("# hibchaos repro v1\ngroup-disks -4\n")

	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseRepro(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("ParseRepro accepted an invalid scenario: %v", err)
		}
		var a bytes.Buffer
		if err := WriteRepro(&a, s); err != nil {
			t.Fatalf("WriteRepro: %v", err)
		}
		s2, err := ParseRepro(bytes.NewReader(a.Bytes()))
		if err != nil {
			t.Fatalf("reparse of own output failed: %v\n%s", err, a.String())
		}
		var b bytes.Buffer
		if err := WriteRepro(&b, s2); err != nil {
			t.Fatalf("WriteRepro: %v", err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("not canonical:\n%s\nvs\n%s", a.String(), b.String())
		}
	})
}
