package chaos

import (
	"fmt"

	"hibernator/internal/array"
	"hibernator/internal/fault"
)

// ShrinkResult is a minimized failing scenario plus the trail that led to
// it. Scenario still fails (possibly with a different failure kind than
// the original — any failure is worth keeping while minimizing), Steps
// records each accepted simplification in order, and Runs counts the
// Execute calls spent, shrinking included.
type ShrinkResult struct {
	Scenario Scenario
	Failure  Failure  // the minimized scenario's failure
	Steps    []string // accepted simplifications, in order
	Runs     int      // Execute calls consumed (1 Execute = 3 sim runs)
}

// Shrink minimizes a failing scenario: it greedily applies the cheapest
// structural simplifications — drop fault events, clear ambient rates,
// shorten the run, shrink the array, simplify policy and workload — and
// accepts a candidate whenever it still fails any oracle, until a full
// pass makes no progress or the budget of Execute calls runs out. The
// process is a pure function of the input scenario, so the same failure
// always shrinks to the same reproducer, at any soak parallelism.
//
// Shrink assumes the caller observed sc failing; it re-establishes the
// failure itself (one Execute) so the result always carries the verdict
// the minimized scenario actually produces.
func Shrink(sc Scenario, budget int) (ShrinkResult, bool) {
	if budget < 1 {
		budget = 1
	}
	res := ShrinkResult{Scenario: sc}
	fail := Execute(&sc)
	res.Runs++
	if fail == nil {
		return res, false // not failing (flaky callers get told, not looped on)
	}
	res.Failure = *fail

	for res.Runs < budget {
		improved := false
		for _, tr := range transforms {
			cands := tr.apply(&res.Scenario)
			for _, cand := range cands {
				if res.Runs >= budget {
					break
				}
				cand := cand
				if cand.Validate() != nil {
					continue
				}
				f := Execute(&cand)
				res.Runs++
				if f == nil {
					continue
				}
				res.Scenario = cand
				res.Failure = *f
				res.Steps = append(res.Steps, tr.describe(&cand))
				improved = true
				break // re-apply this transform against the new minimum
			}
		}
		if !improved {
			break
		}
	}
	return res, true
}

// transform proposes simplification candidates for a scenario. apply
// returns candidates in preference order (most aggressive first);
// describe labels an accepted candidate for the shrink trail.
type transform struct {
	name     string
	apply    func(s *Scenario) []Scenario
	describe func(s *Scenario) string
}

// dropOutOfRangeEvents removes events that no longer target an existing
// disk after the array shrank.
func dropOutOfRangeEvents(s *Scenario) {
	kept := s.Events[:0:0]
	for _, ev := range s.Events {
		if ev.Disk < s.TotalDisks() {
			kept = append(kept, ev)
		}
	}
	s.Events = kept
}

var transforms = []transform{
	{
		name: "drop-events",
		apply: func(s *Scenario) []Scenario {
			n := len(s.Events)
			if n == 0 {
				return nil
			}
			var out []Scenario
			// All of them, each half, then each single event (last first,
			// so timeline suffixes go before prefixes).
			cut := func(lo, hi int) {
				c := *s
				c.Events = append(append([]fault.Event(nil), s.Events[:lo]...), s.Events[hi:]...)
				out = append(out, c)
			}
			cut(0, n)
			if n > 1 {
				cut(n/2, n)
				cut(0, n/2)
			}
			for i := n - 1; i >= 0; i-- {
				cut(i, i+1)
			}
			return out
		},
		describe: func(s *Scenario) string { return fmt.Sprintf("drop fault events -> %d", len(s.Events)) },
	},
	{
		name: "clear-ambient",
		apply: func(s *Scenario) []Scenario {
			if s.Rates == (fault.Rates{}) {
				return nil
			}
			all := *s
			all.Rates = fault.Rates{}
			noTransient := *s
			noTransient.Rates.TransientProb = 0
			noSpin := *s
			noSpin.Rates.SpinUpFailProb = 0
			noSpin.Rates.SpinUpRetries = 0
			return []Scenario{all, noTransient, noSpin}
		},
		describe: func(s *Scenario) string { return fmt.Sprintf("clear ambient rates -> %+v", s.Rates) },
	},
	{
		name: "shorten",
		apply: func(s *Scenario) []Scenario {
			var out []Scenario
			for _, div := range []float64{4, 2} {
				d := snap(s.Duration / div)
				if d >= 30 {
					c := *s
					c.Duration = d
					if c.SnapshotT >= d {
						// Keep the kill-and-restore oracle armed inside the
						// shorter run rather than invalidating the candidate.
						c.SnapshotT = snap(d / 2)
					}
					out = append(out, c)
				}
			}
			return out
		},
		describe: func(s *Scenario) string { return fmt.Sprintf("shorten run -> %gs", s.Duration) },
	},
	{
		name: "fewer-groups",
		apply: func(s *Scenario) []Scenario {
			var out []Scenario
			for g := 1; g < s.Groups; g++ { // most aggressive first: 1, 2, ...
				c := *s
				c.Groups = g
				dropOutOfRangeEvents(&c)
				out = append(out, c)
			}
			return out
		},
		describe: func(s *Scenario) string { return fmt.Sprintf("reduce groups -> %d", s.Groups) },
	},
	{
		name: "fewer-disks",
		apply: func(s *Scenario) []Scenario {
			min := map[string]int{"raid0": 1, "raid1": 2, "raid5": 3}[s.RAID]
			step := 1
			if s.RAID == "raid1" {
				step = 2 // mirror pairs: even counts only
			}
			var out []Scenario
			for d := min; d < s.GroupDisks; d += step {
				c := *s
				c.GroupDisks = d
				dropOutOfRangeEvents(&c)
				out = append(out, c)
			}
			return out
		},
		describe: func(s *Scenario) string { return fmt.Sprintf("reduce group disks -> %d", s.GroupDisks) },
	},
	{
		name: "drop-spares",
		apply: func(s *Scenario) []Scenario {
			if s.SpareDisks == 0 || s.Scheme == "maid" {
				return nil // MAID needs its cache disks; simplify-scheme goes first
			}
			c := *s
			c.SpareDisks = 0
			dropOutOfRangeEvents(&c)
			return []Scenario{c}
		},
		describe: func(s *Scenario) string { return "drop spare disks" },
	},
	{
		name: "simplify-scheme",
		apply: func(s *Scenario) []Scenario {
			if s.Scheme == "base" {
				return nil
			}
			c := *s
			c.Scheme = "base"
			return []Scenario{c}
		},
		describe: func(s *Scenario) string { return "simplify scheme -> base" },
	},
	{
		name: "drop-cache",
		apply: func(s *Scenario) []Scenario {
			if s.CacheMB == 0 {
				return nil
			}
			c := *s
			c.CacheMB = 0
			return []Scenario{c}
		},
		describe: func(s *Scenario) string { return "drop controller cache" },
	},
	{
		name: "drop-goal",
		apply: func(s *Scenario) []Scenario {
			if s.RespGoalMs == 0 {
				return nil
			}
			c := *s
			c.RespGoalMs = 0
			return []Scenario{c}
		},
		describe: func(s *Scenario) string { return "drop response goal" },
	},
	{
		name: "zero-retry",
		apply: func(s *Scenario) []Scenario {
			if s.Retry == (array.RetryPolicy{}) {
				return nil
			}
			c := *s
			c.Retry = array.RetryPolicy{}
			return []Scenario{c}
		},
		describe: func(s *Scenario) string { return "disable retry policy" },
	},
	{
		name: "sequential-engine",
		apply: func(s *Scenario) []Scenario {
			// Dropping to the sequential engine attributes the failure: a
			// workers-mismatch vanishes (the oracle needs Workers>1), so
			// the shrinker keeps parallelism exactly when the parallel
			// engine is implicated; any other failure shrinks to a repro
			// free of the parallel machinery.
			if s.Workers <= 1 {
				return nil
			}
			c := *s
			c.Workers = 1
			return []Scenario{c}
		},
		describe: func(s *Scenario) string { return "sequential engine (workers=1)" },
	},
	{
		name: "drop-snapshot",
		apply: func(s *Scenario) []Scenario {
			// Disarming the kill-and-restore oracle attributes the failure
			// the same way sequential-engine does: a restore-mismatch needs
			// SnapshotT, so the shrinker keeps the snapshot exactly when
			// the snapshot machinery is implicated.
			if s.SnapshotT == 0 {
				return nil
			}
			c := *s
			c.SnapshotT = 0
			return []Scenario{c}
		},
		describe: func(s *Scenario) string { return "drop snapshot capture" },
	},
	{
		name: "single-speed",
		apply: func(s *Scenario) []Scenario {
			if s.Levels == 1 {
				return nil
			}
			c := *s
			c.Levels = 1
			return []Scenario{c}
		},
		describe: func(s *Scenario) string { return "single-speed disks" },
	},
	{
		name: "simplify-workload",
		apply: func(s *Scenario) []Scenario {
			var out []Scenario
			if s.Workload == "cello" {
				c := *s
				c.Workload = "oltp"
				c.Rate = 10
				out = append(out, c)
			}
			if s.Workload == "oltp" && s.Rate > 2 {
				c := *s
				c.Rate = snap(s.Rate / 4)
				if c.Rate < 2 {
					c.Rate = 2
				}
				out = append(out, c)
			}
			return out
		},
		describe: func(s *Scenario) string { return fmt.Sprintf("simplify workload -> %s rate=%g", s.Workload, s.Rate) },
	},
	{
		name: "drop-bug-hook",
		apply: func(s *Scenario) []Scenario {
			if s.BugEnergySkew == 0 {
				return nil
			}
			c := *s
			c.BugEnergySkew, c.BugSkewAt, c.BugSkewDisk = 0, 0, 0
			return []Scenario{c}
		},
		describe: func(s *Scenario) string { return "drop bug hook" },
	},
	{
		name: "simplify-raid",
		apply: func(s *Scenario) []Scenario {
			// Last resort: swap the redundancy scheme for plain striping.
			// Accepted only when the failure is not redundancy-specific.
			if s.RAID == "raid0" {
				return nil
			}
			c := *s
			c.RAID = "raid0"
			if c.GroupDisks > 2 {
				c.GroupDisks = 2
			}
			dropOutOfRangeEvents(&c)
			return []Scenario{c}
		},
		describe: func(s *Scenario) string { return fmt.Sprintf("simplify raid -> raid0 x%d", s.GroupDisks) },
	},
}
