// Package chaos explores the simulator's configuration space with
// randomized-but-valid scenarios and checks each one against independent
// oracles: the armed invariant checker (internal/invariant), repeat
// determinism (the same scenario must reproduce itself bit for bit),
// armed/unarmed equivalence (observing a run must not perturb it), and
// panic freedom. Any scenario that fails an oracle is automatically
// shrunk — fault events dropped, the trace shortened, the array reduced,
// the policy simplified — to a minimal reproducer that serializes to a
// self-contained repro file `hibsim -repro <file>` replays exactly.
//
// The package is the property-testing loop the curated experiments cannot
// be: PR 2's fault injection supplies the adversity, PR 4's invariant
// checker supplies the oracle, and the generator (gen.go) supplies the
// breadth. cmd/hibchaos drives soaks over internal/runner so a clean run
// is also a determinism proof: the soak report is byte-identical across
// -par widths for a fixed seed.
package chaos

import (
	"fmt"
	"math"
	"strings"

	"hibernator/internal/array"
	"hibernator/internal/diskmodel"
	"hibernator/internal/fault"
	"hibernator/internal/hibernator"
	"hibernator/internal/policy"
	"hibernator/internal/raid"
	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

// Scenario is one fully-specified simulation: array shape, disk family,
// workload, policy scheme, retry policy and fault timeline. It is the unit
// the generator samples, the oracles judge, the shrinker minimizes and the
// repro files serialize — every field round-trips through WriteRepro and
// ParseRepro, so a repro file alone reproduces the run exactly.
type Scenario struct {
	Seed     int64
	Duration float64 // simulated seconds

	Scheme string // base | tpm | drpm | pdc | maid | hibernator
	Family string // enterprise | sff
	Levels int    // multi-speed RPM levels (1 = conventional)

	Groups     int
	GroupDisks int
	RAID       string // raid0 | raid1 | raid5
	SpareDisks int

	CacheMB    int64
	RespGoalMs float64 // 0 = no goal
	EpochFrac  float64 // hibernator/pdc epoch as a fraction of Duration (0 = 0.25)

	// Workers is the intra-run parallelism degree (sim.Config.Workers).
	// 0 and 1 both mean the sequential engine — 0 keeps pre-parallelism
	// repro files replaying exactly. Values above 1 engage the
	// group-partitioned engine, whose output the workers-metamorphic
	// oracle holds byte-identical to the sequential run.
	Workers int

	// SnapshotT arms the kill-and-restore oracle: the reference run
	// captures a state snapshot at this simulated time, and an extra run
	// restored from that snapshot must finish with the identical
	// fingerprint — the crash-safety contract of `hibsim -resume-from`.
	// 0 disables the oracle (pre-snapshot repro files replay unchanged).
	SnapshotT float64

	Workload string  // oltp | cello
	Rate     float64 // oltp: mean req/s; cello: day-peak burst rate

	Retry  array.RetryPolicy
	Rates  fault.Rates
	Events []fault.Event

	// BugEnergySkew is a deliberate-fault test hook: at BugSkewAt simulated
	// seconds, BugEnergySkew phantom joules are slipped into the energy
	// ledger of disk (BugSkewDisk mod disk count) — the PR 4 accounting-bug
	// shape. The armed invariant checker must catch it as a disk-energy
	// violation; the hook exists so the whole find->shrink->replay loop is
	// testable end to end. Zero disables it. The hook serializes into repro
	// files like any other field, so an injected-bug repro still replays.
	BugEnergySkew float64
	BugSkewAt     float64
	BugSkewDisk   int
}

// TotalDisks returns every drive the scenario creates (members + spares).
func (s *Scenario) TotalDisks() int { return s.Groups*s.GroupDisks + s.SpareDisks }

// String renders the scenario's shape on one line (for reports).
func (s *Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d dur=%gs %s/%s levels=%d %dx%d %s spares=%d cache=%dMB",
		s.Seed, s.Duration, s.Scheme, s.Family, s.Levels,
		s.Groups, s.GroupDisks, s.RAID, s.SpareDisks, s.CacheMB)
	if s.RespGoalMs > 0 {
		fmt.Fprintf(&b, " goal=%gms", s.RespGoalMs)
	}
	if s.Workers > 1 {
		fmt.Fprintf(&b, " workers=%d", s.Workers)
	}
	if s.SnapshotT > 0 {
		fmt.Fprintf(&b, " snap@%gs", s.SnapshotT)
	}
	fmt.Fprintf(&b, " %s rate=%g", s.Workload, s.Rate)
	if s.Retry != (array.RetryPolicy{}) {
		fmt.Fprintf(&b, " retry=%d/%gs", s.Retry.MaxRetries, s.Retry.OpDeadline)
	}
	if s.Rates.TransientProb > 0 || s.Rates.SpinUpFailProb > 0 {
		fmt.Fprintf(&b, " ambient=%g/%g", s.Rates.TransientProb, s.Rates.SpinUpFailProb)
	}
	fmt.Fprintf(&b, " events=%d", len(s.Events))
	if s.BugEnergySkew != 0 {
		fmt.Fprintf(&b, " bug-skew=%gJ@%gs/d%d", s.BugEnergySkew, s.BugSkewAt, s.BugSkewDisk)
	}
	return b.String()
}

// raidLevel maps the textual RAID level.
func raidLevel(name string) (raid.Level, error) {
	switch name {
	case "raid0":
		return raid.RAID0, nil
	case "raid1":
		return raid.RAID1, nil
	case "raid5":
		return raid.RAID5, nil
	}
	return 0, fmt.Errorf("chaos: unknown RAID level %q", name)
}

// spec builds the disk model the scenario names.
func (s *Scenario) spec() (diskmodel.Spec, error) {
	switch s.Family {
	case "enterprise":
		if s.Levels > 1 {
			return diskmodel.MultiSpeedUltrastar(s.Levels, 3000), nil
		}
		return diskmodel.SingleSpeedUltrastar(), nil
	case "sff":
		return diskmodel.MultiSpeedSFF(s.Levels, 1800), nil
	}
	return diskmodel.Spec{}, fmt.Errorf("chaos: unknown disk family %q", s.Family)
}

// Validate reports the first configuration error. A valid scenario is one
// sim.Run accepts; the generator only emits valid scenarios and the
// shrinker only proposes valid candidates, so Validate is also the guard
// repro-file loading relies on.
func (s *Scenario) Validate() error {
	if !(s.Duration > 0) || math.IsInf(s.Duration, 0) {
		return fmt.Errorf("chaos: duration must be positive and finite, got %g", s.Duration)
	}
	switch s.Scheme {
	case "base", "tpm", "drpm", "pdc", "hibernator":
	case "maid":
		if s.SpareDisks < 1 {
			return fmt.Errorf("chaos: maid needs at least one spare disk")
		}
	default:
		return fmt.Errorf("chaos: unknown scheme %q", s.Scheme)
	}
	if _, err := s.spec(); err != nil {
		return err
	}
	if s.Levels < 1 || s.Levels > 10 {
		return fmt.Errorf("chaos: levels %d outside [1,10]", s.Levels)
	}
	if s.Groups < 1 || s.GroupDisks < 1 {
		return fmt.Errorf("chaos: need positive groups (%d) and disks per group (%d)", s.Groups, s.GroupDisks)
	}
	lvl, err := raidLevel(s.RAID)
	if err != nil {
		return err
	}
	if err := (raid.Geometry{Level: lvl, Disks: s.GroupDisks, StripeUnit: 64 << 10}).Validate(); err != nil {
		return err
	}
	if s.SpareDisks < 0 {
		return fmt.Errorf("chaos: negative spare disks")
	}
	if s.CacheMB < 0 {
		return fmt.Errorf("chaos: negative cache size")
	}
	if s.RespGoalMs < 0 || math.IsNaN(s.RespGoalMs) || math.IsInf(s.RespGoalMs, 0) {
		return fmt.Errorf("chaos: bad response goal %g", s.RespGoalMs)
	}
	if s.EpochFrac < 0 || s.EpochFrac > 1 || math.IsNaN(s.EpochFrac) {
		return fmt.Errorf("chaos: epoch fraction %g outside [0,1]", s.EpochFrac)
	}
	if s.Workers < 0 || s.Workers > 64 {
		return fmt.Errorf("chaos: workers %d outside [0,64]", s.Workers)
	}
	if s.SnapshotT < 0 || math.IsNaN(s.SnapshotT) || math.IsInf(s.SnapshotT, 0) {
		return fmt.Errorf("chaos: bad snapshot time %g", s.SnapshotT)
	}
	if s.SnapshotT >= s.Duration && s.SnapshotT != 0 {
		return fmt.Errorf("chaos: snapshot time %g not inside (0, %g)", s.SnapshotT, s.Duration)
	}
	switch s.Workload {
	case "oltp", "cello":
	default:
		return fmt.Errorf("chaos: unknown workload %q", s.Workload)
	}
	if !(s.Rate > 0) || math.IsInf(s.Rate, 0) {
		return fmt.Errorf("chaos: rate must be positive and finite, got %g", s.Rate)
	}
	if s.Retry.MaxRetries < 0 || s.Retry.SuspectAfter < 0 || s.Retry.EvictAfter < 0 {
		return fmt.Errorf("chaos: negative retry policy counters")
	}
	if s.Retry.Backoff < 0 || s.Retry.BackoffFactor < 0 || s.Retry.OpDeadline < 0 ||
		math.IsNaN(s.Retry.Backoff) || math.IsNaN(s.Retry.BackoffFactor) || math.IsNaN(s.Retry.OpDeadline) {
		return fmt.Errorf("chaos: bad retry policy timings")
	}
	for i, ev := range s.Events {
		if ev.Disk < 0 || ev.Disk >= s.TotalDisks() {
			return fmt.Errorf("chaos: event %d targets disk %d outside [0,%d)", i, ev.Disk, s.TotalDisks())
		}
		if ev.Time < 0 || math.IsNaN(ev.Time) || math.IsInf(ev.Time, 0) {
			return fmt.Errorf("chaos: event %d at bad time %g", i, ev.Time)
		}
	}
	if s.BugEnergySkew != 0 {
		if math.IsNaN(s.BugEnergySkew) || math.IsInf(s.BugEnergySkew, 0) {
			return fmt.Errorf("chaos: bad bug-skew joules %g", s.BugEnergySkew)
		}
		if s.BugSkewAt < 0 || math.IsNaN(s.BugSkewAt) || math.IsInf(s.BugSkewAt, 0) {
			return fmt.Errorf("chaos: bad bug-skew time %g", s.BugSkewAt)
		}
		if s.BugSkewDisk < 0 {
			return fmt.Errorf("chaos: negative bug-skew disk %d", s.BugSkewDisk)
		}
	}
	// A dry-run of the fault schedule's own validation against the real
	// array shape happens inside sim.Run (Schedule.Arm -> Validate); the
	// disk-range check above keeps shrunk candidates from tripping it.
	return nil
}

// simConfig translates the scenario into a sim.Config (no checker armed —
// Execute decides that per run).
func (s *Scenario) simConfig() (sim.Config, error) {
	spec, err := s.spec()
	if err != nil {
		return sim.Config{}, err
	}
	lvl, err := raidLevel(s.RAID)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.Config{
		Spec:               spec,
		Groups:             s.Groups,
		GroupDisks:         s.GroupDisks,
		Level:              lvl,
		ExtentBytes:        64 << 20,
		SpareDisks:         s.SpareDisks,
		CacheBytes:         s.CacheMB << 20,
		RespGoal:           s.RespGoalMs / 1000,
		Seed:               s.Seed,
		ExpectedRotLatency: true,
		Workers:            s.Workers,
	}
	if len(s.Events) > 0 || s.Rates.TransientProb > 0 || s.Rates.SpinUpFailProb > 0 {
		cfg.Faults = &fault.Schedule{
			Events: append([]fault.Event(nil), s.Events...),
			Rates:  s.Rates,
		}
	}
	cfg.Retry = s.Retry
	return cfg, nil
}

// epoch returns the hibernator/pdc re-planning period.
func (s *Scenario) epoch() float64 {
	frac := s.EpochFrac
	if frac == 0 {
		frac = 0.25
	}
	return s.Duration * frac
}

// controller builds the scenario's policy, wrapped with the bug hook when
// armed. The wrapper forwards the optional sim interfaces, so wrapping is
// behavior-preserving for every scheme (including MAID's Router).
func (s *Scenario) controller() (sim.Controller, error) {
	var ctrl sim.Controller
	switch s.Scheme {
	case "base":
		ctrl = policy.NewBase()
	case "tpm":
		ctrl = policy.NewTPM(0)
	case "drpm":
		ctrl = policy.NewDRPM()
	case "pdc":
		p := policy.NewPDC()
		p.Epoch = s.epoch()
		ctrl = p
	case "maid":
		ctrl = policy.NewMAID()
	case "hibernator":
		ctrl = hibernator.New(hibernator.Options{Epoch: s.epoch()})
	default:
		return nil, fmt.Errorf("chaos: unknown scheme %q", s.Scheme)
	}
	if s.BugEnergySkew != 0 {
		ctrl = &bugController{inner: ctrl, at: s.BugSkewAt, joules: s.BugEnergySkew, disk: s.BugSkewDisk}
	}
	return ctrl, nil
}

// source builds the scenario's workload generator sized to the array.
func (s *Scenario) source(cfg sim.Config) (trace.Source, error) {
	vol, err := sim.LogicalBytes(cfg)
	if err != nil {
		return nil, err
	}
	switch s.Workload {
	case "oltp":
		return trace.NewOLTP(trace.OLTPConfig{
			Seed: s.Seed + 11, VolumeBytes: vol, Duration: s.Duration, MaxRate: s.Rate,
		})
	case "cello":
		return trace.NewCello(trace.CelloConfig{
			Seed: s.Seed + 11, VolumeBytes: vol, Duration: s.Duration,
			DayPeriod: s.Duration, DayRate: s.Rate,
		})
	}
	return nil, fmt.Errorf("chaos: unknown workload %q", s.Workload)
}

// bugController wraps the scenario's policy and injects the deliberate
// energy-ledger skew at its scheduled time. It forwards the optional
// observer/router interfaces so wrapping never changes request routing.
type bugController struct {
	inner  sim.Controller
	at     float64
	joules float64
	disk   int
}

// Name implements sim.Controller.
func (b *bugController) Name() string { return b.inner.Name() }

// Init implements sim.Controller: it initializes the wrapped policy and
// schedules the phantom-energy deposit.
func (b *bugController) Init(env *sim.Env) {
	b.inner.Init(env)
	env.Engine.At(b.at, func() {
		disks := env.Array.Disks()
		d := disks[b.disk%len(disks)]
		d.Account().AddEnergy("idle", b.joules)
	})
}

// OnArrival forwards to the wrapped policy when it observes arrivals.
func (b *bugController) OnArrival(r trace.Request) {
	if o, ok := b.inner.(sim.ArrivalObserver); ok {
		o.OnArrival(r)
	}
}

// OnComplete forwards to the wrapped policy when it observes completions.
func (b *bugController) OnComplete(latency float64, write bool) {
	if o, ok := b.inner.(sim.CompletionObserver); ok {
		o.OnComplete(latency, write)
	}
}

// Route forwards to the wrapped policy when it routes requests (MAID).
func (b *bugController) Route(r trace.Request, finish func()) bool {
	if o, ok := b.inner.(sim.Router); ok {
		return o.Route(r, finish)
	}
	return false
}
