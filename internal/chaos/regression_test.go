package chaos

import (
	"path/filepath"
	"testing"
)

// TestCheckedInReprosStayFixed replays every repro under testdata/repros.
// Each file is a shrunk reproducer for a bug the chaos soak found and this
// repo has since fixed, so every one must now pass all oracles. A failure
// here means a fixed bug regressed; run `hibsim -repro <file>` on the
// failing file for the full verdict.
//
// Provenance (hibchaos seed=1 n=5000, pre-fix): all three reproduce PDC
// migrating extents onto an illegal group in a fault-aware run, each via a
// different route into the illegal state —
//
//	seed1-2674: RAID5 group degraded by ambient transient errors evicting
//	            a member (no auto-rebuild, stays degraded)
//	seed1-1911: RAID5 group mid-rebuild (auto-rebuild armed)
//	seed1-2948: RAID0 group degraded by a scripted fail-stop
func TestCheckedInReprosStayFixed(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "repros", "*.repro"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no checked-in repros found under testdata/repros")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			t.Parallel()
			sc, err := LoadRepro(f)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if fail := Execute(sc); fail != nil {
				t.Fatalf("repro failed again (%s): %s", fail.Kind, fail.Detail)
			}
		})
	}
}
