package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hibernator/internal/fault"
)

// mustParseEvent parses a fault-CSV line or fails the test.
func mustParseEvent(t *testing.T, line string) fault.Event {
	t.Helper()
	ev, err := fault.ParseEvent(line)
	if err != nil {
		t.Fatalf("ParseEvent(%q): %v", line, err)
	}
	return ev
}

func soakReportString(t *testing.T, opts SoakOptions) string {
	t.Helper()
	rep, err := Soak(opts)
	if err != nil {
		t.Fatalf("Soak: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.String()
}

// The issue's acceptance criterion: for a fixed seed and n, the soak
// report is byte-identical across -par widths (and across repeat runs).
func TestSoakReportIndependentOfParallelism(t *testing.T) {
	base := SoakOptions{Seed: 11, N: 10}
	seq := base
	seq.Workers = 1
	wide := base
	wide.Workers = 8
	a := soakReportString(t, seq)
	b := soakReportString(t, wide)
	if a != b {
		t.Fatalf("report differs between -par 1 and -par 8:\n%s\nvs\n%s", a, b)
	}
	if c := soakReportString(t, wide); b != c {
		t.Fatalf("report differs across repeat runs:\n%s\nvs\n%s", b, c)
	}
}

// The injected-bug self test, end to end: the soak must catch the skew in
// every scenario, shrink each to the acceptance bounds, and write repro
// files that still fail when replayed from disk (the hibsim -repro path).
func TestSoakFindsAndShrinksInjectedBug(t *testing.T) {
	dir := t.TempDir()
	rep, err := Soak(SoakOptions{Seed: 1, N: 3, Workers: 4, InjectBug: true, OutDir: dir})
	if err != nil {
		t.Fatalf("Soak: %v", err)
	}
	if len(rep.Failures) != 3 {
		t.Fatalf("injected bug caught in %d/3 scenarios", len(rep.Failures))
	}
	for _, f := range rep.Failures {
		if f.Failure.Kind != FailInvariant || !strings.Contains(f.Failure.Detail, "disk-energy") {
			t.Errorf("scenario %d: want disk-energy invariant failure, got %s: %s",
				f.Index, f.Failure.Kind, f.Failure.Detail)
		}
		m := f.Shrunk.Scenario
		if len(m.Events) > 2 || m.TotalDisks() > 4 {
			t.Errorf("scenario %d: shrunk to %d events / %d disks, want <= 2 / <= 4",
				f.Index, len(m.Events), m.TotalDisks())
		}
		// Replay from the file, exactly as `hibsim -repro` does.
		got, err := LoadRepro(f.ReproPath)
		if err != nil {
			t.Fatalf("scenario %d: %v", f.Index, err)
		}
		fail := Execute(got)
		if fail == nil {
			t.Errorf("scenario %d: repro file no longer fails", f.Index)
		} else if *fail != f.Shrunk.Failure {
			t.Errorf("scenario %d: replay verdict %v, soak saw %v", f.Index, fail, f.Shrunk.Failure)
		}
	}
}

func TestSoakRejectsNegativeN(t *testing.T) {
	if _, err := Soak(SoakOptions{N: -1}); err == nil {
		t.Fatal("negative N accepted")
	}
}

func TestSoakWritesOneReproPerFailure(t *testing.T) {
	dir := t.TempDir()
	rep, err := Soak(SoakOptions{Seed: 2, N: 2, InjectBug: true, OutDir: dir})
	if err != nil {
		t.Fatalf("Soak: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(rep.Failures) {
		t.Fatalf("%d repro files for %d failures", len(ents), len(rep.Failures))
	}
	for _, f := range rep.Failures {
		if filepath.Dir(f.ReproPath) != dir {
			t.Errorf("repro path %s outside %s", f.ReproPath, dir)
		}
	}
}
