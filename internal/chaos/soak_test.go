package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hibernator/internal/fault"
)

// mustParseEvent parses a fault-CSV line or fails the test.
func mustParseEvent(t *testing.T, line string) fault.Event {
	t.Helper()
	ev, err := fault.ParseEvent(line)
	if err != nil {
		t.Fatalf("ParseEvent(%q): %v", line, err)
	}
	return ev
}

func soakReportString(t *testing.T, opts SoakOptions) string {
	t.Helper()
	rep, err := Soak(opts)
	if err != nil {
		t.Fatalf("Soak: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.String()
}

// The issue's acceptance criterion: for a fixed seed and n, the soak
// report is byte-identical across -par widths (and across repeat runs).
func TestSoakReportIndependentOfParallelism(t *testing.T) {
	base := SoakOptions{Seed: 11, N: 10}
	seq := base
	seq.Workers = 1
	wide := base
	wide.Workers = 8
	a := soakReportString(t, seq)
	b := soakReportString(t, wide)
	if a != b {
		t.Fatalf("report differs between -par 1 and -par 8:\n%s\nvs\n%s", a, b)
	}
	if c := soakReportString(t, wide); b != c {
		t.Fatalf("report differs across repeat runs:\n%s\nvs\n%s", b, c)
	}
}

// TestSoakJournalResume: a journaled soak resumed from its own journal
// reprints the identical report without re-running any scenario — the
// long-soak crash-recovery contract.
func TestSoakJournalResume(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "soak.jsonl")
	// InjectBug makes every scenario fail, so the journal also has to
	// round-trip shrink results, not just clean verdicts.
	opts := SoakOptions{Seed: 1, N: 3, Workers: 2, InjectBug: true, ShrinkBudget: 10, Journal: jpath}
	first := soakReportString(t, opts)

	before, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	opts.Resume = true
	second := soakReportString(t, opts)
	if first != second {
		t.Fatalf("resumed report diverged:\n%s\nvs\n%s", first, second)
	}
	after, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("resume re-ran journaled scenarios (journal grew %d -> %d bytes)", before.Size(), after.Size())
	}

	// A journal written under different options must refuse to resume.
	opts.Seed = 2
	if _, err := Soak(opts); err == nil || !strings.Contains(err.Error(), "seed=1") {
		t.Fatalf("want meta mismatch naming recorded config, got %v", err)
	}
}

// The injected-bug self test, end to end: the soak must catch the skew in
// every scenario, shrink each to the acceptance bounds, and write repro
// files that still fail when replayed from disk (the hibsim -repro path).
func TestSoakFindsAndShrinksInjectedBug(t *testing.T) {
	dir := t.TempDir()
	rep, err := Soak(SoakOptions{Seed: 1, N: 3, Workers: 4, InjectBug: true, OutDir: dir})
	if err != nil {
		t.Fatalf("Soak: %v", err)
	}
	if len(rep.Failures) != 3 {
		t.Fatalf("injected bug caught in %d/3 scenarios", len(rep.Failures))
	}
	for _, f := range rep.Failures {
		if f.Failure.Kind != FailInvariant || !strings.Contains(f.Failure.Detail, "disk-energy") {
			t.Errorf("scenario %d: want disk-energy invariant failure, got %s: %s",
				f.Index, f.Failure.Kind, f.Failure.Detail)
		}
		m := f.Shrunk.Scenario
		if len(m.Events) > 2 || m.TotalDisks() > 4 {
			t.Errorf("scenario %d: shrunk to %d events / %d disks, want <= 2 / <= 4",
				f.Index, len(m.Events), m.TotalDisks())
		}
		// Replay from the file, exactly as `hibsim -repro` does.
		got, err := LoadRepro(f.ReproPath)
		if err != nil {
			t.Fatalf("scenario %d: %v", f.Index, err)
		}
		fail := Execute(got)
		if fail == nil {
			t.Errorf("scenario %d: repro file no longer fails", f.Index)
		} else if *fail != f.Shrunk.Failure {
			t.Errorf("scenario %d: replay verdict %v, soak saw %v", f.Index, fail, f.Shrunk.Failure)
		}
	}
}

func TestSoakRejectsNegativeN(t *testing.T) {
	if _, err := Soak(SoakOptions{N: -1}); err == nil {
		t.Fatal("negative N accepted")
	}
}

func TestSoakWritesOneReproPerFailure(t *testing.T) {
	dir := t.TempDir()
	rep, err := Soak(SoakOptions{Seed: 2, N: 2, InjectBug: true, OutDir: dir})
	if err != nil {
		t.Fatalf("Soak: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(rep.Failures) {
		t.Fatalf("%d repro files for %d failures", len(ents), len(rep.Failures))
	}
	for _, f := range rep.Failures {
		if filepath.Dir(f.ReproPath) != dir {
			t.Errorf("repro path %s outside %s", f.ReproPath, dir)
		}
	}
}
