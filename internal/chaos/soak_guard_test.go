package chaos

import (
	"strconv"
	"testing"
)

// TestPreviouslyFailingSoakIndicesNowPass re-judges a spread of the
// scenario indices that failed the reference soak (hibchaos seed=1
// n=5000) before the PDC migrate-legality fix. The full soak is too slow
// for `go test`, so this pins the shortest originally-failing scenarios
// across both workloads and all three RAID levels; EXPERIMENTS.md records
// the full-soak expectation (`hibchaos -n 5000 -seed 1` must exit 0).
func TestPreviouslyFailingSoakIndicesNowPass(t *testing.T) {
	if testing.Short() {
		t.Skip("re-judges eight 60s scenarios; skipped in -short")
	}
	// All dur=60s members of the pre-fix failing set {29, 126, ... 4962}.
	for _, index := range []int{707, 716, 2707, 2948, 3012, 3069, 4424, 4326} {
		index := index
		t.Run("index-"+strconv.Itoa(index), func(t *testing.T) {
			t.Parallel()
			sc := Generate(1, index)
			if fail := Execute(&sc); fail != nil {
				t.Fatalf("seed=1 index=%d regressed (%s): %s", index, fail.Kind, fail.Detail)
			}
		})
	}
}
