package chaos

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"hibernator/internal/atomicio"
	"hibernator/internal/fault"
)

// Repro files are self-contained scenario descriptions: one "key value"
// pair per line, fault events in the fault-CSV syntax behind a "fault "
// prefix, '#' comments and blank lines ignored. WriteRepro always emits
// every field in a fixed order, so files are canonical and diffable;
// ParseRepro accepts any order, applies no hidden defaults beyond the
// zero value, and validates the result, so a hand-edited file either
// replays exactly or fails with the offending line number.

// reproHeader is the required first non-blank line of a repro file.
const reproHeader = "# hibchaos repro v1"

// WriteRepro serializes the scenario.
func WriteRepro(w io.Writer, s *Scenario) error {
	bw := bufio.NewWriter(w)
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fmt.Fprintln(bw, reproHeader)
	fmt.Fprintf(bw, "# %s\n", s.String())
	fmt.Fprintf(bw, "seed %d\n", s.Seed)
	fmt.Fprintf(bw, "duration %s\n", g(s.Duration))
	fmt.Fprintf(bw, "scheme %s\n", s.Scheme)
	fmt.Fprintf(bw, "family %s\n", s.Family)
	fmt.Fprintf(bw, "levels %d\n", s.Levels)
	fmt.Fprintf(bw, "groups %d\n", s.Groups)
	fmt.Fprintf(bw, "group-disks %d\n", s.GroupDisks)
	fmt.Fprintf(bw, "raid %s\n", s.RAID)
	fmt.Fprintf(bw, "spare-disks %d\n", s.SpareDisks)
	fmt.Fprintf(bw, "cache-mb %d\n", s.CacheMB)
	fmt.Fprintf(bw, "goal-ms %s\n", g(s.RespGoalMs))
	fmt.Fprintf(bw, "epoch-frac %s\n", g(s.EpochFrac))
	fmt.Fprintf(bw, "workers %d\n", s.Workers)
	fmt.Fprintf(bw, "snapshot-t %s\n", g(s.SnapshotT))
	fmt.Fprintf(bw, "workload %s\n", s.Workload)
	fmt.Fprintf(bw, "rate %s\n", g(s.Rate))
	fmt.Fprintf(bw, "retry.max-retries %d\n", s.Retry.MaxRetries)
	fmt.Fprintf(bw, "retry.backoff %s\n", g(s.Retry.Backoff))
	fmt.Fprintf(bw, "retry.backoff-factor %s\n", g(s.Retry.BackoffFactor))
	fmt.Fprintf(bw, "retry.op-deadline %s\n", g(s.Retry.OpDeadline))
	fmt.Fprintf(bw, "retry.suspect-after %d\n", s.Retry.SuspectAfter)
	fmt.Fprintf(bw, "retry.evict-after %d\n", s.Retry.EvictAfter)
	fmt.Fprintf(bw, "retry.auto-rebuild %t\n", s.Retry.AutoRebuild)
	fmt.Fprintf(bw, "ambient.transient %s\n", g(s.Rates.TransientProb))
	fmt.Fprintf(bw, "ambient.spinfail %s %d\n", g(s.Rates.SpinUpFailProb), s.Rates.SpinUpRetries)
	for _, ev := range s.Events {
		fmt.Fprintf(bw, "fault %s\n", ev.Format())
	}
	if s.BugEnergySkew != 0 {
		fmt.Fprintf(bw, "bug.energy-skew %s %s %d\n", g(s.BugEnergySkew), g(s.BugSkewAt), s.BugSkewDisk)
	}
	return bw.Flush()
}

// SaveRepro writes the scenario to a file atomically: a soak killed
// mid-write never leaves a truncated repro that replays a different
// scenario.
func SaveRepro(path string, s *Scenario) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return WriteRepro(w, s)
	})
}

// LoadRepro reads and validates a repro file.
func LoadRepro(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ParseRepro(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// ParseRepro reads a repro stream. Errors carry the 1-based line number.
func ParseRepro(r io.Reader) (*Scenario, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxReproLine)
	s := &Scenario{}
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !sawHeader {
			if line != reproHeader {
				return nil, fmt.Errorf("line %d: not a hibchaos repro (want %q first)", lineNo, reproHeader)
			}
			sawHeader = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		key, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		if err := s.setField(key, rest); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return nil, fmt.Errorf("line %d: line exceeds %d bytes", lineNo+1, maxReproLine)
		}
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("empty repro (want %q first)", reproHeader)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// maxReproLine bounds one repro line (same rationale as the fault CSV).
const maxReproLine = 64 << 10

// setField applies one "key value" pair.
func (s *Scenario) setField(key, val string) error {
	pInt := func(dst *int) error {
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("%s: bad integer %q", key, val)
		}
		*dst = v
		return nil
	}
	pInt64 := func(dst *int64) error {
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("%s: bad integer %q", key, val)
		}
		*dst = v
		return nil
	}
	pFloat := func(dst *float64) error {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%s: bad number %q", key, val)
		}
		*dst = v
		return nil
	}
	pString := func(dst *string) error {
		if val == "" || strings.ContainsAny(val, " \t") {
			return fmt.Errorf("%s: bad value %q", key, val)
		}
		*dst = val
		return nil
	}
	switch key {
	case "seed":
		return pInt64(&s.Seed)
	case "duration":
		return pFloat(&s.Duration)
	case "scheme":
		return pString(&s.Scheme)
	case "family":
		return pString(&s.Family)
	case "levels":
		return pInt(&s.Levels)
	case "groups":
		return pInt(&s.Groups)
	case "group-disks":
		return pInt(&s.GroupDisks)
	case "raid":
		return pString(&s.RAID)
	case "spare-disks":
		return pInt(&s.SpareDisks)
	case "cache-mb":
		return pInt64(&s.CacheMB)
	case "goal-ms":
		return pFloat(&s.RespGoalMs)
	case "epoch-frac":
		return pFloat(&s.EpochFrac)
	case "workers":
		return pInt(&s.Workers)
	case "snapshot-t":
		return pFloat(&s.SnapshotT)
	case "workload":
		return pString(&s.Workload)
	case "rate":
		return pFloat(&s.Rate)
	case "retry.max-retries":
		return pInt(&s.Retry.MaxRetries)
	case "retry.backoff":
		return pFloat(&s.Retry.Backoff)
	case "retry.backoff-factor":
		return pFloat(&s.Retry.BackoffFactor)
	case "retry.op-deadline":
		return pFloat(&s.Retry.OpDeadline)
	case "retry.suspect-after":
		return pInt(&s.Retry.SuspectAfter)
	case "retry.evict-after":
		return pInt(&s.Retry.EvictAfter)
	case "retry.auto-rebuild":
		switch val {
		case "true":
			s.Retry.AutoRebuild = true
		case "false":
			s.Retry.AutoRebuild = false
		default:
			return fmt.Errorf("%s: want true or false, got %q", key, val)
		}
		return nil
	case "ambient.transient":
		return pFloat(&s.Rates.TransientProb)
	case "ambient.spinfail":
		prob, retries, ok := strings.Cut(val, " ")
		if !ok {
			return fmt.Errorf("%s: want \"prob retries\", got %q", key, val)
		}
		p, err := strconv.ParseFloat(prob, 64)
		if err != nil || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("%s: bad probability %q", key, prob)
		}
		n, err := strconv.Atoi(strings.TrimSpace(retries))
		if err != nil {
			return fmt.Errorf("%s: bad retries %q", key, retries)
		}
		s.Rates.SpinUpFailProb, s.Rates.SpinUpRetries = p, n
		return nil
	case "fault":
		ev, err := fault.ParseEvent(val)
		if err != nil {
			return fmt.Errorf("fault: %w", err)
		}
		s.Events = append(s.Events, ev)
		return nil
	case "bug.energy-skew":
		parts := strings.Fields(val)
		if len(parts) != 3 {
			return fmt.Errorf("%s: want \"joules time disk\", got %q", key, val)
		}
		j, err1 := strconv.ParseFloat(parts[0], 64)
		t, err2 := strconv.ParseFloat(parts[1], 64)
		d, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("%s: bad value %q", key, val)
		}
		s.BugEnergySkew, s.BugSkewAt, s.BugSkewDisk = j, t, d
		return nil
	}
	return fmt.Errorf("unknown key %q", key)
}
