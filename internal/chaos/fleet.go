package chaos

import (
	"bytes"
	"fmt"
	"math/rand"

	"hibernator/internal/fleet"
)

// Fleet-scope failure kinds, in the order the oracles run.
const (
	// FailFleetConservation marks a fleet whose energy roll-up broke: a
	// per-array invariant violation surfaced in the report, or the fleet
	// total disagreed with the state-ledger re-derivation.
	FailFleetConservation = "fleet-conservation"
	// FailFleetRepeat marks a fleet whose identical rerun rendered
	// different report bytes.
	FailFleetRepeat = "fleet-repeat-mismatch"
	// FailFleetPar marks a fleet whose report bytes depended on the pool
	// width — the determinism contract cmd/hibfleet advertises.
	FailFleetPar = "fleet-par-mismatch"
)

// GenerateFleet samples the index-th fleet scenario of a soak seeded with
// seed: deliberately tiny fleets (2-4 arrays, 1-2 simulated minutes) so
// one scenario stays cheap, but with the power cap, tenant skew and
// intra-run parallelism all in play. The result is a pure function of
// (seed, index).
func GenerateFleet(seed int64, index int) fleet.Config {
	rng := rand.New(rand.NewSource(mix(seed, int64(index)^0x0F1EE7)))
	cfg := fleet.Config{
		Arrays:   2 + rng.Intn(3),
		Seed:     int64(rng.Uint64() >> 1),
		Duration: float64(choice(rng, []int{60, 90})),
	}
	cfg.Tenants = cfg.Arrays * (1 + rng.Intn(4))
	if rng.Intn(2) == 0 {
		cfg.PowerCap = 1 + rng.Intn(cfg.Arrays)
	}
	if rng.Intn(3) == 0 {
		cfg.SimWorkers = choice(rng, []int{2, 4})
	}
	return cfg
}

// ExecuteFleet judges one fleet scenario against the fleet oracles, in
// deterministic order:
//
//  1. a checked run must be infrastructurally clean, violate no per-array
//     invariant, and pass the fleet-scope conservation check;
//  2. repeating the run must render byte-identical report bytes;
//  3. running the same fleet at pool widths 1 and 4 must render the same
//     bytes — the -par determinism contract of cmd/hibfleet.
//
// A nil return means the scenario passed. ExecuteFleet is a pure function
// of the config, like Execute.
func ExecuteFleet(cfg fleet.Config) *Failure {
	cfg.Check = true
	cfg.Par = 1
	rep, err := fleet.Run(cfg)
	if err != nil {
		return &Failure{Kind: FailError, Detail: err.Error()}
	}
	if len(rep.Violations) > 0 {
		n := len(rep.Violations)
		if n > 3 {
			rep.Violations = rep.Violations[:3]
		}
		detail := ""
		for i, v := range rep.Violations {
			if i > 0 {
				detail += " | "
			}
			detail += v
		}
		if n > len(rep.Violations) {
			detail += fmt.Sprintf(" (+%d more)", n-len(rep.Violations))
		}
		return &Failure{Kind: FailFleetConservation, Detail: detail}
	}
	if !rep.ConservationOK {
		return &Failure{Kind: FailFleetConservation,
			Detail: fmt.Sprintf("fleet total %g J != ledger re-derivation %g J", rep.TotalEnergyJ, rep.LedgerEnergyJ)}
	}
	first := rep.Bytes()

	again, err := fleet.Run(cfg)
	if err != nil {
		return &Failure{Kind: FailFleetRepeat, Detail: "rerun failed where first run passed: " + err.Error()}
	}
	if !bytes.Equal(first, again.Bytes()) {
		return &Failure{Kind: FailFleetRepeat, Detail: firstByteDiff(first, again.Bytes())}
	}

	cfg.Par = 4
	wide, err := fleet.Run(cfg)
	if err != nil {
		return &Failure{Kind: FailFleetPar, Detail: "par=4 run failed where par=1 passed: " + err.Error()}
	}
	if !bytes.Equal(first, wide.Bytes()) {
		return &Failure{Kind: FailFleetPar, Detail: "par=1 vs 4: " + firstByteDiff(first, wide.Bytes())}
	}
	return nil
}

// firstByteDiff names the first line two report renderings disagree on
// (deterministic detail for soak reports).
func firstByteDiff(a, b []byte) string {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return fmt.Sprintf("line %d: %q != %q", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d bytes", len(a), len(b))
}
