package chaos

import (
	"reflect"
	"testing"
)

// The generator's contract: every sampled scenario is valid, and sampling
// is a pure function of (seed, index).

func TestGenerateAlwaysValid(t *testing.T) {
	for _, seed := range []int64{1, 7, -3, 1 << 40} {
		for i := 0; i < 300; i++ {
			s := Generate(seed, i)
			if err := s.Validate(); err != nil {
				t.Fatalf("Generate(%d, %d) invalid: %v\n%s", seed, i, err, s.String())
			}
			if s.Scheme == "maid" && s.SpareDisks < 1 {
				t.Fatalf("Generate(%d, %d): maid without spares", seed, i)
			}
			for j, ev := range s.Events {
				if ev.Disk < 0 || ev.Disk >= s.TotalDisks() {
					t.Fatalf("Generate(%d, %d): event %d targets disk %d of %d", seed, i, j, ev.Disk, s.TotalDisks())
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 50; i++ {
		a := Generate(42, i)
		b := Generate(42, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Generate(42, %d) not deterministic:\n%s\n%s", i, a.String(), b.String())
		}
	}
}

func TestGenerateIndicesDiffer(t *testing.T) {
	// Neighboring indices must not collapse to the same scenario (a seed
	// derivation bug would make the whole soak re-test one configuration).
	distinct := map[string]bool{}
	for i := 0; i < 40; i++ {
		s := Generate(9, i)
		distinct[s.String()] = true
	}
	if len(distinct) < 35 {
		t.Fatalf("only %d distinct scenarios in 40 indices", len(distinct))
	}
}

func TestSnapQuantizesToMilliseconds(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{0, 0}, {1.23456, 1.234}, {59.9999, 59.999}, {100, 100},
	} {
		if got := snap(tc.in); got != tc.want {
			t.Errorf("snap(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
}
