package chaos

import (
	"reflect"
	"testing"
)

// The acceptance bar from the issue: an injected PR 4-style energy-ledger
// skew must shrink to at most 2 fault events and at most 4 disks, and the
// shrunk scenario must still fail deterministically.

func TestShrinkInjectedBugToMinimal(t *testing.T) {
	for _, idx := range []int{0, 1, 2} {
		s := Generate(1, idx)
		armBug(&s)
		res, ok := Shrink(s, DefaultShrinkBudget)
		if !ok {
			t.Fatalf("index %d: scenario with injected bug did not fail", idx)
		}
		m := res.Scenario
		if len(m.Events) > 2 {
			t.Errorf("index %d: shrunk to %d fault events, want <= 2", idx, len(m.Events))
		}
		if m.TotalDisks() > 4 {
			t.Errorf("index %d: shrunk to %d disks, want <= 4", idx, m.TotalDisks())
		}
		if m.BugEnergySkew == 0 {
			t.Errorf("index %d: shrinking dropped the bug hook but still fails?", idx)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("index %d: shrunk scenario invalid: %v", idx, err)
		}
		if fail := Execute(&m); fail == nil {
			t.Errorf("index %d: shrunk scenario no longer fails", idx)
		}
	}
}

func TestShrinkDeterministic(t *testing.T) {
	s := Generate(2, 5)
	armBug(&s)
	a, okA := Shrink(s, DefaultShrinkBudget)
	b, okB := Shrink(s, DefaultShrinkBudget)
	if okA != okB || !reflect.DeepEqual(a, b) {
		t.Fatalf("Shrink not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

func TestShrinkPassingScenarioRefuses(t *testing.T) {
	s := tinyScenario()
	if _, ok := Shrink(s, 10); ok {
		t.Fatal("Shrink claimed a passing scenario fails")
	}
}

func TestShrinkRespectsBudget(t *testing.T) {
	s := Generate(1, 0)
	armBug(&s)
	res, ok := Shrink(s, 5)
	if !ok {
		t.Fatal("scenario did not fail")
	}
	if res.Runs > 5 {
		t.Fatalf("budget 5 exceeded: %d runs", res.Runs)
	}
}

func TestDropOutOfRangeEvents(t *testing.T) {
	s := tinyScenario()
	s.Events = append(s.Events,
		mustParseEvent(t, "1,0,failstop"),
		mustParseEvent(t, "2,7,failstop"),
	)
	dropOutOfRangeEvents(&s) // 2 disks: event on disk 7 must go
	if len(s.Events) != 1 || s.Events[0].Disk != 0 {
		t.Fatalf("kept %+v", s.Events)
	}
}
