package chaos

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// Repro files must round-trip every scenario field exactly: the file is
// the reproducer, so a lossy field would replay a different run.

func TestReproRoundTrip(t *testing.T) {
	for i := 0; i < 60; i++ {
		s := Generate(3, i)
		if i%2 == 0 {
			armBug(&s)
		}
		var buf bytes.Buffer
		if err := WriteRepro(&buf, &s); err != nil {
			t.Fatalf("WriteRepro: %v", err)
		}
		got, err := ParseRepro(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ParseRepro(index %d): %v\n%s", i, err, buf.String())
		}
		// Events: nil and empty both serialize to no lines; normalize.
		want := s
		if len(want.Events) == 0 {
			want.Events = nil
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("round-trip mismatch (index %d):\n got %+v\nwant %+v", i, *got, want)
		}
		// Canonical: re-serializing the parse is byte-identical.
		var buf2 bytes.Buffer
		if err := WriteRepro(&buf2, got); err != nil {
			t.Fatalf("WriteRepro(reparse): %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("repro not canonical (index %d):\n%s\nvs\n%s", i, buf.String(), buf2.String())
		}
	}
}

func TestSaveLoadRepro(t *testing.T) {
	s := Generate(5, 17)
	path := filepath.Join(t.TempDir(), "x.repro")
	if err := SaveRepro(path, &s); err != nil {
		t.Fatalf("SaveRepro: %v", err)
	}
	got, err := LoadRepro(path)
	if err != nil {
		t.Fatalf("LoadRepro: %v", err)
	}
	if got.String() != s.String() {
		t.Fatalf("loaded %s, want %s", got.String(), s.String())
	}
}

func TestParseReproErrors(t *testing.T) {
	valid := func(extra string) string {
		s := Generate(1, 0)
		var buf bytes.Buffer
		WriteRepro(&buf, &s)
		return buf.String() + extra
	}
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "empty repro"},
		{"no header", "seed 1\n", "not a hibchaos repro"},
		{"unknown key", valid("frobnicate 3\n"), `unknown key "frobnicate"`},
		{"bad integer", valid("levels many\n"), "bad integer"},
		{"nan duration", valid("duration NaN\n"), "bad number"},
		{"inf rate", valid("rate +Inf\n"), "bad number"},
		{"bad bool", valid("retry.auto-rebuild maybe\n"), "want true or false"},
		{"bad fault line", valid("fault 10,0,meteor\n"), "fault:"},
		{"event disk out of range", valid("fault 10,9999,failstop\n"), "outside"},
		{"bad scheme", valid("scheme warp\n"), "unknown scheme"},
		{"raid1 odd disks", valid("raid raid1\ngroup-disks 3\n"), "raid"},
		{"negative duration", valid("duration -5\n"), "duration must be positive"},
		{"overlong line", "# hibchaos repro v1\nseed " + strings.Repeat("9", maxReproLine+10) + "\n", "exceeds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseRepro(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("ParseRepro accepted %q", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseReproLineNumbers(t *testing.T) {
	in := "# hibchaos repro v1\nseed 1\nlevels banana\n"
	_, err := ParseRepro(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line 3 in error, got %v", err)
	}
}
