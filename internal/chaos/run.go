package chaos

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"

	"hibernator/internal/invariant"
	"hibernator/internal/sim"
	"hibernator/internal/snapshot"
)

// Fingerprint collapses a run to the scalars any accounting or determinism
// bug would disturb. Comparison is exact (==): the simulator is
// deterministic, so two runs of the same scenario must agree bit for bit.
type Fingerprint struct {
	Requests  uint64
	CacheHits uint64
	MeanResp  float64
	P95Resp   float64
	P99Resp   float64
	MaxResp   float64
	Energy    float64

	SpinUps, SpinDowns, LevelShifts uint64
	Migrations, MigratedBytes       uint64
	Destages                        uint64
	GoalViolationFrac               float64

	Faults sim.FaultSummary
}

// FingerprintOf extracts the comparison scalars from a run — the
// canonical "what this simulation computed" record the job server and
// the load harness byte-compare across execution paths.
func FingerprintOf(r *sim.Result) Fingerprint { return fingerprintOf(r) }

// fingerprintOf extracts the comparison scalars from a run.
func fingerprintOf(r *sim.Result) Fingerprint {
	return Fingerprint{
		Requests: r.Requests, CacheHits: r.CacheHits,
		MeanResp: r.MeanResp, P95Resp: r.P95Resp, P99Resp: r.P99Resp, MaxResp: r.MaxResp,
		Energy:  r.Energy,
		SpinUps: r.SpinUps, SpinDowns: r.SpinDowns, LevelShifts: r.LevelShifts,
		Migrations: r.Migrations, MigratedBytes: r.MigratedBytes,
		Destages:          r.Destages,
		GoalViolationFrac: r.GoalViolationFrac,
		Faults:            r.Faults,
	}
}

// diff names the first fields two fingerprints disagree on (for reports).
func (f Fingerprint) diff(g Fingerprint) string {
	var out []string
	add := func(name string, a, b any) {
		if len(out) < 4 && a != b {
			out = append(out, fmt.Sprintf("%s %v != %v", name, a, b))
		}
	}
	add("requests", f.Requests, g.Requests)
	add("cache-hits", f.CacheHits, g.CacheHits)
	add("mean-resp", f.MeanResp, g.MeanResp)
	add("p95", f.P95Resp, g.P95Resp)
	add("p99", f.P99Resp, g.P99Resp)
	add("max-resp", f.MaxResp, g.MaxResp)
	add("energy", f.Energy, g.Energy)
	add("spin-ups", f.SpinUps, g.SpinUps)
	add("spin-downs", f.SpinDowns, g.SpinDowns)
	add("level-shifts", f.LevelShifts, g.LevelShifts)
	add("migrations", f.Migrations, g.Migrations)
	add("migrated-bytes", f.MigratedBytes, g.MigratedBytes)
	add("destages", f.Destages, g.Destages)
	add("goal-violations", f.GoalViolationFrac, g.GoalViolationFrac)
	add("faults", f.Faults, g.Faults)
	if len(out) == 0 {
		return "fingerprints agree"
	}
	return strings.Join(out, "; ")
}

// Failure kinds, in the order the oracles run.
const (
	FailError     = "error"            // sim.Run rejected the scenario
	FailPanic     = "panic"            // the simulation panicked
	FailInvariant = "invariant"        // the armed checker found violations
	FailRepeat    = "repeat-mismatch"  // an identical rerun diverged
	FailArmed     = "armed-mismatch"   // arming the checker changed the run
	FailWorkers   = "workers-mismatch" // parallel run diverged from sequential
	FailRestore   = "restore-mismatch" // snapshot+restore diverged from straight-through
)

// Failure describes one oracle verdict against a scenario. Detail is
// deterministic (no wall-clock, no addresses, no goroutine stacks), so
// soak reports containing it are byte-identical across runs and -par
// widths; the panicking frame's file:line is included for debugging.
type Failure struct {
	Kind   string
	Detail string
}

// Error implements error so failures flow through error plumbing.
func (f *Failure) Error() string { return f.Kind + ": " + f.Detail }

// runOnce executes the scenario once, optionally with the invariant
// checker armed, converting panics anywhere in the simulation into a
// FailPanic failure.
func (s *Scenario) runOnce(armed bool) (*sim.Result, *invariant.Checker, *Failure) {
	return s.runWith(armed, nil)
}

// runWith is runOnce with a config hook: the kill-and-restore oracle uses
// it to arm snapshot capture or restore on an otherwise identical run.
func (s *Scenario) runWith(armed bool, mutate func(*sim.Config)) (res *sim.Result, chk *invariant.Checker, fail *Failure) {
	cfg, err := s.simConfig()
	if err != nil {
		return nil, nil, &Failure{Kind: FailError, Detail: err.Error()}
	}
	if armed {
		chk = invariant.New()
		cfg.Invariants = chk
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ctrl, err := s.controller()
	if err != nil {
		return nil, nil, &Failure{Kind: FailError, Detail: err.Error()}
	}
	src, err := s.source(cfg)
	if err != nil {
		return nil, nil, &Failure{Kind: FailError, Detail: err.Error()}
	}
	defer func() {
		if r := recover(); r != nil {
			// The detail stays deterministic: the panic value plus the
			// innermost non-runtime frame, never the full stack (goroutine
			// IDs and argument addresses would break report determinism).
			fail = &Failure{Kind: FailPanic, Detail: fmt.Sprintf("%v at %s", r, panicSite())}
			res, chk = nil, nil
		}
	}()
	res, err = sim.Run(cfg, src, ctrl, s.Duration)
	if err != nil {
		return nil, nil, &Failure{Kind: FailError, Detail: err.Error()}
	}
	return res, chk, nil
}

// panicSite walks the recovering stack for the innermost frame outside the
// runtime — the file:line that actually blew up.
func panicSite() string {
	pc := make([]uintptr, 32)
	n := runtime.Callers(3, pc)
	frames := runtime.CallersFrames(pc[:n])
	for {
		f, more := frames.Next()
		if f.File != "" && !strings.Contains(f.File, "runtime/") {
			return fmt.Sprintf("%s:%d", trimPath(f.File), f.Line)
		}
		if !more {
			return "unknown"
		}
	}
}

// trimPath keeps the path from the module root down, so panic sites are
// stable across build environments.
func trimPath(file string) string {
	if i := strings.Index(file, "hibernator/"); i >= 0 {
		return file[i+len("hibernator/"):]
	}
	return file
}

// violationDetail renders up to three violations on one line.
func violationDetail(chk *invariant.Checker) string {
	vs := chk.Violations()
	n := len(vs)
	if n > 3 {
		vs = vs[:3]
	}
	parts := make([]string, 0, len(vs)+1)
	for _, v := range vs {
		parts = append(parts, v.String())
	}
	if total := chk.Count(); total > len(vs) {
		parts = append(parts, fmt.Sprintf("(+%d more)", total-len(vs)))
	}
	return strings.Join(parts, " | ")
}

// RunsPerExecute is the number of simulation runs one Execute call costs:
// armed, armed repeat, unarmed — plus a sequential unarmed twin when the
// scenario runs the parallel engine, plus a restored run when the
// kill-and-restore oracle is armed.
func (s *Scenario) RunsPerExecute() int {
	n := 3
	if s.Workers > 1 {
		n++
	}
	if s.SnapshotT > 0 {
		n++
	}
	return n
}

// Execute judges one scenario against all oracles, in deterministic order:
//
//  1. an armed run must neither error, panic, nor violate any invariant;
//  2. repeating the armed run must reproduce its fingerprint exactly;
//  3. an unarmed run must produce the identical fingerprint (the checker
//     observes, it must not perturb);
//  4. for Workers > 1, a sequential (workers=1) unarmed run must produce
//     the identical fingerprint — the metamorphic contract of the
//     group-partitioned engine. (Armed runs are always sequential, so
//     oracle 3 already crosses the engines; this one attributes a
//     divergence to the parallel path by name.)
//  5. for SnapshotT > 0, the unarmed run additionally captures a state
//     snapshot at SnapshotT (riding oracle 3: capture must not perturb),
//     the snapshot must be a write→parse→write fixed point, and a run
//     restored from the parsed snapshot must finish with the identical
//     fingerprint — the kill-and-restore contract behind `hibsim
//     -resume-from`.
//
// A nil return means the scenario passed. Execute is a pure function of
// the scenario — the soak and the shrinker both rely on that.
func Execute(s *Scenario) *Failure {
	if err := s.Validate(); err != nil {
		return &Failure{Kind: FailError, Detail: err.Error()}
	}
	resA, chkA, fail := s.runOnce(true)
	if fail != nil {
		return fail
	}
	if !chkA.Ok() {
		return &Failure{Kind: FailInvariant, Detail: violationDetail(chkA)}
	}
	fpA := fingerprintOf(resA)

	resB, chkB, fail := s.runOnce(true)
	if fail != nil {
		return &Failure{Kind: FailRepeat, Detail: "rerun failed where first run passed: " + fail.Error()}
	}
	if !chkB.Ok() {
		return &Failure{Kind: FailRepeat, Detail: "rerun violated invariants the first run kept: " + violationDetail(chkB)}
	}
	if fpB := fingerprintOf(resB); fpA != fpB {
		return &Failure{Kind: FailRepeat, Detail: fpA.diff(fpB)}
	}

	// The unarmed run doubles as the snapshot-capture run when the
	// kill-and-restore oracle is armed; capture is a pure read, so the
	// armed/unarmed comparison below also proves capture changed nothing.
	var snapAtT *snapshot.State
	var capture func(*sim.Config)
	if s.SnapshotT > 0 {
		capture = func(cfg *sim.Config) {
			cfg.SnapshotEvery = s.SnapshotT
			cfg.SnapshotSink = func(st *snapshot.State) error {
				if snapAtT == nil {
					snapAtT = st
				}
				return nil
			}
		}
	}
	resC, _, fail := s.runWith(false, capture)
	if fail != nil {
		return &Failure{Kind: FailArmed, Detail: "unarmed run failed where armed passed: " + fail.Error()}
	}
	fpC := fingerprintOf(resC)
	if fpA != fpC {
		return &Failure{Kind: FailArmed, Detail: fpA.diff(fpC)}
	}

	if s.SnapshotT > 0 {
		if snapAtT == nil {
			return &Failure{Kind: FailRestore, Detail: fmt.Sprintf("no snapshot captured at t=%g", s.SnapshotT)}
		}
		raw := snapAtT.Bytes()
		reparsed, err := snapshot.Parse(bytes.NewReader(raw))
		if err != nil {
			return &Failure{Kind: FailRestore, Detail: "snapshot does not parse back: " + err.Error()}
		}
		if !bytes.Equal(raw, reparsed.Bytes()) {
			return &Failure{Kind: FailRestore, Detail: "snapshot is not a write/parse fixed point"}
		}
		resE, _, fail := s.runWith(false, func(cfg *sim.Config) { cfg.ResumeFrom = reparsed })
		if fail != nil {
			return &Failure{Kind: FailRestore, Detail: "restored run failed where straight-through passed: " + fail.Error()}
		}
		if fpE := fingerprintOf(resE); fpC != fpE {
			return &Failure{Kind: FailRestore, Detail: fmt.Sprintf("restored from t=%g: %s", s.SnapshotT, fpC.diff(fpE))}
		}
	}

	if s.Workers > 1 {
		seq := *s
		seq.Workers = 1
		resD, _, fail := seq.runOnce(false)
		if fail != nil {
			return &Failure{Kind: FailWorkers, Detail: "workers=1 rerun failed where parallel passed: " + fail.Error()}
		}
		if fpD := fingerprintOf(resD); fpC != fpD {
			return &Failure{Kind: FailWorkers, Detail: fmt.Sprintf("workers=%d vs 1: %s", s.Workers, fpC.diff(fpD))}
		}
	}
	return nil
}
