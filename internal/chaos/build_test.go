package chaos

import (
	"testing"

	"hibernator/internal/sim"
)

// A BuildRun execution must be the same simulation the oracles run:
// byte-identical fingerprints across materializations and against the
// package-internal path. The job server's result-verification contract
// (served result == direct sim.Run) rests on this.
func TestBuildRunMatchesInternalRun(t *testing.T) {
	s := Generate(1, 7)
	want, _, fail := s.runOnce(false)
	if fail != nil {
		t.Fatalf("internal run failed: %v", fail)
	}
	for i := 0; i < 2; i++ {
		r, err := s.BuildRun()
		if err != nil {
			t.Fatalf("BuildRun #%d: %v", i, err)
		}
		res, err := sim.Run(r.Config, r.Source, r.Controller, r.Duration)
		if err != nil {
			t.Fatalf("run #%d: %v", i, err)
		}
		if fingerprintOf(res) != fingerprintOf(want) {
			t.Fatalf("BuildRun #%d diverged from internal run: %s",
				i, fingerprintOf(want).diff(fingerprintOf(res)))
		}
	}
}

// BuildRun must reject what Validate rejects.
func TestBuildRunValidates(t *testing.T) {
	s := Generate(1, 7)
	s.Duration = -1
	if _, err := s.BuildRun(); err == nil {
		t.Fatal("BuildRun accepted an invalid scenario")
	}
}
