package chaos

import (
	"math/rand"

	"hibernator/internal/array"
	"hibernator/internal/fault"
)

// Generate samples the index-th scenario of a soak seeded with seed. The
// result is a pure function of (seed, index) — the soak's parallelism and
// the order jobs are drained in cannot change what gets generated — and
// always satisfies Validate.
//
// The ranges are chosen to stress the interesting machinery while keeping
// one scenario cheap enough for thousands-per-soak: short runs (1-10
// simulated minutes), small arrays (up to 4x5 plus spares), every scheme,
// both disk families and workloads, retry policies from fully disabled to
// aggressive, ambient error rates, and up to four scripted fault events.
func Generate(seed int64, index int) Scenario {
	rng := rand.New(rand.NewSource(mix(seed, int64(index))))
	s := Scenario{
		// A distinct simulation seed per scenario, decoupled from the
		// shape choices below so shrinking never re-rolls the workload.
		Seed: int64(rng.Uint64() >> 1),
	}

	s.Duration = float64(choice(rng, []int{60, 90, 120, 180, 240, 300, 450, 600}))
	s.Scheme = choiceS(rng, []string{"base", "tpm", "drpm", "pdc", "maid", "hibernator", "hibernator"})
	if rng.Intn(4) == 0 {
		s.Family = "sff"
	} else {
		s.Family = "enterprise"
	}
	s.Levels = 1 + rng.Intn(5)

	s.RAID = choiceS(rng, []string{"raid0", "raid1", "raid5", "raid5"})
	s.Groups = 1 + rng.Intn(4)
	switch s.RAID {
	case "raid0":
		s.GroupDisks = 1 + rng.Intn(4)
	case "raid1":
		s.GroupDisks = 2 * (1 + rng.Intn(2))
	case "raid5":
		s.GroupDisks = 3 + rng.Intn(3)
	}
	s.SpareDisks = rng.Intn(3)
	if s.Scheme == "maid" && s.SpareDisks == 0 {
		s.SpareDisks = 2
	}

	s.CacheMB = int64(choice(rng, []int{0, 16, 64, 256}))
	s.RespGoalMs = float64(choice(rng, []int{0, 0, 8, 15, 30}))
	s.EpochFrac = choiceF(rng, []float64{0, 0.125, 0.25, 0.5})

	if rng.Intn(4) == 0 {
		s.Workload = "cello"
		s.Rate = choiceF(rng, []float64{0.5, 1, 2})
	} else {
		s.Workload = "oltp"
		s.Rate = float64(5 + rng.Intn(56))
	}

	// Retry policy: one scenario in four runs with it fully disabled even
	// when faults are armed (the legacy fail-stop reaction is a behavior
	// the oracles must hold to the same standard).
	if rng.Intn(4) != 0 {
		s.Retry = array.RetryPolicy{
			MaxRetries:    rng.Intn(4),
			Backoff:       choiceF(rng, []float64{0.005, 0.01, 0.05}),
			BackoffFactor: choiceF(rng, []float64{1, 2, 4}),
			OpDeadline:    choiceF(rng, []float64{0, 0.1, 0.25, 1}),
			SuspectAfter:  choice(rng, []int{0, 5, 10}),
			EvictAfter:    choice(rng, []int{0, 50, 200}),
			AutoRebuild:   rng.Intn(2) == 0,
		}
	}

	// Ambient rates: most scenarios fault-free at the ambient level.
	if rng.Intn(3) == 0 {
		s.Rates.TransientProb = choiceF(rng, []float64{0.001, 0.005, 0.02, 0.05})
	}
	if rng.Intn(5) == 0 {
		s.Rates.SpinUpFailProb = choiceF(rng, []float64{0.001, 0.01})
		s.Rates.SpinUpRetries = 1 + rng.Intn(3)
	}

	// Scripted fault timeline: up to four events, biased toward the early
	// 80% of the run so their consequences (rebuilds, ramps) have time to
	// unfold under observation.
	for i, n := 0, rng.Intn(5); i < n; i++ {
		s.Events = append(s.Events, randomEvent(rng, &s))
	}

	// Intra-run parallelism: soak the group-partitioned engine across its
	// worker widths. The workers-metamorphic oracle in Execute holds every
	// Workers>1 scenario byte-identical to its sequential twin.
	s.Workers = choice(rng, []int{1, 2, 4, 8})

	// Kill-and-restore: half the scenarios also capture a snapshot partway
	// through and prove a restored run finishes identically. The fraction
	// is deliberately high — the oracle crosses every subsystem's state
	// capture, so it is where snapshot bugs actually surface.
	if rng.Intn(2) == 0 {
		s.SnapshotT = snap(choiceF(rng, []float64{0.25, 0.5, 0.75}) * s.Duration)
	}
	return s
}

// randomEvent samples one scripted fault aimed at a valid disk.
func randomEvent(rng *rand.Rand, s *Scenario) fault.Event {
	ev := fault.Event{
		Time: snap(rng.Float64() * 0.8 * s.Duration),
		Disk: rng.Intn(s.TotalDisks()),
	}
	switch rng.Intn(5) {
	case 0:
		ev.Kind = fault.FailStop
	case 1:
		ev.Kind = fault.FailSlow
		ev.Factor = choiceF(rng, []float64{2, 5, 20})
		ev.Ramp = snap(rng.Float64() * 0.2 * s.Duration)
	case 2:
		ev.Kind = fault.TransientBurst
		ev.Prob = choiceF(rng, []float64{0.05, 0.2, 0.8})
		ev.Duration = snap(rng.Float64() * 0.3 * s.Duration)
	case 3:
		ev.Kind = fault.Latent
		// A latent range somewhere in the first half of the disk, up to
		// 64 MiB long (spanning many extents).
		lo := int64(rng.Intn(1 << 30))
		ev.Lo, ev.Hi = lo, lo+int64(1+rng.Intn(64<<20))
	case 4:
		ev.Kind = fault.SpinUpFail
		ev.Prob = choiceF(rng, []float64{0.1, 0.5, 0.9})
		ev.Retries = rng.Intn(3)
	}
	return ev
}

// snap quantizes a time to milliseconds so repro files stay short and
// exact through the float round-trip.
func snap(t float64) float64 { return float64(int64(t*1000)) / 1000 }

func choice(rng *rand.Rand, xs []int) int          { return xs[rng.Intn(len(xs))] }
func choiceF(rng *rand.Rand, xs []float64) float64 { return xs[rng.Intn(len(xs))] }
func choiceS(rng *rand.Rand, xs []string) string   { return xs[rng.Intn(len(xs))] }

// Mix derives a per-index RNG seed from a master seed (splitmix64 over
// the pair), so neighboring indices get uncorrelated streams. The
// generator seeds every scenario through it, and harnesses that need
// their own deterministic randomness (the server-kill chaos loop's kill
// points) derive theirs from the same function so a whole chaos run is
// a pure function of its seed.
func Mix(seed, index int64) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(index) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64((z ^ (z >> 31)) >> 1)
}

// mix is the internal alias Generate predates Mix by.
func mix(seed, index int64) int64 { return Mix(seed, index) }
