package chaos

import (
	"strings"
	"testing"
)

// tinyScenario is a cheap, known-clean configuration used as the base of
// the oracle tests.
func tinyScenario() Scenario {
	return Scenario{
		Seed: 99, Duration: 60,
		Scheme: "base", Family: "enterprise", Levels: 1,
		Groups: 1, GroupDisks: 2, RAID: "raid0",
		Workload: "oltp", Rate: 10,
	}
}

func TestExecuteCleanScenario(t *testing.T) {
	s := tinyScenario()
	if fail := Execute(&s); fail != nil {
		t.Fatalf("clean scenario failed: %v", fail)
	}
}

func TestExecuteRejectsInvalidScenario(t *testing.T) {
	s := tinyScenario()
	s.Duration = -1
	fail := Execute(&s)
	if fail == nil || fail.Kind != FailError {
		t.Fatalf("want %s failure, got %v", FailError, fail)
	}
}

func TestExecuteCatchesInjectedEnergySkew(t *testing.T) {
	s := tinyScenario()
	s.BugEnergySkew, s.BugSkewAt, s.BugSkewDisk = 12345, 30, 0
	fail := Execute(&s)
	if fail == nil {
		t.Fatal("injected energy skew not caught")
	}
	if fail.Kind != FailInvariant {
		t.Fatalf("want %s failure, got %s: %s", FailInvariant, fail.Kind, fail.Detail)
	}
	if !strings.Contains(fail.Detail, "disk-energy") {
		t.Fatalf("detail does not name the disk-energy rule: %s", fail.Detail)
	}
	// The verdict itself must be deterministic — the soak report depends
	// on it.
	again := Execute(&s)
	if again == nil || *again != *fail {
		t.Fatalf("verdict not deterministic:\n%v\nvs\n%v", fail, again)
	}
}

func TestExecuteWithFaultsAndRetries(t *testing.T) {
	// A fail-stop on a RAID5 group with the retry policy armed: must pass
	// all oracles (this is the PR 2/PR 3 machinery under the PR 4 checker).
	s := Scenario{
		Seed: 4, Duration: 90,
		Scheme: "hibernator", Family: "enterprise", Levels: 3,
		Groups: 2, GroupDisks: 3, RAID: "raid5",
		Workload: "oltp", Rate: 20,
	}
	s.Retry.MaxRetries = 2
	s.Retry.Backoff = 0.01
	s.Retry.BackoffFactor = 2
	s.Retry.OpDeadline = 0.25
	s.Retry.AutoRebuild = true
	s.Events = append(s.Events, mustParseEvent(t, "30,1,failstop"))
	if fail := Execute(&s); fail != nil {
		t.Fatalf("fault scenario failed oracles: %v", fail)
	}
}

func TestExecuteKillAndRestoreOracle(t *testing.T) {
	// The kill-and-restore oracle on a loaded scenario: faults, retries,
	// multi-speed disks, the parallel engine, and a mid-run snapshot. A
	// pass proves capture+restore reproduced the run bit for bit.
	s := Scenario{
		Seed: 4, Duration: 90,
		Scheme: "hibernator", Family: "enterprise", Levels: 3,
		Groups: 2, GroupDisks: 3, RAID: "raid5",
		Workload: "oltp", Rate: 20,
		Workers: 4, SnapshotT: 45,
	}
	s.Retry.MaxRetries = 2
	s.Retry.Backoff = 0.01
	s.Retry.OpDeadline = 0.25
	s.Retry.AutoRebuild = true
	s.Events = append(s.Events, mustParseEvent(t, "30,1,failstop"))
	if got, want := s.RunsPerExecute(), 5; got != want {
		t.Fatalf("RunsPerExecute = %d, want %d", got, want)
	}
	if fail := Execute(&s); fail != nil {
		t.Fatalf("kill-and-restore scenario failed oracles: %v", fail)
	}
}

func TestExecuteRestoreOracleEveryScheme(t *testing.T) {
	// Satellite of the matrix in internal/sim: the chaos-level restore
	// oracle must hold for every scheme at both engine widths.
	for _, scheme := range []string{"base", "tpm", "drpm", "pdc", "maid", "hibernator"} {
		for _, workers := range []int{1, 8} {
			scheme, workers := scheme, workers
			t.Run(scheme+"/"+map[int]string{1: "w1", 8: "w8"}[workers], func(t *testing.T) {
				t.Parallel()
				s := Scenario{
					Seed: 7, Duration: 60,
					Scheme: scheme, Family: "enterprise", Levels: 3,
					Groups: 2, GroupDisks: 3, RAID: "raid5", SpareDisks: 1,
					Workload: "oltp", Rate: 15,
					Workers: workers, SnapshotT: 30,
				}
				s.Rates.TransientProb = 0.002
				s.Retry.MaxRetries = 1
				s.Retry.Backoff = 0.01
				if fail := Execute(&s); fail != nil {
					t.Fatalf("%s workers=%d: %v", scheme, workers, fail)
				}
			})
		}
	}
}

func TestFingerprintDiffNamesFields(t *testing.T) {
	a := Fingerprint{Requests: 10, Energy: 5}
	b := Fingerprint{Requests: 11, Energy: 5}
	if d := a.diff(b); !strings.Contains(d, "requests 10 != 11") {
		t.Fatalf("diff = %q", d)
	}
	if d := a.diff(a); d != "fingerprints agree" {
		t.Fatalf("self-diff = %q", d)
	}
}
