package stats

import "fmt"

// StateAccount integrates time (and, with a power assignment, energy)
// across a set of named states. The disk model uses one per disk: each
// state change closes the previous interval at the current power draw.
type StateAccount struct {
	last      float64 // time of the last transition
	state     string
	power     float64            // watts drawn in the current state
	duration  map[string]float64 // seconds per state name
	energy    map[string]float64 // joules per state name
	switches  map[string]uint64  // entry count per state name
	totEnergy float64
}

// NewStateAccount starts accounting at time t0 in the given state drawing
// `power` watts.
func NewStateAccount(t0 float64, state string, power float64) *StateAccount {
	return &StateAccount{
		last:     t0,
		state:    state,
		power:    power,
		duration: map[string]float64{},
		energy:   map[string]float64{},
		switches: map[string]uint64{state: 1},
	}
}

// Transition closes the current interval at time t and enters a new state
// with a new power draw. t must be >= the previous transition time.
func (a *StateAccount) Transition(t float64, state string, power float64) {
	a.accrue(t)
	a.state = state
	a.power = power
	a.switches[state]++
}

// SetPower changes the power draw without changing the named state (e.g. a
// disk moving between idle and active power at the same RPM).
func (a *StateAccount) SetPower(t float64, power float64) {
	a.accrue(t)
	a.power = power
}

func (a *StateAccount) accrue(t float64) {
	if t < a.last {
		panic(fmt.Sprintf("stats: state account time went backwards: %v < %v", t, a.last))
	}
	dt := t - a.last
	a.duration[a.state] += dt
	e := a.power * dt
	a.energy[a.state] += e
	a.totEnergy += e
	a.last = t
}

// AddEnergy charges a lump of energy (joules) to a named state without
// advancing time — used for spin-up/spin-down transition energies which the
// disk specs give as totals rather than power curves.
func (a *StateAccount) AddEnergy(state string, joules float64) {
	if joules < 0 {
		panic(fmt.Sprintf("stats: negative lump energy %v", joules))
	}
	a.energy[state] += joules
	a.totEnergy += joules
}

// Close accrues up to time t without changing state; call once at the end
// of a run before reading totals.
func (a *StateAccount) Close(t float64) { a.accrue(t) }

// EnergyAt returns the joules the account would report if closed at time
// t, without mutating anything. Snapshot capture uses it: Close splits
// the open interval's floating-point accrual, which would perturb the
// final totals by an ulp, while EnergyAt is a pure read.
func (a *StateAccount) EnergyAt(t float64) float64 {
	if t < a.last {
		panic(fmt.Sprintf("stats: EnergyAt(%v) before last accrual %v", t, a.last))
	}
	return a.totEnergy + a.power*(t-a.last)
}

// LastAccrual returns the time up to which the account has integrated.
func (a *StateAccount) LastAccrual() float64 { return a.last }

// State returns the current state name.
func (a *StateAccount) State() string { return a.state }

// Power returns the current power draw in watts.
func (a *StateAccount) Power() float64 { return a.power }

// TotalEnergy returns all joules accrued so far (excluding the open
// interval; call Close first for end-of-run totals).
func (a *StateAccount) TotalEnergy() float64 { return a.totEnergy }

// EnergyByState returns a copy of the joules-per-state map.
func (a *StateAccount) EnergyByState() map[string]float64 {
	out := make(map[string]float64, len(a.energy))
	for k, v := range a.energy {
		out[k] = v
	}
	return out
}

// DurationByState returns a copy of the seconds-per-state map.
func (a *StateAccount) DurationByState() map[string]float64 {
	out := make(map[string]float64, len(a.duration))
	for k, v := range a.duration {
		out[k] = v
	}
	return out
}

// Entries returns how many times the named state was entered.
func (a *StateAccount) Entries(state string) uint64 { return a.switches[state] }
