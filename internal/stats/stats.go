// Package stats provides the online statistics used throughout the
// simulator: streaming moments, reservoir percentiles, sliding-window
// response-time tracking, and time-weighted state accounting for energy
// integration.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Welford accumulates count, mean and variance in a single pass.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	w.sum += x
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Sum returns the running sum of observations.
func (w *Welford) Sum() float64 { return w.sum }

// Mean returns the running mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance, or 0 with fewer than 2 observations.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// SecondMoment returns E[X^2] = Var + Mean^2, which the M/G/1 model needs.
func (w *Welford) SecondMoment() float64 {
	return w.Var() + w.mean*w.mean
}

// Min returns the smallest observation, or NaN with no observations.
// NaN (rather than 0) keeps an empty accumulator from masquerading as a
// real zero observation; callers that want a default must check Count.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest observation, or NaN with no observations (see
// Min for why).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// Merge folds another accumulator's observations into this one (parallel
// variance combination).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	mean := w.mean + delta*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n, w.mean, w.m2 = n, mean, m2
	w.sum += o.sum
}

// fnv64a hash constants — the snapshot fingerprints below fold state
// into an FNV-1a digest by hand so they stay allocation-free.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a digest byte by byte.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// Fingerprint digests the accumulator's full internal state (count and
// the exact bit patterns of sum, mean, M2, min, max) for snapshot
// comparison: two accumulators fingerprint equal iff every future
// statistic they can report is equal.
func (w *Welford) Fingerprint() uint64 {
	h := fnvMix(fnvOffset64, w.n)
	h = fnvMix(h, math.Float64bits(w.mean))
	h = fnvMix(h, math.Float64bits(w.m2))
	h = fnvMix(h, math.Float64bits(w.min))
	h = fnvMix(h, math.Float64bits(w.max))
	return fnvMix(h, math.Float64bits(w.sum))
}

// Reservoir keeps a fixed-size uniform sample of a stream (Vitter's
// algorithm R) so percentiles can be estimated over arbitrarily long runs
// in bounded memory.
type Reservoir struct {
	rng   *rand.Rand
	cap   int
	seen  uint64
	items []float64
	// sorted caches a sorted copy of items for Quantile. Sorting a COPY is
	// load-bearing: items must stay in insertion order because Add replaces
	// r.items[j] for a uniformly drawn j — sorting items in place would make
	// that replacement hit a rank-dependent position, so querying a quantile
	// mid-stream would change which observations survive.
	sorted []float64
	dirty  bool // sorted cache invalid
}

// NewReservoir panics unless capacity > 0. The seed fixes sampling so runs
// are reproducible.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity <= 0 {
		panic(fmt.Sprintf("stats: reservoir capacity must be positive, got %d", capacity))
	}
	return &Reservoir{
		rng:   rand.New(rand.NewSource(seed)),
		cap:   capacity,
		items: make([]float64, 0, capacity),
	}
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.items) < r.cap {
		r.items = append(r.items, x)
		r.dirty = true
		return
	}
	if j := r.rng.Int63n(int64(r.seen)); j < int64(r.cap) {
		r.items[j] = x
		r.dirty = true
	}
}

// Seen returns how many observations were offered.
func (r *Reservoir) Seen() uint64 { return r.seen }

// Quantile estimates the q-quantile (0 <= q <= 1) from the sample; it
// returns 0 when empty.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.items) == 0 {
		return 0
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if r.dirty {
		r.sorted = append(r.sorted[:0], r.items...)
		sort.Float64s(r.sorted)
		r.dirty = false
	}
	// Nearest-rank with linear interpolation.
	pos := q * float64(len(r.sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return r.sorted[lo]
	}
	frac := pos - float64(lo)
	return r.sorted[lo]*(1-frac) + r.sorted[hi]*frac
}

// Fingerprint digests the reservoir's observable state: the stream
// length and the exact bit patterns of the retained sample in insertion
// order. The RNG position is implied — the replacement stream is a pure
// function of (seed, seen) — so equal fingerprints at equal seeds mean
// identical future behavior.
func (r *Reservoir) Fingerprint() uint64 {
	h := fnvMix(fnvOffset64, r.seen)
	h = fnvMix(h, uint64(len(r.items)))
	for _, x := range r.items {
		h = fnvMix(h, math.Float64bits(x))
	}
	return h
}

// Reset clears the reservoir but keeps the RNG stream position.
func (r *Reservoir) Reset() {
	r.items = r.items[:0]
	r.seen = 0
	r.dirty = false
}
