package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d, want 8", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.Var()-4) > 1e-12 {
		t.Errorf("Var = %v, want 4", w.Var())
	}
	if math.Abs(w.Std()-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", w.Std())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", w.Min(), w.Max())
	}
	if math.Abs(w.SecondMoment()-29) > 1e-12 {
		t.Errorf("E[X^2] = %v, want 29", w.SecondMoment())
	}
	if math.Abs(w.Sum()-40) > 1e-12 {
		t.Errorf("Sum = %v, want 40", w.Sum())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Count() != 0 {
		t.Error("empty accumulator must read as zeros")
	}
	// Min/Max of nothing is NaN, not 0: a 0 would masquerade as a real
	// observation (e.g. a "0 ms max response time" from a run that served
	// no requests at all).
	if !math.IsNaN(w.Min()) {
		t.Errorf("empty Min() = %v, want NaN", w.Min())
	}
	if !math.IsNaN(w.Max()) {
		t.Errorf("empty Max() = %v, want NaN", w.Max())
	}
	w.Add(-3)
	if w.Min() != -3 || w.Max() != -3 {
		t.Errorf("after one add, Min/Max = %v/%v, want -3/-3", w.Min(), w.Max())
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestWelfordMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var wa, wb, wall Welford
		for _, x := range a {
			wa.Add(x)
			wall.Add(x)
		}
		for _, x := range b {
			wb.Add(x)
			wall.Add(x)
		}
		wa.Merge(&wb)
		if wa.Count() != wall.Count() {
			return false
		}
		if wall.Count() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(wall.Mean()))
		if math.Abs(wa.Mean()-wall.Mean()) > tol {
			return false
		}
		return math.Abs(wa.Var()-wall.Var()) <= 1e-4*(1+wall.Var())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReservoirExactWhenUnderCapacity(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 1; i <= 10; i++ {
		r.Add(float64(i))
	}
	if got := r.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := r.Quantile(1); got != 10 {
		t.Errorf("q1 = %v, want 10", got)
	}
	if got := r.Quantile(0.5); math.Abs(got-5.5) > 1e-12 {
		t.Errorf("median = %v, want 5.5", got)
	}
}

func TestReservoirApproximatesQuantiles(t *testing.T) {
	r := NewReservoir(2000, 7)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200000; i++ {
		r.Add(rng.Float64()) // U[0,1)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := r.Quantile(q)
		if math.Abs(got-q) > 0.05 {
			t.Errorf("quantile %v = %v, want within 0.05", q, got)
		}
	}
	if r.Seen() != 200000 {
		t.Errorf("Seen = %d, want 200000", r.Seen())
	}
}

func TestReservoirAddAfterQuantile(t *testing.T) {
	// Interleaving reads and writes must not corrupt the sample.
	r := NewReservoir(10, 1)
	vals := []float64{5, 3, 8, 1, 9, 2}
	for i, v := range vals {
		r.Add(v)
		got := r.Quantile(1)
		want := slicesMax(vals[:i+1])
		if got != want {
			t.Fatalf("after %d adds, max = %v, want %v", i+1, got, want)
		}
	}
}

// Regression: Quantile used to sort r.items in place, so a mid-stream
// quantile query changed which index a later Add replaced — the final
// sample depended on when (or whether) anyone looked at a percentile.
// Two reservoirs fed the same stream must end with the same sample, no
// matter how many Quantile calls are interleaved.
func TestReservoirQuantileDoesNotPerturbSampling(t *testing.T) {
	const cap = 16
	quiet := NewReservoir(cap, 7)
	nosy := NewReservoir(cap, 7)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		x := rng.Float64() * 100
		quiet.Add(x)
		nosy.Add(x)
		if i%3 == 0 {
			nosy.Quantile(0.5) // the read that used to corrupt the sample
			nosy.Quantile(0.99)
		}
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if got, want := nosy.Quantile(q), quiet.Quantile(q); got != want {
			t.Errorf("Q(%v): interleaved-read reservoir = %v, read-free = %v", q, got, want)
		}
	}
}

func slicesMax(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Property: with capacity >= stream length, reservoir quantiles are exact
// order statistics.
func TestReservoirExactProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		r := NewReservoir(len(clean), 11)
		for _, x := range clean {
			r.Add(x)
		}
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		return r.Quantile(0) == sorted[0] && r.Quantile(1) == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowTrackerExpiry(t *testing.T) {
	w := NewWindowTracker(10, 10)
	w.Observe(0.5, 100)
	w.Observe(1.5, 200)
	mean, n := w.Mean(2)
	if n != 2 || mean != 150 {
		t.Fatalf("mean=%v n=%d, want 150, 2", mean, n)
	}
	// At t=10.5 the first observation (bucket [0,1)) has expired but the
	// second (bucket [1,2)) is still inside the trailing window.
	mean, n = w.Mean(10.5)
	if n != 1 || mean != 200 {
		t.Fatalf("after expiry mean=%v n=%d, want 200, 1", mean, n)
	}
	// At t=12 the second observation has expired too.
	_, n = w.Mean(12)
	if n != 0 {
		t.Fatalf("count at t=12 = %d, want 0", n)
	}
	// Far future: everything expired.
	_, n = w.Mean(1e6)
	if n != 0 {
		t.Fatalf("far future count = %d, want 0", n)
	}
	// Still usable after a long gap.
	w.Observe(1e6+1, 42)
	mean, n = w.Mean(1e6 + 2)
	if n != 1 || mean != 42 {
		t.Fatalf("post-gap mean=%v n=%d, want 42, 1", mean, n)
	}
}

func TestWindowTrackerRollingMean(t *testing.T) {
	w := NewWindowTracker(5, 5)
	for i := 0; i < 100; i++ {
		w.Observe(float64(i), float64(i))
	}
	// At t=99, window covers observations at t in (94, 99] approximately;
	// with bucket granularity 1s, buckets 95..99 hold values 95..99.
	mean, n := w.Mean(99)
	if n != 5 {
		t.Fatalf("window count = %d, want 5", n)
	}
	if math.Abs(mean-97) > 1e-9 {
		t.Fatalf("rolling mean = %v, want 97", mean)
	}
}

func TestCumulativeTrackerSlack(t *testing.T) {
	var c CumulativeTracker
	c.Observe(1)
	c.Observe(3)
	if c.Mean() != 2 {
		t.Errorf("Mean = %v, want 2", c.Mean())
	}
	if got := c.Slack(2.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("Slack(2.5) = %v, want 1", got)
	}
	if got := c.Slack(1.5); math.Abs(got+1) > 1e-12 {
		t.Errorf("Slack(1.5) = %v, want -1", got)
	}
}

func TestStateAccountEnergy(t *testing.T) {
	a := NewStateAccount(0, "idle", 10)
	a.Transition(5, "active", 13) // 5s idle at 10W = 50J
	a.Transition(7, "idle", 10)   // 2s active at 13W = 26J
	a.AddEnergy("spinup", 135)
	a.Close(10) // 3s idle at 10W = 30J
	e := a.EnergyByState()
	if math.Abs(e["idle"]-80) > 1e-9 {
		t.Errorf("idle energy = %v, want 80", e["idle"])
	}
	if math.Abs(e["active"]-26) > 1e-9 {
		t.Errorf("active energy = %v, want 26", e["active"])
	}
	if math.Abs(e["spinup"]-135) > 1e-9 {
		t.Errorf("spinup energy = %v, want 135", e["spinup"])
	}
	if math.Abs(a.TotalEnergy()-241) > 1e-9 {
		t.Errorf("total = %v, want 241", a.TotalEnergy())
	}
	d := a.DurationByState()
	if math.Abs(d["idle"]-8) > 1e-9 || math.Abs(d["active"]-2) > 1e-9 {
		t.Errorf("durations = %v, want idle 8, active 2", d)
	}
	if a.Entries("active") != 1 || a.Entries("idle") != 2 {
		t.Errorf("entries idle=%d active=%d, want 2,1", a.Entries("idle"), a.Entries("active"))
	}
}

func TestStateAccountSetPower(t *testing.T) {
	a := NewStateAccount(0, "spinning", 10)
	a.SetPower(4, 13) // 4s at 10W
	a.Close(6)        // 2s at 13W
	if got := a.TotalEnergy(); math.Abs(got-66) > 1e-9 {
		t.Errorf("total = %v, want 66", got)
	}
	if a.State() != "spinning" {
		t.Errorf("state changed by SetPower: %q", a.State())
	}
}

func TestStateAccountTimeBackwardsPanics(t *testing.T) {
	a := NewStateAccount(5, "x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("going backwards in time must panic")
		}
	}()
	a.Transition(4, "y", 1)
}

// Property: total energy equals the sum over states regardless of the
// transition pattern.
func TestStateAccountConservationProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		a := NewStateAccount(0, "s0", 1)
		now := 0.0
		for i, s := range steps {
			now += float64(s%17) * 0.25
			a.Transition(now, []string{"s0", "s1", "s2"}[i%3], float64(s%5))
		}
		a.Close(now + 1)
		sum := 0.0
		for _, e := range a.EnergyByState() {
			sum += e
		}
		return math.Abs(sum-a.TotalEnergy()) < 1e-9*(1+sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordResetAndMergeEdges(t *testing.T) {
	var w Welford
	w.Add(3)
	w.Add(5)
	w.Reset()
	if w.Count() != 0 || w.Mean() != 0 || w.Sum() != 0 {
		t.Fatal("Reset left state behind")
	}
	// Merge into empty adopts the other verbatim.
	var a, b Welford
	b.Add(1)
	b.Add(3)
	a.Merge(&b)
	if a.Count() != 2 || a.Mean() != 2 {
		t.Errorf("merge-into-empty: count=%d mean=%v", a.Count(), a.Mean())
	}
	// Merging an empty is a no-op.
	var empty Welford
	a.Merge(&empty)
	if a.Count() != 2 {
		t.Error("merging empty changed the accumulator")
	}
	// Min/max propagate through merges.
	var c Welford
	c.Add(-7)
	a.Merge(&c)
	if a.Min() != -7 || a.Max() != 3 {
		t.Errorf("min/max = %v/%v, want -7/3", a.Min(), a.Max())
	}
}

func TestReservoirResetAndValidation(t *testing.T) {
	r := NewReservoir(4, 1)
	for i := 0; i < 10; i++ {
		r.Add(float64(i))
	}
	r.Reset()
	if r.Seen() != 0 || r.Quantile(0.5) != 0 {
		t.Fatal("Reset left samples behind")
	}
	r.Add(42)
	if got := r.Quantile(1); got != 42 {
		t.Errorf("post-reset quantile = %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("capacity 0 must panic")
			}
		}()
		NewReservoir(0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("quantile outside [0,1] must panic")
			}
		}()
		r.Quantile(1.5)
	}()
}

func TestWindowTrackerValidation(t *testing.T) {
	for _, bad := range [][2]float64{{0, 5}, {5, 0}} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("window=%v buckets=%v must panic", bad[0], bad[1])
				}
			}()
			NewWindowTracker(bad[0], int(bad[1]))
		}()
	}
	w := NewWindowTracker(10, 5)
	if w.Window() != 10 {
		t.Errorf("Window() = %v", w.Window())
	}
}

func TestStateAccountLumpValidation(t *testing.T) {
	a := NewStateAccount(0, "s", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative lump energy must panic")
		}
	}()
	a.AddEnergy("s", -1)
}
