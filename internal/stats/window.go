package stats

import "fmt"

// WindowTracker maintains response-time statistics over a sliding window of
// fixed duration, bucketed for O(1) expiry. The Hibernator boost controller
// and the DRPM baseline both consult it ("has the recent average response
// time exceeded the goal?").
type WindowTracker struct {
	bucketLen float64
	buckets   []bucket
	head      int     // index of the bucket containing `cursor`
	cursor    float64 // start time of the head bucket
	totSum    float64
	totCount  uint64
}

type bucket struct {
	sum   float64
	count uint64
}

// NewWindowTracker tracks the trailing `window` seconds using `buckets`
// sub-intervals (more buckets = finer expiry granularity).
func NewWindowTracker(window float64, buckets int) *WindowTracker {
	if window <= 0 || buckets <= 0 {
		panic(fmt.Sprintf("stats: window tracker needs window>0, buckets>0; got %v, %d", window, buckets))
	}
	return &WindowTracker{
		bucketLen: window / float64(buckets),
		buckets:   make([]bucket, buckets),
	}
}

// advance rotates buckets until the one containing time t is current.
func (w *WindowTracker) advance(t float64) {
	for t >= w.cursor+w.bucketLen {
		w.head = (w.head + 1) % len(w.buckets)
		w.cursor += w.bucketLen
		old := &w.buckets[w.head]
		w.totSum -= old.sum
		w.totCount -= old.count
		old.sum, old.count = 0, 0
		// If t is far beyond the window, fast-forward without spinning
		// through every empty bucket.
		if w.totCount == 0 && t >= w.cursor+float64(len(w.buckets))*w.bucketLen {
			skipped := int((t - w.cursor) / w.bucketLen)
			w.cursor += float64(skipped) * w.bucketLen
		}
	}
}

// Observe records one response time value at simulated time t. Times must
// be non-decreasing across calls.
func (w *WindowTracker) Observe(t, value float64) {
	w.advance(t)
	b := &w.buckets[w.head]
	b.sum += value
	b.count++
	w.totSum += value
	w.totCount++
}

// Mean returns the average of observations in the trailing window as of
// time t, and the number of observations it covers.
func (w *WindowTracker) Mean(t float64) (mean float64, count uint64) {
	w.advance(t)
	if w.totCount == 0 {
		return 0, 0
	}
	return w.totSum / float64(w.totCount), w.totCount
}

// Window returns the configured window length in seconds.
func (w *WindowTracker) Window() float64 {
	return w.bucketLen * float64(len(w.buckets))
}

// CumulativeTracker accumulates a lifetime sum/count so policies can hold a
// *long-run* average under a goal, as Hibernator's performance guarantee
// requires (transient spikes are fine if the cumulative average recovers).
type CumulativeTracker struct {
	sum   float64
	count uint64
}

// Observe records one value.
func (c *CumulativeTracker) Observe(value float64) {
	c.sum += value
	c.count++
}

// Mean returns the lifetime average (0 when empty).
func (c *CumulativeTracker) Mean() float64 {
	if c.count == 0 {
		return 0
	}
	return c.sum / float64(c.count)
}

// Count returns the number of observations.
func (c *CumulativeTracker) Count() uint64 { return c.count }

// Slack returns how much total response time could still be added while
// keeping the cumulative mean at or below goal. Positive slack means the
// system is ahead of its goal; negative means it is in deficit.
func (c *CumulativeTracker) Slack(goal float64) float64 {
	return goal*float64(c.count) - c.sum
}
