// Package mg1 provides the M/G/1 queueing approximations the Hibernator CR
// optimizer and the DRPM baseline use to predict per-disk response times
// from observed load and the disk model's service moments.
package mg1

import (
	"fmt"
	"math"
)

// Utilization returns rho = lambda * E[S].
func Utilization(lambda, es float64) float64 {
	return lambda * es
}

// ResponseTime returns the mean M/G/1 response time (Pollaczek–Khinchine):
//
//	R = E[S] + lambda*E[S^2] / (2*(1-rho))
//
// for Poisson arrivals at rate lambda and service moments es = E[S],
// es2 = E[S^2]. It returns +Inf when the queue is unstable (rho >= 1).
func ResponseTime(lambda, es, es2 float64) float64 {
	if lambda < 0 || es < 0 || es2 < 0 {
		panic(fmt.Sprintf("mg1: negative inputs lambda=%v es=%v es2=%v", lambda, es, es2))
	}
	if lambda == 0 {
		return es
	}
	rho := Utilization(lambda, es)
	if rho >= 1 {
		return math.Inf(1)
	}
	return es + lambda*es2/(2*(1-rho))
}

// WaitTime returns only the queueing delay component.
func WaitTime(lambda, es, es2 float64) float64 {
	r := ResponseTime(lambda, es, es2)
	if math.IsInf(r, 1) {
		return r
	}
	return r - es
}

// MaxStableLambda returns the largest arrival rate that keeps utilization
// at or below the given target (e.g. 0.85 for headroom), for mean service
// time es.
func MaxStableLambda(es, targetRho float64) float64 {
	if es <= 0 {
		return math.Inf(1)
	}
	if targetRho <= 0 || targetRho >= 1 {
		panic(fmt.Sprintf("mg1: target utilization %v outside (0,1)", targetRho))
	}
	return targetRho / es
}
