package mg1

import (
	"math"
	"testing"
	"testing/quick"

	"hibernator/internal/diskmodel"
	"hibernator/internal/simevent"
)

func TestZeroLambdaIsPureService(t *testing.T) {
	if got := ResponseTime(0, 0.005, 5e-5); got != 0.005 {
		t.Errorf("R(0) = %v, want E[S]", got)
	}
}

func TestUnstableQueueIsInfinite(t *testing.T) {
	if got := ResponseTime(300, 0.005, 5e-5); !math.IsInf(got, 1) {
		t.Errorf("rho=1.5 should yield +Inf, got %v", got)
	}
	if got := ResponseTime(200, 0.005, 5e-5); !math.IsInf(got, 1) {
		t.Errorf("rho=1 should yield +Inf, got %v", got)
	}
}

func TestMM1ClosedForm(t *testing.T) {
	// For exponential service, E[S^2] = 2*E[S]^2 and R = 1/(mu - lambda).
	mu := 200.0
	es := 1 / mu
	es2 := 2 * es * es
	for _, lambda := range []float64{10, 100, 150, 190} {
		want := 1 / (mu - lambda)
		got := ResponseTime(lambda, es, es2)
		if math.Abs(got-want)/want > 1e-12 {
			t.Errorf("lambda=%v: R=%v, want %v", lambda, got, want)
		}
	}
}

func TestWaitTime(t *testing.T) {
	es, es2 := 0.005, 5e-5
	r := ResponseTime(100, es, es2)
	w := WaitTime(100, es, es2)
	if math.Abs(r-w-es) > 1e-15 {
		t.Errorf("R - W = %v, want E[S]", r-w)
	}
}

func TestMaxStableLambda(t *testing.T) {
	if got := MaxStableLambda(0.01, 0.8); math.Abs(got-80) > 1e-12 {
		t.Errorf("MaxStableLambda = %v, want 80", got)
	}
	if !math.IsInf(MaxStableLambda(0, 0.5), 1) {
		t.Error("zero service time should allow infinite rate")
	}
}

// Property: response time is monotone increasing in lambda below
// saturation.
func TestMonotoneInLambda(t *testing.T) {
	es, es2 := 0.004, 3e-5
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		limit := 0.99 / es
		a, b = math.Mod(a, limit), math.Mod(b, limit)
		if a > b {
			a, b = b, a
		}
		return ResponseTime(a, es, es2) <= ResponseTime(b, es, es2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Cross-check the analytic model against the discrete-event disk: drive a
// single disk with Poisson arrivals of uniform-random LBAs and compare the
// simulated mean response time with the M/G/1 prediction fed by the spec's
// service moments. They should agree within ~20% (the disk's seek
// correlation and non-Poisson completion structure cause small drift).
func TestModelMatchesSimulatedDisk(t *testing.T) {
	e := simevent.New()
	spec := diskmodel.MultiSpeedUltrastar(1, 0)
	d := diskmodel.New(e, &spec, diskmodel.Config{Seed: 5})

	const lambda = 60.0 // req/s, moderate load
	const size = 8192
	rng := simRand(17)
	var sumResp float64
	var n int
	tArr := 0.0
	for i := 0; i < 20000; i++ {
		tArr += rng.exp() / lambda
		lba := rng.int63n(spec.CapacityBytes - size)
		at := tArr
		e.At(at, func() {
			d.Submit(&diskmodel.Request{LBA: lba, Size: size, Done: func(_ *diskmodel.Request, done float64) {
				sumResp += done - at
				n++
			}})
		})
	}
	e.RunAll()
	simMean := sumResp / float64(n)

	es, es2 := spec.ServiceMoments(spec.FullLevel(), size, diskmodel.ExpectedSeekFrac)
	pred := ResponseTime(lambda, es, es2)
	if rel := math.Abs(simMean-pred) / pred; rel > 0.2 {
		t.Errorf("simulated mean %v vs predicted %v (rel err %.2f)", simMean, pred, rel)
	}
}

// Minimal deterministic PRNG for the cross-check (avoids importing
// math/rand twice with different purposes).
type xorshift struct{ s uint64 }

func simRand(seed uint64) *xorshift { return &xorshift{s: seed} }

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

func (x *xorshift) float64() float64 {
	return float64(x.next()>>11) / float64(1<<53)
}

func (x *xorshift) exp() float64 {
	u := x.float64()
	for u == 0 {
		u = x.float64()
	}
	return -math.Log(u)
}

func (x *xorshift) int63n(n int64) int64 {
	return int64(x.next() % uint64(n))
}

func TestNegativeInputsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative lambda must panic")
		}
	}()
	ResponseTime(-1, 0.01, 1e-4)
}

func TestWaitTimeInfinite(t *testing.T) {
	if !math.IsInf(WaitTime(1000, 0.01, 1e-4), 1) {
		t.Fatal("unstable wait time should be +Inf")
	}
}

func TestMaxStableLambdaValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("target rho >= 1 must panic")
		}
	}()
	MaxStableLambda(0.01, 1.0)
}
