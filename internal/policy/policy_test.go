package policy

import (
	"math"
	"testing"

	"hibernator/internal/diskmodel"
	"hibernator/internal/dist"
	"hibernator/internal/raid"
	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

func singleSpeedConfig(seed int64) sim.Config {
	return sim.Config{
		Spec:               diskmodel.SingleSpeedUltrastar(),
		Groups:             4,
		GroupDisks:         1,
		Level:              raid.RAID0,
		ExtentBytes:        64 << 20,
		Seed:               seed,
		ExpectedRotLatency: true,
	}
}

func multiSpeedConfig(seed int64) sim.Config {
	cfg := singleSpeedConfig(seed)
	cfg.Spec = diskmodel.MultiSpeedUltrastar(5, 3000)
	return cfg
}

// burstyIdle produces bursts separated by long silences — the workload
// spin-down policies love.
func burstyIdle(t *testing.T, seed int64, duration float64) trace.Source {
	t.Helper()
	g, err := trace.NewOLTP(trace.OLTPConfig{
		Seed:        seed,
		VolumeBytes: 100 << 30,
		Duration:    duration,
		Rate: dist.StepRate(
			[]float64{60, 0, 60, 0, 60, 0},
			[]float64{100, 400, 500, 800, 900},
		),
		MaxRate: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func steady(t *testing.T, seed int64, duration, rate float64) trace.Source {
	t.Helper()
	g, err := trace.NewOLTP(trace.OLTPConfig{
		Seed: seed, VolumeBytes: 100 << 30, Duration: duration, MaxRate: rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustRun(t *testing.T, cfg sim.Config, src trace.Source, ctrl sim.Controller, dur float64) *sim.Result {
	t.Helper()
	res, err := sim.Run(cfg, src, ctrl, dur)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBaseDoesNothing(t *testing.T) {
	res := mustRun(t, singleSpeedConfig(1), steady(t, 2, 300, 20), NewBase(), 300)
	if res.SpinUps != 0 || res.SpinDowns != 0 || res.LevelShifts != 0 {
		t.Errorf("Base transitioned disks: %+v", res)
	}
	if res.Scheme != "Base" {
		t.Errorf("scheme = %q", res.Scheme)
	}
}

func TestBreakEvenTime(t *testing.T) {
	spec := diskmodel.SingleSpeedUltrastar()
	want := (spec.SpinDownEnergy + spec.SpinUpEnergy) / (spec.IdlePower[0] - spec.StandbyPower)
	if got := BreakEvenTime(&spec); math.Abs(got-want) > 1e-12 {
		t.Errorf("BreakEvenTime = %v, want %v", got, want)
	}
	if got := BreakEvenTime(&spec); got < 5 || got > 60 {
		t.Errorf("break-even %v s implausible for an Ultrastar-class disk", got)
	}
}

func TestTPMSavesOnIdleWorkload(t *testing.T) {
	const dur = 1200.0
	base := mustRun(t, singleSpeedConfig(3), burstyIdle(t, 4, dur), NewBase(), dur)
	tpm := mustRun(t, singleSpeedConfig(3), burstyIdle(t, 4, dur), NewTPM(0), dur)
	if tpm.SpinDowns == 0 {
		t.Fatal("TPM never spun a disk down despite long idle periods")
	}
	if s := tpm.SavingsVs(base); s < 0.15 {
		t.Errorf("TPM savings %.2f on idle-heavy workload, want >= 0.15", s)
	}
	// The spin-up penalty must be visible in the tail.
	if tpm.MaxResp < base.MaxResp+5 {
		t.Errorf("TPM max response %v should include multi-second spin-up waits (base %v)",
			tpm.MaxResp, base.MaxResp)
	}
}

func TestTPMUselessOnSteadyLoad(t *testing.T) {
	// Steady 20 req/s across 4 disks: per-disk gaps far below break-even.
	const dur = 600.0
	tpm := mustRun(t, singleSpeedConfig(5), steady(t, 6, dur, 20), NewTPM(0), dur)
	if tpm.SpinDowns > 2 {
		t.Errorf("TPM spun down %d times under steady load", tpm.SpinDowns)
	}
}

func TestDRPMStepsDownUnderLightLoad(t *testing.T) {
	const dur = 600.0
	base := mustRun(t, multiSpeedConfig(7), steady(t, 8, dur, 8), NewBase(), dur)
	drpm := mustRun(t, multiSpeedConfig(7), steady(t, 8, dur, 8), NewDRPM(), dur)
	if drpm.LevelShifts == 0 {
		t.Fatal("DRPM never changed speed")
	}
	if s := drpm.SavingsVs(base); s < 0.2 {
		t.Errorf("DRPM savings %.2f under light load, want >= 0.2", s)
	}
}

func TestDRPMTripwireRestoresFullSpeed(t *testing.T) {
	// Light load then surge; with a goal configured, the tripwire must
	// bring groups back toward full speed.
	const dur = 900.0
	cfg := multiSpeedConfig(9)
	cfg.RespGoal = 0.015
	cfg.RespWindow = 30
	g, err := trace.NewOLTP(trace.OLTPConfig{
		Seed: 10, VolumeBytes: 100 << 30, Duration: dur,
		Rate:    dist.StepRate([]float64{5, 150}, []float64{600}),
		MaxRate: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	drpm := NewDRPM()
	res, err := sim.Run(cfg, g, drpm, dur)
	if err != nil {
		t.Fatal(err)
	}
	full := cfg.Spec.FullLevel()
	for gi, grp := range drpm.env.Array.Groups() {
		if grp.TargetLevel() != full {
			t.Errorf("group %d at level %d after surge, want full", gi, grp.TargetLevel())
		}
	}
	_ = res
}

func TestPDCConcentratesPopularData(t *testing.T) {
	// PDC only wins when the popular set is small enough that cold disks
	// see essentially zero traffic — any Zipf tail trickle keeps them
	// spinning (exactly the weakness the Hibernator paper exploits). Use
	// extreme skew so PDC's favorable case exists, and a run long enough
	// to amortize the one-time concentration migration.
	const dur = 7200.0
	cfg := singleSpeedConfig(11)
	pdc := NewPDC()
	pdc.Epoch = 300
	pdc.IdleThreshold = 10 // PDC papers use aggressive thresholds on cold disks
	// Confine all traffic to the first 10 GiB: the touched extents fit in
	// one group, and after concentration the other groups see nothing.
	extremeSkew := func() trace.Source {
		g, err := trace.NewOLTP(trace.OLTPConfig{
			Seed: 12, VolumeBytes: 10 << 30, Duration: dur, MaxRate: 15,
			Regions: 16, ZipfS: 2.0,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	res := mustRun(t, cfg, extremeSkew(), pdc, dur)
	if pdc.HotGroups() >= 4 {
		t.Errorf("PDC kept all %d groups hot under light load", pdc.HotGroups())
	}
	if res.Migrations == 0 {
		t.Error("PDC never migrated data")
	}
	if res.SpinDowns == 0 {
		t.Error("PDC never spun down a cold group")
	}
	base := mustRun(t, singleSpeedConfig(11), extremeSkew(), NewBase(), dur)
	if s := res.SavingsVs(base); s < 0.1 {
		t.Errorf("PDC savings %.2f, want >= 0.1 on skewed light load", s)
	}
}

func TestMAIDServesFromCacheDisks(t *testing.T) {
	const dur = 1200.0
	cfg := singleSpeedConfig(13)
	cfg.SpareDisks = 2
	// Tight working set (small volume, steep skew) so the cache disks can
	// absorb it; batched destage plus a short threshold verify the
	// spin-down machinery once misses decay.
	g, err := trace.NewOLTP(trace.OLTPConfig{
		Seed: 14, VolumeBytes: 20 << 30, Duration: dur, MaxRate: 25,
		Regions: 16, ZipfS: 2.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	maid := NewMAID()
	maid.DestagePeriod = 120
	maid.IdleThreshold = 3
	res, err := sim.Run(cfg, g, maid, dur)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := maid.CacheStats()
	if hits == 0 {
		t.Fatal("MAID cache disks never served a read")
	}
	if hits < misses {
		t.Errorf("hits %d < misses %d on a tight working set", hits, misses)
	}
	if res.SpinDowns == 0 {
		t.Error("MAID data disks never spun down")
	}
	if res.Requests == 0 {
		t.Fatal("no requests completed")
	}
}

func TestMAIDRequiresSpares(t *testing.T) {
	cfg := singleSpeedConfig(15)
	defer func() {
		if recover() == nil {
			t.Fatal("MAID without spares must panic at Init")
		}
	}()
	_, _ = sim.Run(cfg, steady(t, 16, 10, 5), NewMAID(), 10)
}

func TestPoliciesAreDeterministic(t *testing.T) {
	for _, mk := range []func() sim.Controller{
		func() sim.Controller { return NewTPM(0) },
		func() sim.Controller { return NewDRPM() },
	} {
		run := func() *sim.Result {
			cfg := multiSpeedConfig(17)
			return mustRun(t, cfg, steady(t, 18, 300, 15), mk(), 300)
		}
		a, b := run(), run()
		if a.Energy != b.Energy || a.MeanResp != b.MeanResp {
			t.Errorf("%s diverged between identical runs", a.Scheme)
		}
	}
}

func TestMAIDRouteMechanics(t *testing.T) {
	// Unit-level exercise of the Router contract: a write is absorbed by
	// cache disks; a read of the same chunk then hits.
	cfg := singleSpeedConfig(31)
	cfg.SpareDisks = 1
	reqs := []trace.Request{
		{Time: 0.1, Off: 0, Size: 4096, Write: true},
		{Time: 0.2, Off: 0, Size: 4096},
		{Time: 0.3, Off: 512 << 20, Size: 4096}, // different chunk: miss
	}
	maid := NewMAID()
	res, err := sim.Run(cfg, trace.NewSliceSource(reqs), maid, 5)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := maid.CacheStats()
	if hits != 1 {
		t.Errorf("hits = %d, want 1 (read of the written chunk)", hits)
	}
	if misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
	if res.Requests != 3 {
		t.Errorf("requests = %d, want 3", res.Requests)
	}
	// The write landed on a cache disk, not the array.
	var spareWrites uint64
	_, spareWrites = maid.spares[0].BytesMoved()
	if spareWrites == 0 {
		t.Error("write did not land on the cache disk")
	}
}

func TestTPMCustomThresholdHonored(t *testing.T) {
	// A huge threshold must prevent all spin-downs on the idle workload
	// that makes the default threshold spin down.
	const dur = 1200.0
	never := mustRun(t, singleSpeedConfig(33), burstyIdle(t, 34, dur), NewTPM(1e9), dur)
	if never.SpinDowns != 0 {
		t.Errorf("TPM with infinite threshold spun down %d times", never.SpinDowns)
	}
	eager := mustRun(t, singleSpeedConfig(33), burstyIdle(t, 34, dur), NewTPM(2), dur)
	if eager.SpinDowns == 0 {
		t.Error("TPM with a 2s threshold never spun down")
	}
}

func TestPDCSizesHotSetWithLoad(t *testing.T) {
	// Heavy aggregate load must keep more groups hot than light load.
	const dur = 1200.0
	light := NewPDC()
	light.Epoch = 300
	mustRun(t, singleSpeedConfig(35), steady(t, 36, dur, 10), light, dur)
	heavy := NewPDC()
	heavy.Epoch = 300
	mustRun(t, singleSpeedConfig(35), steady(t, 36, dur, 400), heavy, dur)
	if heavy.HotGroups() < light.HotGroups() {
		t.Errorf("heavy load kept %d hot groups, light %d", heavy.HotGroups(), light.HotGroups())
	}
	if heavy.HotGroups() < 2 {
		t.Errorf("400 req/s should need >= 2 groups, got %d", heavy.HotGroups())
	}
}
