package policy

import (
	"strconv"

	"hibernator/internal/array"
	"hibernator/internal/obs"
	"hibernator/internal/sim"
	"hibernator/internal/simevent"
)

// DRPM is fine-grained dynamic RPM control in the style of Gurumurthi et
// al.: every short window each group's utilization is examined; lightly
// loaded groups step one speed level down, loaded groups step up, and a
// response-time tripwire yanks everything to full speed. The frequent
// transitions are exactly what Hibernator's coarse epochs argue against.
type DRPM struct {
	// Window between adjustments (default 2 s).
	Window float64
	// StepDownUtil / StepUpUtil bound the per-group utilization band
	// (defaults 0.15 and 0.45). Utilization is busy-time fraction of the
	// window at the current level.
	StepDownUtil float64
	StepUpUtil   float64
	// TripFactor: if the array's windowed mean response time exceeds
	// TripFactor*goal, all groups go to full speed (default 1.0; ignored
	// when no goal is configured).
	TripFactor float64

	env      *sim.Env
	prevBusy []float64
}

// NewDRPM returns a DRPM policy with default tuning.
func NewDRPM() *DRPM { return &DRPM{} }

// Name implements sim.Controller.
func (*DRPM) Name() string { return "DRPM" }

// Init implements sim.Controller.
func (d *DRPM) Init(env *sim.Env) {
	d.env = env
	if d.Window == 0 {
		d.Window = 2.0
	}
	if d.StepDownUtil == 0 {
		d.StepDownUtil = 0.15
	}
	if d.StepUpUtil == 0 {
		d.StepUpUtil = 0.45
	}
	if d.TripFactor == 0 {
		d.TripFactor = 1.0
	}
	groups := env.Array.Groups()
	d.prevBusy = make([]float64, len(groups))
	simevent.NewTicker(env.Engine, d.Window, func(now float64) { d.adjust(now) })
}

// SnapshotState implements sim.StateSnapshotter: the utilization
// baseline (prevBusy) is DRPM's only evolving state.
func (d *DRPM) SnapshotState(put func(key, value string)) {
	put("drpm.prevbusy.n", strconv.Itoa(len(d.prevBusy)))
	put("drpm.prevbusy.fp", strconv.FormatUint(fpFloats(d.prevBusy), 10))
}

func (d *DRPM) adjust(now float64) {
	env := d.env
	full := env.Cfg.Spec.FullLevel()
	// Response-time tripwire.
	if goal := env.Goal(); goal > 0 {
		if mean, n := env.RespWindow.Mean(now); n > 0 && mean > d.TripFactor*goal {
			for _, g := range env.Array.Groups() {
				if from := g.TargetLevel(); from != full {
					env.Trace.Event(now, obs.KindSpeedShift, g.ID(), -1, from, full, "tripwire")
				}
				g.SetLevel(full)
			}
			d.snapshotBusy()
			return
		}
	}
	for gi, g := range env.Array.Groups() {
		busy := groupBusyTime(g)
		util := (busy - d.prevBusy[gi]) / (d.Window * float64(len(g.Disks())))
		d.prevBusy[gi] = busy
		level := g.TargetLevel()
		switch {
		case util > d.StepUpUtil && level < full:
			g.SetLevel(level + 1)
			env.Trace.Event(now, obs.KindSpeedShift, g.ID(), -1, level, level+1, "util step up")
		case util < d.StepDownUtil && level > 0:
			g.SetLevel(level - 1)
			env.Trace.Event(now, obs.KindSpeedShift, g.ID(), -1, level, level-1, "util step down")
		}
	}
}

func (d *DRPM) snapshotBusy() {
	for gi, g := range d.env.Array.Groups() {
		d.prevBusy[gi] = groupBusyTime(g)
	}
}

// groupBusyTime sums cumulative busy seconds across a group's disks.
func groupBusyTime(g *array.Group) float64 {
	sum := 0.0
	for _, d := range g.Disks() {
		sum += d.BusyTime()
	}
	return sum
}
