package policy

import (
	"math"
	"strconv"

	"hibernator/internal/diskmodel"
	"hibernator/internal/heat"
	"hibernator/internal/mg1"
	"hibernator/internal/obs"
	"hibernator/internal/sim"
	"hibernator/internal/simevent"
)

// PDC is Popular Data Concentration: every epoch it ranks extents by
// temperature and concentrates the hottest data onto the fewest groups
// that can carry the load; the remaining groups spin down via an idle
// threshold. The known weakness — which the Hibernator paper exploits —
// is performance: the concentrated disks run hot, and popularity shifts
// force bulk migrations.
type PDC struct {
	// Epoch between re-concentrations (default 1800 s).
	Epoch float64
	// TargetUtil is the per-disk utilization ceiling when sizing the hot
	// group set (default 0.6).
	TargetUtil float64
	// MigrationBudget caps extent moves per epoch (default 128).
	MigrationBudget int
	// IdleThreshold for spinning down cold groups (0 = break-even).
	IdleThreshold float64
	// Alpha is the temperature decay weight (default 0.5).
	Alpha float64

	env     *sim.Env
	tracker *heat.Tracker
	hot     int // groups currently designated hot
}

// NewPDC returns a PDC policy with default tuning.
func NewPDC() *PDC { return &PDC{} }

// Name implements sim.Controller.
func (*PDC) Name() string { return "PDC" }

// Init implements sim.Controller.
func (p *PDC) Init(env *sim.Env) {
	p.env = env
	if p.Epoch == 0 {
		p.Epoch = 1800
	}
	if p.TargetUtil == 0 {
		p.TargetUtil = 0.6
	}
	if p.MigrationBudget == 0 {
		p.MigrationBudget = 128
	}
	if p.IdleThreshold == 0 {
		p.IdleThreshold = BreakEvenTime(&env.Cfg.Spec)
	}
	if p.Alpha == 0 {
		p.Alpha = 0.5
	}
	p.tracker = heat.NewTracker(env.Array, p.Alpha)
	p.hot = len(env.Array.Groups())
	simevent.NewTicker(env.Engine, p.Epoch, func(float64) { p.reconcentrate() })
	simevent.NewTicker(env.Engine, 1.0, func(float64) { p.spinDownCold() })
}

// HotGroups returns how many groups currently hold the popular data.
func (p *PDC) HotGroups() int { return p.hot }

// SnapshotState implements sim.StateSnapshotter: the hot-set size and the
// temperature tracker are PDC's evolving state.
func (p *PDC) SnapshotState(put func(key, value string)) {
	put("pdc.hot", strconv.Itoa(p.hot))
	if p.tracker != nil {
		put("pdc.tracker.fp", strconv.FormatUint(p.tracker.Fingerprint(), 10))
	}
}

func (p *PDC) reconcentrate() {
	env := p.env
	p.tracker.Update(p.Epoch)
	groups := env.Array.Groups()
	spec := &env.Cfg.Spec

	// Size the hot set: smallest k whose disks keep utilization under
	// TargetUtil at full speed, given the predicted total physical rate.
	// Each logical access costs ~1 physical I/O (RAID0) or up to 4
	// (RAID5 small write); use 2 as the blended factor.
	avgSize := int64(8192)
	es, _ := spec.ServiceMoments(spec.FullLevel(), avgSize, diskmodel.ExpectedSeekFrac)
	lambdaTotal := 2 * p.tracker.Total()
	perDisk := mg1.MaxStableLambda(es, p.TargetUtil)
	disksNeeded := 1
	if perDisk > 0 && !math.IsInf(perDisk, 1) {
		disksNeeded = int(math.Ceil(lambdaTotal / perDisk))
	}
	groupSize := len(groups[0].Disks())
	k := (disksNeeded + groupSize - 1) / groupSize
	if k < 1 {
		k = 1
	}
	if k > len(groups) {
		k = len(groups)
	}
	prevHot := p.hot
	p.hot = k
	// From carries the previous hot-set size, To the new one.
	env.Trace.Event(env.Engine.Now(), obs.KindEpochPlan, -1, -1, prevHot, k, "pdc reconcentration")

	// Wake the hot groups so migration is not fighting spin-ups.
	for gi := 0; gi < k; gi++ {
		if groups[gi].AllStandby() {
			env.Trace.Event(env.Engine.Now(), obs.KindSpinUp, gi, -1, -1, -1, "hot group wake")
		}
		groups[gi].SpinUp()
	}

	// Move the hottest extents into groups [0,k): walk ranked extents
	// until the hot groups' slots are spoken for, migrating outsiders in.
	budget := p.MigrationBudget
	capacity := 0
	for gi := 0; gi < k; gi++ {
		total, _ := groups[gi].Slots()
		capacity += total
	}
	ranked := p.tracker.Ranked()
	if len(ranked) < capacity {
		capacity = len(ranked)
	}
	faultAware := env.Array.FaultAware()
	// Only data carrying real load is worth a 2x-extent-size transfer.
	// Demand a sustained access rate (>= ~2 accesses/epoch) so the Zipf
	// tail's one-hit wonders don't churn the full budget forever — the
	// migration I/O itself would keep the cold disks awake.
	minTemp := math.Max(2/p.Epoch, p.tracker.Total()*1e-4)
	for _, e := range ranked[:capacity] {
		if budget <= 0 {
			break
		}
		if p.tracker.Temp(e) < minTemp {
			break // everything after is colder; concentration done
		}
		loc := env.Array.ExtentLocation(e)
		if loc.Group < k || env.Array.Migrating(e) {
			continue
		}
		target := p.pickHotGroup(k, faultAware)
		if target < 0 {
			// Hot groups full: swap with their coldest extent. Both swap
			// endpoints receive data, so both must be legal targets.
			victim := p.coldestIn(k)
			if victim < 0 || env.Array.Migrating(victim) {
				break
			}
			if faultAware && (!p.legalTarget(env.Array.ExtentLocation(victim).Group) || !p.legalTarget(loc.Group)) {
				continue
			}
			if err := env.Array.SwapExtents(e, victim, true, nil); err != nil {
				break
			}
			budget -= 2
			continue
		}
		if err := env.Array.MigrateExtent(e, target, true, nil); err != nil {
			continue
		}
		budget--
	}
}

// legalTarget reports whether group gi may receive migrated data. In a
// fault-aware run a degraded or rebuilding group must not take on new
// extents: every write there pays reconstruction amplification, and once
// the group loses another member the freshly-moved data goes with it.
// (The invariant checker's migrate-legality rule enforces exactly this.)
func (p *PDC) legalTarget(gi int) bool {
	g := p.env.Array.Groups()[gi]
	return !g.Degraded() && !g.Rebuilding()
}

// pickHotGroup returns the hot group with the most free slots, or -1.
// Fault-aware runs skip degraded and rebuilding groups.
func (p *PDC) pickHotGroup(k int, faultAware bool) int {
	best, bestFree := -1, 0
	for gi := 0; gi < k; gi++ {
		if faultAware && !p.legalTarget(gi) {
			continue
		}
		if free := p.env.Array.Groups()[gi].FreeSlots(); free > bestFree {
			best, bestFree = gi, free
		}
	}
	return best
}

// coldestIn returns the coldest extent currently placed in groups [0,k)
// that is not already migrating.
func (p *PDC) coldestIn(k int) int {
	best := -1
	bestTemp := math.Inf(1)
	for e := 0; e < p.env.Array.NumExtents(); e++ {
		if p.env.Array.ExtentLocation(e).Group >= k || p.env.Array.Migrating(e) {
			continue
		}
		if t := p.tracker.Temp(e); t < bestTemp {
			best, bestTemp = e, t
		}
	}
	return best
}

func (p *PDC) spinDownCold() {
	groups := p.env.Array.Groups()
	for gi := p.hot; gi < len(groups); gi++ {
		if groups[gi].IdleFor() >= p.IdleThreshold && groups[gi].Standby() {
			p.env.Trace.Event(p.env.Engine.Now(), obs.KindStandby, gi, -1, -1, -1, "cold group")
		}
	}
}
