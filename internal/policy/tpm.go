package policy

import (
	"strconv"

	"hibernator/internal/diskmodel"
	"hibernator/internal/obs"
	"hibernator/internal/sim"
	"hibernator/internal/simevent"
)

// TPM is traditional threshold-based power management: a group that has
// been idle longer than the threshold spins down; the array spins it back
// up on the next request (paying the spin-up delay in that request's
// response time — the behavior that makes TPM dangerous for data-center
// workloads).
type TPM struct {
	// IdleThreshold in seconds; 0 selects the break-even time of the disk
	// spec (the 2-competitive setting).
	IdleThreshold float64
	// CheckPeriod is how often idle times are polled (default 1 s).
	CheckPeriod float64

	env *sim.Env
}

// NewTPM returns a TPM policy with the given threshold (0 = break-even).
func NewTPM(idleThreshold float64) *TPM {
	return &TPM{IdleThreshold: idleThreshold}
}

// Name implements sim.Controller.
func (*TPM) Name() string { return "TPM" }

// BreakEvenTime returns the idle duration at which spinning down exactly
// pays for the transition energy of a spec:
//
//	T_be = (E_down + E_up) / (P_idle - P_standby)
func BreakEvenTime(spec *diskmodel.Spec) float64 {
	full := spec.FullLevel()
	return (spec.SpinDownEnergy + spec.SpinUpEnergy) / (spec.IdlePower[full] - spec.StandbyPower)
}

// SnapshotState implements sim.StateSnapshotter. TPM keeps no evolving
// state beyond its (possibly defaulted) threshold, but recording it still
// catches a resume whose replay resolved a different break-even time.
func (t *TPM) SnapshotState(put func(key, value string)) {
	put("tpm.idlethreshold", strconv.FormatFloat(t.IdleThreshold, 'g', -1, 64))
	put("tpm.checkperiod", strconv.FormatFloat(t.CheckPeriod, 'g', -1, 64))
}

// Init implements sim.Controller.
func (t *TPM) Init(env *sim.Env) {
	t.env = env
	if t.IdleThreshold == 0 {
		t.IdleThreshold = BreakEvenTime(&env.Cfg.Spec)
	}
	if t.CheckPeriod == 0 {
		t.CheckPeriod = 1.0
	}
	simevent.NewTicker(env.Engine, t.CheckPeriod, func(now float64) {
		for _, g := range env.Array.Groups() {
			if g.IdleFor() >= t.IdleThreshold && g.Standby() {
				env.Trace.Event(now, obs.KindStandby, g.ID(), -1, -1, -1, "idle threshold")
			}
		}
	})
}
