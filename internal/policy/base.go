// Package policy implements the baseline disk-array energy-management
// schemes Hibernator is evaluated against:
//
//   - Base: no power management (full speed, always on)
//   - TPM:  traditional power management — spin down after a fixed idle
//     threshold, spin up on demand
//   - DRPM: fine-grained per-group speed control driven by short-window
//     load observation (Gurumurthi et al., ISCA'03 style)
//   - PDC:  Popular Data Concentration — migrate hot data onto a few
//     disks, spin the rest down (Pinheiro & Bianchini, ICS'04 style)
//   - MAID: cache disks absorb the active set; data disks spin down
//     (Colarelli & Grunwald, SC'02 style)
//
// All policies act through the sim.Env control surface and the array's
// group API, never on disk internals, keeping the comparison fair.
package policy

import "hibernator/internal/sim"

// Base performs no power management: every disk idles at full speed.
type Base struct{}

// NewBase returns the no-power-management baseline.
func NewBase() *Base { return &Base{} }

// Name implements sim.Controller.
func (*Base) Name() string { return "Base" }

// Init implements sim.Controller. Base does nothing.
func (*Base) Init(*sim.Env) {}
