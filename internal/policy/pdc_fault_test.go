package policy

import (
	"testing"

	"hibernator/internal/array"
	"hibernator/internal/fault"
	"hibernator/internal/invariant"
	"hibernator/internal/raid"
	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

// TestPDCDoesNotMigrateOntoDegradedGroup pins the chaos-soak finding from
// this PR (hibchaos seed=1 n=5000: 106 failing scenarios, all PDC): after a member of a
// hot group fail-stops, PDC's reconcentration kept migrating extents INTO
// the degraded group. Every write there pays reconstruction amplification
// and one more failure loses the freshly-moved data, so the invariant
// checker's migrate-legality rule forbids it — this run must stay clean.
func TestPDCDoesNotMigrateOntoDegradedGroup(t *testing.T) {
	const dur = 600.0
	cfg := sim.Config{
		Spec:               singleSpeedConfig(11).Spec,
		Groups:             3,
		GroupDisks:         3,
		Level:              raid.RAID5,
		ExtentBytes:        64 << 20,
		Seed:               11,
		ExpectedRotLatency: true,
		// Arm the fault machinery (FaultAware) without auto-rebuild, so
		// group 0 stays degraded for the rest of the run.
		Retry:  array.RetryPolicy{MaxRetries: 1, Backoff: 0.01, OpDeadline: 0.25},
		Faults: &fault.Schedule{Events: []fault.Event{{Time: 10, Disk: 0, Kind: fault.FailStop}}},
	}
	chk := invariant.New()
	cfg.Invariants = chk

	pdc := NewPDC()
	pdc.Epoch = 60 // several reconcentrations after the failure
	g, err := trace.NewOLTP(trace.OLTPConfig{
		Seed: 12, VolumeBytes: 10 << 30, Duration: dur, MaxRate: 25,
		Regions: 16, ZipfS: 2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(cfg, g, pdc, dur)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.DiskFailures != 1 {
		t.Fatalf("disk failures = %d, want 1", res.Faults.DiskFailures)
	}
	if !chk.Ok() {
		for _, v := range chk.Violations()[:min(3, chk.Count())] {
			t.Errorf("invariant: %s", v.String())
		}
		t.Fatalf("PDC migrated onto the degraded group: %d violation(s)", chk.Count())
	}
}
