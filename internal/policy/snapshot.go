package policy

import "math"

// FNV-1a helpers shared by the policies' SnapshotState implementations.
// Epoch snapshots embed these digests so a resumed run can prove its
// replayed policy state matches the original's bit for bit.

const (
	fnvOffset = uint64(14695981039346656037)
	fnvPrime  = uint64(1099511628211)
)

// fpMix folds one uint64 into an FNV-1a hash byte-wise.
func fpMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}

// fpFloats hashes a float slice by bit pattern, order-sensitively.
func fpFloats(xs []float64) uint64 {
	h := fpMix(fnvOffset, uint64(len(xs)))
	for _, x := range xs {
		h = fpMix(h, math.Float64bits(x))
	}
	return h
}
