package policy

import (
	"container/list"
	"strconv"

	"hibernator/internal/diskmodel"
	"hibernator/internal/obs"
	"hibernator/internal/sim"
	"hibernator/internal/simevent"
	"hibernator/internal/trace"
)

// MAID (Massive Array of Idle Disks) routes the active working set through
// a small set of always-on cache disks (the array's spare disks) so the
// data disks can spin down. Reads that hit a cached chunk are served from
// cache disks; misses go to the array and trigger a background copy-in.
// Writes land on the cache disks (write-back) and destage in the
// background. Data-disk groups spin down after an idle threshold.
//
// The array must be configured with SpareDisks > 0.
type MAID struct {
	// ChunkBytes is the cache-disk allocation unit (default 1 MiB).
	ChunkBytes int64
	// IdleThreshold for data-disk spin-down (0 = break-even time).
	IdleThreshold float64
	// DestagePeriod / DestageMax drive write-back draining (defaults 5 s,
	// 8 chunks per tick).
	DestagePeriod float64
	DestageMax    int

	env    *sim.Env
	spares []*diskmodel.Disk
	slots  int64 // per spare disk

	lru        *list.List // front = most recent; values are chunk ids
	entries    map[int64]*list.Element
	where      map[int64]slotRef
	dirty      map[int64]bool
	dirtyOrder *list.List
	dirtyElem  map[int64]*list.Element
	free       []slotRef

	hits, misses uint64
}

type slotRef struct {
	spare int
	slot  int64
}

// NewMAID returns a MAID policy with default tuning.
func NewMAID() *MAID { return &MAID{} }

// Name implements sim.Controller.
func (*MAID) Name() string { return "MAID" }

// Init implements sim.Controller.
func (m *MAID) Init(env *sim.Env) {
	m.env = env
	m.spares = env.Array.Spares()
	if len(m.spares) == 0 {
		panic("policy: MAID requires SpareDisks > 0 in the array config")
	}
	if m.ChunkBytes == 0 {
		m.ChunkBytes = 1 << 20
	}
	if m.IdleThreshold == 0 {
		m.IdleThreshold = BreakEvenTime(&env.Cfg.Spec)
	}
	if m.DestagePeriod == 0 {
		m.DestagePeriod = 5
	}
	if m.DestageMax == 0 {
		m.DestageMax = 8
	}
	m.slots = env.Cfg.Spec.CapacityBytes / m.ChunkBytes
	m.lru = list.New()
	m.entries = map[int64]*list.Element{}
	m.where = map[int64]slotRef{}
	m.dirty = map[int64]bool{}
	m.dirtyOrder = list.New()
	m.dirtyElem = map[int64]*list.Element{}
	for si := range m.spares {
		for s := int64(0); s < m.slots; s++ {
			m.free = append(m.free, slotRef{spare: si, slot: s})
		}
	}
	simevent.NewTicker(env.Engine, 1.0, func(now float64) {
		for _, g := range env.Array.Groups() {
			if g.IdleFor() >= m.IdleThreshold && g.Standby() {
				env.Trace.Event(now, obs.KindStandby, g.ID(), -1, -1, -1, "idle data group")
			}
		}
	})
	simevent.NewTicker(env.Engine, m.DestagePeriod, func(float64) { m.destage() })
}

// CacheStats returns chunk-level hit/miss counters.
func (m *MAID) CacheStats() (hits, misses uint64) { return m.hits, m.misses }

// SnapshotState implements sim.StateSnapshotter: the chunk cache's LRU
// recency order, slot placement, dirty FIFO, free-list depth and hit/miss
// counters fully determine MAID's future routing decisions.
func (m *MAID) SnapshotState(put func(key, value string)) {
	h := fnvOffset
	for el := m.lru.Front(); el != nil; el = el.Next() {
		c := el.Value.(int64)
		ref := m.where[c]
		h = fpMix(h, uint64(c))
		h = fpMix(h, uint64(ref.spare)<<32|uint64(uint32(ref.slot)))
		if m.dirty[c] {
			h = fpMix(h, 1)
		}
	}
	for el := m.dirtyOrder.Front(); el != nil; el = el.Next() {
		h = fpMix(h, uint64(el.Value.(int64)))
	}
	put("maid.cache.fp", strconv.FormatUint(h, 10))
	put("maid.cached", strconv.Itoa(m.lru.Len()))
	put("maid.dirty", strconv.Itoa(m.dirtyOrder.Len()))
	put("maid.free", strconv.Itoa(len(m.free)))
	put("maid.hits", strconv.FormatUint(m.hits, 10))
	put("maid.misses", strconv.FormatUint(m.misses, 10))
}

// Route implements sim.Router.
func (m *MAID) Route(r trace.Request, finish func()) bool {
	c0 := r.Off / m.ChunkBytes
	c1 := (r.Off + r.Size - 1) / m.ChunkBytes
	if r.Write {
		// Absorb the write on cache disks.
		remaining := 0
		type span struct {
			ref       slotRef
			off, size int64
		}
		var spans []span
		for c := c0; c <= c1; c++ {
			ref := m.ensure(c)
			m.markDirty(c)
			lo, hi := m.overlap(r, c)
			spans = append(spans, span{ref, ref.slot*m.ChunkBytes + lo, hi - lo})
			remaining++
		}
		for _, sp := range spans {
			m.spares[sp.ref.spare].Submit(&diskmodel.Request{
				LBA: sp.off, Size: sp.size, Write: true,
				Done: func(_ *diskmodel.Request, _ float64) {
					remaining--
					if remaining == 0 {
						finish()
					}
				},
			})
		}
		return true
	}
	// Read: serve only if every chunk is cached.
	for c := c0; c <= c1; c++ {
		if _, ok := m.entries[c]; !ok {
			m.misses++
			m.copyInLater(c0, c1)
			return false
		}
	}
	m.hits++
	remaining := 0
	type span struct {
		ref       slotRef
		off, size int64
	}
	var spans []span
	for c := c0; c <= c1; c++ {
		el := m.entries[c]
		m.lru.MoveToFront(el)
		ref := m.where[c]
		lo, hi := m.overlap(r, c)
		spans = append(spans, span{ref, ref.slot*m.ChunkBytes + lo, hi - lo})
		remaining++
	}
	for _, sp := range spans {
		m.spares[sp.ref.spare].Submit(&diskmodel.Request{
			LBA: sp.off, Size: sp.size,
			Done: func(_ *diskmodel.Request, _ float64) {
				remaining--
				if remaining == 0 {
					finish()
				}
			},
		})
	}
	return true
}

// overlap returns the byte range of r within chunk c, chunk-relative.
func (m *MAID) overlap(r trace.Request, c int64) (lo, hi int64) {
	base := c * m.ChunkBytes
	lo, hi = r.Off-base, r.Off+r.Size-base
	if lo < 0 {
		lo = 0
	}
	if hi > m.ChunkBytes {
		hi = m.ChunkBytes
	}
	return lo, hi
}

// copyInLater installs missing chunks and writes them to cache disks in
// the background (the foreground array read brings the data into
// controller memory; only the cache-disk write costs extra I/O).
func (m *MAID) copyInLater(c0, c1 int64) {
	for c := c0; c <= c1; c++ {
		if _, ok := m.entries[c]; ok {
			continue
		}
		ref := m.ensure(c)
		m.spares[ref.spare].Submit(&diskmodel.Request{
			LBA: ref.slot * m.ChunkBytes, Size: m.ChunkBytes, Write: true, Background: true,
			Done: func(_ *diskmodel.Request, _ float64) {},
		})
	}
}

// ensure returns the chunk's slot, inserting (and evicting) as needed.
func (m *MAID) ensure(c int64) slotRef {
	if el, ok := m.entries[c]; ok {
		m.lru.MoveToFront(el)
		return m.where[c]
	}
	var ref slotRef
	if len(m.free) > 0 {
		ref = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
	} else {
		back := m.lru.Back()
		if back == nil {
			panic("policy: MAID cache has zero slots")
		}
		victim := back.Value.(int64)
		m.lru.Remove(back)
		delete(m.entries, victim)
		ref = m.where[victim]
		delete(m.where, victim)
		if m.dirty[victim] {
			m.writeBack(victim, ref)
			m.unmarkDirty(victim)
		}
	}
	m.entries[c] = m.lru.PushFront(c)
	m.where[c] = ref
	return ref
}

func (m *MAID) markDirty(c int64) {
	if m.dirty[c] {
		return
	}
	m.dirty[c] = true
	m.dirtyElem[c] = m.dirtyOrder.PushBack(c)
}

func (m *MAID) unmarkDirty(c int64) {
	if el, ok := m.dirtyElem[c]; ok {
		m.dirtyOrder.Remove(el)
		delete(m.dirtyElem, c)
	}
	delete(m.dirty, c)
}

// writeBack stages a dirty chunk to the array: background read from the
// cache disk, then background write to the data disks.
func (m *MAID) writeBack(c int64, ref slotRef) {
	arrOff := c * m.ChunkBytes
	limit := m.env.Array.LogicalBytes()
	if arrOff >= limit {
		return
	}
	size := m.ChunkBytes
	if arrOff+size > limit {
		size = limit - arrOff
	}
	m.spares[ref.spare].Submit(&diskmodel.Request{
		LBA: ref.slot * m.ChunkBytes, Size: size, Background: true,
		Done: func(_ *diskmodel.Request, _ float64) {
			m.env.Array.SubmitBackground(arrOff, size, true, nil)
		},
	})
}

func (m *MAID) destage() {
	for i := 0; i < m.DestageMax; i++ {
		front := m.dirtyOrder.Front()
		if front == nil {
			return
		}
		c := front.Value.(int64)
		ref, ok := m.where[c]
		if !ok {
			m.unmarkDirty(c)
			continue
		}
		m.writeBack(c, ref)
		m.unmarkDirty(c)
	}
}
