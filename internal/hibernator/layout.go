package hibernator

import (
	"math"

	"hibernator/internal/array"
	"hibernator/internal/heat"
)

// MigrationMode selects how the layout manager moves data (the F8
// ablation).
type MigrationMode int

// Migration modes. The zero value is the paper's default.
const (
	// MigrateBackground moves a budgeted number of extents per epoch as
	// background I/O — the Hibernator default.
	MigrateBackground MigrationMode = iota
	// MigrateEager moves every mismatched extent at once, as foreground
	// I/O — fast convergence, heavy interference.
	MigrateEager
	// MigrateNone disables data movement: speeds still adapt, but hot
	// data may sit on slow groups.
	MigrateNone
)

// String names the mode.
func (m MigrationMode) String() string {
	switch m {
	case MigrateNone:
		return "none"
	case MigrateEager:
		return "eager"
	case MigrateBackground:
		return "background"
	default:
		return "unknown"
	}
}

// Layout maintains the temperature-sorted placement: the hottest extents
// belong on group-rank 0 (the fastest tier), the coldest on the last.
type Layout struct {
	arr     *array.Array
	tracker *heat.Tracker
	mode    MigrationMode
	budget  int // extent moves per Rebalance in background mode

	// levelOf (optional) reports each group's planned speed level; when
	// set, Rebalance skips moves between equal-speed groups — relocating
	// data between same-speed tiers costs I/O and buys nothing.
	levelOf func(group int) int

	// groupHealthy (optional) vetoes migration targets: extents are never
	// moved onto a group that is degraded, suspect or rebuilding.
	groupHealthy func(group int) bool

	// minMoveTemp is the minimum access rate (accesses/second) an extent
	// must sustain to be worth migrating.
	minMoveTemp float64

	moves uint64
	swaps uint64
}

// SetLevelOf installs the group-speed oracle used to prune useless moves.
func (l *Layout) SetLevelOf(fn func(group int) int) { l.levelOf = fn }

// SetGroupHealthy installs the health oracle that vetoes unhealthy
// migration targets.
func (l *Layout) SetGroupHealthy(fn func(group int) bool) { l.groupHealthy = fn }

// SetMinMoveTemp sets the minimum access rate that justifies a migration
// (typically ~20 accesses per epoch).
func (l *Layout) SetMinMoveTemp(v float64) { l.minMoveTemp = v }

// NewLayout builds a layout manager over the array and tracker.
func NewLayout(arr *array.Array, tracker *heat.Tracker, mode MigrationMode, budget int) *Layout {
	if budget <= 0 {
		budget = 256
	}
	return &Layout{arr: arr, tracker: tracker, mode: mode, budget: budget}
}

// Moves returns how many extent moves and swaps this manager has issued.
func (l *Layout) Moves() (moves, swaps uint64) { return l.moves, l.swaps }

// TargetGroup returns the group-rank an extent should occupy under the
// sorted layout: ranked position divided by per-group capacity.
func (l *Layout) targetOf(ranked []int) []int {
	targets := make([]int, l.arr.NumExtents())
	groups := l.arr.Groups()
	gi, filled := 0, 0
	capOf := func(g int) int { total, _ := groups[g].Slots(); return total }
	for _, e := range ranked {
		for filled >= capOf(gi) {
			gi++
			filled = 0
		}
		targets[e] = gi
		filled++
	}
	return targets
}

// Rebalance moves mismatched extents toward their target groups,
// hottest-first, within the mode's budget. It returns the number of
// extents scheduled to move.
func (l *Layout) Rebalance() int {
	if l.mode == MigrateNone {
		return 0
	}
	// A uniform plan (every group at one speed) makes placement moot:
	// moving data would cost I/O and buy nothing, and the tail-drain
	// exception below only prepares descents that a uniform plan is not
	// going to make.
	if l.levelOf != nil {
		uniform := true
		first := l.levelOf(0)
		for g := 1; g < len(l.arr.Groups()); g++ {
			if l.levelOf(g) != first {
				uniform = false
				break
			}
		}
		if uniform {
			return 0
		}
	}
	ranked := l.tracker.Ranked()
	targets := l.targetOf(ranked)
	budget := l.budget
	background := true
	if l.mode == MigrateEager {
		budget = math.MaxInt
		background = false
	}
	scheduled := 0
	// Skip the cold tail: moving an extent costs two extent-sized
	// transfers, so a migration must pay for itself within an epoch —
	// otherwise the tail's one-hit wonders and boundary jitter churn the
	// budget forever. minMoveTemp (set by the controller from the epoch
	// length) demands a minimum access rate; the relative floor demands a
	// non-trivial share of total load.
	minTemp := math.Max(l.minMoveTemp, l.tracker.Total()*1e-4)
	for _, e := range ranked {
		if budget <= 0 {
			break
		}
		if l.tracker.Temp(e) < minTemp {
			// Ranked order: everything after is colder still.
			break
		}
		cur := l.arr.ExtentLocation(e).Group
		want := targets[e]
		if cur == want || l.arr.Migrating(e) {
			continue
		}
		if l.groupHealthy != nil && !l.groupHealthy(want) {
			continue
		}
		if l.levelOf != nil && l.levelOf(cur) == l.levelOf(want) {
			// Moving between equal-speed groups usually buys nothing —
			// except draining the last-rank group, which is what lets CR
			// slow it down next epoch. Allow that one case.
			lastRank := len(l.arr.Groups()) - 1
			if cur != lastRank && want != lastRank {
				continue
			}
		}
		if err := l.arr.MigrateExtent(e, want, background, nil); err == nil {
			l.moves++
			scheduled++
			budget--
			continue
		}
		// Target full: swap with the coldest extent misplaced there. The
		// victim lands on this extent's current group, so that side must
		// be healthy too.
		if l.groupHealthy != nil && !l.groupHealthy(cur) {
			continue
		}
		victim := l.coldestMisplacedIn(want, targets)
		if victim < 0 || l.arr.Migrating(victim) {
			continue
		}
		if err := l.arr.SwapExtents(e, victim, background, nil); err == nil {
			l.swaps++
			scheduled += 2
			budget -= 2
		}
	}
	return scheduled
}

// coldestMisplacedIn finds the coldest extent in group g whose target is
// another group (so the swap helps both), or any coldest if none is
// misplaced.
func (l *Layout) coldestMisplacedIn(g int, targets []int) int {
	best, bestAny := -1, -1
	bestTemp, bestAnyTemp := math.Inf(1), math.Inf(1)
	for e := 0; e < l.arr.NumExtents(); e++ {
		if l.arr.ExtentLocation(e).Group != g || l.arr.Migrating(e) {
			continue
		}
		t := l.tracker.Temp(e)
		if t < bestAnyTemp {
			bestAny, bestAnyTemp = e, t
		}
		if targets[e] != g && t < bestTemp {
			best, bestTemp = e, t
		}
	}
	if best >= 0 {
		return best
	}
	return bestAny
}

// Misplaced counts extents whose current group differs from the sorted
// target (instrumentation for tests and the F8 ablation).
func (l *Layout) Misplaced() int {
	ranked := l.tracker.Ranked()
	targets := l.targetOf(ranked)
	n := 0
	for e := 0; e < l.arr.NumExtents(); e++ {
		if l.tracker.Temp(e) > 0 && l.arr.ExtentLocation(e).Group != targets[e] {
			n++
		}
	}
	return n
}
