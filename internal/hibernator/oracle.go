package hibernator

import (
	"sort"

	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

// Oracle is the clairvoyant upper bound on epoch-based speed setting: it
// receives the entire request stream in advance, computes each epoch's
// per-extent load exactly (no estimation, no decay), assumes data is
// always perfectly sorted onto tiers (no migration cost or interference),
// and feeds those future loads to the same CR optimizer Hibernator uses.
//
// It is unrealizable — no online policy knows the future — but it bounds
// how much energy any epoch-granularity policy with the same goal could
// save, which calibrates how much of the headroom Hibernator's estimation
// and migration machinery actually captures (experiment X4).
type Oracle struct {
	opts Options
	reqs []trace.Request

	env      *sim.Env
	pos      int // index of the first request at or after the next epoch
	lastPlan CRPlan
	epochs   uint64
	meter    meter
}

// NewOracle builds the clairvoyant policy over a fully materialized trace
// (which must be time-ordered, as all trace.Sources are).
func NewOracle(reqs []trace.Request, opts Options) *Oracle {
	o := &Oracle{opts: opts, reqs: reqs}
	o.opts.applyDefaults()
	return o
}

// Name implements sim.Controller.
func (o *Oracle) Name() string { return "Oracle" }

// Epochs returns how many epoch boundaries have been processed.
func (o *Oracle) Epochs() uint64 { return o.epochs }

// Plan returns the most recent decision.
func (o *Oracle) Plan() CRPlan { return o.lastPlan }

// Init implements sim.Controller. The oracle plans epoch [0, E) before any
// request arrives — it knows the future, so there is no warm-up epoch at
// full speed.
func (o *Oracle) Init(env *sim.Env) {
	o.env = env
	o.meter = meter{physInit: o.opts.PhysFactorInit}
	o.planEpoch(0)
	var tick func(start float64)
	tick = func(start float64) {
		env.Engine.At(start, func() {
			o.planEpoch(start)
			tick(start + o.opts.Epoch)
		})
	}
	tick(o.opts.Epoch)
}

// planEpoch sets levels for the epoch starting at `start` using its exact
// future loads.
func (o *Oracle) planEpoch(start float64) {
	env := o.env
	o.epochs++
	end := start + o.opts.Epoch
	eb := env.Array.ExtentBytes()
	temp := make([]float64, env.Array.NumExtents())
	for ; o.pos < len(o.reqs) && o.reqs[o.pos].Time < end; o.pos++ {
		r := o.reqs[o.pos]
		if e := int(r.Off / eb); e < len(temp) {
			temp[e] += 1 / o.opts.Epoch
		}
	}
	// Rank extents by this epoch's exact load, hottest first.
	ranked := make([]int, len(temp))
	for i := range ranked {
		ranked[i] = i
	}
	sort.SliceStable(ranked, func(a, b int) bool { return temp[ranked[a]] > temp[ranked[b]] })

	// Teleport the layout into the perfect sort: clairvoyance plus free,
	// instant migration — the upper bound on what any layout policy with
	// the same epochs could achieve. Swaps are resolved rank by rank.
	groups := env.Array.Groups()
	loads := make([]float64, len(groups))
	gi, filled := 0, 0
	capOf := func(g int) int { total, _ := groups[g].Slots(); return total }
	// slotOccupant[g] lists extents currently in group g.
	occupants := make([][]int, len(groups))
	for e := 0; e < env.Array.NumExtents(); e++ {
		g := env.Array.ExtentLocation(e).Group
		occupants[g] = append(occupants[g], e)
	}
	taken := make([]bool, env.Array.NumExtents())
	for _, e := range ranked {
		for filled >= capOf(gi) {
			gi++
			filled = 0
		}
		want := gi
		loads[gi] += temp[e]
		filled++
		cur := env.Array.ExtentLocation(e).Group
		taken[e] = true
		if cur == want || temp[e] == 0 {
			continue
		}
		// Swap with any not-yet-finalized occupant of the target group.
		swapped := false
		for len(occupants[want]) > 0 {
			victim := occupants[want][len(occupants[want])-1]
			occupants[want] = occupants[want][:len(occupants[want])-1]
			if taken[victim] || env.Array.ExtentLocation(victim).Group != want {
				continue
			}
			if err := env.Array.TeleportSwap(e, victim); err == nil {
				occupants[cur] = append(occupants[cur], victim)
				swapped = true
			}
			break
		}
		_ = swapped
	}
	current := make([]int, len(groups))
	for i, g := range groups {
		current[i] = g.TargetLevel()
	}
	// Clairvoyance covers loads; hardware calibration and the cache-miss
	// goal translation are metered exactly like the online controller.
	m := o.meter.sample(env)
	o.lastPlan = Solve(CRInput{
		Spec:          &env.Cfg.Spec,
		GroupLoads:    loads,
		DisksPerGroup: len(groups[0].Disks()),
		CurrentLevels: current,
		PhysFactor:    m.physFactor,
		AvgSize:       m.avgSize,
		SeekOverhead:  m.seekOverhead,
		SeqFraction:   m.seqFrac,
		Goal:          m.effGoal,
		Margin:        o.opts.Margin,
		Epoch:         o.opts.Epoch,
		MaxRho:        o.opts.MaxRho,
	})
	for i, g := range groups {
		g.SpinUp()
		g.SetLevel(o.lastPlan.Levels[i])
	}
}
