package hibernator

import (
	"testing"

	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

func TestAdaptiveEpochLengthensWhenStable(t *testing.T) {
	const duration = 4800.0
	ctrl := New(Options{Epoch: 300, AdaptiveEpoch: true})
	// Steady light load: after the first couple of epochs the plan should
	// stabilize and the interval should grow.
	_, err := sim.Run(hibConfig(31, 0.030), lightOLTP(t, 32, duration, 20), ctrl, duration)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.CurrentEpoch() <= 300 {
		t.Errorf("epoch stayed at %v under a stable plan, want > base", ctrl.CurrentEpoch())
	}
	if ctrl.CurrentEpoch() > 4*300 {
		t.Errorf("epoch %v exceeds the 4x cap", ctrl.CurrentEpoch())
	}
	// Fewer epochs than the fixed schedule would have run.
	if ctrl.Epochs() >= uint64(duration/300) {
		t.Errorf("adaptive mode ran %d epochs, fixed would run %d", ctrl.Epochs(), int(duration/300))
	}
}

func TestFixedEpochUnchangedByDefault(t *testing.T) {
	const duration = 1500.0
	ctrl := New(Options{Epoch: 300})
	_, err := sim.Run(hibConfig(33, 0.030), lightOLTP(t, 34, duration, 20), ctrl, duration)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.CurrentEpoch() != 300 {
		t.Errorf("fixed mode drifted to %v", ctrl.CurrentEpoch())
	}
	if ctrl.Epochs() != 5 {
		t.Errorf("ran %d epochs, want 5", ctrl.Epochs())
	}
}

func TestLevelsEqual(t *testing.T) {
	if !levelsEqual([]int{1, 2}, []int{1, 2}) {
		t.Error("equal slices reported unequal")
	}
	if levelsEqual([]int{1, 2}, []int{1, 3}) || levelsEqual([]int{1}, []int{1, 2}) {
		t.Error("unequal slices reported equal")
	}
}

func TestOracleSavesAtLeastAsMuchTrend(t *testing.T) {
	// The clairvoyant bound should meet the goal and save energy on a
	// light workload; and with identical epochs it should not do *worse*
	// than no power management.
	const duration = 2400.0
	goal := 0.030
	src := lightOLTP(t, 42, duration, 20)
	reqs := trace.Drain(src, 0)

	base, err := sim.Run(hibConfig(41, goal), trace.NewSliceSource(reqs), baseController{}, duration)
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewOracle(reqs, Options{Epoch: 300})
	res, err := sim.Run(hibConfig(41, goal), trace.NewSliceSource(reqs), oracle, duration)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Epochs() < 8 {
		t.Errorf("oracle planned %d epochs", oracle.Epochs())
	}
	if s := res.SavingsVs(base); s < 0.2 {
		t.Errorf("oracle savings %.2f, want >= 0.2 on a light workload", s)
	}
	if res.MeanResp > goal {
		t.Errorf("oracle mean %.4f broke the goal %.4f", res.MeanResp, goal)
	}
}

func TestOracleFirstEpochAlreadySlow(t *testing.T) {
	// Unlike the online controller, the oracle slows down from t=0 on a
	// quiet trace.
	const duration = 600.0
	reqs := []trace.Request{{Time: 100, Off: 0, Size: 4096}}
	oracle := NewOracle(reqs, Options{Epoch: 300})
	res, err := sim.Run(hibConfig(43, 0.050), trace.NewSliceSource(reqs), oracle, duration)
	if err != nil {
		t.Fatal(err)
	}
	// Nearly the whole run at the lowest level: energy close to 4 disks
	// at the slowest idle power.
	spec := hibConfig(43, 0).Spec
	ceiling := 1.3 * 4 * duration * spec.IdlePower[0]
	if res.Energy > ceiling {
		t.Errorf("oracle energy %.0f J, want near the all-slow floor (<%.0f)", res.Energy, ceiling)
	}
}
