package hibernator

import "hibernator/internal/sim"

// meter samples the per-epoch workload measurements CR's model needs:
// logical→physical amplification, mean physical request size, positioning
// time, sequentiality, and the cache-miss fraction that translates the
// array-level goal into the disk-level budget. Both the online Controller
// and the clairvoyant Oracle meter the same way — clairvoyance covers
// future loads, not hardware calibration.
type meter struct {
	physInit   float64
	prevLogIO  uint64
	prevPhysIO uint64
	prevArrIO  uint64
	prevReqs   uint64
}

// metrics is one epoch's sample.
type metrics struct {
	physFactor   float64
	avgSize      int64
	seekOverhead float64
	seqFrac      float64
	// effGoal is the disk-level response budget implied by the array
	// goal and the measured miss fraction (equal to goal when unknown).
	effGoal float64
}

// sample reads the array's counters, diffs them against the previous
// sample and returns this epoch's metrics.
func (m *meter) sample(env *sim.Env) metrics {
	out := metrics{physFactor: m.physInit, avgSize: 8192, effGoal: env.Goal()}
	var logIO uint64
	for e := 0; e < env.Array.NumExtents(); e++ {
		logIO += env.Array.ExtentAccesses(e)
	}
	physIO := env.Array.FanoutIOs()
	var sizeSum, sizeCnt, posSum, posCnt, seqCnt float64
	for _, g := range env.Array.Groups() {
		for _, d := range g.Disks() {
			sizeSum += d.SizeMoments().Sum()
			sizeCnt += float64(d.SizeMoments().Count())
			posSum += d.PositionMoments().Sum()
			posCnt += float64(d.PositionMoments().Count())
			seqCnt += float64(d.SequentialForeground())
		}
	}
	if dLog := logIO - m.prevLogIO; dLog > 0 {
		if pf := float64(physIO-m.prevPhysIO) / float64(dLog); pf > 0 {
			out.physFactor = pf
		}
	}
	m.prevLogIO, m.prevPhysIO = logIO, physIO
	if sizeCnt > 0 {
		out.avgSize = int64(sizeSum / sizeCnt)
	}
	if posCnt > 0 {
		out.seekOverhead = posSum / posCnt
		out.seqFrac = seqCnt / posCnt
	}
	// The goal constrains the *array-level* mean response time, but the
	// controller cache absorbs a fraction of requests at near-zero
	// latency; the disks only have to keep the remainder fast:
	//   goal = miss*R_disk + (1-miss)*cacheLat  =>  allowed R_disk.
	if out.effGoal > 0 {
		arrIO := env.Array.Completed()
		reqs := env.RespCum.Count()
		if dReqs := reqs - m.prevReqs; dReqs > 0 {
			missFrac := float64(arrIO-m.prevArrIO) / float64(dReqs)
			if missFrac > 1 {
				missFrac = 1
			}
			if missFrac > 0.01 {
				if adj := (out.effGoal - (1-missFrac)*sim.CacheHitLatency) / missFrac; adj > out.effGoal {
					out.effGoal = adj
				}
			}
		}
		m.prevArrIO, m.prevReqs = arrIO, reqs
	}
	return out
}
