package hibernator

import (
	"testing"

	"hibernator/internal/array"
	"hibernator/internal/diskmodel"
	"hibernator/internal/heat"
	"hibernator/internal/raid"
	"hibernator/internal/sim"
	"hibernator/internal/simevent"
	"hibernator/internal/stats"
)

func faultEnv(t *testing.T, groups, groupDisks int, level raid.Level) (*simevent.Engine, *sim.Env) {
	t.Helper()
	e := simevent.New()
	spec := diskmodel.MultiSpeedUltrastar(5, 3000)
	arr, err := array.New(array.Config{
		Engine: e, Spec: &spec, Groups: groups, GroupDisks: groupDisks,
		Level: level, ExtentBytes: 64 << 20, Seed: 1, ExpectedRotLatency: true,
		// An armed health tracker is what switches the controller into
		// fault-aware mode; with a zero policy it behaves exactly as the
		// pre-fault build (see Array.FaultAware).
		Retry: array.RetryPolicy{SuspectAfter: 10, EvictAfter: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &sim.Config{Spec: spec, RespGoal: 0.03, RespWindow: 60}
	return e, &sim.Env{
		Engine: e, Array: arr, Cfg: cfg,
		RespWindow: stats.NewWindowTracker(60, 60),
		RespCum:    &stats.CumulativeTracker{},
	}
}

// TestApplyPlanPinsUnhealthyGroupAtFullSpeed: the CR plan may want a
// degraded group slow; the controller must refuse and hold it at full
// speed until it heals.
func TestApplyPlanPinsUnhealthyGroupAtFullSpeed(t *testing.T) {
	e, env := faultEnv(t, 2, 4, raid.RAID5)
	arr := env.Array
	c := New(Options{DisableBoost: true})
	c.Init(env)

	full := env.Cfg.Spec.FullLevel()
	c.lastPlan = CRPlan{Levels: []int{0, 0}} // plan: everything slow
	c.curLoads = []float64{0, 0}
	c.sortedLoads = []float64{0, 0}
	if err := arr.FailDisk(1, 2); err != nil {
		t.Fatal(err)
	}
	c.planGen++
	c.applyPlan()
	e.Run(120) // let staggered shifts land

	if got := arr.Groups()[0].TargetLevel(); got != 0 {
		t.Errorf("healthy group target level = %d, want planned 0", got)
	}
	if got := arr.Groups()[1].TargetLevel(); got != full {
		t.Errorf("degraded group target level = %d, want pinned full %d", got, full)
	}
}

// TestRebalanceAvoidsUnhealthyTarget: the layout must not migrate extents
// onto a group the health oracle vetoes, and must resume once it heals.
func TestRebalanceAvoidsUnhealthyTarget(t *testing.T) {
	e, env := faultEnv(t, 2, 1, raid.RAID0)
	arr := env.Array
	tracker := heat.NewTracker(arr, 0.5)
	l := NewLayout(arr, tracker, MigrateEager, 0)

	// Heat one extent that lives on group 1: its sorted target is the
	// fast tier, group 0.
	hot := -1
	for ei := 0; ei < arr.NumExtents(); ei++ {
		if arr.ExtentLocation(ei).Group == 1 {
			hot = ei
			break
		}
	}
	if hot < 0 {
		t.Fatal("no extent on group 1")
	}
	for i := 0; i < 100; i++ {
		arr.Submit(int64(hot)*arr.ExtentBytes(), 4096, false, func(float64) {})
	}
	e.RunAll()
	tracker.Update(3600)

	healthy := false
	l.SetGroupHealthy(func(g int) bool { return g != 0 || healthy })
	if n := l.Rebalance(); n != 0 {
		t.Fatalf("scheduled %d moves onto an unhealthy group", n)
	}
	healthy = true
	if n := l.Rebalance(); n == 0 {
		t.Fatal("no moves scheduled after the group healed")
	}
	e.RunAll()
	if arr.ExtentLocation(hot).Group != 0 {
		t.Fatal("hot extent did not reach the fast tier")
	}
}

// TestBoostThreatOverridesMute: a muted watchdog must still engage on a
// severe window violation while the array carries a standing fault.
func TestBoostThreatOverridesMute(t *testing.T) {
	_, env := faultEnv(t, 2, 4, raid.RAID5)
	threat := false
	b := NewBoost(env, nil)
	b.SetThreat(func() bool { return threat })
	b.Mute(1000)

	goal := env.Goal()
	for i := 0; i < 10; i++ {
		env.RespWindow.Observe(0, 3*goal) // severe: window >> goal
	}
	b.check(0)
	if b.Active() {
		t.Fatal("muted watchdog engaged without a threat")
	}
	threat = true
	b.check(0)
	if !b.Active() {
		t.Fatal("standing fault threat must override the mute")
	}
}
