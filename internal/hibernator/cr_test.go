package hibernator

import (
	"math"
	"testing"
	"testing/quick"

	"hibernator/internal/diskmodel"
)

func crInput(loads []float64, goal float64) CRInput {
	spec := diskmodel.MultiSpeedUltrastar(5, 3000)
	cur := make([]int, len(loads))
	for i := range cur {
		cur[i] = spec.FullLevel()
	}
	return CRInput{
		Spec:          &spec,
		GroupLoads:    loads,
		DisksPerGroup: 1,
		CurrentLevels: cur,
		PhysFactor:    1,
		AvgSize:       8192,
		Goal:          goal,
		Margin:        0.9,
		Epoch:         3600,
		MaxRho:        0.9,
	}
}

func TestIdleArrayGoesSlowest(t *testing.T) {
	in := crInput([]float64{0, 0, 0, 0}, 0.010)
	plan := Solve(in)
	if !plan.Feasible {
		t.Fatal("zero load must be feasible")
	}
	for i, l := range plan.Levels {
		if l != 0 {
			t.Errorf("group %d level %d, want 0 (slowest)", i, l)
		}
	}
}

func TestHeavyLoadStaysFast(t *testing.T) {
	// Per-disk service at full speed ~4 ms: 200 req/s saturates. Load at
	// 150/s per group forces full speed everywhere with a tight goal.
	in := crInput([]float64{150, 150, 150, 150}, 0.010)
	plan := Solve(in)
	full := in.Spec.FullLevel()
	for i, l := range plan.Levels {
		if l != full {
			t.Errorf("group %d level %d under heavy load, want %d", i, l, full)
		}
	}
}

func TestSkewedLoadCreatesTiers(t *testing.T) {
	// Hot rank 0, lukewarm rank 1, cold ranks 2-3: CR should build a
	// multi-speed configuration with a moderately loose goal.
	in := crInput([]float64{120, 20, 0.5, 0.01}, 0.030)
	plan := Solve(in)
	if !plan.Feasible {
		t.Fatal("plan should be feasible")
	}
	if plan.Levels[0] <= plan.Levels[3] {
		t.Errorf("levels %v: hot rank should be faster than cold", plan.Levels)
	}
	// Nonincreasing by construction.
	for i := 1; i < len(plan.Levels); i++ {
		if plan.Levels[i] > plan.Levels[i-1] {
			t.Fatalf("levels %v not nonincreasing", plan.Levels)
		}
	}
	// Energy prediction should beat all-full.
	full := Solve(crInput([]float64{120, 20, 0.5, 0.01}, 0)) // no goal: min energy
	if plan.PredictedEnergy > 1.001*energyOfAllFull(in) {
		t.Errorf("plan energy %v should not exceed all-full %v", plan.PredictedEnergy, energyOfAllFull(in))
	}
	_ = full
}

func energyOfAllFull(in CRInput) float64 {
	spec := in.Spec
	fullLevel := spec.FullLevel()
	es, _ := spec.ServiceMoments(fullLevel, in.AvgSize, diskmodel.ExpectedSeekFrac)
	sum := 0.0
	for _, load := range in.GroupLoads {
		rho := load * es
		sum += (spec.IdlePower[fullLevel]*(1-rho) + spec.ActivePower[fullLevel]*rho) * in.Epoch
	}
	return sum
}

func TestTightGoalFallsBackToFull(t *testing.T) {
	// Goal below even the full-speed response time: infeasible, expect
	// all-full fallback flagged infeasible.
	in := crInput([]float64{50, 50, 50, 50}, 0.0001)
	plan := Solve(in)
	if plan.Feasible {
		t.Fatal("impossibly tight goal must be infeasible")
	}
	full := in.Spec.FullLevel()
	for _, l := range plan.Levels {
		if l != full {
			t.Errorf("fallback level %d, want full", l)
		}
	}
	if plan.PredictedEnergy <= 0 {
		t.Error("fallback must still predict energy")
	}
}

func TestNoGoalMinimizesEnergy(t *testing.T) {
	in := crInput([]float64{10, 5, 1, 0}, 0)
	plan := Solve(in)
	if !plan.Feasible {
		t.Fatal("no goal: always feasible (subject to rho)")
	}
	// With no goal, everything that fits under MaxRho should sink to the
	// lowest level.
	for i, l := range plan.Levels {
		es, _ := in.Spec.ServiceMoments(0, in.AvgSize, diskmodel.ExpectedSeekFrac)
		if in.GroupLoads[i]*es < 0.9 && l != 0 {
			t.Errorf("group %d at level %d despite fitting at level 0", i, l)
		}
	}
}

func TestRhoCapRespected(t *testing.T) {
	// Load that fits at full speed but would saturate slow levels: the
	// plan must never assign a level where rho >= MaxRho.
	in := crInput([]float64{100, 80, 60, 40}, 0.050)
	plan := Solve(in)
	for i, l := range plan.Levels {
		es, _ := in.Spec.ServiceMoments(l, in.AvgSize, diskmodel.ExpectedSeekFrac)
		rho := in.GroupLoads[i] * in.PhysFactor * es
		if rho >= in.MaxRho {
			t.Errorf("group %d: rho %v at level %d breaches cap", i, rho, l)
		}
	}
}

func TestTransitionCostDiscouragesChurn(t *testing.T) {
	// Current levels already at a good configuration; a tiny load change
	// should keep the same levels rather than paying shift energy.
	in := crInput([]float64{0, 0, 0, 0}, 0.050)
	in.CurrentLevels = []int{0, 0, 0, 0}
	plan := Solve(in)
	for i, l := range plan.Levels {
		if l != 0 {
			t.Errorf("group %d moved to %d for no reason", i, l)
		}
	}
}

func TestSingleLevelSpecDegenerates(t *testing.T) {
	spec := diskmodel.MultiSpeedUltrastar(1, 0)
	in := CRInput{
		Spec:          &spec,
		GroupLoads:    []float64{10, 10},
		DisksPerGroup: 2,
		CurrentLevels: []int{0, 0},
		Epoch:         3600,
	}
	plan := Solve(in)
	if plan.Evaluated != 1 {
		t.Errorf("single level should evaluate exactly one composition, got %d", plan.Evaluated)
	}
	if plan.Levels[0] != 0 || plan.Levels[1] != 0 {
		t.Errorf("levels = %v", plan.Levels)
	}
}

func TestSolveValidation(t *testing.T) {
	spec := diskmodel.MultiSpeedUltrastar(2, 6000)
	cases := []CRInput{
		{Spec: &spec, GroupLoads: nil, CurrentLevels: nil, DisksPerGroup: 1, Epoch: 1},
		{Spec: &spec, GroupLoads: []float64{1}, CurrentLevels: []int{0, 0}, DisksPerGroup: 1, Epoch: 1},
		{Spec: &spec, GroupLoads: []float64{1}, CurrentLevels: []int{0}, DisksPerGroup: 0, Epoch: 1},
		{Spec: &spec, GroupLoads: []float64{1}, CurrentLevels: []int{0}, DisksPerGroup: 1, Epoch: 0},
	}
	for i := range cases {
		in := cases[i]
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d must panic", i)
				}
			}()
			Solve(in)
		}()
	}
}

// Property: the chosen plan is never worse (in predicted energy) than the
// all-full-speed assignment when both are feasible, and levels are always
// nonincreasing across ranks.
func TestPlanDominatesFullProperty(t *testing.T) {
	f := func(raw [4]uint16, goalRaw uint8) bool {
		loads := make([]float64, 4)
		for i, r := range raw {
			loads[i] = float64(r%2000) / 10 // 0..200 req/s
		}
		// Sort descending to mimic the sorted layout.
		for i := 0; i < len(loads); i++ {
			for j := i + 1; j < len(loads); j++ {
				if loads[j] > loads[i] {
					loads[i], loads[j] = loads[j], loads[i]
				}
			}
		}
		goal := 0.005 + float64(goalRaw)/255.0*0.1
		in := crInput(loads, goal)
		plan := Solve(in)
		for i := 1; i < len(plan.Levels); i++ {
			if plan.Levels[i] > plan.Levels[i-1] {
				return false
			}
		}
		if !plan.Feasible {
			return true
		}
		return plan.PredictedEnergy <= energyOfAllFull(in)*1.0001+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: loosening the goal never increases the minimum energy.
func TestMonotoneInGoalProperty(t *testing.T) {
	loads := []float64{90, 40, 10, 1}
	prev := math.Inf(1)
	for _, goal := range []float64{0.006, 0.010, 0.020, 0.040, 0.080, 0.2} {
		plan := Solve(crInput(loads, goal))
		if !plan.Feasible {
			continue
		}
		if plan.PredictedEnergy > prev*1.0001 {
			t.Errorf("goal %v: energy %v exceeds tighter goal's %v", goal, plan.PredictedEnergy, prev)
		}
		prev = plan.PredictedEnergy
	}
	if math.IsInf(prev, 1) {
		t.Fatal("no goal was feasible; test broken")
	}
}

// BenchmarkSolve measures one epoch's composition enumeration at the
// paper's scale (16 groups x 5 levels: C(20,4) = 4845 evaluations).
func BenchmarkSolve(b *testing.B) {
	loads := make([]float64, 16)
	for i := range loads {
		loads[i] = 100 / float64(i+1)
	}
	in := crInput(loads, 0.020)
	in.CurrentLevels = make([]int, 16)
	for i := range in.CurrentLevels {
		in.CurrentLevels[i] = in.Spec.FullLevel()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(in)
	}
}
