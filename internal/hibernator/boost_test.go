package hibernator

import (
	"testing"

	"hibernator/internal/array"
	"hibernator/internal/diskmodel"
	"hibernator/internal/raid"
	"hibernator/internal/sim"
	"hibernator/internal/simevent"
	"hibernator/internal/stats"
)

// boostEnv builds a minimal Env around a real array so Boost's group
// manipulation works, with hand-fed response-time trackers.
func boostEnv(t *testing.T, goal float64) *sim.Env {
	t.Helper()
	engine := simevent.New()
	spec := diskmodel.MultiSpeedUltrastar(5, 3000)
	arr, err := array.New(array.Config{
		Engine: engine, Spec: &spec, Groups: 2, GroupDisks: 1,
		Level: raid.RAID0, ExtentBytes: 64 << 20, Seed: 1,
		InitialLevel: spec.FullLevel(), ExpectedRotLatency: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &sim.Config{Spec: spec, RespGoal: goal, RespWindow: 60}
	return &sim.Env{
		Engine:     engine,
		Array:      arr,
		Cfg:        cfg,
		RespWindow: stats.NewWindowTracker(60, 60),
		RespCum:    &stats.CumulativeTracker{},
	}
}

// feed injects n observations of value v at the engine's current time.
func feed(env *sim.Env, n int, v float64) {
	for i := 0; i < n; i++ {
		env.RespWindow.Observe(env.Engine.Now(), v)
		env.RespCum.Observe(v)
	}
}

func TestBoostSevereSurgeEngagesImmediately(t *testing.T) {
	env := boostEnv(t, 0.010)
	restored := 0
	b := NewBoost(env, func() { restored++ })
	env.Array.Groups()[0].SetLevel(0)
	env.Engine.Run(30) // let the shift finish

	// Plenty of cumulative slack, but a severe surge (>2x goal).
	feed(env, 500, 0.005)
	feed(env, 50, 0.200)
	env.Engine.Run(40) // next watchdog ticks
	if !b.Active() {
		t.Fatal("severe surge must engage the boost")
	}
	full := env.Cfg.Spec.FullLevel()
	for _, g := range env.Array.Groups() {
		if g.TargetLevel() != full {
			t.Errorf("group %d not commanded to full speed", g.ID())
		}
	}
	if b.Count() != 1 {
		t.Errorf("Count = %d", b.Count())
	}
}

func TestBoostToleratesMinorBlipWithSlack(t *testing.T) {
	env := boostEnv(t, 0.010)
	b := NewBoost(env, nil)
	// Cumulative mean far below goal; one window slightly above it.
	feed(env, 5000, 0.004)
	feed(env, 100, 0.012)
	env.Engine.Run(40)
	if b.Active() {
		t.Fatal("minor violation with ample slack must not engage")
	}
}

func TestBoostMinorViolationWithoutSlackEngages(t *testing.T) {
	env := boostEnv(t, 0.010)
	b := NewBoost(env, nil)
	// Cumulative mean already at 0.95x goal; let that history age out of
	// the sliding window, then a minor violation arrives.
	feed(env, 5000, 0.0095)
	env.Engine.Run(100)
	feed(env, 200, 0.012)
	env.Engine.Run(140)
	if !b.Active() {
		t.Fatal("minor violation with eroded slack must engage")
	}
}

func TestBoostCumEmergencyIgnoresMute(t *testing.T) {
	env := boostEnv(t, 0.010)
	b := NewBoost(env, nil)
	b.Mute(1e6)             // mute "forever"
	feed(env, 5000, 0.0099) // cumulative mean at 0.99x goal
	env.Engine.Run(40)
	if !b.Active() {
		t.Fatal("cumulative emergency must bypass the mute")
	}
}

func TestBoostMuteSuppressesWindowTrigger(t *testing.T) {
	env := boostEnv(t, 0.010)
	b := NewBoost(env, nil)
	b.Mute(500)
	// Lots of calm history keeps the cumulative mean low; age it past the
	// window, then a severe spike arrives — muted, so no engagement.
	feed(env, 100000, 0.004)
	env.Engine.Run(100)
	feed(env, 100, 0.300)
	env.Engine.Run(140)
	if b.Active() {
		t.Fatal("muted window trigger fired")
	}
}

func TestBoostReleaseNeedsProjectedSlack(t *testing.T) {
	env := boostEnv(t, 0.010)
	restored := 0
	b := NewBoost(env, func() { restored++ })
	b.SetDescentCost(func() float64 { return 0 })
	// Engage via severe surge.
	feed(env, 200, 0.500)
	env.Engine.Run(40)
	if !b.Active() {
		t.Fatal("setup: boost did not engage")
	}
	// Cum is terrible; calm windows alone must not release.
	env.Engine.Run(200)
	if !b.Active() {
		t.Fatal("released with cumulative mean far above goal")
	}
	// Dilute the cumulative mean below the release margin with calm data.
	feed(env, 100000, 0.001)
	env.Engine.Run(300)
	if b.Active() {
		t.Fatal("boost failed to release once slack was earned back")
	}
	if restored != 1 {
		t.Errorf("restore ran %d times, want 1", restored)
	}
}

func TestBoostReleaseBlockedByDescentCost(t *testing.T) {
	env := boostEnv(t, 0.010)
	b := NewBoost(env, nil)
	// Descent would immediately cost more slack than exists.
	b.SetDescentCost(func() float64 { return 1e9 })
	feed(env, 200, 0.500)
	env.Engine.Run(40)
	if !b.Active() {
		t.Fatal("setup: boost did not engage")
	}
	feed(env, 100000, 0.001)
	env.Engine.Run(300)
	if !b.Active() {
		t.Fatal("release must be blocked when the descent cost would spend the slack")
	}
}

func TestBoostNoGoalNoWatchdog(t *testing.T) {
	env := boostEnv(t, 0)
	b := NewBoost(env, nil)
	feed(env, 100, 10.0)
	env.Engine.Run(120)
	if b.Active() || b.Count() != 0 {
		t.Fatal("boost must stay inert without a goal")
	}
}
