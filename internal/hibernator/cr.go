// Package hibernator implements the paper's contribution: the Hibernator
// disk-array energy manager. It combines
//
//   - CR, a coarse-grained epoch-based speed-setting algorithm that picks
//     how many RAID groups spin at each speed by minimizing predicted
//     energy subject to a response-time constraint (cr.go);
//   - a temperature-sorted multi-tier data layout with budgeted background
//     migration (layout.go);
//   - a performance guarantee that boosts every disk to full speed when
//     the observed response time endangers the goal, resuming power
//     saving only once the long-run average recovers (boost.go);
//
// glued together by Controller (controller.go), which plugs into the
// simulation harness like any baseline policy.
package hibernator

import (
	"fmt"
	"math"

	"hibernator/internal/diskmodel"
	"hibernator/internal/mg1"
)

// CRInput is everything the epoch optimizer needs.
type CRInput struct {
	Spec *diskmodel.Spec

	// GroupLoads[g] is the predicted arrival rate (logical accesses/s)
	// onto group-rank g under the temperature-sorted layout: rank 0 holds
	// the hottest data and will be assigned the fastest level.
	GroupLoads []float64
	// DisksPerGroup scales per-group load to per-disk load.
	DisksPerGroup int
	// CurrentLevels[g] is each group's present speed (for transition
	// costs).
	CurrentLevels []int

	// PhysFactor converts logical accesses to physical disk I/Os
	// (parity, splits); AvgSize is the observed mean physical request
	// size in bytes.
	PhysFactor float64
	AvgSize    int64

	// SeekOverhead, when positive, is the measured mean positioning time
	// (controller overhead + seek) of the workload, and SeqFraction the
	// measured fraction of strictly sequential requests. Together they
	// calibrate the per-level service predictions; zero falls back to the
	// analytic random-access model (1/3-stroke seeks), which is far too
	// pessimistic for sequential workloads.
	SeekOverhead float64
	SeqFraction  float64

	// Goal is the mean response-time limit in seconds (0 = none: always
	// feasible). Margin derates it for planning headroom.
	Goal   float64
	Margin float64

	// Epoch is the planning horizon in seconds.
	Epoch float64

	// MaxRho rejects assignments driving any disk beyond this utilization
	// (default 0.9 via Solve).
	MaxRho float64
}

// CRPlan is the optimizer's decision.
type CRPlan struct {
	// Levels[g] is the chosen speed for group-rank g (nonincreasing).
	Levels []int
	// PredictedResp and PredictedEnergy are the model's estimates for the
	// coming epoch (energy includes speed-transition costs).
	PredictedResp   float64
	PredictedEnergy float64
	// Feasible reports whether any assignment met the constraint; when
	// false, Levels is all-full-speed.
	Feasible bool
	// Evaluated counts compositions examined (instrumentation).
	Evaluated int
}

// Solve enumerates the compositions of the group count over the speed
// levels (fast levels assigned to hot group-ranks first), evaluates each
// with the M/G/1 model, and returns the minimum-energy feasible plan.
//
// With G groups and m levels the composition count is C(G+m-1, m-1); for
// the arrays the paper studies (a few tens of disks, 2–5 levels) this is
// a few thousand evaluations per epoch — the point of coarse-grained
// control is that this runs once every couple of hours.
func Solve(in CRInput) CRPlan {
	g := len(in.GroupLoads)
	if g == 0 || len(in.CurrentLevels) != g {
		panic(fmt.Sprintf("hibernator: CR needs matching group arrays (loads %d, levels %d)",
			g, len(in.CurrentLevels)))
	}
	if in.DisksPerGroup <= 0 || in.Epoch <= 0 {
		panic("hibernator: CR needs positive disks-per-group and epoch")
	}
	if in.PhysFactor <= 0 {
		in.PhysFactor = 1
	}
	if in.AvgSize <= 0 {
		in.AvgSize = 8192
	}
	if in.Margin <= 0 || in.Margin > 1 {
		in.Margin = 0.9
	}
	if in.MaxRho <= 0 || in.MaxRho >= 1 {
		in.MaxRho = 0.9
	}
	spec := in.Spec
	m := spec.Levels()
	full := spec.FullLevel()

	// Pre-compute per-level service moments and per-disk loads by rank.
	es := make([]float64, m)
	es2 := make([]float64, m)
	for l := 0; l < m; l++ {
		if in.SeekOverhead > 0 {
			rot := spec.RotationPeriod(l)
			randFrac := 1 - in.SeqFraction
			es[l] = in.SeekOverhead + randFrac*rot/2 + spec.TransferTime(l, in.AvgSize)
			es2[l] = randFrac*rot*rot/12 + es[l]*es[l]
		} else {
			es[l], es2[l] = spec.ServiceMoments(l, in.AvgSize, diskmodel.ExpectedSeekFrac)
		}
	}
	perDisk := make([]float64, g)
	totalLoad := 0.0
	for i, load := range in.GroupLoads {
		perDisk[i] = load * in.PhysFactor / float64(in.DisksPerGroup)
		totalLoad += load
	}

	best := CRPlan{Levels: allFull(g, full), Feasible: false}
	bestEnergy := math.Inf(1)

	evalCount := 0
	// levels[g] built by walking compositions: counts[l] groups at level
	// l, assigned fastest-first.
	counts := make([]int, m)
	var walk func(level, remaining int)
	assign := make([]int, g)
	var evaluate func()
	evaluate = func() {
		evalCount++
		// Expand counts into per-rank levels, fastest level first.
		idx := 0
		for l := full; l >= 0; l-- {
			for c := 0; c < counts[l]; c++ {
				assign[idx] = l
				idx++
			}
		}
		var energy, respWeighted float64
		for i := 0; i < g; i++ {
			l := assign[i]
			lambda := perDisk[i]
			rho := mg1.Utilization(lambda, es[l])
			if rho >= in.MaxRho {
				return // infeasible
			}
			r := mg1.ResponseTime(lambda, es[l], es2[l])
			respWeighted += in.GroupLoads[i] * r
			// A speed shift stalls the group's queue for its duration.
			// Requests arriving during a stall of length T wait T/2 on
			// average, so the epoch-mean penalty is T^2/(2*epoch): the
			// quantitative reason coarse epochs amortize transitions.
			// (The controller defers down-shifts until migration has
			// drained a group, so the steady-state occupants' load is the
			// right weight.)
			shiftT, shiftJ := spec.LevelShift(in.CurrentLevels[i], l)
			respWeighted += in.GroupLoads[i] * shiftT * shiftT / (2 * in.Epoch)
			power := spec.IdlePower[l]*(1-rho) + spec.ActivePower[l]*rho
			energy += power * in.Epoch * float64(in.DisksPerGroup)
			energy += shiftJ * float64(in.DisksPerGroup)
		}
		var resp float64
		if totalLoad > 0 {
			resp = respWeighted / totalLoad
		}
		if in.Goal > 0 && resp > in.Goal*in.Margin {
			return
		}
		if energy < bestEnergy {
			bestEnergy = energy
			best.Levels = append(best.Levels[:0], assign...)
			best.PredictedResp = resp
			best.PredictedEnergy = energy
			best.Feasible = true
		}
	}
	walk = func(level, remaining int) {
		if level == m-1 {
			counts[level] = remaining
			evaluate()
			counts[level] = 0
			return
		}
		for c := 0; c <= remaining; c++ {
			counts[level] = c
			walk(level+1, remaining-c)
		}
		counts[level] = 0
	}
	walk(0, g)
	best.Evaluated = evalCount
	if !best.Feasible {
		// Fall back to all-full-speed and report its predictions.
		var energy, respWeighted float64
		for i := 0; i < g; i++ {
			lambda := perDisk[i]
			rho := math.Min(mg1.Utilization(lambda, es[full]), 1)
			respWeighted += in.GroupLoads[i] * mg1.ResponseTime(lambda, es[full], es2[full])
			power := spec.IdlePower[full]*(1-rho) + spec.ActivePower[full]*rho
			energy += power * in.Epoch * float64(in.DisksPerGroup)
		}
		if totalLoad > 0 {
			best.PredictedResp = respWeighted / totalLoad
		}
		best.PredictedEnergy = energy
	}
	return best
}

func allFull(g, full int) []int {
	out := make([]int, g)
	for i := range out {
		out[i] = full
	}
	return out
}
