package hibernator

import (
	"fmt"
	"io"
	"math"
	"strconv"

	"hibernator/internal/array"
	"hibernator/internal/heat"
	"hibernator/internal/obs"
	"hibernator/internal/sim"
	"hibernator/internal/simevent"
)

// Options tunes the Hibernator controller. Zero values select the paper's
// defaults.
type Options struct {
	// Epoch is the CR re-evaluation period in seconds (default 7200).
	Epoch float64
	// Margin derates the response-time goal during planning (default 0.9).
	Margin float64
	// MaxRho caps planned per-disk utilization (default 0.9).
	MaxRho float64
	// Alpha is the temperature decay weight (default 0.5).
	Alpha float64
	// Migration selects the data-movement strategy (default background).
	Migration MigrationMode
	// MigrationBudget caps extent moves per epoch in background mode
	// (default: one move per 30 s of epoch, at least 16).
	MigrationBudget int
	// DisableBoost turns the performance guarantee off (ablation).
	DisableBoost bool
	// PhysFactorInit seeds the logical->physical I/O multiplier before
	// the first epoch of measurements (default 1.5).
	PhysFactorInit float64
	// AdaptiveEpoch lets the epoch length breathe: every epoch whose plan
	// matches the previous one doubles the next interval (capped at 4x
	// Epoch); a plan change resets it to Epoch. Stable workloads then pay
	// even fewer transitions, while shifts are still caught quickly.
	AdaptiveEpoch bool
	// DecisionLog, when non-nil, receives one line per epoch describing
	// the measurements and the chosen plan.
	DecisionLog io.Writer
}

func (o *Options) applyDefaults() {
	if o.Epoch == 0 {
		o.Epoch = 7200
	}
	if o.Margin == 0 {
		o.Margin = 0.9
	}
	if o.MaxRho == 0 {
		o.MaxRho = 0.9
	}
	if o.Alpha == 0 {
		o.Alpha = 0.5
	}
	if o.MigrationBudget == 0 {
		o.MigrationBudget = int(o.Epoch / 30)
		if o.MigrationBudget < 16 {
			o.MigrationBudget = 16
		}
	}
	if o.PhysFactorInit == 0 {
		o.PhysFactorInit = 1.5
	}
}

// Controller is the Hibernator policy: CR speed setting + sorted layout +
// performance boost.
type Controller struct {
	opts Options

	env     *sim.Env
	tracker *heat.Tracker
	layout  *Layout
	boost   *Boost

	lastPlan CRPlan
	epochs   uint64
	meter    meter
	// planGen invalidates staggered plan-application steps when a newer
	// plan or boost supersedes them.
	planGen uint64
	// faultAware mirrors Array.FaultAware at Init: every fault reaction
	// below (health vetoes, the watchdog, degraded pinning) is gated on
	// it so that a zero RetryPolicy leaves the controller bit-identical
	// to its pre-fault-subsystem behavior.
	faultAware bool
	// curEpoch is the (possibly adapted) interval to the next boundary.
	curEpoch float64
	// curLoads are the per-group logical arrival rates under the current
	// layout; sortedLoads the predicted rates under the fully sorted
	// layout. applyPlan compares them to decide when a group is drained
	// enough to slow down, and the boost uses curLoads for descent costs.
	curLoads    []float64
	sortedLoads []float64
}

// New returns a Hibernator controller with the given options.
func New(opts Options) *Controller {
	c := &Controller{opts: opts}
	c.opts.applyDefaults()
	return c
}

// NewDefault returns the paper-default configuration.
func NewDefault() *Controller { return New(Options{}) }

// Name implements sim.Controller.
func (c *Controller) Name() string { return "Hibernator" }

// Plan returns the most recent CR decision (instrumentation).
func (c *Controller) Plan() CRPlan { return c.lastPlan }

// Epochs returns how many epoch boundaries have been processed.
func (c *Controller) Epochs() uint64 { return c.epochs }

// BoostCount returns how many performance boosts have fired.
func (c *Controller) BoostCount() uint64 {
	if c.boost == nil {
		return 0
	}
	return c.boost.Count()
}

// Layout exposes the layout manager (instrumentation).
func (c *Controller) Layout() *Layout { return c.layout }

// SnapshotState implements sim.StateSnapshotter: epoch position, the
// adaptive interval, the plan in force (with its generation, so pending
// staggered steps resolve identically after a resume), the boost count
// and the heat tracker digest.
func (c *Controller) SnapshotState(put func(key, value string)) {
	put("hib.epochs", strconv.FormatUint(c.epochs, 10))
	put("hib.plangen", strconv.FormatUint(c.planGen, 10))
	put("hib.curepoch", strconv.FormatFloat(c.curEpoch, 'g', -1, 64))
	put("hib.boosts", strconv.FormatUint(c.BoostCount(), 10))
	put("hib.plan", fmt.Sprintf("%v|pred=%v|feasible=%v",
		c.lastPlan.Levels, c.lastPlan.PredictedResp, c.lastPlan.Feasible))
	if c.tracker != nil {
		put("hib.tracker.fp", strconv.FormatUint(c.tracker.Fingerprint(), 10))
	}
	put("hib.curloads.fp", strconv.FormatUint(fpFloats(c.curLoads), 10))
	put("hib.sortedloads.fp", strconv.FormatUint(fpFloats(c.sortedLoads), 10))
}

// fpFloats hashes a float slice by bit pattern (FNV-1a), for the state
// digests above.
func fpFloats(xs []float64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	mix(uint64(len(xs)))
	for _, x := range xs {
		mix(math.Float64bits(x))
	}
	return h
}

// Init implements sim.Controller.
func (c *Controller) Init(env *sim.Env) {
	c.env = env
	c.meter = meter{physInit: c.opts.PhysFactorInit}
	c.tracker = heat.NewTracker(env.Array, c.opts.Alpha)
	c.layout = NewLayout(env.Array, c.tracker, c.opts.Migration, c.opts.MigrationBudget)
	c.layout.SetLevelOf(func(g int) int { return c.lastPlan.Levels[g] })
	c.layout.SetMinMoveTemp(2 / c.opts.Epoch)
	c.faultAware = env.Array.FaultAware()
	if c.faultAware {
		// Never migrate data onto a group that is degraded, suspect or
		// rebuilding: new extents there would widen the blast radius of the
		// next failure and compete with reconstruction I/O.
		c.layout.SetGroupHealthy(func(g int) bool { return env.Array.GroupHealthy(g) })
	}
	if !c.opts.DisableBoost {
		c.boost = NewBoost(env, func() { c.applyPlan() })
		if c.faultAware {
			// Fault-induced latency (a fail-slow member, degraded reads,
			// retry storms) is a real threat to the goal, not an echo of a
			// commanded transition — while the array is unhealthy the
			// watchdog ignores its post-transition mute.
			c.boost.SetThreat(func() bool { return env.Array.Unhealthy() })
		}
		// Descent cost: each group dropping from full to its planned level
		// stalls for the shift duration; requests arriving meanwhile wait
		// ~T/2 and then drain, so ~lambda_g*T^2 is a serviceable estimate
		// of the total response-time seconds the descent adds.
		c.boost.SetDescentCost(func() float64 {
			spec := &env.Cfg.Spec
			cost := 0.0
			for i := range env.Array.Groups() {
				if i >= len(c.curLoads) || i >= len(c.lastPlan.Levels) {
					break
				}
				shiftT, _ := spec.LevelShift(spec.FullLevel(), c.lastPlan.Levels[i])
				cost += c.curLoads[i] * shiftT * shiftT
			}
			return cost
		})
	}
	full := env.Cfg.Spec.FullLevel()
	c.lastPlan = CRPlan{Levels: allFull(len(env.Array.Groups()), full)}
	c.curEpoch = c.opts.Epoch
	if c.faultAware {
		// Health watchdog: a disk failure or eviction mid-epoch must not
		// wait for the next boundary — a degraded group serving
		// reconstructed reads at low speed bleeds latency by the second.
		// On the healthy->unhealthy edge, re-apply the plan immediately
		// (applyPlan pins unhealthy groups at full speed).
		period := env.Cfg.RespWindow / 6
		if period <= 0 {
			period = 10
		}
		// Two edges matter: any unhealthiness at all (suspicion included),
		// and the harder degraded/rebuilding edge. An eviction usually
		// follows a period of suspicion, so the first edge alone would
		// sleep through it.
		degraded := func() bool {
			for _, g := range env.Array.Groups() {
				if g.Degraded() || g.Rebuilding() {
					return true
				}
			}
			return false
		}
		wasUnhealthy, wasDegraded := false, false
		simevent.NewTicker(env.Engine, period, func(float64) {
			unhealthy, degr := env.Array.Unhealthy(), degraded()
			if (unhealthy && !wasUnhealthy) || (degr && !wasDegraded) {
				c.planGen++ // cancel staggered shifts still in flight
				c.applyPlan()
			}
			wasUnhealthy, wasDegraded = unhealthy, degr
		})
	}
	c.scheduleEpoch()
}

// scheduleEpoch arms the next epoch boundary at the current (possibly
// adapted) interval.
func (c *Controller) scheduleEpoch() {
	elapsed := c.curEpoch
	c.env.Engine.Schedule(elapsed, func() {
		c.onEpoch(elapsed)
		c.scheduleEpoch()
	})
}

// CurrentEpoch returns the interval to the next planned epoch boundary.
func (c *Controller) CurrentEpoch() float64 { return c.curEpoch }

func (c *Controller) onEpoch(elapsed float64) {
	env := c.env
	c.epochs++
	c.tracker.Update(elapsed)
	m := c.meter.sample(env)

	// Predicted per-rank loads under the sorted layout.
	groups := env.Array.Groups()
	ranked := c.tracker.Ranked()
	loads := make([]float64, len(groups))
	gi, filled := 0, 0
	capOf := func(g int) int { total, _ := groups[g].Slots(); return total }
	for _, e := range ranked {
		for filled >= capOf(gi) {
			gi++
			filled = 0
		}
		loads[gi] += c.tracker.Temp(e)
		filled++
	}
	current := make([]int, len(groups))
	for i, g := range groups {
		current[i] = g.TargetLevel()
	}

	curLoads := c.tracker.GroupLoad()
	prev := append([]int(nil), c.lastPlan.Levels...)
	c.lastPlan = Solve(CRInput{
		Spec:          &env.Cfg.Spec,
		GroupLoads:    loads,
		DisksPerGroup: len(groups[0].Disks()),
		CurrentLevels: current,
		PhysFactor:    m.physFactor,
		AvgSize:       m.avgSize,
		SeekOverhead:  m.seekOverhead,
		SeqFraction:   m.seqFrac,
		Goal:          m.effGoal,
		Margin:        c.opts.Margin,
		Epoch:         c.curEpoch,
		MaxRho:        c.opts.MaxRho,
	})
	if c.opts.AdaptiveEpoch {
		if prev != nil && levelsEqual(prev, c.lastPlan.Levels) {
			c.curEpoch *= 2
			if c.curEpoch > 4*c.opts.Epoch {
				c.curEpoch = 4 * c.opts.Epoch
			}
		} else {
			c.curEpoch = c.opts.Epoch
		}
	}
	c.curLoads = curLoads
	c.sortedLoads = loads
	if c.opts.DecisionLog != nil {
		fmt.Fprintf(c.opts.DecisionLog,
			"epoch %d t=%.0f phys=%.2f size=%d pos=%.4f seq=%.2f effGoal=%.4f plan=%v pred=%.4f feas=%v boost=%v cum=%.4f loads=%.1f\n",
			c.epochs, env.Engine.Now(), m.physFactor, m.avgSize, m.seekOverhead, m.seqFrac, m.effGoal,
			c.lastPlan.Levels, c.lastPlan.PredictedResp, c.lastPlan.Feasible,
			c.boost != nil && c.boost.Active(), env.RespCum.Mean(), sum(loads))
	}
	if env.Trace != nil { // guard: the reason string formatting allocates
		env.Trace.Event(env.Engine.Now(), obs.KindEpochPlan, -1, -1, 0, 0,
			fmt.Sprintf("plan=%v pred=%.4fs feasible=%v", c.lastPlan.Levels,
				c.lastPlan.PredictedResp, c.lastPlan.Feasible))
	}
	c.planGen++
	c.applyPlan()
	// Sorting data for a plan that is not in force would only add
	// interference; rebalance when the plan actually governs the array.
	// A running rebuild suspends the migration budget outright: rebuild
	// bandwidth is redundancy being restored, and migration traffic on the
	// same survivors stretches the window of vulnerability.
	if (c.boost == nil || !c.boost.Active()) && !(c.faultAware && env.Array.RebuildActive()) {
		c.layout.Rebalance()
	}
}

// applyPlan pushes the last CR decision to the groups, unless a boost is
// holding everything at full speed. Downward shifts are STAGGERED one
// group at a time: a speed shift stalls its group's queue for seconds, and
// shifting the whole array at once turns that into an array-wide outage
// that poisons the response-time average the guarantee protects.
func (c *Controller) applyPlan() {
	if c.boost != nil && c.boost.Active() {
		return
	}
	groups := c.env.Array.Groups()
	spec := &c.env.Cfg.Spec
	changed := false
	delay := 0.0
	gen := c.planGen
	for i, g := range groups {
		g.SpinUp() // Hibernator keeps disks spinning; low speed replaces standby
		target := c.lastPlan.Levels[i]
		reason := "cr_plan"
		if c.faultAware && (g.Degraded() || g.Rebuilding()) {
			reason = "fault_pin"
			// A degraded or rebuilding group pays reconstruction
			// amplification on every access; slowing it down would multiply
			// exactly the latency the goal protects. Pin it at full speed
			// until it heals — CR re-plans it next epoch.
			target = spec.FullLevel()
		} else if c.faultAware && g.Suspect() {
			// A suspect disk often precedes an eviction, and raising a
			// group that has already lost a member stalls every survivor
			// at once. Raise it to full speed NOW, while redundancy is
			// intact — one member at a time, so ops stuck behind the
			// shifting disk are served through the live survivors instead
			// of waiting out a whole-group outage.
			if g.TargetLevel() < spec.FullLevel() {
				changed = true
				c.raiseStaggered(g, spec.FullLevel())
			}
			continue
		}
		if g.TargetLevel() == target {
			continue
		}
		if target > g.TargetLevel() {
			// Speeding up is urgent and cheap to overlap.
			changed = true
			from := g.TargetLevel()
			g.SetLevel(target)
			c.env.Trace.Event(c.env.Engine.Now(), obs.KindSpeedShift,
				g.ID(), -1, from, target, reason)
			continue
		}
		// Migrate first, then slow down: a down-shift stalls the group's
		// queue, so it waits until migration has drained the group's load
		// to (roughly) its steady-state share under the sorted layout.
		// Deferred groups are re-examined at the next epoch or boost
		// release.
		if i < len(c.curLoads) && i < len(c.sortedLoads) {
			total := 0.0
			for _, v := range c.curLoads {
				total += v
			}
			if c.curLoads[i] > c.sortedLoads[i]+0.05*total {
				continue
			}
		}
		changed = true
		shiftT, _ := spec.LevelShift(g.TargetLevel(), target)
		g := g
		if delay == 0 {
			from := g.TargetLevel()
			g.SetLevel(target)
			c.env.Trace.Event(c.env.Engine.Now(), obs.KindSpeedShift,
				g.ID(), -1, from, target, "cr_plan")
		} else {
			c.env.Engine.Schedule(delay, func() {
				// A newer plan or an active boost supersedes this step.
				if c.planGen != gen || (c.boost != nil && c.boost.Active()) {
					return
				}
				from := g.TargetLevel()
				g.SetLevel(target)
				c.env.Trace.Event(c.env.Engine.Now(), obs.KindSpeedShift,
					g.ID(), -1, from, target, "cr_plan staggered")
			})
		}
		delay += shiftT + 2
	}
	if changed && c.boost != nil {
		// The commanded shifts will stall queues briefly; their cost is
		// already in the CR prediction, so the watchdog must not treat
		// them as violations. The spike stays visible in the sliding
		// window for a full window length after the last staggered shift
		// finishes, so mute for two windows past the stagger tail.
		c.boost.Mute(2*c.env.Cfg.RespWindow + delay)
	}
}

// raiseStaggered lifts a group to the target level one member at a time.
// Unlike the whole-group SetLevel, at most one disk is mid-shift at any
// moment, so the group keeps serving: requests stuck behind the shifting
// member time out onto the live survivors (or just wait one shift, not
// the whole ladder). A newer plan supersedes pending steps; disks that
// reached the target meanwhile are skipped.
func (c *Controller) raiseStaggered(g *array.Group, target int) {
	spec := &c.env.Cfg.Spec
	gen := c.planGen
	delay := 0.0
	for _, d := range g.Disks() {
		if d.TargetLevel() >= target {
			continue
		}
		shiftT, _ := spec.LevelShift(d.TargetLevel(), target)
		d := d
		if delay == 0 {
			from := d.TargetLevel()
			d.SpinUp()
			d.SetTargetLevel(target)
			c.env.Trace.Event(c.env.Engine.Now(), obs.KindSpeedShift,
				g.ID(), d.ID(), from, target, "suspect_raise")
		} else {
			c.env.Engine.Schedule(delay, func() {
				if c.planGen != gen || d.TargetLevel() >= target {
					return
				}
				from := d.TargetLevel()
				d.SpinUp()
				d.SetTargetLevel(target)
				c.env.Trace.Event(c.env.Engine.Now(), obs.KindSpeedShift,
					g.ID(), d.ID(), from, target, "suspect_raise staggered")
			})
		}
		delay += shiftT + 2
	}
}

// sum adds a float slice (decision-log helper).
func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// levelsEqual reports whether two level assignments match.
func levelsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
