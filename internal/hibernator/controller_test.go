package hibernator

import (
	"testing"

	"hibernator/internal/array"
	"hibernator/internal/diskmodel"
	"hibernator/internal/dist"
	"hibernator/internal/heat"
	"hibernator/internal/raid"
	"hibernator/internal/sim"
	"hibernator/internal/simevent"
	"hibernator/internal/trace"
)

// baseController is a local no-PM baseline to compare against (avoids a
// dependency on the policy package from the core's tests).
type baseController struct{}

func (baseController) Name() string  { return "Base" }
func (baseController) Init(*sim.Env) {}

func hibConfig(seed int64, goal float64) sim.Config {
	return sim.Config{
		Spec:               diskmodel.MultiSpeedUltrastar(5, 3000),
		Groups:             4,
		GroupDisks:         1,
		Level:              raid.RAID0,
		ExtentBytes:        64 << 20,
		RespGoal:           goal,
		RespWindow:         60,
		Seed:               seed,
		ExpectedRotLatency: true,
	}
}

func lightOLTP(t *testing.T, seed int64, duration, rate float64) trace.Source {
	t.Helper()
	g, err := trace.NewOLTP(trace.OLTPConfig{
		Seed:        seed,
		VolumeBytes: 100 << 30,
		Duration:    duration,
		MaxRate:     rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestHibernatorSavesEnergyAndMeetsGoal(t *testing.T) {
	const duration = 2400.0
	goal := 0.030

	baseRes, err := sim.Run(hibConfig(1, goal), lightOLTP(t, 2, duration, 20), baseController{}, duration)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := New(Options{Epoch: 300})
	hibRes, err := sim.Run(hibConfig(1, goal), lightOLTP(t, 2, duration, 20), ctrl, duration)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Epochs() < 7 {
		t.Fatalf("only %d epochs processed", ctrl.Epochs())
	}
	savings := hibRes.SavingsVs(baseRes)
	if savings < 0.2 {
		t.Errorf("savings %.2f vs Base, want >= 0.2 on a light workload", savings)
	}
	if hibRes.MeanResp > goal {
		t.Errorf("mean response %v breaks goal %v", hibRes.MeanResp, goal)
	}
	if hibRes.LevelShifts == 0 {
		t.Error("hibernator never changed a speed")
	}
}

func TestBoostFiresOnSurgeAndProtectsGoal(t *testing.T) {
	// Quiet first epoch, then a violent surge: CR will have chosen slow
	// speeds; the boost must rescue the response time.
	const duration = 1800.0
	goal := 0.020
	mkSrc := func() trace.Source {
		g, err := trace.NewOLTP(trace.OLTPConfig{
			Seed:        5,
			VolumeBytes: 100 << 30,
			Duration:    duration,
			Rate:        dist.StepRate([]float64{5, 120}, []float64{900}),
			MaxRate:     120,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	withBoost := New(Options{Epoch: 300})
	resBoost, err := sim.Run(hibConfig(3, goal), mkSrc(), withBoost, duration)
	if err != nil {
		t.Fatal(err)
	}
	noBoost := New(Options{Epoch: 300, DisableBoost: true})
	resNo, err := sim.Run(hibConfig(3, goal), mkSrc(), noBoost, duration)
	if err != nil {
		t.Fatal(err)
	}
	if withBoost.BoostCount() == 0 {
		t.Fatal("boost never fired despite the surge")
	}
	if resBoost.MeanResp >= resNo.MeanResp {
		t.Errorf("boosted mean %v should beat unboosted %v", resBoost.MeanResp, resNo.MeanResp)
	}
	if resBoost.GoalViolationFrac > resNo.GoalViolationFrac {
		t.Errorf("boost increased violations: %v vs %v",
			resBoost.GoalViolationFrac, resNo.GoalViolationFrac)
	}
}

func TestLayoutSortsHotDataToFastTier(t *testing.T) {
	// A moderate load with a goal that is feasible at mixed speeds but not
	// all-slow pushes CR into a tiered configuration; the layout manager
	// must then concentrate the hot extents on the fast tier.
	const duration = 3600.0
	ctrl := New(Options{Epoch: 300, MigrationBudget: 512})
	res, err := sim.Run(hibConfig(7, 0.011), lightOLTP(t, 8, duration, 60), ctrl, duration)
	if err != nil {
		t.Fatal(err)
	}
	plan := ctrl.Plan()
	if !plan.Feasible {
		t.Fatalf("plan infeasible: %+v", plan)
	}
	if res.Migrations == 0 {
		t.Fatal("array recorded no migrations")
	}
	// The fast rank must carry the bulk of the predicted load.
	loads := ctrl.tracker.GroupLoad()
	total := 0.0
	for _, l := range loads {
		total += l
	}
	if total <= 0 {
		t.Fatal("tracker saw no load")
	}
	if loads[0]/total < 0.5 {
		t.Errorf("rank-0 group carries %.2f of load, want majority (loads %v, levels %v)",
			loads[0]/total, loads, plan.Levels)
	}
}

func TestMigrationModeNoneMovesNothing(t *testing.T) {
	const duration = 1200.0
	ctrl := New(Options{Epoch: 300, Migration: MigrateNone})
	res, err := sim.Run(hibConfig(9, 0.030), lightOLTP(t, 10, duration, 40), ctrl, duration)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Errorf("MigrateNone produced %d migrations", res.Migrations)
	}
	moves, swaps := ctrl.Layout().Moves()
	if moves+swaps != 0 {
		t.Errorf("layout moved %d/%d under MigrateNone", moves, swaps)
	}
}

func TestLayoutMigrationModesUnit(t *testing.T) {
	// Deterministic layout exercise: heat up extents that live on the
	// last group, declare group 0 fast and the rest slow, and compare how
	// far each mode converges in a single Rebalance.
	build := func(mode MigrationMode, budget int) (moved uint64, misplacedAfter int) {
		e := simevent.New()
		spec := diskmodel.MultiSpeedUltrastar(5, 3000)
		arr, err := array.New(array.Config{
			Engine: e, Spec: &spec, Groups: 4, GroupDisks: 1,
			Level: raid.RAID0, ExtentBytes: 64 << 20, Seed: 21,
			InitialLevel: spec.FullLevel(), ExpectedRotLatency: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		tracker := heat.NewTracker(arr, 1.0)
		// Touch 40 extents that currently live on group 3.
		hot := 0
		for ext := 0; ext < arr.NumExtents() && hot < 40; ext++ {
			if arr.ExtentLocation(ext).Group == 3 {
				for k := 0; k < 5; k++ {
					arr.Submit(int64(ext)*arr.ExtentBytes(), 4096, false, nil)
				}
				hot++
			}
		}
		e.RunAll()
		tracker.Update(10)
		lay := NewLayout(arr, tracker, mode, budget)
		lay.SetLevelOf(func(g int) int {
			if g == 0 {
				return 4
			}
			return 0
		})
		lay.Rebalance()
		e.RunAll()
		m, s := lay.Moves()
		return m + s, lay.Misplaced()
	}
	eagerMoves, eagerLeft := build(MigrateEager, 1)
	bgMoves, bgLeft := build(MigrateBackground, 8)
	noneMoves, _ := build(MigrateNone, 8)
	if noneMoves != 0 {
		t.Errorf("MigrateNone moved %d", noneMoves)
	}
	if eagerMoves != 40 {
		t.Errorf("eager moved %d, want all 40 hot extents", eagerMoves)
	}
	if eagerLeft != 0 {
		t.Errorf("eager left %d misplaced", eagerLeft)
	}
	if bgMoves != 8 {
		t.Errorf("background with budget 8 moved %d", bgMoves)
	}
	if bgLeft != 32 {
		t.Errorf("background left %d misplaced, want 32", bgLeft)
	}
}

func TestDeterministicHibernatorRuns(t *testing.T) {
	const duration = 900.0
	mk := func() *sim.Result {
		ctrl := New(Options{Epoch: 300})
		res, err := sim.Run(hibConfig(13, 0.030), lightOLTP(t, 14, duration, 30), ctrl, duration)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Energy != b.Energy || a.MeanResp != b.MeanResp || a.Migrations != b.Migrations {
		t.Errorf("hibernator runs diverged: %+v vs %+v", a, b)
	}
}

func TestOptionsDefaults(t *testing.T) {
	c := New(Options{})
	if c.opts.Epoch != 7200 || c.opts.Migration != MigrateBackground || c.opts.MigrationBudget != 240 {
		t.Errorf("defaults = %+v", c.opts)
	}
	c2 := New(Options{Migration: MigrateNone})
	if c2.opts.Migration != MigrateNone {
		t.Error("explicit MigrateNone overridden")
	}
	if MigrateBackground.String() != "background" || MigrateEager.String() != "eager" ||
		MigrateNone.String() != "none" || MigrationMode(9).String() != "unknown" {
		t.Error("MigrationMode.String broken")
	}
}
