package hibernator

import (
	"hibernator/internal/obs"
	"hibernator/internal/sim"
	"hibernator/internal/simevent"
)

// Boost is the performance guarantee: a watchdog that compares observed
// response times against the goal. On violation it spins every group to
// full speed immediately; it releases the boost only when the *cumulative*
// mean response time has enough slack to pay for the descent itself —
// every speed shift stalls its group's queue, so dropping out of a boost
// costs response time that must already be budgeted, or the controller
// would oscillate its way past the goal.
type Boost struct {
	// CheckPeriod between watchdog checks (default RespWindow/6).
	CheckPeriod float64
	// EngageCumFactor: engage when the cumulative mean exceeds this
	// fraction of the goal (default 0.98). This is the emergency brake on
	// the lifetime average; planned descents briefly borrow slack (their
	// cost is budgeted by CR), so the brake must sit above CR's planning
	// margin or every descent would trip it.
	EngageCumFactor float64
	// ReleaseMargin: release only when the cumulative mean, *plus the
	// projected cost of shifting back down*, stays under this fraction of
	// the goal (default 0.85).
	ReleaseMargin float64

	env    *sim.Env
	active bool
	count  uint64
	// muteUntil suppresses window-triggered engagement after a commanded
	// transition: the descent stall we just ordered was already budgeted,
	// and punishing it would re-engage immediately. Cumulative-mean
	// engagement is never muted.
	muteUntil float64
	// descentCost (optional) returns the predicted total response-time
	// seconds a descent to the current plan would add.
	descentCost func() float64
	// threat (optional) reports a standing danger to the goal that is NOT
	// an echo of a commanded transition — a fail-slow or degraded array.
	// While it holds, window-triggered engagement ignores the mute.
	threat func() bool
	// restore re-applies the CR plan after a boost ends.
	restore func()
}

// NewBoost wires the watchdog; restore is invoked when a boost releases
// (typically re-applying the last CR plan).
func NewBoost(env *sim.Env, restore func()) *Boost {
	b := &Boost{env: env, restore: restore}
	if b.CheckPeriod == 0 {
		b.CheckPeriod = env.Cfg.RespWindow / 6
		if b.CheckPeriod <= 0 {
			b.CheckPeriod = 10
		}
	}
	if b.EngageCumFactor == 0 {
		b.EngageCumFactor = 0.98
	}
	if b.ReleaseMargin == 0 {
		b.ReleaseMargin = 0.85
	}
	if env.Goal() > 0 {
		simevent.NewTicker(env.Engine, b.CheckPeriod, func(now float64) { b.check(now) })
	}
	return b
}

// SetDescentCost installs the estimator for the response-time cost of
// leaving a boost (shift stalls on the downward path).
func (b *Boost) SetDescentCost(fn func() float64) { b.descentCost = fn }

// SetThreat installs the standing-danger oracle (typically "the array has
// a degraded, suspect or rebuilding group").
func (b *Boost) SetThreat(fn func() bool) { b.threat = fn }

// Active reports whether a boost is in force.
func (b *Boost) Active() bool { return b.active }

// Count returns how many boosts have fired.
func (b *Boost) Count() uint64 { return b.count }

func (b *Boost) check(now float64) {
	goal := b.env.Goal()
	windowMean, n := b.env.RespWindow.Mean(now)
	cum := b.env.RespCum
	if !b.active {
		// Three ways in: (1) the lifetime average is about to breach the
		// goal — emergency, never muted; (2) a severe surge (window >>
		// goal) that would erode the average fast; (3) a sustained minor
		// violation once the average has little slack left. A mildly bad
		// window while the cumulative mean sits far below the goal is not
		// a risk to the goal and is left to CR.
		cumAtRisk := cum.Count() > 100 && cum.Mean() > b.EngageCumFactor*goal
		severe := n > 0 && windowMean > 2*goal
		minor := n > 0 && windowMean > goal && cum.Mean() > 0.9*goal
		// The mute exists to forgive the stall of a commanded transition.
		// With a standing fault threat the latency is the fault's, not the
		// transition's, and waiting out the mute lets a fail-slow disk
		// erode the average unopposed.
		muted := now < b.muteUntil && !(b.threat != nil && b.threat())
		windowBlown := !muted && (severe || minor)
		if cumAtRisk || windowBlown {
			reason := "minor violation, cum near goal"
			switch {
			case cumAtRisk:
				reason = "cumulative mean at risk"
			case severe:
				reason = "severe window violation"
			}
			b.engage(reason)
		}
		return
	}
	// Release: cumulative average plus the projected descent cost must
	// leave slack, and the current window must be calm.
	if cum.Count() == 0 || (n > 0 && windowMean > goal) {
		return
	}
	projected := cum.Mean()
	if b.descentCost != nil {
		projected = (cum.Mean()*float64(cum.Count()) + b.descentCost()) / float64(cum.Count())
	}
	if projected < b.ReleaseMargin*goal {
		b.active = false
		b.env.Trace.Event(now, obs.KindBoostRelease, -1, -1, -1, -1, "slack covers descent cost")
		b.Mute(b.env.Cfg.RespWindow)
		if b.restore != nil {
			b.restore()
		}
	}
}

// Mute suppresses window-triggered engagement for the next d seconds
// (called after a commanded speed transition).
func (b *Boost) Mute(d float64) {
	if until := b.env.Engine.Now() + d; until > b.muteUntil {
		b.muteUntil = until
		// From carries the mute length in whole seconds.
		b.env.Trace.Event(b.env.Engine.Now(), obs.KindBoostMute,
			-1, -1, int(d), -1, "commanded transition")
	}
}

func (b *Boost) engage(reason string) {
	b.active = true
	b.count++
	b.env.Trace.Event(b.env.Engine.Now(), obs.KindBoostFire, -1, -1, -1, -1, reason)
	full := b.env.Cfg.Spec.FullLevel()
	for _, g := range b.env.Array.Groups() {
		g.SpinUp()
		g.SetLevel(full)
	}
}
