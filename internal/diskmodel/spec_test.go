package diskmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMultiSpeedUltrastarValidates(t *testing.T) {
	for _, levels := range []int{1, 2, 3, 5} {
		spec := MultiSpeedUltrastar(levels, 3000)
		if err := spec.Validate(); err != nil {
			t.Errorf("levels=%d: %v", levels, err)
		}
		if spec.Levels() != levels {
			t.Errorf("levels=%d: got %d", levels, spec.Levels())
		}
		if spec.RPM[spec.FullLevel()] != 15000 {
			t.Errorf("levels=%d: full speed %d, want 15000", levels, spec.RPM[spec.FullLevel()])
		}
	}
}

func TestUltrastarPowerMatchesDatasheetAtFullSpeed(t *testing.T) {
	spec := MultiSpeedUltrastar(5, 3000)
	full := spec.FullLevel()
	if math.Abs(spec.IdlePower[full]-10.2) > 1e-9 {
		t.Errorf("full idle power = %v, want 10.2", spec.IdlePower[full])
	}
	if math.Abs(spec.ActivePower[full]-13.5) > 1e-9 {
		t.Errorf("full active power = %v, want 13.5", spec.ActivePower[full])
	}
	if math.Abs(spec.TransferRate[full]-55e6) > 1e-3 {
		t.Errorf("full rate = %v, want 55e6", spec.TransferRate[full])
	}
}

func TestPowerMonotoneInRPM(t *testing.T) {
	spec := MultiSpeedUltrastar(5, 3000)
	for i := 1; i < spec.Levels(); i++ {
		if spec.IdlePower[i] <= spec.IdlePower[i-1] {
			t.Errorf("idle power not increasing at level %d", i)
		}
		if spec.TransferRate[i] <= spec.TransferRate[i-1] {
			t.Errorf("transfer rate not increasing at level %d", i)
		}
	}
	// Low speed must save real power: 3k RPM should draw far less than full.
	if spec.IdlePower[0] > 0.4*spec.IdlePower[spec.FullLevel()] {
		t.Errorf("low-speed idle %v is not a big saving vs %v", spec.IdlePower[0], spec.IdlePower[spec.FullLevel()])
	}
}

func TestRotationPeriod(t *testing.T) {
	spec := MultiSpeedUltrastar(5, 3000)
	if got := spec.RotationPeriod(spec.FullLevel()); math.Abs(got-0.004) > 1e-12 {
		t.Errorf("rotation at 15k = %v, want 4ms", got)
	}
	if got := spec.RotationPeriod(0); math.Abs(got-0.020) > 1e-12 {
		t.Errorf("rotation at 3k = %v, want 20ms", got)
	}
}

func TestSeekTime(t *testing.T) {
	spec := MultiSpeedUltrastar(1, 0)
	if got := spec.SeekTime(0); got != 0 {
		t.Errorf("zero-distance seek = %v, want 0", got)
	}
	if got := spec.SeekTime(1); math.Abs(got-spec.SeekMax) > 1e-12 {
		t.Errorf("full-stroke seek = %v, want %v", got, spec.SeekMax)
	}
	if got := spec.SeekTime(2); math.Abs(got-spec.SeekMax) > 1e-12 {
		t.Errorf("clamped seek = %v, want %v", got, spec.SeekMax)
	}
	mid := spec.SeekTime(0.25)
	if mid <= spec.SeekMin || mid >= spec.SeekMax {
		t.Errorf("mid seek %v outside (%v,%v)", mid, spec.SeekMin, spec.SeekMax)
	}
}

func TestTransferTimeScalesWithLevel(t *testing.T) {
	spec := MultiSpeedUltrastar(5, 3000)
	size := int64(1 << 20)
	slow := spec.TransferTime(0, size)
	fast := spec.TransferTime(spec.FullLevel(), size)
	if slow <= fast {
		t.Errorf("slow transfer %v should exceed fast %v", slow, fast)
	}
	ratio := slow / fast
	want := float64(spec.RPM[spec.FullLevel()]) / float64(spec.RPM[0])
	if math.Abs(ratio-want) > 0.01 {
		t.Errorf("transfer ratio %v, want %v", ratio, want)
	}
}

func TestLevelShift(t *testing.T) {
	spec := MultiSpeedUltrastar(5, 3000)
	deltaK := float64(spec.RPM[3]-spec.RPM[0]) / 1000
	sec, j := spec.LevelShift(0, 3)
	if sec != deltaK*spec.LevelShiftTimePer1000RPM || j != deltaK*spec.LevelShiftEnergyPer1000RPM {
		t.Errorf("shift(0,3) = %v,%v", sec, j)
	}
	sec2, j2 := spec.LevelShift(3, 0)
	if sec2 != sec || j2 != j {
		t.Error("shift cost must be symmetric")
	}
	if s, e := spec.LevelShift(2, 2); s != 0 || e != 0 {
		t.Error("no-op shift must be free")
	}
}

func TestServiceMomentsOrdering(t *testing.T) {
	spec := MultiSpeedUltrastar(5, 3000)
	esSlow, es2Slow := spec.ServiceMoments(0, 8192, ExpectedSeekFrac)
	esFast, es2Fast := spec.ServiceMoments(spec.FullLevel(), 8192, ExpectedSeekFrac)
	if esSlow <= esFast {
		t.Errorf("slow ES %v must exceed fast ES %v", esSlow, esFast)
	}
	if es2Slow <= esSlow*esSlow {
		t.Errorf("ES2 %v must exceed ES^2 %v", es2Slow, esSlow*esSlow)
	}
	if es2Fast <= esFast*esFast {
		t.Errorf("fast ES2 %v must exceed ES^2 %v", es2Fast, esFast*esFast)
	}
	// Full-speed small-request service should be a few ms.
	if esFast < 0.002 || esFast > 0.01 {
		t.Errorf("full-speed ES = %v s, expected 2-10 ms", esFast)
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	base := MultiSpeedUltrastar(3, 3000)
	mutations := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no levels", func(s *Spec) { s.RPM = nil }},
		{"mismatched power", func(s *Spec) { s.IdlePower = s.IdlePower[:1] }},
		{"zero capacity", func(s *Spec) { s.CapacityBytes = 0 }},
		{"descending rpm", func(s *Spec) { s.RPM[1] = s.RPM[0] }},
		{"active below idle", func(s *Spec) { s.ActivePower[0] = s.IdlePower[0] - 1 }},
		{"bad seek", func(s *Spec) { s.SeekMax = s.SeekMin - 1 }},
		{"zero spinup", func(s *Spec) { s.SpinUpTime = 0 }},
		{"zero shift", func(s *Spec) { s.LevelShiftTimePer1000RPM = 0 }},
		{"zero rate", func(s *Spec) { s.TransferRate[0] = 0 }},
	}
	for _, m := range mutations {
		spec := base
		spec.RPM = append([]int(nil), base.RPM...)
		spec.IdlePower = append([]float64(nil), base.IdlePower...)
		spec.ActivePower = append([]float64(nil), base.ActivePower...)
		spec.TransferRate = append([]float64(nil), base.TransferRate...)
		m.mut(&spec)
		if spec.Validate() == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

// Property: seek time is monotone in distance and bounded by [0, SeekMax].
func TestSeekMonotoneProperty(t *testing.T) {
	spec := MultiSpeedUltrastar(1, 0)
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		a, b = math.Mod(a, 1), math.Mod(b, 1)
		if a > b {
			a, b = b, a
		}
		ta, tb := spec.SeekTime(a), spec.SeekTime(b)
		return ta <= tb+1e-15 && tb <= spec.SeekMax+1e-15 && ta >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiSpeedSFFValidatesAndContrasts(t *testing.T) {
	sff := MultiSpeedSFF(4, 1800)
	if err := sff.Validate(); err != nil {
		t.Fatal(err)
	}
	big := MultiSpeedUltrastar(4, 3000)
	full := sff.FullLevel()
	if sff.IdlePower[full] >= big.IdlePower[big.FullLevel()] {
		t.Error("SFF drive should idle below the enterprise drive")
	}
	if sff.TransferRate[full] >= big.TransferRate[big.FullLevel()] {
		t.Error("SFF drive should be slower")
	}
	if sff.SpinUpEnergy >= big.SpinUpEnergy {
		t.Error("SFF spin-up should be cheaper")
	}
	if sec, _ := sff.LevelShift(0, full); sec <= 0 {
		t.Error("level shift must take time")
	}
	single := MultiSpeedSFF(1, 0)
	if single.Levels() != 1 {
		t.Error("single-level SFF broken")
	}
}
