package diskmodel

import "testing"

func TestAFRCurveShape(t *testing.T) {
	for _, family := range []string{"enterprise", "sff"} {
		c, ok := FamilyAFR(family)
		if !ok {
			t.Fatalf("FamilyAFR(%q) unknown", family)
		}
		// Bathtub: infant mortality decays, the floor holds, wear-out rises.
		if c.At(0) <= c.At(2) {
			t.Errorf("%s: infant AFR %.4f not above mid-life %.4f", family, c.At(0), c.At(2))
		}
		if c.At(2) < c.Useful {
			t.Errorf("%s: mid-life AFR %.4f below useful floor %.4f", family, c.At(2), c.Useful)
		}
		if c.At(8) <= c.At(2) {
			t.Errorf("%s: worn-out AFR %.4f not above mid-life %.4f", family, c.At(8), c.At(2))
		}
		// Negative ages clamp to age 0.
		if c.At(-1) != c.At(0) {
			t.Errorf("%s: At(-1)=%v != At(0)=%v", family, c.At(-1), c.At(0))
		}
	}
	if _, ok := FamilyAFR("flash"); ok {
		t.Fatal("FamilyAFR accepted an unknown family")
	}
}

func TestSFFOutfailsEnterprise(t *testing.T) {
	e, _ := FamilyAFR("enterprise")
	s, _ := FamilyAFR("sff")
	for _, age := range []float64{0, 0.5, 1, 2, 3, 4, 5, 7} {
		if s.At(age) <= e.At(age) {
			t.Errorf("age %.1f: sff AFR %.4f not above enterprise %.4f", age, s.At(age), e.At(age))
		}
	}
}

func TestTruncate(t *testing.T) {
	full := MultiSpeedUltrastar(5, 3000)
	capped := full.Truncate(1)
	if err := capped.Validate(); err != nil {
		t.Fatalf("truncated spec invalid: %v", err)
	}
	if capped.Levels() != 1 || capped.RPM[0] != full.RPM[0] {
		t.Fatalf("Truncate(1) kept levels %v, want just lowest %d", capped.RPM, full.RPM[0])
	}
	if capped.CapacityBytes != full.CapacityBytes {
		t.Fatalf("Truncate changed capacity %d -> %d", full.CapacityBytes, capped.CapacityBytes)
	}
	// Clamping: out-of-range n keeps the spec valid and unshrunk/minimal.
	if got := full.Truncate(99); got.Levels() != full.Levels() {
		t.Fatalf("Truncate(99) levels = %d, want %d", got.Levels(), full.Levels())
	}
	if got := full.Truncate(0); got.Levels() != 1 {
		t.Fatalf("Truncate(0) levels = %d, want 1", got.Levels())
	}
	// The copy is deep: mutating the truncation must not touch the parent.
	two := full.Truncate(2)
	two.RPM[0] = 1
	if full.RPM[0] == 1 {
		t.Fatal("Truncate shares the parent's RPM slice")
	}
}
